/**
 * @file
 * Umbrella header for the indexed-SRF stream processor library.
 *
 * Pulls in the public API layers:
 *  - machine configuration and assembly (core/)
 *  - the KernelC-style kernel builder and scheduler (kernel/)
 *  - stream programs (core/stream_program.h)
 *  - the area/energy models (area/)
 *  - fault injection, ECC, and the watchdog (fault/)
 *  - the paper's benchmarks and microbenchmarks (workloads/)
 *
 * Typical use:
 * @code
 *   #include <isrf/isrf.h>
 *   isrf::Machine m;
 *   m.init(isrf::MachineConfig::isrf4());
 *   isrf::StreamProgram prog(m);
 *   ...
 * @endcode
 *
 * Add both `include/` and `src/` to the include path, or link the
 * `isrf::isrf` CMake target, which exports them.
 */
#ifndef ISRF_ISRF_H
#define ISRF_ISRF_H

#include "area/cacti_lite.h"
#include "area/energy.h"
#include "core/config.h"
#include "core/machine.h"
#include "core/stream.h"
#include "core/stream_program.h"
#include "core/report.h"
#include "fault/ecc.h"
#include "fault/fault_config.h"
#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "kernel/builder.h"
#include "kernel/schedule_dump.h"
#include "kernel/scheduler.h"
#include "workloads/fft.h"
#include "workloads/filter.h"
#include "workloads/igraph.h"
#include "workloads/micro.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"
#include "workloads/trace_util.h"
#include "workloads/workload.h"

#endif // ISRF_ISRF_H
