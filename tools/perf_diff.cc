/**
 * @file
 * CLI wrapper over driver/perf_diff.h for CI perf gating.
 *
 *   perf_diff <baseline.json> <current.json>
 *             [--threshold <frac>] [--min-seconds <secs>] [--warn-only]
 *
 * Compares two BENCH_*.json perf records (schema isrf-perf-record-v1)
 * and prints every metric delta. Exit status: 0 = no regression,
 * 1 = regression (or a baseline metric missing from the current
 * record), 2 = bad usage or unreadable/invalid input. --warn-only
 * prints regressions but still exits 0 (the CI "warn" phase of
 * warn-then-gate).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "driver/perf_diff.h"

using namespace isrf;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <current.json> "
                 "[--threshold <frac>] [--min-seconds <secs>] "
                 "[--warn-only]\n", argv0);
}

bool
parsePositiveDouble(const char *s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s, &end);
    return end && *end == '\0' && out >= 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    PerfDiffOptions opts;
    bool warnOnly = false;
    std::string baseline, current;

    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        if (s == "--threshold" && i + 1 < argc) {
            if (!parsePositiveDouble(argv[++i], opts.threshold)) {
                std::fprintf(stderr, "--threshold expects a "
                             "non-negative number\n");
                return 2;
            }
        } else if (s == "--min-seconds" && i + 1 < argc) {
            if (!parsePositiveDouble(argv[++i], opts.minSeconds)) {
                std::fprintf(stderr, "--min-seconds expects a "
                             "non-negative number\n");
                return 2;
            }
        } else if (s == "--warn-only") {
            warnOnly = true;
        } else if (s == "--help" || s == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!s.empty() && s[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", s.c_str());
            usage(argv[0]);
            return 2;
        } else if (baseline.empty()) {
            baseline = s;
        } else if (current.empty()) {
            current = s;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (baseline.empty() || current.empty()) {
        usage(argv[0]);
        return 2;
    }

    PerfDiffResult res = perfDiffFiles(baseline, current, opts);
    std::fputs(res.summary().c_str(), stdout);
    if (!res.ok())
        return 2;
    if (res.regression()) {
        std::printf("RESULT: regression (threshold %.0f%%, floor "
                    "%.3fs)\n", 100.0 * opts.threshold,
                    opts.minSeconds);
        return warnOnly ? 0 : 1;
    }
    std::printf("RESULT: ok (threshold %.0f%%, floor %.3fs)\n",
                100.0 * opts.threshold, opts.minSeconds);
    return 0;
}
