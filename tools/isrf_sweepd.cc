/**
 * @file
 * Sweep service daemon: newline-JSON simulation jobs over a socket.
 *
 *   isrf_sweepd --socket /tmp/isrf.sock [--tcp-port N] [--workers N]
 *               [--queue-max N] [--deadline-ms MS] [--max-deadline-ms MS]
 *               [--retries N] [--store FILE] [--store-max-bytes N]
 *               [--allow-test-jobs] [--dataset FILE.mtx] [--verbose]
 *
 * See src/service/protocol.h for the wire protocol and
 * src/service/server.h for the serving semantics (admission control,
 * per-request deadlines, retry, single-flight, result store, drain).
 *
 * Signals: the first SIGTERM/SIGINT drains gracefully — stop
 * accepting, refuse new run requests, finish every admitted job, flush
 * the store, exit 0. A second signal hard-stops: in-flight jobs are
 * cancelled through the stop token and complete as Cancelled. kill -9
 * is the case the store is built for: recovery truncates a torn tail
 * and re-serves everything already fsync'd.
 *
 * Prints "isrf_sweepd: ready on <socket>" to stdout once listening —
 * scripts (and the CI service-resilience job) wait for that line.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"
#include "util/env.h"
#include "util/log.h"
#include "workloads/external.h"

using namespace isrf;

namespace {

volatile std::sig_atomic_t gSignals = 0;

void
onTerminationSignal(int)
{
    gSignals++;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s --socket <path> [options]\n"
        "  --socket <path>        Unix-domain socket to listen on\n"
        "  --tcp-port <n>         also listen on 127.0.0.1:<n>\n"
        "  --workers <n>          worker threads (default: cores)\n"
        "  --queue-max <n>        admission queue bound (default 64)\n"
        "  --deadline-ms <ms>     default per-request deadline "
        "(0 = none)\n"
        "  --max-deadline-ms <ms> clamp client deadlines (0 = none)\n"
        "  --retries <n>          retry budget for stalled/timed-out "
        "attempts (default 1)\n"
        "  --store <file>         result-store log (default: "
        "in-memory only)\n"
        "  --store-max-bytes <n>  store LRU budget (default 64 MiB)\n"
        "  --checkpoint-dir <d>   write mid-job checkpoints into <d>;\n"
        "                         re-submitted jobs resume from them\n"
        "  --checkpoint-every-cycles <n>\n"
        "                         checkpoint cadence in simulated\n"
        "                         cycles (default 250000 when\n"
        "                         --checkpoint-dir is set)\n"
        "  --idle-timeout-ms <ms> close connections idle for <ms>\n"
        "                         (0 = never, the default)\n"
        "  --allow-test-jobs      accept the synthetic '__hang__' "
        "workload\n"
        "  --dataset <file.mtx>   register a MatrixMarket file as an\n"
        "                         'SpMV:<stem>' workload (repeatable)\n"
        "  --verbose              log each request to stderr\n",
        argv0);
}

bool
parseNonNegDouble(const char *s, double &out)
{
    return parseF64(s, out) && out >= 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceConfig cfg;
    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s expects a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t u = 0;
        if (s == "--socket") {
            cfg.socketPath = next("--socket");
        } else if (s == "--tcp-port") {
            if (!parseU64(next("--tcp-port"), u) || u == 0 ||
                u > 65535)
                fatal("--tcp-port expects a port number");
            cfg.tcpPort = static_cast<int>(u);
        } else if (s == "--workers") {
            if (!parseU64(next("--workers"), u))
                fatal("--workers expects a count");
            cfg.workers = static_cast<unsigned>(u);
        } else if (s == "--queue-max") {
            if (!parseU64(next("--queue-max"), u) || u == 0)
                fatal("--queue-max expects a positive count");
            cfg.queueMax = u;
        } else if (s == "--deadline-ms") {
            if (!parseNonNegDouble(next("--deadline-ms"),
                                   cfg.defaultDeadlineMs))
                fatal("--deadline-ms expects milliseconds");
        } else if (s == "--max-deadline-ms") {
            if (!parseNonNegDouble(next("--max-deadline-ms"),
                                   cfg.maxDeadlineMs))
                fatal("--max-deadline-ms expects milliseconds");
        } else if (s == "--retries") {
            if (!parseU64(next("--retries"), u) || u > 16)
                fatal("--retries expects 0..16");
            cfg.retries = static_cast<uint32_t>(u);
        } else if (s == "--store") {
            cfg.storePath = next("--store");
        } else if (s == "--store-max-bytes") {
            if (!parseU64(next("--store-max-bytes"), u))
                fatal("--store-max-bytes expects a byte count");
            cfg.storeMaxBytes = u;
        } else if (s == "--dataset") {
            // Registered before svc.start(), so daemon workers never
            // race the registry and `run` requests can name the
            // dataset workload immediately.
            std::string path = next("--dataset");
            std::string name;
            std::vector<std::string> errs;
            if (!registerExternalDataset(path, &name, &errs)) {
                std::fprintf(stderr,
                             "--dataset: cannot load '%s':\n",
                             path.c_str());
                for (const auto &e : errs)
                    std::fprintf(stderr, "  %s\n", e.c_str());
                return 2;
            }
            std::fprintf(stderr, "isrf_sweepd: registered dataset "
                         "workload '%s'\n", name.c_str());
        } else if (s == "--checkpoint-dir") {
            cfg.checkpointDir = next("--checkpoint-dir");
        } else if (s == "--checkpoint-every-cycles") {
            if (!parseU64(next("--checkpoint-every-cycles"), u))
                fatal("--checkpoint-every-cycles expects a cycle "
                      "count");
            cfg.checkpointEveryCycles = u;
        } else if (s == "--idle-timeout-ms") {
            if (!parseNonNegDouble(next("--idle-timeout-ms"),
                                   cfg.idleTimeoutMs))
                fatal("--idle-timeout-ms expects milliseconds");
        } else if (s == "--allow-test-jobs") {
            cfg.allowTestJobs = true;
        } else if (s == "--verbose") {
            cfg.verbose = true;
        } else if (s == "--help" || s == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", s.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!cfg.checkpointDir.empty() && cfg.checkpointEveryCycles == 0)
        cfg.checkpointEveryCycles = 250000;

    SweepService svc;
    if (!svc.start(cfg))
        return 1;

    std::signal(SIGTERM, onTerminationSignal);
    std::signal(SIGINT, onTerminationSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("isrf_sweepd: ready on %s\n", cfg.socketPath.c_str());
    std::fflush(stdout);

    bool drainAnnounced = false;
    // Periodic checkpoint tick: every ~5s of this 50ms loop, ask all
    // running jobs to snapshot at their next cycle boundary, so even a
    // later kill -9 loses at most a few seconds of simulation.
    int ticksToCheckpoint = 100;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (gSignals >= 2) {
            std::fprintf(stderr, "isrf_sweepd: second signal: "
                         "cancelling in-flight jobs\n");
            svc.requestStop();
            break;
        }
        if (gSignals >= 1) {
            if (!drainAnnounced) {
                std::fprintf(stderr, "isrf_sweepd: draining (%zu "
                             "job(s) in flight)\n", svc.pendingJobs());
                drainAnnounced = true;
                // Snapshot everything still running right away:
                // requestDrain() itself must stay signal-safe, but
                // this loop runs on the main thread and may lock.
                svc.requestCheckpointAll();
            }
            svc.requestDrain();
            if (svc.pendingJobs() == 0)
                break;
        }
        if (--ticksToCheckpoint <= 0) {
            ticksToCheckpoint = 100;
            svc.requestCheckpointAll();
        }
    }
    svc.shutdown();

    const ServiceCounters c = svc.counters();
    std::fprintf(stderr,
                 "isrf_sweepd: exiting: %llu request(s), %llu "
                 "computed, %llu store hit(s), %llu shed, %llu timed "
                 "out\n",
                 static_cast<unsigned long long>(c.requests),
                 static_cast<unsigned long long>(c.computed),
                 static_cast<unsigned long long>(c.storeHits),
                 static_cast<unsigned long long>(c.rejectedOverload),
                 static_cast<unsigned long long>(c.timedOut));
    return 0;
}
