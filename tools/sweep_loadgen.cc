/**
 * @file
 * Load generator + latency harness for the sweep service daemon.
 *
 *   sweep_loadgen --socket /tmp/isrf.sock [--requests N]
 *                 [--connections C] [--hot N] [--hot-frac F]
 *                 [--workloads CSV] [--machines CSV] [--repeats N]
 *                 [--seed S] [--deadline-ms MS] [--retries N]
 *                 [--json FILE] [--dump FILE] [--quiet]
 *
 * Replays a *deterministic* request stream (a function of --seed and
 * the shape flags alone) of mixed hot and cold jobs against a running
 * isrf_sweepd: hot requests draw their job seed from a small set, so
 * after first touch they are store hits; cold requests use a unique
 * seed each, so every one simulates. It reports throughput and
 * p50/p99/p999 latency split by served-from-store vs computed, writes
 * an isrf-perf-record-v1 record (--json) that tools/perf_diff can
 * gate on, and dumps every received result keyed by job fingerprint
 * (--dump) so two runs — e.g. before and after a daemon kill -9 — can
 * be compared byte-for-byte with cmp(1).
 */
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/env.h"
#include "util/json.h"
#include "util/jsonl.h"
#include "util/log.h"
#include "util/random.h"

using namespace isrf;

namespace {

struct Args
{
    std::string socketPath;
    size_t requests = 200;
    unsigned connections = 4;
    size_t hotSet = 4;
    double hotFrac = 0.8;
    std::vector<std::string> workloads{"FFT 2D"};
    std::vector<std::string> machines{"Base"};
    uint32_t repeats = 1;
    uint64_t seed = 1;
    double deadlineMs = 0.0;
    int64_t retries = -1;
    std::string jsonPath;
    std::string dumpPath;
    bool quiet = false;
};

/** One planned request (built up front; deterministic). */
struct PlannedRequest
{
    std::string workload;
    std::string machine;
    uint64_t jobSeed = 0;
};

/** One finished request. */
struct Sample
{
    size_t index = 0;
    double seconds = 0.0;
    bool ok = false;
    bool cached = false;
    std::string status;      ///< "done", ..., or the error code
    std::string key;         ///< fingerprint hex (ok responses)
    std::string resultText;  ///< raw result bytes (ok responses)
    uint64_t simCycles = 0;
};

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t c = s.find(',', pos);
        if (c == std::string::npos)
            c = s.size();
        if (c > pos)
            out.push_back(s.substr(pos, c - pos));
        pos = c + 1;
    }
    return out;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s --socket <path> [options]\n"
        "  --requests <n>     total requests (default 200)\n"
        "  --connections <n>  concurrent client connections "
        "(default 4)\n"
        "  --hot <n>          size of the hot job set (default 4)\n"
        "  --hot-frac <f>     fraction of requests drawn from the hot "
        "set (default 0.8)\n"
        "  --workloads <csv>  workload names (default 'FFT 2D')\n"
        "  --machines <csv>   machine kinds (default Base)\n"
        "  --repeats <n>      per-job repeats (default 1)\n"
        "  --seed <n>         stream seed; same seed = same request "
        "stream (default 1)\n"
        "  --deadline-ms <ms> per-request deadline (0 = server "
        "default)\n"
        "  --retries <n>      per-request retry budget (-1 = server "
        "default)\n"
        "  --json <file>      write an isrf-perf-record-v1 record\n"
        "  --dump <file>      write key -> result bytes, sorted "
        "(for cmp)\n"
        "  --quiet            summary only\n",
        argv0);
}

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Read one '\n'-terminated line (buffered across calls). */
bool
recvLine(int fd, std::string &buf, std::string &line)
{
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return true;
        }
        char chunk[1 << 14];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        buf.append(chunk, static_cast<size_t>(n));
    }
}

std::string
requestJson(const Args &args, const PlannedRequest &r)
{
    JsonWriter w;
    w.beginObject();
    w.field("op", std::string("run"));
    w.field("workload", r.workload);
    w.field("machine", r.machine);
    w.field("repeats", static_cast<uint64_t>(args.repeats));
    w.field("seed", r.jobSeed);
    if (args.deadlineMs > 0.0)
        w.field("deadline_ms", args.deadlineMs);
    if (args.retries >= 0)
        w.field("retries", static_cast<uint64_t>(args.retries));
    w.endObject();
    return w.str();
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(q *
        static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
printClass(const char *label, std::vector<double> lat)
{
    std::sort(lat.begin(), lat.end());
    std::printf("  %-8s %6zu  p50 %8.2fms  p99 %8.2fms  "
                "p999 %8.2fms\n",
                label, lat.size(), percentile(lat, 0.50) * 1e3,
                percentile(lat, 0.99) * 1e3,
                percentile(lat, 0.999) * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s expects a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        // Validated numeric parsing (util/env.h): junk like "10x",
        // "", or an overflowing literal is a usage error, not a
        // silently truncated strtoll result.
        auto flagError = [&](const char *flag, const std::string &why) {
            std::fprintf(stderr, "%s %s\n", flag, why.c_str());
            usage(argv[0]);
            std::exit(2);
        };
        auto badNumber = [&](const char *flag, const char *v) {
            flagError(flag, "expects a number, got '" +
                      std::string(v) + "'");
        };
        auto numU64 = [&](const char *flag) -> uint64_t {
            const char *v = next(flag);
            uint64_t n = 0;
            if (!parseU64(v, n))
                badNumber(flag, v);
            return n;
        };
        auto numI64 = [&](const char *flag) -> int64_t {
            const char *v = next(flag);
            int64_t n = 0;
            if (!parseI64(v, n))
                badNumber(flag, v);
            return n;
        };
        auto numF64 = [&](const char *flag) -> double {
            const char *v = next(flag);
            double d = 0;
            if (!parseF64(v, d))
                badNumber(flag, v);
            return d;
        };
        if (s == "--socket") {
            args.socketPath = next("--socket");
        } else if (s == "--requests") {
            args.requests = numU64("--requests");
        } else if (s == "--connections") {
            uint64_t n = numU64("--connections");
            if (n == 0 || n > 1024)
                flagError("--connections", "expects [1,1024]");
            args.connections = static_cast<unsigned>(n);
        } else if (s == "--hot") {
            args.hotSet = numU64("--hot");
        } else if (s == "--hot-frac") {
            double f = numF64("--hot-frac");
            if (f < 0.0 || f > 1.0)
                flagError("--hot-frac", "expects [0,1]");
            args.hotFrac = f;
        } else if (s == "--workloads") {
            args.workloads = splitCsv(next("--workloads"));
        } else if (s == "--machines") {
            args.machines = splitCsv(next("--machines"));
        } else if (s == "--repeats") {
            uint64_t n = numU64("--repeats");
            if (n == 0 || n > 0xffffffffull)
                flagError("--repeats", "expects [1,2^32)");
            args.repeats = static_cast<uint32_t>(n);
        } else if (s == "--seed") {
            args.seed = numU64("--seed");
        } else if (s == "--deadline-ms") {
            double ms = numF64("--deadline-ms");
            if (ms < 0.0)
                flagError("--deadline-ms", "expects a non-negative "
                          "number");
            args.deadlineMs = ms;
        } else if (s == "--retries") {
            int64_t n = numI64("--retries");
            if (n < -1 || n > 100)
                flagError("--retries", "expects [-1,100]");
            args.retries = n;
        } else if (s == "--json") {
            args.jsonPath = next("--json");
        } else if (s == "--dump") {
            args.dumpPath = next("--dump");
        } else if (s == "--quiet") {
            args.quiet = true;
        } else if (s == "--help" || s == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", s.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (args.socketPath.empty() || args.requests == 0 ||
        args.connections == 0 || args.workloads.empty() ||
        args.machines.empty() || args.hotSet == 0) {
        usage(argv[0]);
        return 2;
    }

    // ---- plan the stream (deterministic in --seed) -----------------
    // Hot requests reuse one of `hotSet` (workload, machine, seed)
    // combos; cold requests get a unique seed, so each simulates once.
    std::vector<PlannedRequest> plan(args.requests);
    Rng rng(args.seed);
    for (size_t i = 0; i < args.requests; i++) {
        PlannedRequest &r = plan[i];
        if (rng.uniform() < args.hotFrac) {
            uint64_t h = rng.below(args.hotSet);
            r.workload = args.workloads[h % args.workloads.size()];
            r.machine = args.machines[h % args.machines.size()];
            r.jobSeed = 1000 + h;
        } else {
            r.workload =
                args.workloads[rng.below(args.workloads.size())];
            r.machine =
                args.machines[rng.below(args.machines.size())];
            r.jobSeed = (1ull << 32) + i;
        }
    }

    // ---- fire it ---------------------------------------------------
    std::vector<Sample> samples(args.requests);
    std::atomic<size_t> connectFailures{0};
    auto t0 = std::chrono::steady_clock::now();

    auto client = [&](unsigned shard) {
        int fd = connectUnix(args.socketPath);
        if (fd < 0) {
            connectFailures.fetch_add(1);
            return;
        }
        std::string rxbuf, line;
        for (size_t i = shard; i < args.requests;
             i += args.connections) {
            Sample &smp = samples[i];
            smp.index = i;
            const std::string req = requestJson(args, plan[i]) + "\n";
            auto rt0 = std::chrono::steady_clock::now();
            if (!sendAll(fd, req) || !recvLine(fd, rxbuf, line)) {
                smp.status = "connection_lost";
                break;
            }
            smp.seconds = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - rt0).count();
            JsonLineView v(line);
            bool ok = false;
            if (!v.valid() || !v.getBool("ok", ok)) {
                smp.status = "bad_response";
                continue;
            }
            if (!ok) {
                v.getString("error", smp.status);
                continue;
            }
            smp.ok = true;
            v.getBool("cached", smp.cached);
            v.getString("status", smp.status);
            v.getString("key", smp.key);
            if (v.getRaw("result", smp.resultText)) {
                JsonLineView res(smp.resultText);
                res.getU64("cycles", smp.simCycles);
            }
        }
        ::close(fd);
    };

    std::vector<std::thread> threads;
    for (unsigned c = 0; c < args.connections; c++)
        threads.emplace_back(client, c);
    for (auto &t : threads)
        t.join();
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    // ---- aggregate -------------------------------------------------
    std::vector<double> hitLat, missLat;
    std::map<std::string, uint64_t> errors;  // code -> count
    size_t okCount = 0, notDone = 0;
    double sumSeconds = 0.0;
    uint64_t coldCycles = 0;
    double coldSeconds = 0.0;
    // per workload/machine cold + hit means for the perf record
    struct ComboAgg { double s = 0; size_t n = 0; };
    std::map<std::string, ComboAgg> coldCombo, hitCombo;
    for (const Sample &smp : samples) {
        if (!smp.ok) {
            if (!smp.status.empty())
                errors[smp.status]++;
            continue;
        }
        okCount++;
        sumSeconds += smp.seconds;
        if (smp.status != "done")
            notDone++;
        const std::string combo = plan[smp.index].workload + "/" +
            plan[smp.index].machine;
        if (smp.cached) {
            hitLat.push_back(smp.seconds);
            hitCombo[combo].s += smp.seconds;
            hitCombo[combo].n++;
        } else {
            missLat.push_back(smp.seconds);
            coldCycles += smp.simCycles;
            coldSeconds += smp.seconds;
            coldCombo[combo].s += smp.seconds;
            coldCombo[combo].n++;
        }
    }

    std::printf("sweep_loadgen: %zu/%zu ok in %.2fs (%.1f req/s), "
                "%zu hit(s), %zu computed\n",
                okCount, args.requests, wall,
                wall > 0.0 ? static_cast<double>(args.requests) / wall
                           : 0.0,
                hitLat.size(), missLat.size());
    printClass("hits:", hitLat);
    printClass("misses:", missLat);
    if (notDone)
        std::printf("  non-done ok responses: %zu\n", notDone);
    for (const auto &kv : errors)
        std::printf("  error %-16s %llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    if (connectFailures.load())
        std::printf("  connect failures: %zu\n",
                    connectFailures.load());

    // ---- --dump: sorted key -> result bytes ------------------------
    // Later responses for the same key overwrite earlier ones; for a
    // deterministic job they are byte-identical anyway, which is
    // exactly what two dumps compared with cmp(1) assert.
    if (!args.dumpPath.empty()) {
        std::map<std::string, std::string> byKey;
        for (const Sample &smp : samples)
            if (smp.ok && !smp.key.empty())
                byKey[smp.key] = smp.resultText;
        std::string out;
        for (const auto &kv : byKey) {
            out += kv.first;
            out += ' ';
            out += kv.second;
            out += '\n';
        }
        if (!writeTextFile(args.dumpPath, out))
            fatal("cannot write %s", args.dumpPath.c_str());
        if (!args.quiet)
            std::printf("  dumped %zu result(s) to %s\n",
                        byKey.size(), args.dumpPath.c_str());
    }

    // ---- --json: isrf-perf-record-v1 -------------------------------
    if (!args.jsonPath.empty()) {
        std::sort(hitLat.begin(), hitLat.end());
        std::sort(missLat.begin(), missLat.end());
        JsonWriter w;
        w.beginObject();
        w.field("schema", std::string("isrf-perf-record-v1"));
        w.field("bench", std::string("sweep_loadgen"));
        w.key("host").beginObject();
        w.field("cpus", static_cast<uint64_t>(
            std::thread::hardware_concurrency()));
        w.field("jobs", static_cast<uint64_t>(args.connections));
        w.endObject();
        w.key("totals").beginObject();
        w.field("wall_seconds", wall);
        w.field("sum_job_seconds", sumSeconds);
        w.field("jobs", static_cast<uint64_t>(args.requests));
        w.field("failed",
                static_cast<uint64_t>(args.requests - okCount));
        w.field("replayed", static_cast<uint64_t>(hitLat.size()));
        w.field("sim_cycles", coldCycles);
        // Rate over computed work only, like bench_sweep's totals:
        // hits contribute neither cycles nor meaningful seconds.
        w.field("sim_cycles_per_second",
                coldSeconds > 0.0
                    ? static_cast<double>(coldCycles) / coldSeconds
                    : 0.0);
        w.endObject();
        w.key("latency").beginObject();
        w.field("hit_count", static_cast<uint64_t>(hitLat.size()));
        w.field("hit_p50_ms", percentile(hitLat, 0.50) * 1e3);
        w.field("hit_p99_ms", percentile(hitLat, 0.99) * 1e3);
        w.field("hit_p999_ms", percentile(hitLat, 0.999) * 1e3);
        w.field("miss_count", static_cast<uint64_t>(missLat.size()));
        w.field("miss_p50_ms", percentile(missLat, 0.50) * 1e3);
        w.field("miss_p99_ms", percentile(missLat, 0.99) * 1e3);
        w.field("miss_p999_ms", percentile(missLat, 0.999) * 1e3);
        w.endObject();
        w.key("jobs").beginArray();
        // One aggregate entry per combo: computed requests as the
        // gateable metric, store hits marked replayed so perf_diff
        // drops them (their latency is transport, not simulation).
        for (const auto &kv : coldCombo) {
            const size_t slash = kv.first.find('/');
            w.beginObject();
            w.field("workload", kv.first.substr(0, slash));
            w.field("machine", kv.first.substr(slash + 1));
            w.field("status", std::string("done"));
            w.field("wall_seconds",
                    kv.second.n ? kv.second.s /
                        static_cast<double>(kv.second.n) : 0.0);
            w.field("replayed", false);
            w.endObject();
        }
        for (const auto &kv : hitCombo) {
            const size_t slash = kv.first.find('/');
            w.beginObject();
            w.field("workload", kv.first.substr(0, slash));
            w.field("machine", kv.first.substr(slash + 1));
            w.field("status", std::string("done"));
            w.field("wall_seconds",
                    kv.second.n ? kv.second.s /
                        static_cast<double>(kv.second.n) : 0.0);
            w.field("replayed", true);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (!writeTextFile(args.jsonPath, w.str()))
            fatal("cannot write %s", args.jsonPath.c_str());
        if (!args.quiet)
            std::printf("  wrote perf record to %s\n",
                        args.jsonPath.c_str());
    }

    const bool transportTrouble = connectFailures.load() > 0 ||
        errors.count("connection_lost") ||
        errors.count("bad_response");
    return transportTrouble ? 1 : 0;
}
