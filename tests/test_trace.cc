/**
 * @file
 * Tests for the event tracer: channel filtering, ring-buffer
 * wraparound, Chrome trace-event JSON structure, CSV export, name
 * interning, and the TraceScope RAII helper.
 *
 * The tracer is a process-wide singleton, so every test runs through a
 * fixture that disables tracing and clears the buffer on both sides.
 */
#include <gtest/gtest.h>

#include "sim/trace.h"
#include "util/json.h"

namespace isrf {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().disable();
        Tracer::instance().setCapacity(1 << 16);
    }
    void
    TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().setCapacity(1 << 16);
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    Tracer &t = Tracer::instance();
    EXPECT_FALSE(t.on());
    uint16_t ch = t.channel("trace_test_off");
    t.instant(ch, "ev", 1);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.totalRecorded(), 0u);
}

TEST_F(TraceTest, ChannelFiltering)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("trace_test_a");
    EXPECT_TRUE(t.on());
    uint16_t a = t.channel("trace_test_a");
    uint16_t b = t.channel("trace_test_b");
    EXPECT_TRUE(t.channelEnabled(a));
    EXPECT_FALSE(t.channelEnabled(b));
    t.instant(a, "hit", 10);
    t.instant(b, "filtered", 11);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].channel, a);
    EXPECT_STREQ(evs[0].name, "hit");
    EXPECT_EQ(evs[0].ts, 10u);
}

TEST_F(TraceTest, EnableSpecParsing)
{
    Tracer &t = Tracer::instance();
    uint16_t ch = t.channel("trace_test_spec");
    t.enableChannels("all");
    EXPECT_TRUE(t.channelEnabled(ch));
    t.enableChannels("0");
    EXPECT_FALSE(t.on());
    EXPECT_FALSE(t.channelEnabled(ch));
    // Spec names registered *before* the channel exists apply at
    // registration time.
    t.enableChannels("trace_test_pending, trace_test_spec");
    uint16_t late = t.channel("trace_test_pending");
    EXPECT_TRUE(t.channelEnabled(late));
    EXPECT_TRUE(t.channelEnabled(ch));
}

TEST_F(TraceTest, RingWraparound)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("trace_test_ring");
    uint16_t ch = t.channel("trace_test_ring");
    t.setCapacity(8);
    for (uint64_t i = 0; i < 20; i++)
        t.instant(ch, "tick", i, i);
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.totalRecorded(), 20u);
    EXPECT_EQ(t.dropped(), 12u);
    // The ring holds the *last* 8 events, oldest first.
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 8u);
    for (size_t i = 0; i < evs.size(); i++)
        EXPECT_EQ(evs[i].arg, 12u + i);
    // lastEvents(n < size) returns the newest n.
    auto tail = t.lastEvents(3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail[0].arg, 17u);
    EXPECT_EQ(tail[2].arg, 19u);
}

TEST_F(TraceTest, ChromeJsonStructure)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("all");
    uint16_t a = t.channel("trace_test_ch1");
    uint16_t b = t.channel("trace_test_ch2");
    t.begin(a, "span", 5);
    t.end(a, "span", 9);
    t.instant(b, "mark", 6, 42);
    t.counter(b, "value", 7, 13);

    std::string json = t.chromeJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Channel metadata names each tid for Perfetto.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_test_ch1\""), std::string::npos);
    // All four phases appear.
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Counter events carry their value; timestamps are cycles.
    EXPECT_NE(json.find("\"value\":13"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
}

TEST_F(TraceTest, CsvExport)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("all");
    uint16_t ch = t.channel("trace_test_csv");
    t.instant(ch, "ev", 3, 7);
    std::string csv = t.csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "cycle,channel,type,name,arg");
    EXPECT_NE(csv.find("3,trace_test_csv,i,ev,7"), std::string::npos);
}

TEST_F(TraceTest, InternedNamesOutliveSource)
{
    Tracer &t = Tracer::instance();
    const char *p1;
    {
        std::string dynamic = "kernel_" + std::to_string(123);
        p1 = t.intern(dynamic);
    }
    const char *p2 = t.intern("kernel_123");
    EXPECT_EQ(p1, p2) << "same string should intern to one pointer";
    EXPECT_STREQ(p1, "kernel_123");
}

TEST_F(TraceTest, TraceScopeEmitsBeginEnd)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("all");
    uint16_t ch = t.channel("trace_test_scope");
    {
        TraceScope s(t, ch, "work", 100);
        s.close(110);
    }
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].type, TraceEventType::Begin);
    EXPECT_EQ(evs[0].ts, 100u);
    EXPECT_EQ(evs[1].type, TraceEventType::End);
    EXPECT_EQ(evs[1].ts, 110u);
}

TEST_F(TraceTest, InstancesAreIndependent)
{
    // Per-machine tracers must not share channels, filters, or rings
    // with each other or with the global CLI shim.
    Tracer a, b;
    a.enableChannels("all");
    uint16_t chA = a.channel("iso_a");
    a.instant(chA, "ev", 1);
    EXPECT_TRUE(a.on());
    EXPECT_FALSE(b.on());
    EXPECT_FALSE(Tracer::instance().on());
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(b.size(), 0u);
    b.enableChannels("iso_b_only");
    uint16_t chB = b.channel("iso_a");  // same name, different tracer
    b.instant(chB, "ev", 2);
    EXPECT_EQ(b.size(), 0u) << "b's filter must not inherit a's";
}

TEST_F(TraceTest, MergeFromRemapsChannelsAndNames)
{
    Tracer &g = Tracer::instance();
    g.enableChannels("all");
    uint16_t gch = g.channel("trace_test_merge_pre");
    g.instant(gch, "pre", 1);

    Tracer m;
    m.enableChannels("all");
    uint16_t mch = m.channel("trace_test_merge_src");
    {
        std::string dynamicName = "dyn_ev";
        m.instant(mch, dynamicName.c_str(), 5, 42);
    }
    g.mergeFrom(m);

    auto evs = g.events();
    ASSERT_EQ(evs.size(), 2u);
    // Merged event lands on the *global* channel of the same name,
    // with its name re-interned into the global tracer.
    uint16_t expect = g.channel("trace_test_merge_src");
    EXPECT_EQ(evs[1].channel, expect);
    EXPECT_STREQ(evs[1].name, "dyn_ev");
    EXPECT_EQ(evs[1].ts, 5u);
    EXPECT_EQ(evs[1].arg, 42u);
    EXPECT_EQ(evs[1].name, g.intern("dyn_ev"))
        << "merged names must point into the destination intern pool";
}

TEST_F(TraceTest, DumpTailIsLabelled)
{
    Tracer t;
    t.enableChannels("all");
    uint16_t ch = t.channel("trace_test_tail");
    for (uint64_t i = 0; i < 5; i++)
        t.instant(ch, "tick", i);
    char *buf = nullptr;
    size_t len = 0;
    FILE *f = open_memstream(&buf, &len);
    ASSERT_NE(f, nullptr);
    t.dumpTail(f, 3, "FFT 2D/isrf4");
    fclose(f);
    std::string out(buf, len);
    free(buf);
    EXPECT_NE(out.find("[FFT 2D/isrf4]"), std::string::npos) << out;
    EXPECT_NE(out.find("last 3 trace events"), std::string::npos);
}

TEST_F(TraceTest, ClearKeepsRegistrations)
{
    Tracer &t = Tracer::instance();
    t.enableChannels("all");
    uint16_t ch = t.channel("trace_test_clear");
    t.instant(ch, "ev", 1);
    EXPECT_GE(t.size(), 1u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.channelEnabled(ch));
    EXPECT_EQ(t.channel("trace_test_clear"), ch);
}

} // namespace
} // namespace isrf
