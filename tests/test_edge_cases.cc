/**
 * @file
 * Edge-case coverage: partial flushes, multi-word indexed writes, DMA
 * vs indexed arbitration, stat resets, and separation selection.
 */
#include <gtest/gtest.h>

#include "core/stream_program.h"
#include "test_helpers.h"
#include "workloads/igraph.h"

namespace isrf {
namespace {

TEST(SrfEdge, MultiWordIndexedWriteRecord)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.indexed = true;
    cfg.layout = StreamLayout::PerLane;
    cfg.lengthWords = 64;
    cfg.recordWords = 4;
    SlotId id = srf.openSlot(cfg);
    Word rec[4] = {11, 22, 33, 44};
    Cycle now = 0;
    srf.beginCycle(now);
    ASSERT_TRUE(srf.idxIssueWrite(3, id, 2, rec));  // words 8..11
    srf.endCycle(now);
    now++;
    for (int i = 0; i < 8; i++) {
        srf.beginCycle(now);
        srf.endCycle(now);
        now++;
    }
    EXPECT_TRUE(srf.idxWritesDrained(id));
    EXPECT_EQ(srf.readWord(3, 8), 11u);
    EXPECT_EQ(srf.readWord(3, 11), 44u);
}

TEST(SrfEdge, FlushEmptyOutputIsImmediatelyComplete)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::SequentialOnly, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    srf.flushSlot(id);
    EXPECT_TRUE(srf.flushComplete(id));
    EXPECT_EQ(srf.wordsWritten(id), 0u);
}

TEST(SrfEdge, SingleWordFlushDrains)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::SequentialOnly, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    srf.seqWrite(5, id, 0x77);
    srf.flushSlot(id);
    Cycle now = 0;
    for (int i = 0; i < 4 && !srf.flushComplete(id); i++) {
        srf.beginCycle(now);
        srf.endCycle(now);
        now++;
    }
    EXPECT_TRUE(srf.flushComplete(id));
    EXPECT_EQ(srf.wordsWritten(id), 1u);
}

TEST(SrfEdge, DmaAndIndexedShareCyclesFairly)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig tc;
    tc.dir = StreamDir::In;
    tc.indexed = true;
    tc.layout = StreamLayout::PerLane;
    tc.lengthWords = 128;
    SlotId tbl = srf.openSlot(tc);
    SlotConfig dc;
    dc.base = 256;
    dc.lengthWords = 64;
    SlotId dma = srf.openSlot(dc);

    Rng rng(1);
    int dmaGrants = 0;
    Cycle now = 0;
    Word out[4];
    for (int c = 0; c < 40; c++) {
        srf.beginCycle(now);
        srf.memClaim(dma, [&]() { dmaGrants++; });
        for (uint32_t l = 0; l < geom.lanes; l++) {
            while (srf.idxDataReady(l, tbl, now))
                srf.idxDataPop(l, tbl, out);
            if (srf.idxCanIssue(l, tbl))
                srf.idxIssueRead(l, tbl,
                    static_cast<uint32_t>(rng.below(128)));
        }
        srf.endCycle(now);
        now++;
    }
    // Round-robin between the DMA claimant and the indexed bundle.
    EXPECT_GE(dmaGrants, 15);
    EXPECT_LE(dmaGrants, 25);
    EXPECT_GT(srf.idxInLaneWords(), 50u);
}

TEST(MachineEdge, ResetStatsClearsCounters)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(cfg);
    std::vector<Word> data(256, 1);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    prog.load(in, 0);
    prog.run();
    EXPECT_GT(m.breakdown().total(), 0u);
    EXPECT_GT(m.mem().dram().wordsTransferred(), 0u);
    m.resetStats();
    EXPECT_EQ(m.breakdown().total(), 0u);
    EXPECT_EQ(m.mem().dram().wordsTransferred(), 0u);
}

TEST(MachineEdge, ScheduleKernelPicksCrossLaneSeparation)
{
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.dram.capacityWords = 1 << 16;
    cfg.inLaneSeparation = 6;
    cfg.crossLaneSeparation = 20;
    Machine m;
    m.init(cfg);
    KernelGraph inLane = test::makeLookupKernel();
    EXPECT_EQ(m.scheduleKernel(inLane).separation, 6u);
    KernelGraph cross = igIdxKernelGraph(16);
    EXPECT_EQ(m.scheduleKernel(cross).separation, 20u);
}

TEST(WorkloadEdge, DifferentSeedsChangeTiming)
{
    WorkloadOptions a;
    a.repeats = 1;
    a.seed = 1;
    WorkloadOptions b = a;
    b.seed = 2;
    WorkloadResult ra = runIgraph("IG_DMS", MachineConfig::isrf4(), a);
    WorkloadResult rb = runIgraph("IG_DMS", MachineConfig::isrf4(), b);
    EXPECT_TRUE(ra.correct);
    EXPECT_TRUE(rb.correct);
    EXPECT_NE(ra.cycles, rb.cycles) << "different graphs, different time";
}

TEST(WorkloadEdge, SameSeedIsFullyDeterministic)
{
    WorkloadOptions o;
    o.repeats = 1;
    WorkloadResult a = runIgraph("IG_DMS", MachineConfig::isrf4(), o);
    WorkloadResult b = runIgraph("IG_DMS", MachineConfig::isrf4(), o);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramWords, b.dramWords);
    EXPECT_EQ(a.breakdown.total(), b.breakdown.total());
}

} // namespace
} // namespace isrf
