/**
 * @file
 * Host-side self-profiler (sim/profiler.h) and perf-record comparator
 * (driver/perf_diff.h) tests.
 *
 * The profiler's cardinal rule is zero observable effect: a profiled
 * run's resultJson() and machineReportJson() (minus its own "profile"
 * section) must be byte-identical to an unprofiled run's, under both
 * engine modes. The perf_diff tests pin the CI gate's threshold
 * semantics: regression vs improvement direction handling, the
 * absolute noise floor, and missing-metric classification.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/report.h"
#include "driver/perf_diff.h"
#include "sim/profiler.h"
#include "util/json.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** setenv/unsetenv with automatic restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool hadOld_ = false;
};

// ----------------------------------------------------------------------
// Spec parsing and env wiring
// ----------------------------------------------------------------------

TEST(ProfilerSpec, ParsesValidSpecs)
{
    bool enabled = false;
    uint64_t stride = 0;
    std::vector<std::string> errs;

    EXPECT_TRUE(Profiler::parseSpec("on", enabled, stride, &errs));
    EXPECT_TRUE(enabled);
    EXPECT_EQ(stride, Profiler::kDefaultStride);

    EXPECT_TRUE(Profiler::parseSpec("1", enabled, stride, &errs));
    EXPECT_TRUE(enabled);

    EXPECT_TRUE(Profiler::parseSpec("on:16", enabled, stride, &errs));
    EXPECT_TRUE(enabled);
    EXPECT_EQ(stride, 16u);

    EXPECT_TRUE(Profiler::parseSpec("off", enabled, stride, &errs));
    EXPECT_FALSE(enabled);
    EXPECT_TRUE(Profiler::parseSpec("0", enabled, stride, &errs));
    EXPECT_FALSE(enabled);

    EXPECT_TRUE(errs.empty());
}

TEST(ProfilerSpec, RejectsMalformedSpecs)
{
    bool enabled = true;
    uint64_t stride = 7;
    std::vector<std::string> errs;

    // Empty = unset: no change, no error.
    EXPECT_FALSE(Profiler::parseSpec("", enabled, stride, &errs));
    EXPECT_TRUE(errs.empty());

    // Malformed specs: error collected, outputs untouched.
    for (const char *bad : {"yes", "on:", "on:0", "on:x", "2", "ON"}) {
        errs.clear();
        EXPECT_FALSE(Profiler::parseSpec(bad, enabled, stride, &errs))
            << bad;
        EXPECT_EQ(errs.size(), 1u) << bad;
        EXPECT_TRUE(enabled);
        EXPECT_EQ(stride, 7u);
    }
}

TEST(ProfilerSpec, FromEnvWiresProfileKnobs)
{
    {
        ScopedEnv env("ISRF_PROFILE", "on:32");
        MachineConfig cfg = MachineConfig::base().fromEnv();
        EXPECT_TRUE(cfg.profileEnabled);
        EXPECT_EQ(cfg.profileStride, 32u);
    }
    {
        ScopedEnv env("ISRF_PROFILE", "off");
        MachineConfig cfg = MachineConfig::base().fromEnv();
        EXPECT_FALSE(cfg.profileEnabled);
    }
    {
        // Invalid values warn and leave the defaults in place.
        ScopedEnv env("ISRF_PROFILE", "bogus");
        MachineConfig cfg = MachineConfig::base().fromEnv();
        EXPECT_FALSE(cfg.profileEnabled);
        EXPECT_EQ(cfg.profileStride, 64u);
    }
    {
        ScopedEnv env("ISRF_PROFILE", nullptr);
        MachineConfig cfg = MachineConfig::base().fromEnv();
        EXPECT_FALSE(cfg.profileEnabled);
    }
}

// ----------------------------------------------------------------------
// Scoped timers
// ----------------------------------------------------------------------

TEST(ProfilerScope, DisabledProfilerRecordsNothing)
{
    Profiler p;
    {
        Profiler::Scope s(p, Profiler::Report);
    }
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(p.hasData());
    EXPECT_EQ(p.phase(Profiler::Report).calls, 0u);
}

TEST(ProfilerScope, CountsAndTimesTopLevelScopes)
{
    Profiler p;
    p.configure(true, 1);
    for (int i = 0; i < 5; i++) {
        Profiler::Scope s(p, Profiler::Report);
    }
    Profiler::PhaseStats s = p.phase(Profiler::Report);
    EXPECT_EQ(s.calls, 5u);
    EXPECT_EQ(s.timed, 5u);  // Report is always timed
    EXPECT_TRUE(p.hasData());
}

TEST(ProfilerScope, ReentrantSamePhaseCountsOnce)
{
    Profiler p;
    p.configure(true, 1);
    {
        Profiler::Scope outer(p, Profiler::Run);
        {
            Profiler::Scope inner(p, Profiler::Run);
            {
                Profiler::Scope inner2(p, Profiler::Run);
            }
        }
    }
    // Only the outermost scope counts — recursion must not inflate
    // call counts or double-book the same wall time.
    Profiler::PhaseStats s = p.phase(Profiler::Run);
    EXPECT_EQ(s.calls, 1u);
    EXPECT_EQ(s.timed, 1u);

    // And the guard resets: a later top-level scope counts again.
    {
        Profiler::Scope again(p, Profiler::Run);
    }
    EXPECT_EQ(p.phase(Profiler::Run).calls, 2u);
}

TEST(ProfilerScope, DifferentPhasesNestIndependently)
{
    Profiler p;
    p.configure(true, 1);
    {
        Profiler::Scope outer(p, Profiler::MachineTick);
        {
            Profiler::Scope inner(p, Profiler::MemTick);
        }
        {
            Profiler::Scope inner(p, Profiler::ClusterTick);
        }
    }
    EXPECT_EQ(p.phase(Profiler::MachineTick).calls, 1u);
    EXPECT_EQ(p.phase(Profiler::MemTick).calls, 1u);
    EXPECT_EQ(p.phase(Profiler::ClusterTick).calls, 1u);
}

TEST(ProfilerScope, StrideSamplesHotPhases)
{
    Profiler p;
    p.configure(true, 4);
    ASSERT_TRUE(Profiler::phaseSampled(Profiler::MachineTick));
    ASSERT_FALSE(Profiler::phaseSampled(Profiler::Report));
    for (int i = 0; i < 8; i++) {
        Profiler::Scope s(p, Profiler::MachineTick);
        Profiler::Scope r(p, Profiler::Report);
    }
    // Sampled phase: every call counted, 1 in 4 timed (entries 0, 4).
    Profiler::PhaseStats hot = p.phase(Profiler::MachineTick);
    EXPECT_EQ(hot.calls, 8u);
    EXPECT_EQ(hot.timed, 2u);
    // Coarse phase: always timed regardless of stride.
    Profiler::PhaseStats coarse = p.phase(Profiler::Report);
    EXPECT_EQ(coarse.calls, 8u);
    EXPECT_EQ(coarse.timed, 8u);
    // Extrapolation scales measured ns to the full call count.
    if (hot.ns > 0)
        EXPECT_GT(hot.estNs(), static_cast<double>(hot.ns));
}

TEST(ProfilerScope, MergeAndResetAccumulate)
{
    Profiler a, b;
    a.configure(true, 1);
    b.configure(true, 1);
    {
        Profiler::Scope s(a, Profiler::Journal);
    }
    {
        Profiler::Scope s(b, Profiler::Journal);
        Profiler::Scope t(b, Profiler::Report);
    }
    a.mergeFrom(b);
    EXPECT_EQ(a.phase(Profiler::Journal).calls, 2u);
    EXPECT_EQ(a.phase(Profiler::Report).calls, 1u);

    a.reset();
    EXPECT_FALSE(a.hasData());
    EXPECT_TRUE(a.enabled()) << "reset clears data, not configuration";
}

// ----------------------------------------------------------------------
// Exports
// ----------------------------------------------------------------------

TEST(ProfilerExport, ReportAndChromeTraceAreValidJson)
{
    Profiler p;
    p.configure(true, 2);
    for (int i = 0; i < 6; i++) {
        Profiler::Scope s(p, Profiler::MachineTick);
        Profiler::Scope r(p, Profiler::Report);
    }
    std::string rep = p.reportJson();
    EXPECT_TRUE(jsonValid(rep)) << rep;
    EXPECT_NE(rep.find("\"stride\":2"), std::string::npos);
    EXPECT_NE(rep.find("\"machine_tick\""), std::string::npos);
    EXPECT_NE(rep.find("\"report_serialize\""), std::string::npos);

    std::string trace = p.chromeTraceJson();
    EXPECT_TRUE(jsonValid(trace)) << trace;
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

    std::string path = ::testing::TempDir() + "isrf_prof_trace.json";
    EXPECT_TRUE(p.writeChromeTrace(path));
    std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Zero observable effect on simulation results
// ----------------------------------------------------------------------

WorkloadResult
runProfiled(EngineMode mode, bool profiled)
{
    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF4);
    cfg.engineMode = mode;
    cfg.profileEnabled = profiled;
    cfg.profileStride = 8;
    WorkloadOptions opts;
    opts.repeats = 1;
    return runWorkload("FFT 2D", cfg, opts);
}

TEST(ProfilerInvariance, ResultJsonByteIdenticalDense)
{
    std::string off = resultJson(runProfiled(EngineMode::Dense, false));
    std::string on = resultJson(runProfiled(EngineMode::Dense, true));
    EXPECT_EQ(off, on)
        << "profiling must not perturb simulation results";
}

TEST(ProfilerInvariance, ResultJsonByteIdenticalSkip)
{
    std::string off = resultJson(runProfiled(EngineMode::Skip, false));
    std::string on = resultJson(runProfiled(EngineMode::Skip, true));
    EXPECT_EQ(off, on);
}

TEST(ProfilerInvariance, MachineReportGainsProfileOnlyWhenEnabled)
{
    MachineConfig cfg = MachineConfig::make(MachineKind::Base);
    for (bool profiled : {false, true}) {
        cfg.profileEnabled = profiled;
        Machine m;
        m.init(cfg);
        m.step(64);
        std::string json = machineReportJson(m);
        EXPECT_TRUE(jsonValid(json));
        EXPECT_EQ(json.find("\"profile\"") != std::string::npos,
                  profiled)
            << "profile section present iff profiling enabled";
        std::string text = machineReport(m);
        EXPECT_EQ(text.find("profile (host") != std::string::npos,
                  profiled);
    }
}

TEST(ProfilerInvariance, HarvestMergesIntoGlobalAggregate)
{
    uint64_t before =
        Profiler::instance().phase(Profiler::Run).calls;
    runProfiled(EngineMode::Dense, true);
    uint64_t after = Profiler::instance().phase(Profiler::Run).calls;
    EXPECT_GT(after, before)
        << "profiled machines must fold into Profiler::instance()";

    // Unprofiled machines must NOT touch the global aggregate.
    before = after;
    runProfiled(EngineMode::Dense, false);
    after = Profiler::instance().phase(Profiler::Run).calls;
    EXPECT_EQ(after, before);
}

// ----------------------------------------------------------------------
// perf_diff
// ----------------------------------------------------------------------

std::string
record(double wallSeconds, double cyclesPerSecond,
       double sortSeconds = 0.5, bool sortReplayed = false,
       const char *schema = "isrf-perf-record-v1")
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", std::string(schema));
    w.field("bench", std::string("sweep"));
    w.key("totals").beginObject();
    w.field("wall_seconds", wallSeconds);
    w.field("sum_job_seconds", wallSeconds);
    w.field("sim_cycles_per_second", cyclesPerSecond);
    w.endObject();
    w.key("jobs").beginArray();
    w.beginObject();
    w.field("workload", std::string("Sort"));
    w.field("machine", std::string("ISRF4"));
    w.field("wall_seconds", sortSeconds);
    w.field("replayed", sortReplayed);
    w.endObject();
    w.endArray();
    w.endObject();
    return w.str();
}

TEST(PerfDiff, WithinNoisePasses)
{
    PerfDiffOptions opts;
    opts.threshold = 0.25;
    auto res = perfDiff(record(10.0, 1e6), record(11.0, 0.95e6), opts);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_FALSE(res.regression()) << res.summary();
    for (const auto &d : res.deltas)
        EXPECT_EQ(d.kind, PerfDeltaKind::Noise) << d.metric;
}

TEST(PerfDiff, FlagsWallTimeRegression)
{
    PerfDiffOptions opts;
    opts.threshold = 0.20;
    // +50% wall time: far beyond a 20% threshold.
    auto res = perfDiff(record(10.0, 1e6), record(15.0, 1e6), opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.regression()) << res.summary();
    bool found = false;
    for (const auto &d : res.deltas)
        if (d.metric == "totals.wall_seconds") {
            EXPECT_EQ(d.kind, PerfDeltaKind::Regression);
            EXPECT_NEAR(d.frac, 0.5, 1e-9);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(PerfDiff, CyclesPerSecondIsHigherIsBetter)
{
    PerfDiffOptions opts;
    opts.threshold = 0.20;
    // Throughput halved = regression even though the number went DOWN.
    auto res = perfDiff(record(10.0, 1e6), record(10.0, 0.5e6), opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.regression()) << res.summary();

    // Throughput doubled = improvement, not a regression.
    res = perfDiff(record(10.0, 1e6), record(10.0, 2e6), opts);
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.regression()) << res.summary();
    bool improved = false;
    for (const auto &d : res.deltas)
        if (d.metric == "totals.sim_cycles_per_second")
            improved = d.kind == PerfDeltaKind::Improvement;
    EXPECT_TRUE(improved);
}

TEST(PerfDiff, ImprovementIsNotRegression)
{
    auto res = perfDiff(record(10.0, 1e6), record(5.0, 1e6));
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.regression());
}

TEST(PerfDiff, MinSecondsFloorsTinyAbsoluteChanges)
{
    PerfDiffOptions opts;
    opts.threshold = 0.20;
    opts.minSeconds = 0.05;
    // +100% on a 10 ms job is under the 50 ms absolute floor: noise.
    auto res = perfDiff(record(10.0, 1e6, 0.01),
                        record(10.0, 1e6, 0.02), opts);
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.regression()) << res.summary();

    // The same fraction above the floor IS a regression.
    res = perfDiff(record(10.0, 1e6, 0.5), record(10.0, 1e6, 1.0),
                   opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.regression()) << res.summary();
}

TEST(PerfDiff, MissingMetricClassification)
{
    // Baseline has the Sort job; current replays it (dropped from the
    // metric set) — a baseline metric missing from current is a
    // failure (it can hide a deleted benchmark).
    auto res = perfDiff(record(10.0, 1e6, 0.5, false),
                        record(10.0, 1e6, 0.5, true));
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.regression()) << res.summary();
    bool sawMissing = false;
    for (const auto &d : res.deltas)
        if (d.kind == PerfDeltaKind::MissingInCurrent)
            sawMissing = true;
    EXPECT_TRUE(sawMissing);

    // The reverse — a new metric with no baseline — is informational.
    res = perfDiff(record(10.0, 1e6, 0.5, true),
                   record(10.0, 1e6, 0.5, false));
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res.regression()) << res.summary();
    bool sawNew = false;
    for (const auto &d : res.deltas)
        if (d.kind == PerfDeltaKind::MissingInBaseline)
            sawNew = true;
    EXPECT_TRUE(sawNew);
}

TEST(PerfDiff, RejectsBadInput)
{
    EXPECT_FALSE(perfDiff("not json", record(1, 1)).ok());
    EXPECT_FALSE(perfDiff(record(1, 1), "{}").ok());
    // Wrong schema tag: refuse rather than compare garbage.
    EXPECT_FALSE(
        perfDiff(record(1, 1), record(1, 1, 0.5, false, "v999")).ok());
}

TEST(PerfDiff, SplitJsonArrayHandlesNestingAndStrings)
{
    std::vector<std::string> out;
    EXPECT_TRUE(splitJsonArray("[]", out));
    EXPECT_TRUE(out.empty());

    EXPECT_TRUE(splitJsonArray("[1,2,3]", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1], "2");

    EXPECT_TRUE(splitJsonArray(
        R"([{"a":[1,2]},{"s":"br,]ack\"et"},[3,[4]]])", out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], R"({"a":[1,2]})");
    EXPECT_EQ(out[1], R"({"s":"br,]ack\"et"})");
    EXPECT_EQ(out[2], "[3,[4]]");

    EXPECT_FALSE(splitJsonArray("{\"a\":1}", out));
    EXPECT_FALSE(splitJsonArray("[1,2", out));
}

} // namespace
} // namespace isrf
