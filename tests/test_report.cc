/**
 * @file
 * Tests for the machine report module and its energy-count harvesting.
 */
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/stream_program.h"
#include "test_helpers.h"
#include "util/json.h"

namespace isrf {
namespace {

/** Run a small copy program on a machine built from cfg. */
void
runCopyProgram(Machine &m, MachineConfig cfg)
{
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    std::vector<Word> data(256, 3);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    static KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    prog.run();
}

TEST(Report, ContainsAllSections)
{
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(cfg);
    std::vector<Word> data(256, 3);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    prog.run();

    std::string rep = machineReport(m);
    EXPECT_NE(rep.find("Machine: ISRF4"), std::string::npos);
    EXPECT_NE(rep.find("lane-cycles"), std::string::npos);
    EXPECT_NE(rep.find("dram: words="), std::string::npos);
    EXPECT_NE(rep.find("copy"), std::string::npos) << "kernel table";
    EXPECT_NE(rep.find("energy: total="), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    ReportOptions opts;
    opts.includeEnergy = false;
    opts.includeKernels = false;
    std::string rep = machineReport(m, opts);
    EXPECT_EQ(rep.find("energy:"), std::string::npos);
}

TEST(Report, EnergyCountsMatchMachineCounters)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    EnergyCounts c = energyCounts(m);
    EXPECT_EQ(c.seqSrfWords, 0u);
    EXPECT_EQ(c.dramWords, 0u);
}

TEST(Report, CacheSectionOnlyOnCacheMachine)
{
    Machine m;
    MachineConfig cfg = MachineConfig::cacheCfg();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    std::string rep = machineReport(m);
    EXPECT_NE(rep.find("cache: hits="), std::string::npos);

    Machine b;
    MachineConfig bc = MachineConfig::base();
    bc.dram.capacityWords = 1 << 16;
    b.init(bc);
    EXPECT_EQ(machineReport(b).find("cache: hits="), std::string::npos);
}

TEST(ReportJson, IsValidAndMatchesTextCounters)
{
    Machine m;
    runCopyProgram(m, MachineConfig::isrf4());

    std::string text = machineReport(m);
    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json)) << json;

    // The JSON report draws from the same machine counters as the text
    // report: spot-check that the headline values agree.
    EXPECT_NE(json.find("\"machine\":\"ISRF4\""), std::string::npos);
    auto expectField = [&](const std::string &key, uint64_t v) {
        std::string needle =
            "\"" + key + "\":" + std::to_string(v);
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    };
    expectField("cycles", m.now());
    expectField("seq_words", m.srf().seqWordsAccessed());
    expectField("in_lane_idx_words", m.srf().idxInLaneWords());
    expectField("words", m.mem().dram().wordsTransferred());
    expectField("loop_body", m.breakdown().loopBody);
    // And the text report shows the same dram word count.
    EXPECT_NE(text.find("dram: words=" +
                  std::to_string(m.mem().dram().wordsTransferred())),
              std::string::npos);
    // Kernel table appears in both.
    EXPECT_NE(json.find("\"name\":\"copy\""), std::string::npos);
    EXPECT_NE(text.find("copy"), std::string::npos);
}

TEST(ReportJson, SectionsCanBeDisabled)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    ReportOptions opts;
    opts.includeEnergy = false;
    opts.includeKernels = false;
    std::string json = machineReportJson(m, opts);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_EQ(json.find("\"energy\""), std::string::npos);
    EXPECT_EQ(json.find("\"kernels\""), std::string::npos);
}

TEST(ReportJson, CacheSectionOnlyOnCacheMachine)
{
    Machine m;
    MachineConfig cfg = MachineConfig::cacheCfg();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_NE(json.find("\"cache\""), std::string::npos);

    Machine b;
    MachineConfig bc = MachineConfig::base();
    bc.dram.capacityWords = 1 << 16;
    b.init(bc);
    EXPECT_EQ(machineReportJson(b).find("\"cache\""), std::string::npos);
}

TEST(Sampler, RecordsIntervalsAtConfiguredRate)
{
    Machine m;
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.statSampleInterval = 64;
    runCopyProgram(m, cfg);

    ASSERT_NE(m.sampler(), nullptr);
    const auto &ivs = m.sampler()->intervals();
    ASSERT_FALSE(ivs.empty());
    for (const StatInterval &iv : ivs) {
        EXPECT_EQ(iv.end - iv.start, 64u);
        EXPECT_EQ(iv.end % 64, 0u);
    }
    // Intervals tile the run contiguously.
    for (size_t i = 1; i < ivs.size(); i++)
        EXPECT_EQ(ivs[i].start, ivs[i - 1].end);
}

TEST(Sampler, DeltasSumToMachineCounters)
{
    Machine m;
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.statSampleInterval = 32;
    runCopyProgram(m, cfg);

    ASSERT_NE(m.sampler(), nullptr);
    // Flush the partial final interval so deltas cover the whole run.
    m.sampler()->sampleNow(m.now());
    uint64_t dramDeltaSum = 0;
    for (const StatInterval &iv : m.sampler()->intervals()) {
        auto it = iv.deltas.find("dram.words");
        ASSERT_NE(it, iv.deltas.end());
        dramDeltaSum += it->second;
    }
    EXPECT_EQ(dramDeltaSum, m.mem().dram().wordsTransferred());
}

TEST(Sampler, AppearsInJsonReportAndCsv)
{
    Machine m;
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.statSampleInterval = 64;
    runCopyProgram(m, cfg);
    ASSERT_NE(m.sampler(), nullptr);

    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_NE(json.find("\"samples\":["), std::string::npos);
    EXPECT_NE(json.find("\"deltas\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);

    std::string csv = m.sampler()->csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "start,end,stat,value,kind");
    EXPECT_NE(csv.find("dram.words"), std::string::npos);
    EXPECT_NE(csv.find(",gauge"), std::string::npos);
}

TEST(Sampler, DisabledByDefault)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    EXPECT_EQ(m.sampler(), nullptr);
    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_EQ(json.find("\"samples\":["), std::string::npos);
}

TEST(ReportJson, ConflictHistogramPresentOnIndexedRun)
{
    Machine m;
    runCopyProgram(m, MachineConfig::isrf4());
    // The conflict-degree histogram registers at machine init even if
    // this program never issues indexed reads.
    EXPECT_TRUE(m.srf().stats().hasHistogram("idx_conflict_degree"));
    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_NE(json.find("\"idx_conflict_degree\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

} // namespace
} // namespace isrf
