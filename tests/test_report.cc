/**
 * @file
 * Tests for the machine report module and its energy-count harvesting.
 */
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/stream_program.h"
#include "test_helpers.h"

namespace isrf {
namespace {

TEST(Report, ContainsAllSections)
{
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(cfg);
    std::vector<Word> data(256, 3);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    prog.run();

    std::string rep = machineReport(m);
    EXPECT_NE(rep.find("Machine: ISRF4"), std::string::npos);
    EXPECT_NE(rep.find("lane-cycles"), std::string::npos);
    EXPECT_NE(rep.find("dram: words="), std::string::npos);
    EXPECT_NE(rep.find("copy"), std::string::npos) << "kernel table";
    EXPECT_NE(rep.find("energy: total="), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    ReportOptions opts;
    opts.includeEnergy = false;
    opts.includeKernels = false;
    std::string rep = machineReport(m, opts);
    EXPECT_EQ(rep.find("energy:"), std::string::npos);
}

TEST(Report, EnergyCountsMatchMachineCounters)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    EnergyCounts c = energyCounts(m);
    EXPECT_EQ(c.seqSrfWords, 0u);
    EXPECT_EQ(c.dramWords, 0u);
}

TEST(Report, CacheSectionOnlyOnCacheMachine)
{
    Machine m;
    MachineConfig cfg = MachineConfig::cacheCfg();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    std::string rep = machineReport(m);
    EXPECT_NE(rep.find("cache: hits="), std::string::npos);

    Machine b;
    MachineConfig bc = MachineConfig::base();
    bc.dram.capacityWords = 1 << 16;
    b.init(bc);
    EXPECT_EQ(machineReport(b).find("cache: hits="), std::string::npos);
}

} // namespace
} // namespace isrf
