/**
 * @file
 * Tests for the paper's §7 future-work extensions implemented here:
 * read-write indexed data structures resident in the SRF.
 */
#include <gtest/gtest.h>

#include "test_helpers.h"
#include "workloads/micro.h"

namespace isrf {
namespace {

MachineConfig
smallConfig()
{
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.dram.capacityWords = 1 << 16;
    return cfg;
}

TEST(ReadWriteSlot, DirectSrfReadAndWriteInterleave)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.readWrite = true;
    cfg.layout = StreamLayout::PerLane;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    srf.configureSlotBinding(id, StreamDir::In, true, false, true);
    for (uint32_t w = 0; w < 64; w++)
        srf.writeWord(2, w, w);

    Cycle now = 0;
    auto cycle = [&](uint32_t n) {
        for (uint32_t i = 0; i < n; i++) {
            srf.beginCycle(now);
            srf.endCycle(now);
            now++;
        }
    };

    // Read record 5, then write record 5, then read it again: the FIFO
    // preserves issue order, so the second read sees the new value.
    srf.beginCycle(now);
    ASSERT_TRUE(srf.idxIssueRead(2, id, 5));
    Word nv[1] = {1000};
    ASSERT_TRUE(srf.idxIssueWrite(2, id, 5, nv));
    ASSERT_TRUE(srf.idxIssueRead(2, id, 5));
    srf.endCycle(now);
    now++;
    cycle(12);
    Word out[4];
    ASSERT_TRUE(srf.idxDataReady(2, id, now));
    srf.idxDataPop(2, id, out);
    EXPECT_EQ(out[0], 5u);  // old value
    ASSERT_TRUE(srf.idxDataReady(2, id, now));
    srf.idxDataPop(2, id, out);
    EXPECT_EQ(out[0], 1000u);  // value written in between
    EXPECT_EQ(srf.readWord(2, 5), 1000u);
    EXPECT_TRUE(srf.idxWritesDrained(id));
}

TEST(ReadWriteSlot, CrossLaneReadWriteRejected)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.indexed = true;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    EXPECT_DEATH(
        srf.configureSlotBinding(id, StreamDir::In, true, true, true),
        "cross-lane indexed write");
}

TEST(ReadWriteSlot, RequiresIndexedBinding)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    EXPECT_DEATH(
        srf.configureSlotBinding(id, StreamDir::In, false, false, true),
        "read-write bindings require");
}

TEST(ReadWriteSlot, KernelBuilderDeclaresRwStream)
{
    KernelBuilder b("rw");
    auto t = b.idxlRw("table");
    auto out = b.seqOut("o");
    auto v = b.readIdx(t, b.iterIdx());
    auto doubled = b.iadd(v, v);
    b.writeIdx(t, b.iterIdx(), doubled);
    b.write(out, doubled);
    KernelGraph g = b.build();
    EXPECT_EQ(g.streamSlots()[0].kind, StreamKind::IdxInLaneRw);
    EXPECT_TRUE(g.streamSlots()[0].isOutput);
    EXPECT_EQ(g.countOps(Opcode::IdxRead), 1u);
    EXPECT_EQ(g.countOps(Opcode::IdxWrite), 1u);
}

TEST(ReadWriteSlot, InPlaceUpdateKernelEndToEnd)
{
    // A machine-level in-place histogram-style update: each lane
    // increments records of an SRF-resident table selected by an input
    // stream — the "read-write data structures" use case of §7.
    Machine m;
    m.init(smallConfig());

    const uint32_t tableWords = 64, n = 256;
    SlotConfig tc;
    tc.layout = StreamLayout::PerLane;
    tc.lengthWords = tableWords;
    tc.indexed = true;
    tc.readWrite = true;
    SlotId tbl = m.srf().openSlot(tc);
    for (uint32_t l = 0; l < m.lanes(); l++)
        for (uint32_t w = 0; w < tableWords; w++)
            m.srf().writeWord(l, w, 0);

    SlotConfig ic;
    ic.lengthWords = n;
    ic.base = 128;
    SlotId in = m.srf().openSlot(ic);
    Rng rng(21);
    std::vector<Word> keys(n);
    for (auto &k : keys)
        k = static_cast<Word>(rng.below(tableWords));
    m.srf().fillSlot(in, keys);

    KernelBuilder b("bump");
    auto keysIn = b.seqIn("keys");
    auto table = b.idxlRw("table");
    auto k = b.read(keysIn);
    auto v = b.readIdx(table, k);
    b.writeIdx(table, k, b.iadd(v, b.constInt(1)));
    KernelGraph g = b.build();

    // Functional per-lane histogram + traces. Reads and writes of a key
    // must stay ordered, which the shared FIFO guarantees.
    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {in, tbl};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    for (auto &t : inv->laneTraces) {
        t.seqWrites.resize(2);
        t.idxReads.resize(2);
        t.idxWrites.resize(2);
    }
    std::vector<std::vector<Word>> hist(
        m.lanes(), std::vector<Word>(tableWords, 0));
    const SrfGeometry &geom = m.config().srf;
    for (size_t e = 0; e < keys.size(); e++) {
        uint32_t lane = static_cast<uint32_t>(
            (e / geom.seqWidth) % geom.lanes);
        auto &t = inv->laneTraces[lane];
        t.iterations++;
        t.idxReads[1].push_back(keys[e]);
        IdxWriteTraceEntry w;
        w.recordIndex = keys[e];
        hist[lane][keys[e]]++;
        w.data[0] = hist[lane][keys[e]];
        t.idxWrites[1].push_back(w);
    }
    inv->finalize();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 200000);

    // The SRF-resident table now holds each lane's histogram.
    for (uint32_t l = 0; l < m.lanes(); l++)
        for (uint32_t w = 0; w < tableWords; w++)
            EXPECT_EQ(m.srf().readWord(l, w), hist[l][w])
                << "lane " << l << " bin " << w;
}

TEST(ReadWriteSlot, RecurrenceThroughRwStreamSchedules)
{
    // Read-modify-write with a loop-carried dependency through the
    // indexed stream: II must grow with the separation, like the other
    // recurrence-bound kernels.
    KernelBuilder b("rmw");
    auto t = b.idxlRw("t");
    auto prev = b.carryIn();
    auto v = b.readIdx(t, prev);
    b.writeIdx(t, prev, v);
    b.carryOut(prev, v, 1);
    KernelGraph g = b.build();
    ModuloScheduler sched;
    uint32_t ii2 = sched.schedule(g, 2).ii;
    uint32_t ii10 = sched.schedule(g, 10).ii;
    EXPECT_GT(ii10, ii2);
}

} // namespace
} // namespace isrf

namespace isrf {
namespace {

TEST(RingNetwork, HopDistanceAndLatency)
{
    Crossbar ring;
    ring.init(8, 1, 1, NetTopology::Ring);
    EXPECT_EQ(ring.hopDistance(0, 1), 1u);
    EXPECT_EQ(ring.hopDistance(0, 7), 1u);   // wraps the short way
    EXPECT_EQ(ring.hopDistance(0, 4), 4u);   // diameter
    EXPECT_EQ(ring.hopDistance(3, 3), 0u);
    EXPECT_EQ(ring.extraLatency(0, 1), 0u);
    EXPECT_EQ(ring.extraLatency(0, 4), 3u);

    Crossbar xbar;
    xbar.init(8, 1, 1);
    EXPECT_EQ(xbar.extraLatency(0, 4), 0u);
}

TEST(RingNetwork, LinkContentionBlocksOverlappingPaths)
{
    Crossbar ring;
    ring.init(8, 4, 4, NetTopology::Ring);
    ring.newCycle();
    // 0 -> 2 uses clockwise links 0->1 and 1->2.
    EXPECT_TRUE(ring.tryTransfer(0, 2));
    // 1 -> 2 needs link 1->2, already taken.
    EXPECT_FALSE(ring.tryTransfer(1, 2));
    // 2 -> 4 is disjoint.
    EXPECT_TRUE(ring.tryTransfer(2, 4));
    // Counter-clockwise direction is independent: 2 -> 1 is free.
    EXPECT_TRUE(ring.tryTransfer(2, 1));
}

TEST(RingNetwork, ThroughputBelowCrossbar)
{
    CrossLaneMicroParams xb;
    xb.cycles = 6000;
    CrossLaneMicroParams rg = xb;
    rg.topology = NetTopology::Ring;
    double x = crossLaneRandomThroughput(xb);
    double r = crossLaneRandomThroughput(rg);
    EXPECT_LE(r, x * 1.02);
    EXPECT_GT(r, 0.3 * x) << "ring should still be usable";
}

TEST(RingNetwork, CrossLaneReadStillCorrect)
{
    SrfGeometry geom;
    geom.netTopology = NetTopology::Ring;
    Crossbar net;
    net.init(geom.lanes, 1, 1, NetTopology::Ring);
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, &net);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.crossLane = true;
    cfg.lengthWords = 256;
    SlotId id = srf.openSlot(cfg);
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i + 100);
    srf.fillSlot(id, data);

    Cycle now = 0;
    srf.beginCycle(now);
    // Read a word 4 hops away around the ring (lane 0 -> bank 4).
    ASSERT_TRUE(srf.idxIssueRead(0, id, 16));  // block 4 -> lane 4
    srf.endCycle(now);
    now++;
    for (int i = 0; i < 40 && !srf.idxDataReady(0, id, now); i++) {
        net.newCycle();
        srf.beginCycle(now);
        srf.endCycle(now);
        now++;
    }
    ASSERT_TRUE(srf.idxDataReady(0, id, now));
    Word out[4];
    srf.idxDataPop(0, id, out);
    EXPECT_EQ(out[0], 116u);
    // Ring latency must exceed the crossbar minimum of 6 cycles.
    EXPECT_GT(now, 7u);
}

TEST(ArbitrationPolicy, IndexedPriorityActivatesUnderPressure)
{
    // ISRF1 + a demanding sequential stream: with round-robin the
    // indexed FIFOs back up; the stall-aware arbiter must serve more
    // indexed words in the same number of cycles.
    auto run = [](ArbPolicy policy) {
        SrfGeometry geom;
        geom.arbPolicy = policy;
        Srf srf;
        srf.init(geom, SrfMode::Indexed1, nullptr);
        SlotConfig tc;
        tc.dir = StreamDir::In;
        tc.indexed = true;
        tc.layout = StreamLayout::PerLane;
        tc.lengthWords = 256;
        SlotId tbl = srf.openSlot(tc);
        SlotConfig sc;
        sc.dir = StreamDir::In;
        sc.base = 256;
        sc.lengthWords = 8 * 3072;
        SlotId seq = srf.openSlot(sc);
        Rng rng(3);
        Cycle now = 0;
        Word tmp[4];
        for (int c = 0; c < 2000; c++) {
            srf.beginCycle(now);
            for (uint32_t l = 0; l < geom.lanes; l++) {
                while (srf.idxDataReady(l, tbl, now))
                    srf.idxDataPop(l, tbl, tmp);
                if (srf.idxCanIssue(l, tbl))
                    srf.idxIssueRead(l, tbl,
                        static_cast<uint32_t>(rng.below(256)));
                for (int k = 0; k < 3; k++)
                    if (srf.seqCanRead(l, seq))
                        srf.seqRead(l, seq);
            }
            if (srf.seqWordsRemaining(0, seq) == 0)
                srf.rewindSlot(seq);
            srf.endCycle(now);
            now++;
        }
        return srf.idxInLaneWords();
    };
    uint64_t rr = run(ArbPolicy::RoundRobin);
    uint64_t pri = run(ArbPolicy::IndexedPriority);
    EXPECT_GT(pri, rr) << "stall-aware arbitration must help under "
                          "pressure";
    // ... but not by an order of magnitude (the paper's <10% on real
    // kernels comes from this limited headroom).
    EXPECT_LT(pri, rr * 3);
}

} // namespace
} // namespace isrf
