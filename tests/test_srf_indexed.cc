/**
 * @file
 * Tests for indexed SRF access: in-lane reads/writes, latency, in-order
 * delivery, sub-array conflicts, ISRF1 vs ISRF4 bandwidth, records, and
 * cross-lane access through the index network and data crossbar.
 */
#include <gtest/gtest.h>

#include "net/crossbar.h"
#include "srf/srf.h"

namespace isrf {
namespace {

class SrfIdxTest : public ::testing::Test
{
  protected:
    void
    initSrf(SrfMode mode)
    {
        geom_ = SrfGeometry{};
        net_.init(geom_.lanes, 1, 1);
        srf_.init(geom_, mode, &net_);
    }

    void
    cycle(uint32_t n = 1)
    {
        for (uint32_t i = 0; i < n; i++) {
            net_.newCycle();
            srf_.beginCycle(now_);
            srf_.endCycle(now_);
            now_++;
        }
    }

    /** Open a PerLane table slot with lane-dependent contents. */
    SlotId
    openTable(uint32_t words, uint32_t base = 0, uint32_t recordWords = 1)
    {
        SlotConfig cfg;
        cfg.dir = StreamDir::In;
        cfg.indexed = true;
        cfg.layout = StreamLayout::PerLane;
        cfg.base = base;
        cfg.lengthWords = words;
        cfg.recordWords = recordWords;
        SlotId id = srf_.openSlot(cfg);
        for (uint32_t l = 0; l < geom_.lanes; l++)
            for (uint32_t w = 0; w < words; w++)
                srf_.writeWord(l, base + w, l * 1000 + w);
        return id;
    }

    SrfGeometry geom_;
    Crossbar net_;
    Srf srf_;
    Cycle now_ = 0;
};

TEST_F(SrfIdxTest, InLaneReadReturnsCorrectDataAfterLatency)
{
    initSrf(SrfMode::Indexed4);
    SlotId id = openTable(64);
    ASSERT_TRUE(srf_.idxCanIssue(3, id));
    srf_.beginCycle(now_);
    ASSERT_TRUE(srf_.idxIssueRead(3, id, 17));
    srf_.endCycle(now_);
    Cycle issue = now_;
    now_++;
    // Not ready before the in-lane latency has elapsed.
    while (now_ < issue + geom_.inLaneLatency) {
        EXPECT_FALSE(srf_.idxDataReady(3, id, now_));
        cycle();
    }
    cycle(2);
    ASSERT_TRUE(srf_.idxDataReady(3, id, now_));
    Word out[4];
    EXPECT_EQ(srf_.idxDataPop(3, id, out), 1u);
    EXPECT_EQ(out[0], 3017u);
}

TEST_F(SrfIdxTest, InOrderDeliveryAcrossConflicts)
{
    initSrf(SrfMode::Indexed4);
    SlotId id = openTable(64);
    // Two requests to the same sub-array (addresses 0 and 1) conflict
    // with each other only within a cycle; in-order pop still holds.
    srf_.beginCycle(now_);
    ASSERT_TRUE(srf_.idxIssueRead(0, id, 1));
    ASSERT_TRUE(srf_.idxIssueRead(0, id, 0));
    srf_.endCycle(now_);
    now_++;
    cycle(10);
    Word out[4];
    ASSERT_TRUE(srf_.idxDataReady(0, id, now_));
    srf_.idxDataPop(0, id, out);
    EXPECT_EQ(out[0], 1u);  // first-issued first
    ASSERT_TRUE(srf_.idxDataReady(0, id, now_));
    srf_.idxDataPop(0, id, out);
    EXPECT_EQ(out[0], 0u);
}

TEST_F(SrfIdxTest, Isrf4ServesFourDistinctSubArraysPerCycle)
{
    initSrf(SrfMode::Indexed4);
    // Four streams, each issuing to a different sub-array.
    SlotId ids[4];
    for (uint32_t s = 0; s < 4; s++)
        ids[s] = openTable(16, s * 16);
    srf_.beginCycle(now_);
    for (uint32_t s = 0; s < 4; s++)
        ASSERT_TRUE(srf_.idxIssueRead(0, ids[s], s * 4));  // sub-array s
    srf_.endCycle(now_);
    now_++;
    // Addresses become serviceable the cycle after FIFO entry.
    cycle(1);
    EXPECT_EQ(srf_.idxInLaneWords(), 4u);
}

TEST_F(SrfIdxTest, Isrf1ServesOneWordPerCycle)
{
    initSrf(SrfMode::Indexed1);
    SlotId ids[4];
    for (uint32_t s = 0; s < 4; s++)
        ids[s] = openTable(16, s * 16);
    srf_.beginCycle(now_);
    for (uint32_t s = 0; s < 4; s++)
        ASSERT_TRUE(srf_.idxIssueRead(0, ids[s], s * 4));
    srf_.endCycle(now_);
    now_++;
    cycle(1);
    EXPECT_EQ(srf_.idxInLaneWords(), 1u);
    cycle(3);
    EXPECT_EQ(srf_.idxInLaneWords(), 4u);
}

TEST_F(SrfIdxTest, SameSubArrayConflictSerializes)
{
    initSrf(SrfMode::Indexed4);
    SlotId a = openTable(16, 0);
    SlotId b = openTable(16, 16);
    srf_.beginCycle(now_);
    // Both target sub-array 0 of lane 0 (addresses 0 and 16+... note
    // slot b's base 16 -> laneAddr 16 -> sub-array 0 again).
    ASSERT_TRUE(srf_.idxIssueRead(0, a, 0));
    ASSERT_TRUE(srf_.idxIssueRead(0, b, 0));
    srf_.endCycle(now_);
    now_++;
    cycle(1);
    EXPECT_EQ(srf_.idxInLaneWords(), 1u);
    EXPECT_GE(srf_.subArrayConflicts(), 1u);
    cycle(1);
    EXPECT_EQ(srf_.idxInLaneWords(), 2u);
}

TEST_F(SrfIdxTest, MultiWordRecordsExpandToWordAccesses)
{
    initSrf(SrfMode::Indexed4);
    SlotId id = openTable(64, 0, 4);
    srf_.beginCycle(now_);
    ASSERT_TRUE(srf_.idxIssueRead(2, id, 3));  // words 12..15
    srf_.endCycle(now_);
    now_++;
    cycle(10);
    ASSERT_TRUE(srf_.idxDataReady(2, id, now_));
    Word out[4];
    EXPECT_EQ(srf_.idxDataPop(2, id, out), 4u);
    EXPECT_EQ(out[0], 2012u);
    EXPECT_EQ(out[3], 2015u);
}

TEST_F(SrfIdxTest, IndexedWriteLandsInBank)
{
    initSrf(SrfMode::Indexed4);
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.indexed = true;
    cfg.layout = StreamLayout::PerLane;
    cfg.base = 32;
    cfg.lengthWords = 32;
    SlotId id = srf_.openSlot(cfg);
    Word data[1] = {0xdead};
    srf_.beginCycle(now_);
    ASSERT_TRUE(srf_.idxIssueWrite(5, id, 7, data));
    EXPECT_FALSE(srf_.idxWritesDrained(id));
    srf_.endCycle(now_);
    now_++;
    cycle(2);
    EXPECT_TRUE(srf_.idxWritesDrained(id));
    EXPECT_EQ(srf_.readWord(5, 39), 0xdeadu);
}

TEST_F(SrfIdxTest, AddressFifoBackpressure)
{
    initSrf(SrfMode::Indexed4);
    SlotId id = openTable(64);
    // Fill the FIFO without any service cycles.
    uint32_t issued = 0;
    srf_.beginCycle(now_);
    while (srf_.idxIssueRead(0, id, issued % 64))
        issued++;
    // Capacity = addrFifoSize (8); the data buffer is larger.
    EXPECT_EQ(issued, geom_.addrFifoSize);
    EXPECT_FALSE(srf_.idxCanIssue(0, id));
    srf_.endCycle(now_);
    now_++;
    cycle(1);
    EXPECT_TRUE(srf_.idxCanIssue(0, id));
}

TEST_F(SrfIdxTest, CrossLaneReadRoutesToOwningBank)
{
    initSrf(SrfMode::Indexed4);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.crossLane = true;
    cfg.layout = StreamLayout::Striped;
    cfg.base = 0;
    cfg.lengthWords = 256;
    SlotId id = srf_.openSlot(cfg);
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i + 7000);
    srf_.fillSlot(id, data);

    // Lane 0 reads global word 100 (lives in lane (100/4)%8 = 1).
    srf_.beginCycle(now_);
    ASSERT_TRUE(srf_.idxIssueRead(0, id, 100));
    srf_.endCycle(now_);
    Cycle issue = now_;
    now_++;
    while (now_ < issue + geom_.crossLaneLatency) {
        EXPECT_FALSE(srf_.idxDataReady(0, id, now_));
        cycle();
    }
    cycle(4);
    ASSERT_TRUE(srf_.idxDataReady(0, id, now_));
    Word out[4];
    srf_.idxDataPop(0, id, out);
    EXPECT_EQ(out[0], 7100u);
    EXPECT_EQ(srf_.idxCrossWords(), 1u);
}

TEST_F(SrfIdxTest, CrossLaneBankPortLimitsThroughput)
{
    initSrf(SrfMode::Indexed4);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.crossLane = true;
    cfg.layout = StreamLayout::Striped;
    cfg.base = 0;
    cfg.lengthWords = 1024;
    SlotId id = srf_.openSlot(cfg);

    // All 8 lanes target bank 0 (word indices 0..3 stripe to lane 0).
    srf_.beginCycle(now_);
    for (uint32_t l = 0; l < 8; l++)
        ASSERT_TRUE(srf_.idxIssueRead(l, id, l % 4));
    srf_.endCycle(now_);
    now_++;
    // With one network port per bank, only ~1 index routes per cycle.
    cycle(1);
    EXPECT_LE(srf_.idxCrossWords(), 2u);
    cycle(20);
    EXPECT_EQ(srf_.idxCrossWords(), 8u);
}

TEST_F(SrfIdxTest, CrossLaneWriteRejected)
{
    initSrf(SrfMode::Indexed4);
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.indexed = true;
    cfg.crossLane = true;
    EXPECT_DEATH(srf_.openSlot(cfg), "cross-lane indexed write");
}

TEST_F(SrfIdxTest, SequentialAndIndexedShareThePort)
{
    initSrf(SrfMode::Indexed4);
    SlotId tbl = openTable(64, 0);

    SlotConfig scfg;
    scfg.dir = StreamDir::In;
    scfg.layout = StreamLayout::Striped;
    scfg.base = 64;
    scfg.lengthWords = 2048;
    SlotId seq = srf_.openSlot(scfg);

    // Keep both sides demanding for 40 cycles.
    uint64_t seqGrants0 = srf_.stats().counterValue("seq_grant_cycles");
    for (int i = 0; i < 40; i++) {
        srf_.beginCycle(now_);
        for (uint32_t l = 0; l < 8; l++) {
            if (srf_.idxCanIssue(l, tbl))
                srf_.idxIssueRead(l, tbl, static_cast<uint32_t>(i) % 64);
            while (srf_.seqCanRead(l, seq))
                srf_.seqRead(l, seq);
        }
        srf_.endCycle(now_);
        now_++;
    }
    uint64_t seqGrants =
        srf_.stats().counterValue("seq_grant_cycles") - seqGrants0;
    uint64_t idxGrants = srf_.stats().counterValue("idx_grant_cycles");
    // Round-robin between one sequential claimant and the indexed
    // bundle: roughly half the cycles each.
    EXPECT_GE(seqGrants, 15u);
    EXPECT_GE(idxGrants, 15u);
}

} // namespace
} // namespace isrf
