/**
 * @file
 * End-to-end workload tests: every benchmark must validate functionally
 * on every machine configuration, and the paper's qualitative claims
 * (traffic ratios, speedup directions, stall structure) must hold.
 *
 * These run full simulations; repeats is kept at 1 for test speed.
 */
#include <gtest/gtest.h>

#include "workloads/fft.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

WorkloadOptions
fastOpts()
{
    WorkloadOptions o;
    o.repeats = 1;
    return o;
}

/** Cached across tests in this binary (simulations are expensive). */
const WorkloadResult &
result(const std::string &name, MachineKind kind)
{
    static std::map<std::string, WorkloadResult> cache;
    std::string key = name + "/" + machineKindName(kind);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, runWorkload(name, kind, fastOpts())).first;
    return it->second;
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<
          std::tuple<std::string, MachineKind>>
{
};

TEST_P(WorkloadCorrectness, FunctionalValidationPasses)
{
    auto [name, kind] = GetParam();
    const WorkloadResult &r = result(name, kind);
    EXPECT_TRUE(r.correct) << name << " on " << machineKindName(kind);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.breakdown.total(), 0u + r.cycles * 8)
        << "every lane-cycle must be classified";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllMachines, WorkloadCorrectness,
    ::testing::Combine(
        ::testing::Values("FFT 2D", "Rijndael", "Sort", "Filter",
                          "IG_SML", "IG_DMS"),
        ::testing::Values(MachineKind::Base, MachineKind::ISRF1,
                          MachineKind::ISRF4, MachineKind::Cache)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        for (auto &c : n)
            if (c == ' ')
                c = '_';
        return n + "_" +
            std::string(machineKindName(std::get<1>(info.param)));
    });

// The sparse & stencil family goes through the same contract: correct
// on every machine kind with every lane-cycle classified.
INSTANTIATE_TEST_SUITE_P(
    SparseFamilyAllMachines, WorkloadCorrectness,
    ::testing::Combine(
        ::testing::Values("SpMV Banded", "SpMV Power", "Stencil 2D9",
                          "Stencil 3D27", "Histogram"),
        ::testing::Values(MachineKind::Base, MachineKind::ISRF1,
                          MachineKind::ISRF4, MachineKind::Cache)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        for (auto &c : n)
            if (c == ' ')
                c = '_';
        return n + "_" +
            std::string(machineKindName(std::get<1>(info.param)));
    });

TEST(WorkloadShape, Fft2dTrafficHalvesOnIsrf)
{
    double ratio =
        static_cast<double>(result("FFT 2D", MachineKind::ISRF4)
                                .dramWords) /
        static_cast<double>(result("FFT 2D", MachineKind::Base)
                                .dramWords);
    EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(WorkloadShape, RijndaelTrafficDropsByAtLeast90Percent)
{
    double ratio =
        static_cast<double>(result("Rijndael", MachineKind::ISRF4)
                                .dramWords) /
        static_cast<double>(result("Rijndael", MachineKind::Base)
                                .dramWords);
    EXPECT_LT(ratio, 0.10);  // paper: up to 95% reduction
}

TEST(WorkloadShape, SortAndFilterTrafficUnchanged)
{
    for (const char *name : {"Sort", "Filter"}) {
        EXPECT_EQ(result(name, MachineKind::ISRF4).dramWords,
                  result(name, MachineKind::Base).dramWords)
            << name;
    }
}

TEST(WorkloadShape, IgTrafficReduced)
{
    for (const char *name : {"IG_SML", "IG_DMS"}) {
        double ratio =
            static_cast<double>(result(name, MachineKind::ISRF4)
                                    .dramWords) /
            static_cast<double>(result(name, MachineKind::Base)
                                    .dramWords);
        EXPECT_GT(ratio, 0.3) << name;
        EXPECT_LT(ratio, 0.75) << name;
    }
}

TEST(WorkloadShape, Isrf4SpeedsUpEveryBenchmark)
{
    for (const char *name : {"FFT 2D", "Rijndael", "Sort", "Filter",
                             "IG_SML", "IG_DMS"}) {
        EXPECT_LT(result(name, MachineKind::ISRF4).cycles,
                  result(name, MachineKind::Base).cycles)
            << name;
    }
}

TEST(WorkloadShape, RijndaelSpeedupIsTheLargest)
{
    auto speedup = [&](const char *name) {
        return static_cast<double>(result(name, MachineKind::Base)
                                       .cycles) /
            static_cast<double>(result(name, MachineKind::ISRF4).cycles);
    };
    double rij = speedup("Rijndael");
    EXPECT_GT(rij, 3.0);  // paper: 4.11x
    for (const char *name : {"FFT 2D", "Sort", "Filter", "IG_SML",
                             "IG_DMS"}) {
        EXPECT_GT(rij, speedup(name)) << name;
    }
}

TEST(WorkloadShape, Fft2dSpeedupNearPaper)
{
    // With a single repeat the software pipeline across data sets is
    // short, so the speedup is below the steady-state 1.9x (the
    // benches use repeats=2; paper: 2.24x).
    double s = static_cast<double>(result("FFT 2D", MachineKind::Base)
                                       .cycles) /
        static_cast<double>(result("FFT 2D", MachineKind::ISRF4).cycles);
    EXPECT_GT(s, 1.3);
    EXPECT_LT(s, 3.0);
}

TEST(WorkloadShape, Isrf1StallsOnRijndael)
{
    // §5.3: Rijndael spends ~42% of ISRF1 execution on SRF stalls;
    // ISRF4's indexed bandwidth removes them.
    const WorkloadResult &r1 = result("Rijndael", MachineKind::ISRF1);
    const WorkloadResult &r4 = result("Rijndael", MachineKind::ISRF4);
    double f1 = static_cast<double>(r1.breakdown.srfStall) /
        static_cast<double>(r1.breakdown.total());
    double f4 = static_cast<double>(r4.breakdown.srfStall) /
        static_cast<double>(r4.breakdown.total());
    EXPECT_GT(f1, 0.25);
    EXPECT_LT(f4, 0.10);
    EXPECT_GT(r1.cycles, r4.cycles);
}

TEST(WorkloadShape, Isrf1EqualsIsrf4WhereSingleIndexedStream)
{
    // §5.3: ISRF1 and ISRF4 differ only for Rijndael and Filter.
    for (const char *name : {"FFT 2D", "Sort", "IG_SML"}) {
        EXPECT_EQ(result(name, MachineKind::ISRF1).cycles,
                  result(name, MachineKind::ISRF4).cycles)
            << name;
    }
    EXPECT_GT(result("Filter", MachineKind::ISRF1).cycles,
              result("Filter", MachineKind::ISRF4).cycles);
}

TEST(WorkloadShape, Isrf4BeatsCacheEverywhere)
{
    for (const char *name : {"FFT 2D", "Rijndael", "Sort", "Filter",
                             "IG_DMS"}) {
        EXPECT_LE(result(name, MachineKind::ISRF4).cycles,
                  result(name, MachineKind::Cache).cycles)
            << name;
    }
}

TEST(WorkloadShape, CacheCapturesFftAndRijndaelLocality)
{
    // The cache captures the FFT reorder and the AES tables, but Sort
    // and Filter get no benefit from it (conditional/complex accesses).
    EXPECT_LT(result("FFT 2D", MachineKind::Cache).dramWords,
              result("FFT 2D", MachineKind::Base).dramWords);
    EXPECT_LT(result("Rijndael", MachineKind::Cache).dramWords,
              result("Rijndael", MachineKind::Base).dramWords / 4);
    EXPECT_EQ(result("Sort", MachineKind::Cache).cycles,
              result("Sort", MachineKind::Base).cycles);
}

TEST(WorkloadShape, CacheCapturesMoreIgLocalityThanIsrf)
{
    // §5.3: the cache also captures inter-strip IG reuse.
    EXPECT_LT(result("IG_SML", MachineKind::Cache).dramWords,
              result("IG_SML", MachineKind::ISRF4).dramWords);
}

TEST(WorkloadShape, MemoryBoundBenchmarksShowMemStallOnBase)
{
    for (const char *name : {"FFT 2D", "Rijndael", "IG_SML"}) {
        const WorkloadResult &r = result(name, MachineKind::Base);
        double frac = static_cast<double>(r.breakdown.memStall) /
            static_cast<double>(r.breakdown.total());
        EXPECT_GT(frac, 0.4) << name;
    }
}

TEST(WorkloadShape, ShortStripsShowLargeOverheads)
{
    // IG_DMS (short strips) must show a much larger overhead share
    // than IG_SML (long strips) on Base (§5.3).
    auto ovh = [&](const char *name) {
        const WorkloadResult &r = result(name, MachineKind::Base);
        return static_cast<double>(r.breakdown.overhead) /
            static_cast<double>(r.breakdown.total());
    };
    EXPECT_GT(ovh("IG_DMS"), 2.0 * ovh("IG_SML"));
}

TEST(WorkloadShape, KernelBwRecordedForIsrfKernels)
{
    const WorkloadResult &r = result("Rijndael", MachineKind::ISRF4);
    ASSERT_TRUE(r.kernelBw.count("rijndael"));
    const KernelBwRecord &bw = r.kernelBw.at("rijndael");
    EXPECT_GT(bw.inLanePerLaneCycle(), 0.5);  // paper Fig 13: ~1.2
    EXPECT_LT(bw.inLanePerLaneCycle(), 4.0);
    EXPECT_EQ(bw.crossWords, 0u);

    const WorkloadResult &ig = result("IG_SML", MachineKind::ISRF4);
    ASSERT_TRUE(ig.kernelBw.count("igraph1"));
    EXPECT_GT(ig.kernelBw.at("igraph1").crossPerLaneCycle(), 0.05);
    EXPECT_EQ(ig.kernelBw.at("igraph1").inLaneWords, 0u)
        << "IG indexed accesses are all cross-lane (§5.2)";
}

TEST(WorkloadShape, SeedChangesDataButNotCorrectness)
{
    WorkloadOptions o;
    o.repeats = 1;
    o.seed = 999;
    WorkloadResult r = runWorkload("FFT 2D", MachineKind::ISRF4, o);
    EXPECT_TRUE(r.correct);
}

TEST(WorkloadRegistry, ContainsAllBuiltinBenchmarks)
{
    const auto &reg = workloadRegistry();
    // 8 paper benchmarks + the sparse & stencil family (3 SpMV
    // datasets, 3 stencil shapes, histogram).
    EXPECT_EQ(reg.size(), 15u);
    for (const char *name : {"FFT 2D", "Rijndael", "Sort", "Filter",
                             "IG_SML", "IG_SCL", "IG_DMS", "IG_DCS",
                             "SpMV Banded", "SpMV Random", "SpMV Power",
                             "Stencil 2D5", "Stencil 2D9",
                             "Stencil 3D27", "Histogram"})
        EXPECT_TRUE(reg.count(name)) << name;
    // The unknown-name diagnostic lists every registered workload.
    EXPECT_DEATH(runWorkload("nope", MachineKind::Base, fastOpts()),
                 "unknown workload.*registered:.*FFT 2D");
}

} // namespace
} // namespace isrf

namespace isrf {
namespace {

class Fft2dSizes : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(Fft2dSizes, CorrectAcrossArraySizes)
{
    WorkloadOptions o;
    o.repeats = 1;
    WorkloadResult r = runFft2dSized(MachineConfig::isrf4(), o,
                                     GetParam());
    EXPECT_TRUE(r.correct) << "n=" << GetParam();
    WorkloadResult b = runFft2dSized(MachineConfig::base(), o,
                                     GetParam());
    EXPECT_TRUE(b.correct);
    // The rotation savings hold at every size.
    EXPECT_NEAR(static_cast<double>(r.dramWords) /
                    static_cast<double>(b.dramWords), 0.5, 0.05);
}

// Sizes above 64 need strip-mining (2 full arrays no longer fit the
// 128 KB SRF), which this benchmark — like the paper's — does not do.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft2dSizes,
                         ::testing::Values(16, 32, 64));

} // namespace
} // namespace isrf
