/**
 * @file
 * Tests for the crash-safe JSONL journal layer (util/jsonl.h): the
 * fsync'd writer, the tolerant reader's torn-final-line recovery (the
 * property the sweep journal's crash-safety rests on), and the
 * JsonLineView field extractor used to replay journal records.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/jsonl.h"

namespace isrf {
namespace {

/** Temp file path removed on scope exit. */
class TempFile
{
  public:
    explicit TempFile(const char *tag)
    {
        path_ = ::testing::TempDir() + "isrf_jsonl_" + tag + "_" +
            std::to_string(::getpid()) + ".jsonl";
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
writeRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    return std::fclose(f) == 0 && ok;
}

TEST(JsonlWriter, RoundTripsRecords)
{
    TempFile tmp("roundtrip");
    std::vector<std::string> records = {
        "{\"a\":1}",
        "{\"b\":\"two\",\"nested\":{\"x\":[1,2,3]}}",
        "{\"c\":true,\"d\":null}",
    };
    {
        JsonlWriter w;
        ASSERT_TRUE(w.open(tmp.path(), /*append=*/false));
        for (const auto &r : records)
            EXPECT_TRUE(w.append(r));
    }
    JsonlReadResult res = readJsonl(tmp.path());
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_FALSE(res.tornFinalLine);
    EXPECT_EQ(res.records, records);
}

TEST(JsonlWriter, AppendModePreservesExistingRecords)
{
    TempFile tmp("append");
    {
        JsonlWriter w;
        ASSERT_TRUE(w.open(tmp.path(), false));
        ASSERT_TRUE(w.append("{\"first\":1}"));
    }
    {
        JsonlWriter w;
        ASSERT_TRUE(w.open(tmp.path(), /*append=*/true));
        ASSERT_TRUE(w.append("{\"second\":2}"));
    }
    JsonlReadResult res = readJsonl(tmp.path());
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.records.size(), 2u);
    EXPECT_EQ(res.records[0], "{\"first\":1}");
    EXPECT_EQ(res.records[1], "{\"second\":2}");
}

TEST(JsonlWriter, RefusesInvalidAndMultilineRecords)
{
    TempFile tmp("refuse");
    JsonlWriter w;
    ASSERT_TRUE(w.open(tmp.path(), false));
    EXPECT_FALSE(w.append("{\"unterminated\":"));
    EXPECT_FALSE(w.append("{\"a\":1}\n{\"b\":2}"));
    EXPECT_TRUE(w.append("{\"ok\":1}"));
    w.close();
    JsonlReadResult res = readJsonl(tmp.path());
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.records.size(), 1u);
    EXPECT_EQ(res.records[0], "{\"ok\":1}");
}

TEST(JsonlReader, MissingFileIsAnError)
{
    JsonlReadResult res =
        readJsonl(::testing::TempDir() + "isrf_no_such_file.jsonl");
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(res.records.empty());
}

/**
 * The crash-safety property: truncate a journal at EVERY byte offset
 * (simulating a SIGKILL mid-append) and check the reader recovers
 * exactly the records whose bytes fully survived, flags any torn
 * tail, and never errors.
 */
TEST(JsonlReader, RecoversAllCompleteRecordsAtEveryTruncationOffset)
{
    std::vector<std::string> records = {
        "{\"seq\":0,\"payload\":\"alpha\"}",
        "{\"seq\":1,\"payload\":{\"deep\":[1,2,{\"k\":\"v\"}]}}",
        "{\"seq\":2,\"payload\":\"with \\\"escapes\\\" and {braces}\"}",
        "{\"seq\":3}",
    };
    std::string full;
    // End offset (exclusive, incl. newline) of each record in `full`.
    std::vector<size_t> lineEnd;
    // Offset after which record i's body is fully present.
    std::vector<size_t> bodyEnd;
    for (const auto &r : records) {
        full += r;
        bodyEnd.push_back(full.size());
        full += '\n';
        lineEnd.push_back(full.size());
    }

    TempFile tmp("trunc");
    for (size_t cut = 0; cut <= full.size(); cut++) {
        ASSERT_TRUE(writeRaw(tmp.path(), full.substr(0, cut)));
        JsonlReadResult res = readJsonl(tmp.path());
        ASSERT_TRUE(res.ok())
            << "cut at " << cut << ": " << res.error;
        // A record survives once its full body is on disk — the
        // trailing newline alone may be torn off.
        size_t expect = 0;
        while (expect < records.size() && bodyEnd[expect] <= cut)
            expect++;
        ASSERT_EQ(res.records.size(), expect) << "cut at " << cut;
        for (size_t i = 0; i < expect; i++)
            EXPECT_EQ(res.records[i], records[i])
                << "cut at " << cut;
        // Torn iff the cut landed strictly inside a record body.
        bool insideBody = expect < records.size() &&
            cut > (expect == 0 ? size_t{0} : lineEnd[expect - 1]);
        EXPECT_EQ(res.tornFinalLine, insideBody) << "cut at " << cut;
    }
}

TEST(JsonlReader, CorruptInteriorLineIsAnErrorNotARecovery)
{
    TempFile tmp("corrupt");
    ASSERT_TRUE(writeRaw(tmp.path(),
                         "{\"a\":1}\n{\"b\":oops}\n{\"c\":3}\n"));
    JsonlReadResult res = readJsonl(tmp.path());
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("line 2"), std::string::npos)
        << res.error;
    EXPECT_TRUE(res.records.empty())
        << "corruption must not yield partial data";
}

TEST(JsonlReader, BlankLinesAreIgnored)
{
    TempFile tmp("blank");
    ASSERT_TRUE(writeRaw(tmp.path(), "{\"a\":1}\n\n{\"b\":2}\n"));
    JsonlReadResult res = readJsonl(tmp.path());
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.records.size(), 2u);
}

TEST(JsonLineView, ExtractsTopLevelFields)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", std::string("a \"quoted\" name\n"));
    w.field("count", uint64_t{18446744073709551615ull});
    w.field("ratio", 2.5);
    w.field("flag", true);
    w.field("off", false);
    w.key("nested").beginObject();
    w.field("x", 1);
    w.endObject();
    w.key("list").beginArray();
    w.value(1).value(2);
    w.endArray();
    w.endObject();

    JsonLineView v(w.str());
    ASSERT_TRUE(v.valid());

    std::string s;
    EXPECT_TRUE(v.getString("name", s));
    EXPECT_EQ(s, "a \"quoted\" name\n");

    uint64_t u = 0;
    EXPECT_TRUE(v.getU64("count", u));
    EXPECT_EQ(u, 18446744073709551615ull);

    double d = 0;
    EXPECT_TRUE(v.getDouble("ratio", d));
    EXPECT_DOUBLE_EQ(d, 2.5);

    bool b = false;
    EXPECT_TRUE(v.getBool("flag", b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(v.getBool("off", b));
    EXPECT_FALSE(b);

    std::string raw;
    EXPECT_TRUE(v.getRaw("nested", raw));
    EXPECT_EQ(raw, "{\"x\":1}");
    EXPECT_TRUE(v.getRaw("list", raw));
    EXPECT_EQ(raw, "[1,2]");

    EXPECT_FALSE(v.getString("absent", s));
    EXPECT_FALSE(v.getU64("name", u)) << "type mismatch must fail";

    auto keys = v.keys();
    EXPECT_EQ(keys.size(), 7u);
}

TEST(JsonLineView, NullNumberReadsAsNaN)
{
    // The JsonWriter maps NaN/Inf to null; the reader maps it back.
    JsonLineView v("{\"x\":null}");
    ASSERT_TRUE(v.valid());
    double d = 0;
    EXPECT_TRUE(v.getDouble("x", d));
    EXPECT_TRUE(std::isnan(d));
}

TEST(JsonLineView, RejectsNonObjects)
{
    EXPECT_FALSE(JsonLineView("[1,2,3]").valid());
    EXPECT_FALSE(JsonLineView("{\"a\":").valid());
    EXPECT_FALSE(JsonLineView("").valid());
}

TEST(JsonUnescape, DecodesStandardEscapes)
{
    EXPECT_EQ(jsonUnescape("plain"), "plain");
    EXPECT_EQ(jsonUnescape("a\\\"b\\\\c\\/d"), "a\"b\\c/d");
    EXPECT_EQ(jsonUnescape("\\b\\f\\n\\r\\t"), "\b\f\n\r\t");
    EXPECT_EQ(jsonUnescape("\\u0041\\u00e9"), "A\xc3\xa9");
    EXPECT_EQ(jsonUnescape("\\u20ac"), "\xe2\x82\xac");
}

} // namespace
} // namespace isrf
