/**
 * @file
 * Shared helpers for machine-level tests: small kernels and invocation
 * builders.
 */
#ifndef ISRF_TESTS_TEST_HELPERS_H
#define ISRF_TESTS_TEST_HELPERS_H

#include <memory>
#include <vector>

#include "core/machine.h"
#include "kernel/builder.h"

namespace isrf {
namespace test {

/** copy: out[i] = in[i] * 1 (one ALU op to keep the loop non-trivial). */
inline KernelGraph
makeCopyKernel()
{
    KernelBuilder b("copy");
    auto in = b.seqIn("in");
    auto out = b.seqOut("out");
    auto x = b.read(in);
    b.write(out, b.iadd(x, b.constInt(0)));
    return b.build();
}

/** lookup: out[i] = table[in[i] & mask] (in-lane indexed). */
inline KernelGraph
makeLookupKernel()
{
    KernelBuilder b("lookup");
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("lut");
    auto out = b.seqOut("out");
    auto x = b.read(in);
    auto v = b.readIdx(lut, x);
    b.write(out, v);
    return b.build();
}

/**
 * Build a copy-kernel invocation: input slot striped data is echoed to
 * the output slot. The functional trace (per-lane output words) is the
 * lane's share of the input.
 */
inline std::shared_ptr<KernelInvocation>
makeCopyInvocation(Machine &m, const KernelGraph *graph, SlotId in,
                   SlotId out, const std::vector<Word> &inputData)
{
    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = graph;
    inv->sched = m.scheduleKernel(*graph);
    inv->slots = {in, out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    const SrfGeometry &g = m.config().srf;
    for (size_t e = 0; e < inputData.size(); e++) {
        uint32_t lane =
            static_cast<uint32_t>((e / g.seqWidth) % g.lanes);
        auto &t = inv->laneTraces[lane];
        t.iterations++;
        t.seqWrites.resize(2);
        t.seqWrites[1].push_back(inputData[e]);
    }
    for (auto &t : inv->laneTraces)
        t.seqWrites.resize(2);
    inv->finalize();
    return inv;
}

} // namespace test
} // namespace isrf

#endif // ISRF_TESTS_TEST_HELPERS_H
