/**
 * @file
 * Tests for the schedule visualizer and the optional DRAM row-buffer
 * model.
 */
#include <gtest/gtest.h>

#include "kernel/schedule_dump.h"
#include "mem/memory_system.h"
#include "util/random.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"

namespace isrf {
namespace {

TEST(ScheduleDump, FlatScheduleListsEveryRealOp)
{
    KernelGraph g = sortLocalIdxGraph();
    ModuloScheduler sched;
    KernelSchedule s = sched.schedule(g, 6);
    std::string flat = dumpFlatSchedule(g, s);
    EXPECT_NE(flat.find("kernel sort1"), std::string::npos);
    EXPECT_NE(flat.find("II="), std::string::npos);
    // Every stream-touching op appears with its stream name.
    EXPECT_NE(flat.find("idx_addr(runs)"), std::string::npos);
    EXPECT_NE(flat.find("seq_write(merged)"), std::string::npos);
}

TEST(ScheduleDump, ReservationTableHasIiRows)
{
    KernelGraph g = rijndaelRoundIdxGraph();
    ModuloScheduler sched;
    KernelSchedule s = sched.schedule(g, 6);
    std::string rt = dumpReservationTable(g, s);
    // Header + II data rows + 3 border lines.
    size_t rows = static_cast<size_t>(
        std::count(rt.begin(), rt.end(), '\n'));
    EXPECT_EQ(rows, s.ii + 4u);
    EXPECT_NE(rt.find("ALU"), std::string::npos);
    EXPECT_NE(rt.find("SBUF"), std::string::npos);
}

class RowModelTest : public ::testing::Test
{
  protected:
    DramConfig
    rowCfg()
    {
        DramConfig cfg;
        cfg.capacityWords = 1 << 16;
        cfg.rowBufferModel = true;
        cfg.wordsPerCycle = 4.0;
        cfg.burstTokens = 8.0;
        return cfg;
    }
};

TEST_F(RowModelTest, SequentialRunMostlyHits)
{
    Dram d(rowCfg());
    uint64_t done = 0;
    for (int cyc = 0; cyc < 1000 && done < 2048; cyc++) {
        d.tick();
        while (done < 2048 && d.tryAccessWord(done))
            done++;
    }
    ASSERT_EQ(done, 2048u);
    // 2048 sequential words over 512-word rows: 4 row misses.
    EXPECT_EQ(d.rowMisses(), 4u);
    EXPECT_EQ(d.rowHits(), 2044u);
}

TEST_F(RowModelTest, RandomAccessesMissOften)
{
    Dram d(rowCfg());
    Rng rng(5);
    uint64_t done = 0;
    for (int cyc = 0; cyc < 4000 && done < 2000; cyc++) {
        d.tick();
        for (int k = 0; k < 8 && done < 2000; k++) {
            if (d.tryAccessWord(rng.below(1 << 16)))
                done++;
        }
    }
    ASSERT_EQ(done, 2000u);
    // Random over a 64K-word space (128 rows, 4 banks): mostly misses.
    EXPECT_GT(d.rowMisses(), d.rowHits());
}

TEST_F(RowModelTest, SmallTableGathersHitOpenRows)
{
    Dram d(rowCfg());
    Rng rng(6);
    uint64_t done = 0;
    for (int cyc = 0; cyc < 4000 && done < 2000; cyc++) {
        d.tick();
        for (int k = 0; k < 8 && done < 2000; k++) {
            // A 1 KB table spans two rows: high hit rate emerges from
            // the mechanism, not from a heuristic.
            if (d.tryAccessWord(rng.below(256)))
                done++;
        }
    }
    ASSERT_EQ(done, 2000u);
    EXPECT_GT(d.rowHits(), 10 * d.rowMisses());
}

TEST_F(RowModelTest, RequiresEnablement)
{
    DramConfig cfg;
    cfg.capacityWords = 1024;
    Dram d(cfg);
    EXPECT_DEATH(d.tryAccessWord(0), "rowBufferModel");
}

TEST_F(RowModelTest, EndToEndRijndaelStillCorrectAndMemoryBound)
{
    // The benchmark shapes must survive swapping the cost heuristic
    // for the mechanistic row model.
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.rowBufferModel = true;
    WorkloadOptions opts;
    opts.repeats = 1;
    WorkloadResult r = runRijndael(cfg, opts);
    EXPECT_TRUE(r.correct);
    double memFrac = static_cast<double>(r.breakdown.memStall) /
        static_cast<double>(r.breakdown.total());
    EXPECT_GT(memFrac, 0.4);

    MachineConfig icfg = MachineConfig::isrf4();
    icfg.dram.rowBufferModel = true;
    WorkloadResult ri = runRijndael(icfg, opts);
    EXPECT_TRUE(ri.correct);
    EXPECT_LT(ri.cycles, r.cycles / 2) << "big speedup persists";
}

} // namespace
} // namespace isrf
