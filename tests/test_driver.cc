/**
 * @file
 * Tests for the parallel sweep driver and the global-state hazards it
 * depends on being fixed:
 *
 *  - thread-count invariance: a sweep's results serialize
 *    bit-identically whether run on 1 thread or N
 *  - per-machine isolation: two Machines in one process with different
 *    fault/trace configurations don't leak state into each other
 *  - explicit env snapshotting: MachineConfig::make() never reads the
 *    environment; only fromEnv() does, and invalid values are
 *    diagnosed and defaulted instead of silently misparsed
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/machine.h"
#include "driver/sweep_runner.h"
#include "util/env.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** setenv/unsetenv with automatic restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
sweepJson(const std::vector<SweepOutcome> &outcomes)
{
    std::string all;
    for (const auto &o : outcomes) {
        all += o.workload;
        all += '/';
        all += machineKindName(o.kind);
        all += '=';
        all += resultJson(o.result);
        all += '\n';
    }
    return all;
}

TEST(SweepRunner, ResultsInvariantUnderThreadCount)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix(
        {"Sort", "Filter"}, {MachineKind::Base, MachineKind::ISRF4},
        opts);
    ASSERT_EQ(jobs.size(), 4u);

    SweepRunner serial(1);
    auto a = serial.run(jobs);
    SweepRunner pool(4);
    auto b = pool.run(jobs);

    ASSERT_EQ(a.size(), b.size());
    // Submission order is preserved regardless of completion order.
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].workload, jobs[i].workload);
        EXPECT_EQ(b[i].workload, jobs[i].workload);
        EXPECT_EQ(a[i].kind, jobs[i].cfg.kind);
    }
    // The serialized results are byte-identical: simulation outcomes
    // depend only on (workload, config, options), never on threading.
    EXPECT_EQ(sweepJson(a), sweepJson(b));
    for (const auto &o : a)
        EXPECT_TRUE(o.result.correct) << o.workload;
}

TEST(SweepRunner, TimingAccountsForEveryJob)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix({"Sort"}, {MachineKind::Base},
                                    opts);
    SweepRunner runner(2);
    size_t started = 0, finished = 0;
    auto out = runner.run(jobs,
        [&](const SweepJob &, bool fin, size_t, size_t total) {
            EXPECT_EQ(total, 1u);
            (fin ? finished : started)++;
        });
    EXPECT_EQ(started, 1u);
    EXPECT_EQ(finished, 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0].wallSeconds, 0.0);
    // One job: pool clamps to one worker; wall >= the job itself.
    EXPECT_EQ(runner.timing().threads, 1u);
    EXPECT_GE(runner.timing().wallSeconds,
              runner.timing().sumJobSeconds * 0.5);
}

TEST(MachineIsolation, FaultAndTraceConfigsDoNotLeak)
{
    // Machine A: faults + tracing. Machine B: neither. Both live in
    // the same process at the same time — the bug class this PR fixes
    // is A's env-derived state bleeding into B.
    MachineConfig cfgA = MachineConfig::make(MachineKind::ISRF4);
    cfgA.faults =
        FaultConfig::parse("seed=7;srf_bit:start=50,period=31,count=4");
    cfgA.traceSpec = "all";
    MachineConfig cfgB = MachineConfig::make(MachineKind::ISRF4);

    Machine a, b;
    a.init(cfgA);
    b.init(cfgB);

    EXPECT_NE(a.faultInjector(), nullptr);
    EXPECT_EQ(b.faultInjector(), nullptr)
        << "B must not inherit A's fault config";
    EXPECT_TRUE(a.tracer().on());
    EXPECT_FALSE(b.tracer().on())
        << "B must not inherit A's trace config";

    // Drive both; only A's private tracer accumulates events.
    runWorkload("Sort", cfgA, WorkloadOptions{.repeats = 1});
    Machine m1, m2;
    m1.init(cfgA);
    m2.init(cfgB);
    EXPECT_TRUE(m1.tracer().on());
    EXPECT_EQ(m2.tracer().size(), 0u);
}

TEST(MachineIsolation, ConcurrentTracedMachinesStayPrivate)
{
    // Two fully traced runs in parallel: each machine records into its
    // own ring, so event counts are reproducible, not interleaved.
    WorkloadOptions opts;
    opts.repeats = 1;
    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF1);
    cfg.traceSpec = "all";
    cfg.traceCapacity = 1 << 12;

    std::vector<SweepJob> jobs(2);
    jobs[0] = {"Sort", cfg, opts};
    jobs[1] = {"Sort", cfg, opts};
    SweepRunner runner(2);
    auto out = runner.run(jobs);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(resultJson(out[0].result), resultJson(out[1].result))
        << "identical traced jobs must produce identical results";
}

TEST(EnvSnapshot, MakeNeverReadsEnvironment)
{
    ScopedEnv faults("ISRF_FAULTS", "seed=1;srf_bit");
    ScopedEnv sample("ISRF_SAMPLE", "128");
    ScopedEnv trace("ISRF_TRACE", "srf,dram");

    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF4);
    EXPECT_FALSE(cfg.faults.enabled);
    EXPECT_EQ(cfg.statSampleInterval, 0u);
    EXPECT_TRUE(cfg.traceSpec.empty());

    // A Machine built from an env-free config ignores the environment.
    Machine m;
    m.init(cfg);
    EXPECT_EQ(m.faultInjector(), nullptr);
    EXPECT_EQ(m.sampler(), nullptr);
    EXPECT_FALSE(m.tracer().on());

    // fromEnv() is the one explicit snapshot point.
    cfg.fromEnv();
    EXPECT_TRUE(cfg.faults.enabled);
    EXPECT_EQ(cfg.statSampleInterval, 128u);
    EXPECT_EQ(cfg.traceSpec, "srf,dram");
}

TEST(EnvSnapshot, InvalidValuesWarnAndDefault)
{
    ScopedEnv sample("ISRF_SAMPLE", "10 cycles");
    ScopedEnv cap("ISRF_TRACE_CAPACITY", "99999999999999999999999");
    ScopedEnv faults("ISRF_FAULTS", nullptr);
    ScopedEnv trace("ISRF_TRACE", nullptr);

    MachineConfig cfg = MachineConfig::make(MachineKind::Base).fromEnv();
    EXPECT_EQ(cfg.statSampleInterval, 0u)
        << "unparseable ISRF_SAMPLE must fall back to the default";
    EXPECT_EQ(cfg.traceCapacity, uint64_t{1} << 16)
        << "overflowing ISRF_TRACE_CAPACITY must fall back";
}

TEST(EnvSnapshot, ParseU64RejectsGarbage)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("  12", v));
    EXPECT_FALSE(parseU64("12x", v));
    EXPECT_FALSE(parseU64("-3", v));
    EXPECT_FALSE(parseU64("0x10", v));
    EXPECT_FALSE(parseU64("18446744073709551616", v));
}

} // namespace
} // namespace isrf
