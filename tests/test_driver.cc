/**
 * @file
 * Tests for the parallel sweep driver and the global-state hazards it
 * depends on being fixed:
 *
 *  - thread-count invariance: a sweep's results serialize
 *    bit-identically whether run on 1 thread or N
 *  - per-machine isolation: two Machines in one process with different
 *    fault/trace configurations don't leak state into each other
 *  - explicit env snapshotting: MachineConfig::make() never reads the
 *    environment; only fromEnv() does, and invalid values are
 *    diagnosed and defaulted instead of silently misparsed
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine.h"
#include "driver/sweep_runner.h"
#include "util/env.h"
#include "util/json.h"
#include "util/jsonl.h"
#include "workloads/external.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** setenv/unsetenv with automatic restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
sweepJson(const std::vector<SweepOutcome> &outcomes)
{
    std::string all;
    for (const auto &o : outcomes) {
        all += o.workload;
        all += '/';
        all += machineKindName(o.kind);
        all += '=';
        all += resultJson(o.result);
        all += '\n';
    }
    return all;
}

TEST(SweepRunner, ResultsInvariantUnderThreadCount)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix(
        {"Sort", "Filter"}, {MachineKind::Base, MachineKind::ISRF4},
        opts);
    ASSERT_EQ(jobs.size(), 4u);

    SweepRunner serial(1);
    auto a = serial.run(jobs);
    SweepRunner pool(4);
    auto b = pool.run(jobs);

    ASSERT_EQ(a.size(), b.size());
    // Submission order is preserved regardless of completion order.
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].workload, jobs[i].workload);
        EXPECT_EQ(b[i].workload, jobs[i].workload);
        EXPECT_EQ(a[i].kind, jobs[i].cfg.kind);
    }
    // The serialized results are byte-identical: simulation outcomes
    // depend only on (workload, config, options), never on threading.
    EXPECT_EQ(sweepJson(a), sweepJson(b));
    for (const auto &o : a)
        EXPECT_TRUE(o.result.correct) << o.workload;
}

TEST(SweepRunner, TimingAccountsForEveryJob)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix({"Sort"}, {MachineKind::Base},
                                    opts);
    SweepRunner runner(2);
    size_t started = 0, finished = 0;
    auto out = runner.run(jobs,
        [&](const SweepJob &, bool fin, size_t, size_t total) {
            EXPECT_EQ(total, 1u);
            (fin ? finished : started)++;
        });
    EXPECT_EQ(started, 1u);
    EXPECT_EQ(finished, 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0].wallSeconds, 0.0);
    // One job: pool clamps to one worker; wall >= the job itself.
    EXPECT_EQ(runner.timing().threads, 1u);
    EXPECT_GE(runner.timing().wallSeconds,
              runner.timing().sumJobSeconds * 0.5);
}

TEST(MachineIsolation, FaultAndTraceConfigsDoNotLeak)
{
    // Machine A: faults + tracing. Machine B: neither. Both live in
    // the same process at the same time — the bug class this PR fixes
    // is A's env-derived state bleeding into B.
    MachineConfig cfgA = MachineConfig::make(MachineKind::ISRF4);
    cfgA.faults =
        FaultConfig::parse("seed=7;srf_bit:start=50,period=31,count=4");
    cfgA.traceSpec = "all";
    MachineConfig cfgB = MachineConfig::make(MachineKind::ISRF4);

    Machine a, b;
    a.init(cfgA);
    b.init(cfgB);

    EXPECT_NE(a.faultInjector(), nullptr);
    EXPECT_EQ(b.faultInjector(), nullptr)
        << "B must not inherit A's fault config";
    EXPECT_TRUE(a.tracer().on());
    EXPECT_FALSE(b.tracer().on())
        << "B must not inherit A's trace config";

    // Drive both; only A's private tracer accumulates events.
    runWorkload("Sort", cfgA, WorkloadOptions{.repeats = 1});
    Machine m1, m2;
    m1.init(cfgA);
    m2.init(cfgB);
    EXPECT_TRUE(m1.tracer().on());
    EXPECT_EQ(m2.tracer().size(), 0u);
}

TEST(MachineIsolation, ConcurrentTracedMachinesStayPrivate)
{
    // Two fully traced runs in parallel: each machine records into its
    // own ring, so event counts are reproducible, not interleaved.
    WorkloadOptions opts;
    opts.repeats = 1;
    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF1);
    cfg.traceSpec = "all";
    cfg.traceCapacity = 1 << 12;

    std::vector<SweepJob> jobs(2);
    jobs[0] = {"Sort", cfg, opts};
    jobs[1] = {"Sort", cfg, opts};
    SweepRunner runner(2);
    auto out = runner.run(jobs);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(resultJson(out[0].result), resultJson(out[1].result))
        << "identical traced jobs must produce identical results";
}

TEST(EnvSnapshot, MakeNeverReadsEnvironment)
{
    ScopedEnv faults("ISRF_FAULTS", "seed=1;srf_bit");
    ScopedEnv sample("ISRF_SAMPLE", "128");
    ScopedEnv trace("ISRF_TRACE", "srf,dram");

    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF4);
    EXPECT_FALSE(cfg.faults.enabled);
    EXPECT_EQ(cfg.statSampleInterval, 0u);
    EXPECT_TRUE(cfg.traceSpec.empty());

    // A Machine built from an env-free config ignores the environment.
    Machine m;
    m.init(cfg);
    EXPECT_EQ(m.faultInjector(), nullptr);
    EXPECT_EQ(m.sampler(), nullptr);
    EXPECT_FALSE(m.tracer().on());

    // fromEnv() is the one explicit snapshot point.
    cfg.fromEnv();
    EXPECT_TRUE(cfg.faults.enabled);
    EXPECT_EQ(cfg.statSampleInterval, 128u);
    EXPECT_EQ(cfg.traceSpec, "srf,dram");
}

TEST(EnvSnapshot, InvalidValuesWarnAndDefault)
{
    ScopedEnv sample("ISRF_SAMPLE", "10 cycles");
    ScopedEnv cap("ISRF_TRACE_CAPACITY", "99999999999999999999999");
    ScopedEnv faults("ISRF_FAULTS", nullptr);
    ScopedEnv trace("ISRF_TRACE", nullptr);

    MachineConfig cfg = MachineConfig::make(MachineKind::Base).fromEnv();
    EXPECT_EQ(cfg.statSampleInterval, 0u)
        << "unparseable ISRF_SAMPLE must fall back to the default";
    EXPECT_EQ(cfg.traceCapacity, uint64_t{1} << 16)
        << "overflowing ISRF_TRACE_CAPACITY must fall back";
}

// ----------------------------------------------------------------------
// Sweep resilience (DESIGN.md §Sweep resilience)
// ----------------------------------------------------------------------

/** Temp journal path removed on scope exit. */
class TempJournal
{
  public:
    explicit TempJournal(const char *tag)
    {
        path_ = ::testing::TempDir() + "isrf_sweep_" + tag + "_" +
            std::to_string(::getpid()) + ".jsonl";
        std::remove(path_.c_str());
    }
    ~TempJournal() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/**
 * A component that is never quiescent, so a hang cannot be skipped
 * over in EngineMode::Skip — the engine steps densely in both modes.
 */
struct Spinner : Ticked
{
    void tick(Cycle) override {}
    Cycle nextEvent(Cycle now) override { return now + 1; }
    std::string tickedName() const override { return "spinner"; }
};

/** Runner that never terminates on its own: only a token stops it. */
WorkloadResult
hangRunner(const MachineConfig &cfg, const WorkloadOptions &opts)
{
    WorkloadResult res;
    res.workload = "Hang";
    res.kind = cfg.kind;
    Engine eng;
    eng.setMode(cfg.engineMode);
    Spinner spin;
    eng.add(&spin);
    eng.setCancel(opts.cancel);
    RunResult r = eng.runUntil([] { return false; }, 1ull << 40);
    res.status = r.status;
    res.cycles = r.cycles;
    return res;
}

SweepJob
hangJob(EngineMode mode)
{
    SweepJob j;
    j.workload = "Hang";
    j.cfg = MachineConfig::make(MachineKind::Base);
    j.cfg.engineMode = mode;
    j.runner = hangRunner;
    return j;
}

TEST(SweepResilience, TimeoutUnhangsAJobInBothEngineModes)
{
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Skip}) {
        SweepPolicy policy;
        policy.timeoutSeconds = 0.2;
        SweepRunner runner(1);
        auto out = runner.run({hangJob(mode)}, policy);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].status, RunStatus::TimedOut)
            << engineModeName(mode);
        EXPECT_EQ(out[0].attempts, 1u);
        EXPECT_GT(out[0].result.cycles, 0u);
        EXPECT_LT(out[0].wallSeconds, 30.0)
            << "the deadline must actually bound the attempt";
    }
}

TEST(SweepResilience, SweepCancelStopsJobsAndNeverHangsThePool)
{
    // A pre-cancelled sweep token: every job observes it at its first
    // poll point and returns Cancelled without simulating anything.
    CancelToken cancel;
    cancel.cancel();
    SweepPolicy policy;
    policy.cancel = &cancel;
    SweepRunner runner(2);
    auto out =
        runner.run({hangJob(EngineMode::Dense),
                    hangJob(EngineMode::Skip)}, policy);
    ASSERT_EQ(out.size(), 2u);
    for (const auto &o : out) {
        EXPECT_EQ(o.status, RunStatus::Cancelled);
        EXPECT_EQ(o.result.cycles, 0u)
            << "a pre-cancelled run must stop before the first step";
    }
}

TEST(SweepResilience, ThrowingJobBecomesFailedAndPoolKeepsDraining)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    std::vector<SweepJob> jobs;
    SweepJob bad;
    bad.workload = "Thrower";
    bad.cfg = MachineConfig::make(MachineKind::Base);
    bad.runner = [](const MachineConfig &,
                    const WorkloadOptions &) -> WorkloadResult {
        throw std::runtime_error("synthetic workload failure");
    };
    jobs.push_back(bad);
    // Real workloads queued after the thrower must still complete.
    auto rest = SweepRunner::matrix(
        {"Sort"}, {MachineKind::Base, MachineKind::ISRF4}, opts);
    jobs.insert(jobs.end(), rest.begin(), rest.end());

    SweepRunner runner(2);
    auto out = runner.run(jobs, SweepPolicy());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].status, RunStatus::Failed);
    EXPECT_EQ(out[0].result.status, RunStatus::Failed);
    EXPECT_EQ(out[0].result.error, "synthetic workload failure");
    EXPECT_EQ(out[0].attempts, 1u)
        << "exceptions are deterministic: no retry";
    for (size_t i = 1; i < out.size(); i++) {
        EXPECT_EQ(out[i].status, RunStatus::Done) << i;
        EXPECT_TRUE(out[i].result.correct) << i;
    }
}

TEST(SweepResilience, RetriesStalledJobsWithBoundedAttempts)
{
    // Succeeds on the third attempt; retries must be journaled per
    // attempt and the final outcome must report attempts used.
    auto flaky = std::make_shared<std::atomic<uint32_t>>(0);
    SweepJob job;
    job.workload = "Flaky";
    job.cfg = MachineConfig::make(MachineKind::Base);
    job.runner = [flaky](const MachineConfig &cfg,
                         const WorkloadOptions &) {
        WorkloadResult r;
        r.workload = "Flaky";
        r.kind = cfg.kind;
        r.status = ++*flaky < 3 ? RunStatus::Stalled : RunStatus::Done;
        r.correct = r.status == RunStatus::Done;
        return r;
    };

    TempJournal journal("retry");
    SweepPolicy policy;
    policy.retries = 3;
    policy.backoffBaseSeconds = 0.001;
    policy.backoffCapSeconds = 0.01;
    policy.journalPath = journal.path();
    SweepRunner runner(1);
    auto out = runner.run({job}, policy);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, RunStatus::Done);
    EXPECT_EQ(out[0].attempts, 3u);
    EXPECT_EQ(flaky->load(), 3u);

    // Journal: one header + one record per attempt.
    JsonlReadResult rec = readJsonl(journal.path());
    ASSERT_TRUE(rec.ok()) << rec.error;
    ASSERT_EQ(rec.records.size(), 4u);

    // Retries exhausted: final status is the last failure.
    auto exhausted = std::make_shared<std::atomic<uint32_t>>(0);
    SweepJob hopeless = job;
    hopeless.runner = [exhausted](const MachineConfig &cfg,
                                  const WorkloadOptions &) {
        WorkloadResult r;
        r.workload = "Flaky";
        r.kind = cfg.kind;
        r.status = RunStatus::Stalled;
        ++*exhausted;
        return r;
    };
    SweepPolicy two;
    two.retries = 1;
    two.backoffBaseSeconds = 0.001;
    auto out2 = runner.run({hopeless}, two);
    EXPECT_EQ(out2[0].status, RunStatus::Stalled);
    EXPECT_EQ(out2[0].attempts, 2u);
    EXPECT_EQ(exhausted->load(), 2u);
}

TEST(SweepResilience, ResumeReplaysJournaledJobsWithoutReExecution)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix(
        {"Sort", "Filter"}, {MachineKind::Base, MachineKind::ISRF1},
        opts);

    TempJournal journal("resume");
    SweepPolicy policy;
    policy.journalPath = journal.path();
    SweepRunner runner(2);
    auto first = runner.run(jobs, policy);
    ASSERT_EQ(first.size(), 4u);
    for (const auto &o : first) {
        EXPECT_EQ(o.status, RunStatus::Done);
        EXPECT_FALSE(o.fromJournal);
    }

    policy.resume = true;
    auto second = runner.run(jobs, policy);
    ASSERT_EQ(second.size(), 4u);
    EXPECT_EQ(runner.timing().replayed, 4u);
    EXPECT_EQ(runner.timing().sumJobSeconds, 0.0)
        << "replayed jobs must not be re-simulated";
    for (size_t i = 0; i < 4; i++) {
        EXPECT_TRUE(second[i].fromJournal) << i;
        EXPECT_EQ(second[i].resultText, first[i].resultText)
            << "replayed result bytes must be identical";
        // The decoded result drives the sweep tables.
        EXPECT_EQ(second[i].result.cycles, first[i].result.cycles);
        EXPECT_EQ(second[i].result.correct, first[i].result.correct);
        EXPECT_EQ(second[i].result.dramWords, first[i].result.dramWords);
    }
}

TEST(SweepResilience, PartialJournalRunsOnlyTheMissingJobs)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix(
        {"Sort"}, {MachineKind::Base, MachineKind::ISRF4}, opts);

    // Journal only the first job, with the true sweep fingerprint.
    TempJournal journal("partial");
    SweepPolicy policy;
    policy.journalPath = journal.path();
    SweepRunner runner(1);
    auto full = runner.run(jobs, policy);

    // Rewrite the journal holding header + first job's record only —
    // as if the sweep was killed after one completion.
    JsonlReadResult rec = readJsonl(journal.path());
    ASSERT_TRUE(rec.ok());
    ASSERT_GE(rec.records.size(), 3u);
    {
        JsonlWriter w;
        ASSERT_TRUE(w.open(journal.path(), false));
        ASSERT_TRUE(w.append(rec.records[0]));
        ASSERT_TRUE(w.append(rec.records[1]));
    }

    policy.resume = true;
    auto out = runner.run(jobs, policy);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].fromJournal);
    EXPECT_FALSE(out[1].fromJournal);
    EXPECT_EQ(runner.timing().replayed, 1u);
    for (size_t i = 0; i < 2; i++) {
        EXPECT_EQ(out[i].status, RunStatus::Done) << i;
        EXPECT_EQ(out[i].resultText, full[i].resultText)
            << "resumed sweep must serialize byte-identically";
    }

    // After the resumed run the journal holds all jobs again: a third
    // run replays everything.
    runner.run(jobs, policy);
    EXPECT_EQ(runner.timing().replayed, 2u);
}

TEST(SweepResilienceDeathTest, StaleJournalIsRejectedNotMerged)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs =
        SweepRunner::matrix({"Sort"}, {MachineKind::Base}, opts);

    TempJournal journal("stale");
    SweepPolicy policy;
    policy.journalPath = journal.path();
    SweepRunner runner(1);
    runner.run(jobs, policy);

    // Drift the matrix: an options change is a different experiment.
    auto drifted = jobs;
    drifted[0].opts.seed ^= 1;
    policy.resume = true;
    EXPECT_EXIT(runner.run(drifted, policy),
                ::testing::ExitedWithCode(1), "stale");
}

// ----------------------------------------------------------------------
// External-dataset fingerprints (input-aware job identity)
// ----------------------------------------------------------------------

/**
 * Write a small valid .mtx whose diagonal value is `diag`, register it
 * as an external workload, and return the registered name. Re-writing
 * the same path with a different `diag` models a user editing their
 * input between sweeps.
 */
std::string
makeDatasetWorkload(const std::string &path, const char *diag)
{
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "8 8 8\n";
    for (int i = 1; i <= 8; i++)
        text += std::to_string(i) + " " + std::to_string(i) + " " +
            diag + "\n";
    EXPECT_TRUE(writeTextFile(path, text));
    std::string name;
    std::vector<std::string> errs;
    EXPECT_TRUE(registerExternalDataset(path, &name, &errs))
        << (errs.empty() ? "" : errs[0]);
    return name;
}

TEST(DatasetFingerprint, TracksFileContentNotJustName)
{
    TempJournal file("ds_fp");  // reused as a temp .mtx path
    std::string name = makeDatasetWorkload(file.path(), "4.0");

    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix({name}, {MachineKind::Base}, opts);
    const std::string canonical = SweepRunner::canonicalJobText(jobs[0]);
    EXPECT_NE(canonical.find("dataset.path"), std::string::npos);
    EXPECT_NE(canonical.find("dataset.bytes"), std::string::npos);
    EXPECT_NE(canonical.find("dataset.fnv1a"), std::string::npos);
    const uint64_t before = SweepRunner::fingerprint(jobs[0]);

    // Same workload name, same size, different bytes: the fingerprint
    // must move with the content hash.
    makeDatasetWorkload(file.path(), "5.0");
    const uint64_t after = SweepRunner::fingerprint(jobs[0]);
    EXPECT_NE(before, after);

    // Built-in workloads carry no dataset keys (their golden
    // fingerprints are pinned elsewhere in this suite).
    auto builtin =
        SweepRunner::matrix({"Sort"}, {MachineKind::Base}, opts);
    EXPECT_EQ(SweepRunner::canonicalJobText(builtin[0])
                  .find("dataset."),
              std::string::npos);
}

TEST(DatasetFingerprint, UnchangedDatasetResumesCleanly)
{
    TempJournal file("ds_ok");
    std::string name = makeDatasetWorkload(file.path(), "4.0");
    TempJournal journal("ds_ok_journal");

    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix({name}, {MachineKind::Base}, opts);
    SweepPolicy policy;
    policy.journalPath = journal.path();
    SweepRunner runner(1);
    auto first = runner.run(jobs, policy);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].status, RunStatus::Done);
    EXPECT_TRUE(first[0].result.correct);

    policy.resume = true;
    auto again = runner.run(jobs, policy);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].fromJournal);
    EXPECT_EQ(again[0].resultText, first[0].resultText);
}

TEST(SweepResilienceDeathTest, EditedDatasetMakesJournalStale)
{
    TempJournal file("ds_edit");
    std::string name = makeDatasetWorkload(file.path(), "4.0");
    TempJournal journal("ds_edit_journal");

    WorkloadOptions opts;
    opts.repeats = 1;
    auto jobs = SweepRunner::matrix({name}, {MachineKind::Base}, opts);
    SweepPolicy policy;
    policy.journalPath = journal.path();
    SweepRunner runner(1);
    runner.run(jobs, policy);

    // The user edits the matrix mid-experiment: resuming must reject
    // the journal as stale (mentioning datasets), not splice results
    // computed from the old bytes into the new experiment.
    makeDatasetWorkload(file.path(), "6.5");
    policy.resume = true;
    EXPECT_EXIT(runner.run(jobs, policy),
                ::testing::ExitedWithCode(1), "stale.*datasets");
}

TEST(SweepResilience, FingerprintSeparatesExperiments)
{
    WorkloadOptions opts;
    auto base =
        SweepRunner::matrix({"Sort"}, {MachineKind::Base}, opts)[0];
    EXPECT_EQ(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(base))
        << "fingerprints must be deterministic";

    SweepJob other = base;
    other.workload = "Filter";
    EXPECT_NE(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));

    other = base;
    other.cfg.seed++;
    EXPECT_NE(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));

    other = base;
    other.opts.repeats++;
    EXPECT_NE(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));

    other = base;
    other.cfg.faults.enabled = true;
    EXPECT_NE(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));

    // A custom runner cannot be attested by name: it must not collide
    // with the registry job of the same (workload, cfg, opts).
    other = base;
    other.runner = hangRunner;
    EXPECT_NE(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));

    // Observability-only knobs do NOT change the fingerprint: a
    // journal written under dense resumes under skip, traced or not,
    // profiled or not, sampled or not.
    other = base;
    other.cfg.engineMode = EngineMode::Skip;
    other.cfg.traceSpec = "all";
    other.cfg.traceCapacity = 4096;
    other.cfg.profileEnabled = true;
    other.cfg.profileStride = 8;
    other.cfg.statSampleInterval = 100;
    EXPECT_EQ(SweepRunner::fingerprint(base),
              SweepRunner::fingerprint(other));
}

TEST(SweepResilience, CanonicalTextExcludesObservabilityKnobs)
{
    WorkloadOptions opts;
    auto job =
        SweepRunner::matrix({"Sort"}, {MachineKind::Base}, opts)[0];
    std::string text = SweepRunner::canonicalJobText(job);

    // The centralized exclusion list and the canonical text must
    // agree: no excluded knob may appear as a key. (statSampleInterval
    // is the one exception — its key predates the exclusion list and
    // stays in the text for journal compatibility, pinned to the
    // default value 0 so the knob's setting cannot affect it.)
    for (const std::string &knob : SweepRunner::observabilityKnobs()) {
        if (knob == "statSampleInterval") {
            EXPECT_NE(text.find("statSampleInterval=0;"),
                      std::string::npos)
                << text;
            continue;
        }
        EXPECT_EQ(text.find(knob + "="), std::string::npos)
            << "excluded knob '" << knob
            << "' leaked into canonical text: " << text;
    }

    // Pinned means pinned: setting the sampler knob leaves the text
    // byte-identical.
    auto sampled = job;
    sampled.cfg.statSampleInterval = 1000;
    EXPECT_EQ(text, SweepRunner::canonicalJobText(sampled));
}

TEST(SweepResilience, FingerprintsMatchGoldenSeedValues)
{
    // Golden fingerprints captured from the pre-profiler tree. If one
    // of these changes, every existing journal for that config is
    // invalidated — that is a breaking change and needs a deliberate
    // kJournalVersion bump, not a silent drift.
    struct Golden
    {
        MachineKind kind;
        uint64_t fp;
    };
    const Golden golden[] = {
        {MachineKind::Base, 0x46265b8e200cff92ull},
        {MachineKind::ISRF1, 0xecc57f3c2ac84cfbull},
        {MachineKind::ISRF4, 0x26d59cdb63d8a403ull},
        {MachineKind::Cache, 0x2ce009909ade9cecull},
    };
    WorkloadOptions opts;
    for (const auto &g : golden) {
        SweepJob job;
        job.workload = "FFT 2D";
        job.cfg = MachineConfig::make(g.kind);
        job.opts = opts;
        EXPECT_EQ(SweepRunner::fingerprint(job), g.fp)
            << machineKindName(g.kind) << " text:\n"
            << SweepRunner::canonicalJobText(job);
    }
}

TEST(SweepResilience, LoadJournalDiagnosesBadFiles)
{
    // Missing file.
    auto load =
        SweepRunner::loadJournal(::testing::TempDir() + "no.jsonl");
    EXPECT_FALSE(load.ok);

    // Valid JSONL but not a journal (no header).
    TempJournal journal("badhead");
    {
        JsonlWriter w;
        ASSERT_TRUE(w.open(journal.path(), false));
        ASSERT_TRUE(w.append("{\"not\":\"a header\"}"));
    }
    load = SweepRunner::loadJournal(journal.path());
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("header"), std::string::npos)
        << load.error;
}

TEST(SweepResilience, ReplayPolicyReRunsWallClockDependentStatuses)
{
    EXPECT_TRUE(SweepRunner::replayable(RunStatus::Done));
    EXPECT_TRUE(SweepRunner::replayable(RunStatus::Stalled));
    EXPECT_TRUE(SweepRunner::replayable(RunStatus::Failed));
    EXPECT_FALSE(SweepRunner::replayable(RunStatus::TimedOut));
    EXPECT_FALSE(SweepRunner::replayable(RunStatus::Cancelled));
}

TEST(EnvSnapshot, ParseU64RejectsGarbage)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("  12", v));
    EXPECT_FALSE(parseU64("12x", v));
    EXPECT_FALSE(parseU64("-3", v));
    EXPECT_FALSE(parseU64("0x10", v));
    EXPECT_FALSE(parseU64("18446744073709551616", v));
}

} // namespace
} // namespace isrf
