/**
 * @file
 * Machine-level tests: configuration factories, kernel launch/finish
 * lifecycle, functional output correctness, execution-time breakdown
 * accounting and Figure 13 bandwidth records.
 */
#include <gtest/gtest.h>

#include "core/config.h"
#include "test_helpers.h"

namespace isrf {
namespace {

MachineConfig
smallConfig(MachineKind kind)
{
    MachineConfig cfg = MachineConfig::make(kind);
    cfg.dram.capacityWords = 1 << 18;  // keep test machines light
    return cfg;
}

TEST(MachineConfig, Factories)
{
    EXPECT_EQ(MachineConfig::base().srfMode, SrfMode::SequentialOnly);
    EXPECT_EQ(MachineConfig::isrf1().srfMode, SrfMode::Indexed1);
    EXPECT_EQ(MachineConfig::isrf4().srfMode, SrfMode::Indexed4);
    EXPECT_TRUE(MachineConfig::cacheCfg().mem.cacheEnabled);
    EXPECT_EQ(MachineConfig::base().name(), "Base");
    for (auto kind : {MachineKind::Base, MachineKind::ISRF1,
                      MachineKind::ISRF4, MachineKind::Cache}) {
        MachineConfig::make(kind).validate();
    }
}

TEST(MachineConfig, Table3Defaults)
{
    MachineConfig cfg = MachineConfig::base();
    EXPECT_EQ(cfg.srf.lanes, 8u);
    EXPECT_EQ(cfg.srf.totalBytes(), 128u * 1024);
    EXPECT_EQ(cfg.srf.seqWidth, 4u);
    EXPECT_EQ(cfg.srf.streamBufWords, 8u);
    EXPECT_EQ(cfg.srf.addrFifoSize, 8u);
    EXPECT_EQ(cfg.srf.seqLatency, 3u);
    EXPECT_EQ(cfg.srf.inLaneLatency, 4u);
    EXPECT_EQ(cfg.srf.crossLaneLatency, 6u);
    EXPECT_NEAR(cfg.dram.wordsPerCycle, 2.285, 0.001);
    EXPECT_EQ(cfg.cache.capacityWords * 4, 128u * 1024);
    EXPECT_EQ(cfg.cache.ways, 4u);
    EXPECT_EQ(cfg.cache.banks, 4u);
    EXPECT_EQ(cfg.cache.lineWords, 2u);
    EXPECT_EQ(cfg.cluster.aluSlots, 4u);
    EXPECT_EQ(cfg.cluster.divSlots, 1u);
}

class MachineTest : public ::testing::TestWithParam<MachineKind>
{
};

TEST_P(MachineTest, CopyKernelEndToEnd)
{
    Machine m;
    m.init(smallConfig(GetParam()));

    SlotConfig inCfg, outCfg;
    inCfg.lengthWords = 256;
    inCfg.base = m.allocator().alloc(256, StreamLayout::Striped);
    outCfg.lengthWords = 256;
    outCfg.base = m.allocator().alloc(256, StreamLayout::Striped);
    SlotId in = m.srf().openSlot(inCfg);
    SlotId out = m.srf().openSlot(outCfg);

    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 5 + 3);
    m.srf().fillSlot(in, data);

    KernelGraph g = test::makeCopyKernel();
    auto inv = test::makeCopyInvocation(m, &g, in, out, data);
    m.launchKernel(inv);
    EXPECT_TRUE(m.kernelActive());
    uint64_t cycles = m.runUntil([&]() { return !m.kernelActive(); },
                                 200000).cycles;
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(m.srf().dumpSlot(out), data);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MachineTest,
                         ::testing::Values(MachineKind::Base,
                                           MachineKind::ISRF1,
                                           MachineKind::ISRF4,
                                           MachineKind::Cache));

TEST(Machine, BreakdownAccountsEveryLaneCycle)
{
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig inCfg, outCfg;
    inCfg.lengthWords = 512;
    inCfg.base = 0;
    outCfg.lengthWords = 512;
    outCfg.base = m.config().srf.laneWords / 2;
    SlotId in = m.srf().openSlot(inCfg);
    SlotId out = m.srf().openSlot(outCfg);
    std::vector<Word> data(512, 1);
    m.srf().fillSlot(in, data);
    KernelGraph g = test::makeCopyKernel();
    auto inv = test::makeCopyInvocation(m, &g, in, out, data);
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 200000);

    const TimeBreakdown &bd = m.breakdown();
    EXPECT_EQ(bd.total(), m.now() * m.lanes());
    EXPECT_GT(bd.loopBody, 0u);
    EXPECT_GT(bd.overhead, 0u);  // dispatch + fill/drain
    EXPECT_EQ(bd.memStall, 0u);  // no memory ops issued
}

TEST(Machine, KernelBwRecorded)
{
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig inCfg, outCfg;
    inCfg.lengthWords = 512;
    inCfg.base = 0;
    outCfg.lengthWords = 512;
    outCfg.base = 1024;
    SlotId in = m.srf().openSlot(inCfg);
    SlotId out = m.srf().openSlot(outCfg);
    std::vector<Word> data(512, 2);
    m.srf().fillSlot(in, data);
    KernelGraph g = test::makeCopyKernel();
    m.launchKernel(test::makeCopyInvocation(m, &g, in, out, data));
    m.runUntil([&]() { return !m.kernelActive(); }, 200000);

    const auto &bw = m.kernelBw();
    ASSERT_TRUE(bw.count("copy"));
    const KernelBwRecord &rec = bw.at("copy");
    EXPECT_EQ(rec.invocations, 1u);
    EXPECT_GT(rec.laneCycles, 0u);
    // copy touches 2 words (1 read + 1 write) per iteration.
    EXPECT_EQ(rec.seqWords, 2u * 512u);
    EXPECT_GT(rec.seqPerLaneCycle(), 0.0);
    EXPECT_EQ(rec.inLaneWords, 0u);
}

TEST(Machine, LaunchWhileActiveDies)
{
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig cfg;
    cfg.lengthWords = 64;
    SlotId in = m.srf().openSlot(cfg);
    cfg.base = 512;
    SlotId out = m.srf().openSlot(cfg);
    std::vector<Word> data(64, 1);
    m.srf().fillSlot(in, data);
    KernelGraph g = test::makeCopyKernel();
    auto inv = test::makeCopyInvocation(m, &g, in, out, data);
    m.launchKernel(inv);
    auto inv2 = test::makeCopyInvocation(m, &g, in, out, data);
    EXPECT_DEATH(m.launchKernel(inv2), "while");
}

TEST(Machine, IndexedLookupKernelEndToEnd)
{
    Machine m;
    m.init(smallConfig(MachineKind::ISRF4));

    // Table: per-lane copy of 256 entries; in: per-lane indices; out:
    // the looked-up values.
    SlotConfig tblCfg;
    tblCfg.layout = StreamLayout::PerLane;
    tblCfg.lengthWords = 256;
    tblCfg.base = 0;
    tblCfg.indexed = true;
    SlotId tbl = m.srf().openSlot(tblCfg);
    for (uint32_t l = 0; l < m.lanes(); l++)
        for (uint32_t w = 0; w < 256; w++)
            m.srf().writeWord(l, w, (w * 3) ^ l);

    SlotConfig inCfg;
    inCfg.lengthWords = 512;
    inCfg.base = 256;
    SlotId in = m.srf().openSlot(inCfg);
    SlotConfig outCfg;
    outCfg.lengthWords = 512;
    outCfg.base = 512;
    SlotId out = m.srf().openSlot(outCfg);

    std::vector<Word> indices(512);
    Rng rng(3);
    for (auto &w : indices)
        w = static_cast<Word>(rng.below(256));
    m.srf().fillSlot(in, indices);

    KernelGraph g = test::makeLookupKernel();
    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {in, tbl, out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    const SrfGeometry &geom = m.config().srf;
    for (size_t e = 0; e < indices.size(); e++) {
        uint32_t lane =
            static_cast<uint32_t>((e / geom.seqWidth) % geom.lanes);
        auto &t = inv->laneTraces[lane];
        t.iterations++;
        t.seqWrites.resize(3);
        t.idxReads.resize(3);
        t.idxReads[1].push_back(indices[e]);
        t.seqWrites[2].push_back((indices[e] * 3) ^ lane);
    }
    inv->finalize();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 400000);

    // Verify the output: element e was processed by its stripe lane.
    auto outData = m.srf().dumpSlot(out);
    for (size_t e = 0; e < indices.size(); e++) {
        uint32_t lane =
            static_cast<uint32_t>((e / geom.seqWidth) % geom.lanes);
        EXPECT_EQ(outData[e], (indices[e] * 3) ^ lane) << "element " << e;
    }
    EXPECT_GT(m.srf().idxInLaneWords(), 0u);
}

} // namespace
} // namespace isrf
