/**
 * @file
 * Randomized stress/property tests: the simulator must preserve its
 * core invariants under arbitrary interleavings — every indexed read
 * completes exactly once with the right value and in issue order, the
 * scheduler only emits legal schedules for random graphs, random
 * memory-op soups complete with correct functional contents, and
 * random stream programs never deadlock.
 */
#include <gtest/gtest.h>

#include <map>

#include "core/stream_program.h"
#include "kernel/builder.h"
#include "kernel/scheduler.h"
#include "test_helpers.h"
#include "util/random.h"

namespace isrf {
namespace {

// ----------------------------------------------------------------------
// SRF random traffic
// ----------------------------------------------------------------------

class SrfRandomTraffic : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SrfRandomTraffic, EveryReadCompletesInOrderWithCorrectData)
{
    Rng rng(GetParam());
    SrfGeometry geom;
    geom.subArrays = 1u << rng.below(4);  // 1..8
    geom.addrFifoSize = static_cast<uint32_t>(rng.range(2, 8));
    Crossbar net;
    net.init(geom.lanes, 1, 1);
    Srf srf;
    srf.init(geom, rng.chance(0.5) ? SrfMode::Indexed4
                                   : SrfMode::Indexed1, &net);

    // One in-lane table slot and one cross-lane striped slot.
    SlotConfig tc;
    tc.dir = StreamDir::In;
    tc.indexed = true;
    tc.layout = StreamLayout::PerLane;
    tc.lengthWords = 128;
    SlotId tbl = srf.openSlot(tc);
    for (uint32_t l = 0; l < geom.lanes; l++)
        for (uint32_t w = 0; w < 128; w++)
            srf.writeWord(l, w, l * 1000 + w);

    SlotConfig xc;
    xc.dir = StreamDir::In;
    xc.indexed = true;
    xc.crossLane = true;
    xc.layout = StreamLayout::Striped;
    xc.base = 128;
    xc.lengthWords = 1024;
    SlotId cross = srf.openSlot(xc);
    std::vector<Word> crossData(1024);
    for (size_t i = 0; i < crossData.size(); i++)
        crossData[i] = static_cast<Word>(0xc0000 + i);
    srf.fillSlot(cross, crossData);

    // Issue random reads; remember expectations per (lane, slot) FIFO.
    struct Expect
    {
        std::deque<Word> values;
    };
    std::map<std::pair<uint32_t, SlotId>, Expect> expect;
    uint64_t issued = 0, completed = 0;
    Cycle now = 0;
    Word out[4];
    const uint32_t cycles = 1200;
    for (uint32_t c = 0; c < cycles; c++) {
        net.newCycle();
        srf.beginCycle(now);
        for (uint32_t l = 0; l < geom.lanes; l++) {
            for (SlotId id : {tbl, cross}) {
                // Drain anything ready, checking order + value.
                while (srf.idxDataReady(l, id, now)) {
                    srf.idxDataPop(l, id, out);
                    auto &q = expect[{l, id}];
                    ASSERT_FALSE(q.values.empty());
                    EXPECT_EQ(out[0], q.values.front());
                    q.values.pop_front();
                    completed++;
                }
                if (rng.chance(0.5) && srf.idxCanIssue(l, id)) {
                    if (id == tbl) {
                        auto rec = static_cast<uint32_t>(rng.below(128));
                        srf.idxIssueRead(l, id, rec);
                        expect[{l, id}].values.push_back(l * 1000 + rec);
                    } else {
                        auto rec = static_cast<uint32_t>(
                            rng.below(1024));
                        srf.idxIssueRead(l, id, rec);
                        expect[{l, id}].values.push_back(
                            crossData[rec]);
                    }
                    issued++;
                }
            }
        }
        srf.endCycle(now);
        now++;
    }
    // Drain the tail.
    for (uint32_t c = 0; c < 200; c++) {
        net.newCycle();
        srf.beginCycle(now);
        srf.endCycle(now);
        now++;
        for (uint32_t l = 0; l < geom.lanes; l++) {
            for (SlotId id : {tbl, cross}) {
                while (srf.idxDataReady(l, id, now)) {
                    srf.idxDataPop(l, id, out);
                    auto &q = expect[{l, id}];
                    ASSERT_FALSE(q.values.empty());
                    EXPECT_EQ(out[0], q.values.front());
                    q.values.pop_front();
                    completed++;
                }
            }
        }
    }
    EXPECT_EQ(issued, completed) << "every read completes exactly once";
    EXPECT_GT(issued, 500u) << "the stress actually exercised traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SrfRandomTraffic,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------------------
// Scheduler fuzzing
// ----------------------------------------------------------------------

/** Build a random kernel graph with mixed ops and recurrences. */
KernelGraph
randomGraph(Rng &rng, uint32_t id)
{
    KernelBuilder b("fuzz" + std::to_string(id));
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("lut");
    auto out = b.seqOut("out");
    std::vector<Value> pool;
    pool.push_back(b.read(in));
    pool.push_back(b.constInt(static_cast<int32_t>(rng.below(100))));
    uint32_t ops = static_cast<uint32_t>(rng.range(3, 40));
    Value carry{};
    bool hasCarry = rng.chance(0.5);
    if (hasCarry) {
        carry = b.carryIn();
        pool.push_back(carry);
    }
    for (uint32_t i = 0; i < ops; i++) {
        Value a = pool[rng.below(pool.size())];
        Value c = pool[rng.below(pool.size())];
        switch (rng.below(6)) {
          case 0: pool.push_back(b.iadd(a, c)); break;
          case 1: pool.push_back(b.fmul(a, c)); break;
          case 2: pool.push_back(b.ixor(a, c)); break;
          case 3: pool.push_back(b.cmpLt(a, c)); break;
          case 4: pool.push_back(b.readIdx(lut, a)); break;
          case 5:
            if (rng.chance(0.2))
                pool.push_back(b.fdiv(a, c));
            else
                pool.push_back(b.fadd(a, c));
            break;
        }
    }
    if (hasCarry)
        b.carryOut(carry, pool.back(), 1);
    b.write(out, pool.back());
    return b.build();
}

/** Re-usable legality check (dependences + resource capacities). */
void
checkLegal(const KernelGraph &g, const KernelSchedule &s, uint32_t sep)
{
    ASSERT_GT(s.ii, 0u);
    for (const Edge &e : g.fullEdges(sep)) {
        int64_t lhs = static_cast<int64_t>(s.opCycle[e.to]);
        int64_t rhs = static_cast<int64_t>(s.opCycle[e.from]) +
            static_cast<int64_t>(e.latency) -
            static_cast<int64_t>(s.ii) * static_cast<int64_t>(e.distance);
        ASSERT_GE(lhs, rhs);
    }
    std::map<std::pair<int, uint32_t>, uint32_t> use;
    ClusterResources res;
    for (NodeId id = 0; id < g.nodeCount(); id++) {
        const OpInfo &info = opInfo(g.node(id).op);
        if (info.fu == FuClass::None)
            continue;
        uint32_t dur = info.pipelined ? 1 : info.latency;
        for (uint32_t d = 0; d < dur; d++) {
            auto key = std::make_pair(static_cast<int>(info.fu),
                                      (s.opCycle[id] + d) % s.ii);
            use[key]++;
            uint32_t cap = 0;
            switch (info.fu) {
              case FuClass::Alu: cap = res.aluSlots; break;
              case FuClass::Div: cap = res.divSlots; break;
              case FuClass::Comm: cap = res.commSlots; break;
              case FuClass::Sbuf: cap = res.sbufSlots; break;
              case FuClass::Sp: cap = res.spSlots; break;
              default: cap = 1; break;
            }
            ASSERT_LE(use[key], cap)
                << opName(g.node(id).op) << " at modulo slot "
                << (s.opCycle[id] + d) % s.ii;
        }
    }
}

class SchedulerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedulerFuzz, RandomGraphsScheduleLegally)
{
    Rng rng(GetParam() * 7919);
    ModuloScheduler sched;
    for (uint32_t i = 0; i < 8; i++) {
        KernelGraph g = randomGraph(rng, i);
        uint32_t sep = static_cast<uint32_t>(rng.range(2, 24));
        KernelSchedule s = sched.schedule(g, sep);
        checkLegal(g, s, sep);
        EXPECT_GE(s.ii, sched.resourceMinII(g));
        EXPECT_GE(s.ii, sched.recurrenceMinII(g, sep));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------------------------------
// Memory-system soup
// ----------------------------------------------------------------------

TEST(MemStress, RandomOpSoupCompletesWithCorrectContents)
{
    Rng rng(404);
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::SequentialOnly, nullptr);
    MemSystemConfig mc;
    DramConfig dc;
    dc.capacityWords = 1 << 18;
    dc.accessLatency = 6;
    CacheConfig cc;
    MemorySystem mem;
    mem.init(mc, dc, cc, &srf);

    // Pre-fill DRAM.
    std::vector<Word> image(1 << 16);
    for (size_t i = 0; i < image.size(); i++)
        image[i] = static_cast<Word>(i * 2654435761u);
    mem.dram().fill(0, image);

    // Several disjoint SRF regions.
    std::vector<SlotId> slots;
    for (int i = 0; i < 6; i++) {
        SlotConfig cfg;
        cfg.lengthWords = 512;
        cfg.base = static_cast<uint32_t>(i) * 512;
        slots.push_back(srf.openSlot(cfg));
    }

    // One load per slot: the memory system itself does not order
    // same-slot ops (that is the stream program scoreboard's job), so
    // concurrent units may interleave writes to a shared slot.
    std::vector<std::pair<MemOpId, std::pair<SlotId, uint64_t>>> loads;
    for (size_t i = 0; i < slots.size(); i++) {
        uint64_t src = rng.below((1 << 16) - 512);
        MemOp op;
        op.kind = MemOpKind::Load;
        op.memBase = src;
        op.srfSlot = slots[i];
        loads.push_back({mem.submit(op), {slots[i], src}});
    }
    Cycle now = 0;
    for (int i = 0; i < 30000 && !mem.idle(); i++) {
        srf.beginCycle(now);
        mem.tick(now);
        srf.endCycle(now);
        now++;
    }
    ASSERT_TRUE(mem.idle());
    std::map<SlotId, uint64_t> lastSrc;
    for (auto &kv : loads) {
        EXPECT_TRUE(mem.done(kv.first));
        lastSrc[kv.second.first] = kv.second.second;
    }
    for (auto &kv : lastSrc) {
        auto dump = srf.dumpSlot(kv.first);
        for (size_t i = 0; i < dump.size(); i++)
            ASSERT_EQ(dump[i], image[kv.second + i]) << i;
    }
}

// ----------------------------------------------------------------------
// Random stream programs
// ----------------------------------------------------------------------

class ProgramStress : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ProgramStress, RandomPipelinesRunToCompletion)
{
    Rng rng(GetParam() * 31337);
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 18;
    Machine m;
    m.init(cfg);
    KernelGraph g = test::makeCopyKernel();

    std::vector<Word> image(8192);
    for (size_t i = 0; i < image.size(); i++)
        image[i] = static_cast<Word>(rng.next());
    m.mem().dram().fill(0, image);

    StreamProgram prog(m);
    const uint32_t n = 512;
    std::vector<SlotId> slots;
    std::vector<std::vector<Word>> contents(4);
    for (int i = 0; i < 4; i++)
        slots.push_back(prog.addStream("s" + std::to_string(i), n));

    // Random chain: loads, copies between slots, stores.
    std::vector<std::pair<uint64_t, std::vector<Word>>> expectedStores;
    for (int step = 0; step < 10; step++) {
        switch (rng.below(3)) {
          case 0: {  // load
            size_t dst = rng.below(slots.size());
            uint64_t src = rng.below(4096);
            prog.load(slots[dst], src, false, n);
            contents[dst].assign(image.begin() + src,
                                 image.begin() + src + n);
            break;
          }
          case 1: {  // copy kernel between two distinct slots
            size_t a = rng.below(slots.size());
            size_t b2 = (a + 1 + rng.below(slots.size() - 1)) %
                slots.size();
            if (contents[a].empty())
                break;
            prog.kernel(test::makeCopyInvocation(m, &g, slots[a],
                                                 slots[b2],
                                                 contents[a]));
            contents[b2] = contents[a];
            break;
          }
          case 2: {  // store
            size_t src = rng.below(slots.size());
            if (contents[src].empty())
                break;
            uint64_t dst = 16384 + step * 1024;
            prog.store(slots[src], dst, false, n);
            expectedStores.push_back({dst, contents[src]});
            break;
          }
        }
    }
    prog.run(5'000'000);
    for (const auto &kv : expectedStores) {
        auto got = m.mem().dram().dump(kv.first, n);
        EXPECT_EQ(got, kv.second);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramStress,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10));

} // namespace
} // namespace isrf
