/**
 * @file
 * StreamProgram runtime tests: dependency inference, out-of-order
 * issue, load->kernel->store pipelines, and memory/compute overlap.
 */
#include <gtest/gtest.h>

#include "core/stream_program.h"
#include "test_helpers.h"

namespace isrf {
namespace {

MachineConfig
smallConfig(MachineKind kind = MachineKind::Base)
{
    MachineConfig cfg = MachineConfig::make(kind);
    cfg.dram.capacityWords = 1 << 18;
    return cfg;
}

TEST(StreamProgram, LoadKernelStoreRoundtrip)
{
    Machine m;
    m.init(smallConfig());
    std::vector<Word> input(512);
    for (size_t i = 0; i < input.size(); i++)
        input[i] = static_cast<Word>(i * 11 + 1);
    m.mem().dram().fill(0, input);

    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 512);
    SlotId out = prog.addStream("out", 512);
    prog.load(in, 0);
    KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, input));
    prog.store(out, 4096);
    uint64_t cycles = prog.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(m.mem().dram().dump(4096, 512), input);
    // Load + store cross the pins exactly once each.
    EXPECT_EQ(m.mem().dram().wordsTransferred(), 1024u);
}

TEST(StreamProgram, DependenciesSerializeRawWarWaw)
{
    Machine m;
    m.init(smallConfig());
    std::vector<Word> a(256, 1), b(256, 2);
    m.mem().dram().fill(0, a);
    m.mem().dram().fill(1000, b);

    StreamProgram prog(m);
    SlotId s = prog.addStream("s", 256);
    // WAW: two loads into the same slot; the second must win.
    prog.load(s, 0);
    prog.load(s, 1000);
    prog.store(s, 2000);
    prog.run();
    EXPECT_EQ(m.mem().dram().dump(2000, 256), b);
}

TEST(StreamProgram, ExplicitDependency)
{
    Machine m;
    m.init(smallConfig());
    std::vector<Word> a(64, 7);
    m.mem().dram().fill(0, a);
    StreamProgram prog(m);
    SlotId x = prog.addStream("x", 64);
    SlotId y = prog.addStream("y", 64);
    ProgOpId l1 = prog.load(x, 0);
    // y's load would otherwise run concurrently; force it after l1.
    ProgOpId l2 = prog.load(y, 0);
    prog.dependsOn(l2, l1);
    prog.run();
    EXPECT_EQ(prog.dumpStream(y), a);
}

TEST(StreamProgram, MemoryOverlapsKernels)
{
    // Two independent chains: load A -> kernel A while load B proceeds.
    // Total time must be well below the serial sum.
    Machine m;
    m.init(smallConfig());
    std::vector<Word> data(2048);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i);
    m.mem().dram().fill(0, data);

    KernelGraph g = test::makeCopyKernel();

    StreamProgram prog(m);
    SlotId inA = prog.addStream("inA", 2048);
    SlotId outA = prog.addStream("outA", 2048);
    SlotId inB = prog.addStream("inB", 2048);
    SlotId outB = prog.addStream("outB", 2048);
    prog.load(inA, 0);
    prog.kernel(test::makeCopyInvocation(m, &g, inA, outA, data));
    prog.store(outA, 8192);
    prog.load(inB, 0);
    prog.kernel(test::makeCopyInvocation(m, &g, inB, outB, data));
    prog.store(outB, 16384);
    uint64_t cycles = prog.run();

    // Serial lower bound for the memory ops alone: 4 x 2048 words at
    // ~2.285 words/cycle = ~3585 cycles. With overlap, the whole thing
    // should be well under load+kernel+store fully serialized.
    Machine m2;
    m2.init(smallConfig());
    m2.mem().dram().fill(0, data);
    StreamProgram serial(m2);
    SlotId sIn = serial.addStream("in", 2048);
    SlotId sOut = serial.addStream("out", 2048);
    serial.load(sIn, 0);
    serial.kernel(test::makeCopyInvocation(m2, &g, sIn, sOut, data));
    uint64_t serialOne = serial.run();
    EXPECT_LT(cycles, 2 * serialOne + 2 * 2048);

    EXPECT_EQ(m.mem().dram().dump(8192, 2048), data);
    EXPECT_EQ(m.mem().dram().dump(16384, 2048), data);
}

TEST(StreamProgram, MemStallAccountedWhenKernelWaitsOnLoad)
{
    Machine m;
    m.init(smallConfig());
    std::vector<Word> data(4096, 5);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 4096);
    SlotId out = prog.addStream("out", 4096);
    prog.load(in, 0);
    KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    prog.run();
    // The kernel cannot start until the load finishes: those cycles are
    // memory stalls.
    EXPECT_GT(m.breakdown().memStall, 1000u);
}

TEST(StreamProgram, GatherFeedsKernel)
{
    Machine m;
    m.init(smallConfig());
    std::vector<Word> table(1024);
    for (size_t i = 0; i < table.size(); i++)
        table[i] = static_cast<Word>(i ^ 0xff);
    m.mem().dram().fill(0, table);

    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 128);
    SlotId out = prog.addStream("out", 128);
    std::vector<uint32_t> idx(128);
    Rng rng(17);
    std::vector<Word> gathered(128);
    for (size_t i = 0; i < idx.size(); i++) {
        idx[i] = static_cast<uint32_t>(rng.below(1024));
        gathered[i] = table[idx[i]];
    }
    prog.gather(in, 0, idx);
    KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, gathered));
    prog.run();
    EXPECT_EQ(prog.dumpStream(out), gathered);
}

TEST(StreamProgram, AllocatorExhaustionIsFatal)
{
    Machine m;
    m.init(smallConfig());
    StreamProgram prog(m);
    // 8 lanes x 4096 words = 32K words total; ask for too much.
    prog.addStream("big", 30000);
    EXPECT_DEATH(prog.addStream("huge", 30000), "allocation failed");
}

TEST(StreamProgram, SlotsReleasedOnDestruction)
{
    Machine m;
    m.init(smallConfig());
    for (int round = 0; round < 3; round++) {
        StreamProgram prog(m);
        for (int i = 0; i < 20; i++) {
            prog.addStream("s" + std::to_string(i), 64);
        }
        m.allocator().reset();
    }
    SUCCEED();  // would die on slot exhaustion if slots leaked
}

} // namespace
} // namespace isrf

namespace isrf {
namespace {

TEST(StreamProgram, AliasSharesStorageWithIndependentBuffers)
{
    Machine m;
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    StreamProgram prog(m);
    SlotId a = prog.addStream("orig", 256, StreamLayout::Striped,
                              StreamDir::In, true);
    SlotId b = prog.addStreamAlias("view", a);
    EXPECT_NE(a, b);
    // Same storage region...
    EXPECT_EQ(m.srf().slotConfig(a).base, m.srf().slotConfig(b).base);
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i + 9);
    prog.fillStream(a, data);
    EXPECT_EQ(prog.dumpStream(b), data);
    // ...but independent buffer state: reading via the alias does not
    // disturb the original's cursors.
    m.srf().configureSlotBinding(b, StreamDir::In, true, false);
    Cycle now = 0;
    m.srf().beginCycle(now);
    ASSERT_TRUE(m.srf().idxIssueRead(0, b, 1));
    m.srf().endCycle(now);
    EXPECT_EQ(m.srf().idxOutstanding(0, a), 0u);
    // The request sits in the alias's FIFO and data buffer.
    EXPECT_EQ(m.srf().idxOutstanding(0, b), 2u);
}

TEST(MachineConfigValidate, RejectsInconsistentCombos)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.mem.cacheEnabled = true;  // cache on a non-Cache machine
    EXPECT_DEATH(cfg.validate(), "cache enabled");

    MachineConfig c2 = MachineConfig::cacheCfg();
    c2.mem.cacheEnabled = false;
    EXPECT_DEATH(c2.validate(), "without cache");

    MachineConfig c3 = MachineConfig::isrf4();
    c3.srf.laneWords = 4097;  // not a multiple of seqWidth
    EXPECT_DEATH(c3.validate(), "multiple of seqWidth");

    MachineConfig c4 = MachineConfig::base();
    c4.srfMode = SrfMode::Indexed4;  // mode/kind mismatch
    EXPECT_DEATH(c4.validate(), "inconsistent");
}

} // namespace
} // namespace isrf
