/**
 * @file
 * Tests for the compute-cluster model: invocation metadata, iteration
 * pacing against the schedule, spill-over of wide per-iteration stream
 * work, indexed-data stalls, load imbalance, and cycle categorization.
 */
#include <gtest/gtest.h>

#include "test_helpers.h"

namespace isrf {
namespace {

MachineConfig
smallConfig(MachineKind kind = MachineKind::ISRF4)
{
    MachineConfig cfg = MachineConfig::make(kind);
    cfg.dram.capacityWords = 1 << 16;
    return cfg;
}

TEST(KernelInvocation, FinalizeDerivesPerSlotCounts)
{
    KernelGraph g = test::makeLookupKernel();
    KernelInvocation inv;
    inv.graph = &g;
    ModuloScheduler sched;
    inv.sched = sched.schedule(g, 6);
    inv.slots = {0, 1, 2};
    inv.laneTraces.assign(8, LaneTrace());
    inv.finalize();
    ASSERT_EQ(inv.seqReadsPerIter.size(), 3u);
    EXPECT_EQ(inv.seqReadsPerIter[0], 1u);
    EXPECT_EQ(inv.idxReadsPerIter[1], 1u);
    EXPECT_EQ(inv.seqWritesPerIter[2], 1u);
    EXPECT_EQ(inv.commSendsPerIter, 0u);
    ASSERT_EQ(inv.idxReadOffsets[1].size(), 1u);
    // The data read is scheduled at least `separation` after issue.
    EXPECT_GE(inv.idxReadOffsets[1][0], 6u);
}

TEST(KernelInvocation, FinalizeChecksBindingArity)
{
    KernelGraph g = test::makeCopyKernel();
    KernelInvocation inv;
    inv.graph = &g;
    inv.slots = {0};  // needs 2
    inv.laneTraces.assign(8, LaneTrace());
    EXPECT_DEATH(inv.finalize(), "slot bindings");
}

TEST(Cluster, IterationPacingFollowsII)
{
    // A compute-only kernel (no stream stalls possible) must retire one
    // iteration exactly every II cycles after the pipeline fills.
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig sc;
    sc.lengthWords = 4096;
    sc.base = 0;
    SlotId out = m.srf().openSlot(sc);

    KernelBuilder b("paced");
    auto o = b.seqOut("o");
    auto x = b.fmul(b.constFloat(2), b.constFloat(3));
    for (int i = 0; i < 7; i++)
        x = b.fadd(x, x);  // 8 ALU ops -> II = 2
    b.write(o, x);
    KernelGraph g = b.build();

    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    const uint64_t iters = 100;
    for (auto &t : inv->laneTraces) {
        t.iterations = iters;
        t.seqWrites.resize(1);
        t.seqWrites[0].assign(iters, 1);
        t.idxReads.resize(1);
        t.idxWrites.resize(1);
    }
    inv->finalize();
    uint32_t ii = inv->sched.ii;
    EXPECT_EQ(ii, 2u);
    m.launchKernel(inv);
    uint64_t cycles = m.runUntil([&]() { return !m.kernelActive(); },
                                 100000).cycles;
    // startOverhead + fill + iters*II + drain + flush, with slack.
    uint64_t lower = m.config().kernelStartOverhead + iters * ii;
    EXPECT_GE(cycles, lower);
    EXPECT_LE(cycles, lower + inv->sched.length + 64);
}

TEST(Cluster, WidePerIterationWritesSpillAcrossCycles)
{
    // 16 writes/iteration against an 8-word buffer must work (spill
    // over), not deadlock — the Rijndael base kernel shape.
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig sc;
    sc.lengthWords = 4096;
    SlotId out = m.srf().openSlot(sc);

    KernelBuilder b("wide");
    auto o = b.seqOut("o");
    for (int i = 0; i < 16; i++)
        b.write(o, b.constInt(i));
    KernelGraph g = b.build();

    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    for (auto &t : inv->laneTraces) {
        t.iterations = 16;
        t.seqWrites.resize(1);
        for (uint32_t i = 0; i < 16 * 16; i++)
            t.seqWrites[0].push_back(i);
        t.idxReads.resize(1);
        t.idxWrites.resize(1);
    }
    inv->finalize();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 100000);
    // All 256 words per lane landed in order.
    EXPECT_EQ(m.srf().wordsWritten(out), 16u * 16 * m.lanes());
    EXPECT_EQ(m.srf().readWord(0, 0), 0u);
    EXPECT_EQ(m.srf().readWord(0, 9), 9u);
}

TEST(Cluster, LoadImbalanceCountedAsOverhead)
{
    // Lane 0 runs 400 iterations, everyone else 4: the idle lanes must
    // accumulate overhead (load imbalance), not loop time.
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig sc;
    sc.lengthWords = 4096;
    SlotId out = m.srf().openSlot(sc);
    KernelGraph g = test::makeCopyKernel();
    SlotConfig ic;
    ic.lengthWords = 4096;
    ic.base = 2048;
    SlotId in = m.srf().openSlot(ic);

    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {in, out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    for (uint32_t l = 0; l < m.lanes(); l++) {
        auto &t = inv->laneTraces[l];
        t.iterations = l == 0 ? 400 : 4;
        t.seqWrites.resize(2);
        t.seqWrites[1].assign(t.iterations, 7);
        t.idxReads.resize(2);
        t.idxWrites.resize(2);
    }
    inv->finalize();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 100000);
    const TimeBreakdown &bd = m.breakdown();
    // 7 lanes idle for ~396 iterations' worth of cycles.
    EXPECT_GT(bd.overhead, bd.loopBody);
}

TEST(Cluster, IndexedDataLatencyStallsWhenSeparationTooShort)
{
    // With a 1-cycle scheduled separation the data cannot be back in
    // time (in-lane latency is 4), so the lane must take SRF stalls.
    Machine m;
    MachineConfig cfg = smallConfig(MachineKind::ISRF4);
    cfg.inLaneSeparation = 1;
    m.init(cfg);

    SlotConfig tc;
    tc.layout = StreamLayout::PerLane;
    tc.lengthWords = 256;
    tc.indexed = true;
    SlotId tbl = m.srf().openSlot(tc);
    SlotConfig oc;
    oc.lengthWords = 4096;
    oc.base = 256;
    SlotId out = m.srf().openSlot(oc);

    KernelBuilder b("shortsep");
    auto lut = b.idxlIn("lut");
    auto o = b.seqOut("o");
    auto v = b.readIdx(lut, b.iterIdx());
    b.write(o, v);
    KernelGraph g = b.build();

    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {tbl, out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    Rng rng(5);
    for (auto &t : inv->laneTraces) {
        t.iterations = 64;
        t.seqWrites.resize(2);
        t.idxReads.resize(2);
        t.idxWrites.resize(2);
        for (int i = 0; i < 64; i++) {
            t.seqWrites[1].push_back(1);
            t.idxReads[0].push_back(
                static_cast<uint32_t>(rng.below(256)));
        }
    }
    inv->finalize();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 100000);
    EXPECT_GT(m.breakdown().srfStall, 0u);
}

TEST(Cluster, CommSendsOccupyDataNetwork)
{
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig sc;
    sc.lengthWords = 2048;
    SlotId out = m.srf().openSlot(sc);

    KernelBuilder b("commy");
    auto o = b.seqOut("o");
    auto v = b.constInt(1);
    auto s0 = b.commSend(v, v);
    auto r = b.commRecv();
    b.orderEdge(s0, r, 2, 0);
    b.write(o, b.iadd(r, v));
    KernelGraph g = b.build();

    auto inv = std::make_shared<KernelInvocation>();
    inv->graph = &g;
    inv->sched = m.scheduleKernel(g);
    inv->slots = {out};
    inv->laneTraces.assign(m.lanes(), LaneTrace());
    for (auto &t : inv->laneTraces) {
        t.iterations = 32;
        t.seqWrites.resize(1);
        t.seqWrites[0].assign(32, 3);
        t.idxReads.resize(1);
        t.idxWrites.resize(1);
    }
    inv->finalize();
    EXPECT_EQ(inv->commSendsPerIter, 1u);
    uint64_t before = m.dataNet().transfers();
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 100000);
    (void)before;
    SUCCEED();  // completing without deadlock exercises the comm path
}

TEST(Cluster, DoneRequiresPipelineDrain)
{
    Machine m;
    m.init(smallConfig(MachineKind::Base));
    SlotConfig sc;
    sc.lengthWords = 1024;
    SlotId out = m.srf().openSlot(sc);
    KernelGraph g = test::makeCopyKernel();
    SlotConfig ic;
    ic.lengthWords = 1024;
    ic.base = 1024;
    SlotId in = m.srf().openSlot(ic);
    std::vector<Word> data(1024, 9);
    m.srf().fillSlot(in, data);
    auto inv = test::makeCopyInvocation(m, &g, in, out, data);
    uint32_t len = inv->sched.length;
    EXPECT_GT(len, inv->sched.ii);
    m.launchKernel(inv);
    m.runUntil([&]() { return !m.kernelActive(); }, 100000);
    SUCCEED();
}

} // namespace
} // namespace isrf
