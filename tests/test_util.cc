/**
 * @file
 * Unit tests for the utility layer: RNG, statistics, tables, logging.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "util/json.h"
#include "util/log.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace isrf {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 5000; i++) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 20000; i++) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ReseedReproduces)
{
    Rng r(5);
    uint64_t first = r.next();
    r.next();
    r.reseed(5);
    EXPECT_EQ(r.next(), first);
}

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 10, 5);
    h.sample(-1);
    h.sample(0);
    h.sample(3.9);
    h.sample(10);
    h.sample(25);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.totalSamples(), 5u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(1), 4.0);
}

TEST(StatGroup, CountersByName)
{
    StatGroup g("grp");
    g.counter("a").inc(3);
    g.counter("a").inc();
    EXPECT_EQ(g.counterValue("a"), 4u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_TRUE(g.hasCounter("a"));
    EXPECT_FALSE(g.hasCounter("b"));
    g.resetAll();
    EXPECT_EQ(g.counterValue("a"), 0u);
}

TEST(StatGroup, FormatRows)
{
    StatGroup g("srf");
    g.counter("hits").inc(7);
    auto rows = g.formatRows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NE(rows[0].find("srf.hits"), std::string::npos);
    EXPECT_NE(rows[0].find("7"), std::string::npos);
}

TEST(Table, RendersAlignedCells)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    std::string s = t.render();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, DoubleRowFormatting)
{
    Table t({"bench", "a", "b"});
    t.addRow("fft", {1.0, 0.4467}, 2);
    std::string s = t.render();
    EXPECT_NE(s.find("1.00"), std::string::npos);
    EXPECT_NE(s.find("0.45"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table t({"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.renderCsv().find("\"x,y\""), std::string::npos);
}

TEST(Strprintf, Formats)
{
    EXPECT_EQ(strprintf("%d-%s", 3, "a"), "3-a");
    EXPECT_EQ(strprintf("%.2f", 1.239), "1.24");
}

TEST(AsciiBar, Proportional)
{
    std::string full = asciiBar(10, 10, 10);
    std::string half = asciiBar(5, 10, 10);
    EXPECT_EQ(full, std::string(10, '#'));
    EXPECT_EQ(half.substr(0, 5), std::string(5, '#'));
    EXPECT_EQ(half.size(), 10u);
}

TEST(JsonWriter, ObjectsArraysAndCommas)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", static_cast<uint64_t>(1));
    w.field("b", std::string("two"));
    w.key("c").beginArray();
    w.value(static_cast<uint64_t>(3));
    w.value(true);
    w.beginObject();
    w.field("d", 2.5);
    w.endObject();
    w.endArray();
    w.endObject();
    std::string s = w.str();
    EXPECT_EQ(s, "{\"a\":1,\"b\":\"two\",\"c\":[3,true,{\"d\":2.5}]}");
    EXPECT_TRUE(jsonValid(s));
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.field("k", std::string("a\"b\\c\nd\te"));
    w.endObject();
    std::string s = w.str();
    EXPECT_TRUE(jsonValid(s)) << s;
    EXPECT_NE(s.find("\\\""), std::string::npos);
    EXPECT_NE(s.find("\\n"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginObject();
    w.field("nan", std::nan(""));
    w.field("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    std::string s = w.str();
    EXPECT_EQ(s, "{\"nan\":null,\"inf\":null}");
    EXPECT_TRUE(jsonValid(s));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNullEverywhere)
{
    // The null mapping must hold in every value position — array
    // elements, nested objects, bare value() — not just field(); a raw
    // "nan" or "inf" token anywhere makes the whole document invalid
    // JSON, which a journal reader would then reject as corrupt.
    JsonWriter w;
    w.beginObject();
    w.key("arr").beginArray();
    w.value(std::nan(""));
    w.value(-std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.endArray();
    w.key("nested").beginObject();
    w.field("ninf", -std::numeric_limits<double>::infinity());
    w.endObject();
    w.endObject();
    std::string s = w.str();
    EXPECT_EQ(s, "{\"arr\":[null,null,1.5],\"nested\":{\"ninf\":null}}");
    EXPECT_TRUE(jsonValid(s));
    // Denormals and extremes stay finite numbers, not null.
    JsonWriter w2;
    w2.beginObject();
    w2.field("denorm", std::numeric_limits<double>::denorm_min());
    w2.field("max", std::numeric_limits<double>::max());
    w2.endObject();
    EXPECT_TRUE(jsonValid(w2.str()));
    EXPECT_EQ(w2.str().find("null"), std::string::npos);
}

/**
 * Seeded writer->validator fuzz: every document the streaming writer
 * can emit (random nesting, keys, escapes, numeric extremes) must pass
 * the strict structural validator.
 */
class JsonFuzzer
{
  public:
    explicit JsonFuzzer(uint64_t seed) : rng_(seed) {}

    std::string
    document()
    {
        JsonWriter w;
        value(w, 0);
        return w.str();
    }

  private:
    void
    value(JsonWriter &w, int depth)
    {
        uint64_t pick = rng_.below(depth >= 4 ? 5 : 7);
        switch (pick) {
          case 0: w.value(randomString()); break;
          case 1: w.value(rng_.next()); break;
          case 2:
            w.value(static_cast<int64_t>(rng_.next()));
            break;
          case 3: w.value(rng_.uniform() * 1e9 - 5e8); break;
          case 4: w.value(rng_.chance(0.5)); break;
          case 5: {  // object
            w.beginObject();
            uint64_t n = rng_.below(4);
            for (uint64_t i = 0; i < n; i++) {
                w.key(randomString() + std::to_string(i));
                value(w, depth + 1);
            }
            w.endObject();
            break;
          }
          default: {  // array
            w.beginArray();
            uint64_t n = rng_.below(4);
            for (uint64_t i = 0; i < n; i++)
                value(w, depth + 1);
            w.endArray();
            break;
          }
        }
    }

    std::string
    randomString()
    {
        static const char pool[] =
            "abcXYZ 019 \"quote\" \\back\nnew\ttab/\b\f\r";
        std::string s;
        uint64_t n = rng_.below(12);
        for (uint64_t i = 0; i < n; i++)
            s += pool[rng_.below(sizeof(pool) - 1)];
        return s;
    }

    Rng rng_;
};

TEST(JsonFuzz, WriterOutputAlwaysValidates)
{
    for (uint64_t seed = 1; seed <= 1000; seed++) {
        JsonFuzzer fuzz(seed * 2654435761ull);
        std::string doc = fuzz.document();
        EXPECT_TRUE(jsonValid(doc))
            << "seed " << seed << " produced invalid JSON: " << doc;
    }
}

TEST(JsonValid, AcceptsAndRejects)
{
    EXPECT_TRUE(jsonValid("{}"));
    EXPECT_TRUE(jsonValid("[1,2.5,-3e4,\"x\",null,true,false]"));
    EXPECT_TRUE(jsonValid("{\"a\":{\"b\":[{}]}}"));
    EXPECT_TRUE(jsonValid("  {\"u\":\"\\u00e9\"} "));
    EXPECT_FALSE(jsonValid(""));
    EXPECT_FALSE(jsonValid("{"));
    EXPECT_FALSE(jsonValid("{\"a\":1,}"));
    EXPECT_FALSE(jsonValid("[1 2]"));
    EXPECT_FALSE(jsonValid("{\"a\":01}"));
    EXPECT_FALSE(jsonValid("{} trailing"));
    EXPECT_FALSE(jsonValid("{'a':1}"));
    EXPECT_FALSE(jsonValid("\"unterminated"));
}

TEST(Stats, HistogramRegistersInGroup)
{
    StatGroup g("grp");
    EXPECT_FALSE(g.hasHistogram("dist"));
    Histogram &h = g.histogram("dist", 0, 8, 8);
    EXPECT_TRUE(g.hasHistogram("dist"));
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(100);  // overflow bin
    // Re-lookup returns the same histogram; range params are ignored
    // after creation.
    Histogram &again = g.histogram("dist", 0, 999, 2);
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(again.totalSamples(), 4u);
    EXPECT_EQ(again.overflow(), 1u);
    const Histogram *found = g.findHistogram("dist");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->buckets()[3], 2u);
    EXPECT_EQ(g.findHistogram("missing"), nullptr);
}

TEST(Stats, HistogramRendersInFormatRows)
{
    StatGroup g("grp");
    Histogram &h = g.histogram("lat", 0, 4, 4);
    h.sample(1);
    h.sample(2);
    bool found = false;
    for (const std::string &row : g.formatRows())
        if (row.find("grp.lat") != std::string::npos) {
            found = true;
            EXPECT_NE(row.find("n=2"), std::string::npos) << row;
        }
    EXPECT_TRUE(found);
}

TEST(Stats, HistogramResetsWithGroup)
{
    StatGroup g("grp");
    Histogram &h = g.histogram("d", 0, 4, 4);
    h.sample(1);
    g.resetAll();
    EXPECT_EQ(h.totalSamples(), 0u);
}

} // namespace
} // namespace isrf
