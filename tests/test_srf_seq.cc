/**
 * @file
 * Tests for sequential SRF streaming: striping, buffer refill/drain,
 * flush, DMA port arbitration and allocator behaviour.
 */
#include <gtest/gtest.h>

#include "core/stream.h"
#include "srf/srf.h"

namespace isrf {
namespace {

class SrfSeqTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        geom_ = SrfGeometry{};  // Table 3 defaults: 8 lanes, m=4, s=4
        srf_.init(geom_, SrfMode::SequentialOnly, nullptr);
    }

    void
    cycle(uint32_t n = 1)
    {
        for (uint32_t i = 0; i < n; i++) {
            srf_.beginCycle(now_);
            srf_.endCycle(now_);
            now_++;
        }
    }

    SrfGeometry geom_;
    Srf srf_;
    Cycle now_ = 0;
};

TEST_F(SrfSeqTest, StripedLocationMapsBlocksRoundRobin)
{
    // Element words 0..3 in lane 0, 4..7 in lane 1, ..., 32..35 back in
    // lane 0 at the next row.
    auto [l0, a0] = srf_.stripedLocation(0, 0);
    EXPECT_EQ(l0, 0u);
    EXPECT_EQ(a0, 0u);
    auto [l1, a1] = srf_.stripedLocation(0, 4);
    EXPECT_EQ(l1, 1u);
    EXPECT_EQ(a1, 0u);
    auto [l2, a2] = srf_.stripedLocation(0, 32);
    EXPECT_EQ(l2, 0u);
    EXPECT_EQ(a2, 4u);
    auto [l3, a3] = srf_.stripedLocation(100, 33);
    EXPECT_EQ(l3, 0u);
    EXPECT_EQ(a3, 105u);
}

TEST_F(SrfSeqTest, FillDumpRoundtripStriped)
{
    SlotConfig cfg;
    cfg.layout = StreamLayout::Striped;
    cfg.base = 0;
    cfg.lengthWords = 100;  // deliberately not a multiple of N*m
    SlotId id = srf_.openSlot(cfg);
    std::vector<Word> data(100);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 3 + 1);
    srf_.fillSlot(id, data);
    EXPECT_EQ(srf_.dumpSlot(id), data);
    EXPECT_EQ(srf_.slotTotalWords(id), 100u);
}

TEST_F(SrfSeqTest, SequentialReadDeliversLaneStripes)
{
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.layout = StreamLayout::Striped;
    cfg.base = 0;
    cfg.lengthWords = 64;
    SlotId id = srf_.openSlot(cfg);
    std::vector<Word> data(64);
    for (size_t i = 0; i < 64; i++)
        data[i] = static_cast<Word>(i);
    srf_.fillSlot(id, data);

    cycle(64);  // plenty of time to refill all lanes

    // Lane 0 owns global words 0..3 and 32..35.
    std::vector<Word> lane0;
    while (srf_.seqCanRead(0, id))
        lane0.push_back(srf_.seqRead(0, id));
    // Buffer capacity is 8, which is exactly lane 0's share here.
    ASSERT_EQ(lane0.size(), 8u);
    EXPECT_EQ(lane0[0], 0u);
    EXPECT_EQ(lane0[3], 3u);
    EXPECT_EQ(lane0[4], 32u);
    EXPECT_EQ(lane0[7], 35u);

    std::vector<Word> lane5;
    while (srf_.seqCanRead(5, id))
        lane5.push_back(srf_.seqRead(5, id));
    ASSERT_EQ(lane5.size(), 8u);
    EXPECT_EQ(lane5[0], 20u);
    EXPECT_EQ(lane5[4], 52u);
}

TEST_F(SrfSeqTest, SeqWordsRemainingCountsDown)
{
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.lengthWords = 64;
    SlotId id = srf_.openSlot(cfg);
    EXPECT_EQ(srf_.seqWordsRemaining(0, id), 8u);
    cycle(32);
    srf_.seqRead(0, id);
    srf_.seqRead(0, id);
    EXPECT_EQ(srf_.seqWordsRemaining(0, id), 6u);
}

TEST_F(SrfSeqTest, OutputDrainAndFlush)
{
    SlotConfig cfg;
    cfg.dir = StreamDir::Out;
    cfg.layout = StreamLayout::Striped;
    cfg.base = 16;
    cfg.lengthWords = 48;
    SlotId id = srf_.openSlot(cfg);

    // Each lane pushes 6 words (48 total, but last rows are partial).
    for (uint32_t l = 0; l < 8; l++) {
        for (uint32_t i = 0; i < 6; i++) {
            ASSERT_TRUE(srf_.seqCanWrite(l, id));
            srf_.seqWrite(l, id, l * 100 + i);
        }
    }
    cycle(8);  // full rows (4 words) drain
    srf_.flushSlot(id);
    cycle(16);  // partial rows drain under flush
    EXPECT_TRUE(srf_.flushComplete(id));
    EXPECT_EQ(srf_.wordsWritten(id), 48u);

    // Lane 2's first word landed at base, and the stream order follows
    // the stripe mapping.
    std::vector<Word> out = srf_.dumpSlot(id);
    EXPECT_EQ(out[0], 0u);       // lane 0, word 0
    EXPECT_EQ(out[4], 100u);     // lane 1, word 0
    EXPECT_EQ(out[8], 200u);     // lane 2, word 0
    EXPECT_EQ(out[33], 5u);      // lane 0 row 1: words 32..35 = 4,5 pad
}

TEST_F(SrfSeqTest, PerLaneLayoutIndependentLengths)
{
    SlotConfig cfg;
    cfg.layout = StreamLayout::PerLane;
    cfg.base = 0;
    cfg.perLaneLen = {4, 0, 2, 0, 0, 0, 0, 1};
    SlotId id = srf_.openSlot(cfg);
    EXPECT_EQ(srf_.slotTotalWords(id), 7u);
    std::vector<Word> data = {1, 2, 3, 4, 5, 6, 7};
    srf_.fillSlot(id, data);
    EXPECT_EQ(srf_.dumpSlot(id), data);
    // Lane 2's words live at its own base.
    EXPECT_EQ(srf_.readWord(2, 0), 5u);
    EXPECT_EQ(srf_.readWord(7, 0), 7u);
}

TEST_F(SrfSeqTest, DmaClaimGrantedWhenPortFree)
{
    SlotConfig cfg;
    cfg.lengthWords = 32;
    SlotId id = srf_.openSlot(cfg);
    int granted = 0;
    srf_.beginCycle(now_);
    srf_.memClaim(id, [&]() { granted++; });
    srf_.endCycle(now_);
    EXPECT_EQ(granted, 1);
}

TEST_F(SrfSeqTest, DmaSharesPortWithStreams)
{
    // A DMA claim and an input-stream refill on different slots must
    // alternate via round-robin, not starve each other.
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.lengthWords = 512;
    SlotId sid = srf_.openSlot(cfg);
    std::vector<Word> data(512, 7);
    srf_.fillSlot(sid, data);

    SlotConfig dcfg;
    dcfg.lengthWords = 32;
    dcfg.base = 256;
    SlotId did = srf_.openSlot(dcfg);

    int dmaGrants = 0;
    for (int i = 0; i < 10; i++) {
        srf_.beginCycle(now_);
        srf_.memClaim(did, [&]() { dmaGrants++; });
        // Keep draining lane buffers so the stream keeps claiming.
        for (uint32_t l = 0; l < 8; l++)
            while (srf_.seqCanRead(l, sid))
                srf_.seqRead(l, sid);
        srf_.endCycle(now_);
        now_++;
    }
    EXPECT_GE(dmaGrants, 4);
    EXPECT_LE(dmaGrants, 6);
}

TEST_F(SrfSeqTest, IndexedIssueOnSequentialOnlyDies)
{
    SlotConfig cfg;
    cfg.lengthWords = 16;
    SlotId id = srf_.openSlot(cfg);
    EXPECT_DEATH(srf_.configureSlotBinding(id, StreamDir::In, true, false),
                 "sequential-only");
}

TEST(SrfSkipCredit, QuiescentDenseCyclesMatchBulkCredit)
{
    // A quiescent endCycle() takes the zero-mask fast path; its
    // crediting must be indistinguishable from skip-mode bulk credit:
    // same counters, same arbiter state, same rotation state.
    SrfGeometry geom;
    Srf dense, skip;
    dense.init(geom, SrfMode::SequentialOnly, nullptr);
    skip.init(geom, SrfMode::SequentialOnly, nullptr);

    for (Cycle c = 0; c < 777; c++) {
        dense.beginCycle(c);
        dense.endCycle(c);
    }
    skip.skipCycles(0, 777);

    EXPECT_EQ(dense.stats().counter("port_idle_cycles").value(), 777u);
    EXPECT_EQ(skip.stats().counter("port_idle_cycles").value(), 777u);

    // Arbitration after the idle stretch behaves identically too.
    SlotConfig cfg;
    cfg.lengthWords = 32;
    SlotId d = dense.openSlot(cfg);
    SlotId s = skip.openSlot(cfg);
    int denseGrants = 0, skipGrants = 0;
    for (Cycle c = 777; c < 787; c++) {
        dense.beginCycle(c);
        dense.memClaim(d, [&] { denseGrants++; });
        dense.endCycle(c);
        skip.beginCycle(c);
        skip.memClaim(s, [&] { skipGrants++; });
        skip.endCycle(c);
    }
    EXPECT_EQ(denseGrants, skipGrants);
    EXPECT_EQ(dense.stats().counter("dma_grant_cycles").value(),
              skip.stats().counter("dma_grant_cycles").value());
}

/**
 * Drive a mixed stream + DMA load and return the DMA grant count.
 * Used to compare a re-initialized Srf against a fresh one.
 */
uint64_t
driveMixedLoad(Srf &srf)
{
    Cycle now = 0;
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.lengthWords = 256;
    SlotId in = srf.openSlot(cfg);
    std::vector<Word> data(256, 3);
    srf.fillSlot(in, data);
    SlotConfig dcfg;
    dcfg.lengthWords = 32;
    dcfg.base = 512;
    SlotId dma = srf.openSlot(dcfg);
    uint64_t dmaGrants = 0;
    for (int i = 0; i < 64; i++) {
        srf.beginCycle(now);
        srf.memClaim(dma, [&] { dmaGrants++; });
        for (uint32_t l = 0; l < 8; l++)
            while (srf.seqCanRead(l, in))
                srf.seqRead(l, in);
        srf.endCycle(now);
        now++;
    }
    srf.closeSlot(in);
    srf.closeSlot(dma);
    return dmaGrants;
}

TEST(SrfReinit, ReinitializedSrfArbitratesLikeFresh)
{
    // The re-init comment in Srf::init() as an asserted invariant:
    // after init() on a used Srf, arbitration (grants, RR rotation,
    // idle credit) replays exactly like a freshly constructed one.
    SrfGeometry geom;
    Srf reused, fresh;
    reused.init(geom, SrfMode::SequentialOnly, nullptr);
    driveMixedLoad(reused);  // dirty arbiters, rotations, counters
    reused.init(geom, SrfMode::SequentialOnly, nullptr);
    fresh.init(geom, SrfMode::SequentialOnly, nullptr);

    EXPECT_EQ(driveMixedLoad(reused), driveMixedLoad(fresh));
    for (const char *name : {"port_idle_cycles", "seq_grant_cycles",
                             "dma_grant_cycles"}) {
        EXPECT_EQ(reused.stats().counter(name).value(),
                  fresh.stats().counter(name).value())
            << name;
    }
}

TEST(SrfAllocator, AlignsAndExhausts)
{
    SrfGeometry geom;
    SrfAllocator a(geom);
    uint32_t b0 = a.alloc(64, StreamLayout::Striped);  // 8 words/lane
    uint32_t b1 = a.alloc(1, StreamLayout::Striped);   // rounds to 4
    EXPECT_EQ(b0, 0u);
    EXPECT_EQ(b1, 8u);
    EXPECT_EQ(a.usedWords(), 12u);
    // PerLane allocation of the full remaining space succeeds ...
    uint32_t b2 = a.alloc(geom.laneWords - 12, StreamLayout::PerLane);
    EXPECT_NE(b2, SrfAllocator::kAllocFail);
    // ... and the next one fails.
    EXPECT_EQ(a.alloc(4, StreamLayout::Striped), SrfAllocator::kAllocFail);
    a.reset();
    EXPECT_EQ(a.alloc(4, StreamLayout::Striped), 0u);
}

TEST(SrfGeometry, SubArrayMapping)
{
    SrfGeometry g;  // m=4, s=4
    EXPECT_EQ(g.subArrayOf(0), 0u);
    EXPECT_EQ(g.subArrayOf(3), 0u);
    EXPECT_EQ(g.subArrayOf(4), 1u);
    EXPECT_EQ(g.subArrayOf(15), 3u);
    EXPECT_EQ(g.subArrayOf(16), 0u);
    EXPECT_EQ(g.indexedPerBank(SrfMode::SequentialOnly), 0u);
    EXPECT_EQ(g.indexedPerBank(SrfMode::Indexed1), 1u);
    EXPECT_EQ(g.indexedPerBank(SrfMode::Indexed4), 4u);
}

} // namespace
} // namespace isrf
