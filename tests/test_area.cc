/**
 * @file
 * Tests for the CACTI-lite area model and the energy model against the
 * paper's §4.4/§4.6 reported bands.
 */
#include <gtest/gtest.h>

#include "area/cacti_lite.h"
#include "area/energy.h"

namespace isrf {
namespace {

TEST(AreaModel, SequentialBreakdownSane)
{
    SrfAreaModel model;
    AreaBreakdown seq = model.sequential();
    EXPECT_GT(seq.total(), 0.0);
    // Data cells must dominate a well-designed SRAM (>60%).
    double cells = 0;
    for (const auto &c : seq.components)
        if (c.name == "data cells")
            cells = c.um2;
    EXPECT_GT(cells / seq.total(), 0.6);
    // 128 KB of SRAM at 0.13um should be on the order of a few mm^2.
    EXPECT_GT(seq.mm2(), 1.0);
    EXPECT_LT(seq.mm2(), 10.0);
}

TEST(AreaModel, Isrf1OverheadInPaperBand)
{
    SrfAreaModel model;
    double ovh = model.overheadOver(model.isrf1());
    EXPECT_GE(ovh, 0.08);
    EXPECT_LE(ovh, 0.14);  // paper: 11%
}

TEST(AreaModel, Isrf4OverheadInPaperBand)
{
    SrfAreaModel model;
    double ovh = model.overheadOver(model.isrf4());
    EXPECT_GE(ovh, 0.15);
    EXPECT_LE(ovh, 0.21);  // paper: 18%
}

TEST(AreaModel, CrossLaneOverheadInPaperBand)
{
    SrfAreaModel model;
    double ovh = model.overheadOver(model.crossLane());
    EXPECT_GE(ovh, 0.19);
    EXPECT_LE(ovh, 0.26);  // paper: 22%
}

TEST(AreaModel, OverheadsAreOrdered)
{
    SrfAreaModel model;
    double o1 = model.overheadOver(model.isrf1());
    double o4 = model.overheadOver(model.isrf4());
    double oc = model.overheadOver(model.crossLane());
    EXPECT_LT(o1, o4);
    EXPECT_LT(o4, oc);
}

TEST(AreaModel, CacheOverheadInPaperBand)
{
    SrfAreaModel model;
    double ovh = model.overheadOver(model.cache());
    EXPECT_GE(ovh, 1.0);   // paper: 100%..150%
    EXPECT_LE(ovh, 1.5);
}

TEST(AreaModel, DieFractionBand)
{
    // 11%-22% of the SRF, with the SRF ~13.6% of the Imagine die,
    // lands in the paper's 1.5%-3% of total die area.
    SrfAreaModel model;
    double lo = model.dieFraction(model.overheadOver(model.isrf1()));
    double hi = model.dieFraction(model.overheadOver(model.crossLane()));
    EXPECT_GE(lo, 0.010);
    EXPECT_LE(lo, 0.020);
    EXPECT_GE(hi, 0.025);
    EXPECT_LE(hi, 0.035);
}

TEST(EnergyModel, IndexedIsRoughlyFourTimesSequential)
{
    EnergyModel e;
    EXPECT_NEAR(e.indexedToSeqRatio(), 4.0, 0.5);
}

TEST(EnergyModel, IndexedAccessOrderOfMagnitudeBelowDram)
{
    EnergyModel e;
    // ~0.1 nJ vs ~5 nJ (§4.4): a factor of tens.
    EXPECT_GE(e.dramToIndexedRatio(), 10.0);
    EXPECT_NEAR(e.params().idxSrfPerWordPj, 100.0, 30.0);
    EXPECT_NEAR(e.params().dramPerWordPj, 5000.0, 1000.0);
}

TEST(EnergyModel, EstimateAggregates)
{
    EnergyModel e;
    EnergyCounts c;
    c.seqSrfWords = 1000;
    c.idxSrfWords = 100;
    c.dramWords = 10;
    EnergyEstimate est = e.estimate(c);
    EXPECT_NEAR(est.seqSrfNj, 25.0, 1e-9);
    EXPECT_NEAR(est.idxSrfNj, 10.0, 1e-9);
    EXPECT_NEAR(est.dramNj, 50.0, 1e-9);
    EXPECT_NEAR(est.totalNj(), 85.0, 1e-9);
}

} // namespace
} // namespace isrf
