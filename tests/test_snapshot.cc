/**
 * @file
 * Tests for the versioned snapshot subsystem (util/snapshot.h,
 * DESIGN.md §17) and mid-job checkpoint/restore:
 *
 *  - SnapshotWriter/SnapshotReader roundtrips and bounds checks;
 *  - file-format framing, checksums, atomic writes, quarantine;
 *  - exhaustive durability fuzz on the loader: truncation at EVERY
 *    byte offset and a single-bit flip at EVERY byte offset must be
 *    detected (never crash, never restore), plus the same corruptions
 *    against a full machine checkpoint;
 *  - the keystone golden-equivalence property: run to cycle C,
 *    snapshot, load into a fresh Machine, run to completion — the
 *    workload report is byte-identical to an uninterrupted run,
 *    across all four machine kinds, representative workloads
 *    (including SpMV and stencil) and both engine modes;
 *  - the SweepRunner checkpoint lifecycle: resume-from-checkpoint
 *    executes strictly fewer cycles, files are removed once a job's
 *    outcome is journal-replayable.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/machine.h"
#include "driver/sweep_runner.h"
#include "util/snapshot.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** Temp checkpoint directory removed (with contents) on scope exit. */
class TempCkptDir
{
  public:
    explicit TempCkptDir(const char *tag)
    {
        path_ = ::testing::TempDir() + "isrf_ckpt_" + tag + "_" +
            std::to_string(::getpid());
        std::string err;
        EXPECT_TRUE(ensureCheckpointDir(path_, err)) << err;
    }
    ~TempCkptDir()
    {
        // Best-effort cleanup of the flat files this suite creates.
        for (const char *suffix : {"", ".bad", ".tmp"}) {
            std::remove((path_ + "/job.ckpt" + suffix).c_str());
            std::remove((path_ + "/fuzz.ckpt" + suffix).c_str());
        }
        ::rmdir(path_.c_str());
    }
    std::string file(const char *name) const
    {
        return path_ + "/" + name;
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(f.good()) << path;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
}

// ----------------------------------------------------------------------
// Writer/Reader primitives
// ----------------------------------------------------------------------

TEST(SnapshotIo, WriterReaderRoundtrip)
{
    SnapshotWriter w;
    w.u8(0xAB);
    w.b(true);
    w.b(false);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(3.14159265358979);
    w.f64(-0.0);
    w.str("hello snapshot");
    w.str("");

    SnapshotReader r(w.data());
    uint8_t u8v = 0;
    bool b1 = false, b2 = true;
    uint32_t u32v = 0;
    uint64_t u64v = 0;
    int64_t i64v = 0;
    double d1 = 0, d2 = 1;
    std::string s1, s2;
    EXPECT_TRUE(r.u8(u8v));
    EXPECT_TRUE(r.b(b1));
    EXPECT_TRUE(r.b(b2));
    EXPECT_TRUE(r.u32(u32v));
    EXPECT_TRUE(r.u64(u64v));
    EXPECT_TRUE(r.i64(i64v));
    EXPECT_TRUE(r.f64(d1));
    EXPECT_TRUE(r.f64(d2));
    EXPECT_TRUE(r.str(s1));
    EXPECT_TRUE(r.str(s2));
    EXPECT_EQ(u8v, 0xAB);
    EXPECT_TRUE(b1);
    EXPECT_FALSE(b2);
    EXPECT_EQ(u32v, 0xDEADBEEFu);
    EXPECT_EQ(u64v, 0x0123456789ABCDEFull);
    EXPECT_EQ(i64v, -42);
    EXPECT_DOUBLE_EQ(d1, 3.14159265358979);
    EXPECT_TRUE(std::signbit(d2));  // -0.0 restored bit-exactly
    EXPECT_EQ(s1, "hello snapshot");
    EXPECT_EQ(s2, "");
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotIo, ReaderBoundsAreSticky)
{
    SnapshotWriter w;
    w.u32(7);
    SnapshotReader r(w.data());
    uint64_t v = 0;
    EXPECT_FALSE(r.u64(v));  // only 4 bytes available
    EXPECT_FALSE(r.ok());
    uint32_t u = 0;
    EXPECT_FALSE(r.u32(u));  // sticky: nothing reads after a failure
    EXPECT_FALSE(r.atEnd());
}

TEST(SnapshotIo, LenGuardRejectsOversizedCounts)
{
    // A corrupted count must not drive a huge allocation: len()
    // validates the claimed element count against remaining bytes.
    SnapshotWriter w;
    w.u64(1ull << 40);  // claims 2^40 entries
    SnapshotReader r(w.data());
    uint64_t n = 0;
    EXPECT_FALSE(r.len(n, 8));
    EXPECT_FALSE(r.ok());
}

// ----------------------------------------------------------------------
// File format: framing, checksums, atomic write, quarantine
// ----------------------------------------------------------------------

Snapshot
syntheticSnapshot()
{
    Snapshot s;
    s.fingerprint = 0xF00DF00Dull;
    s.cycle = 424242;
    s.geometry = 0xBEEFBEEFull;
    SnapshotWriter a;
    a.u32(1);
    a.u64(2);
    a.str("machine-ish payload");
    s.addSection(kSnapMachine, a);
    SnapshotWriter b;
    for (int i = 0; i < 16; i++)
        b.f64(i * 1.5);
    s.addSection(kSnapSrf, b);
    SnapshotWriter c;
    c.u64(99);
    s.addSection(kSnapProgram, c);
    return s;
}

TEST(SnapshotFile, SerializeParseRoundtrip)
{
    Snapshot s = syntheticSnapshot();
    std::string bytes = s.serialize();
    Snapshot out;
    std::string err;
    ASSERT_TRUE(out.parse(bytes, err)) << err;
    EXPECT_EQ(out.fingerprint, s.fingerprint);
    EXPECT_EQ(out.cycle, s.cycle);
    EXPECT_EQ(out.geometry, s.geometry);
    ASSERT_EQ(out.sections.size(), 3u);
    const std::string *mach = out.findSection(kSnapMachine);
    ASSERT_NE(mach, nullptr);
    EXPECT_EQ(*mach, *s.findSection(kSnapMachine));
    EXPECT_EQ(out.findSection(kSnapCrossbar), nullptr);
}

TEST(SnapshotFile, LoadFileOkMissingStale)
{
    TempCkptDir dir("okms");
    const std::string path = dir.file("job.ckpt");
    Snapshot s = syntheticSnapshot();
    std::string err;
    ASSERT_TRUE(s.writeAtomic(path, err)) << err;

    Snapshot out;
    EXPECT_EQ(loadSnapshotFile(path, s.fingerprint, out, err),
              SnapshotLoad::Ok);
    EXPECT_EQ(out.cycle, s.cycle);

    // Wrong job fingerprint: Stale, with a diagnostic.
    EXPECT_EQ(loadSnapshotFile(path, 0x1234, out, err),
              SnapshotLoad::Stale);
    EXPECT_FALSE(err.empty());

    // No file: Missing, err empty (a first run, not a problem).
    err.clear();
    EXPECT_EQ(loadSnapshotFile(dir.file("nope.ckpt"), 1, out, err),
              SnapshotLoad::Missing);
    EXPECT_TRUE(err.empty());
}

TEST(SnapshotFile, QuarantineRenamesToBad)
{
    TempCkptDir dir("quar");
    const std::string path = dir.file("job.ckpt");
    writeBytes(path, "definitely not a snapshot");
    quarantineSnapshotFile(path, "test corruption");
    EXPECT_FALSE(fileExists(path));
    EXPECT_TRUE(fileExists(path + ".bad"));
}

TEST(SnapshotFile, CheckpointPathHelper)
{
    EXPECT_EQ(checkpointFilePath("/tmp/x", 0xABCDull),
              "/tmp/x/job-000000000000abcd.ckpt");
}

TEST(SnapshotFile, EnsureCheckpointDirCreatesNested)
{
    std::string base = ::testing::TempDir() + "isrf_ckpt_nest_" +
        std::to_string(::getpid());
    std::string nested = base + "/a/b";
    std::string err;
    ASSERT_TRUE(ensureCheckpointDir(nested, err)) << err;
    EXPECT_TRUE(fileExists(nested));
    ASSERT_TRUE(ensureCheckpointDir(nested, err)) << err;  // idempotent
    ::rmdir(nested.c_str());
    ::rmdir((base + "/a").c_str());
    ::rmdir(base.c_str());
}

// ----------------------------------------------------------------------
// Durability fuzz: the loader must detect EVERY truncation and EVERY
// single-bit flip — never crash, never return Ok for damaged bytes.
// ----------------------------------------------------------------------

TEST(SnapshotFuzz, TruncationAtEveryByteOffsetIsDetected)
{
    TempCkptDir dir("trunc");
    const std::string path = dir.file("fuzz.ckpt");
    const std::string bytes = syntheticSnapshot().serialize();
    ASSERT_GT(bytes.size(), 100u);

    for (size_t cut = 0; cut < bytes.size(); cut++) {
        writeBytes(path, bytes.substr(0, cut));
        Snapshot out;
        std::string err;
        EXPECT_EQ(loadSnapshotFile(path, 0xF00DF00Dull, out, err),
                  SnapshotLoad::Corrupt)
            << "truncation at byte " << cut << " not detected";
        EXPECT_FALSE(err.empty());
    }
    // Sanity: the untruncated file loads.
    writeBytes(path, bytes);
    Snapshot out;
    std::string err;
    EXPECT_EQ(loadSnapshotFile(path, 0xF00DF00Dull, out, err),
              SnapshotLoad::Ok) << err;
}

TEST(SnapshotFuzz, BitFlipAtEveryByteOffsetIsDetected)
{
    TempCkptDir dir("flip");
    const std::string path = dir.file("fuzz.ckpt");
    const std::string bytes = syntheticSnapshot().serialize();

    for (size_t i = 0; i < bytes.size(); i++) {
        std::string damaged = bytes;
        damaged[i] = static_cast<char>(
            static_cast<uint8_t>(damaged[i]) ^ (1u << (i % 8)));
        writeBytes(path, damaged);
        Snapshot out;
        std::string err;
        EXPECT_EQ(loadSnapshotFile(path, 0xF00DF00Dull, out, err),
                  SnapshotLoad::Corrupt)
            << "bit flip at byte " << i << " not detected";
    }
}

// ----------------------------------------------------------------------
// Keystone: checkpoint/resume golden equivalence through workloads
// ----------------------------------------------------------------------

/**
 * Run `workload` on `kind` uninterrupted; again with a checkpoint
 * context that stops right after its first mid-run save; then resume
 * from that checkpoint in a fresh Machine and require the final
 * report to be byte-identical to the uninterrupted run's, with the
 * resumed process having executed strictly fewer cycles.
 */
void
expectResumeEquivalent(const std::string &workload, MachineKind kind,
                       EngineMode mode, const char *tag)
{
    SCOPED_TRACE(workload + " / " + machineKindName(kind) + " / " +
                 engineModeName(mode));
    MachineConfig cfg = MachineConfig::make(kind);
    cfg.engineMode = mode;
    WorkloadOptions opts;
    opts.repeats = 2;

    // Uninterrupted baseline.
    WorkloadResult base = runWorkload(workload, cfg, opts);
    ASSERT_EQ(base.status, RunStatus::Done);
    ASSERT_TRUE(base.correct);
    ASSERT_GT(base.cycles, 10u);
    const std::string baseJson = resultJson(base);

    TempCkptDir dir(tag);
    const std::string path = dir.file("job.ckpt");
    const uint64_t fp = 0x1234ABCDull;
    const uint64_t cadence = std::max<uint64_t>(1, base.cycles / 3);

    // Interrupted run: save one mid-flight checkpoint, then stop (the
    // stopAfterSave hook stands in for a SIGKILL at that cycle).
    CheckpointContext c1(path, fp, cadence);
    c1.stopAfterSave = true;
    WorkloadOptions o1 = opts;
    o1.checkpoint = &c1;
    WorkloadResult part = runWorkload(workload, cfg, o1);
    ASSERT_EQ(c1.saves(), 1u);
    ASSERT_EQ(part.status, RunStatus::Cancelled);
    ASSERT_LT(part.cycles, base.cycles);
    ASSERT_TRUE(fileExists(path));

    // Resume in a fresh Machine (the workload rebuilds it), run to
    // completion: the report must be byte-identical.
    CheckpointContext c2(path, fp, cadence);
    WorkloadOptions o2 = opts;
    o2.checkpoint = &c2;
    WorkloadResult resumed = runWorkload(workload, cfg, o2);
    EXPECT_EQ(c2.restores(), 1u);
    EXPECT_EQ(c2.quarantined(), 0u);
    EXPECT_EQ(resumed.status, RunStatus::Done);
    EXPECT_TRUE(resumed.correct);
    EXPECT_EQ(resultJson(resumed), baseJson);
    // The resumed process simulated only the tail: strictly fewer
    // cycles than the whole run (the CI resilience invariant).
    EXPECT_GT(c2.executedCycles(), 0u);
    EXPECT_LT(c2.executedCycles(), base.cycles);
}

TEST(CheckpointResume, GoldenEquivalenceBase)
{
    expectResumeEquivalent("Histogram", MachineKind::Base,
                           EngineMode::Dense, "gbase");
}

TEST(CheckpointResume, GoldenEquivalenceIsrf1)
{
    expectResumeEquivalent("Histogram", MachineKind::ISRF1,
                           EngineMode::Dense, "gisrf1");
}

TEST(CheckpointResume, GoldenEquivalenceIsrf4)
{
    expectResumeEquivalent("Histogram", MachineKind::ISRF4,
                           EngineMode::Dense, "gisrf4");
}

TEST(CheckpointResume, GoldenEquivalenceCache)
{
    expectResumeEquivalent("Histogram", MachineKind::Cache,
                           EngineMode::Dense, "gcache");
}

TEST(CheckpointResume, GoldenEquivalenceSpmv)
{
    expectResumeEquivalent("SpMV Random", MachineKind::ISRF4,
                           EngineMode::Dense, "gspmv");
    expectResumeEquivalent("SpMV Banded", MachineKind::Base,
                           EngineMode::Dense, "gspmvb");
}

TEST(CheckpointResume, GoldenEquivalenceStencil)
{
    expectResumeEquivalent("Stencil 2D5", MachineKind::Cache,
                           EngineMode::Dense, "gsten");
}

TEST(CheckpointResume, GoldenEquivalenceFft)
{
    expectResumeEquivalent("FFT 2D", MachineKind::ISRF4,
                           EngineMode::Dense, "gfft");
}

TEST(CheckpointResume, GoldenEquivalenceSkipEngine)
{
    expectResumeEquivalent("Histogram", MachineKind::ISRF4,
                           EngineMode::Skip, "gskip");
    expectResumeEquivalent("SpMV Power", MachineKind::Cache,
                           EngineMode::Skip, "gskip2");
}

// ----------------------------------------------------------------------
// Fallback behavior through the full run path
// ----------------------------------------------------------------------

TEST(CheckpointResume, CorruptCheckpointQuarantinedAndRestartsClean)
{
    const std::string workload = "Histogram";
    MachineConfig cfg = MachineConfig::make(MachineKind::ISRF1);
    WorkloadOptions opts;
    opts.repeats = 2;
    WorkloadResult base = runWorkload(workload, cfg, opts);
    ASSERT_EQ(base.status, RunStatus::Done);
    const std::string baseJson = resultJson(base);

    TempCkptDir dir("corrupt");
    const std::string path = dir.file("job.ckpt");
    const uint64_t fp = 0x77ull;
    const uint64_t cadence = std::max<uint64_t>(1, base.cycles / 3);

    CheckpointContext c1(path, fp, cadence);
    c1.stopAfterSave = true;
    WorkloadOptions o1 = opts;
    o1.checkpoint = &c1;
    runWorkload(workload, cfg, o1);
    ASSERT_EQ(c1.saves(), 1u);

    // Flip one byte in the middle of the file.
    std::string bytes = readBytes(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] =
        static_cast<char>(static_cast<uint8_t>(
            bytes[bytes.size() / 2]) ^ 0x40);
    writeBytes(path, bytes);

    // The resume must detect it, quarantine, restart from zero, and
    // still produce the byte-identical correct report.
    CheckpointContext c2(path, fp, 0);  // cadence 0: no periodic saves
    WorkloadOptions o2 = opts;
    o2.checkpoint = &c2;
    WorkloadResult res = runWorkload(workload, cfg, o2);
    EXPECT_EQ(c2.restores(), 0u);
    EXPECT_EQ(c2.quarantined(), 1u);
    EXPECT_FALSE(fileExists(path));
    EXPECT_TRUE(fileExists(path + ".bad"));
    EXPECT_EQ(res.status, RunStatus::Done);
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(resultJson(res), baseJson);
    std::remove((path + ".bad").c_str());
}

TEST(CheckpointResume, TruncatedCheckpointQuarantinedAtManyOffsets)
{
    // The exhaustive per-byte fuzz above runs on a small synthetic
    // snapshot; this pass drives a REAL machine checkpoint through
    // the same loader at strided truncation points (exhaustive would
    // be O(size^2) on a multi-KB file).
    const std::string workload = "Histogram";
    MachineConfig cfg = MachineConfig::make(MachineKind::Base);
    WorkloadOptions opts;
    opts.repeats = 2;
    WorkloadResult base = runWorkload(workload, cfg, opts);
    ASSERT_EQ(base.status, RunStatus::Done);

    TempCkptDir dir("trreal");
    const std::string path = dir.file("job.ckpt");
    const uint64_t fp = 0x88ull;
    CheckpointContext c1(path, fp,
                         std::max<uint64_t>(1, base.cycles / 3));
    c1.stopAfterSave = true;
    WorkloadOptions o1 = opts;
    o1.checkpoint = &c1;
    runWorkload(workload, cfg, o1);
    ASSERT_EQ(c1.saves(), 1u);

    const std::string bytes = readBytes(path);
    ASSERT_GT(bytes.size(), 256u);
    const size_t stride = std::max<size_t>(1, bytes.size() / 97);
    for (size_t cut = 0; cut < bytes.size(); cut += stride) {
        writeBytes(path, bytes.substr(0, cut));
        Snapshot out;
        std::string err;
        EXPECT_EQ(loadSnapshotFile(path, fp, out, err),
                  SnapshotLoad::Corrupt)
            << "truncation at byte " << cut << "/" << bytes.size();
    }
    // And single-bit flips at the same strided offsets.
    for (size_t i = 0; i < bytes.size(); i += stride) {
        std::string damaged = bytes;
        damaged[i] = static_cast<char>(
            static_cast<uint8_t>(damaged[i]) ^ (1u << (i % 8)));
        writeBytes(path, damaged);
        Snapshot out;
        std::string err;
        EXPECT_EQ(loadSnapshotFile(path, fp, out, err),
                  SnapshotLoad::Corrupt)
            << "bit flip at byte " << i << "/" << bytes.size();
    }
    writeBytes(path, bytes);
    Snapshot out;
    std::string err;
    EXPECT_EQ(loadSnapshotFile(path, fp, out, err), SnapshotLoad::Ok)
        << err;
}

TEST(CheckpointResume, StaleFingerprintIgnoredNotQuarantined)
{
    const std::string workload = "Histogram";
    MachineConfig cfg = MachineConfig::make(MachineKind::Base);
    WorkloadOptions opts;
    opts.repeats = 2;
    WorkloadResult base = runWorkload(workload, cfg, opts);
    const std::string baseJson = resultJson(base);

    TempCkptDir dir("stale");
    const std::string path = dir.file("job.ckpt");
    CheckpointContext c1(path, 0xAAAAull,
                         std::max<uint64_t>(1, base.cycles / 3));
    c1.stopAfterSave = true;
    WorkloadOptions o1 = opts;
    o1.checkpoint = &c1;
    runWorkload(workload, cfg, o1);
    ASSERT_EQ(c1.saves(), 1u);

    // A context for a DIFFERENT job must not restore, must not
    // quarantine (the file belongs to someone else), and must still
    // produce a clean from-zero run.
    CheckpointContext c2(path, 0xBBBBull, 0);
    WorkloadOptions o2 = opts;
    o2.checkpoint = &c2;
    WorkloadResult res = runWorkload(workload, cfg, o2);
    EXPECT_EQ(c2.restores(), 0u);
    EXPECT_EQ(c2.quarantined(), 0u);
    EXPECT_TRUE(fileExists(path));  // untouched
    EXPECT_EQ(res.status, RunStatus::Done);
    EXPECT_EQ(resultJson(res), baseJson);
}

// ----------------------------------------------------------------------
// SweepRunner lifecycle
// ----------------------------------------------------------------------

TEST(SweepCheckpoint, RunnerResumesAndCleansUp)
{
    SweepJob job;
    job.workload = "Histogram";
    job.cfg = MachineConfig::make(MachineKind::Base);
    job.opts.repeats = 2;
    const uint64_t fp = SweepRunner::fingerprint(job);

    // Uninterrupted baseline through the runner.
    SweepRunner runner(1);
    auto baseOut = runner.run({job});
    ASSERT_EQ(baseOut.size(), 1u);
    ASSERT_EQ(baseOut[0].status, RunStatus::Done);
    const std::string baseJson = baseOut[0].resultText;
    const uint64_t totalCycles = baseOut[0].result.cycles;
    ASSERT_GT(totalCycles, 10u);

    // Simulate a killed job: leave a mid-flight checkpoint behind at
    // the exact path the runner derives from the job fingerprint.
    TempCkptDir dir("runner");
    const std::string path = checkpointFilePath(dir.path(), fp);
    CheckpointContext c1(path, fp,
                         std::max<uint64_t>(1, totalCycles / 3));
    c1.stopAfterSave = true;
    WorkloadOptions o1 = job.opts;
    o1.checkpoint = &c1;
    runWorkload(job.workload, job.cfg, o1);
    ASSERT_EQ(c1.saves(), 1u);
    ASSERT_TRUE(fileExists(path));

    // The policy-driven run resumes from it, reports byte-identical
    // results, executed strictly fewer cycles, and removes the file
    // once the outcome is replayable.
    SweepPolicy policy;
    policy.checkpointDir = dir.path();
    policy.checkpointEveryCycles =
        std::max<uint64_t>(1, totalCycles / 3);
    auto out = runner.run({job}, policy);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, RunStatus::Done);
    EXPECT_EQ(out[0].resultText, baseJson);
    const SweepTiming &t = runner.timing();
    EXPECT_EQ(t.checkpointRestores, 1u);
    EXPECT_GT(t.simCyclesExecuted, 0u);
    EXPECT_LT(t.simCyclesExecuted, totalCycles);
    EXPECT_FALSE(fileExists(path));

    // A fresh checkpointed run (no file) starts from zero, saves on
    // cadence, still matches, and cleans up after itself.
    auto out2 = runner.run({job}, policy);
    EXPECT_EQ(out2[0].resultText, baseJson);
    EXPECT_EQ(runner.timing().checkpointRestores, 0u);
    EXPECT_GE(runner.timing().checkpointSaves, 1u);
    EXPECT_EQ(runner.timing().simCyclesExecuted, totalCycles);
    EXPECT_FALSE(fileExists(path));
}

TEST(SweepCheckpoint, PolicyKnobsExcludedFromFingerprint)
{
    // Checkpointing observes a run without changing its results, so
    // it must not invalidate journals: the canonical job text (and
    // hence every fingerprint) ignores the checkpoint policy and the
    // per-job context pointer.
    SweepJob a;
    a.workload = "Filter";
    a.cfg = MachineConfig::make(MachineKind::Base);
    SweepJob b = a;
    CheckpointContext ctx("/tmp/nowhere.ckpt", 1, 100);
    b.opts.checkpoint = &ctx;
    EXPECT_EQ(SweepRunner::canonicalJobText(a),
              SweepRunner::canonicalJobText(b));
    EXPECT_EQ(SweepRunner::fingerprint(a), SweepRunner::fingerprint(b));
}

// ----------------------------------------------------------------------
// Machine-level snapshot plumbing
// ----------------------------------------------------------------------

TEST(MachineSnapshot, GeometryHashSeparatesConfigs)
{
    Machine base, isrf4, cache;
    base.init(MachineConfig::make(MachineKind::Base));
    isrf4.init(MachineConfig::make(MachineKind::ISRF4));
    cache.init(MachineConfig::make(MachineKind::Cache));
    EXPECT_NE(base.geometryHash(), isrf4.geometryHash());
    EXPECT_NE(base.geometryHash(), cache.geometryHash());
    EXPECT_NE(isrf4.geometryHash(), cache.geometryHash());

    Machine base2;
    base2.init(MachineConfig::make(MachineKind::Base));
    EXPECT_EQ(base.geometryHash(), base2.geometryHash());
}

TEST(MachineSnapshot, LoadRejectsWrongGeometry)
{
    Machine base;
    base.init(MachineConfig::make(MachineKind::Base));
    Snapshot snap;
    base.saveSnapshot(snap);

    Machine other;
    other.init(MachineConfig::make(MachineKind::ISRF4));
    std::string err;
    EXPECT_FALSE(other.loadSnapshot(snap, nullptr, &err));
    EXPECT_NE(err.find("geometry"), std::string::npos) << err;
}

TEST(MachineSnapshot, IdleMachineRoundtripRestoresClock)
{
    Machine m;
    m.init(MachineConfig::make(MachineKind::ISRF1));
    m.step(1234);
    EXPECT_EQ(m.now(), 1234u);
    Snapshot snap;
    m.saveSnapshot(snap);
    EXPECT_EQ(snap.cycle, 1234u);

    Machine fresh;
    fresh.init(MachineConfig::make(MachineKind::ISRF1));
    EXPECT_EQ(fresh.now(), 0u);
    std::string err;
    ASSERT_TRUE(fresh.loadSnapshot(snap, nullptr, &err)) << err;
    EXPECT_EQ(fresh.now(), 1234u);
}

} // namespace
} // namespace isrf
