/**
 * @file
 * Tests for the tolerant MatrixMarket reader (util/mtx.h): banner and
 * size-line validation, symmetric/skew/pattern handling, collect-all
 * line-numbered diagnostics, truncation fuzzing at every byte offset,
 * CSR conversion with duplicate summing, the synthetic generators, the
 * dataset content hash (util/hash.h fnv1aFile), and the external
 * dataset registration path (--dataset) end to end on the committed
 * tests/data/tiny.mtx fixture.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/mtx.h"
#include "workloads/external.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** Temp file path removed on scope exit. */
class TempFile
{
  public:
    explicit TempFile(const char *tag)
    {
        path_ = ::testing::TempDir() + "isrf_mtx_" + tag + "_" +
            std::to_string(::getpid()) + ".mtx";
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
writeRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    return std::fclose(f) == 0 && ok;
}

std::string
dataPath(const char *name)
{
    return std::string(ISRF_TEST_DATA_DIR) + "/" + name;
}

const char *kGeneral =
    "%%MatrixMarket matrix coordinate real general\n"
    "% a comment\n"
    "3 4 5\n"
    "1 1 1.5\n"
    "1 4 -2.0\n"
    "2 2 3.25\n"
    "3 1 0.5\n"
    "3 3 7\n";

// ----------------------------------------------------------------------
// Happy paths
// ----------------------------------------------------------------------

TEST(MtxParse, GeneralRealRoundTrips)
{
    MtxMatrix m;
    std::vector<std::string> errs;
    ASSERT_TRUE(mtxParse(kGeneral, m, &errs)) << errs.size();
    EXPECT_TRUE(errs.empty());
    EXPECT_EQ(m.rows, 3u);
    EXPECT_EQ(m.cols, 4u);
    EXPECT_EQ(m.declaredEntries, 5u);
    EXPECT_EQ(m.nnz(), 5u);
    EXPECT_FALSE(m.pattern);
    EXPECT_EQ(m.symmetry, MtxMatrix::Symmetry::General);
    // 1-based in the file, 0-based in memory.
    EXPECT_EQ(m.rowIdx[0], 0u);
    EXPECT_EQ(m.colIdx[1], 3u);
    EXPECT_FLOAT_EQ(m.vals[2], 3.25f);
}

TEST(MtxParse, CrlfAndCaseInsensitiveBanner)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket MATRIX Coordinate REAL General\r\n"
        "2 2 1\r\n"
        "2 1 9.0\r\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    EXPECT_EQ(m.nnz(), 1u);
    EXPECT_EQ(m.rowIdx[0], 1u);
}

TEST(MtxParse, PatternGetsUnitValues)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    EXPECT_TRUE(m.pattern);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.vals[0], 1.0f);
    EXPECT_FLOAT_EQ(m.vals[1], 1.0f);
}

TEST(MtxParse, SymmetricExpandsOffDiagonalOnly)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 5.0\n"
        "3 3 4.0\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    // 2 diagonal entries + 1 off-diagonal + its mirror image, which
    // the parser appends immediately after the stored entry.
    EXPECT_EQ(m.symmetry, MtxMatrix::Symmetry::Symmetric);
    ASSERT_EQ(m.nnz(), 4u);
    EXPECT_EQ(m.rowIdx[2], 0u);
    EXPECT_EQ(m.colIdx[2], 1u);
    EXPECT_FLOAT_EQ(m.vals[2], 5.0f);
}

TEST(MtxParse, SkewSymmetricNegatesMirror)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3.0\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.vals[0], 3.0f);
    EXPECT_FLOAT_EQ(m.vals[1], -3.0f);
}

TEST(MtxParse, IntegerFieldTypeAccepted)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "1 2 -7\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    EXPECT_FLOAT_EQ(m.vals[0], -7.0f);
}

// ----------------------------------------------------------------------
// Diagnostics: every violation, line-numbered, collected in one pass
// ----------------------------------------------------------------------

TEST(MtxParse, MalformedBannersRejected)
{
    const char *bad[] = {
        "",                                             // empty input
        "1 1 1\n1 1 1.0\n",                             // no banner
        "%%MatrixMarket matrix array real general\n",   // not coordinate
        "%%MatrixMarket matrix coordinate complex general\n",
        "%%MatrixMarket matrix coordinate real hermitian\n",
        "%%MatrixMarket tensor coordinate real general\n",
        "%%MatrixMarket matrix coordinate real\n",      // too few words
    };
    for (const char *text : bad) {
        MtxMatrix m;
        std::vector<std::string> errs;
        EXPECT_FALSE(mtxParse(text, m, &errs)) << text;
        EXPECT_FALSE(errs.empty()) << text;
    }
}

TEST(MtxParse, OutOfRangeAndMalformedEntriesAllReported)
{
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 6\n"
        "0 1 1.0\n"     // row below range (1-based)
        "4 1 1.0\n"     // row above range
        "1 0 1.0\n"     // col below range
        "1 9 1.0\n"     // col above range
        "1 1\n"         // missing value
        "x 1 1.0\n";    // junk index
    MtxMatrix m;
    std::vector<std::string> errs;
    EXPECT_FALSE(mtxParse(text, m, &errs));
    EXPECT_EQ(errs.size(), 6u);
    // Diagnostics carry the 1-based source line.
    EXPECT_NE(errs[0].find("line 3"), std::string::npos) << errs[0];
    EXPECT_NE(errs[5].find("line 8"), std::string::npos) << errs[5];
}

TEST(MtxParse, BadValuesRejected)
{
    const char *bad[] = {"nan", "inf", "-inf", "1.0x", "", "."};
    for (const char *v : bad) {
        MtxMatrix m;
        std::vector<std::string> errs;
        std::string text =
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 1 " + std::string(v) + "\n";
        EXPECT_FALSE(mtxParse(text, m, &errs)) << v;
        EXPECT_FALSE(errs.empty()) << v;
    }
}

TEST(MtxParse, EntryCountMismatchesReported)
{
    MtxMatrix m;
    std::vector<std::string> errs;
    std::string missing =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n";
    EXPECT_FALSE(mtxParse(missing, m, &errs));
    EXPECT_FALSE(errs.empty());

    errs.clear();
    std::string extra =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n"
        "2 2 1.0\n";
    EXPECT_FALSE(mtxParse(extra, m, &errs));
    EXPECT_FALSE(errs.empty());
}

TEST(MtxParse, AboveDiagonalSymmetricEntryIsAnError)
{
    MtxMatrix m;
    std::vector<std::string> errs;
    std::string text =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 1\n"
        "1 3 2.0\n";
    EXPECT_FALSE(mtxParse(text, m, &errs));
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("line 3"), std::string::npos);
}

TEST(MtxParse, ErrorFloodIsCapped)
{
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 64\n";
    for (int i = 0; i < 64; i++)
        text += "9 9 bogus\n";
    MtxMatrix m;
    std::vector<std::string> errs;
    EXPECT_FALSE(mtxParse(text, m, &errs));
    // Capped with a trailing "suppressed" marker, not one per line.
    EXPECT_LE(errs.size(), 24u);
    EXPECT_NE(errs.back().find("suppressed"), std::string::npos);
}

/**
 * Fuzz: the parser must be total. Truncating a valid file at EVERY
 * byte offset must either parse cleanly (the full file, with or
 * without its final newline) or fail with diagnostics — never crash,
 * hang, or return success with silently missing entries.
 */
TEST(MtxParse, TruncationAtEveryByteOffsetIsTotal)
{
    const std::string full = kGeneral;
    for (size_t cut = 0; cut <= full.size(); cut++) {
        MtxMatrix m;
        std::vector<std::string> errs;
        bool ok = mtxParse(full.substr(0, cut), m, &errs);
        if (ok) {
            EXPECT_GE(cut, full.size() - 1) << "truncated parse "
                "succeeded at offset " << cut;
            EXPECT_EQ(m.nnz(), m.declaredEntries);
        } else {
            EXPECT_FALSE(errs.empty()) << "offset " << cut;
        }
    }
}

/** Same totality over a symmetric file (expansion path). */
TEST(MtxParse, TruncatedSymmetricNeverExpandsPartially)
{
    const std::string full =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 4\n"
        "1 1 1.0\n"
        "2 1 2.0\n"
        "3 2 3.0\n"
        "3 3 4.0\n";
    for (size_t cut = 0; cut < full.size() - 1; cut++) {
        MtxMatrix m;
        std::vector<std::string> errs;
        if (!mtxParse(full.substr(0, cut), m, &errs))
            EXPECT_FALSE(errs.empty()) << "offset " << cut;
    }
}

TEST(MtxReadFile, MissingFileIsOneError)
{
    MtxMatrix m;
    std::vector<std::string> errs;
    EXPECT_FALSE(mtxReadFile(::testing::TempDir() +
                             "isrf_no_such_file.mtx", m, &errs));
    EXPECT_FALSE(errs.empty());
}

// ----------------------------------------------------------------------
// CSR conversion
// ----------------------------------------------------------------------

TEST(CooToCsr, SortsRowsAndSumsDuplicates)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 3 4\n"
        "2 3 1.0\n"
        "1 2 2.0\n"
        "1 2 3.0\n"
        "2 1 4.0\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    CsrMatrix csr = cooToCsr(m);
    EXPECT_EQ(csr.rows, 2u);
    EXPECT_EQ(csr.cols, 3u);
    // The (1,2) duplicate pair collapses: 3 stored entries.
    ASSERT_EQ(csr.nnz(), 3u);
    ASSERT_EQ(csr.rowPtr.size(), 3u);
    EXPECT_EQ(csr.rowPtr[0], 0u);
    EXPECT_EQ(csr.rowPtr[1], 1u);
    EXPECT_EQ(csr.rowPtr[2], 3u);
    EXPECT_EQ(csr.col[0], 1u);
    EXPECT_FLOAT_EQ(csr.val[0], 5.0f);
    EXPECT_EQ(csr.col[1], 0u);
    EXPECT_EQ(csr.col[2], 2u);
}

TEST(CooToCsr, EmptyRowsGetEmptySpans)
{
    MtxMatrix m;
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4 1\n"
        "3 2 1.0\n";
    ASSERT_TRUE(mtxParse(text, m, nullptr));
    CsrMatrix csr = cooToCsr(m);
    ASSERT_EQ(csr.rowPtr.size(), 5u);
    EXPECT_EQ(csr.rowPtr[0], 0u);
    EXPECT_EQ(csr.rowPtr[1], 0u);
    EXPECT_EQ(csr.rowPtr[2], 0u);
    EXPECT_EQ(csr.rowPtr[3], 1u);
    EXPECT_EQ(csr.rowPtr[4], 1u);
}

// ----------------------------------------------------------------------
// Generators
// ----------------------------------------------------------------------

void
expectWellFormed(const CsrMatrix &m)
{
    ASSERT_EQ(m.rowPtr.size(), m.rows + 1u);
    EXPECT_EQ(m.rowPtr[0], 0u);
    EXPECT_EQ(m.rowPtr[m.rows], m.nnz());
    for (uint32_t r = 0; r < m.rows; r++) {
        ASSERT_LE(m.rowPtr[r], m.rowPtr[r + 1]);
        for (uint64_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; k++) {
            ASSERT_LT(m.col[k], m.cols);
            if (k > m.rowPtr[r])
                ASSERT_LT(m.col[k - 1], m.col[k]) << "row " << r;
        }
    }
}

TEST(MtxGenerators, ProduceWellFormedDeterministicCsr)
{
    CsrMatrix banded = mtxGenBanded(256, 3, 7);
    CsrMatrix uniform = mtxGenUniform(256, 6, 7);
    CsrMatrix power = mtxGenPowerLaw(256, 6, 2.2, 7);
    for (const CsrMatrix *m : {&banded, &uniform, &power}) {
        expectWellFormed(*m);
        EXPECT_EQ(m->rows, 256u);
        EXPECT_GT(m->nnz(), 256u);
    }
    // Banded: every row hits its diagonal within the band.
    for (uint32_t r = 0; r < banded.rows; r++) {
        bool diag = false;
        for (uint64_t k = banded.rowPtr[r]; k < banded.rowPtr[r + 1];
                k++)
            diag = diag || banded.col[k] == r;
        EXPECT_TRUE(diag) << "row " << r;
    }
    // Same seed, same matrix; different seed, different matrix.
    CsrMatrix again = mtxGenUniform(256, 6, 7);
    EXPECT_EQ(again.col, uniform.col);
    CsrMatrix other = mtxGenUniform(256, 6, 8);
    EXPECT_NE(other.col, uniform.col);
}

// ----------------------------------------------------------------------
// Dataset content hashing (sweep fingerprint input attestation)
// ----------------------------------------------------------------------

TEST(Fnv1aFile, TracksContentAndSize)
{
    TempFile tmp("hash");
    ASSERT_TRUE(writeRaw(tmp.path(), "hello mtx\n"));
    uint64_t bytes = 0, hash = 0;
    ASSERT_TRUE(fnv1aFile(tmp.path(), bytes, hash));
    EXPECT_EQ(bytes, 10u);

    uint64_t bytes2 = 0, hash2 = 0;
    ASSERT_TRUE(writeRaw(tmp.path(), "hello mty\n"));
    ASSERT_TRUE(fnv1aFile(tmp.path(), bytes2, hash2));
    EXPECT_EQ(bytes2, bytes);
    EXPECT_NE(hash2, hash) << "content change must change the hash";

    uint64_t bytes3 = 0, hash3 = 0;
    EXPECT_FALSE(fnv1aFile(tmp.path() + ".missing", bytes3, hash3));
}

// ----------------------------------------------------------------------
// External dataset ingestion (--dataset) on the committed fixture
// ----------------------------------------------------------------------

TEST(ExternalDataset, FixtureParsesToExpectedShape)
{
    MtxMatrix m;
    std::vector<std::string> errs;
    ASSERT_TRUE(mtxReadFile(dataPath("tiny.mtx"), m, &errs))
        << (errs.empty() ? "" : errs[0]);
    EXPECT_EQ(m.rows, 12u);
    EXPECT_EQ(m.cols, 12u);
    // 23 stored entries, 11 sub-diagonal ones mirrored by expansion.
    EXPECT_EQ(m.nnz(), 34u);
    CsrMatrix csr = cooToCsr(m);
    expectWellFormed(csr);
    EXPECT_EQ(csr.nnz(), 34u);
}

TEST(ExternalDataset, RegistersRunnableWorkload)
{
    std::string name;
    std::vector<std::string> errs;
    ASSERT_TRUE(registerExternalDataset(dataPath("tiny.mtx"), &name,
                                        &errs))
        << (errs.empty() ? "" : errs[0]);
    EXPECT_EQ(name, "SpMV:tiny");
    ASSERT_EQ(workloadRegistry().count(name), 1u);

    const ExternalDataset *ds = findExternalDataset(name);
    ASSERT_NE(ds, nullptr);
    EXPECT_EQ(ds->rows, 12u);
    EXPECT_EQ(ds->nnz, 34u);
    EXPECT_EQ(findExternalDataset("FFT 2D"), nullptr);

    // The registered workload runs and validates on an indexed and a
    // sequential machine (the two trace shapes).
    for (MachineKind kind : {MachineKind::ISRF4, MachineKind::Base}) {
        WorkloadResult r =
            runWorkload(name, MachineConfig::make(kind), {});
        EXPECT_EQ(r.status, RunStatus::Done) << machineKindName(kind);
        EXPECT_TRUE(r.correct) << machineKindName(kind);
    }
}

TEST(ExternalDataset, BadFileRejectedWithDiagnostics)
{
    TempFile tmp("bad");
    ASSERT_TRUE(writeRaw(tmp.path(),
                         "%%MatrixMarket matrix coordinate real "
                         "general\n2 2 1\n9 9 1.0\n"));
    std::string name;
    std::vector<std::string> errs;
    EXPECT_FALSE(registerExternalDataset(tmp.path(), &name, &errs));
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("line 3"), std::string::npos);
}

TEST(ExternalDataset, UnknownWorkloadDiagnosticListsRegistry)
{
    WorkloadOptions opts;
    EXPECT_DEATH(runWorkload("NoSuchWorkload", MachineKind::Base, opts),
                 "registered:.*FFT 2D.*Histogram");
}

} // namespace
} // namespace isrf
