/**
 * @file
 * Dense-vs-skip tick-engine equivalence and Machine re-initialization
 * safety.
 *
 * The skip engine (MachineConfig::engineMode == EngineMode::Skip) must
 * be an *invisible* optimization: for every workload and machine kind,
 * cycle counts, Figure 12 breakdown buckets, traffic counters and the
 * full machineReportJson must match dense mode byte for byte. Dense
 * mode is the oracle; any divergence is a bug in a component's
 * nextEvent()/skip-credit implementation.
 *
 * Also covered here:
 *  - the nextEvent() contract: a component reporting an event in the
 *    past panics the engine instead of time-traveling;
 *  - Engine::clear() and the re-init path: Machine::init() called on a
 *    used machine must behave exactly like a fresh Machine (the old
 *    code left the engine holding dangling watchdog/sampler pointers
 *    and a stale clock).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/stream_program.h"
#include "sim/engine.h"
#include "test_helpers.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** setenv/unsetenv with automatic restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool hadOld_ = false;
};

TEST(EngineModeEnv, FromEnvParsesAndDefaults)
{
    {
        ScopedEnv env("ISRF_ENGINE", "skip");
        EXPECT_EQ(MachineConfig::base().fromEnv().engineMode,
                  EngineMode::Skip);
    }
    {
        ScopedEnv env("ISRF_ENGINE", "dense");
        EXPECT_EQ(MachineConfig::base().fromEnv().engineMode,
                  EngineMode::Dense);
    }
    {
        // Invalid values warn and fall back to the default.
        ScopedEnv env("ISRF_ENGINE", "bogus");
        EXPECT_EQ(MachineConfig::base().fromEnv().engineMode,
                  EngineMode::Dense);
    }
    {
        ScopedEnv env("ISRF_ENGINE", nullptr);
        EXPECT_EQ(MachineConfig::base().fromEnv().engineMode,
                  EngineMode::Dense);
    }
    EXPECT_EQ(MachineConfig::base().engineMode, EngineMode::Dense)
        << "make() must not read the environment";
}

const std::vector<MachineKind> &
allKinds()
{
    static const std::vector<MachineKind> kinds = {
        MachineKind::Base, MachineKind::ISRF1, MachineKind::ISRF4,
        MachineKind::Cache,
    };
    return kinds;
}

WorkloadResult
runWith(const std::string &workload, MachineKind kind, EngineMode mode,
        const WorkloadOptions &opts)
{
    MachineConfig cfg = MachineConfig::make(kind);
    cfg.engineMode = mode;
    return runWorkload(workload, cfg, opts);
}

class EngineEquivalence : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineEquivalence, SkipMatchesDenseOnEveryMachineKind)
{
    WorkloadOptions opts;
    opts.repeats = 1;
    for (MachineKind kind : allKinds()) {
        WorkloadResult dense =
            runWith(GetParam(), kind, EngineMode::Dense, opts);
        WorkloadResult skip =
            runWith(GetParam(), kind, EngineMode::Skip, opts);
        EXPECT_TRUE(dense.correct) << machineKindName(kind);
        EXPECT_TRUE(skip.correct) << machineKindName(kind);
        EXPECT_EQ(dense.cycles, skip.cycles) << machineKindName(kind);
        EXPECT_EQ(dense.breakdown.loopBody, skip.breakdown.loopBody)
            << machineKindName(kind);
        EXPECT_EQ(dense.breakdown.srfStall, skip.breakdown.srfStall)
            << machineKindName(kind);
        EXPECT_EQ(dense.breakdown.memStall, skip.breakdown.memStall)
            << machineKindName(kind);
        EXPECT_EQ(dense.breakdown.overhead, skip.breakdown.overhead)
            << machineKindName(kind);
        // The serialized result covers traffic counters and per-kernel
        // bandwidth records as well; byte equality is the contract.
        EXPECT_EQ(resultJson(dense), resultJson(skip))
            << machineKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EngineEquivalence,
                         ::testing::Values("FFT 2D", "Rijndael", "Sort",
                                           "Filter", "IG_SML", "IG_DMS",
                                           "IG_DCS", "IG_SCL"));

// The sparse & stencil family exercises paths the paper workloads do
// not: variable-length per-lane traces (SpMV rows), dual-view
// cross-lane/in-lane slot aliases, read-write indexed bin tables, and
// scratchpad stencil rings. Same contract: skip is invisible.
INSTANTIATE_TEST_SUITE_P(SparseWorkloads, EngineEquivalence,
                         ::testing::Values("SpMV Banded", "SpMV Random",
                                           "SpMV Power", "Stencil 2D5",
                                           "Stencil 2D9", "Stencil 3D27",
                                           "Histogram"));

TEST(EngineEquivalenceExtras, SamplerAndWatchdogDoNotDiverge)
{
    // The sampler forces dense ticks at interval boundaries and the
    // watchdog at its check cycles; both must neither perturb results
    // nor be starved of their boundaries by a skip.
    WorkloadOptions opts;
    opts.repeats = 1;
    for (MachineKind kind : {MachineKind::Base, MachineKind::ISRF4}) {
        MachineConfig dense = MachineConfig::make(kind);
        dense.statSampleInterval = 500;
        dense.faults.watchdogInterval = 2000;
        MachineConfig skip = dense;
        skip.engineMode = EngineMode::Skip;
        WorkloadResult a = runWorkload("Sort", dense, opts);
        WorkloadResult b = runWorkload("Sort", skip, opts);
        EXPECT_TRUE(a.correct);
        EXPECT_TRUE(b.correct);
        EXPECT_EQ(resultJson(a), resultJson(b)) << machineKindName(kind);
    }
}

/**
 * Drive a small copy kernel on a machine built from cfg; returns the
 * cycle count and leaves report/sampler output in the out-params.
 */
uint64_t
runCopyProgram(const MachineConfig &cfgIn, std::string *report,
               std::string *samplerCsv)
{
    MachineConfig cfg = cfgIn;
    cfg.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(cfg);
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 3 + 1);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    static KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    uint64_t cycles = prog.run();
    if (report)
        *report = machineReportJson(m);
    if (samplerCsv)
        *samplerCsv = m.sampler() ? m.sampler()->csv() : "";
    return cycles;
}

TEST(EngineEquivalenceExtras, MachineReportJsonByteIdentical)
{
    MachineConfig dense = MachineConfig::isrf4();
    dense.statSampleInterval = 256;
    dense.faults.watchdogInterval = 1024;
    MachineConfig skip = dense;
    skip.engineMode = EngineMode::Skip;

    std::string denseReport, denseCsv, skipReport, skipCsv;
    uint64_t denseCycles = runCopyProgram(dense, &denseReport, &denseCsv);
    uint64_t skipCycles = runCopyProgram(skip, &skipReport, &skipCsv);
    EXPECT_EQ(denseCycles, skipCycles);
    EXPECT_EQ(denseReport, skipReport);
    // Interval samples land on the same boundaries with the same
    // deltas: skipped cycles must not swallow a sampler boundary.
    EXPECT_FALSE(denseCsv.empty());
    EXPECT_EQ(denseCsv, skipCsv);
}

// ----------------------------------------------------------------------
// Engine-level skip semantics
// ----------------------------------------------------------------------

/** Ticks densely until `wake`, then has no further self-driven work. */
struct FarEventComponent : Ticked
{
    explicit FarEventComponent(Cycle w) : wake(w) {}
    Cycle wake;
    uint64_t ticks = 0;
    uint64_t skipped = 0;
    void tick(Cycle) override { ticks++; }
    Cycle
    nextEvent(Cycle now) override
    {
        return now < wake ? wake : kNoEvent;
    }
    void skipTo(Cycle from, Cycle to) override { skipped += to - from; }
    std::string tickedName() const override { return "far"; }
};

TEST(EngineSkip, StepJumpsToNextEventAndCreditsSkippedCycles)
{
    Engine e;
    e.setMode(EngineMode::Skip);
    FarEventComponent c(100);
    e.add(&c);
    e.step();  // tick cycle 0, then jump over [1, 100)
    EXPECT_EQ(c.ticks, 1u);
    EXPECT_EQ(c.skipped, 99u);
    EXPECT_EQ(e.now(), 100u);
    // At the event cycle the component goes quiet (kNoEvent): the
    // engine must stay dense rather than jump to infinity.
    e.step();
    EXPECT_EQ(c.ticks, 2u);
    EXPECT_EQ(e.now(), 101u);
}

TEST(EngineSkip, StepsIsExactEvenWhenJumping)
{
    Engine e;
    e.setMode(EngineMode::Skip);
    FarEventComponent c(1000);
    e.add(&c);
    e.steps(10);  // jump is clamped to the requested boundary
    EXPECT_EQ(e.now(), 10u);
    EXPECT_EQ(c.ticks, 1u);
    EXPECT_EQ(c.skipped, 9u);
}

struct StaleComponent : Ticked
{
    void tick(Cycle) override {}
    Cycle nextEvent(Cycle now) override { return now; }  // illegal
    std::string tickedName() const override { return "stale"; }
};

TEST(EngineSkipDeathTest, StaleNextEventPanics)
{
    Engine e;
    e.setMode(EngineMode::Skip);
    StaleComponent s;
    e.add(&s);
    EXPECT_DEATH(e.step(), "time travel");
}

struct TickCounter : Ticked
{
    uint64_t ticks = 0;
    void tick(Cycle) override { ticks++; }
    std::string tickedName() const override { return "counter"; }
};

TEST(EngineClear, UnregistersComponentsAndRewindsClock)
{
    Engine e;
    TickCounter a;
    e.add(&a);
    e.steps(5);
    EXPECT_EQ(e.now(), 5u);
    EXPECT_EQ(a.ticks, 5u);
    e.clear();
    EXPECT_EQ(e.now(), 0u);
    e.steps(3);
    EXPECT_EQ(a.ticks, 5u) << "cleared components must not be ticked";
}

// ----------------------------------------------------------------------
// Cooperative cancellation / deadline (identical across engine modes)
// ----------------------------------------------------------------------

TEST(EngineCancel, PreCancelledTokenStopsBeforeTheFirstStepInBothModes)
{
    // Cancellation is observed at cycle boundaries only; a token that
    // is already tripped must stop the run at cycle 0 with identical
    // observables in dense and skip mode.
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Skip}) {
        Engine e;
        e.setMode(mode);
        TickCounter c;
        e.add(&c);
        CancelToken token;
        token.cancel();
        e.setCancel(&token);
        RunResult r = e.runUntil([] { return false; }, 1000);
        EXPECT_EQ(r.status, RunStatus::Cancelled)
            << engineModeName(mode);
        EXPECT_EQ(r.cycles, 0u) << engineModeName(mode);
        EXPECT_EQ(c.ticks, 0u) << engineModeName(mode);
        EXPECT_EQ(e.now(), 0u) << engineModeName(mode);
    }
}

TEST(EngineCancel, ExpiredDeadlineReportsTimedOutInBothModes)
{
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Skip}) {
        Engine e;
        e.setMode(mode);
        TickCounter c;
        e.add(&c);
        CancelToken token;
        token.setTimeout(1e-9);  // expires immediately
        e.setCancel(&token);
        RunResult r = e.runUntil([] { return false; }, 1000);
        EXPECT_EQ(r.status, RunStatus::TimedOut)
            << engineModeName(mode);
        EXPECT_EQ(r.cycles, 0u) << engineModeName(mode);
    }
}

TEST(EngineCancel, CancellationWinsOverDeadline)
{
    Engine e;
    TickCounter c;
    e.add(&c);
    CancelToken token;
    token.cancel();
    token.setTimeout(1e-9);
    e.setCancel(&token);
    EXPECT_EQ(e.runUntil([] { return false; }, 10).status,
              RunStatus::Cancelled);
}

TEST(EngineCancel, FinishedRunIsNeverReportedCancelled)
{
    // The predicate is checked before the token: a run that is already
    // done must return Done even under a tripped token.
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Skip}) {
        Engine e;
        e.setMode(mode);
        TickCounter c;
        e.add(&c);
        CancelToken token;
        token.cancel();
        e.setCancel(&token);
        RunResult r = e.runUntil([] { return true; }, 1000);
        EXPECT_EQ(r.status, RunStatus::Done) << engineModeName(mode);
    }
}

TEST(EngineCancel, UntrippedTokenDoesNotPerturbResults)
{
    // A workload run under a generous (never-expiring) deadline must
    // be byte-identical to one run with no token at all, in both
    // modes — the resilience layer is invisible to healthy runs.
    WorkloadOptions plain;
    plain.repeats = 1;
    for (EngineMode mode : {EngineMode::Dense, EngineMode::Skip}) {
        MachineConfig cfg = MachineConfig::make(MachineKind::ISRF4);
        cfg.engineMode = mode;
        WorkloadResult bare = runWorkload("Sort", cfg, plain);

        CancelToken token;
        token.setTimeout(3600.0);
        WorkloadOptions guarded = plain;
        guarded.cancel = &token;
        WorkloadResult watched = runWorkload("Sort", cfg, guarded);

        EXPECT_TRUE(watched.correct) << engineModeName(mode);
        EXPECT_EQ(resultJson(bare), resultJson(watched))
            << engineModeName(mode);
    }
}

TEST(EngineCancel, ChainedTokenPropagatesParentCancel)
{
    CancelToken parent, child;
    child.chainTo(&parent);
    EXPECT_FALSE(child.cancelRequested());
    parent.cancel();
    EXPECT_TRUE(child.cancelRequested());

    Engine e;
    TickCounter c;
    e.add(&c);
    e.setCancel(&child);
    EXPECT_EQ(e.runUntil([] { return false; }, 10).status,
              RunStatus::Cancelled);
}

TEST(EngineCancel, DetachingTheTokenRestoresPlainRuns)
{
    Engine e;
    TickCounter c;
    e.add(&c);
    CancelToken token;
    token.cancel();
    e.setCancel(&token);
    EXPECT_EQ(e.runUntil([] { return false; }, 10).status,
              RunStatus::Cancelled);
    e.setCancel(nullptr);
    EXPECT_EQ(e.runUntil([] { return false; }, 10).status,
              RunStatus::Limit);
    EXPECT_EQ(c.ticks, 10u);
}

// ----------------------------------------------------------------------
// Machine re-initialization (the bug this PR fixes)
// ----------------------------------------------------------------------

TEST(MachineReinit, SecondInitMatchesFreshMachine)
{
    // watchdogInterval/statSampleInterval both register Ticked
    // components owned by unique_ptrs that init() re-creates; before
    // Engine::clear() existed, the second init() left the engine
    // ticking dangling pointers (caught by ASan) and kept the old
    // clock running.
    MachineConfig cfg = MachineConfig::isrf4();
    cfg.faults.watchdogInterval = 512;
    cfg.statSampleInterval = 256;

    std::string freshReport;
    uint64_t freshCycles = runCopyProgram(cfg, &freshReport, nullptr);

    MachineConfig used = cfg;
    used.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(used);
    std::vector<Word> data(512, 7);
    m.mem().dram().fill(0, data);
    {
        StreamProgram prog(m);
        SlotId in = prog.addStream("in", 512);
        SlotId out = prog.addStream("out", 512);
        prog.load(in, 0);
        static KernelGraph g = test::makeCopyKernel();
        prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
        prog.run();
    }
    EXPECT_GT(m.now(), 0u);

    // Re-init the dirty machine and run the reference program: every
    // stat, the clock, and the report must match a fresh machine.
    MachineConfig second = cfg;
    second.dram.capacityWords = 1 << 16;
    m.init(second);
    std::vector<Word> data2(256);
    for (size_t i = 0; i < data2.size(); i++)
        data2[i] = static_cast<Word>(i * 3 + 1);
    m.mem().dram().fill(0, data2);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    static KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data2));
    uint64_t cycles = prog.run();

    EXPECT_EQ(cycles, freshCycles);
    EXPECT_EQ(machineReportJson(m), freshReport);
}

TEST(MachineReinit, ReinitIntoSkipModeMatchesFreshDense)
{
    // Mode can change across re-init; the rebuilt machine must honor
    // the new config and still produce identical results.
    MachineConfig dense = MachineConfig::base();
    std::string freshReport;
    uint64_t freshCycles = runCopyProgram(dense, &freshReport, nullptr);

    Machine m;
    MachineConfig first = dense;
    first.dram.capacityWords = 1 << 16;
    m.init(first);
    m.step(100);

    MachineConfig second = dense;
    second.engineMode = EngineMode::Skip;
    second.dram.capacityWords = 1 << 16;
    m.init(second);
    EXPECT_EQ(m.now(), 0u);
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 3 + 1);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId in = prog.addStream("in", 256);
    SlotId out = prog.addStream("out", 256);
    prog.load(in, 0);
    static KernelGraph g = test::makeCopyKernel();
    prog.kernel(test::makeCopyInvocation(m, &g, in, out, data));
    EXPECT_EQ(prog.run(), freshCycles);
    EXPECT_EQ(machineReportJson(m), freshReport);
}

} // namespace
} // namespace isrf
