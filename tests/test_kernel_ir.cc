/**
 * @file
 * Unit tests for the kernel IR: opcodes, evaluation, graph and builder.
 */
#include <gtest/gtest.h>

#include "kernel/builder.h"
#include "kernel/graph.h"
#include "kernel/op.h"

namespace isrf {
namespace {

TEST(OpInfo, TableConsistency)
{
    for (size_t i = 0; i < static_cast<size_t>(Opcode::NumOpcodes); i++) {
        const OpInfo &info = opInfo(static_cast<Opcode>(i));
        EXPECT_NE(info.name, nullptr);
        EXPECT_LE(info.arity, 3);
    }
    EXPECT_STREQ(opName(Opcode::FAdd), "fadd");
    EXPECT_EQ(opInfo(Opcode::FDiv).fu, FuClass::Div);
    EXPECT_FALSE(opInfo(Opcode::FDiv).pipelined);
    EXPECT_TRUE(opInfo(Opcode::FMul).pipelined);
}

TEST(OpInfo, StreamPredicates)
{
    EXPECT_TRUE(opTouchesStream(Opcode::SeqRead));
    EXPECT_TRUE(opTouchesStream(Opcode::IdxAddr));
    EXPECT_FALSE(opTouchesStream(Opcode::IAdd));
    EXPECT_TRUE(opIsIndexed(Opcode::IdxRead));
    EXPECT_FALSE(opIsIndexed(Opcode::SeqRead));
}

TEST(EvalOp, IntegerArithmetic)
{
    EXPECT_EQ(evalOp(Opcode::IAdd, 3, 4, 0), 7u);
    EXPECT_EQ(evalOp(Opcode::ISub, 3, 4, 0), static_cast<Word>(-1));
    EXPECT_EQ(evalOp(Opcode::IMul, 6, 7, 0), 42u);
    EXPECT_EQ(evalOp(Opcode::IAnd, 0xf0, 0x3c, 0), 0x30u);
    EXPECT_EQ(evalOp(Opcode::IXor, 0xff, 0x0f, 0), 0xf0u);
    EXPECT_EQ(evalOp(Opcode::IShl, 1, 5, 0), 32u);
    EXPECT_EQ(evalOp(Opcode::IShr, 32, 5, 0), 1u);
}

TEST(EvalOp, FloatThroughBitcast)
{
    Word a = floatToWord(1.5f);
    Word b = floatToWord(2.5f);
    EXPECT_FLOAT_EQ(wordToFloat(evalOp(Opcode::FAdd, a, b, 0)), 4.0f);
    EXPECT_FLOAT_EQ(wordToFloat(evalOp(Opcode::FMul, a, b, 0)), 3.75f);
    EXPECT_FLOAT_EQ(wordToFloat(evalOp(Opcode::FDiv, b, a, 0)),
                    2.5f / 1.5f);
}

TEST(EvalOp, CompareAndSelect)
{
    EXPECT_EQ(evalOp(Opcode::CmpLt, 1, 2, 0), 1u);
    EXPECT_EQ(evalOp(Opcode::CmpLt, 2, 1, 0), 0u);
    EXPECT_EQ(evalOp(Opcode::CmpLt, static_cast<Word>(-3), 1, 0), 1u)
        << "signed comparison";
    EXPECT_EQ(evalOp(Opcode::Select, 1, 10, 20), 10u);
    EXPECT_EQ(evalOp(Opcode::Select, 0, 10, 20), 20u);
}

TEST(Builder, LookupKernelShape)
{
    // The Figure 10 lookup kernel: sequential in, indexed table, out.
    KernelBuilder b("lookup");
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("LUT");
    auto out = b.seqOut("out");
    auto a = b.read(in);
    auto v = b.readIdx(lut, a);
    b.write(out, b.iadd(a, v));
    KernelGraph g = b.build();

    EXPECT_EQ(g.streamSlots().size(), 3u);
    EXPECT_EQ(g.countOps(Opcode::SeqRead), 1u);
    EXPECT_EQ(g.countOps(Opcode::IdxAddr), 1u);
    EXPECT_EQ(g.countOps(Opcode::IdxRead), 1u);
    EXPECT_EQ(g.countOps(Opcode::SeqWrite), 1u);
    EXPECT_EQ(g.countOps(Opcode::IAdd), 1u);
}

TEST(Builder, SeparationStretchesAddrToRead)
{
    KernelBuilder b("sep");
    auto lut = b.idxlIn("t");
    auto out = b.seqOut("o");
    auto v = b.readIdx(lut, b.constInt(0));
    b.write(out, v);
    KernelGraph g = b.build();

    for (uint32_t sep : {2u, 6u, 10u}) {
        bool found = false;
        for (const Edge &e : g.fullEdges(sep)) {
            if (g.node(e.from).op == Opcode::IdxAddr &&
                    g.node(e.to).op == Opcode::IdxRead) {
                EXPECT_EQ(e.latency, sep);
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(Builder, CarryCreatesRecurrenceEdge)
{
    KernelBuilder b("rec");
    auto out = b.seqOut("o");
    auto prev = b.carryIn();
    auto next = b.iadd(prev, b.constInt(1));
    b.carryOut(prev, next, 1);
    b.write(out, next);
    KernelGraph g = b.build();

    bool found = false;
    for (const Edge &e : g.edges()) {
        if (e.distance == 1)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Builder, FlopCount)
{
    KernelBuilder b("flops");
    auto in = b.seqIn("i");
    auto out = b.seqOut("o");
    auto x = b.read(in);
    auto y = b.fmul(x, x);
    auto z = b.fadd(y, x);
    b.write(out, b.iadd(z, x));  // integer op: not a flop
    KernelGraph g = b.build();
    EXPECT_EQ(g.flopCount(), 2u);
}

TEST(Graph, ValidateRejectsBadStreamSlot)
{
    KernelGraph g("bad");
    Node n;
    n.op = Opcode::SeqRead;
    n.streamSlot = 5;  // no slots declared
    g.addNode(n);
    EXPECT_DEATH(g.validate(), "bad stream slot");
}

TEST(Graph, OperandMustBeDefinedBeforeUse)
{
    KernelGraph g("fwd");
    Node n;
    n.op = Opcode::IAdd;
    n.operands[0] = 7;  // forward reference
    n.operands[1] = 8;
    EXPECT_DEATH(g.addNode(n), "not yet defined");
}

TEST(Builder, BuildTwiceDies)
{
    KernelBuilder b("twice");
    auto out = b.seqOut("o");
    b.write(out, b.constInt(1));
    b.build();
    EXPECT_DEATH(b.build(), "build");
}

} // namespace
} // namespace isrf
