/**
 * @file
 * Direct unit tests of the SRF building blocks: sequential stream
 * buffers, indexed data buffers, address FIFOs, sub-arrays, and the
 * round-robin arbiter.
 */
#include <gtest/gtest.h>

#include <random>

#include "srf/address_fifo.h"
#include "srf/arbiter.h"
#include "srf/stream_buffer.h"
#include "srf/sub_array.h"

namespace isrf {
namespace {

TEST(SeqBuffer, FifoOrderAndCapacity)
{
    SeqBuffer b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.freeSpace(), 4u);
    b.push(1);
    b.push(2);
    b.push(3);
    b.push(4);
    EXPECT_TRUE(b.full());
    EXPECT_FALSE(b.canPush());
    EXPECT_EQ(b.pop(), 1u);
    EXPECT_EQ(b.pop(), 2u);
    EXPECT_EQ(b.size(), 2u);
}

TEST(SeqBuffer, RefillAndDrainBlocks)
{
    SeqBuffer b(8);
    Word block[4] = {10, 11, 12, 13};
    EXPECT_TRUE(b.canRefill(4));
    b.refill(block, 4);
    b.refill(block, 4);
    EXPECT_FALSE(b.canRefill(4));
    Word out[4];
    EXPECT_TRUE(b.canDrain(4));
    EXPECT_EQ(b.drain(out, 4), 4u);
    EXPECT_EQ(out[0], 10u);
    EXPECT_EQ(out[3], 13u);
    // Partial drain of the remainder.
    b.pop();
    EXPECT_EQ(b.drainPartial(out, 4), 3u);
    EXPECT_EQ(out[0], 11u);
    EXPECT_TRUE(b.empty());
}

TEST(IdxDataBuffer, OutOfOrderDeliveryInOrderPop)
{
    IdxDataBuffer b(4);
    b.registerRequest(0, 1);
    b.registerRequest(1, 1);
    // Second request's data arrives first.
    b.deliver(1, 0, 222, 5);
    EXPECT_FALSE(b.headReady(10)) << "head (seqNo 0) not delivered";
    b.deliver(0, 0, 111, 8);
    EXPECT_FALSE(b.headReady(7)) << "ready cycle not reached";
    EXPECT_TRUE(b.headReady(8));
    Word out[4];
    EXPECT_EQ(b.popHead(out), 1u);
    EXPECT_EQ(out[0], 111u);
    EXPECT_TRUE(b.headReady(8));
    b.popHead(out);
    EXPECT_EQ(out[0], 222u);
    EXPECT_TRUE(b.empty());
}

TEST(IdxDataBuffer, MultiWordRecordNeedsAllWords)
{
    IdxDataBuffer b(4);
    b.registerRequest(7, 3);
    b.deliver(7, 0, 1, 2);
    b.deliver(7, 2, 3, 4);
    EXPECT_FALSE(b.headReady(10)) << "one word still missing";
    b.deliver(7, 1, 2, 6);
    EXPECT_TRUE(b.headReady(6));
    Word out[4];
    EXPECT_EQ(b.popHead(out), 3u);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 2u);
    EXPECT_EQ(out[2], 3u);
}

TEST(AddressFifo, HeadCounterExpandsRecords)
{
    AddressFifo f(4, 3);  // 3-word records
    EXPECT_TRUE(f.push(5, 0, 0));
    EXPECT_EQ(f.headWordIndex(), 15u);
    f.advanceHead();
    EXPECT_EQ(f.headWordIndex(), 16u);
    f.advanceHead();
    EXPECT_EQ(f.headWordIndex(), 17u);
    f.advanceHead();
    EXPECT_TRUE(f.empty()) << "record fully issued";
}

TEST(AddressFifo, CapacityAndWriteData)
{
    AddressFifo f(2, 1);
    Word data[1] = {0xbeef};
    EXPECT_TRUE(f.push(0, 0, 0, data, 1));
    EXPECT_TRUE(f.push(1, 1, 0));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.push(2, 2, 0));
    EXPECT_TRUE(f.head().isWrite);
    EXPECT_EQ(f.head().writeData[0], 0xbeefu);
    f.advanceHead();
    EXPECT_FALSE(f.head().isWrite);
}

TEST(SubArray, OnePortPerCycle)
{
    SubArray sa;
    sa.newCycle();
    EXPECT_TRUE(sa.claimIndexed());
    EXPECT_FALSE(sa.claimIndexed()) << "port busy";
    EXPECT_FALSE(sa.claimSequential());
    EXPECT_EQ(sa.conflicts(), 2u);
    sa.newCycle();
    EXPECT_TRUE(sa.claimSequential());
    EXPECT_EQ(sa.indexedAccesses(), 1u);
    EXPECT_EQ(sa.sequentialAccesses(), 1u);
}

TEST(RoundRobinArbiter, RotatesFairly)
{
    RoundRobinArbiter arb(3);
    std::vector<uint8_t> all = {1, 1, 1};
    EXPECT_EQ(arb.arbitrate(all), 0);
    EXPECT_EQ(arb.arbitrate(all), 1);
    EXPECT_EQ(arb.arbitrate(all), 2);
    EXPECT_EQ(arb.arbitrate(all), 0);
}

TEST(RoundRobinArbiter, SkipsNonClaimants)
{
    RoundRobinArbiter arb(4);
    std::vector<uint8_t> claims = {0, 0, 1, 0};
    EXPECT_EQ(arb.arbitrate(claims), 2);
    claims = {1, 0, 0, 1};
    EXPECT_EQ(arb.arbitrate(claims), 3) << "priority after grantee";
    EXPECT_EQ(arb.arbitrate(claims), 0);
}

TEST(RoundRobinArbiter, NobodyClaims)
{
    RoundRobinArbiter arb(2);
    std::vector<uint8_t> none = {0, 0};
    EXPECT_EQ(arb.arbitrate(none), -1);
    EXPECT_EQ(arb.idleCycles(), 1u);
    EXPECT_EQ(arb.grants(), 0u);
}

TEST(RoundRobinArbiter, LongTermFairness)
{
    RoundRobinArbiter arb(4);
    std::vector<uint8_t> all = {1, 1, 1, 1};
    std::vector<int> granted(4, 0);
    for (int i = 0; i < 400; i++)
        granted[static_cast<size_t>(arb.arbitrate(all))]++;
    for (int g : granted)
        EXPECT_EQ(g, 100);
}

// ----------------------------------------------------------------------
// Bitmask claims API
// ----------------------------------------------------------------------

/**
 * Reference model of the pre-bitmask arbiter: linear scan from the
 * priority pointer over a claims vector. The production rotate+ctz
 * implementation must be grant-for-grant identical to this.
 */
class ReferenceRrArbiter
{
  public:
    explicit ReferenceRrArbiter(uint32_t n) : n_(n) {}

    int
    arbitrate(const std::vector<uint8_t> &claims)
    {
        for (uint32_t k = 0; k < n_; k++) {
            uint32_t id = (next_ + k) % n_;
            if (claims[id]) {
                next_ = (id + 1) % n_;
                grants_++;
                return static_cast<int>(id);
            }
        }
        idleCycles_++;
        return -1;
    }

    uint64_t grants_ = 0;
    uint64_t idleCycles_ = 0;

  private:
    uint32_t n_;
    uint32_t next_ = 0;
};

TEST(RoundRobinArbiter, MaskGrantsMatchReferenceScan)
{
    // Randomized claim patterns, including long idle stretches and
    // single-claimant bursts: grants, idle counts, and the priority
    // rotation must match the linear-scan reference at every step.
    for (uint32_t n : {1u, 2u, 7u, 25u, 64u}) {
        RoundRobinArbiter arb(n);
        ReferenceRrArbiter ref(n);
        std::mt19937 rng(1234 + n);
        for (int step = 0; step < 2000; step++) {
            std::vector<uint8_t> claims(n, 0);
            uint64_t mask = 0;
            // Mix densities: mostly-idle, sparse, and dense cycles.
            int density = static_cast<int>(rng() % 4);
            for (uint32_t i = 0; i < n; i++) {
                bool claim = density == 0 ? false
                    : density == 1 ? (rng() % 8) == 0
                    : density == 2 ? (rng() % 2) == 0
                    : true;
                if (claim) {
                    claims[i] = 1;
                    mask |= uint64_t{1} << i;
                }
            }
            ASSERT_EQ(arb.arbitrate(mask), ref.arbitrate(claims))
                << "n=" << n << " step=" << step;
        }
        EXPECT_EQ(arb.grants(), ref.grants_);
        EXPECT_EQ(arb.idleCycles(), ref.idleCycles_);
    }
}

TEST(RoundRobinArbiter, VectorOverloadMatchesMask)
{
    // The legacy vector protocol converts to the mask path: identical
    // grant sequences for identical claims.
    RoundRobinArbiter a(5);
    RoundRobinArbiter b(5);
    std::mt19937 rng(99);
    for (int step = 0; step < 500; step++) {
        std::vector<uint8_t> claims(5, 0);
        uint64_t mask = 0;
        for (uint32_t i = 0; i < 5; i++) {
            if (rng() % 3 == 0) {
                claims[i] = 1;
                mask |= uint64_t{1} << i;
            }
        }
        ASSERT_EQ(a.arbitrate(claims), b.arbitrate(mask));
    }
    EXPECT_EQ(a.grants(), b.grants());
    EXPECT_EQ(a.idleCycles(), b.idleCycles());
}

TEST(RoundRobinArbiter, IdleCycleFreezesPriority)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(uint64_t{0b1111}), 0);
    EXPECT_EQ(arb.arbitrate(uint64_t{0}), -1);
    EXPECT_EQ(arb.arbitrate(uint64_t{0}), -1);
    // Pointer still at 1 after the idle cycles.
    EXPECT_EQ(arb.arbitrate(uint64_t{0b1111}), 1);
    EXPECT_EQ(arb.idleCycles(), 2u);
}

TEST(RoundRobinArbiter, SkipIdleMatchesDenseIdleArbitration)
{
    // Bulk idle credit must equal n zero-claim arbitrate() calls:
    // idle count advances, the priority pointer does not.
    RoundRobinArbiter dense(6);
    RoundRobinArbiter skip(6);
    EXPECT_EQ(dense.arbitrate(uint64_t{0b100100}), 2);
    EXPECT_EQ(skip.arbitrate(uint64_t{0b100100}), 2);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(dense.arbitrate(uint64_t{0}), -1);
    skip.skipIdle(1000);
    EXPECT_EQ(dense.idleCycles(), skip.idleCycles());
    EXPECT_EQ(dense.priority(), skip.priority());
    EXPECT_EQ(dense.arbitrate(uint64_t{0b100100}),
              skip.arbitrate(uint64_t{0b100100}));
}

TEST(RoundRobinArbiterDeathTest, SizeMismatchPanics)
{
    // A claims vector sized differently from the claimant count is a
    // caller bug; it used to be silently reported as "nobody claims"
    // and credited as an idle cycle, corrupting arbitration stats.
    RoundRobinArbiter arb(4);
    std::vector<uint8_t> tooShort = {1, 1, 1};
    EXPECT_DEATH(arb.arbitrate(tooShort), "3 claim entries for 4");
    std::vector<uint8_t> tooLong = {0, 0, 0, 0, 1};
    EXPECT_DEATH(arb.arbitrate(tooLong), "5 claim entries for 4");
}

TEST(RoundRobinArbiterDeathTest, ClaimBitBeyondWidthPanics)
{
    RoundRobinArbiter arb(4);
    EXPECT_DEATH(arb.arbitrate(uint64_t{1} << 4),
                 "claim bit beyond 4 claimants");
}

TEST(RoundRobinArbiterDeathTest, TooManyClaimantsPanics)
{
    EXPECT_DEATH(RoundRobinArbiter arb(65),
                 "65 claimants exceed the 64-bit claim mask");
}

} // namespace
} // namespace isrf
