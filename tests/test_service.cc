/**
 * @file
 * Tests for the sweep service (src/service/): the content-addressed
 * result store's crash/corruption recovery — including a
 * flip-one-byte-at-every-offset sweep asserting a corrupt record is
 * always quarantined-and-recomputed, never served wrong or crashed
 * on — LRU eviction, log compaction, the wire protocol, the
 * config-driven engine deadline-poll granularity, and an end-to-end
 * daemon loop over a real Unix socket (admission, store hits,
 * deadline enforcement on a hanging job, load shedding, drain).
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/store.h"
#include "util/json.h"
#include "util/jsonl.h"

namespace isrf {
namespace {

/** Temp file path removed on scope exit. */
class TempFile
{
  public:
    explicit TempFile(const char *tag)
    {
        path_ = ::testing::TempDir() + "isrf_service_" + tag + "_" +
            std::to_string(::getpid());
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
writeRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    return std::fclose(f) == 0 && ok;
}

std::string
readRaw(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

StoredResult
makeResult(const std::string &workload, uint64_t tag)
{
    StoredResult r;
    r.workload = workload;
    r.machine = "Base";
    r.status = RunStatus::Done;
    JsonWriter w;
    w.beginObject();
    w.field("workload", workload);
    w.field("cycles", tag * 1000 + 7);
    w.field("correct", true);
    w.endObject();
    r.resultText = w.str();
    return r;
}

// ----------------------------------------------------------------------
// ResultStore basics
// ----------------------------------------------------------------------

TEST(ResultStore, MemoryOnlyPutGetAndCounters)
{
    ResultStore store;
    ASSERT_TRUE(store.open("", /*maxBytes=*/0));
    StoredResult in = makeResult("Sort", 1), out;
    EXPECT_FALSE(store.get(42, out));
    EXPECT_TRUE(store.put(42, in));
    EXPECT_TRUE(store.contains(42));
    ASSERT_TRUE(store.get(42, out));
    EXPECT_EQ(out.resultText, in.resultText);
    EXPECT_EQ(out.workload, "Sort");
    const ResultStoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_FALSE(s.persistent);
}

TEST(ResultStore, PersistsAcrossReopen)
{
    TempFile tmp("reopen");
    StoredResult a = makeResult("Sort", 1);
    StoredResult b = makeResult("Filter", 2);
    {
        ResultStore store;
        ASSERT_TRUE(store.open(tmp.path(), 0));
        EXPECT_TRUE(store.put(1, a));
        EXPECT_TRUE(store.put(2, b));
    }
    ResultStore store;
    ASSERT_TRUE(store.open(tmp.path(), 0));
    const ResultStoreStats s = store.stats();
    EXPECT_EQ(s.recoveredEntries, 2u);
    EXPECT_EQ(s.quarantined, 0u);
    EXPECT_FALSE(s.tornTailDropped);
    StoredResult out;
    ASSERT_TRUE(store.get(1, out));
    EXPECT_EQ(out.resultText, a.resultText);
    ASSERT_TRUE(store.get(2, out));
    EXPECT_EQ(out.resultText, b.resultText);
    EXPECT_EQ(out.status, RunStatus::Done);
}

TEST(ResultStore, ReplacingAPutKeepsOneLiveEntry)
{
    TempFile tmp("replace");
    ResultStore store;
    ASSERT_TRUE(store.open(tmp.path(), 0));
    EXPECT_TRUE(store.put(9, makeResult("Sort", 1)));
    StoredResult newer = makeResult("Sort", 2);
    EXPECT_TRUE(store.put(9, newer));
    EXPECT_EQ(store.stats().entries, 1u);
    StoredResult out;
    ASSERT_TRUE(store.get(9, out));
    EXPECT_EQ(out.resultText, newer.resultText);
    store.close();

    // Recovery must also resolve to the later record.
    ResultStore again;
    ASSERT_TRUE(again.open(tmp.path(), 0));
    EXPECT_EQ(again.stats().recoveredEntries, 1u);
    ASSERT_TRUE(again.get(9, out));
    EXPECT_EQ(out.resultText, newer.resultText);
}

TEST(ResultStore, TornTailIsTruncatedLikeJournalResume)
{
    TempFile tmp("torn");
    StoredResult a = makeResult("Sort", 1);
    {
        ResultStore store;
        ASSERT_TRUE(store.open(tmp.path(), 0));
        EXPECT_TRUE(store.put(1, a));
    }
    // Simulate a kill -9 mid-append: half a record, no newline.
    std::string full = readRaw(tmp.path());
    ASSERT_FALSE(full.empty());
    writeRaw(tmp.path(), full + "{\"type\":\"put\",\"key\":2,\"wor");

    ResultStore store;
    ASSERT_TRUE(store.open(tmp.path(), 0));
    const ResultStoreStats s = store.stats();
    EXPECT_TRUE(s.tornTailDropped);
    EXPECT_GT(s.tornBytesDropped, 0u);
    EXPECT_EQ(s.recoveredEntries, 1u);
    StoredResult out;
    ASSERT_TRUE(store.get(1, out));
    EXPECT_EQ(out.resultText, a.resultText);
    // The torn bytes are gone from disk: the next append starts on a
    // fresh line and a re-read is clean.
    EXPECT_TRUE(store.put(2, makeResult("Filter", 2)));
    store.close();
    ResultStore again;
    ASSERT_TRUE(again.open(tmp.path(), 0));
    EXPECT_EQ(again.stats().recoveredEntries, 2u);
    EXPECT_FALSE(again.stats().tornTailDropped);
    EXPECT_EQ(again.stats().quarantined, 0u);
}

// The store-level crash-safety property, tested the same way the
// journal reader is (test_jsonl.cc): no single corrupt byte anywhere
// in the log may crash recovery, and — stronger than the journal,
// which rejects interior corruption — every key must either verify
// byte-identical or be quarantined and then accept a recompute. Wrong
// bytes are never served.
TEST(ResultStore, FlipEveryByteQuarantinesOrServesClean)
{
    TempFile tmp("flip");
    std::map<uint64_t, std::string> expect;
    {
        ResultStore store;
        ASSERT_TRUE(store.open(tmp.path(), 0));
        for (uint64_t k = 1; k <= 4; k++) {
            StoredResult r = makeResult("Sort", k);
            expect[k] = r.resultText;
            ASSERT_TRUE(store.put(k, r));
        }
    }
    const std::string full = readRaw(tmp.path());
    ASSERT_GT(full.size(), 0u);

    for (size_t off = 0; off < full.size(); off++) {
        std::string bad = full;
        bad[off] = static_cast<char>(bad[off] ^ 0x20);
        if (bad[off] == full[off])
            continue;  // degenerate flip
        ASSERT_TRUE(writeRaw(tmp.path(), bad));

        ResultStore store;
        ASSERT_TRUE(store.open(tmp.path(), 0))
            << "open crashed/errored with byte " << off << " flipped";
        size_t clean = 0;
        for (const auto &kv : expect) {
            StoredResult out;
            if (store.get(kv.first, out)) {
                EXPECT_EQ(out.resultText, kv.second)
                    << "corrupt bytes served for key " << kv.first
                    << " with byte " << off << " flipped";
                clean++;
            } else {
                // Quarantined: a recompute must take.
                StoredResult fresh = makeResult("Sort", kv.first);
                EXPECT_TRUE(store.put(kv.first, fresh));
                ASSERT_TRUE(store.get(kv.first, out));
                EXPECT_EQ(out.resultText, fresh.resultText);
            }
        }
        // One byte flip touches one line (or splices two): at least
        // two of the four records must still verify clean.
        EXPECT_GE(clean, 2u) << "byte " << off;
    }
}

TEST(ResultStore, LruEvictionBoundsLiveBytes)
{
    ResultStore store;
    // ~120 bytes/record: budget fits roughly 3.
    ASSERT_TRUE(store.open("", /*maxBytes=*/400));
    for (uint64_t k = 1; k <= 8; k++)
        EXPECT_TRUE(store.put(k, makeResult("Sort", k)));
    const ResultStoreStats s = store.stats();
    EXPECT_LE(s.liveBytes, 400u);
    EXPECT_GT(s.evicted, 0u);
    // Newest survives, oldest is gone.
    EXPECT_TRUE(store.contains(8));
    EXPECT_FALSE(store.contains(1));

    // A get() refreshes recency: touch the coldest survivor, insert,
    // and the touched key must outlive the untouched one.
    uint64_t coldest = 0;
    for (uint64_t k = 1; k <= 8; k++)
        if (store.contains(k)) {
            coldest = k;
            break;
        }
    ASSERT_NE(coldest, 0u);
    StoredResult out;
    ASSERT_TRUE(store.get(coldest, out));
    // One insert evicts the now-coldest untouched survivor first; the
    // just-touched key is the most recent of the old entries.
    EXPECT_TRUE(store.put(100, makeResult("Sort", 100)));
    EXPECT_TRUE(store.contains(coldest));
}

TEST(ResultStore, CompactionScrubsDeadRecordsAndSurvivesReopen)
{
    TempFile tmp("compact");
    ResultStore store;
    ASSERT_TRUE(store.open(tmp.path(), 0));
    // Overwrite one key many times: the log accumulates dead records
    // until compaction rewrites it near its live size.
    for (uint64_t i = 0; i < 200; i++)
        ASSERT_TRUE(store.put(5, makeResult("Sort", i)));
    const ResultStoreStats s = store.stats();
    EXPECT_GT(s.compactions, 0u);
    EXPECT_LE(s.logBytes, 2 * s.liveBytes + 4096 + s.liveBytes);
    store.close();

    ResultStore again;
    ASSERT_TRUE(again.open(tmp.path(), 0));
    EXPECT_EQ(again.stats().recoveredEntries, 1u);
    StoredResult out;
    ASSERT_TRUE(again.get(5, out));
    EXPECT_EQ(out.resultText, makeResult("Sort", 199).resultText);
}

TEST(ResultStore, ChecksumCoversKeyStatusAndPayload)
{
    StoredResult r = makeResult("Sort", 1);
    const uint64_t base = ResultStore::checksum(1, r);
    EXPECT_NE(base, ResultStore::checksum(2, r));
    StoredResult changed = r;
    changed.status = RunStatus::Failed;
    EXPECT_NE(base, ResultStore::checksum(1, changed));
    changed = r;
    changed.resultText[0] ^= 1;
    EXPECT_NE(base, ResultStore::checksum(1, changed));
    changed = r;
    changed.workload = "Filter";
    EXPECT_NE(base, ResultStore::checksum(1, changed));
}

// ----------------------------------------------------------------------
// Wire protocol
// ----------------------------------------------------------------------

TEST(ServiceProtocol, ParsesRunRequest)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseServiceRequest(
        "{\"op\":\"run\",\"workload\":\"FFT 2D\",\"machine\":"
        "\"ISRF1\",\"repeats\":3,\"seed\":77,\"deadline_ms\":250,"
        "\"retries\":2,\"id\":\"r1\"}", req, err)) << err;
    EXPECT_EQ(req.op, "run");
    EXPECT_EQ(req.workload, "FFT 2D");
    EXPECT_EQ(req.machine, "ISRF1");
    EXPECT_EQ(req.repeats, 3u);
    EXPECT_EQ(req.seed, 77u);
    EXPECT_DOUBLE_EQ(req.deadlineMs, 250.0);
    EXPECT_EQ(req.retries, 2);
    EXPECT_EQ(req.id, "r1");
}

TEST(ServiceProtocol, RejectsMalformedRequests)
{
    ServiceRequest req;
    std::string err;
    EXPECT_FALSE(parseServiceRequest("not json", req, err));
    EXPECT_FALSE(parseServiceRequest("{\"no_op\":1}", req, err));
    EXPECT_FALSE(parseServiceRequest(
        "{\"op\":\"transmogrify\"}", req, err));
    EXPECT_FALSE(parseServiceRequest("{\"op\":\"run\"}", req, err));
    EXPECT_FALSE(parseServiceRequest(
        "{\"op\":\"run\",\"workload\":\"Sort\",\"machine\":\"Base\","
        "\"repeats\":0}", req, err));
    // Defaults apply when optional fields are absent.
    ASSERT_TRUE(parseServiceRequest(
        "{\"op\":\"run\",\"workload\":\"Sort\",\"machine\":\"Base\"}",
        req, err)) << err;
    EXPECT_EQ(req.retries, -1);
    EXPECT_DOUBLE_EQ(req.deadlineMs, 0.0);
}

TEST(ServiceProtocol, MachineKindRoundTrips)
{
    for (MachineKind k : {MachineKind::Base, MachineKind::ISRF1,
                          MachineKind::ISRF4, MachineKind::Cache}) {
        MachineKind back;
        ASSERT_TRUE(machineKindFromName(machineKindName(k), back));
        EXPECT_EQ(back, k);
    }
    MachineKind out;
    EXPECT_FALSE(machineKindFromName("Turbo", out));
}

TEST(ServiceProtocol, ResultResponseSplicesBytesVerbatim)
{
    const std::string result =
        "{\"workload\":\"Sort\",\"cycles\":123,\"nested\":{\"a\":[1,"
        "2]}}";
    const std::string line = resultResponseJson(
        "id7", 0xabcdef, true, "done", 2, 0.5, result);
    ASSERT_TRUE(jsonValid(line)) << line;
    JsonLineView v(line);
    ASSERT_TRUE(v.valid());
    bool ok = false, cached = false;
    ASSERT_TRUE(v.getBool("ok", ok));
    EXPECT_TRUE(ok);
    ASSERT_TRUE(v.getBool("cached", cached));
    EXPECT_TRUE(cached);
    std::string raw;
    ASSERT_TRUE(v.getRaw("result", raw));
    EXPECT_EQ(raw, result);  // byte-identical splice
    std::string key;
    ASSERT_TRUE(v.getString("key", key));
    EXPECT_EQ(key, "0000000000abcdef");
}

// ----------------------------------------------------------------------
// Engine deadline-poll granularity (MachineConfig::deadlineCheckCycles)
// ----------------------------------------------------------------------

TEST(DeadlinePolling, EngineKnobClampsAndResets)
{
    Engine e;
    EXPECT_EQ(e.deadlineCheckCycles(), Engine::kDeadlineCheckCycles);
    e.setDeadlineCheckCycles(64);
    EXPECT_EQ(e.deadlineCheckCycles(), 64u);
    e.setDeadlineCheckCycles(0);  // 0 would never poll: clamp to 1
    EXPECT_EQ(e.deadlineCheckCycles(), 1u);
}

TEST(DeadlinePolling, ConfigKnobReachesTheMachineEngine)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.deadlineCheckCycles = 128;
    Machine m;
    m.init(cfg);
    EXPECT_EQ(m.engine().deadlineCheckCycles(), 128u);
}

TEST(DeadlinePolling, ExpiredDeadlineObservedWithinGranularity)
{
    // With an already-expired deadline, pollCancel must report
    // TimedOut within one granularity window of cycles.
    for (Cycle gran : {Cycle(1), Cycle(16)}) {
        Engine e;
        e.setDeadlineCheckCycles(gran);
        CancelToken tok;
        tok.setTimeout(1e-9);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        e.setCancel(&tok);
        RunResult r = e.runUntil([] { return false; }, 10 * gran);
        EXPECT_EQ(r.status, RunStatus::TimedOut);
        EXPECT_LE(r.cycles, gran);
    }
}

// ----------------------------------------------------------------------
// End-to-end daemon loop over a real Unix socket
// ----------------------------------------------------------------------

class ServiceClient
{
  public:
    explicit ServiceClient(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~ServiceClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    bool connected() const { return fd_ >= 0; }

    /** Send bytes verbatim — no newline appended (cap/idle tests). */
    bool
    sendRaw(const std::string &bytes)
    {
        size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<size_t>(n);
        }
        return true;
    }

    /** Wait for one response line (or peer close -> false). */
    bool
    readLine(std::string &resp)
    {
        for (;;) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                resp = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[8192];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    /**
     * Block until the server closes the connection. EOF and
     * ECONNRESET both count: a server that closes with unread bytes
     * still queued (the oversized-line case) resets rather than
     * half-closing.
     */
    bool
    waitForClose()
    {
        char chunk[8192];
        for (;;) {
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return errno == ECONNRESET;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    /** Send one request line, wait for one response line. */
    bool
    roundTrip(const std::string &req, std::string &resp)
    {
        std::string out = req + "\n";
        if (::send(fd_, out.data(), out.size(), 0) !=
            static_cast<ssize_t>(out.size()))
            return false;
        for (;;) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                resp = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[8192];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

std::string
socketPath(const char *tag)
{
    // Keep it short: sun_path is ~108 bytes.
    return "/tmp/isrf_svc_" + std::to_string(::getpid()) + "_" + tag +
        ".sock";
}

std::string
runRequest(const std::string &workload, const std::string &machine,
           uint64_t seed, double deadlineMs = 0.0)
{
    JsonWriter w;
    w.beginObject();
    w.field("op", std::string("run"));
    w.field("workload", workload);
    w.field("machine", machine);
    w.field("repeats", static_cast<uint64_t>(1));
    w.field("seed", seed);
    if (deadlineMs > 0.0)
        w.field("deadline_ms", deadlineMs);
    w.endObject();
    return w.str();
}

TEST(SweepService, ServesComputesThenByteIdenticalStoreHits)
{
    const std::string sock = socketPath("hits");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 2;
    cfg.allowTestJobs = true;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;

    // Liveness first.
    ASSERT_TRUE(c.roundTrip("{\"op\":\"ping\"}", resp));
    EXPECT_NE(resp.find("\"pong\""), std::string::npos) << resp;

    // Cold: computed.
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 7), resp));
    JsonLineView v1(resp);
    ASSERT_TRUE(v1.valid()) << resp;
    bool ok = false, cached = true;
    ASSERT_TRUE(v1.getBool("ok", ok));
    ASSERT_TRUE(ok) << resp;
    ASSERT_TRUE(v1.getBool("cached", cached));
    EXPECT_FALSE(cached);
    std::string status, result1;
    ASSERT_TRUE(v1.getString("status", status));
    EXPECT_EQ(status, "done");
    ASSERT_TRUE(v1.getRaw("result", result1));

    // Hot: served from the store, byte-identical result.
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 7), resp));
    JsonLineView v2(resp);
    ASSERT_TRUE(v2.getBool("cached", cached));
    EXPECT_TRUE(cached);
    std::string result2;
    ASSERT_TRUE(v2.getRaw("result", result2));
    EXPECT_EQ(result2, result1);

    const ServiceCounters sc = svc.counters();
    EXPECT_EQ(sc.computed, 1u);
    EXPECT_EQ(sc.storeHits, 1u);

    // Unknown names are structured errors, not closed connections,
    // and the workload error lists the registered names so a typo'd
    // request is self-diagnosing.
    ASSERT_TRUE(c.roundTrip(runRequest("NoSuch", "Base", 1), resp));
    EXPECT_NE(resp.find("unknown_workload"), std::string::npos);
    EXPECT_NE(resp.find("registered:"), std::string::npos);
    EXPECT_NE(resp.find("FFT 2D"), std::string::npos);
    EXPECT_NE(resp.find("Histogram"), std::string::npos);
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Turbo", 1), resp));
    EXPECT_NE(resp.find("unknown_machine"), std::string::npos);
    ASSERT_TRUE(c.roundTrip("garbage", resp));
    EXPECT_NE(resp.find("bad_request"), std::string::npos);

    svc.requestStop();
    svc.shutdown();
}

TEST(SweepService, HangingJobIsBouncedByDeadlineWithoutWedgingPool)
{
    const std::string sock = socketPath("hang");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 1;  // a wedged pool would be unmissable
    cfg.allowTestJobs = true;
    cfg.retries = 0;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;
    ASSERT_TRUE(c.roundTrip(
        runRequest(SweepService::kHangWorkload, "Base", 1, 200.0),
        resp));
    JsonLineView v(resp);
    std::string status;
    ASSERT_TRUE(v.getString("status", status)) << resp;
    EXPECT_EQ(status, "timed_out");

    // The single worker must be free again: a real job completes.
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 3), resp));
    JsonLineView v2(resp);
    ASSERT_TRUE(v2.getString("status", status)) << resp;
    EXPECT_EQ(status, "done");
    EXPECT_EQ(svc.counters().timedOut, 1u);

    svc.requestStop();
    svc.shutdown();
}

TEST(SweepService, OverloadShedsExplicitlyAndDrainRefusesNewWork)
{
    const std::string sock = socketPath("shed");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 1;
    cfg.queueMax = 1;
    cfg.allowTestJobs = true;
    cfg.retries = 0;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    // Occupy the worker and the one queue slot with hanging jobs
    // (distinct seeds = distinct fingerprints, so no coalescing). The
    // deadlines are long so slow CI scheduling cannot retire them
    // mid-test; requestStop() releases them at the end.
    std::vector<std::thread> busy;
    std::vector<std::string> busyResp(2);
    struct Joiner
    {
        std::vector<std::thread> &ts;
        SweepService &svc;
        ~Joiner()
        {
            svc.requestStop();  // unblock hanging jobs on any exit path
            for (auto &t : ts)
                if (t.joinable())
                    t.join();
        }
    } joiner{busy, svc};
    auto submitHang = [&](int i) {
        busy.emplace_back([&, i] {
            ServiceClient bc(sock);
            if (bc.connected())
                bc.roundTrip(runRequest(SweepService::kHangWorkload,
                                        "Base", 100 + i, 30000.0),
                             busyResp[i]);
        });
    };
    // First hanger: wait until the worker has picked it up (computed
    // counter), so the queue slot is genuinely free for the second —
    // admission counts queued jobs, not executing ones.
    submitHang(0);
    for (int spin = 0;
         spin < 500 && svc.counters().computed < 1; spin++)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(svc.counters().computed, 1u);
    // Second hanger takes the one queue slot.
    submitHang(1);
    for (int spin = 0; spin < 500 && svc.pendingJobs() < 2; spin++)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(svc.pendingJobs(), 2u);

    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;
    ASSERT_TRUE(c.roundTrip(
        runRequest(SweepService::kHangWorkload, "Base", 200, 30000.0),
        resp));
    EXPECT_NE(resp.find("\"overloaded\""), std::string::npos) << resp;
    EXPECT_GE(svc.counters().rejectedOverload, 1u);

    // Drain: new run requests are refused with a structured error
    // while the admitted jobs stay in flight.
    svc.requestDrain();
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 5), resp));
    EXPECT_NE(resp.find("\"draining\""), std::string::npos) << resp;
    EXPECT_EQ(svc.pendingJobs(), 2u);

    // Stop cancels the hangers; their waiters get structured errors
    // (cancelled — or timed_out if the deadline raced the cancel).
    svc.requestStop();
    for (auto &t : busy)
        t.join();
    for (const std::string &r : busyResp)
        EXPECT_TRUE(r.find("cancelled") != std::string::npos ||
                    r.find("timed_out") != std::string::npos) << r;
    svc.shutdown();
    EXPECT_EQ(svc.pendingJobs(), 0u);
}

TEST(SweepService, CoalescesIdenticalInflightRequests)
{
    const std::string sock = socketPath("coalesce");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 1;
    cfg.allowTestJobs = true;
    cfg.retries = 0;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    // Two identical hanging requests: single-flight means one compute
    // (computed == 1), both waiters get the same outcome. Admit the
    // first, wait for the second to attach to it (coalesced counter),
    // then cancel to release both — no timing-sensitive deadlines.
    std::vector<std::thread> pair;
    std::vector<std::string> resp(2);
    struct Joiner
    {
        std::vector<std::thread> &ts;
        SweepService &svc;
        ~Joiner()
        {
            svc.requestStop();
            for (auto &t : ts)
                if (t.joinable())
                    t.join();
        }
    } joiner{pair, svc};
    pair.emplace_back([&] {
        ServiceClient bc(sock);
        if (bc.connected())
            bc.roundTrip(runRequest(SweepService::kHangWorkload,
                                    "Base", 300, 30000.0),
                         resp[0]);
    });
    for (int spin = 0; spin < 500 && svc.pendingJobs() < 1; spin++)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(svc.pendingJobs(), 1u);
    pair.emplace_back([&] {
        ServiceClient bc(sock);
        if (bc.connected())
            bc.roundTrip(runRequest(SweepService::kHangWorkload,
                                    "Base", 300, 30000.0),
                         resp[1]);
    });
    for (int spin = 0;
         spin < 500 && svc.counters().coalesced < 1; spin++)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(svc.counters().coalesced, 1u);

    svc.requestStop();
    for (auto &t : pair)
        t.join();
    for (const std::string &r : resp)
        EXPECT_TRUE(r.find("cancelled") != std::string::npos ||
                    r.find("timed_out") != std::string::npos) << r;
    const ServiceCounters sc = svc.counters();
    EXPECT_EQ(sc.computed, 1u);
    EXPECT_EQ(sc.coalesced, 1u);
    svc.shutdown();
}

TEST(SweepService, StoreHitsSurviveRestartByteIdentically)
{
    const std::string sock = socketPath("restart");
    TempFile storeFile("restart_store");
    std::string result1;
    {
        ServiceConfig cfg;
        cfg.socketPath = sock;
        cfg.workers = 2;
        cfg.storePath = storeFile.path();
        SweepService svc;
        ASSERT_TRUE(svc.start(cfg));
        ServiceClient c(sock);
        ASSERT_TRUE(c.connected());
        std::string resp;
        ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 11),
                                resp));
        JsonLineView v(resp);
        ASSERT_TRUE(v.getRaw("result", result1)) << resp;
        svc.requestStop();
        svc.shutdown();
    }
    // "Restart" the daemon on the same store file: the result must be
    // served from the recovered store without recomputing.
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 2;
    cfg.storePath = storeFile.path();
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));
    EXPECT_EQ(svc.store().stats().recoveredEntries, 1u);
    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;
    ASSERT_TRUE(c.roundTrip(runRequest("Filter", "Base", 11), resp));
    JsonLineView v(resp);
    bool cached = false;
    ASSERT_TRUE(v.getBool("cached", cached));
    EXPECT_TRUE(cached);
    std::string result2;
    ASSERT_TRUE(v.getRaw("result", result2));
    EXPECT_EQ(result2, result1);
    EXPECT_EQ(svc.counters().computed, 0u);

    // Stats endpoint exposes the attestation counters.
    ASSERT_TRUE(c.roundTrip("{\"op\":\"stats\"}", resp));
    JsonLineView sv(resp);
    ASSERT_TRUE(sv.valid()) << resp;
    std::string svcRaw;
    ASSERT_TRUE(sv.getRaw("service", svcRaw));
    JsonLineView inner(svcRaw);
    uint64_t computed = 99, hits = 0;
    ASSERT_TRUE(inner.getU64("computed", computed));
    EXPECT_EQ(computed, 0u);
    ASSERT_TRUE(inner.getU64("store_hits", hits));
    EXPECT_EQ(hits, 1u);

    svc.requestStop();
    svc.shutdown();
}

TEST(SweepService, OversizedRequestLineRejectedWithStructuredError)
{
    const std::string sock = socketPath("big");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 1;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    // A well-formed small request on the same connection first, so the
    // cap provably applies per-line, not per-connection-lifetime.
    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;
    ASSERT_TRUE(c.roundTrip("{\"op\":\"ping\"}", resp));
    EXPECT_NE(resp.find("\"pong\""), std::string::npos);

    // Now stream >1 MiB with no newline: the server must answer with a
    // structured request_too_large error and close — never buffer
    // without bound, never just drop the connection silently.
    std::string blob((1u << 20) + 65536, 'x');
    ASSERT_TRUE(c.sendRaw(blob));
    ASSERT_TRUE(c.readLine(resp)) << "no error line before close";
    EXPECT_NE(resp.find("request_too_large"), std::string::npos)
        << resp;
    EXPECT_TRUE(c.waitForClose());

    // The drop is observable: counted and surfaced through stats.
    EXPECT_EQ(svc.counters().requestTooLarge, 1u);
    ServiceClient c2(sock);
    ASSERT_TRUE(c2.connected());
    ASSERT_TRUE(c2.roundTrip("{\"op\":\"stats\"}", resp));
    EXPECT_NE(resp.find("\"request_too_large\":1"), std::string::npos)
        << resp;

    svc.requestStop();
    svc.shutdown();
}

TEST(SweepService, IdleConnectionsAreReapedAndCounted)
{
    const std::string sock = socketPath("idle");
    ServiceConfig cfg;
    cfg.socketPath = sock;
    cfg.workers = 1;
    cfg.idleTimeoutMs = 150.0;
    SweepService svc;
    ASSERT_TRUE(svc.start(cfg));

    ServiceClient c(sock);
    ASSERT_TRUE(c.connected());
    std::string resp;
    // Activity resets the idle clock; the connection must survive a
    // request-response exchange untouched.
    ASSERT_TRUE(c.roundTrip("{\"op\":\"ping\"}", resp));
    EXPECT_NE(resp.find("\"pong\""), std::string::npos);

    // Then go silent: the server closes us within the timeout (plus
    // poll granularity) instead of pinning the connection forever.
    EXPECT_TRUE(c.waitForClose());
    EXPECT_EQ(svc.counters().idleDisconnects, 1u);

    // A fresh, active connection still works and sees the counter.
    ServiceClient c2(sock);
    ASSERT_TRUE(c2.connected());
    ASSERT_TRUE(c2.roundTrip("{\"op\":\"stats\"}", resp));
    EXPECT_NE(resp.find("\"idle_disconnects\":1"), std::string::npos)
        << resp;

    svc.requestStop();
    svc.shutdown();
}

TEST(SweepService, CheckpointingServiceStillServesCorrectResults)
{
    // End-to-end smoke for the daemon checkpoint plumbing: a service
    // with a checkpoint dir computes the same bytes as one without,
    // writes its periodic checkpoint, removes it once the job's
    // outcome is store-worthy, and requestCheckpointAll() is safe to
    // call at any time (idle included — the daemon tick does).
    const std::string sockA = socketPath("ckpa");
    ServiceConfig plain;
    plain.socketPath = sockA;
    plain.workers = 1;
    SweepService a;
    ASSERT_TRUE(a.start(plain));
    ServiceClient ca(sockA);
    ASSERT_TRUE(ca.connected());
    std::string respA;
    ASSERT_TRUE(ca.roundTrip(runRequest("Filter", "ISRF4", 3), respA));
    a.requestStop();
    a.shutdown();

    const std::string sockB = socketPath("ckpb");
    const std::string dir = ::testing::TempDir() + "isrf_svc_ckpt_" +
        std::to_string(::getpid());
    ServiceConfig ck = plain;
    ck.socketPath = sockB;
    ck.checkpointDir = dir;
    ck.checkpointEveryCycles = 1000;  // many saves within the job
    SweepService b;
    ASSERT_TRUE(b.start(ck));
    b.requestCheckpointAll();  // idle: must be a safe no-op
    ServiceClient cb(sockB);
    ASSERT_TRUE(cb.connected());
    std::string respB;
    ASSERT_TRUE(cb.roundTrip(runRequest("Filter", "ISRF4", 3), respB));

    JsonLineView va(respA), vb(respB);
    std::string ra, rb;
    ASSERT_TRUE(va.getRaw("result", ra));
    ASSERT_TRUE(vb.getRaw("result", rb));
    EXPECT_EQ(ra, rb);
    EXPECT_GE(b.counters().checkpointSaves, 1u);
    EXPECT_EQ(b.counters().checkpointRestores, 0u);

    // Done outcome -> checkpoint file cleaned up; only the dir stays.
    ASSERT_TRUE(cb.roundTrip("{\"op\":\"stats\"}", respB));
    EXPECT_NE(respB.find("\"checkpoint_saves\""), std::string::npos);
    b.requestStop();
    b.shutdown();
    ::rmdir(dir.c_str());  // fails (and the test with it) if non-empty
    struct stat st;
    EXPECT_NE(::stat(dir.c_str(), &st), 0) << "checkpoint dir not "
        "empty after a replayable outcome";
}

} // namespace
} // namespace isrf
