/**
 * @file
 * Tests for the memory system: DRAM functional storage + bandwidth
 * model, the vector cache, and stream load/store/gather/scatter through
 * the MemorySystem into the SRF.
 */
#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace isrf {
namespace {

TEST(Dram, FunctionalRoundtrip)
{
    DramConfig cfg;
    cfg.capacityWords = 1024;
    Dram d(cfg);
    d.write(100, 0xabcd);
    EXPECT_EQ(d.read(100), 0xabcdu);
    d.fill(10, {1, 2, 3});
    EXPECT_EQ(d.dump(10, 3), (std::vector<Word>{1, 2, 3}));
    EXPECT_DEATH(d.read(2000), "out of range");
}

TEST(Dram, BandwidthTokenBucket)
{
    DramConfig cfg;
    cfg.capacityWords = 64;
    cfg.wordsPerCycle = 2.0;
    cfg.burstTokens = 4.0;
    Dram d(cfg);
    uint64_t total = 0;
    for (int i = 0; i < 100; i++) {
        d.tick();
        total += d.requestWords(100, true);
    }
    // ~2 words per cycle sustained (+ initial burst).
    EXPECT_GE(total, 195u);
    EXPECT_LE(total, 205u);
    EXPECT_EQ(d.wordsTransferred(), total);
}

TEST(Dram, RandomAccessCostsMore)
{
    DramConfig cfg;
    cfg.capacityWords = 64;
    cfg.wordsPerCycle = 2.0;
    cfg.randomCostFactor = 2.0;
    Dram d(cfg);
    uint64_t total = 0;
    for (int i = 0; i < 100; i++) {
        d.tick();
        total += d.requestWords(100, false);
    }
    EXPECT_GE(total, 95u);
    EXPECT_LE(total, 105u);
    EXPECT_EQ(d.randomWords(), total);
    EXPECT_EQ(d.seqWords(), 0u);
}

TEST(Dram, TryConsumeExactAllOrNothing)
{
    DramConfig cfg;
    cfg.capacityWords = 64;
    cfg.wordsPerCycle = 1.0;
    cfg.burstTokens = 2.0;
    Dram d(cfg);
    d.tick();  // 1 token
    EXPECT_FALSE(d.tryConsumeExact(2, true));
    d.tick();  // 2 tokens
    EXPECT_TRUE(d.tryConsumeExact(2, true));
    EXPECT_EQ(d.wordsTransferred(), 2u);
}

TEST(Cache, HitAfterMiss)
{
    Cache c;
    EXPECT_FALSE(c.probe(42));
    auto r1 = c.access(42, false);
    EXPECT_FALSE(r1.hit);
    EXPECT_TRUE(c.probe(42));
    auto r2 = c.access(42, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    CacheConfig cfg;
    cfg.capacityWords = 16;  // 8 lines, 2 sets x 4 ways (line=2 words)
    Cache c(cfg);
    uint32_t sets = c.numSets();
    ASSERT_EQ(sets, 2u);
    // Fill set 0 with 4 lines, then touch the first to refresh LRU.
    for (uint64_t i = 0; i < 4; i++)
        c.access(i * sets, false);
    c.access(0, false);  // line 0 most recent
    // Allocate a 5th line in set 0: evicts line addressed sets*1 (LRU).
    c.access(4 * sets, false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1 * sets));
    EXPECT_TRUE(c.probe(2 * sets));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    CacheConfig cfg;
    cfg.capacityWords = 16;
    Cache c(cfg);
    uint32_t sets = c.numSets();
    c.access(0, true);  // dirty
    for (uint64_t i = 1; i < 4; i++)
        c.access(i * sets, false);
    auto r = c.access(4 * sets, false);  // evicts dirty line 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.evictedLineAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c;
    c.access(7, false);
    c.flush();
    EXPECT_FALSE(c.probe(7));
}

/** Fixture wiring MemorySystem + Srf for end-to-end transfers. */
class MemSysTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        geom_ = SrfGeometry{};
        srf_.init(geom_, SrfMode::SequentialOnly, nullptr);
        MemSystemConfig mc;
        DramConfig dc;
        dc.capacityWords = 1 << 16;
        dc.accessLatency = 4;
        CacheConfig cc;
        mem_.init(mc, dc, cc, &srf_);
    }

    void
    runCycles(uint32_t n)
    {
        for (uint32_t i = 0; i < n; i++) {
            srf_.beginCycle(now_);
            mem_.tick(now_);
            srf_.endCycle(now_);
            now_++;
        }
    }

    SlotId
    openStriped(uint32_t words, uint32_t base)
    {
        SlotConfig cfg;
        cfg.layout = StreamLayout::Striped;
        cfg.base = base;
        cfg.lengthWords = words;
        return srf_.openSlot(cfg);
    }

    SrfGeometry geom_;
    Srf srf_;
    MemorySystem mem_;
    Cycle now_ = 0;
};

TEST_F(MemSysTest, LoadMovesDataIntoSrf)
{
    std::vector<Word> data(256);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i ^ 0x55);
    mem_.dram().fill(1000, data);
    SlotId slot = openStriped(256, 0);

    MemOp op;
    op.kind = MemOpKind::Load;
    op.memBase = 1000;
    op.srfSlot = slot;
    MemOpId id = mem_.submit(op);
    EXPECT_FALSE(mem_.done(id));
    runCycles(400);
    EXPECT_TRUE(mem_.done(id));
    EXPECT_TRUE(mem_.idle());
    EXPECT_EQ(srf_.dumpSlot(slot), data);
    EXPECT_EQ(mem_.dram().wordsTransferred(), 256u);
}

TEST_F(MemSysTest, StoreMovesDataToDram)
{
    SlotId slot = openStriped(128, 0);
    std::vector<Word> data(128);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 7);
    srf_.fillSlot(slot, data);

    MemOp op;
    op.kind = MemOpKind::Store;
    op.memBase = 5000;
    op.srfSlot = slot;
    MemOpId id = mem_.submit(op);
    runCycles(300);
    EXPECT_TRUE(mem_.done(id));
    EXPECT_EQ(mem_.dram().dump(5000, 128), data);
}

TEST_F(MemSysTest, GatherCollectsIndexedRecords)
{
    std::vector<Word> table(8192);
    for (size_t i = 0; i < table.size(); i++)
        table[i] = static_cast<Word>(i + 9000);
    mem_.dram().fill(0, table);
    SlotId slot = openStriped(8, 0);

    MemOp op;
    op.kind = MemOpKind::Gather;
    op.memBase = 0;
    op.srfSlot = slot;
    op.indices = {5, 100, 3, 8191, 0, 7, 7, 5200};
    MemOpId id = mem_.submit(op);
    runCycles(300);
    ASSERT_TRUE(mem_.done(id));
    auto out = srf_.dumpSlot(slot);
    EXPECT_EQ(out[0], 9005u);
    EXPECT_EQ(out[1], 9100u);
    EXPECT_EQ(out[3], 9000u + 8191u);
    EXPECT_EQ(out[6], 9007u);
    // A gather spanning a large footprint pays the random-access cost.
    EXPECT_EQ(mem_.dram().randomWords(), 8u);
}

TEST_F(MemSysTest, SmallFootprintGatherRunsAtStreamCost)
{
    std::vector<Word> table(256, 3);
    mem_.dram().fill(0, table);
    SlotId slot = openStriped(8, 0);
    MemOp op;
    op.kind = MemOpKind::Gather;
    op.memBase = 0;
    op.srfSlot = slot;
    op.indices = {1, 2, 3, 4, 250, 6, 7, 8};
    mem_.submit(op);
    runCycles(300);
    // Table-sized footprints hit open DRAM rows: sequential cost.
    EXPECT_EQ(mem_.dram().randomWords(), 0u);
    EXPECT_EQ(mem_.dram().seqWords(), 8u);
}

TEST_F(MemSysTest, GatherWithDstOffsetAppends)
{
    std::vector<Word> table(8192);
    for (size_t i = 0; i < table.size(); i++)
        table[i] = static_cast<Word>(i);
    mem_.dram().fill(0, table);
    SlotId slot = openStriped(16, 0);
    srf_.fillSlot(slot, std::vector<Word>(16, 0xeeee));

    MemOp op;
    op.kind = MemOpKind::Gather;
    op.memBase = 0;
    op.srfSlot = slot;
    op.indices = {7000, 6000};
    op.dstOffsetWords = 8;
    mem_.submit(op);
    runCycles(300);
    auto out = srf_.dumpSlot(slot);
    EXPECT_EQ(out[0], 0xeeeeu);  // untouched prefix
    EXPECT_EQ(out[8], 7000u);
    EXPECT_EQ(out[9], 6000u);
}

TEST_F(MemSysTest, ScatterWritesIndexedRecords)
{
    SlotId slot = openStriped(4, 0);
    srf_.fillSlot(slot, {11, 22, 33, 44});
    MemOp op;
    op.kind = MemOpKind::Scatter;
    op.memBase = 2000;
    op.srfSlot = slot;
    op.indices = {9, 0, 30, 2};
    MemOpId id = mem_.submit(op);
    runCycles(300);
    ASSERT_TRUE(mem_.done(id));
    EXPECT_EQ(mem_.dram().read(2009), 11u);
    EXPECT_EQ(mem_.dram().read(2000), 22u);
    EXPECT_EQ(mem_.dram().read(2030), 33u);
    EXPECT_EQ(mem_.dram().read(2002), 44u);
}

TEST_F(MemSysTest, TwoUnitsOverlapOps)
{
    SlotId a = openStriped(512, 0);
    SlotId b = openStriped(512, 256);
    MemOp op1;
    op1.kind = MemOpKind::Load;
    op1.memBase = 0;
    op1.srfSlot = a;
    MemOp op2;
    op2.kind = MemOpKind::Load;
    op2.memBase = 4096;
    op2.srfSlot = b;
    mem_.submit(op1);
    mem_.submit(op2);
    runCycles(3);
    EXPECT_EQ(mem_.inFlight(), 2u);
    runCycles(800);
    EXPECT_TRUE(mem_.idle());
}

TEST_F(MemSysTest, OpsQueueBeyondUnits)
{
    SlotId s[3];
    for (int i = 0; i < 3; i++)
        s[i] = openStriped(64, static_cast<uint32_t>(i) * 64);
    for (int i = 0; i < 3; i++) {
        MemOp op;
        op.kind = MemOpKind::Load;
        op.memBase = static_cast<uint64_t>(i) * 128;
        op.srfSlot = s[i];
        mem_.submit(op);
    }
    EXPECT_EQ(mem_.inFlight(), 3u);
    runCycles(600);
    EXPECT_TRUE(mem_.idle());
}

/** Cache-enabled memory system. */
class CachedMemTest : public MemSysTest
{
  protected:
    void
    SetUp() override
    {
        geom_ = SrfGeometry{};
        srf_.init(geom_, SrfMode::SequentialOnly, nullptr);
        MemSystemConfig mc;
        mc.cacheEnabled = true;
        DramConfig dc;
        dc.capacityWords = 1 << 16;
        dc.accessLatency = 4;
        CacheConfig cc;
        mem_.init(mc, dc, cc, &srf_);
    }
};

TEST_F(CachedMemTest, RepeatedGatherHitsInCache)
{
    std::vector<Word> table(256);
    for (size_t i = 0; i < table.size(); i++)
        table[i] = static_cast<Word>(i);
    mem_.dram().fill(0, table);
    SlotId slot = openStriped(64, 0);

    std::vector<uint32_t> idx(64);
    for (size_t i = 0; i < idx.size(); i++)
        idx[i] = static_cast<uint32_t>((i * 13) % 256);

    MemOp op;
    op.kind = MemOpKind::Gather;
    op.memBase = 0;
    op.srfSlot = slot;
    op.indices = idx;
    op.cached = true;
    mem_.submit(op);
    runCycles(400);
    uint64_t traffic1 = mem_.dram().wordsTransferred();

    // Same gather again: lines are resident, so almost no new DRAM
    // traffic.
    mem_.submit(op);
    runCycles(400);
    uint64_t traffic2 = mem_.dram().wordsTransferred() - traffic1;
    EXPECT_GT(traffic1, 60u);
    EXPECT_LT(traffic2, traffic1 / 4);
    EXPECT_GT(mem_.cache().hits(), 50u);
}

TEST_F(CachedMemTest, UncachedOpsBypassCache)
{
    std::vector<Word> data(128, 3);
    mem_.dram().fill(0, data);
    SlotId slot = openStriped(128, 0);
    MemOp op;
    op.kind = MemOpKind::Load;
    op.memBase = 0;
    op.srfSlot = slot;
    op.cached = false;
    mem_.submit(op);
    runCycles(300);
    EXPECT_EQ(mem_.cache().hits() + mem_.cache().misses(), 0u);
}

} // namespace
} // namespace isrf
