/**
 * @file
 * Tests for the iterative modulo scheduler, including the property
 * checks that every schedule respects dependence and resource
 * constraints, and the Figure 14 behaviour: schedule length of kernels
 * with loop-carried index dependencies grows with the address/data
 * separation while software-pipelineable kernels stay flat.
 */
#include <gtest/gtest.h>

#include <map>

#include "kernel/builder.h"
#include "kernel/scheduler.h"

namespace isrf {
namespace {

/** A simple FIR-ish kernel with no recurrences. */
KernelGraph
makeStraightKernel()
{
    KernelBuilder b("straight");
    auto in = b.seqIn("in");
    auto out = b.seqOut("out");
    auto x = b.read(in);
    auto c = b.constFloat(1.5f);
    auto y = b.fmul(x, c);
    auto z = b.fadd(y, x);
    b.write(out, z);
    return b.build();
}

/** An indexed-lookup kernel whose index is on a recurrence. */
KernelGraph
makeRecurrentLookup()
{
    KernelBuilder b("rec_lookup");
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("lut");
    auto out = b.seqOut("out");
    auto prev = b.carryIn();
    auto x = b.read(in);
    auto idx = b.ixor(x, prev);
    auto v = b.readIdx(lut, idx);
    b.carryOut(prev, v, 1);
    b.write(out, v);
    return b.build();
}

/** An indexed-lookup kernel with no recurrence (pipelineable). */
KernelGraph
makeFreeLookup()
{
    KernelBuilder b("free_lookup");
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("lut");
    auto out = b.seqOut("out");
    auto x = b.read(in);
    auto v = b.readIdx(lut, x);
    b.write(out, b.iadd(v, x));
    return b.build();
}

/** Verify every dependence edge and resource constraint in a schedule. */
void
checkScheduleLegal(const KernelGraph &g, const KernelSchedule &s,
                   const ClusterResources &res, uint32_t sep)
{
    ASSERT_EQ(s.opCycle.size(), g.nodeCount());
    // Dependences: sched[to] >= sched[from] + lat - II*dist.
    for (const Edge &e : g.fullEdges(sep)) {
        int64_t lhs = static_cast<int64_t>(s.opCycle[e.to]);
        int64_t rhs = static_cast<int64_t>(s.opCycle[e.from]) +
            static_cast<int64_t>(e.latency) -
            static_cast<int64_t>(s.ii) * static_cast<int64_t>(e.distance);
        EXPECT_GE(lhs, rhs) << "edge " << e.from << "->" << e.to;
    }
    // Resources: per modulo slot occupancy within capacity.
    std::map<std::pair<int, uint32_t>, uint32_t> use;  // (class, slot)
    for (NodeId id = 0; id < g.nodeCount(); id++) {
        const OpInfo &info = opInfo(g.node(id).op);
        if (info.fu == FuClass::None)
            continue;
        uint32_t dur = info.pipelined ? 1 : info.latency;
        for (uint32_t d = 0; d < dur; d++) {
            uint32_t slot = (s.opCycle[id] + d) % s.ii;
            use[{static_cast<int>(info.fu), slot}]++;
        }
    }
    for (const auto &kv : use) {
        uint32_t cap = 0;
        switch (static_cast<FuClass>(kv.first.first)) {
          case FuClass::Alu: cap = res.aluSlots; break;
          case FuClass::Div: cap = res.divSlots; break;
          case FuClass::Comm: cap = res.commSlots; break;
          case FuClass::Sbuf: cap = res.sbufSlots; break;
          case FuClass::Sp: cap = res.spSlots; break;
          default: cap = 1; break;
        }
        EXPECT_LE(kv.second, cap);
    }
}

TEST(Scheduler, StraightKernelSchedules)
{
    KernelGraph g = makeStraightKernel();
    ClusterResources res;
    ModuloScheduler sched(res);
    KernelSchedule s = sched.schedule(g, 6);
    EXPECT_GE(s.ii, 1u);
    EXPECT_GE(s.length, s.ii);
    checkScheduleLegal(g, s, res, 6);
}

TEST(Scheduler, ResourceMinIIFromAluDemand)
{
    // 9 ALU ops over 4 slots -> ResMII >= 3.
    KernelBuilder b("alus");
    auto out = b.seqOut("o");
    Value v = b.constInt(1);
    for (int i = 0; i < 9; i++)
        v = b.iadd(v, v);
    b.write(out, v);
    KernelGraph g = b.build();
    ModuloScheduler sched;
    EXPECT_GE(sched.resourceMinII(g), 3u);
}

TEST(Scheduler, UnpipelinedDividerDominatesII)
{
    KernelBuilder b("div");
    auto in = b.seqIn("i");
    auto out = b.seqOut("o");
    auto x = b.read(in);
    b.write(out, b.fdiv(x, x));
    KernelGraph g = b.build();
    ModuloScheduler sched;
    // One unpipelined 17-cycle divide occupies the divider 17 cycles.
    EXPECT_GE(sched.resourceMinII(g), 17u);
    KernelSchedule s = sched.schedule(g, 6);
    EXPECT_GE(s.ii, 17u);
}

TEST(Scheduler, RecurrenceMinIIGrowsWithSeparation)
{
    KernelGraph g = makeRecurrentLookup();
    ModuloScheduler sched;
    uint32_t prev = 0;
    for (uint32_t sep : {2u, 4u, 6u, 8u, 10u}) {
        uint32_t mii = sched.recurrenceMinII(g, sep);
        EXPECT_GE(mii, prev);
        prev = mii;
    }
    // The recurrence includes the separation edge, so RecMII must be at
    // least sep for large sep.
    EXPECT_GE(sched.recurrenceMinII(g, 10), 10u);
}

TEST(Scheduler, Figure14Shape)
{
    // Loop-carried kernel: II grows ~linearly with separation.
    // Free kernel: II stays flat.
    KernelGraph rec = makeRecurrentLookup();
    KernelGraph free = makeFreeLookup();
    ModuloScheduler sched;
    uint32_t recIi2 = sched.schedule(rec, 2).ii;
    uint32_t recIi10 = sched.schedule(rec, 10).ii;
    uint32_t freeIi2 = sched.schedule(free, 2).ii;
    uint32_t freeIi10 = sched.schedule(free, 10).ii;
    EXPECT_GT(recIi10, recIi2);
    EXPECT_GE(recIi10, 10u);
    EXPECT_EQ(freeIi2, freeIi10);
}

TEST(Scheduler, SeparationIncreasesFlatLengthNotII)
{
    KernelGraph g = makeFreeLookup();
    ModuloScheduler sched;
    KernelSchedule s2 = sched.schedule(g, 2);
    KernelSchedule s10 = sched.schedule(g, 10);
    EXPECT_EQ(s2.ii, s10.ii);
    EXPECT_GT(s10.length, s2.length);
    EXPECT_GT(s10.stages(), s2.stages());
}

class ScheduleLegality : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ScheduleLegality, AllKernelsLegalAtSeparation)
{
    uint32_t sep = GetParam();
    ClusterResources res;
    ModuloScheduler sched(res);
    for (auto maker : {makeStraightKernel, makeRecurrentLookup,
                       makeFreeLookup}) {
        KernelGraph g = maker();
        KernelSchedule s = sched.schedule(g, sep);
        checkScheduleLegal(g, s, res, sep);
    }
}

INSTANTIATE_TEST_SUITE_P(Separations, ScheduleLegality,
                         ::testing::Values(2, 4, 6, 8, 10, 16, 20, 24));

TEST(Scheduler, PerStreamIdxIssueLimit)
{
    // Two indexed reads on the SAME stream can only issue one address
    // per cycle (§5.3), so II >= 2.
    KernelBuilder b("dual");
    auto lut = b.idxlIn("lut");
    auto out = b.seqOut("o");
    auto v1 = b.readIdx(lut, b.constInt(0));
    auto v2 = b.readIdx(lut, b.constInt(1));
    b.write(out, b.iadd(v1, v2));
    KernelGraph g = b.build();
    ModuloScheduler sched;
    EXPECT_GE(sched.resourceMinII(g), 2u);
}

TEST(Scheduler, TwoStreamsCanIssueTogether)
{
    // One read on each of two different streams: ResMII from the
    // idx-issue port is 1.
    KernelBuilder b("two_streams");
    auto lutA = b.idxlIn("a");
    auto lutB = b.idxlIn("b");
    auto out = b.seqOut("o");
    auto v1 = b.readIdx(lutA, b.constInt(0));
    auto v2 = b.readIdx(lutB, b.constInt(1));
    b.write(out, b.iadd(v1, v2));
    KernelGraph g = b.build();
    ModuloScheduler sched;
    KernelSchedule s = sched.schedule(g, 6);
    EXPECT_LE(s.ii, 2u);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    KernelGraph g = makeRecurrentLookup();
    ModuloScheduler s1({}, 99), s2({}, 99);
    KernelSchedule a = s1.schedule(g, 6);
    KernelSchedule b2 = s2.schedule(g, 6);
    EXPECT_EQ(a.ii, b2.ii);
    EXPECT_EQ(a.opCycle, b2.opCycle);
}

TEST(Scheduler, EmptyGraph)
{
    KernelGraph g("empty");
    ModuloScheduler sched;
    KernelSchedule s = sched.schedule(g, 6);
    EXPECT_EQ(s.ii, 1u);
}

} // namespace
} // namespace isrf
