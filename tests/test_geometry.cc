/**
 * @file
 * Geometry-sweep tests: the SRF/machine models are parametric in lane
 * count, sequential width and capacity — not hard-wired to the paper's
 * Table 3 point. (The paper's scalability discussion [27] motivates
 * supporting other organizations.)
 */
#include <gtest/gtest.h>

#include "test_helpers.h"

namespace isrf {
namespace {

struct Geom
{
    uint32_t lanes;
    uint32_t seqWidth;
    uint32_t subArrays;
};

class GeometrySweep : public ::testing::TestWithParam<Geom>
{
};

TEST_P(GeometrySweep, SequentialRoundtripAtAnyGeometry)
{
    Geom p = GetParam();
    SrfGeometry g;
    g.lanes = p.lanes;
    g.seqWidth = p.seqWidth;
    g.subArrays = p.subArrays;
    g.laneWords = 1024;
    Srf srf;
    srf.init(g, SrfMode::Indexed4, nullptr);

    SlotConfig cfg;
    cfg.layout = StreamLayout::Striped;
    cfg.lengthWords = 4 * p.lanes * p.seqWidth + 3;  // ragged tail
    SlotId id = srf.openSlot(cfg);
    std::vector<Word> data(cfg.lengthWords);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 7 + 1);
    srf.fillSlot(id, data);
    EXPECT_EQ(srf.dumpSlot(id), data);

    // Stream it through the buffers.
    Cycle now = 0;
    std::vector<std::vector<Word>> seen(p.lanes);
    for (int c = 0; c < 200; c++) {
        srf.beginCycle(now);
        for (uint32_t l = 0; l < p.lanes; l++)
            while (srf.seqCanRead(l, id))
                seen[l].push_back(srf.seqRead(l, id));
        srf.endCycle(now);
        now++;
    }
    uint64_t total = 0;
    for (const auto &v : seen)
        total += v.size();
    EXPECT_EQ(total, data.size());
    // Lane 0's first word is element 0; lane 1's is element m.
    EXPECT_EQ(seen[0][0], data[0]);
    if (p.lanes > 1)
        EXPECT_EQ(seen[1][0], data[p.seqWidth]);
}

TEST_P(GeometrySweep, IndexedReadsWorkAtAnyGeometry)
{
    Geom p = GetParam();
    SrfGeometry g;
    g.lanes = p.lanes;
    g.seqWidth = p.seqWidth;
    g.subArrays = p.subArrays;
    g.laneWords = 1024;
    Srf srf;
    srf.init(g, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.layout = StreamLayout::PerLane;
    cfg.lengthWords = 64;
    SlotId id = srf.openSlot(cfg);
    for (uint32_t l = 0; l < p.lanes; l++)
        for (uint32_t w = 0; w < 64; w++)
            srf.writeWord(l, w, l * 100 + w);

    Cycle now = 0;
    srf.beginCycle(now);
    for (uint32_t l = 0; l < p.lanes; l++)
        ASSERT_TRUE(srf.idxIssueRead(l, id, l % 64));
    srf.endCycle(now);
    now++;
    for (int c = 0; c < 20; c++) {
        srf.beginCycle(now);
        srf.endCycle(now);
        now++;
    }
    Word out[4];
    for (uint32_t l = 0; l < p.lanes; l++) {
        ASSERT_TRUE(srf.idxDataReady(l, id, now)) << "lane " << l;
        srf.idxDataPop(l, id, out);
        EXPECT_EQ(out[0], l * 100 + (l % 64));
    }
}

TEST_P(GeometrySweep, CopyKernelMachineAtAnyLaneCount)
{
    Geom p = GetParam();
    MachineConfig cfg = MachineConfig::base();
    cfg.srf.lanes = p.lanes;
    cfg.srf.seqWidth = p.seqWidth;
    cfg.srf.subArrays = p.subArrays;
    cfg.srf.laneWords = 1024;
    cfg.dram.capacityWords = 1 << 16;
    Machine m;
    m.init(cfg);
    SlotConfig ic, oc;
    ic.lengthWords = 16 * p.lanes * p.seqWidth;
    oc.lengthWords = ic.lengthWords;
    oc.base = 512;
    SlotId in = m.srf().openSlot(ic);
    SlotId out = m.srf().openSlot(oc);
    std::vector<Word> data(ic.lengthWords);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i ^ 0xa5);
    m.srf().fillSlot(in, data);
    KernelGraph g = test::makeCopyKernel();
    m.launchKernel(test::makeCopyInvocation(m, &g, in, out, data));
    m.runUntil([&]() { return !m.kernelActive(); }, 500000);
    EXPECT_EQ(m.srf().dumpSlot(out), data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(Geom{2, 4, 4}, Geom{4, 4, 2}, Geom{8, 4, 4},
                      Geom{16, 4, 4}, Geom{8, 8, 4}, Geom{4, 2, 8}),
    [](const auto &info) {
        return "L" + std::to_string(info.param.lanes) + "m" +
            std::to_string(info.param.seqWidth) + "s" +
            std::to_string(info.param.subArrays);
    });

} // namespace
} // namespace isrf
