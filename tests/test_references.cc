/**
 * @file
 * Tests of the workload functional layers against independent
 * references: FFT vs direct DFT, AES vs FIPS-197, S-box/GF algebra,
 * convolution, graph generation, and the Table 4 strip-size model.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "util/random.h"
#include "workloads/fft.h"
#include "workloads/filter.h"
#include "workloads/igraph.h"
#include "workloads/rijndael.h"

namespace isrf {
namespace {

// ----------------------------------------------------------------------
// FFT
// ----------------------------------------------------------------------

TEST(FftRef, BitReverse)
{
    EXPECT_EQ(bitReverse(0, 6), 0u);
    EXPECT_EQ(bitReverse(1, 6), 32u);
    EXPECT_EQ(bitReverse(0b101101, 6), 0b101101u);
    EXPECT_EQ(bitReverse(0b100000, 6), 1u);
    for (uint32_t v = 0; v < 64; v++)
        EXPECT_EQ(bitReverse(bitReverse(v, 6), 6), v);
}

TEST(FftRef, Fft1dMatchesDirectDft)
{
    Rng rng(1);
    std::vector<Cplx> a(64);
    for (auto &c : a)
        c = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));
    auto fast = fft1d(a);
    auto slow = dft1dReference(a);
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-3f) << i;
        EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-3f) << i;
    }
}

TEST(FftRef, Fft1dOfImpulseIsFlat)
{
    std::vector<Cplx> a(32, Cplx(0, 0));
    a[0] = Cplx(1, 0);
    auto f = fft1d(a);
    for (const auto &c : f) {
        EXPECT_NEAR(c.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(c.imag(), 0.0f, 1e-5f);
    }
}

TEST(FftRef, Fft1dOfConstantIsImpulse)
{
    std::vector<Cplx> a(32, Cplx(1, 0));
    auto f = fft1d(a);
    EXPECT_NEAR(f[0].real(), 32.0f, 1e-3f);
    for (size_t i = 1; i < f.size(); i++)
        EXPECT_NEAR(std::abs(f[i]), 0.0f, 1e-3f);
}

TEST(FftRef, LinearityProperty)
{
    Rng rng(2);
    std::vector<Cplx> a(64), b(64), sum(64);
    for (size_t i = 0; i < 64; i++) {
        a[i] = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));
        b[i] = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));
        sum[i] = a[i] + b[i];
    }
    auto fa = fft1d(a), fb = fft1d(b), fs = fft1d(sum);
    for (size_t i = 0; i < 64; i++)
        EXPECT_NEAR(std::abs(fs[i] - fa[i] - fb[i]), 0.0f, 1e-3f);
}

TEST(FftRef, ParsevalProperty2d)
{
    Rng rng(3);
    const uint32_t n = 16;
    std::vector<Cplx> a(n * n);
    double timeEnergy = 0;
    for (auto &c : a) {
        c = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));
        timeEnergy += std::norm(c);
    }
    auto f = fft2dReference(a, n);
    double freqEnergy = 0;
    for (const auto &c : f)
        freqEnergy += std::norm(c);
    EXPECT_NEAR(freqEnergy / (n * n), timeEnergy,
                1e-3 * timeEnergy + 1e-6);
}

// ----------------------------------------------------------------------
// AES / Rijndael
// ----------------------------------------------------------------------

TEST(AesRef, GfMulBasics)
{
    EXPECT_EQ(aesGfMul(0x57, 0x01), 0x57);
    EXPECT_EQ(aesGfMul(0x57, 0x02), 0xae);
    EXPECT_EQ(aesGfMul(0x57, 0x13), 0xfe);  // FIPS-197 example
    EXPECT_EQ(aesGfMul(0, 0xff), 0);
}

TEST(AesRef, SboxKnownValues)
{
    const auto &sb = aesSbox();
    EXPECT_EQ(sb[0x00], 0x63);
    EXPECT_EQ(sb[0x01], 0x7c);
    EXPECT_EQ(sb[0x53], 0xed);
    EXPECT_EQ(sb[0xff], 0x16);
}

TEST(AesRef, SboxIsAPermutation)
{
    const auto &sb = aesSbox();
    std::vector<int> seen(256, 0);
    for (int i = 0; i < 256; i++)
        seen[sb[i]]++;
    for (int i = 0; i < 256; i++)
        EXPECT_EQ(seen[i], 1) << i;
}

TEST(AesRef, TeTablesDeriveFromSbox)
{
    const auto &sb = aesSbox();
    for (int x = 0; x < 256; x += 17) {
        uint32_t t0 = aesTe(0)[x];
        uint8_t s = sb[x];
        EXPECT_EQ((t0 >> 16) & 0xff, s);
        EXPECT_EQ((t0 >> 24) & 0xff, aesGfMul(s, 2));
        EXPECT_EQ(t0 & 0xff, static_cast<uint32_t>(aesGfMul(s, 2) ^ s));
        // Tei are byte rotations of each other's layout.
        EXPECT_EQ((aesTe(1)[x] >> 24) & 0xff,
                  static_cast<uint32_t>(aesGfMul(s, 2) ^ s));
    }
}

TEST(AesRef, Fips197AppendixB)
{
    // Key 2b7e...3c, plaintext 3243f6a8885a308d313198a2e0370734.
    std::array<uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                   0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                   0x09, 0xcf, 0x4f, 0x3c};
    std::array<uint8_t, 16> pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                  0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                  0xe0, 0x37, 0x07, 0x34};
    const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                0x19, 0x6a, 0x0b, 0x32};
    auto ct = aesEncryptBlock128(aesExpandKey128(key), pt);
    EXPECT_EQ(std::memcmp(ct.data(), expect, 16), 0);
}

TEST(AesRef, Fips197AppendixC1)
{
    std::array<uint8_t, 16> key{}, pt{};
    for (int i = 0; i < 16; i++) {
        key[i] = static_cast<uint8_t>(i);
        pt[i] = static_cast<uint8_t>(0x11 * i);
    }
    const uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                0x70, 0xb4, 0xc5, 0x5a};
    auto ct = aesEncryptBlock128(aesExpandKey128(key), pt);
    EXPECT_EQ(std::memcmp(ct.data(), expect, 16), 0);
}

TEST(AesRef, KeyExpansionFirstAndLastWords)
{
    // FIPS-197 A.1 expansion of 2b7e...3c.
    std::array<uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                   0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                   0x09, 0xcf, 0x4f, 0x3c};
    auto rk = aesExpandKey128(key);
    EXPECT_EQ(rk[0], 0x2b7e1516u);
    EXPECT_EQ(rk[4], 0xa0fafe17u);
    EXPECT_EQ(rk[43], 0xb6630ca6u);
}

TEST(AesRef, CbcChainsBlocks)
{
    std::array<uint8_t, 16> key{}, iv{};
    for (int i = 0; i < 16; i++)
        key[i] = static_cast<uint8_t>(i * 3);
    std::vector<std::array<uint8_t, 16>> blocks(3);
    auto out1 = aesCbcEncrypt128(key, iv, blocks);
    // With identical plaintext blocks, CBC ciphertexts must differ.
    EXPECT_NE(out1[0], out1[1]);
    EXPECT_NE(out1[1], out1[2]);
    // ECB equivalence for the first block with a zero IV.
    auto ecb = aesEncryptBlock128(aesExpandKey128(key), blocks[0]);
    EXPECT_EQ(out1[0], ecb);
}

TEST(AesRef, TraceRecords160LookupsPerBlock)
{
    std::array<uint8_t, 16> key{}, pt{};
    std::vector<std::array<uint8_t, 16>> idx;
    std::vector<std::array<uint32_t, 4>> st;
    aesEncryptBlock128(aesExpandKey128(key), pt, &idx, &st);
    EXPECT_EQ(idx.size(), 10u);  // 10 rounds x 16 indices
    EXPECT_EQ(st.size(), 10u);
}

// ----------------------------------------------------------------------
// Filter
// ----------------------------------------------------------------------

TEST(FilterRef, TapsSumToOne)
{
    float sum = 0;
    for (int dr = -2; dr <= 2; dr++)
        for (int dc = -2; dc <= 2; dc++)
            sum += filterTap(dr, dc);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(FilterRef, ConstantImageIsFixedPoint)
{
    std::vector<float> img(64 * 64, 3.5f);
    auto out = conv5x5Reference(img, 64);
    for (float v : out)
        EXPECT_NEAR(v, 3.5f, 1e-4f);
}

TEST(FilterRef, SmoothingReducesRange)
{
    Rng rng(4);
    std::vector<float> img(64 * 64);
    for (auto &p : img)
        p = rng.uniformf(0, 1);
    auto out = conv5x5Reference(img, 64);
    auto [inMin, inMax] = std::minmax_element(img.begin(), img.end());
    auto [outMin, outMax] = std::minmax_element(out.begin(), out.end());
    EXPECT_GE(*outMin, *inMin - 1e-5f);
    EXPECT_LE(*outMax, *inMax + 1e-5f);
    EXPECT_LT(*outMax - *outMin, *inMax - *inMin);
}

// ----------------------------------------------------------------------
// Irregular graph
// ----------------------------------------------------------------------

TEST(IgRef, DatasetsMatchTable4Parameters)
{
    ASSERT_EQ(igDatasets().size(), 4u);
    EXPECT_EQ(igDataset("IG_SML").fpOpsPerNeighbor, 16u);
    EXPECT_EQ(igDataset("IG_SML").avgDegree, 4u);
    EXPECT_EQ(igDataset("IG_SCL").fpOpsPerNeighbor, 51u);
    EXPECT_EQ(igDataset("IG_DMS").avgDegree, 16u);
    EXPECT_EQ(igDataset("IG_DCS").fpOpsPerNeighbor, 51u);
    EXPECT_DEATH(igDataset("IG_XXX"), "unknown dataset");
}

TEST(IgRef, GeneratedDegreeNearTarget)
{
    for (const auto &ds : igDatasets()) {
        IgGraph g = igGenerate(ds, 99);
        double avg = static_cast<double>(g.edges()) / g.nodes;
        EXPECT_NEAR(avg, ds.avgDegree, 0.2 * ds.avgDegree) << ds.name;
        for (uint32_t i = 0; i < g.nodes; i += 101)
            for (uint32_t nb : g.adj[i])
                EXPECT_LT(nb, g.nodes);
    }
}

TEST(IgRef, GenerationIsDeterministic)
{
    IgGraph a = igGenerate(igDataset("IG_SML"), 7);
    IgGraph b = igGenerate(igDataset("IG_SML"), 7);
    EXPECT_EQ(a.adj, b.adj);
    IgGraph c = igGenerate(igDataset("IG_SML"), 8);
    EXPECT_NE(a.adj, c.adj);
}

TEST(IgRef, StripSizesRoughlyDoubleForIndexed)
{
    for (const auto &ds : igDatasets()) {
        IgStripSizes s = igStripSizes(ds);
        double ratio = static_cast<double>(s.indexedNeighbors) /
            s.baseNeighbors;
        EXPECT_GE(ratio, 1.5) << ds.name;
        EXPECT_LE(ratio, 2.5) << ds.name;
    }
    // Sparse long-strip datasets land near the paper's 1163/2316.
    IgStripSizes sml = igStripSizes(igDataset("IG_SML"));
    EXPECT_NEAR(sml.baseNeighbors, 1163, 120);
    EXPECT_NEAR(sml.indexedNeighbors, 2316, 300);
}

TEST(IgRef, ReferenceUpdateUsesNeighbors)
{
    IgGraph g;
    g.nodes = 3;
    g.adj = {{1, 2}, {0}, {0}};
    std::vector<float> vals = {1.0f, 2.0f, 4.0f};
    auto out = igReferenceUpdate(g, vals);
    // node 0: 0.3*1 + 0.7*(0.625*2 + 0.625*4)
    EXPECT_NEAR(out[0], 0.3f + 0.7f * 0.625f * 6.0f, 1e-5f);
    EXPECT_NEAR(out[1], 0.3f * 2 + 0.7f * 0.625f * 1.0f, 1e-5f);
}

} // namespace
} // namespace isrf
