/**
 * @file
 * Fault-injection, ECC, retry, degradation and watchdog tests
 * (DESIGN.md §Fault model). Registered under the `fault` ctest label
 * so CI's fault-soak job can run exactly this suite.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/machine.h"
#include "core/report.h"
#include "core/stream_program.h"
#include "fault/ecc.h"
#include "fault/fault_config.h"
#include "fault/watchdog.h"
#include "mem/dram.h"
#include "srf/srf_bank.h"
#include "util/json.h"
#include "workloads/workload.h"

namespace isrf {
namespace {

/** Scoped ISRF_FAULTS setting; restores the environment on exit. */
class ScopedFaultsEnv
{
  public:
    explicit ScopedFaultsEnv(const char *spec)
    {
        const char *old = std::getenv("ISRF_FAULTS");
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        setenv("ISRF_FAULTS", spec, 1);
    }
    ~ScopedFaultsEnv()
    {
        if (had_)
            setenv("ISRF_FAULTS", saved_.c_str(), 1);
        else
            unsetenv("ISRF_FAULTS");
    }

  private:
    std::string saved_;
    bool had_ = false;
};

// ---------------------------------------------------------------- ECC

TEST(Ecc, SingleBitFaultIsCorrectedAndScrubbed)
{
    EccDomain ecc;
    Word storage = 0xABCD1234u;
    ecc.inject(7, 1u << 5, false, &storage);
    EXPECT_NE(storage, 0xABCD1234u);
    EXPECT_EQ(ecc.pendingFaults(), 1u);
    EXPECT_EQ(ecc.check(7, &storage), EccStatus::Corrected);
    EXPECT_EQ(storage, 0xABCD1234u);  // scrubbed in place
    EXPECT_EQ(ecc.pendingFaults(), 0u);
    EXPECT_EQ(ecc.corrected(), 1u);
    EXPECT_EQ(ecc.check(7, &storage), EccStatus::Clean);
}

TEST(Ecc, DoubleBitFaultIsDetectedNotCorrected)
{
    EccDomain ecc;
    Word storage = 0x5555AAAAu;
    ecc.inject(3, 0b11u, false, &storage);
    EXPECT_EQ(ecc.check(3, &storage), EccStatus::Uncorrectable);
    // A persistent hard fault stays: the data is still corrupt and a
    // re-read detects it again.
    EXPECT_NE(storage, 0x5555AAAAu);
    EXPECT_EQ(ecc.check(3, &storage), EccStatus::Uncorrectable);
    EXPECT_EQ(ecc.uncorrectable(), 2u);
    EXPECT_EQ(ecc.corrected(), 0u);
}

TEST(Ecc, TransientUncorrectableClearsOnDetection)
{
    EccDomain ecc;
    Word storage = 0x13579BDFu;
    ecc.inject(9, 0b101u, true, &storage);
    // The detecting read still observes failure...
    EXPECT_EQ(ecc.check(9, &storage), EccStatus::Uncorrectable);
    // ...but the fault was transient: storage is restored and a retry
    // of the same address succeeds.
    EXPECT_EQ(storage, 0x13579BDFu);
    EXPECT_EQ(ecc.check(9, &storage), EccStatus::Clean);
}

TEST(Ecc, WriteReencodesAndDropsPendingFault)
{
    EccDomain ecc;
    Word storage = 1;
    ecc.inject(0, 0b11u, false, &storage);
    ecc.onWrite(0);
    storage = 42;
    EXPECT_EQ(ecc.check(0, &storage), EccStatus::Clean);
    EXPECT_EQ(storage, 42u);
}

TEST(Ecc, RepeatedSameBitFlipsCancel)
{
    EccDomain ecc;
    Word storage = 0xFFFF0000u;
    ecc.inject(4, 1u << 3, false, &storage);
    ecc.inject(4, 1u << 3, false, &storage);
    EXPECT_EQ(storage, 0xFFFF0000u);
    EXPECT_EQ(ecc.pendingFaults(), 0u);
    EXPECT_EQ(ecc.faultsInjected(), 2u);
}

TEST(Ecc, ScrubRepairsAllSingleBitFaults)
{
    EccDomain ecc;
    std::vector<Word> mem(16, 0xC0FFEEu);
    ecc.inject(1, 1u << 0, false, &mem[1]);
    ecc.inject(5, 1u << 9, false, &mem[5]);
    ecc.inject(8, 0b11000u, false, &mem[8]);  // uncorrectable
    uint64_t repaired =
        ecc.scrub([&](uint64_t addr) { return &mem[addr]; });
    EXPECT_EQ(repaired, 2u);
    EXPECT_EQ(mem[1], 0xC0FFEEu);
    EXPECT_EQ(mem[5], 0xC0FFEEu);
    EXPECT_EQ(ecc.uncorrectable(), 1u);
}

// --------------------------------------------------- FaultConfig parse

TEST(FaultConfig, EmptyAndZeroSpecsDisable)
{
    EXPECT_FALSE(FaultConfig::parse("").enabled);
    EXPECT_FALSE(FaultConfig::parse("0").enabled);
}

TEST(FaultConfig, GlobalKeysParse)
{
    FaultConfig fc = FaultConfig::parse(
        "seed=7;ecc=0;retry=9;backoff=2;timeout=1000;threshold=3;"
        "watchdog=500;stall_intervals=6");
    EXPECT_TRUE(fc.enabled);
    EXPECT_EQ(fc.seed, 7u);
    EXPECT_FALSE(fc.eccEnabled);
    EXPECT_EQ(fc.retryLimit, 9u);
    EXPECT_EQ(fc.retryBackoffBase, 2u);
    EXPECT_EQ(fc.opTimeoutCycles, 1000u);
    EXPECT_EQ(fc.degradeThreshold, 3u);
    EXPECT_EQ(fc.watchdogInterval, 500u);
    EXPECT_EQ(fc.watchdogStallIntervals, 6u);
    EXPECT_TRUE(fc.schedule.empty());
}

TEST(FaultConfig, ScheduleEntriesParse)
{
    FaultConfig fc = FaultConfig::parse(
        "srf_bit:start=100,period=50,count=200,bits=2,max=64,transient;"
        "mem_delay:delay=12;xbar_stall");
    ASSERT_EQ(fc.schedule.size(), 3u);
    const FaultScheduleEntry &e = fc.schedule[0];
    EXPECT_EQ(e.kind, FaultKind::SrfBit);
    EXPECT_EQ(e.start, 100u);
    EXPECT_EQ(e.period, 50u);
    EXPECT_EQ(e.count, 200u);
    EXPECT_EQ(e.bits, 2u);
    EXPECT_EQ(e.maxAddr, 64u);
    EXPECT_TRUE(e.transient);
    EXPECT_EQ(fc.schedule[1].kind, FaultKind::MemDelay);
    EXPECT_EQ(fc.schedule[1].delayCycles, 12u);
    EXPECT_EQ(fc.schedule[2].kind, FaultKind::XbarStall);
}

TEST(FaultConfigDeathTest, UnknownKeysAndKindsAreFatal)
{
    EXPECT_DEATH(FaultConfig::parse("bogus=1"), "unknown key");
    EXPECT_DEATH(FaultConfig::parse("nope:count=1"),
                 "unknown fault kind");
    EXPECT_DEATH(FaultConfig::parse("srf_bit:bogus=1"), "unknown");
    EXPECT_DEATH(FaultConfig::parse("srf_bit:bits=40"), "bits must be");
}

// --------------------------------------------------------- SRF bank

TEST(SrfBankFault, SingleBitFaultCorrectedOnRead)
{
    SrfGeometry geom;
    SrfBank bank;
    bank.init(geom, 0);
    bank.write(100, 0xDEADBEEFu);
    bank.injectBitFlips(100, 1u << 17, false);
    EXPECT_EQ(bank.read(100), 0xDEADBEEFu);
    EXPECT_EQ(bank.ecc().corrected(), 1u);
    EXPECT_EQ(bank.ecc().uncorrectable(), 0u);
}

TEST(SrfBankFault, UncorrectableBurstDegradesSubArray)
{
    SrfGeometry geom;  // subArrays=4, seqWidth=4: addr 0..3 -> sub 0
    SrfBank bank;
    bank.init(geom, 0);
    bank.setDegradeThreshold(2);
    bank.injectBitFlips(0, 0b11u, false);  // persistent hard fault
    bank.read(0);
    EXPECT_FALSE(bank.subArrayOffline(0));
    bank.read(0);  // second uncorrectable hits the threshold
    EXPECT_TRUE(bank.subArrayOffline(0));
    EXPECT_EQ(bank.offlineSubArrays(), 1u);

    // Indexed accesses to the dead sub-array remap onto the next
    // online one, which then carries the combined port pressure.
    bank.newCycle();
    EXPECT_TRUE(bank.claimIndexedWord(0));   // remapped to sub-array 1
    EXPECT_FALSE(bank.claimIndexedWord(4));  // sub-array 1: port busy
    EXPECT_TRUE(bank.claimIndexedWord(8));   // sub-array 2 unaffected
}

TEST(SrfBankFault, LastOnlineSubArrayIsProtected)
{
    SrfGeometry geom;
    SrfBank bank;
    bank.init(geom, 0);
    for (uint32_t s = 1; s < geom.subArrays; s++)
        bank.setSubArrayOffline(s, true);
    EXPECT_EQ(bank.offlineSubArrays(), geom.subArrays - 1);
    EXPECT_DEATH(bank.setSubArrayOffline(0, true), "last online");
}

TEST(SrfFault, InjectAndScrubAcrossBanks)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    srf.writeWord(2, 50, 0x12345678u);
    srf.injectBitFlips(2, 50, 1u << 4, false);
    EXPECT_EQ(srf.faultsInjected(), 1u);
    EXPECT_EQ(srf.scrubFaults(), 1u);
    EXPECT_EQ(srf.readWord(2, 50), 0x12345678u);
    EXPECT_EQ(srf.eccCorrected(), 1u);
    EXPECT_EQ(srf.eccUncorrectable(), 0u);
}

// ------------------------------------------------ machine validation

TEST(ConfigValidateDeathTest, ReportsAllViolationsAtOnce)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.srf.subArrays = 3;       // not a power of two
    cfg.dram.accessLatency = 0;  // invalid
    // Both violations appear in one fatal() message.
    EXPECT_DEATH(cfg.validate(), "2 violation");
    EXPECT_DEATH(cfg.validate(), "subArrays must be a power of two");
    EXPECT_DEATH(cfg.validate(), "accessLatency must be nonzero");
}

TEST(ConfigValidateDeathTest, KeepsExistingChecks)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.mem.cacheEnabled = true;
    EXPECT_DEATH(cfg.validate(), "cache enabled");
    MachineConfig cc = MachineConfig::cacheCfg();
    cc.mem.cacheEnabled = false;
    EXPECT_DEATH(cc.validate(), "without cache");
    MachineConfig lw = MachineConfig::base();
    lw.srf.laneWords = 4098;
    EXPECT_DEATH(lw.validate(), "multiple of seqWidth");
}

TEST(ConfigValidateDeathTest, SeqWidthBeyondRowBufferIsConfigError)
{
    // Used to hard-fatal() inside Srf::init() at machine-build time;
    // now reported collect-all with the other config violations.
    MachineConfig cfg = MachineConfig::base();
    cfg.srf.seqWidth = 16;  // keeps laneWords a multiple: one violation
    EXPECT_DEATH(cfg.validate(), "seqWidth > 8 unsupported");
}

TEST(ConfigValidateDeathTest, TooManySlotsForGlobalArbiter)
{
    MachineConfig cfg = MachineConfig::base();
    cfg.srf.maxStreamSlots = 64;  // + indexed bundle = 65 claimants
    EXPECT_DEATH(cfg.validate(), "at most 64 claimants");
}

// ----------------------------------------------- retry / poison path

MachineConfig
faultMachineConfig()
{
    MachineConfig cfg = MachineConfig::base();
    cfg.dram.capacityWords = 1 << 18;
    cfg.faults.enabled = true;
    cfg.faults.retryLimit = 2;
    cfg.faults.retryBackoffBase = 2;
    return cfg;
}

TEST(MemRetry, TransientUncorrectableRecoversViaRetry)
{
    Machine m;
    m.init(faultMachineConfig());
    std::vector<Word> input(256);
    for (size_t i = 0; i < input.size(); i++)
        input[i] = static_cast<Word>(i + 1);
    m.mem().dram().fill(0, input);
    // Noise on the array's read path: the stored data is intact, so
    // the bounded-backoff retry observes clean data.
    m.mem().dram().injectBitFlips(17, 0b101u, true);

    StreamProgram prog(m);
    SlotId s = prog.addStream("s", 256);
    prog.load(s, 0);
    prog.run();
    EXPECT_EQ(prog.dumpStream(s), input);
    EXPECT_GE(m.mem().retries(), 1u);
    EXPECT_EQ(m.mem().poisonedWords(), 0u);
}

TEST(MemRetry, PersistentUncorrectablePoisonsInsteadOfAborting)
{
    Machine m;
    m.init(faultMachineConfig());
    std::vector<Word> input(256, 7);
    m.mem().dram().fill(0, input);
    m.mem().dram().injectBitFlips(100, 0b11u, false);  // hard fault

    StreamProgram prog(m);
    SlotId s = prog.addStream("s", 256);
    prog.load(s, 0);
    prog.run();  // completes despite the uncorrectable word
    std::vector<Word> out = prog.dumpStream(s);
    EXPECT_EQ(out[100], kPoisonWord);
    out[100] = 7;
    EXPECT_EQ(out, input);
    EXPECT_EQ(m.mem().poisonedWords(), 1u);
    // Both configured retries were spent before poisoning.
    EXPECT_EQ(m.mem().retries(), 2u);
    EXPECT_EQ(m.mem().stats().counter("ops_poisoned").value(), 1u);
}

// ------------------------------------------------------- watchdog

TEST(Watchdog, TriggersAfterStalledIntervals)
{
    Engine e;
    Watchdog wd;
    uint64_t progress = 0;
    wd.init(10, 2, [&]() { return progress; });
    e.add(&wd);
    // Progress for a while: no trigger.
    for (int i = 0; i < 5; i++) {
        progress += 10;
        e.steps(10);
    }
    EXPECT_FALSE(wd.triggered());
    // Now stall: two zero-progress intervals trip it.
    e.steps(25);
    EXPECT_TRUE(wd.triggered());
    EXPECT_TRUE(jsonValid(wd.reportJson()));
    wd.rearm();
    EXPECT_FALSE(wd.triggered());
}

TEST(Watchdog, MachineRunUntilReportsStalled)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.faults = FaultConfig::parse("watchdog=50;stall_intervals=2");
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    ASSERT_NE(m.watchdog(), nullptr);
    // An idle machine makes no progress: the watchdog trips and the
    // run resolves to Stalled rather than a plain cycle-limit Limit.
    RunResult r = m.runUntil([]() { return false; }, 1000);
    EXPECT_EQ(r.status, RunStatus::Stalled);
    EXPECT_TRUE(m.watchdogTriggered());
    EXPECT_TRUE(jsonValid(m.watchdog()->reportJson()));
}

// -------------------------------------------------- acceptance soak

const char *kSoakSpec =
    "seed=11;threshold=0;"
    "srf_bit:start=400,period=17,count=40;"
    "dram_bit:start=200,period=13,count=120";

TEST(FaultSoak, SeededScheduleCorrectsEverythingBitIdentical)
{
    WorkloadOptions opts;
    opts.repeats = 2;
    WorkloadResult clean =
        runWorkload("Sort", MachineKind::ISRF4, opts);
    ASSERT_TRUE(clean.correct);

    ScopedFaultsEnv env(kSoakSpec);
    WorkloadResult faulty =
        runWorkload("Sort", MachineKind::ISRF4, opts);
    // Output is validated word-for-word against the reference model:
    // correct==true under injection means the run was bit-identical.
    EXPECT_TRUE(faulty.correct);
    EXPECT_GE(faulty.extra.at("faults_injected"), 100.0);
    EXPECT_GE(faulty.extra.at("ecc_corrected"), 100.0);
    EXPECT_EQ(faulty.extra.at("ecc_uncorrectable"), 0.0);
    EXPECT_EQ(faulty.extra.at("poisoned_words"), 0.0);
    // Data-only faults never perturb timing.
    EXPECT_EQ(faulty.cycles, clean.cycles);
}

TEST(FaultSoak, InjectionIsDeterministic)
{
    ScopedFaultsEnv env(kSoakSpec);
    WorkloadOptions opts;
    opts.repeats = 1;
    WorkloadResult a = runWorkload("Filter", MachineKind::ISRF4, opts);
    WorkloadResult b = runWorkload("Filter", MachineKind::ISRF4, opts);
    EXPECT_TRUE(a.correct);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.extra.at("faults_injected"),
              b.extra.at("faults_injected"));
    EXPECT_EQ(a.extra.at("ecc_corrected"), b.extra.at("ecc_corrected"));
    EXPECT_EQ(a.extra.at("retries"), b.extra.at("retries"));
}

TEST(FaultSoak, AllFaultKindsRunToCompletion)
{
    ScopedFaultsEnv env(
        "seed=3;retry=3;backoff=2;"
        "srf_bit:start=50,period=31,count=20;"
        "dram_bit:start=50,period=29,count=20,transient,bits=2;"
        "mem_drop:start=60,period=11,count=30;"
        "mem_delay:start=80,period=101,count=10,delay=6;"
        "xbar_stall:start=40,period=7,count=50");
    WorkloadOptions opts;
    opts.repeats = 1;
    WorkloadResult r = runWorkload("Filter", MachineKind::ISRF4, opts);
    // Timing faults shift cycles but never correctness.
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.extra.at("faults_injected"), 0.0);
}

TEST(FaultSoak, ReportsCarryFaultSection)
{
    Machine m;
    MachineConfig cfg = MachineConfig::base();
    cfg.faults =
        FaultConfig::parse("seed=2;dram_bit:start=10,period=5,count=30");
    cfg.dram.capacityWords = 1 << 16;
    m.init(cfg);
    std::vector<Word> data(512, 9);
    m.mem().dram().fill(0, data);
    StreamProgram prog(m);
    SlotId s = prog.addStream("s", 512);
    prog.load(s, 0);
    prog.run();

    std::string text = machineReport(m);
    EXPECT_NE(text.find("fault:"), std::string::npos);
    EXPECT_NE(text.find("ecc_corrected"), std::string::npos);
    std::string json = machineReportJson(m);
    ASSERT_TRUE(jsonValid(json));
    EXPECT_NE(json.find("\"fault\""), std::string::npos);
    EXPECT_NE(json.find("\"ecc_detected_uncorrectable\""),
              std::string::npos);
}

} // namespace
} // namespace isrf
