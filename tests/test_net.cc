/**
 * @file
 * Tests for the inter-cluster crossbar and the SRF index network.
 */
#include <gtest/gtest.h>

#include "net/crossbar.h"
#include "net/index_network.h"

namespace isrf {
namespace {

TEST(Crossbar, PortLimitsEnforced)
{
    Crossbar x;
    x.init(4, 1, 1);
    x.newCycle();
    EXPECT_TRUE(x.tryTransfer(0, 1));
    EXPECT_FALSE(x.tryTransfer(0, 2)) << "source 0 exhausted";
    EXPECT_FALSE(x.tryTransfer(2, 1)) << "destination 1 exhausted";
    EXPECT_TRUE(x.tryTransfer(2, 3));
    EXPECT_EQ(x.transfers(), 2u);
    EXPECT_EQ(x.rejects(), 2u);
}

TEST(Crossbar, NewCycleResetsBudgets)
{
    Crossbar x;
    x.init(2, 1, 1);
    x.newCycle();
    EXPECT_TRUE(x.tryTransfer(0, 0));
    EXPECT_FALSE(x.tryTransfer(0, 0));
    x.newCycle();
    EXPECT_TRUE(x.tryTransfer(0, 0));
}

TEST(Crossbar, WiderLimits)
{
    Crossbar x;
    x.init(4, 2, 3);
    x.newCycle();
    EXPECT_TRUE(x.tryTransfer(0, 1));
    EXPECT_TRUE(x.tryTransfer(0, 1));
    EXPECT_FALSE(x.tryTransfer(0, 1)) << "src limit 2";
    EXPECT_TRUE(x.tryTransfer(1, 1));
    EXPECT_FALSE(x.tryTransfer(2, 1)) << "dst limit 3";
}

TEST(Crossbar, ClaimSourceBlocksTransfers)
{
    // Statically scheduled comm holds the injection port; cross-lane
    // returns from that source must wait (§4.5 priority).
    Crossbar x;
    x.init(4, 1, 1);
    x.newCycle();
    EXPECT_TRUE(x.claimSource(2));
    EXPECT_FALSE(x.tryTransfer(2, 0));
    EXPECT_TRUE(x.tryTransfer(1, 0));
}

TEST(Crossbar, CanTransferDoesNotConsume)
{
    Crossbar x;
    x.init(2, 1, 1);
    x.newCycle();
    EXPECT_TRUE(x.canTransfer(0, 1));
    EXPECT_TRUE(x.canTransfer(0, 1));
    EXPECT_TRUE(x.tryTransfer(0, 1));
    EXPECT_FALSE(x.canTransfer(0, 1));
}

TEST(Crossbar, OutOfRangePanics)
{
    Crossbar x;
    x.init(2, 1, 1);
    x.newCycle();
    EXPECT_DEATH(x.tryTransfer(5, 0), "out of range");
    EXPECT_DEATH(x.claimSource(9), "out of range");
}

TEST(Crossbar, ZeroPortsFatal)
{
    Crossbar x;
    EXPECT_DEATH(x.init(0, 1, 1), "positive");
}

TEST(IndexNetwork, OneInjectionPerClusterPerCycle)
{
    IndexNetwork net;
    net.init(8, 1);
    net.newCycle();
    EXPECT_TRUE(net.route(0, 3));
    EXPECT_FALSE(net.route(0, 4)) << "cluster 0 already injected";
    EXPECT_TRUE(net.route(1, 4));
}

TEST(IndexNetwork, BankPortsLimitEjection)
{
    IndexNetwork net;
    net.init(8, 2);
    net.newCycle();
    EXPECT_TRUE(net.route(0, 5));
    EXPECT_TRUE(net.route(1, 5));
    EXPECT_FALSE(net.route(2, 5)) << "bank 5 has 2 ports";
    EXPECT_EQ(net.routed(), 2u);
    EXPECT_EQ(net.rejected(), 1u);
}

class IndexNetworkPorts : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(IndexNetworkPorts, AllLanesToOneBankServesExactlyPorts)
{
    uint32_t ports = GetParam();
    IndexNetwork net;
    net.init(8, ports);
    net.newCycle();
    uint32_t granted = 0;
    for (uint32_t l = 0; l < 8; l++)
        if (net.route(l, 0))
            granted++;
    EXPECT_EQ(granted, std::min(ports, 8u));
}

INSTANTIATE_TEST_SUITE_P(Ports, IndexNetworkPorts,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace isrf
