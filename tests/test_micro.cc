/**
 * @file
 * Tests of the §5.4 microbenchmark drivers (Figures 17/18): bounds and
 * monotonicity properties that the paper's curves rely on.
 */
#include <gtest/gtest.h>

#include "workloads/micro.h"

namespace isrf {
namespace {

InLaneMicroParams
inl(uint32_t s, uint32_t fifo)
{
    InLaneMicroParams p;
    p.subArrays = s;
    p.fifoSize = fifo;
    p.cycles = 6000;
    return p;
}

TEST(InLaneMicro, ThroughputBounded)
{
    for (uint32_t s : {1u, 2u, 4u, 8u}) {
        double t = inLaneRandomThroughput(inl(s, 8));
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, 4.0) << "cannot exceed 4 issued reads/cycle";
        EXPECT_LE(t, static_cast<double>(s) + 0.01)
            << "cannot exceed sub-array count";
    }
}

TEST(InLaneMicro, ThroughputRisesWithSubArrays)
{
    double t1 = inLaneRandomThroughput(inl(1, 8));
    double t2 = inLaneRandomThroughput(inl(2, 8));
    double t4 = inLaneRandomThroughput(inl(4, 8));
    double t8 = inLaneRandomThroughput(inl(8, 8));
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t4);
    EXPECT_LT(t4, t8);
}

TEST(InLaneMicro, ThroughputRisesWithFifoSize)
{
    double f1 = inLaneRandomThroughput(inl(4, 1));
    double f8 = inLaneRandomThroughput(inl(4, 8));
    EXPECT_LT(f1 * 1.2, f8)
        << "larger FIFOs absorb conflicts (Figure 17)";
}

TEST(InLaneMicro, UtilizationFallsWithSubArrays)
{
    // Head-of-line blocking: per-sub-array utilization drops at 8.
    double u4 = inLaneRandomThroughput(inl(4, 8)) / 4.0;
    double u8 = inLaneRandomThroughput(inl(8, 8)) / 8.0;
    EXPECT_GT(u4, u8);
}

TEST(InLaneMicro, DeterministicForSeed)
{
    EXPECT_DOUBLE_EQ(inLaneRandomThroughput(inl(4, 4)),
                     inLaneRandomThroughput(inl(4, 4)));
}

CrossLaneMicroParams
cro(uint32_t ports, double occ)
{
    CrossLaneMicroParams p;
    p.netPortsPerBank = ports;
    p.commOccupancy = occ;
    p.cycles = 6000;
    return p;
}

TEST(CrossLaneMicro, ThroughputBounded)
{
    for (uint32_t ports : {1u, 2u, 4u}) {
        double t = crossLaneRandomThroughput(cro(ports, 0));
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, 1.0) << "peak cross-lane BW is 1 word/cycle/lane";
    }
}

TEST(CrossLaneMicro, SecondPortHelpsMoreThanFourth)
{
    double p1 = crossLaneRandomThroughput(cro(1, 0));
    double p2 = crossLaneRandomThroughput(cro(2, 0));
    double p4 = crossLaneRandomThroughput(cro(4, 0));
    EXPECT_GT(p2, p1 * 1.2) << "1->2 ports is a significant gain";
    EXPECT_LT(p4 / p2, p2 / p1) << "2->4 ports is marginal (§5.4)";
}

TEST(CrossLaneMicro, ModerateOccupancyCostsUnder20Percent)
{
    // §5.4: "the reduction in cross-lane SRF throughput is 20% or less
    // for a wide range of inter-cluster communication traffic loads".
    double base = crossLaneRandomThroughput(cro(1, 0));
    for (double occ : {0.2, 0.4, 0.6}) {
        double t = crossLaneRandomThroughput(cro(1, occ));
        EXPECT_GT(t, 0.8 * base) << "occupancy " << occ;
    }
}

TEST(CrossLaneMicro, HeavyOccupancyDegrades)
{
    double base = crossLaneRandomThroughput(cro(4, 0));
    double heavy = crossLaneRandomThroughput(cro(4, 0.8));
    EXPECT_LT(heavy, base);
}

} // namespace
} // namespace isrf
