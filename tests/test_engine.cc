/**
 * @file
 * Tests for the tick engine, breakdown arithmetic and trace utilities.
 */
#include <gtest/gtest.h>

#include "core/breakdown.h"
#include "sim/engine.h"
#include "workloads/trace_util.h"

namespace isrf {
namespace {

struct CountingComponent : Ticked
{
    uint64_t ticks = 0;
    uint64_t posts = 0;
    Cycle lastNow = 0;
    void
    tick(Cycle now) override
    {
        ticks++;
        lastNow = now;
    }
    void postTick(Cycle) override { posts++; }
    bool hasPostTick() const override { return true; }
    std::string tickedName() const override { return "counter"; }
};

TEST(Engine, StepInvokesTickAndPostTickInOrder)
{
    Engine e;
    CountingComponent a, b;
    e.add(&a);
    e.add(&b);
    e.step();
    EXPECT_EQ(a.ticks, 1u);
    EXPECT_EQ(b.ticks, 1u);
    EXPECT_EQ(a.posts, 1u);
    EXPECT_EQ(e.now(), 1u);
    e.steps(9);
    EXPECT_EQ(a.ticks, 10u);
    EXPECT_EQ(a.lastNow, 9u);
}

TEST(Engine, RunUntilStopsOnPredicate)
{
    Engine e;
    CountingComponent a;
    e.add(&a);
    RunResult r = e.runUntil([&]() { return a.ticks >= 42; });
    EXPECT_EQ(r.status, RunStatus::Done);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.cycles, 42u);
    EXPECT_EQ(e.now(), 42u);
}

TEST(Engine, RunUntilLimitReturnsStatus)
{
    Engine e;
    CountingComponent a;
    e.add(&a);
    RunResult r = e.runUntil([]() { return false; }, 100);
    EXPECT_EQ(r.status, RunStatus::Limit);
    EXPECT_FALSE(r.done());
    EXPECT_EQ(r.cycles, 100u);
    // The engine keeps running normally after a limit return.
    EXPECT_EQ(e.now(), 100u);
    RunResult r2 = e.runUntil([&]() { return a.ticks >= 150; }, 1000);
    EXPECT_EQ(r2.status, RunStatus::Done);
}

TEST(Engine, RunStatusNames)
{
    EXPECT_STREQ(runStatusName(RunStatus::Done), "done");
    EXPECT_STREQ(runStatusName(RunStatus::Limit), "limit");
    EXPECT_STREQ(runStatusName(RunStatus::Stalled), "stalled");
}

TEST(Engine, NullComponentPanics)
{
    Engine e;
    EXPECT_DEATH(e.add(nullptr), "null component");
}

TEST(Breakdown, TotalsAndAccumulate)
{
    TimeBreakdown a;
    a.loopBody = 10;
    a.memStall = 5;
    TimeBreakdown b;
    b.srfStall = 3;
    b.overhead = 2;
    a += b;
    EXPECT_EQ(a.total(), 20u);
    EXPECT_DOUBLE_EQ(a.frac(a.loopBody, a.total()), 0.5);
    a.reset();
    EXPECT_EQ(a.total(), 0u);
    EXPECT_EQ(a.summary(), "(empty breakdown)");
}

TEST(TraceUtil, SplitMergeRoundtrip)
{
    SrfGeometry g;
    std::vector<Word> data(1000);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<Word>(i * 3);
    auto lanes = splitStriped(g, data);
    EXPECT_EQ(lanes.size(), g.lanes);
    EXPECT_EQ(mergeStriped(g, lanes), data);
    // Lane 0 holds words 0..3, 32..35, ...
    EXPECT_EQ(lanes[0][0], 0u);
    EXPECT_EQ(lanes[0][4], 32u * 3);
    EXPECT_EQ(lanes[1][0], 4u * 3);
}

TEST(TraceUtil, FloatWordConversionRoundtrip)
{
    std::vector<float> f = {0.0f, -1.5f, 3.14159f, 1e-20f, 1e20f};
    EXPECT_EQ(wordsToFloats(floatsToWords(f)), f);
}

TEST(TraceUtil, StripeLaneMatchesSrfMapping)
{
    SrfGeometry g;
    Srf srf;
    srf.init(g, SrfMode::SequentialOnly, nullptr);
    for (uint64_t w : {0ull, 5ull, 31ull, 32ull, 100ull, 8191ull}) {
        EXPECT_EQ(stripeLane(g, w), srf.stripedLocation(0, w).first)
            << w;
    }
}

} // namespace
} // namespace isrf
