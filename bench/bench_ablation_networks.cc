/**
 * @file
 * Extension (§7 future work): sparse interconnects for the cross-lane
 * address and data networks.
 *
 * The paper's implementation uses two fully connected crossbars and
 * lists "the impact of sparse interconnects" as future work. This
 * ablation swaps both networks for bidirectional rings and measures
 * (a) cross-lane random-read throughput (the Figure 18 driver),
 * (b) the cross-lane benchmark IG_SML end to end, and
 * (c) the area saved by the sparse networks (CACTI-lite).
 */
#include "area/cacti_lite.h"
#include "bench_util.h"
#include "workloads/micro.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Sparse-interconnect ablation: crossbar vs ring for the "
            "cross-lane networks", "Section 7 future work");

    // (a) Microbenchmark throughput.
    Table micro({"Ports/bank", "Crossbar (w/c/lane)", "Ring (w/c/lane)",
                 "Ring/Crossbar"});
    for (uint32_t ports : {1u, 2u}) {
        CrossLaneMicroParams xp;
        xp.netPortsPerBank = ports;
        CrossLaneMicroParams rp = xp;
        rp.topology = NetTopology::Ring;
        double x = crossLaneRandomThroughput(xp);
        double r = crossLaneRandomThroughput(rp);
        micro.addRow({std::to_string(ports), fmtDouble(x, 3),
                      fmtDouble(r, 3), fmtDouble(r / x, 2)});
    }
    std::printf("Random cross-lane reads (Figure 18 driver):\n%s\n",
                micro.render().c_str());

    // (b) End-to-end on the cross-lane benchmark.
    const auto &reg = workloadRegistry();
    WorkloadOptions opts;
    opts.repeats = 1;
    MachineConfig xb = MachineConfig::isrf4();
    std::fprintf(stderr, "  [running IG_SML crossbar...]\n");
    WorkloadResult a = reg.at("IG_SML")(xb, opts);
    MachineConfig ring = MachineConfig::isrf4();
    ring.srf.netTopology = NetTopology::Ring;
    std::fprintf(stderr, "  [running IG_SML ring...]\n");
    WorkloadResult b = reg.at("IG_SML")(ring, opts);
    Table e2e({"Network", "IG_SML cycles", "Slowdown", "Correct"});
    e2e.addRow({"Crossbar", std::to_string(a.cycles), "1.00",
                a.correct ? "yes" : "NO"});
    e2e.addRow({"Ring", std::to_string(b.cycles),
                fmtDouble(static_cast<double>(b.cycles) /
                          static_cast<double>(a.cycles), 2),
                b.correct ? "yes" : "NO"});
    std::printf("%s\n", e2e.render().c_str());

    // (c) Area comparison.
    SrfAreaModel model;
    double full = model.overheadOver(model.crossLane());
    double sparse = model.overheadOver(model.crossLaneSparse());
    std::printf("SRF area overhead over sequential: crossbar networks "
                "%+.1f%%, ring networks %+.1f%%\n", 100.0 * full,
                100.0 * sparse);
    std::printf("The ring trades %.1f%% SRF area for a %.0f%% IG_SML "
                "slowdown.\n",
                100.0 * (full - sparse),
                100.0 * (static_cast<double>(b.cycles) /
                             static_cast<double>(a.cycles) - 1.0));
    finishBench(args);
    return 0;
}
