/**
 * @file
 * Figure 12: execution time of every benchmark on all four machine
 * configurations, normalized to Base and broken into kernel loop body,
 * memory stall, SRF stall, and kernel overheads. Also reports the
 * headline speedups (paper: 1.03x to 4.1x; FFT 2D 2.24x, Rijndael
 * 4.11x; ISRF1 loses 42%/18% of Rijndael/Filter time to SRF stalls).
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Execution time breakdown, normalized to Base",
            "Figure 12 + headline speedups (1.03x-4.1x)");

    WorkloadOptions opts;
    opts.repeats = 2;
    ResultCache cache(opts, args.jobs);
    cache.prefetch(benchmarkOrder(), machineOrder());

    Table t({"Benchmark", "Config", "Total", "Loop", "MemStall",
             "SrfStall", "Overhead", "Speedup"});
    double minSpeed = 1e9, maxSpeed = 0;
    for (const auto &name : benchmarkOrder()) {
        const WorkloadResult &base = cache.get(name, MachineKind::Base);
        auto baseTotal = static_cast<double>(base.breakdown.total());
        for (MachineKind kind : machineOrder()) {
            const WorkloadResult &r = cache.get(name, kind);
            const TimeBreakdown &b = r.breakdown;
            double total = static_cast<double>(b.total()) / baseTotal;
            double speed = static_cast<double>(base.cycles) /
                static_cast<double>(r.cycles);
            if (kind == MachineKind::ISRF4) {
                minSpeed = std::min(minSpeed, speed);
                maxSpeed = std::max(maxSpeed, speed);
            }
            t.addRow({name, machineKindName(kind), fmtDouble(total, 3),
                      fmtDouble(b.loopBody / baseTotal, 3),
                      fmtDouble(b.memStall / baseTotal, 3),
                      fmtDouble(b.srfStall / baseTotal, 3),
                      fmtDouble(b.overhead / baseTotal, 3),
                      fmtDouble(speed, 2)});
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("ISRF4 execution time normalized to Base (Fig. 12 "
                "stacks):\n");
    for (const auto &name : benchmarkOrder()) {
        const WorkloadResult &base = cache.get(name, MachineKind::Base);
        const WorkloadResult &r = cache.get(name, MachineKind::ISRF4);
        double total = static_cast<double>(r.breakdown.total()) /
            static_cast<double>(base.breakdown.total());
        std::printf("  %-9s |%s| %.2f\n", name.c_str(),
                    asciiBar(total, 1.0, 40).c_str(), total);
    }

    std::printf("\nISRF4 speedup range over Base: %.2fx .. %.2fx "
                "(paper: 1.03x .. 4.1x)\n", minSpeed, maxSpeed);

    // The ISRF1 SRF-stall observation (§5.3).
    for (const char *name : {"Rijndael", "Filter"}) {
        const WorkloadResult &r1 = cache.get(name, MachineKind::ISRF1);
        double frac = static_cast<double>(r1.breakdown.srfStall) /
            static_cast<double>(r1.breakdown.total());
        std::printf("%s on ISRF1 spends %.0f%% of execution in SRF "
                    "stalls (paper: %s)\n", name, 100.0 * frac,
                    std::string(name) == "Rijndael" ? "42%" : "18%");
    }
    finishBench(args, cache);
    return 0;
}
