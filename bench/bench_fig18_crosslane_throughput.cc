/**
 * @file
 * Figure 18: sustained cross-lane indexed SRF throughput as a function
 * of the number of network ports per SRF bank (1/2/4) and the fraction
 * of the static schedule occupied by unrelated inter-cluster
 * communication (0%..80%), under 1 random cross-lane read + 3
 * sequential stream accesses per cycle per cluster.
 *
 * Paper shape: going from 1 to 2 ports per bank helps substantially,
 * 2 to 4 only marginally; and throughput degrades by <= ~20% across a
 * wide occupancy range — contention for the SRF port, not network
 * traffic, is the dominant limiter, which is why the paper multiplexes
 * cross-lane data onto the single inter-cluster network.
 */
#include "bench_util.h"
#include "workloads/micro.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Cross-lane indexed throughput vs bank ports and "
            "inter-cluster occupancy (words/cycle/lane)", "Figure 18");

    std::vector<uint32_t> ports = {1, 2, 4};
    std::vector<double> occs = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                0.7, 0.8};

    std::vector<std::string> header = {"Occupancy"};
    for (uint32_t p : ports)
        header.push_back(std::to_string(p) + " acc/bank");
    Table t(header);

    std::vector<std::vector<double>> grid(occs.size(),
                                          std::vector<double>(
                                              ports.size()));
    for (size_t oi = 0; oi < occs.size(); oi++) {
        std::vector<std::string> row = {
            fmtDouble(occs[oi] * 100, 0) + "%"};
        for (size_t pi = 0; pi < ports.size(); pi++) {
            CrossLaneMicroParams p;
            p.netPortsPerBank = ports[pi];
            p.commOccupancy = occs[oi];
            grid[oi][pi] = crossLaneRandomThroughput(p);
            row.push_back(fmtDouble(grid[oi][pi], 3));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());

    double gain12 = grid[0][1] / grid[0][0];
    double gain24 = grid[0][2] / grid[0][1];
    std::printf("Port scaling at 0%% occupancy: 1->2 ports: +%.0f%%, "
                "2->4 ports: +%.0f%%\n(paper: large then marginal)\n",
                100.0 * (gain12 - 1.0), 100.0 * (gain24 - 1.0));
    for (size_t pi = 0; pi < ports.size(); pi++) {
        double drop = 1.0 - grid.back()[pi] / grid[0][pi];
        std::printf("Throughput loss at 80%% occupancy with %u "
                    "port(s): %.0f%%\n", ports[pi], 100.0 * drop);
    }
    finishBench(args);
    return 0;
}
