/**
 * @file
 * Figure 15: execution time of the in-lane indexed kernels as the
 * address/data separation varies from 2 to 10 cycles, normalized to
 * each kernel's best point.
 *
 * Paper shape: performance first improves with separation (SRF stalls
 * shrink as reads are issued earlier) and then degrades as schedule
 * length growth dominates — most sharply for the kernels with
 * loop-carried index dependencies (Rijndael, Sort1/Sort2).
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

/** Total kernel execution lane-cycles of a run (Figure 15 metric). */
double
kernelTime(const WorkloadResult &r)
{
    double t = 0;
    for (const auto &kv : r.kernelBw)
        t += static_cast<double>(kv.second.laneCycles);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Execution time of in-lane indexed kernels vs address/data "
            "separation (ISRF4)", "Figure 15");

    const std::vector<std::string> benches = {"FFT 2D", "Rijndael",
                                              "Filter", "Sort"};
    std::vector<uint32_t> seps = {2, 4, 6, 8, 10};

    std::vector<std::string> header = {"Benchmark"};
    for (uint32_t s : seps)
        header.push_back("sep=" + std::to_string(s));
    Table t(header);

    for (const auto &name : benches) {
        std::vector<double> times;
        for (uint32_t s : seps) {
            WorkloadOptions opts;
            opts.repeats = 2;
            opts.separationOverride = s;
            std::fprintf(stderr, "  [running %s at sep=%u...]\n",
                         name.c_str(), s);
            WorkloadResult r = runWorkload(name, MachineKind::ISRF4,
                                           opts);
            times.push_back(kernelTime(r));
        }
        double best = *std::min_element(times.begin(), times.end());
        std::vector<std::string> row = {name};
        for (double v : times)
            row.push_back(fmtDouble(v / best, 3));
        t.addRow(row);
    }
    std::printf("Kernel execution time normalized to each kernel's "
                "best separation:\n%s\n", t.render().c_str());
    std::printf("Expected: improvement then degradation; the paper's "
                "default is 6 cycles (§5.1).\n");
    finishBench(args);
    return 0;
}
