/**
 * @file
 * Extension of §4.4: per-benchmark access-energy estimates.
 *
 * The paper argues indexed SRF accesses are cheap in energy terms —
 * ~4x a sequential SRF word but an order of magnitude below an
 * off-chip DRAM access — so replacing memory traffic with indexed SRF
 * traffic is an energy win wherever it is a bandwidth win. This bench
 * combines the measured access counts of every benchmark with the
 * §4.4 energy model to quantify that.
 */
#include "area/energy.h"
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Access-energy estimates per benchmark (Base vs ISRF4)",
            "extends Section 4.4");

    WorkloadOptions opts;
    opts.repeats = 2;
    ResultCache cache(opts, args.jobs);
    cache.prefetch(benchmarkOrder(),
                   {MachineKind::Base, MachineKind::ISRF4});
    EnergyModel energy;

    auto estimate = [&](const WorkloadResult &r) {
        EnergyCounts c;
        c.seqSrfWords = r.srfSeqWords;
        c.idxSrfWords = r.srfIdxWords;
        c.cacheWords = r.cacheWords;
        c.dramWords = r.dramWords;
        return energy.estimate(c);
    };

    Table t({"Benchmark", "Base total (uJ)", "Base DRAM share",
             "ISRF4 total (uJ)", "ISRF4 idx-SRF share", "Energy ratio"});
    for (const auto &name : benchmarkOrder()) {
        EnergyEstimate base = estimate(cache.get(name,
                                                 MachineKind::Base));
        EnergyEstimate isrf = estimate(cache.get(name,
                                                 MachineKind::ISRF4));
        t.addRow({name, fmtDouble(base.totalNj() / 1000.0, 1),
                  fmtDouble(100.0 * base.dramNj / base.totalNj(), 1) +
                      "%",
                  fmtDouble(isrf.totalNj() / 1000.0, 1),
                  fmtDouble(100.0 * isrf.idxSrfNj / isrf.totalNj(), 1) +
                      "%",
                  fmtDouble(isrf.totalNj() / base.totalNj(), 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("DRAM dominates access energy on Base; replacing its "
                "traffic with indexed SRF\naccesses (4x a sequential "
                "word, ~50x below DRAM) makes every bandwidth win an\n"
                "energy win — largest for Rijndael, none for "
                "Sort/Filter.\n");
    finishBench(args, cache);
    return 0;
}
