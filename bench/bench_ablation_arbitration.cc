/**
 * @file
 * Ablation (§5.4): SRF-port arbitration policy.
 *
 * The paper used simple round-robin arbitration and reports that
 * "complex arbiters that prioritize streams likely to cause stalls
 * were found to provide less than 10% improvement in throughput."
 * This ablation runs the indexed-access-heavy benchmarks under both
 * policies and checks that claim on our model.
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Arbitration-policy ablation: round-robin vs stall-aware "
            "indexed priority", "Section 5.4 (<10% claim)");

    const std::vector<std::string> benches = {"Rijndael", "Filter",
                                              "FFT 2D", "IG_SML"};
    Table t({"Benchmark", "Round-robin (cycles)",
             "Indexed-priority (cycles)", "Gain"});
    double maxGain = 0;
    for (const auto &name : benches) {
        WorkloadOptions opts;
        opts.repeats = 2;
        const auto &reg = workloadRegistry();

        MachineConfig rr = MachineConfig::isrf4();
        rr.srf.arbPolicy = ArbPolicy::RoundRobin;
        std::fprintf(stderr, "  [running %s round-robin...]\n",
                     name.c_str());
        WorkloadResult a = reg.at(name)(rr, opts);

        MachineConfig pri = MachineConfig::isrf4();
        pri.srf.arbPolicy = ArbPolicy::IndexedPriority;
        std::fprintf(stderr, "  [running %s indexed-priority...]\n",
                     name.c_str());
        WorkloadResult b = reg.at(name)(pri, opts);

        double gain = static_cast<double>(a.cycles) /
            static_cast<double>(b.cycles) - 1.0;
        maxGain = std::max(maxGain, gain);
        t.addRow({name, std::to_string(a.cycles),
                  std::to_string(b.cycles),
                  fmtDouble(100.0 * gain, 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Largest gain from the stall-aware arbiter: %.1f%% "
                "(paper: <10%%) -> %s\n", 100.0 * maxGain,
                maxGain < 0.10 ? "round-robin is the right choice"
                               : "EXCEEDS the paper's bound");
    finishBench(args);
    return 0;
}
