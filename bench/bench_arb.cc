/**
 * @file
 * Microbenchmark of the SRF port-arbitration hot path (host side, like
 * bench_components — this measures the *simulator*, not the modeled
 * hardware). Four fixed-work scenarios cover the regimes the
 * event-driven overhaul cares about:
 *
 *   arb/idle-heavy      zero-claim cycles dominate (quiescent machine)
 *   arb/conflict-heavy  every claimant claims every cycle
 *   srf/quiescent       full Srf::endCycle() with nothing pending
 *                       (the zero-mask fast path)
 *   srf/seq-stream      Srf::endCycle() with a live sequential stream
 *                       (mask maintenance + global arbitration)
 *
 * --bench-json writes an isrf-perf-record-v1 record so tools/perf_diff
 * gates arbitration regressions specifically, not just whole-sweep
 * wall time (CI perf job; committed baseline in bench/baselines/).
 */
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "srf/arbiter.h"
#include "srf/srf.h"
#include "util/random.h"

namespace isrf {
namespace bench {
namespace {

struct Scenario
{
    const char *workload;  ///< perf-record "workload" field
    const char *name;      ///< perf-record "machine" field
    uint64_t ops;          ///< iterations executed
    double seconds;        ///< measured wall time
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Arbitrate over a pre-generated claim-mask trace so the measured loop
 * is arbitration only, not mask synthesis. Returns the grant checksum
 * to keep the loop observable.
 */
uint64_t
runArbiter(const std::vector<uint64_t> &trace, uint64_t iters,
           uint32_t claimants, Scenario &sc)
{
    RoundRobinArbiter arb(claimants);
    uint64_t sum = 0;
    double t0 = now();
    for (uint64_t i = 0; i < iters; i++) {
        sum += static_cast<uint64_t>(
            arb.arbitrate(trace[i & (trace.size() - 1)]) + 1);
    }
    sc.seconds = now() - t0;
    sc.ops = iters;
    return sum;
}

Scenario
benchIdleHeavy(uint64_t iters)
{
    Scenario sc{"arb", "idle-heavy", 0, 0.0};
    // One claim every 64 cycles; everything else is the zero-mask
    // early-out the quiescent machine hits.
    std::vector<uint64_t> trace(1024, 0);
    Rng rng(7);
    for (size_t i = 0; i < trace.size(); i += 64)
        trace[i] = uint64_t{1} << rng.below(33);
    uint64_t sum = runArbiter(trace, iters, 33, sc);
    progressf("  idle-heavy checksum %llu\n",
              static_cast<unsigned long long>(sum));
    return sc;
}

Scenario
benchConflictHeavy(uint64_t iters)
{
    Scenario sc{"arb", "conflict-heavy", 0, 0.0};
    // All 33 claimants (32 slots + the indexed bundle) claim every
    // cycle: maximum rotation pressure.
    std::vector<uint64_t> trace(1024, (uint64_t{1} << 33) - 1);
    uint64_t sum = runArbiter(trace, iters, 33, sc);
    progressf("  conflict-heavy checksum %llu\n",
              static_cast<unsigned long long>(sum));
    return sc;
}

Scenario
benchSrfQuiescent(uint64_t iters)
{
    Scenario sc{"srf", "quiescent", iters, 0.0};
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    double t0 = now();
    for (uint64_t c = 0; c < iters; c++) {
        srf.beginCycle(c);
        srf.endCycle(c);
    }
    sc.seconds = now() - t0;
    progressf("  quiescent idle credit %llu\n",
              static_cast<unsigned long long>(
                  srf.stats().counter("port_idle_cycles").value()));
    return sc;
}

Scenario
benchSrfSeqStream(uint64_t iters)
{
    Scenario sc{"srf", "seq-stream", iters, 0.0};
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.lengthWords = 16384;  // half the SRF
    SlotId id = srf.openSlot(cfg);
    std::vector<Word> data(16384, 5);
    srf.fillSlot(id, data);
    uint64_t popped = 0;
    double t0 = now();
    for (uint64_t c = 0; c < iters; c++) {
        srf.beginCycle(c);
        // Drain so the refill machinery keeps claiming the port;
        // rewind for another pass whenever the stream runs dry.
        for (uint32_t l = 0; l < geom.lanes; l++) {
            while (srf.seqCanRead(l, id)) {
                srf.seqRead(l, id);
                popped++;
            }
        }
        srf.endCycle(c);
        if (popped == cfg.lengthWords) {
            popped = 0;
            srf.rewindSlot(id);
        }
    }
    sc.seconds = now() - t0;
    progressf("  seq-stream grants %llu\n",
              static_cast<unsigned long long>(
                  srf.stats().counter("seq_grant_cycles").value()));
    return sc;
}

void
writeArbPerfJson(const std::string &path, const BenchArgs &args,
                 const std::vector<Scenario> &scenarios)
{
    double wall = 0.0;
    uint64_t ops = 0;
    for (const Scenario &sc : scenarios) {
        wall += sc.seconds;
        ops += sc.ops;
    }
    JsonWriter w;
    w.beginObject();
    w.field("schema", std::string(kPerfRecordSchema));
    w.field("bench", std::string("arb"));
    w.field("git_sha", gitSha());
    w.key("host").beginObject();
    w.field("cpus", static_cast<uint64_t>(
        std::thread::hardware_concurrency()));
    w.field("jobs", static_cast<uint64_t>(args.jobs));
    w.field("engine_mode", std::string("n/a"));
    w.endObject();
    w.key("totals").beginObject();
    w.field("wall_seconds", wall);
    w.field("sum_job_seconds", wall);
    w.field("speedup", 1.0);
    w.field("jobs", static_cast<uint64_t>(scenarios.size()));
    w.field("failed", static_cast<uint64_t>(0));
    w.field("replayed", static_cast<uint64_t>(0));
    w.field("sim_cycles", ops);
    w.field("sim_cycles_per_second",
            wall > 0.0 ? static_cast<double>(ops) / wall : 0.0);
    w.endObject();
    w.key("jobs").beginArray();
    for (const Scenario &sc : scenarios) {
        w.beginObject();
        w.field("workload", std::string(sc.workload));
        w.field("machine", std::string(sc.name));
        w.field("status", std::string("done"));
        w.field("wall_seconds", sc.seconds);
        w.field("sim_cycles", sc.ops);
        w.field("sim_cycles_per_second",
                sc.seconds > 0.0
                    ? static_cast<double>(sc.ops) / sc.seconds
                    : 0.0);
        w.field("replayed", false);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote perf record to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     path.c_str());
}

} // namespace
} // namespace bench
} // namespace isrf

int
main(int argc, char **argv)
{
    using namespace isrf;
    using namespace isrf::bench;

    std::string benchJsonPath;
    uint64_t scale = 1;
    BenchArgs args = parseBenchArgs(argc, argv, {
        {"--bench-json", true,
         [&](const std::string &v) { benchJsonPath = v; }},
        {"--scale", true,
         [&](const std::string &v) {
             if (!parseU64(v, scale) || scale == 0 || scale > 1000) {
                 std::fprintf(stderr, "--scale expects [1,1000]\n");
                 std::exit(2);
             }
         }},
    });
    heading("SRF port-arbitration microbenchmark",
            "host-side hot path (no paper figure); gates the "
            "event-driven arbitration overhaul");

    std::vector<Scenario> scenarios;
    scenarios.push_back(benchIdleHeavy(scale * 100000000));
    scenarios.push_back(benchConflictHeavy(scale * 100000000));
    scenarios.push_back(benchSrfQuiescent(scale * 20000000));
    scenarios.push_back(benchSrfSeqStream(scale * 1000000));

    Table t({"Scenario", "Ops", "Wall (s)", "Mops/s"});
    for (const Scenario &sc : scenarios) {
        t.addRow({std::string(sc.workload) + "/" + sc.name,
               strprintf("%llu",
                         static_cast<unsigned long long>(sc.ops)),
               strprintf("%.3f", sc.seconds),
               strprintf("%.1f", sc.seconds > 0.0
                                     ? static_cast<double>(sc.ops) /
                                           sc.seconds / 1e6
                                     : 0.0)});
    }
    std::fputs(t.render().c_str(), stdout);

    if (!benchJsonPath.empty())
        writeArbPerfJson(benchJsonPath, args, scenarios);
    finishBench(args);
    return 0;
}
