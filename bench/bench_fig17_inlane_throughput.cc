/**
 * @file
 * Figure 17: sustained in-lane indexed SRF throughput as a function of
 * the number of sub-arrays per bank (1/2/4/8) and the address-FIFO
 * size (1..8), under 4 random single-word reads per cycle per cluster.
 *
 * Paper shape: throughput rises with FIFO size (more addresses issue
 * before stalling on conflicts) and with sub-array count (conflict
 * probability falls), but per-sub-array utilization drops at 8
 * sub-arrays because of head-of-line blocking in the FIFOs.
 */
#include "bench_util.h"
#include "workloads/micro.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("In-lane indexed throughput vs sub-arrays and FIFO size "
            "(words/cycle/lane)", "Figure 17");

    std::vector<uint32_t> subArrays = {1, 2, 4, 8};
    std::vector<uint32_t> fifos = {1, 2, 3, 4, 6, 8};

    std::vector<std::string> header = {"Sub-arrays/bank"};
    for (uint32_t f : fifos)
        header.push_back("FIFO=" + std::to_string(f));
    Table t(header);

    for (uint32_t s : subArrays) {
        std::vector<std::string> row = {std::to_string(s)};
        for (uint32_t f : fifos) {
            InLaneMicroParams p;
            p.subArrays = s;
            p.fifoSize = f;
            row.push_back(fmtDouble(inLaneRandomThroughput(p), 3));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());

    // Utilization check: throughput per sub-array must fall with s.
    InLaneMicroParams p4, p8;
    p4.subArrays = 4;
    p8.subArrays = 8;
    double u4 = inLaneRandomThroughput(p4) / 4.0;
    double u8 = inLaneRandomThroughput(p8) / 8.0;
    std::printf("Per-sub-array utilization at FIFO=8: s=4 -> %.3f, "
                "s=8 -> %.3f\n(head-of-line blocking: utilization "
                "drops as sub-arrays increase)\n", u4, u8);
    finishBench(args);
    return 0;
}
