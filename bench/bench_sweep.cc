/**
 * @file
 * Full-matrix parallel sweep: every paper benchmark on every machine
 * configuration (8 x 4 = 32 independent simulations) through the
 * SweepRunner thread pool. --suite sparse swaps in the sparse &
 * stencil family (SpMV/Stencil/Histogram), --suite all runs both, and
 * --dataset <file.mtx> appends an external SpMV workload to whichever
 * suite is selected.
 *
 * Prints per-job wall time, total wall time, and the aggregate
 * parallel speedup (sum of job times / sweep wall time). The --json
 * results report contains *only* simulation results — no timing — so
 * it is byte-identical for any --jobs value; timing goes to the
 * separate --timing-json report, and --bench-json writes the
 * isrf-perf-record-v1 perf record (git SHA, host metadata, per-job
 * wall times, sim-cycles/second, aggregated ISRF_PROFILE profile)
 * consumed by tools/perf_diff and CI's perf job (DESIGN.md §13).
 *
 * Resilience (DESIGN.md §Sweep resilience): with --journal each
 * finished job is durably appended to a JSONL journal; --resume
 * replays journaled jobs so a killed sweep continues where it stopped,
 * with a --json report byte-identical to an uninterrupted run's.
 * --timeout-s bounds each attempt's wall-clock time and --retries
 * re-runs TimedOut/Stalled attempts with jittered backoff. The hidden
 * --with-hang flag injects a synthetic never-terminating job (used by
 * CI to prove a hung job cannot block the sweep).
 */
#include <cinttypes>
#include <csignal>
#include <cstdlib>

#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

/**
 * Root cancel token tripped by SIGINT/SIGTERM. Before this handler the
 * default disposition killed the process mid-sweep, abandoning the
 * journal's final record mid-append more often than necessary; now
 * in-flight jobs finish as Cancelled at the next cycle boundary and
 * the journal closes cleanly (the torn-tail recovery on resume becomes
 * the SIGKILL-only path it was designed to be). CancelToken::cancel()
 * is one relaxed atomic store — async-signal-safe.
 */
CancelToken gSignalCancel;
volatile std::sig_atomic_t gSignalSeen = 0;

void
onTerminationSignal(int sig)
{
    gSignalSeen = sig;
    gSignalCancel.cancel();
}

void
writeTimingJson(const std::string &path, const SweepRunner &runner,
                const std::vector<SweepOutcome> &outcomes)
{
    const SweepTiming &t = runner.timing();
    JsonWriter w;
    w.beginObject();
    w.key("threads").value(static_cast<uint64_t>(t.threads));
    w.key("wall_seconds").value(t.wallSeconds);
    w.key("sum_job_seconds").value(t.sumJobSeconds);
    w.key("speedup").value(t.speedup());
    w.key("replayed").value(static_cast<uint64_t>(t.replayed));
    // Resume-loss accounting: all zero on a clean resume. Operators
    // (and CI) read these to tell a clean recovery from a lossy one.
    w.key("journal_torn_records")
        .value(static_cast<uint64_t>(t.tornRecordsDropped));
    w.key("journal_torn_bytes")
        .value(static_cast<uint64_t>(t.tornBytesDropped));
    w.key("journal_lines_skipped")
        .value(static_cast<uint64_t>(t.journalLinesSkipped));
    // Checkpoint accounting (all zero without --checkpoint-dir). CI's
    // resilience job asserts a resumed sweep's sim_cycles_executed is
    // strictly below the uninterrupted baseline's — proof the resume
    // actually skipped work instead of silently re-simulating.
    w.key("checkpoint_saves").value(t.checkpointSaves);
    w.key("checkpoint_restores").value(t.checkpointRestores);
    w.key("sim_cycles_executed").value(t.simCyclesExecuted);
    w.key("jobs").beginArray();
    for (const auto &o : outcomes) {
        w.beginObject();
        w.key("workload").value(o.workload);
        w.key("machine").value(machineKindName(o.kind));
        w.key("wall_seconds").value(o.wallSeconds);
        w.key("cycles").value(o.result.cycles);
        w.key("correct").value(o.result.correct);
        w.key("status").value(std::string(runStatusName(o.status)));
        w.key("attempts").value(static_cast<uint64_t>(o.attempts));
        w.key("from_journal").value(o.fromJournal);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote timing JSON to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     path.c_str());
}

/**
 * Write the sweep --json report by splicing each outcome's canonical
 * resultText. For executed jobs resultText is exactly resultJson(), so
 * this matches the historical writeBenchJson() output byte for byte;
 * for journal-replayed jobs it is the journaled bytes — which is what
 * makes a resumed run's report byte-identical to an uninterrupted
 * run's.
 */
void
writeSweepJson(const std::string &path,
               const std::vector<SweepOutcome> &outcomes)
{
    std::map<std::string, const SweepOutcome *> ordered;
    for (const auto &o : outcomes)
        ordered.emplace(o.workload + "/" + machineKindName(o.kind), &o);
    JsonWriter w;
    w.beginObject();
    w.key("results").beginObject();
    for (const auto &kv : ordered)
        w.key(kv.first).raw(kv.second->resultText.empty()
                                ? resultJson(kv.second->result)
                                : kv.second->resultText);
    w.endObject();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote JSON results to %s\n",
                     path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     path.c_str());
}

/**
 * A component that is never quiescent: nextEvent is always now + 1, so
 * the engine can never skip ahead and a hang burns cycles identically
 * under ISRF_ENGINE=dense and skip.
 */
struct Spinner : Ticked
{
    uint64_t ticks = 0;
    void tick(Cycle) override { ticks++; }
    Cycle nextEvent(Cycle now) override { return now + 1; }
    std::string tickedName() const override { return "spinner"; }
};

/**
 * Synthetic hung job (--with-hang): drives a real Engine with a
 * predicate that never holds, exercising the genuine cooperative-
 * deadline exit path. Without --timeout-s (or an external cancel) it
 * runs to the 2^40-cycle limit — i.e., effectively forever.
 */
WorkloadResult
runHang(const MachineConfig &cfg, const WorkloadOptions &opts)
{
    WorkloadResult res;
    res.workload = "Hang";
    res.kind = cfg.kind;
    Engine eng;
    eng.setMode(cfg.engineMode);
    Spinner spin;
    eng.add(&spin);
    eng.setCancel(opts.cancel);
    RunResult r = eng.runUntil([] { return false; }, 1ull << 40);
    res.status = r.status == RunStatus::Limit ? RunStatus::Stalled
                                              : r.status;
    res.cycles = r.cycles;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    // Sweep-only flags, handled by the shared parser (BenchFlag hook).
    std::string timingPath;
    std::string benchJsonPath;
    std::string suite = "paper";
    std::string checkpointDir;
    uint64_t checkpointEvery = 0;
    bool withHang = false;
    BenchArgs args = parseBenchArgs(argc, argv, {
        {"--timing-json", true,
         [&](const std::string &v) { timingPath = v; }},
        {"--bench-json", true,
         [&](const std::string &v) { benchJsonPath = v; }},
        {"--suite", true,
         [&](const std::string &v) {
             if (v != "paper" && v != "sparse" && v != "all") {
                 std::fprintf(stderr, "--suite expects paper, sparse "
                              "or all, got '%s'\n", v.c_str());
                 std::exit(2);
             }
             suite = v;
         }},
        {"--checkpoint-dir", true,
         [&](const std::string &v) { checkpointDir = v; }},
        {"--checkpoint-every-cycles", true,
         [&](const std::string &v) {
             char *end = nullptr;
             checkpointEvery = std::strtoull(v.c_str(), &end, 10);
             if (end == v.c_str() || *end != '\0') {
                 std::fprintf(stderr, "--checkpoint-every-cycles "
                              "expects a cycle count, got '%s'\n",
                              v.c_str());
                 std::exit(2);
             }
         }},
        {"--with-hang", false,
         [&](const std::string &) { withHang = true; }},
    });
    if (!checkpointDir.empty() && checkpointEvery == 0)
        checkpointEvery = 250000;  // sensible default cadence

    // --suite paper is the default so the perf job's 32-job contract
    // (8 paper benchmarks x 4 machines) holds without flags; sparse
    // adds the irregular-access family, and --dataset workloads ride
    // along with whichever suite is selected.
    std::vector<std::string> names;
    if (suite == "paper" || suite == "all")
        names.insert(names.end(), benchmarkOrder().begin(),
                     benchmarkOrder().end());
    if (suite == "sparse" || suite == "all")
        names.insert(names.end(), sparseBenchmarkOrder().begin(),
                     sparseBenchmarkOrder().end());
    names.insert(names.end(), args.datasetWorkloads.begin(),
                 args.datasetWorkloads.end());

    heading("Parallel full-matrix sweep (benchmarks x 4 configs)",
            "driver for Figures 11-13 data; results are --jobs "
            "invariant");

    WorkloadOptions opts;
    opts.repeats = 2;
    auto jobs = SweepRunner::matrix(names, machineOrder(), opts);
    if (withHang) {
        SweepJob hang;
        hang.workload = "Hang";
        hang.cfg = MachineConfig::make(MachineKind::Base).fromEnv();
        hang.opts = opts;
        hang.runner = runHang;
        jobs.push_back(std::move(hang));
    }

    SweepPolicy policy;
    policy.timeoutSeconds = args.timeoutSeconds;
    policy.retries = args.retries;
    policy.journalPath = args.journalPath;
    policy.resume = args.resume;
    policy.cancel = &gSignalCancel;
    policy.checkpointDir = checkpointDir;
    policy.checkpointEveryCycles = checkpointEvery;
    std::signal(SIGINT, onTerminationSignal);
    std::signal(SIGTERM, onTerminationSignal);

    SweepRunner runner(args.jobs);
    std::printf("running %zu jobs on %u thread(s)...\n\n", jobs.size(),
                args.jobs);
    auto outcomes = runner.run(jobs, policy,
        [](const SweepJob &job, bool finished, size_t done,
           size_t total) {
            if (finished)
                progressf("  [%zu/%zu] %s on %s done\n", done, total,
                          job.workload.c_str(),
                          job.cfg.name().c_str());
        });

    Table t({"Benchmark", "Config", "Cycles", "Correct", "Status",
             "Att", "Wall (s)"});
    bool allGood = true;
    for (const auto &o : outcomes) {
        allGood = allGood &&
            o.status == RunStatus::Done && o.result.correct;
        t.addRow({o.workload, machineKindName(o.kind),
                  std::to_string(o.result.cycles),
                  o.result.correct ? "yes" : "NO",
                  o.fromJournal
                      ? std::string(runStatusName(o.status)) + "*"
                      : runStatusName(o.status),
                  std::to_string(o.attempts),
                  fmtDouble(o.wallSeconds, 3)});
    }
    std::printf("%s\n", t.render().c_str());
    if (runner.timing().replayed > 0)
        std::printf("(* = replayed from journal %s)\n\n",
                    args.journalPath.c_str());

    const SweepTiming &timing = runner.timing();
    std::printf("threads:            %u\n", timing.threads);
    std::printf("total wall time:    %.3f s\n", timing.wallSeconds);
    std::printf("sum of job times:   %.3f s\n", timing.sumJobSeconds);
    if (args.resume) {
        // One line an operator can grep to tell a clean resume from a
        // lossy one: how much journal input was dropped on recovery.
        if (timing.tornRecordsDropped || timing.journalLinesSkipped)
            std::printf("replayed jobs:      %zu (lossy resume: "
                        "%zu torn record(s) dropped, %zu bytes; "
                        "%zu blank line(s) skipped)\n",
                        timing.replayed, timing.tornRecordsDropped,
                        timing.tornBytesDropped,
                        timing.journalLinesSkipped);
        else
            std::printf("replayed jobs:      %zu (clean resume, no "
                        "journal lines dropped)\n", timing.replayed);
    } else {
        std::printf("replayed jobs:      %zu\n", timing.replayed);
    }
    if (!checkpointDir.empty())
        std::printf("checkpoints:        %" PRIu64 " saved, %" PRIu64
                    " restored; %" PRIu64 " sim cycles executed\n",
                    timing.checkpointSaves, timing.checkpointRestores,
                    timing.simCyclesExecuted);
    std::printf("aggregate speedup:  %.2fx\n", timing.speedup());
    std::printf("all done+correct:   %s\n", allGood ? "yes" : "NO");
    if (gSignalSeen) {
        std::printf("interrupted by signal %d: in-flight jobs finished "
                    "as cancelled, journal closed cleanly%s\n",
                    static_cast<int>(gSignalSeen),
                    args.journalPath.empty()
                        ? ""
                        : "; re-run with --resume to continue");
    }

    if (!args.jsonPath.empty())
        writeSweepJson(args.jsonPath, outcomes);
    if (!timingPath.empty())
        writeTimingJson(timingPath, runner, outcomes);
    if (!benchJsonPath.empty())
        writeBenchPerfJson(benchJsonPath, "sweep", args,
                           engineModeName(jobs[0].cfg.engineMode),
                           runner, outcomes);
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
    return allGood ? 0 : 1;
}
