/**
 * @file
 * Full-matrix parallel sweep: every paper benchmark on every machine
 * configuration (8 x 4 = 32 independent simulations) through the
 * SweepRunner thread pool.
 *
 * Prints per-job wall time, total wall time, and the aggregate
 * parallel speedup (sum of job times / sweep wall time). The --json
 * results report contains *only* simulation results — no timing — so
 * it is byte-identical for any --jobs value; timing goes to the
 * separate --timing-json report.
 */
#include <cinttypes>

#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

void
writeTimingJson(const std::string &path, const SweepRunner &runner,
                const std::vector<SweepOutcome> &outcomes)
{
    const SweepTiming &t = runner.timing();
    JsonWriter w;
    w.beginObject();
    w.key("threads").value(static_cast<uint64_t>(t.threads));
    w.key("wall_seconds").value(t.wallSeconds);
    w.key("sum_job_seconds").value(t.sumJobSeconds);
    w.key("speedup").value(t.speedup());
    w.key("jobs").beginArray();
    for (const auto &o : outcomes) {
        w.beginObject();
        w.key("workload").value(o.workload);
        w.key("machine").value(machineKindName(o.kind));
        w.key("wall_seconds").value(o.wallSeconds);
        w.key("cycles").value(o.result.cycles);
        w.key("correct").value(o.result.correct);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote timing JSON to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off --timing-json before the shared parser sees it.
    std::string timingPath;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        if (std::string(argv[i]) == "--timing-json" && i + 1 < argc) {
            timingPath = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    BenchArgs args = parseBenchArgs(static_cast<int>(rest.size()),
                                    rest.data());
    heading("Parallel full-matrix sweep (8 benchmarks x 4 configs)",
            "driver for Figures 11-13 data; results are --jobs "
            "invariant");

    WorkloadOptions opts;
    opts.repeats = 2;
    auto jobs = SweepRunner::matrix(benchmarkOrder(), machineOrder(),
                                    opts);

    SweepRunner runner(args.jobs);
    std::printf("running %zu jobs on %u thread(s)...\n\n", jobs.size(),
                args.jobs);
    auto outcomes = runner.run(jobs,
        [](const SweepJob &job, bool finished, size_t done,
           size_t total) {
            if (finished)
                progressf("  [%zu/%zu] %s on %s done\n", done, total,
                          job.workload.c_str(),
                          job.cfg.name().c_str());
        });

    Table t({"Benchmark", "Config", "Cycles", "Correct", "Wall (s)"});
    bool allCorrect = true;
    for (const auto &o : outcomes) {
        allCorrect = allCorrect && o.result.correct;
        t.addRow({o.workload, machineKindName(o.kind),
                  std::to_string(o.result.cycles),
                  o.result.correct ? "yes" : "NO",
                  fmtDouble(o.wallSeconds, 3)});
    }
    std::printf("%s\n", t.render().c_str());

    const SweepTiming &timing = runner.timing();
    std::printf("threads:            %u\n", timing.threads);
    std::printf("total wall time:    %.3f s\n", timing.wallSeconds);
    std::printf("sum of job times:   %.3f s\n", timing.sumJobSeconds);
    std::printf("aggregate speedup:  %.2fx\n", timing.speedup());
    std::printf("all correct:        %s\n", allCorrect ? "yes" : "NO");

    if (!args.jsonPath.empty()) {
        // Deterministic, timing-free: byte-identical across --jobs.
        std::map<std::string, WorkloadResult> results;
        for (const auto &o : outcomes)
            results.emplace(o.workload + "/" + machineKindName(o.kind),
                            o.result);
        writeBenchJson(args.jsonPath, results);
    }
    if (!timingPath.empty())
        writeTimingJson(timingPath, runner, outcomes);
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
    return allCorrect ? 0 : 1;
}
