/**
 * @file
 * Table 4: parameters of the IG benchmark datasets — FP ops per
 * neighbor, average graph degree, and the strip sizes (neighbor
 * records per kernel invocation) for the base and indexed SRF
 * implementations, which are set to occupy approximately the same SRF
 * storage (§5.2).
 */
#include "bench_util.h"
#include "workloads/igraph.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("IG benchmark dataset parameters", "Table 4");

    Table t({"Data set", "FP ops/neighbor", "Avg degree (target)",
             "Avg degree (gen.)", "Nodes", "Edges",
             "Strip (Base)", "Strip (Indexed)", "Ratio"});
    for (const auto &ds : igDatasets()) {
        IgGraph g = igGenerate(ds, 12345);
        IgStripSizes s = igStripSizes(ds);
        double avgDeg = static_cast<double>(g.edges()) / g.nodes;
        t.addRow({ds.name, std::to_string(ds.fpOpsPerNeighbor),
                  std::to_string(ds.avgDegree), fmtDouble(avgDeg, 2),
                  std::to_string(ds.nodes),
                  std::to_string(g.edges()),
                  std::to_string(s.baseNeighbors),
                  std::to_string(s.indexedNeighbors),
                  fmtDouble(static_cast<double>(s.indexedNeighbors) /
                            s.baseNeighbors, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper's Table 4 strip sizes: IG_SML/IG_SCL 1163 -> "
                "2316, IG_DMS/IG_DCS 265 -> 528\n(indexed strips are "
                "~2x because replication is eliminated; strip size is "
                "the\nnumber of neighbor records processed per kernel "
                "invocation).\n");
    finishBench(args);
    return 0;
}
