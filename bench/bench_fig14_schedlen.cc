/**
 * @file
 * Figure 14: static schedule length (loop initiation interval) of the
 * benchmark kernels' inner loops as the indexed address/data
 * separation grows (2-10 cycles in-lane, 2-24 cross-lane), normalized
 * to the shortest separation.
 *
 * Paper shape: Rijndael, Sort1 and Sort2 have loop-carried
 * dependencies through their index computations, so their schedule
 * length grows rapidly with separation; FFT 2D, Filter and the IGraph
 * kernels software-pipeline the separation away and stay flat (small
 * fluctuations come from the scheduler's randomized tie-breaking).
 */
#include <memory>

#include "bench_util.h"
#include "kernel/scheduler.h"
#include "workloads/fft.h"
#include "workloads/filter.h"
#include "workloads/igraph.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Static schedule length of kernel inner loops vs "
            "address/data separation", "Figure 14");

    struct Entry
    {
        const char *name;
        KernelGraph graph;
        bool crossLane;
    };
    std::vector<Entry> kernels;
    kernels.push_back({"FFT2D", fftStageIdxGraph(), false});
    kernels.push_back({"Rijndael", rijndaelRoundIdxGraph(), false});
    kernels.push_back({"Sort1", sortLocalIdxGraph(), false});
    kernels.push_back({"Sort2", sortGlobalIdxGraph(), false});
    kernels.push_back({"Filter", filterIdxGraph(), false});
    kernels.push_back({"IGraph1", igIdxKernelGraph(16), true});
    kernels.push_back({"IGraph2", igIdxKernelGraph(51), true});

    ModuloScheduler sched;

    std::vector<uint32_t> seps = {2, 4, 6, 8, 10, 12, 16, 20, 24};
    std::vector<std::string> header = {"Kernel"};
    for (uint32_t s : seps)
        header.push_back("sep=" + std::to_string(s));
    Table raw(header);
    Table norm(header);

    for (auto &k : kernels) {
        std::vector<std::string> rawRow = {k.name};
        std::vector<std::string> normRow = {k.name};
        uint32_t maxSep = k.crossLane ? 24 : 10;
        double first = 0;
        for (uint32_t s : seps) {
            if (s > maxSep) {
                rawRow.push_back("-");
                normRow.push_back("-");
                continue;
            }
            uint32_t ii = sched.schedule(k.graph, s).ii;
            if (first == 0)
                first = ii;
            rawRow.push_back(std::to_string(ii));
            normRow.push_back(fmtDouble(ii / first, 2));
        }
        raw.addRow(rawRow);
        norm.addRow(normRow);
    }
    std::printf("Loop length (cycles, absolute II):\n%s\n",
                raw.render().c_str());
    std::printf("Loop length normalized to separation 2 (the Figure 14 "
                "curves):\n%s\n", norm.render().c_str());
    std::printf("Expected: Rijndael/Sort1/Sort2 grow (loop-carried "
                "index computation);\nFFT2D/Filter/IGraph1/IGraph2 stay "
                "flat (software pipelining).\n");
    finishBench(args);
    return 0;
}
