/**
 * @file
 * Figure 13: sustained SRF bandwidth demands (words/cycle/cluster) of
 * the benchmark kernels on ISRF4, split into sequential, in-lane
 * indexed, and cross-lane indexed components.
 *
 * Paper shape: Rijndael has the largest in-lane indexed demand (~1.2);
 * Filter is in-lane heavy; the IG kernels are the only cross-lane
 * users (~0.3-0.5); everything stays well under the peak bandwidths,
 * but the bursty patterns rely on decoupled early address issue.
 */
#include <algorithm>

#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Sustained SRF bandwidth demands on ISRF4 "
            "(words/cycle/cluster)", "Figure 13");

    WorkloadOptions opts;
    opts.repeats = 2;
    ResultCache cache(opts, args.jobs);

    // Kernel -> owning benchmark (for running the right workload).
    const std::vector<std::pair<std::string, std::string>> kernels = {
        {"fft2d", "FFT 2D"},     {"rijndael", "Rijndael"},
        {"sort1", "Sort"},       {"sort2", "Sort"},
        {"filter", "Filter"},    {"igraph1", "IG_SML"},
        {"igraph2", "IG_SCL"},
    };
    {
        std::vector<std::string> benches;
        for (const auto &[kernel, benchName] : kernels)
            if (std::find(benches.begin(), benches.end(), benchName) ==
                benches.end())
                benches.push_back(benchName);
        cache.prefetch(benches, {MachineKind::ISRF4});
    }

    Table t({"Kernel", "Sequential", "In-lane idx", "Cross-lane idx",
             "Total"});
    for (const auto &[kernel, benchName] : kernels) {
        const WorkloadResult &r = cache.get(benchName,
                                            MachineKind::ISRF4);
        auto it = r.kernelBw.find(kernel);
        if (it == r.kernelBw.end()) {
            t.addRow({kernel, "-", "-", "-", "-"});
            continue;
        }
        const KernelBwRecord &bw = it->second;
        double seq = bw.seqPerLaneCycle();
        double inl = bw.inLanePerLaneCycle();
        double cross = bw.crossPerLaneCycle();
        t.addRow({kernel, fmtDouble(seq, 3), fmtDouble(inl, 3),
                  fmtDouble(cross, 3), fmtDouble(seq + inl + cross, 3)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Peak bandwidths for reference (Table 3): sequential 4 "
                "words/cycle/cluster,\nin-lane indexed 4, cross-lane "
                "indexed 1.\n");
    finishBench(args, cache);
    return 0;
}
