/**
 * @file
 * Graceful-degradation study: sustained in-lane indexed throughput of
 * the ISRF4 bank as sub-arrays are taken offline (DESIGN.md §Fault
 * model). With all sub-arrays online the bank sustains close to its
 * peak of min(4, subArrays) words/cycle/lane; every sub-array that an
 * uncorrectable-fault burst retires remaps its indexed traffic onto
 * the survivors, so ISRF4 degrades toward ISRF1-like bandwidth instead
 * of failing — throughput must fall monotonically with offline count.
 */
#include "bench_util.h"
#include "workloads/micro.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("SRF graceful degradation (offline sub-arrays)",
            "extends §5.4 / Figure 17 with the fault model");

    const uint32_t subArrays = 4;
    Table t({"Offline sub-arrays", "Online", "Words/cycle/lane",
             "Vs. healthy"});
    std::vector<double> throughputs;
    for (uint32_t off = 0; off < subArrays; off++) {
        InLaneMicroParams p;
        p.subArrays = subArrays;
        p.offlineSubArrays = off;
        std::fprintf(stderr, "  [running with %u/%u sub-arrays "
                     "offline...]\n", off, subArrays);
        double bw = inLaneRandomThroughput(p);
        throughputs.push_back(bw);
        t.addRow({std::to_string(off), std::to_string(subArrays - off),
                  fmtDouble(bw, 3),
                  fmtDouble(100.0 * bw / throughputs.front(), 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: monotonically decreasing throughput; with "
                "one sub-array left the\nISRF4 bank behaves like ISRF1 "
                "(single conflict domain).\n");

    if (!args.jsonPath.empty()) {
        JsonWriter w;
        w.beginObject();
        w.field("sub_arrays", subArrays);
        w.key("throughput_words_per_cycle_per_lane").beginArray();
        for (double bw : throughputs)
            w.value(bw);
        w.endArray();
        w.endObject();
        if (writeTextFile(args.jsonPath, w.str()))
            std::fprintf(stderr, "wrote JSON results to %s\n",
                         args.jsonPath.c_str());
        else
            std::fprintf(stderr, "ERROR: could not write %s\n",
                         args.jsonPath.c_str());
    }
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
    return 0;
}
