/**
 * @file
 * §4.6 area overheads + §4.4 access energies: the CACTI-lite
 * reconstruction of the paper's area claims (ISRF1 +11%, ISRF4 +18%,
 * cross-lane +22% over a sequential 128 KB SRF; cache +100-150%;
 * 1.5%-3% of total die area) and the energy claims (indexed access
 * ~4x a sequential word, ~0.1 nJ, an order of magnitude below DRAM).
 */
#include "area/cacti_lite.h"
#include "area/energy.h"
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

void
printBreakdown(const SrfAreaModel &model, const AreaBreakdown &b)
{
    Table t({"Component", "Area (um^2)", "Share"});
    for (const auto &c : b.components) {
        t.addRow({c.name, fmtDouble(c.um2, 0),
                  fmtDouble(100.0 * c.um2 / b.total(), 1) + "%"});
    }
    std::printf("%s: %.3f mm^2 (overhead over sequential: %+.1f%%)\n%s\n",
                b.name.c_str(), b.mm2(),
                100.0 * model.overheadOver(b), t.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("SRF area overheads and access energy",
            "Section 4.6 (area) and Section 4.4 (energy)");

    SrfAreaModel model;
    printBreakdown(model, model.sequential());
    printBreakdown(model, model.isrf1());
    printBreakdown(model, model.isrf4());
    printBreakdown(model, model.crossLane());
    printBreakdown(model, model.cache());

    Table summary({"Variant", "Overhead over seq. SRF", "Paper",
                   "Die-area increase"});
    auto row = [&](const char *name, const AreaBreakdown &b,
                   const char *paper) {
        double ovh = model.overheadOver(b);
        summary.addRow({name, fmtDouble(100.0 * ovh, 1) + "%", paper,
                        fmtDouble(100.0 * model.dieFraction(ovh), 2) +
                            "%"});
    };
    row("ISRF1", model.isrf1(), "11%");
    row("ISRF4", model.isrf4(), "18%");
    row("ISRF4 + cross-lane", model.crossLane(), "22%");
    row("Vector cache", model.cache(), "100%-150%");
    std::printf("%s\n", summary.render().c_str());
    std::printf("Die share basis: SRF ~13.6%% of the Imagine die [13]; "
                "paper reports 1.5%%-3%% total die increase.\n\n");

    EnergyModel energy;
    Table e({"Access", "Energy/word", "Paper"});
    e.addRow({"Sequential SRF word",
              fmtDouble(energy.params().seqSrfPerWordPj, 0) + " pJ",
              "~25 pJ (1/4 of indexed)"});
    e.addRow({"Indexed SRF word",
              fmtDouble(energy.params().idxSrfPerWordPj, 0) + " pJ",
              "~0.1 nJ"});
    e.addRow({"Cache word",
              fmtDouble(energy.params().cachePerWordPj, 0) + " pJ", "-"});
    e.addRow({"Off-chip DRAM word",
              fmtDouble(energy.params().dramPerWordPj, 0) + " pJ",
              "~5 nJ"});
    std::printf("%s\n", e.render().c_str());
    std::printf("Indexed/sequential energy ratio: %.1fx (paper: ~4x)\n",
                energy.indexedToSeqRatio());
    std::printf("DRAM/indexed energy ratio: %.0fx (paper: 'an order of "
                "magnitude lower' than DRAM)\n",
                energy.dramToIndexedRatio());
    finishBench(args);
    return 0;
}
