/**
 * @file
 * Shared helpers for the benchmark harnesses: standard benchmark and
 * configuration lists, result caching across a binary's tables, and
 * printing conventions.
 */
#ifndef ISRF_BENCH_BENCH_UTIL_H
#define ISRF_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "util/json.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace isrf {
namespace bench {

/** Benchmark order used by the paper's figures. */
inline const std::vector<std::string> &
benchmarkOrder()
{
    static const std::vector<std::string> names = {
        "FFT 2D", "Rijndael", "Sort", "Filter",
        "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
    };
    return names;
}

inline const std::vector<MachineKind> &
machineOrder()
{
    static const std::vector<MachineKind> kinds = {
        MachineKind::Base, MachineKind::ISRF1, MachineKind::ISRF4,
        MachineKind::Cache,
    };
    return kinds;
}

/** Runs-and-caches workload results within one bench binary. */
class ResultCache
{
  public:
    explicit ResultCache(WorkloadOptions opts = {}) : opts_(opts) {}

    const WorkloadResult &
    get(const std::string &name, MachineKind kind)
    {
        auto key = name + "/" + machineKindName(kind);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            std::fprintf(stderr, "  [running %s on %s...]\n",
                         name.c_str(), machineKindName(kind));
            it = cache_.emplace(key,
                                runWorkload(name, kind, opts_)).first;
            if (!it->second.correct) {
                std::fprintf(stderr,
                    "  WARNING: %s on %s failed functional validation\n",
                    name.c_str(), machineKindName(kind));
            }
        }
        return it->second;
    }

    WorkloadOptions &options() { return opts_; }

    /** All results run so far, keyed "workload/machine". */
    const std::map<std::string, WorkloadResult> &results() const
    {
        return cache_;
    }

  private:
    WorkloadOptions opts_;
    std::map<std::string, WorkloadResult> cache_;
};

/** Common command-line options shared by every bench binary. */
struct BenchArgs
{
    std::string jsonPath;   ///< --json: machine-readable results
    std::string tracePath;  ///< --trace: Chrome trace-event JSON
};

/**
 * Parse the standard bench options:
 *   --json <path>            write run results as JSON
 *   --trace <path>           write a Chrome/Perfetto trace
 *   --trace-channels <spec>  restrict tracing (ISRF_TRACE syntax)
 *   --faults <spec>          enable fault injection (ISRF_FAULTS syntax)
 * --trace enables all channels unless a channel spec (or ISRF_TRACE)
 * already selected some. --faults exports the spec as ISRF_FAULTS so
 * every Machine built by the binary picks it up. Exits on unknown
 * options.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    // Force construction so ISRF_TRACE is parsed before any on() check.
    Tracer::instance();
    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s requires an argument\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        if (s == "--json") {
            args.jsonPath = next(i, "--json");
        } else if (s == "--trace") {
            args.tracePath = next(i, "--trace");
        } else if (s == "--trace-channels") {
            Tracer::instance().enableChannels(
                next(i, "--trace-channels"));
        } else if (s == "--faults") {
            setenv("ISRF_FAULTS", next(i, "--faults").c_str(), 1);
        } else if (s == "--help" || s == "-h") {
            std::printf(
                "usage: %s [--json <path>] [--trace <path>] "
                "[--trace-channels <spec>] [--faults <spec>]\n", argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s' (try --help)\n",
                         s.c_str());
            std::exit(2);
        }
    }
    if (!args.tracePath.empty() && !Tracer::on())
        Tracer::instance().enableChannels("all");
    return args;
}

/** Serialize a result map as {"results":{...}} and write it. */
inline void
writeBenchJson(const std::string &path,
               const std::map<std::string, WorkloadResult> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("results").beginObject();
    for (const auto &kv : results) {
        w.key(kv.first);
        resultJson(w, kv.second);
    }
    w.endObject();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote JSON results to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
}

/**
 * Write the --json/--trace outputs for a binary without a ResultCache
 * (its --json report is an empty results object).
 */
inline void
finishBench(const BenchArgs &args)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, {});
    if (args.tracePath.empty())
        return;
    if (Tracer::instance().writeChromeJson(args.tracePath)) {
        std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                     args.tracePath.c_str(), Tracer::instance().size());
    } else {
        std::fprintf(stderr, "ERROR: could not write trace to %s\n",
                     args.tracePath.c_str());
    }
}

/** Write --json results and the --trace output (no-ops without them). */
inline void
finishBench(const BenchArgs &args, const ResultCache &cache)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, cache.results());
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
}

inline void
heading(const char *title, const char *paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paperRef);
    std::printf("==================================================="
                "===========================\n\n");
}

} // namespace bench
} // namespace isrf

#endif // ISRF_BENCH_BENCH_UTIL_H
