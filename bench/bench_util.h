/**
 * @file
 * Shared helpers for the benchmark harnesses: standard benchmark and
 * configuration lists, result caching across a binary's tables, and
 * printing conventions.
 */
#ifndef ISRF_BENCH_BENCH_UTIL_H
#define ISRF_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/table.h"
#include "workloads/workload.h"

namespace isrf {
namespace bench {

/** Benchmark order used by the paper's figures. */
inline const std::vector<std::string> &
benchmarkOrder()
{
    static const std::vector<std::string> names = {
        "FFT 2D", "Rijndael", "Sort", "Filter",
        "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
    };
    return names;
}

inline const std::vector<MachineKind> &
machineOrder()
{
    static const std::vector<MachineKind> kinds = {
        MachineKind::Base, MachineKind::ISRF1, MachineKind::ISRF4,
        MachineKind::Cache,
    };
    return kinds;
}

/** Runs-and-caches workload results within one bench binary. */
class ResultCache
{
  public:
    explicit ResultCache(WorkloadOptions opts = {}) : opts_(opts) {}

    const WorkloadResult &
    get(const std::string &name, MachineKind kind)
    {
        auto key = name + "/" + machineKindName(kind);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            std::fprintf(stderr, "  [running %s on %s...]\n",
                         name.c_str(), machineKindName(kind));
            it = cache_.emplace(key,
                                runWorkload(name, kind, opts_)).first;
            if (!it->second.correct) {
                std::fprintf(stderr,
                    "  WARNING: %s on %s failed functional validation\n",
                    name.c_str(), machineKindName(kind));
            }
        }
        return it->second;
    }

    WorkloadOptions &options() { return opts_; }

  private:
    WorkloadOptions opts_;
    std::map<std::string, WorkloadResult> cache_;
};

inline void
heading(const char *title, const char *paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paperRef);
    std::printf("==================================================="
                "===========================\n\n");
}

} // namespace bench
} // namespace isrf

#endif // ISRF_BENCH_BENCH_UTIL_H
