/**
 * @file
 * Shared helpers for the benchmark harnesses: standard benchmark and
 * configuration lists, result caching across a binary's tables
 * (optionally filled in parallel by the sweep driver), and printing
 * conventions.
 */
#ifndef ISRF_BENCH_BENCH_UTIL_H
#define ISRF_BENCH_BENCH_UTIL_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/perf_diff.h"
#include "driver/sweep_runner.h"
#include "sim/profiler.h"
#include "sim/trace.h"
#include "util/env.h"
#include "util/json.h"
#include "util/table.h"
#include "workloads/external.h"
#include "workloads/workload.h"

namespace isrf {
namespace bench {

/** Benchmark order used by the paper's figures. */
inline const std::vector<std::string> &
benchmarkOrder()
{
    static const std::vector<std::string> names = {
        "FFT 2D", "Rijndael", "Sort", "Filter",
        "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
    };
    return names;
}

/**
 * The sparse & stencil workload family (irregular-access counterpart
 * to benchmarkOrder(); bench_sweep --suite sparse, EXPERIMENTS.md).
 */
inline const std::vector<std::string> &
sparseBenchmarkOrder()
{
    static const std::vector<std::string> names = {
        "SpMV Banded", "SpMV Random", "SpMV Power",
        "Stencil 2D5", "Stencil 2D9", "Stencil 3D27",
        "Histogram",
    };
    return names;
}

inline const std::vector<MachineKind> &
machineOrder()
{
    static const std::vector<MachineKind> kinds = {
        MachineKind::Base, MachineKind::ISRF1, MachineKind::ISRF4,
        MachineKind::Cache,
    };
    return kinds;
}

// ----------------------------------------------------------------------
// Progress printing
// ----------------------------------------------------------------------

/** Suppress progress chatter (--quiet). Results still print. */
inline bool &
quietFlag()
{
    static bool quiet = false;
    return quiet;
}

/**
 * Mutex-guarded progress printer: whole lines go to stderr atomically,
 * so concurrent sweep workers can't interleave garbled output.
 * Silenced by --quiet.
 */
inline void
progressf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline void
progressf(const char *fmt, ...)
{
    static std::mutex mu;
    if (quietFlag())
        return;
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(mu);
    std::fputs(buf, stderr);
}

// ----------------------------------------------------------------------
// Result cache
// ----------------------------------------------------------------------

/**
 * Runs-and-caches workload results within one bench binary.
 *
 * With jobs > 1, prefetch() fills the cache through the SweepRunner
 * thread pool; get() then serves hits. Results are identical to the
 * serial path — each job runs in an isolated simulation context.
 */
class ResultCache
{
  public:
    explicit ResultCache(WorkloadOptions opts = {}, unsigned jobs = 1)
        : opts_(opts), jobs_(jobs ? jobs : 1)
    {
    }

    void setJobs(unsigned jobs) { jobs_ = jobs ? jobs : 1; }
    unsigned jobs() const { return jobs_; }

    /**
     * Run every (workload, kind) pair not yet cached, `jobs_`-wide
     * in parallel, and cache the results in deterministic order.
     */
    void
    prefetch(const std::vector<std::string> &names,
             const std::vector<MachineKind> &kinds)
    {
        std::vector<SweepJob> jobs;
        for (const auto &name : names) {
            for (MachineKind kind : kinds) {
                if (cache_.count(key(name, kind)))
                    continue;
                SweepJob j;
                j.workload = name;
                j.cfg = MachineConfig::make(kind).fromEnv();
                j.opts = opts_;
                jobs.push_back(std::move(j));
            }
        }
        if (jobs.empty())
            return;
        SweepRunner runner(jobs_);
        auto outcomes = runner.run(jobs,
            [](const SweepJob &job, bool finished, size_t done,
               size_t total) {
                progressf("  [%s %s on %s (%zu/%zu)]\n",
                          finished ? "finished" : "running",
                          job.workload.c_str(), job.cfg.name().c_str(),
                          done, total);
            });
        for (auto &o : outcomes) {
            warnIncorrect(o.workload, o.kind, o.result);
            cache_.emplace(key(o.workload, o.kind),
                           std::move(o.result));
        }
    }

    const WorkloadResult &
    get(const std::string &name, MachineKind kind)
    {
        auto k = key(name, kind);
        auto it = cache_.find(k);
        if (it == cache_.end()) {
            progressf("  [running %s on %s...]\n", name.c_str(),
                      machineKindName(kind));
            it = cache_.emplace(k, runWorkload(name, kind, opts_)).first;
            warnIncorrect(name, kind, it->second);
        }
        return it->second;
    }

    WorkloadOptions &options() { return opts_; }

    /** All results run so far, keyed "workload/machine". */
    const std::map<std::string, WorkloadResult> &results() const
    {
        return cache_;
    }

  private:
    static std::string
    key(const std::string &name, MachineKind kind)
    {
        return name + "/" + machineKindName(kind);
    }

    static void
    warnIncorrect(const std::string &name, MachineKind kind,
                  const WorkloadResult &res)
    {
        if (res.correct)
            return;
        // Not progress chatter: always printed, but still atomic.
        bool wasQuiet = quietFlag();
        quietFlag() = false;
        progressf("  WARNING: %s on %s failed functional validation\n",
                  name.c_str(), machineKindName(kind));
        quietFlag() = wasQuiet;
    }

    WorkloadOptions opts_;
    unsigned jobs_ = 1;
    std::map<std::string, WorkloadResult> cache_;
};

// ----------------------------------------------------------------------
// Command-line options
// ----------------------------------------------------------------------

/** Common command-line options shared by every bench binary. */
struct BenchArgs
{
    std::string jsonPath;    ///< --json: machine-readable results
    std::string tracePath;   ///< --trace: Chrome trace-event JSON
    std::string profilePath; ///< --profile: host-time profile dump
    unsigned jobs = 1;       ///< --jobs: sweep thread-pool width
    bool quiet = false;      ///< --quiet: suppress progress chatter
    // Sweep resilience (bench_sweep; DESIGN.md §Sweep resilience):
    std::string journalPath;   ///< --journal: per-job JSONL journal
    bool resume = false;       ///< --resume: replay journaled jobs
    double timeoutSeconds = 0; ///< --timeout-s: per-attempt deadline
    unsigned retries = 0;      ///< --retries: extra attempts
    /** Workload names registered via --dataset, in flag order. */
    std::vector<std::string> datasetWorkloads;
};

/**
 * A binary-specific flag handled inside parseBenchArgs, so binaries
 * never hand-peel argv (which silently diverges from the shared
 * parser's error handling and --help).
 */
struct BenchFlag
{
    std::string name;        ///< e.g. "--timing-json"
    bool takesValue = false;
    /** Called with the value (or "" for valueless flags). */
    std::function<void(const std::string &)> apply;
};

/**
 * Parse the standard bench options:
 *   --json <path>            write run results as JSON
 *   --trace <path>           write a Chrome/Perfetto trace
 *   --trace-channels <spec>  restrict tracing (ISRF_TRACE syntax)
 *   --profile <path>         write a host-time profile (Chrome trace /
 *                            speedscope); enables ISRF_PROFILE=on
 *                            unless the environment already set it
 *   --faults <spec>          enable fault injection (ISRF_FAULTS syntax)
 *   --jobs <n>               run independent simulations n-wide
 *   --quiet                  suppress progress output
 *   --journal <path>         append per-job outcomes to a JSONL journal
 *   --resume                 replay journaled outcomes (with --journal)
 *   --timeout-s <secs>       per-attempt wall-clock deadline
 *   --retries <n>            retry TimedOut/Stalled jobs up to n times
 *   --dataset <file.mtx>     register a MatrixMarket file as an
 *                            "SpMV:<stem>" workload (repeatable;
 *                            registered names land in
 *                            BenchArgs::datasetWorkloads)
 * --trace enables all channels unless a channel spec (or ISRF_TRACE)
 * already selected some. --faults/--trace-channels/--profile export
 * their specs into the environment so every MachineConfig::fromEnv()
 * snapshot taken afterwards picks them up. `extra` adds binary-specific
 * flags to the same parse (and to --help). Exits on unknown options.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv,
               const std::vector<BenchFlag> &extra = {})
{
    BenchArgs args;
    // Force construction so ISRF_TRACE is parsed before any on() check.
    Tracer::instance();
    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s requires an argument\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        const BenchFlag *ex = nullptr;
        for (const BenchFlag &f : extra)
            if (f.name == s)
                ex = &f;
        if (ex) {
            ex->apply(ex->takesValue ? next(i, ex->name.c_str()) : "");
        } else if (s == "--json") {
            args.jsonPath = next(i, "--json");
        } else if (s == "--trace") {
            args.tracePath = next(i, "--trace");
        } else if (s == "--profile") {
            args.profilePath = next(i, "--profile");
        } else if (s == "--trace-channels") {
            std::string spec = next(i, "--trace-channels");
            // Machines snapshot ISRF_TRACE via fromEnv(); the global
            // shim gates trace merging and does the export.
            setenv("ISRF_TRACE", spec.c_str(), 1);
            Tracer::instance().enableChannels(spec);
        } else if (s == "--faults") {
            setenv("ISRF_FAULTS", next(i, "--faults").c_str(), 1);
        } else if (s == "--jobs") {
            std::string v = next(i, "--jobs");
            uint64_t n = 0;
            if (!parseU64(v, n) || n == 0 || n > 1024) {
                std::fprintf(stderr,
                             "--jobs expects an integer in [1,1024], "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.jobs = static_cast<unsigned>(n);
        } else if (s == "--journal") {
            args.journalPath = next(i, "--journal");
        } else if (s == "--resume") {
            args.resume = true;
        } else if (s == "--timeout-s") {
            std::string v = next(i, "--timeout-s");
            double secs = 0;
            if (!parseF64(v, secs) || !(secs > 0.0)) {
                std::fprintf(stderr,
                             "--timeout-s expects a positive number, "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.timeoutSeconds = secs;
        } else if (s == "--dataset") {
            std::string path = next(i, "--dataset");
            std::string name;
            std::vector<std::string> errs;
            if (!registerExternalDataset(path, &name, &errs)) {
                std::fprintf(stderr,
                             "--dataset: cannot load '%s':\n",
                             path.c_str());
                for (const auto &e : errs)
                    std::fprintf(stderr, "  %s\n", e.c_str());
                std::exit(2);
            }
            args.datasetWorkloads.push_back(name);
        } else if (s == "--retries") {
            std::string v = next(i, "--retries");
            uint64_t n = 0;
            if (!parseU64(v, n) || n > 100) {
                std::fprintf(stderr,
                             "--retries expects an integer in [0,100], "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.retries = static_cast<unsigned>(n);
        } else if (s == "--quiet") {
            args.quiet = true;
            quietFlag() = true;
        } else if (s == "--help" || s == "-h") {
            std::string extras;
            for (const BenchFlag &f : extra) {
                extras += " [" + f.name;
                if (f.takesValue)
                    extras += " <v>";
                extras += "]";
            }
            std::printf(
                "usage: %s [--json <path>] [--trace <path>] "
                "[--trace-channels <spec>] [--profile <path>] "
                "[--faults <spec>] "
                "[--jobs <n>] [--quiet] [--journal <path>] "
                "[--resume] [--timeout-s <secs>] [--retries <n>] "
                "[--dataset <file.mtx>]...%s\n",
                argv[0], extras.c_str());
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s' (try --help)\n",
                         s.c_str());
            std::exit(2);
        }
    }
    if (args.resume && args.journalPath.empty()) {
        std::fprintf(stderr, "--resume requires --journal <path>\n");
        std::exit(2);
    }
    if (!args.tracePath.empty() && !Tracer::instance().on()) {
        setenv("ISRF_TRACE", "all", 1);
        Tracer::instance().enableChannels("all");
    }
    // --profile turns profiling on unless ISRF_PROFILE already chose a
    // setting (e.g. a custom stride, or an explicit off to measure the
    // dump path alone). Exported before the shim constructs so its
    // one-time env parse sees the final value.
    if (!args.profilePath.empty() && envStr("ISRF_PROFILE").empty())
        setenv("ISRF_PROFILE", "on", 1);
    Profiler::instance();
    return args;
}

/** Serialize a result map as {"results":{...}} and write it. */
inline void
writeBenchJson(const std::string &path,
               const std::map<std::string, WorkloadResult> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("results").beginObject();
    for (const auto &kv : results) {
        w.key(kv.first);
        resultJson(w, kv.second);
    }
    w.endObject();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote JSON results to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
}

/**
 * Write the --json/--trace/--profile outputs for a binary without a
 * ResultCache (its --json report is an empty results object).
 */
inline void
finishBench(const BenchArgs &args)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, {});
    if (!args.profilePath.empty()) {
        if (Profiler::instance().writeChromeTrace(args.profilePath))
            std::fprintf(stderr, "wrote host profile to %s\n",
                         args.profilePath.c_str());
        else
            std::fprintf(stderr, "ERROR: could not write profile to "
                         "%s\n", args.profilePath.c_str());
    }
    if (args.tracePath.empty())
        return;
    if (Tracer::instance().writeChromeJson(args.tracePath)) {
        std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                     args.tracePath.c_str(), Tracer::instance().size());
    } else {
        std::fprintf(stderr, "ERROR: could not write trace to %s\n",
                     args.tracePath.c_str());
    }
}

/** Write --json results and the --trace output (no-ops without them). */
inline void
finishBench(const BenchArgs &args, const ResultCache &cache)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, cache.results());
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
}

// ----------------------------------------------------------------------
// Perf records (BENCH_*.json, schema isrf-perf-record-v1)
// ----------------------------------------------------------------------

/**
 * Commit being measured: GITHUB_SHA when CI exports it, else the local
 * `git rev-parse HEAD`, else "unknown". Best-effort metadata only —
 * perf records stay valid outside a checkout.
 */
inline std::string
gitSha()
{
    std::string sha = envStr("GITHUB_SHA");
    if (!sha.empty())
        return sha;
    std::FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (p) {
        char buf[128] = {0};
        if (std::fgets(buf, sizeof buf, p))
            sha = buf;
        ::pclose(p);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

/**
 * Write one perf record (schema isrf-perf-record-v1) for a finished
 * sweep: host metadata, sweep totals (wall time, parallel speedup,
 * simulated cycles per host second), per-job wall times, and — when
 * profiling is on — the aggregate host-time profile. This is the
 * BENCH_*.json format tools/perf_diff compares.
 */
inline void
writeBenchPerfJson(const std::string &path, const std::string &bench,
                   const BenchArgs &args, const std::string &engineMode,
                   const SweepRunner &runner,
                   const std::vector<SweepOutcome> &outcomes)
{
    const SweepTiming &t = runner.timing();
    uint64_t simCycles = 0, freshCycles = 0;
    size_t failed = 0;
    for (const auto &o : outcomes) {
        simCycles += o.result.cycles;
        if (!o.fromJournal)
            freshCycles += o.result.cycles;
        if (o.status != RunStatus::Done)
            failed++;
    }
    JsonWriter w;
    w.beginObject();
    w.field("schema", std::string(kPerfRecordSchema));
    w.field("bench", bench);
    w.field("git_sha", gitSha());
    w.key("host").beginObject();
    w.field("cpus", static_cast<uint64_t>(
        std::thread::hardware_concurrency()));
    w.field("jobs", static_cast<uint64_t>(args.jobs));
    w.field("engine_mode", engineMode);
    w.endObject();
    w.key("totals").beginObject();
    w.field("wall_seconds", t.wallSeconds);
    w.field("sum_job_seconds", t.sumJobSeconds);
    w.field("speedup", t.speedup());
    w.field("jobs", static_cast<uint64_t>(outcomes.size()));
    w.field("failed", static_cast<uint64_t>(failed));
    w.field("replayed", static_cast<uint64_t>(t.replayed));
    w.field("sim_cycles", simCycles);
    // Throughput over *executed* work only: replayed jobs contribute
    // neither cycles nor seconds, so a resumed sweep's rate is
    // comparable to a fresh one's.
    w.field("sim_cycles_per_second",
            t.sumJobSeconds > 0.0
                ? static_cast<double>(freshCycles) / t.sumJobSeconds
                : 0.0);
    w.endObject();
    w.key("jobs").beginArray();
    for (const auto &o : outcomes) {
        w.beginObject();
        w.field("workload", o.workload);
        w.field("machine", std::string(machineKindName(o.kind)));
        w.field("status", std::string(runStatusName(o.status)));
        w.field("wall_seconds", o.wallSeconds);
        w.field("sim_cycles", o.result.cycles);
        w.field("sim_cycles_per_second",
                o.wallSeconds > 0.0
                    ? static_cast<double>(o.result.cycles) /
                          o.wallSeconds
                    : 0.0);
        w.field("replayed", o.fromJournal);
        w.endObject();
    }
    w.endArray();
    if (Profiler::instance().enabled() &&
        Profiler::instance().hasData()) {
        w.key("profile");
        Profiler::instance().reportJson(w);
    }
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote perf record to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     path.c_str());
}

inline void
heading(const char *title, const char *paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paperRef);
    std::printf("==================================================="
                "===========================\n\n");
}

} // namespace bench
} // namespace isrf

#endif // ISRF_BENCH_BENCH_UTIL_H
