/**
 * @file
 * Shared helpers for the benchmark harnesses: standard benchmark and
 * configuration lists, result caching across a binary's tables
 * (optionally filled in parallel by the sweep driver), and printing
 * conventions.
 */
#ifndef ISRF_BENCH_BENCH_UTIL_H
#define ISRF_BENCH_BENCH_UTIL_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/sweep_runner.h"
#include "sim/trace.h"
#include "util/env.h"
#include "util/json.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace isrf {
namespace bench {

/** Benchmark order used by the paper's figures. */
inline const std::vector<std::string> &
benchmarkOrder()
{
    static const std::vector<std::string> names = {
        "FFT 2D", "Rijndael", "Sort", "Filter",
        "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
    };
    return names;
}

inline const std::vector<MachineKind> &
machineOrder()
{
    static const std::vector<MachineKind> kinds = {
        MachineKind::Base, MachineKind::ISRF1, MachineKind::ISRF4,
        MachineKind::Cache,
    };
    return kinds;
}

// ----------------------------------------------------------------------
// Progress printing
// ----------------------------------------------------------------------

/** Suppress progress chatter (--quiet). Results still print. */
inline bool &
quietFlag()
{
    static bool quiet = false;
    return quiet;
}

/**
 * Mutex-guarded progress printer: whole lines go to stderr atomically,
 * so concurrent sweep workers can't interleave garbled output.
 * Silenced by --quiet.
 */
inline void
progressf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline void
progressf(const char *fmt, ...)
{
    static std::mutex mu;
    if (quietFlag())
        return;
    va_list ap;
    va_start(ap, fmt);
    char buf[512];
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(mu);
    std::fputs(buf, stderr);
}

// ----------------------------------------------------------------------
// Result cache
// ----------------------------------------------------------------------

/**
 * Runs-and-caches workload results within one bench binary.
 *
 * With jobs > 1, prefetch() fills the cache through the SweepRunner
 * thread pool; get() then serves hits. Results are identical to the
 * serial path — each job runs in an isolated simulation context.
 */
class ResultCache
{
  public:
    explicit ResultCache(WorkloadOptions opts = {}, unsigned jobs = 1)
        : opts_(opts), jobs_(jobs ? jobs : 1)
    {
    }

    void setJobs(unsigned jobs) { jobs_ = jobs ? jobs : 1; }
    unsigned jobs() const { return jobs_; }

    /**
     * Run every (workload, kind) pair not yet cached, `jobs_`-wide
     * in parallel, and cache the results in deterministic order.
     */
    void
    prefetch(const std::vector<std::string> &names,
             const std::vector<MachineKind> &kinds)
    {
        std::vector<SweepJob> jobs;
        for (const auto &name : names) {
            for (MachineKind kind : kinds) {
                if (cache_.count(key(name, kind)))
                    continue;
                SweepJob j;
                j.workload = name;
                j.cfg = MachineConfig::make(kind).fromEnv();
                j.opts = opts_;
                jobs.push_back(std::move(j));
            }
        }
        if (jobs.empty())
            return;
        SweepRunner runner(jobs_);
        auto outcomes = runner.run(jobs,
            [](const SweepJob &job, bool finished, size_t done,
               size_t total) {
                progressf("  [%s %s on %s (%zu/%zu)]\n",
                          finished ? "finished" : "running",
                          job.workload.c_str(), job.cfg.name().c_str(),
                          done, total);
            });
        for (auto &o : outcomes) {
            warnIncorrect(o.workload, o.kind, o.result);
            cache_.emplace(key(o.workload, o.kind),
                           std::move(o.result));
        }
    }

    const WorkloadResult &
    get(const std::string &name, MachineKind kind)
    {
        auto k = key(name, kind);
        auto it = cache_.find(k);
        if (it == cache_.end()) {
            progressf("  [running %s on %s...]\n", name.c_str(),
                      machineKindName(kind));
            it = cache_.emplace(k, runWorkload(name, kind, opts_)).first;
            warnIncorrect(name, kind, it->second);
        }
        return it->second;
    }

    WorkloadOptions &options() { return opts_; }

    /** All results run so far, keyed "workload/machine". */
    const std::map<std::string, WorkloadResult> &results() const
    {
        return cache_;
    }

  private:
    static std::string
    key(const std::string &name, MachineKind kind)
    {
        return name + "/" + machineKindName(kind);
    }

    static void
    warnIncorrect(const std::string &name, MachineKind kind,
                  const WorkloadResult &res)
    {
        if (res.correct)
            return;
        // Not progress chatter: always printed, but still atomic.
        bool wasQuiet = quietFlag();
        quietFlag() = false;
        progressf("  WARNING: %s on %s failed functional validation\n",
                  name.c_str(), machineKindName(kind));
        quietFlag() = wasQuiet;
    }

    WorkloadOptions opts_;
    unsigned jobs_ = 1;
    std::map<std::string, WorkloadResult> cache_;
};

// ----------------------------------------------------------------------
// Command-line options
// ----------------------------------------------------------------------

/** Common command-line options shared by every bench binary. */
struct BenchArgs
{
    std::string jsonPath;   ///< --json: machine-readable results
    std::string tracePath;  ///< --trace: Chrome trace-event JSON
    unsigned jobs = 1;      ///< --jobs: sweep thread-pool width
    bool quiet = false;     ///< --quiet: suppress progress chatter
    // Sweep resilience (bench_sweep; DESIGN.md §Sweep resilience):
    std::string journalPath;   ///< --journal: per-job JSONL journal
    bool resume = false;       ///< --resume: replay journaled jobs
    double timeoutSeconds = 0; ///< --timeout-s: per-attempt deadline
    unsigned retries = 0;      ///< --retries: extra attempts
};

/**
 * Parse the standard bench options:
 *   --json <path>            write run results as JSON
 *   --trace <path>           write a Chrome/Perfetto trace
 *   --trace-channels <spec>  restrict tracing (ISRF_TRACE syntax)
 *   --faults <spec>          enable fault injection (ISRF_FAULTS syntax)
 *   --jobs <n>               run independent simulations n-wide
 *   --quiet                  suppress progress output
 *   --journal <path>         append per-job outcomes to a JSONL journal
 *   --resume                 replay journaled outcomes (with --journal)
 *   --timeout-s <secs>       per-attempt wall-clock deadline
 *   --retries <n>            retry TimedOut/Stalled jobs up to n times
 * --trace enables all channels unless a channel spec (or ISRF_TRACE)
 * already selected some. --faults/--trace-channels export their specs
 * into the environment so every MachineConfig::fromEnv() snapshot
 * taken afterwards picks them up. Exits on unknown options.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    // Force construction so ISRF_TRACE is parsed before any on() check.
    Tracer::instance();
    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s requires an argument\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string s = argv[i];
        if (s == "--json") {
            args.jsonPath = next(i, "--json");
        } else if (s == "--trace") {
            args.tracePath = next(i, "--trace");
        } else if (s == "--trace-channels") {
            std::string spec = next(i, "--trace-channels");
            // Machines snapshot ISRF_TRACE via fromEnv(); the global
            // shim gates trace merging and does the export.
            setenv("ISRF_TRACE", spec.c_str(), 1);
            Tracer::instance().enableChannels(spec);
        } else if (s == "--faults") {
            setenv("ISRF_FAULTS", next(i, "--faults").c_str(), 1);
        } else if (s == "--jobs") {
            std::string v = next(i, "--jobs");
            uint64_t n = 0;
            if (!parseU64(v, n) || n == 0 || n > 1024) {
                std::fprintf(stderr,
                             "--jobs expects an integer in [1,1024], "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.jobs = static_cast<unsigned>(n);
        } else if (s == "--journal") {
            args.journalPath = next(i, "--journal");
        } else if (s == "--resume") {
            args.resume = true;
        } else if (s == "--timeout-s") {
            std::string v = next(i, "--timeout-s");
            char *end = nullptr;
            double secs = std::strtod(v.c_str(), &end);
            if (!end || *end != '\0' || !(secs > 0.0)) {
                std::fprintf(stderr,
                             "--timeout-s expects a positive number, "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.timeoutSeconds = secs;
        } else if (s == "--retries") {
            std::string v = next(i, "--retries");
            uint64_t n = 0;
            if (!parseU64(v, n) || n > 100) {
                std::fprintf(stderr,
                             "--retries expects an integer in [0,100], "
                             "got '%s'\n", v.c_str());
                std::exit(2);
            }
            args.retries = static_cast<unsigned>(n);
        } else if (s == "--quiet") {
            args.quiet = true;
            quietFlag() = true;
        } else if (s == "--help" || s == "-h") {
            std::printf(
                "usage: %s [--json <path>] [--trace <path>] "
                "[--trace-channels <spec>] [--faults <spec>] "
                "[--jobs <n>] [--quiet] [--journal <path>] "
                "[--resume] [--timeout-s <secs>] [--retries <n>]\n",
                argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s' (try --help)\n",
                         s.c_str());
            std::exit(2);
        }
    }
    if (args.resume && args.journalPath.empty()) {
        std::fprintf(stderr, "--resume requires --journal <path>\n");
        std::exit(2);
    }
    if (!args.tracePath.empty() && !Tracer::instance().on()) {
        setenv("ISRF_TRACE", "all", 1);
        Tracer::instance().enableChannels("all");
    }
    return args;
}

/** Serialize a result map as {"results":{...}} and write it. */
inline void
writeBenchJson(const std::string &path,
               const std::map<std::string, WorkloadResult> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("results").beginObject();
    for (const auto &kv : results) {
        w.key(kv.first);
        resultJson(w, kv.second);
    }
    w.endObject();
    w.endObject();
    if (writeTextFile(path, w.str()))
        std::fprintf(stderr, "wrote JSON results to %s\n", path.c_str());
    else
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
}

/**
 * Write the --json/--trace outputs for a binary without a ResultCache
 * (its --json report is an empty results object).
 */
inline void
finishBench(const BenchArgs &args)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, {});
    if (args.tracePath.empty())
        return;
    if (Tracer::instance().writeChromeJson(args.tracePath)) {
        std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                     args.tracePath.c_str(), Tracer::instance().size());
    } else {
        std::fprintf(stderr, "ERROR: could not write trace to %s\n",
                     args.tracePath.c_str());
    }
}

/** Write --json results and the --trace output (no-ops without them). */
inline void
finishBench(const BenchArgs &args, const ResultCache &cache)
{
    if (!args.jsonPath.empty())
        writeBenchJson(args.jsonPath, cache.results());
    BenchArgs traceOnly = args;
    traceOnly.jsonPath.clear();
    finishBench(traceOnly);
}

inline void
heading(const char *title, const char *paperRef)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title);
    std::printf("Reproduces: %s\n", paperRef);
    std::printf("==================================================="
                "===========================\n\n");
}

} // namespace bench
} // namespace isrf

#endif // ISRF_BENCH_BENCH_UTIL_H
