/**
 * @file
 * Tables 2 and 3: the four machine configurations and their resolved
 * parameters, printed from the actual MachineConfig factories so the
 * simulated machines provably match the paper's parameters.
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Machine configurations", "Tables 2 and 3");

    std::printf("Table 2: configuration summary\n");
    Table t2({"Config", "Description"});
    t2.addRow({"Base", "Sequential SRF backed by off-chip DRAM"});
    t2.addRow({"ISRF1", "Indexed SRF, 1 word/cycle/lane in-lane indexed "
                        "BW (no sub-banking) + cross-lane"});
    t2.addRow({"ISRF4", "Indexed SRF, up to 4 words/cycle/lane in-lane "
                        "(4 sub-arrays/lane) + cross-lane"});
    t2.addRow({"Cache", "Sequential SRF backed by on-chip cache and "
                        "off-chip DRAM"});
    std::printf("%s\n", t2.render().c_str());

    std::printf("Table 3: machine parameters (resolved)\n");
    Table t({"Parameter", "Base", "ISRF1", "ISRF4", "Cache"});
    MachineConfig cfgs[4] = {MachineConfig::base(), MachineConfig::isrf1(),
                             MachineConfig::isrf4(),
                             MachineConfig::cacheCfg()};
    auto row = [&](const std::string &name,
                   const std::function<std::string(
                       const MachineConfig &)> &f) {
        t.addRow({name, f(cfgs[0]), f(cfgs[1]), f(cfgs[2]), f(cfgs[3])});
    };
    row("Lanes", [](const MachineConfig &c) {
        return std::to_string(c.srf.lanes);
    });
    row("SRF capacity (KB)", [](const MachineConfig &c) {
        return std::to_string(c.srf.totalBytes() / 1024);
    });
    row("Peak seq SRF BW (words/cycle)", [](const MachineConfig &c) {
        return std::to_string(c.srf.seqAccessWords());
    });
    row("Sequential SRF latency", [](const MachineConfig &c) {
        return std::to_string(c.srf.seqLatency);
    });
    row("Stream buffer (words/lane/stream)", [](const MachineConfig &c) {
        return std::to_string(c.srf.streamBufWords);
    });
    row("Address FIFO (entries)", [](const MachineConfig &c) {
        return c.srfMode == SrfMode::SequentialOnly
            ? "n/a" : std::to_string(c.srf.addrFifoSize);
    });
    row("Peak in-lane idx BW (w/cyc/cluster)", [](const MachineConfig &c) {
        switch (c.srfMode) {
          case SrfMode::SequentialOnly: return std::string("n/a");
          case SrfMode::Indexed1: return std::string("1");
          case SrfMode::Indexed4:
            return std::to_string(c.srf.subArrays);
        }
        return std::string("?");
    });
    row("Peak cross-lane idx BW (w/cyc/cluster)",
        [](const MachineConfig &c) {
            return c.srfMode == SrfMode::SequentialOnly
                ? "n/a" : "1";
        });
    row("In-lane indexed latency", [](const MachineConfig &c) {
        return c.srfMode == SrfMode::SequentialOnly
            ? "n/a" : std::to_string(c.srf.inLaneLatency);
    });
    row("Cross-lane indexed latency", [](const MachineConfig &c) {
        return c.srfMode == SrfMode::SequentialOnly
            ? "n/a" : std::to_string(c.srf.crossLaneLatency);
    });
    row("Peak DRAM BW (words/cycle)", [](const MachineConfig &c) {
        return fmtDouble(c.dram.wordsPerCycle, 3);
    });
    row("Cache size (KB)", [](const MachineConfig &c) {
        return c.mem.cacheEnabled
            ? std::to_string(c.cache.capacityWords * 4 / 1024) : "n/a";
    });
    row("Cache associativity", [](const MachineConfig &c) {
        return c.mem.cacheEnabled ? std::to_string(c.cache.ways) : "n/a";
    });
    row("Cache banks", [](const MachineConfig &c) {
        return c.mem.cacheEnabled ? std::to_string(c.cache.banks) : "n/a";
    });
    row("Cache line (words)", [](const MachineConfig &c) {
        return c.mem.cacheEnabled
            ? std::to_string(c.cache.lineWords) : "n/a";
    });
    row("Peak cache BW (words/cycle)", [](const MachineConfig &c) {
        return c.mem.cacheEnabled
            ? fmtDouble(c.cache.wordsPerCycle, 1) : "n/a";
    });
    row("ALUs / divider per lane", [](const MachineConfig &c) {
        return std::to_string(c.cluster.aluSlots) + " / " +
            std::to_string(c.cluster.divSlots);
    });
    row("Addr/data separation (in/cross)", [](const MachineConfig &c) {
        return std::to_string(c.inLaneSeparation) + " / " +
            std::to_string(c.crossLaneSeparation);
    });
    std::printf("%s\n", t.render().c_str());
    std::printf("Clock 1 GHz; peak compute 32 GFLOPs (8 lanes x 4 "
                "pipelined FP units); DRAM 9.14 GB/s.\n");
    finishBench(args);
    return 0;
}
