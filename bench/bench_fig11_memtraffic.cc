/**
 * @file
 * Figure 11: off-chip memory traffic of the ISRF and Cache
 * configurations, normalized to Base, for all eight benchmarks.
 *
 * Paper shape: FFT 2D halves its traffic (the through-memory rotation
 * disappears); Rijndael drops by ~95% (table lookups leave memory);
 * Sort and Filter are unchanged; the IG datasets drop to ~0.35-0.65
 * (replication removed, offset by pointer overhead), with the Cache
 * capturing even more IG locality (inter-strip overlap).
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Off-chip memory traffic, normalized to Base",
            "Figure 11 (and the 'up to 95% bandwidth reduction' claim)");

    WorkloadOptions opts;
    opts.repeats = 2;
    ResultCache cache(opts, args.jobs);
    cache.prefetch(benchmarkOrder(),
                   {MachineKind::Base, MachineKind::ISRF4,
                    MachineKind::Cache});

    Table t({"Benchmark", "Base (words)", "ISRF", "Cache"});
    double maxReduction = 0;
    for (const auto &name : benchmarkOrder()) {
        uint64_t base = cache.get(name, MachineKind::Base).dramWords;
        uint64_t isrf = cache.get(name, MachineKind::ISRF4).dramWords;
        uint64_t cch = cache.get(name, MachineKind::Cache).dramWords;
        double ri = static_cast<double>(isrf) / static_cast<double>(base);
        double rc = static_cast<double>(cch) / static_cast<double>(base);
        maxReduction = std::max(maxReduction, 1.0 - ri);
        t.addRow({name, std::to_string(base), fmtDouble(ri, 3),
                  fmtDouble(rc, 3)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("ISRF normalized traffic (paper Figure 11 bars):\n");
    for (const auto &name : benchmarkOrder()) {
        uint64_t base = cache.get(name, MachineKind::Base).dramWords;
        uint64_t isrf = cache.get(name, MachineKind::ISRF4).dramWords;
        double r = static_cast<double>(isrf) / static_cast<double>(base);
        std::printf("  %-9s |%s| %.2f\n", name.c_str(),
                    asciiBar(r, 1.0, 40).c_str(), r);
    }
    std::printf("\nMaximum bandwidth reduction: %.0f%% "
                "(paper: up to 95%%, on Rijndael)\n",
                100.0 * maxReduction);
    finishBench(args, cache);
    return 0;
}
