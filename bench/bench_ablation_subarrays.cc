/**
 * @file
 * Ablation: how much indexed bandwidth do the benchmarks actually
 * need? Sweeps the number of sub-arrays per bank (= peak in-lane
 * indexed words/cycle/lane) on the two multi-stream benchmarks and on
 * the energy/area trade-off.
 *
 * §5.3's observation: "none of the benchmarks suffer significantly
 * from a lack of indexed SRF bandwidth on ISRF4", while ISRF1 loses
 * 42%/18% of Rijndael/Filter to SRF stalls — i.e. the useful range is
 * between 1 and 4 accesses/cycle, with diminishing returns beyond.
 */
#include "area/cacti_lite.h"
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Sub-array (in-lane indexed bandwidth) ablation",
            "extends §5.3 / Figure 12 (ISRF1 vs ISRF4)");

    const std::vector<uint32_t> subArrays = {1, 2, 4, 8};
    const std::vector<std::string> benches = {"Rijndael", "Filter"};
    const auto &reg = workloadRegistry();

    std::vector<std::string> header = {"Benchmark"};
    for (uint32_t s : subArrays)
        header.push_back("s=" + std::to_string(s));
    Table t(header);
    Table stalls(header);

    for (const auto &name : benches) {
        std::vector<std::string> row = {name};
        std::vector<std::string> stallRow = {name};
        double best = 0;
        std::vector<double> cycles;
        for (uint32_t s : subArrays) {
            MachineConfig cfg = MachineConfig::isrf4();
            cfg.srf.subArrays = s;
            WorkloadOptions opts;
            opts.repeats = 2;
            std::fprintf(stderr, "  [running %s with %u sub-arrays...]\n",
                         name.c_str(), s);
            WorkloadResult r = reg.at(name)(cfg, opts);
            cycles.push_back(static_cast<double>(r.cycles));
            double stall = static_cast<double>(r.breakdown.srfStall) /
                static_cast<double>(r.breakdown.total());
            stallRow.push_back(fmtDouble(100.0 * stall, 1) + "%");
        }
        best = *std::min_element(cycles.begin(), cycles.end());
        for (double c : cycles)
            row.push_back(fmtDouble(c / best, 3));
        t.addRow(row);
        stalls.addRow(stallRow);
    }
    std::printf("Execution time normalized to the best sub-array "
                "count:\n%s\n", t.render().c_str());
    std::printf("SRF-stall share of execution time:\n%s\n",
                stalls.render().c_str());

    // Area cost of each point.
    Table area({"Sub-arrays", "SRF area overhead"});
    for (uint32_t s : subArrays) {
        SrfGeometry g;
        g.subArrays = s;
        SrfAreaModel model(g);
        area.addRow({std::to_string(s),
                     fmtDouble(100.0 * model.overheadOver(model.isrf4()),
                               1) + "%"});
    }
    std::printf("%s\n", area.render().c_str());
    std::printf("Expected: large gains 1->4 (the paper's ISRF1 vs "
                "ISRF4), marginal gains beyond 4\nfor rising area — "
                "supporting the paper's choice of s=4.\n");
    finishBench(args);
    return 0;
}
