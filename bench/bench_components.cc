/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's primitives:
 * scheduler, SRF cycle processing, cache accesses, crossbar
 * arbitration, and the functional reference kernels. These measure the
 * *simulator's* performance (host side), useful when extending the
 * model; the architectural results live in the bench_fig* binaries.
 */
#include <benchmark/benchmark.h>

#include "kernel/scheduler.h"
#include "mem/cache.h"
#include "net/crossbar.h"
#include "srf/srf.h"
#include "util/random.h"
#include "workloads/fft.h"
#include "workloads/rijndael.h"
#include "workloads/sort.h"

namespace isrf {
namespace {

void
BM_ModuloSchedule(benchmark::State &state)
{
    KernelGraph g = rijndaelRoundIdxGraph();
    ModuloScheduler sched;
    auto sep = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        KernelSchedule s = sched.schedule(g, sep);
        benchmark::DoNotOptimize(s.ii);
    }
}
BENCHMARK(BM_ModuloSchedule)->Arg(2)->Arg(6)->Arg(10);

void
BM_SrfIndexedCycle(benchmark::State &state)
{
    SrfGeometry geom;
    Srf srf;
    srf.init(geom, SrfMode::Indexed4, nullptr);
    SlotConfig cfg;
    cfg.dir = StreamDir::In;
    cfg.indexed = true;
    cfg.layout = StreamLayout::PerLane;
    cfg.lengthWords = 1024;
    SlotId id = srf.openSlot(cfg);
    Rng rng(1);
    Cycle now = 0;
    Word tmp[4];
    for (auto _ : state) {
        srf.beginCycle(now);
        for (uint32_t l = 0; l < geom.lanes; l++) {
            while (srf.idxDataReady(l, id, now))
                srf.idxDataPop(l, id, tmp);
            if (srf.idxCanIssue(l, id))
                srf.idxIssueRead(l, id,
                    static_cast<uint32_t>(rng.below(1024)));
        }
        srf.endCycle(now);
        now++;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            geom.lanes);
}
BENCHMARK(BM_SrfIndexedCycle);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache;
    Rng rng(2);
    for (auto _ : state) {
        auto r = cache.access(rng.below(1 << 20), false);
        benchmark::DoNotOptimize(r.hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_CrossbarArbitration(benchmark::State &state)
{
    Crossbar xbar;
    xbar.init(8, 1, 1);
    Rng rng(3);
    for (auto _ : state) {
        xbar.newCycle();
        for (int i = 0; i < 8; i++) {
            xbar.tryTransfer(static_cast<uint32_t>(i),
                             static_cast<uint32_t>(rng.below(8)));
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_CrossbarArbitration);

void
BM_AesBlockTTable(benchmark::State &state)
{
    std::array<uint8_t, 16> key{}, pt{};
    for (int i = 0; i < 16; i++) {
        key[i] = static_cast<uint8_t>(i);
        pt[i] = static_cast<uint8_t>(0x11 * i);
    }
    auto rk = aesExpandKey128(key);
    for (auto _ : state) {
        pt = aesEncryptBlock128(rk, pt);
        benchmark::DoNotOptimize(pt[0]);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            16);
}
BENCHMARK(BM_AesBlockTTable);

void
BM_FftStage(benchmark::State &state)
{
    std::vector<Cplx> a(64 * 64);
    Rng rng(4);
    for (auto &c : a)
        c = Cplx(rng.uniformf(-1, 1), rng.uniformf(-1, 1));
    for (auto _ : state) {
        a = fftDifStageRows(a, 64, 0);
        benchmark::DoNotOptimize(a[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            64 * 32);
}
BENCHMARK(BM_FftStage);

} // namespace
} // namespace isrf

BENCHMARK_MAIN();
