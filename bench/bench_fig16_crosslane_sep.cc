/**
 * @file
 * Figure 16: execution time of the cross-lane indexed kernels
 * (IGraph1 via IG_SML, IGraph2 via IG_SCL) as the address/data
 * separation varies from 4 to 24 cycles.
 *
 * Paper shape: these kernels tolerate very long separations with only
 * a few percent variation — they have high compute density and no
 * loop-carried dependencies, so software pipelining hides the latency
 * (the default cross-lane separation is 20 cycles, §5.1).
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

double
kernelTime(const WorkloadResult &r)
{
    double t = 0;
    for (const auto &kv : r.kernelBw)
        t += static_cast<double>(kv.second.laneCycles);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    heading("Execution time of cross-lane indexed kernels vs "
            "address/data separation (ISRF4)", "Figure 16");

    const std::vector<std::pair<std::string, std::string>> benches = {
        {"IGraph1", "IG_SML"},
        {"IGraph2", "IG_SCL"},
    };
    std::vector<uint32_t> seps = {4, 8, 12, 16, 20, 24};

    std::vector<std::string> header = {"Kernel"};
    for (uint32_t s : seps)
        header.push_back("sep=" + std::to_string(s));
    Table t(header);

    for (const auto &[kernel, bench] : benches) {
        std::vector<double> times;
        for (uint32_t s : seps) {
            WorkloadOptions opts;
            opts.repeats = 1;
            opts.separationOverride = s;
            std::fprintf(stderr, "  [running %s at sep=%u...]\n",
                         bench.c_str(), s);
            WorkloadResult r = runWorkload(bench, MachineKind::ISRF4,
                                           opts);
            times.push_back(kernelTime(r));
        }
        double best = *std::min_element(times.begin(), times.end());
        std::vector<std::string> row = {kernel};
        for (double v : times)
            row.push_back(fmtDouble(v / best, 3));
        t.addRow(row);
    }
    std::printf("Kernel execution time normalized to each kernel's "
                "best separation:\n%s\n", t.render().c_str());
    std::printf("Expected: nearly flat curves (within a few percent) "
                "across 4..24 cycles.\n");
    finishBench(args);
    return 0;
}
