/**
 * @file
 * Fault soak: run fast workloads under a fixed seeded fault schedule
 * and check that ECC corrects every injected bit flip with zero
 * uncorrectable escapes and bit-identical output (correct==true means
 * the result validated word-for-word against the reference model).
 *
 * CI's fault-soak job runs this with --json and re-asserts the
 * counters from the report; the binary also self-checks and exits
 * nonzero on any escape so it is usable standalone.
 */
#include "bench_util.h"

using namespace isrf;
using namespace isrf::bench;

namespace {

/**
 * Canonical soak schedule: 160 single-bit faults spread across SRF
 * sub-arrays and DRAM, degradation disabled (threshold=0) so ECC has
 * to correct everything in place. Overridden by --faults/ISRF_FAULTS.
 */
const char *kDefaultSpec =
    "seed=11;threshold=0;"
    "srf_bit:start=400,period=17,count=40;"
    "dram_bit:start=200,period=13,count=120";

double
extraOr0(const WorkloadResult &r, const char *key)
{
    auto it = r.extra.find(key);
    return it == r.extra.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    if (std::getenv("ISRF_FAULTS") == nullptr)
        setenv("ISRF_FAULTS", kDefaultSpec, 1);
    heading("Fault soak: seeded injection, zero-escape check",
            "robustness extension (no paper figure)");
    std::printf("ISRF_FAULTS=%s\n\n", std::getenv("ISRF_FAULTS"));

    WorkloadOptions opts;
    opts.repeats = 2;
    ResultCache cache(opts, args.jobs);
    cache.prefetch({"Sort", "Filter"},
                   {MachineKind::ISRF4, MachineKind::ISRF1});

    const std::vector<std::pair<std::string, MachineKind>> runs = {
        {"Sort", MachineKind::ISRF4},
        {"Filter", MachineKind::ISRF4},
        {"Sort", MachineKind::ISRF1},
        {"Filter", MachineKind::ISRF1},
    };

    Table t({"Run", "correct", "injected", "corrected",
             "uncorrectable", "retries", "poisoned"});
    bool ok = true;
    double injected = 0, corrected = 0, uncorrectable = 0, poisoned = 0;
    for (const auto &[name, kind] : runs) {
        const WorkloadResult &r = cache.get(name, kind);
        double inj = extraOr0(r, "faults_injected");
        double cor = extraOr0(r, "ecc_corrected");
        double unc = extraOr0(r, "ecc_uncorrectable");
        double poi = extraOr0(r, "poisoned_words");
        injected += inj;
        corrected += cor;
        uncorrectable += unc;
        poisoned += poi;
        ok = ok && r.correct && unc == 0 && poi == 0;
        t.addRow({r.workload + "/" + machineKindName(r.kind),
                  r.correct ? "yes" : "NO",
                  std::to_string(static_cast<uint64_t>(inj)),
                  std::to_string(static_cast<uint64_t>(cor)),
                  std::to_string(static_cast<uint64_t>(unc)),
                  std::to_string(
                      static_cast<uint64_t>(extraOr0(r, "retries"))),
                  std::to_string(static_cast<uint64_t>(poi))});
    }
    std::printf("%s\n", t.render().c_str());

    ok = ok && injected >= 100 && corrected >= 100;
    std::printf("totals: injected=%.0f corrected=%.0f "
                "uncorrectable=%.0f poisoned=%.0f\n",
                injected, corrected, uncorrectable, poisoned);
    std::printf("%s\n",
                ok ? "SOAK PASS: every injected fault corrected, "
                     "outputs bit-identical"
                   : "SOAK FAIL: uncorrectable escape or wrong output");

    finishBench(args, cache);
    return ok ? 0 : 1;
}
