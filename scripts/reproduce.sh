#!/usr/bin/env bash
# Reproduce everything: build, test, and regenerate every table/figure.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "==> running tests"
ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee test_output.txt | tail -3

echo "==> running paper benches (Tables 2-4, Figures 11-18, ablations)"
REPORTS="$BUILD/reports"
mkdir -p "$REPORTS"
for b in "$BUILD"/bench/bench_*; do
    [ -x "$b" ] || continue
    name="$(basename "$b")"
    echo "############ $name ############"
    if [ "$name" = bench_components ]; then
        # google-benchmark binary: no --json/--trace support.
        "$b"
    else
        "$b" --json "$REPORTS/$name.json"
    fi
done 2>/dev/null | tee bench_output.txt | grep -E "^Reproduces|speedup range"

echo "==> machine-readable results in $REPORTS/*.json"
echo "==> done; see test_output.txt and bench_output.txt"
