#!/usr/bin/env bash
# Reproduce everything: build, test, and regenerate every table/figure.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "==> running tests"
ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee test_output.txt | tail -3

echo "==> running paper benches (Tables 2-4, Figures 11-18, ablations)"
for b in "$BUILD"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "############ $(basename "$b") ############"
    "$b"
done 2>/dev/null | tee bench_output.txt | grep -E "^Reproduces|speedup range"

echo "==> done; see test_output.txt and bench_output.txt"
