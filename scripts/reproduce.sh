#!/usr/bin/env bash
# Reproduce everything: build, test, and regenerate every table/figure.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "==> running tests"
ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee test_output.txt | tail -3

JOBS="$(nproc)"
REPORTS="$BUILD/reports"
mkdir -p "$REPORTS"

echo "==> full-matrix parallel sweep ($JOBS jobs)"
# Journaled + resumable: rerunning this script after an interruption
# replays finished jobs from the journal instead of re-simulating
# them. Delete the journal (or the build dir) to force a fresh sweep.
"$BUILD/bench/bench_sweep" --jobs "$JOBS" --quiet \
    --journal "$REPORTS/bench_sweep.jsonl" --resume \
    --json "$REPORTS/bench_sweep.json" \
    --timing-json "$REPORTS/bench_sweep_timing.json" \
    | grep -E "wall time|speedup|replayed|all done"

echo "==> running paper benches (Tables 2-4, Figures 11-18, ablations)"
for b in "$BUILD"/bench/bench_*; do
    [ -x "$b" ] || continue
    name="$(basename "$b")"
    [ "$name" = bench_sweep ] && continue   # already run above
    echo "############ $name ############"
    if [ "$name" = bench_components ]; then
        # google-benchmark binary: no --json/--trace support.
        "$b"
    else
        "$b" --jobs "$JOBS" --json "$REPORTS/$name.json"
    fi
done 2>/dev/null | tee bench_output.txt | grep -E "^Reproduces|speedup range"

echo "==> machine-readable results in $REPORTS/*.json"
echo "==> done; see test_output.txt and bench_output.txt"
