/**
 * @file
 * AES stream encryption demo: encrypts a message with the library's
 * FIPS-197-validated AES-128 CBC implementation, then shows what the
 * same T-table workload costs on each simulated machine — the §3.2
 * "table lookups" construct, where the indexed SRF keeps the four
 * 1 KB T-tables on chip and turns each round's 16 memory references
 * into in-lane SRF accesses.
 *
 * Build & run:  ./build/examples/aes_stream_encrypt
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "util/table.h"
#include "workloads/rijndael.h"

using namespace isrf;

int
main()
{
    // 1. Functional AES-128 CBC over a demo message.
    const std::string msg =
        "Stream register files with indexed access, HPCA 2004. "
        "This message is encrypted by the reproduction's own AES.";
    std::array<uint8_t, 16> key{};
    std::array<uint8_t, 16> iv{};
    for (int i = 0; i < 16; i++) {
        key[i] = static_cast<uint8_t>(i);
        iv[i] = static_cast<uint8_t>(0xa0 + i);
    }
    std::vector<std::array<uint8_t, 16>> blocks;
    for (size_t off = 0; off < msg.size(); off += 16) {
        std::array<uint8_t, 16> blk{};
        for (size_t i = 0; i < 16 && off + i < msg.size(); i++)
            blk[i] = static_cast<uint8_t>(msg[off + i]);
        blocks.push_back(blk);
    }
    auto cipher = aesCbcEncrypt128(key, iv, blocks);
    std::printf("AES-128-CBC of a %zu-byte message (%zu blocks):\n  ",
                msg.size(), cipher.size());
    for (size_t b = 0; b < 2 && b < cipher.size(); b++)
        for (uint8_t byte : cipher[b])
            std::printf("%02x", byte);
    std::printf("... (first 2 blocks)\n\n");

    // 2. FIPS-197 appendix C.1 self-check.
    std::array<uint8_t, 16> fipsKey{}, fipsPt{};
    for (int i = 0; i < 16; i++) {
        fipsKey[i] = static_cast<uint8_t>(i);
        fipsPt[i] = static_cast<uint8_t>(0x11 * i);
    }
    auto ct = aesEncryptBlock128(aesExpandKey128(fipsKey), fipsPt);
    const uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                0x70, 0xb4, 0xc5, 0x5a};
    bool fipsOk = std::memcmp(ct.data(), expect, 16) == 0;
    std::printf("FIPS-197 C.1 vector check: %s\n\n",
                fipsOk ? "PASS" : "FAIL");

    // 3. The same workload on each simulated machine.
    std::printf("Encrypting 8 independent CBC streams (one per "
                "cluster) on each machine:\n");
    WorkloadOptions opts;
    opts.repeats = 2;
    Table t({"Config", "Cycles", "Speedup", "DRAM words",
             "SRF stall%", "Correct"});
    uint64_t base = 0;
    for (MachineKind kind : {MachineKind::Base, MachineKind::ISRF1,
                             MachineKind::ISRF4, MachineKind::Cache}) {
        WorkloadResult r = runRijndael(MachineConfig::make(kind), opts);
        if (kind == MachineKind::Base)
            base = r.cycles;
        t.addRow({machineKindName(kind), std::to_string(r.cycles),
                  fmtDouble(static_cast<double>(base) /
                            static_cast<double>(r.cycles), 2) + "x",
                  std::to_string(r.dramWords),
                  fmtDouble(100.0 *
                      static_cast<double>(r.breakdown.srfStall) /
                      static_cast<double>(r.breakdown.total()), 1),
                  r.correct ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: 4.11x on ISRF4, ~95%% less memory traffic; "
                "ISRF1 loses 42%% to SRF stalls.\n");
    return fipsOk ? 0 : 1;
}
