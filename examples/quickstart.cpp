/**
 * @file
 * Quickstart: the paper's Figure 10 lookup kernel, end to end.
 *
 * Builds an ISRF4 stream processor, declares the KernelC-style kernel
 *
 *   kernel lookup(istream<int> in, idxl_istream<int> LUT,
 *                 ostream<int> out) {
 *       while (!eos(in)) { in >> a; LUT[a] >> b; out << a + b; }
 *   }
 *
 * with the embedded DSL, runs it over a stream of 512 elements with a
 * per-lane lookup table resident in the SRF, and verifies the result.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>
#include <vector>

#include "core/stream_program.h"
#include "kernel/builder.h"
#include "util/random.h"
#include "workloads/trace_util.h"

using namespace isrf;

int
main()
{
    // 1. A stream processor in the paper's ISRF4 configuration
    //    (Table 3: 8 lanes, 128 KB SRF, 4 sub-arrays per bank).
    Machine machine;
    machine.init(MachineConfig::isrf4());

    // 2. The kernel, in KernelC-style (Figure 10).
    KernelBuilder b("lookup");
    auto in = b.seqIn("in");
    auto lut = b.idxlIn("LUT");
    auto out = b.seqOut("out");
    auto a = b.read(in);           // in >> a;
    auto v = b.readIdx(lut, a);    // LUT[a] >> b;
    b.write(out, b.iadd(a, v));    // out << a + b;
    KernelGraph graph = b.build();

    KernelSchedule sched = machine.scheduleKernel(graph);
    std::printf("lookup kernel: II=%u cycles, schedule length=%u, "
                "%u pipeline stages\n", sched.ii, sched.length,
                sched.stages());

    // 3. Data: a 256-entry table (replicated per lane) and 512 inputs.
    const uint32_t tableSize = 256, n = 512;
    std::vector<Word> table(tableSize);
    for (uint32_t i = 0; i < tableSize; i++)
        table[i] = i * i;
    Rng rng(7);
    std::vector<Word> input(n);
    for (auto &w : input)
        w = static_cast<Word>(rng.below(tableSize));
    machine.mem().dram().fill(0, table);
    machine.mem().dram().fill(4096, input);

    // 4. The stream program: load table + input, run kernel, store.
    StreamProgram prog(machine);
    SlotId lutSlot = prog.addStream("LUT", tableSize,
                                    StreamLayout::PerLane,
                                    StreamDir::In, true);
    SlotId inSlot = prog.addStream("in", n);
    SlotId outSlot = prog.addStream("out", n);

    // Broadcast the table into every lane (functional) + one timing
    // load for its memory traffic.
    std::vector<Word> replicated;
    for (uint32_t l = 0; l < machine.lanes(); l++)
        replicated.insert(replicated.end(), table.begin(), table.end());
    prog.fillStream(lutSlot, replicated);
    SlotId tload = prog.addStream("tload", tableSize);
    prog.load(tload, 0);
    prog.load(inSlot, 4096);

    // The invocation: traces carry each lane's functional results.
    auto inv = newInvocation(machine, &graph, {inSlot, lutSlot, outSlot});
    const SrfGeometry &g = machine.config().srf;
    for (size_t e = 0; e < input.size(); e++) {
        uint32_t lane = stripeLane(g, e);
        auto &t = inv->laneTraces[lane];
        t.iterations++;
        t.idxReads[1].push_back(input[e]);
        t.seqWrites[2].push_back(input[e] + table[input[e]]);
    }
    inv->finalize();
    prog.kernel(inv);
    prog.store(outSlot, 8192);

    uint64_t cycles = prog.run();

    // 5. Verify against a plain loop.
    std::vector<Word> got = machine.mem().dram().dump(8192, n);
    uint32_t errors = 0;
    for (size_t i = 0; i < n; i++)
        if (got[i] != input[i] + table[input[i]])
            errors++;
    std::printf("ran %u lookups in %llu cycles (%.2f lookups/cycle), "
                "%u errors\n", n,
                static_cast<unsigned long long>(cycles),
                static_cast<double>(n) / static_cast<double>(cycles),
                errors);
    std::printf("indexed SRF words served: %llu, DRAM words moved: "
                "%llu\n",
                static_cast<unsigned long long>(
                    machine.srf().idxInLaneWords()),
                static_cast<unsigned long long>(
                    machine.mem().dram().wordsTransferred()));
    std::printf("%s\n", errors == 0 ? "OK" : "FAILED");
    return errors == 0 ? 0 : 1;
}
