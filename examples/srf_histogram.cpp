/**
 * @file
 * Read-write SRF data structures (§7 future work, implemented here):
 * an SRF-resident histogram updated in place by an `idxl_rw` stream.
 *
 * Each cluster reads a stream of keys and bumps the matching bin of a
 * table living in its SRF bank — a read-modify-write per element, with
 * the shared address FIFO keeping the read and write of each bin in
 * issue order. This is the kind of structure the paper's conclusion
 * proposes ("data structures that require both reads and writes
 * simultaneously in the SRF").
 *
 * Build & run:  ./build/examples/srf_histogram
 */
#include <cstdio>
#include <vector>

#include "core/report.h"
#include "core/stream_program.h"
#include "kernel/builder.h"
#include "util/random.h"
#include "workloads/trace_util.h"

using namespace isrf;

int
main()
{
    Machine m;
    m.init(MachineConfig::isrf4());

    const uint32_t bins = 128, n = 4096;

    // The in-place kernel: keys >> k; table[k] >> v; table[k] << v+1.
    KernelBuilder b("histogram");
    auto keysIn = b.seqIn("keys");
    auto table = b.idxlRw("table");  // read-write indexed stream
    auto k = b.read(keysIn);
    auto v = b.readIdx(table, k);
    b.writeIdx(table, k, b.iadd(v, b.constInt(1)));
    KernelGraph g = b.build();
    KernelSchedule sched = m.scheduleKernel(g);
    std::printf("histogram kernel: II=%u (read-modify-write through the "
                "indexed stream)\n", sched.ii);

    // SRF-resident table (one per lane) + key stream from memory. The
    // table's region is reserved through the machine allocator so the
    // stream program's own allocations stay disjoint.
    SlotConfig tc;
    tc.layout = StreamLayout::PerLane;
    tc.lengthWords = bins;
    tc.base = m.allocator().alloc(bins, StreamLayout::PerLane);
    tc.indexed = true;
    tc.readWrite = true;
    SlotId tbl = m.srf().openSlot(tc);
    for (uint32_t l = 0; l < m.lanes(); l++)
        for (uint32_t w = 0; w < bins; w++)
            m.srf().writeWord(l, tc.base + w, 0);

    Rng rng(99);
    std::vector<Word> keys(n);
    for (auto &key : keys)
        key = static_cast<Word>(rng.below(bins));
    m.mem().dram().fill(0, keys);

    StreamProgram prog(m);
    SlotId keySlot = prog.addStream("keys", n);
    prog.load(keySlot, 0);

    // Functional per-lane histograms become the kernel's write trace.
    auto inv = newInvocation(m, &g, {keySlot, tbl});
    std::vector<std::vector<Word>> hist(m.lanes(),
                                        std::vector<Word>(bins, 0));
    const SrfGeometry &geom = m.config().srf;
    for (size_t e = 0; e < keys.size(); e++) {
        uint32_t lane = stripeLane(geom, e);
        auto &t = inv->laneTraces[lane];
        t.iterations++;
        t.idxReads[1].push_back(keys[e]);
        IdxWriteTraceEntry w;
        w.recordIndex = keys[e];
        hist[lane][keys[e]]++;
        w.data[0] = hist[lane][keys[e]];
        t.idxWrites[1].push_back(w);
    }
    inv->finalize();
    ProgOpId kid = prog.kernel(inv);
    (void)kid;
    uint64_t cycles = prog.run();

    // Verify: SRF bins == reference counts; merge lanes for the total.
    uint32_t errors = 0;
    std::vector<uint64_t> total(bins, 0);
    for (uint32_t l = 0; l < m.lanes(); l++) {
        for (uint32_t w = 0; w < bins; w++) {
            if (m.srf().readWord(l, tc.base + w) != hist[l][w])
                errors++;
            total[w] += hist[l][w];
        }
    }
    uint64_t sum = 0;
    for (uint64_t t : total)
        sum += t;
    std::printf("binned %u keys into %u SRF-resident bins in %llu "
                "cycles (%.2f keys/cycle), %u errors\n", n, bins,
                static_cast<unsigned long long>(cycles),
                static_cast<double>(n) / static_cast<double>(cycles),
                errors);
    std::printf("checksum: %llu keys accounted for; busiest bin holds "
                "%llu\n", static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(
                    *std::max_element(total.begin(), total.end())));
    std::printf("%s\n", errors == 0 && sum == n ? "OK" : "FAILED");
    return errors == 0 && sum == n ? 0 : 1;
}
