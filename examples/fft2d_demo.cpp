/**
 * @file
 * 2D FFT demo: runs the paper's 64x64 FFT benchmark on all four
 * machine configurations and compares execution time, memory traffic
 * and the execution-time breakdown — the §3.2 "multi-dimensional array
 * accesses" motivating example, where indexed SRF access eliminates
 * the data rotation through memory.
 *
 * Build & run:  ./build/examples/fft2d_demo
 */
#include <cstdio>

#include "util/table.h"
#include "workloads/fft.h"

using namespace isrf;

int
main()
{
    std::printf("64x64 complex 2D FFT on a stream processor\n");
    std::printf("(Base must rotate the array through memory between "
                "passes;\n ISRF reads columns via in-lane indexed SRF "
                "access; Cache captures\n the rotation on-chip but "
                "still executes it.)\n\n");

    WorkloadOptions opts;
    opts.repeats = 2;

    Table t({"Config", "Cycles", "Speedup", "DRAM words", "Traffic",
             "Loop%", "Mem%", "SRF%", "Ovh%", "Correct"});
    uint64_t baseCycles = 0, baseWords = 0;
    for (MachineKind kind : {MachineKind::Base, MachineKind::ISRF1,
                             MachineKind::ISRF4, MachineKind::Cache}) {
        WorkloadResult r = runFft2d(MachineConfig::make(kind), opts);
        if (kind == MachineKind::Base) {
            baseCycles = r.cycles;
            baseWords = r.dramWords;
        }
        auto pct = [&](uint64_t v) {
            return fmtDouble(100.0 * static_cast<double>(v) /
                             static_cast<double>(r.breakdown.total()), 1);
        };
        t.addRow({machineKindName(kind), std::to_string(r.cycles),
                  fmtDouble(static_cast<double>(baseCycles) /
                            static_cast<double>(r.cycles), 2) + "x",
                  std::to_string(r.dramWords),
                  fmtDouble(static_cast<double>(r.dramWords) /
                            static_cast<double>(baseWords), 2),
                  pct(r.breakdown.loopBody), pct(r.breakdown.memStall),
                  pct(r.breakdown.srfStall), pct(r.breakdown.overhead),
                  r.correct ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: ISRF speedup 2.24x, traffic halved; Cache "
                "captures the reorder\nbut keeps the explicit reorder "
                "operation in the pipeline.\n");
    return 0;
}
