/**
 * @file
 * Irregular graph demo: neighbor updates over a locality-biased random
 * graph — the §3.2 "neighbor accesses in irregular graphs" construct
 * (Figure 5). The base machine must replicate each neighbor's record
 * into a sequential stream; the indexed SRF references a single
 * condensed copy through cross-lane indexed reads, roughly doubling
 * the strip that fits on chip.
 *
 * Build & run:  ./build/examples/irregular_graph
 */
#include <cstdio>

#include "util/table.h"
#include "workloads/igraph.h"

using namespace isrf;

int
main()
{
    const IgDataset &ds = igDataset("IG_SML");
    IgGraph g = igGenerate(ds, 12345);
    IgStripSizes strips = igStripSizes(ds);
    std::printf("Graph: %u nodes, %llu edges (avg degree %.2f), "
                "%u-word records\n", g.nodes,
                static_cast<unsigned long long>(g.edges()),
                static_cast<double>(g.edges()) / g.nodes,
                kIgRecordWords);
    std::printf("Strip sizes for equal SRF budget: base %u neighbors, "
                "indexed %u neighbors\n\n", strips.baseNeighbors,
                strips.indexedNeighbors);

    WorkloadOptions opts;
    opts.repeats = 1;
    Table t({"Config", "Cycles", "Speedup", "DRAM words", "Traffic",
             "Strips", "Correct"});
    uint64_t baseCycles = 0, baseWords = 0;
    for (MachineKind kind : {MachineKind::Base, MachineKind::ISRF4,
                             MachineKind::Cache}) {
        WorkloadResult r = runIgraph("IG_SML", MachineConfig::make(kind),
                                     opts);
        if (kind == MachineKind::Base) {
            baseCycles = r.cycles;
            baseWords = r.dramWords;
        }
        t.addRow({machineKindName(kind), std::to_string(r.cycles),
                  fmtDouble(static_cast<double>(baseCycles) /
                            static_cast<double>(r.cycles), 2) + "x",
                  std::to_string(r.dramWords),
                  fmtDouble(static_cast<double>(r.dramWords) /
                            static_cast<double>(baseWords), 2),
                  fmtDouble(r.extra.at("strips"), 0),
                  r.correct ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("All indexed accesses here are cross-lane: no data is "
                "replicated across lanes,\nso any cluster may reference "
                "any bank's records (§5.2).\n");
    return 0;
}
