/**
 * @file
 * Inter-cluster interconnect models (§4.5 and §7).
 *
 * The paper's implementation uses fully connected crossbars for both
 * the inter-cluster data network and the dedicated SRF address
 * network; §7 lists evaluating *sparse* interconnects for these
 * networks as future work. Both are modeled here:
 *
 *  - Crossbar: no internal blocking; only source injection ports and
 *    destination ejection ports are limited.
 *  - Ring: a bidirectional ring of unidirectional links; a transfer
 *    claims every link on its minimal path, so throughput is bounded
 *    by link (bisection) capacity and latency grows with hop count.
 *
 * Priority is positional: callers offer transfers in decreasing
 * priority order within a cycle (explicit inter-cluster communications
 * before cross-lane SRF data, per §4.5).
 */
#ifndef ISRF_NET_CROSSBAR_H
#define ISRF_NET_CROSSBAR_H

#include <cstdint>
#include <vector>

#include "util/snapshot.h"

namespace isrf {

/** Interconnect topology (§7 future work: sparse interconnects). */
enum class NetTopology : uint8_t {
    Crossbar,  ///< fully connected (the paper's implementation)
    Ring,      ///< bidirectional ring (sparse alternative)
};

/** Per-cycle port- and link-limited network arbitration. */
class Crossbar
{
  public:
    Crossbar() = default;

    /**
     * @param ports Number of endpoints on each side.
     * @param srcLimit Max transfers injected per source per cycle.
     * @param dstLimit Max transfers ejected per destination per cycle.
     * @param topology Crossbar (default) or Ring.
     */
    void init(uint32_t ports, uint32_t srcLimit, uint32_t dstLimit,
              NetTopology topology = NetTopology::Crossbar);

    /** Begin a new cycle: all port/link budgets reset. */
    void newCycle();

    /** True if a src→dst transfer could be granted right now. */
    bool canTransfer(uint32_t src, uint32_t dst) const;

    /**
     * Claim a src→dst transfer slot this cycle (for rings, claims every
     * link on the minimal path).
     * @return false if a port or link is exhausted (caller retries).
     */
    bool tryTransfer(uint32_t src, uint32_t dst);

    /**
     * Consume a source injection slot without a specific destination
     * (used to model statically scheduled communication occupancy).
     */
    bool claimSource(uint32_t src);

    /**
     * Extra delivery latency of a src→dst transfer relative to the
     * crossbar (0 for crossbars; hops-1 for rings).
     */
    uint32_t extraLatency(uint32_t src, uint32_t dst) const;

    /** Minimal hop distance between two endpoints. */
    uint32_t hopDistance(uint32_t src, uint32_t dst) const;

    NetTopology topology() const { return topology_; }
    uint32_t ports() const { return ports_; }
    uint64_t transfers() const { return transfers_; }
    uint64_t rejects() const { return rejects_; }

    /** Counters only: per-cycle budgets restore fresh (snapshots are
     *  taken at cycle boundaries, before the next newCycle()). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(transfers_);
        w.u64(rejects_);
    }

    bool
    loadState(SnapshotReader &r)
    {
        for (auto &u : srcUsed_)
            u = 0;
        for (auto &u : dstUsed_)
            u = 0;
        for (auto &u : linkUsed_)
            u = 0;
        dirty_ = false;
        return r.u64(transfers_) && r.u64(rejects_);
    }

  private:
    /** Ring links on the minimal src→dst path (link i = i -> i+1 cw,
     *  ports_+i = i+1 -> i ccw). */
    void pathLinks(uint32_t src, uint32_t dst,
                   std::vector<uint32_t> &out) const;

    uint32_t ports_ = 0;
    uint32_t srcLimit_ = 1;
    uint32_t dstLimit_ = 1;
    NetTopology topology_ = NetTopology::Crossbar;
    std::vector<uint32_t> srcUsed_;
    std::vector<uint32_t> dstUsed_;
    std::vector<uint8_t> linkUsed_;  ///< ring only: 2*ports_ links
    /** Any budget consumed since the last newCycle() reset. */
    bool dirty_ = false;
    uint64_t transfers_ = 0;
    uint64_t rejects_ = 0;
};

} // namespace isrf

#endif // ISRF_NET_CROSSBAR_H
