/**
 * @file
 * The dedicated SRF address (index) network for cross-lane indexed
 * access (§4.5, Figure 8(c)).
 *
 * Clusters inject (stream, index) requests toward the SRF bank that
 * owns the addressed word; each bank accepts at most `netPortsPerBank`
 * requests per cycle. The network itself is a fully connected crossbar,
 * so it is modeled as port-limited arbitration plus a fixed traversal
 * latency accounted by the SRF pipeline.
 */
#ifndef ISRF_NET_INDEX_NETWORK_H
#define ISRF_NET_INDEX_NETWORK_H

#include "net/crossbar.h"

namespace isrf {

/**
 * Thin wrapper around Crossbar: one injection per cluster per cycle
 * (Table 3: peak cross-lane indexed bandwidth 1 word/cycle/cluster) and
 * a configurable number of ejection ports per SRF bank (Figure 18).
 */
class IndexNetwork
{
  public:
    void
    init(uint32_t lanes, uint32_t portsPerBank,
         NetTopology topology = NetTopology::Crossbar)
    {
        xbar_.init(lanes, 1, portsPerBank, topology);
    }

    /** Extra traversal cycles vs a crossbar (ring hops). */
    uint32_t
    extraLatency(uint32_t src, uint32_t dstBank) const
    {
        return xbar_.extraLatency(src, dstBank);
    }

    void newCycle() { xbar_.newCycle(); }

    /** Try to route an index from cluster `src` to bank `dstBank`. */
    bool
    route(uint32_t src, uint32_t dstBank)
    {
        return xbar_.tryTransfer(src, dstBank);
    }

    bool
    canRoute(uint32_t src, uint32_t dstBank) const
    {
        return xbar_.canTransfer(src, dstBank);
    }

    uint64_t routed() const { return xbar_.transfers(); }
    uint64_t rejected() const { return xbar_.rejects(); }

    void saveState(SnapshotWriter &w) const { xbar_.saveState(w); }
    bool loadState(SnapshotReader &r) { return xbar_.loadState(r); }

  private:
    Crossbar xbar_;
};

} // namespace isrf

#endif // ISRF_NET_INDEX_NETWORK_H
