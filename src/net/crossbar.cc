#include "net/crossbar.h"

#include "util/log.h"

namespace isrf {

void
Crossbar::init(uint32_t ports, uint32_t srcLimit, uint32_t dstLimit,
               NetTopology topology)
{
    if (ports == 0 || srcLimit == 0 || dstLimit == 0)
        fatal("Crossbar: ports/limits must be positive");
    ports_ = ports;
    srcLimit_ = srcLimit;
    dstLimit_ = dstLimit;
    topology_ = topology;
    srcUsed_.assign(ports, 0);
    dstUsed_.assign(ports, 0);
    linkUsed_.assign(2 * static_cast<size_t>(ports), 0);
    dirty_ = false;
}

void
Crossbar::newCycle()
{
    // Budgets are only consumed through tryTransfer()/claimSource();
    // after a cycle with no successful claim every entry is already
    // zero, so the reset can be skipped (hot on quiescent cycles).
    if (!dirty_)
        return;
    for (auto &u : srcUsed_)
        u = 0;
    for (auto &u : dstUsed_)
        u = 0;
    for (auto &u : linkUsed_)
        u = 0;
    dirty_ = false;
}

uint32_t
Crossbar::hopDistance(uint32_t src, uint32_t dst) const
{
    if (topology_ == NetTopology::Crossbar)
        return 1;
    uint32_t cw = (dst + ports_ - src) % ports_;
    uint32_t ccw = (src + ports_ - dst) % ports_;
    return std::min(cw, ccw);
}

uint32_t
Crossbar::extraLatency(uint32_t src, uint32_t dst) const
{
    uint32_t h = hopDistance(src, dst);
    return h > 1 ? h - 1 : 0;
}

void
Crossbar::pathLinks(uint32_t src, uint32_t dst,
                    std::vector<uint32_t> &out) const
{
    out.clear();
    if (src == dst)
        return;
    uint32_t cw = (dst + ports_ - src) % ports_;
    uint32_t ccw = (src + ports_ - dst) % ports_;
    if (cw <= ccw) {
        for (uint32_t i = 0, p = src; i < cw; i++, p = (p + 1) % ports_)
            out.push_back(p);  // link p -> p+1
    } else {
        for (uint32_t i = 0, p = src; i < ccw;
                i++, p = (p + ports_ - 1) % ports_) {
            out.push_back(ports_ + (p + ports_ - 1) % ports_);
        }
    }
}

bool
Crossbar::canTransfer(uint32_t src, uint32_t dst) const
{
    if (src >= ports_ || dst >= ports_)
        panic("Crossbar: port out of range (src=%u dst=%u ports=%u)", src,
              dst, ports_);
    if (srcUsed_[src] >= srcLimit_ || dstUsed_[dst] >= dstLimit_)
        return false;
    if (topology_ == NetTopology::Ring) {
        std::vector<uint32_t> links;
        pathLinks(src, dst, links);
        for (uint32_t l : links)
            if (linkUsed_[l])
                return false;
    }
    return true;
}

bool
Crossbar::tryTransfer(uint32_t src, uint32_t dst)
{
    if (!canTransfer(src, dst)) {
        rejects_++;
        return false;
    }
    srcUsed_[src]++;
    dstUsed_[dst]++;
    if (topology_ == NetTopology::Ring) {
        std::vector<uint32_t> links;
        pathLinks(src, dst, links);
        for (uint32_t l : links)
            linkUsed_[l] = 1;
    }
    dirty_ = true;
    transfers_++;
    return true;
}

bool
Crossbar::claimSource(uint32_t src)
{
    if (src >= ports_)
        panic("Crossbar: source port %u out of range", src);
    if (srcUsed_[src] >= srcLimit_)
        return false;
    srcUsed_[src]++;
    dirty_ = true;
    return true;
}

} // namespace isrf
