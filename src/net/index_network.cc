#include "net/index_network.h"
