#include "mem/cache.h"

#include "util/log.h"

namespace isrf {

Cache::Cache(const CacheConfig &cfg)
{
    init(cfg);
}

void
Cache::init(const CacheConfig &cfg)
{
    cfg_ = cfg;
    if (cfg.lineWords == 0 || cfg.ways == 0 || cfg.banks == 0)
        fatal("Cache: invalid geometry");
    uint32_t linesTotal = cfg.capacityWords / cfg.lineWords;
    if (linesTotal % cfg.ways != 0)
        fatal("Cache: capacity not divisible by ways");
    sets_ = linesTotal / cfg.ways;
    lines_.assign(static_cast<size_t>(sets_) * cfg.ways, Line());
    stamp_ = 0;
    resetStats();
}

CacheAccessResult
Cache::access(uint64_t lineAddr, bool isWrite)
{
    CacheAccessResult res;
    uint32_t set = static_cast<uint32_t>(lineAddr % sets_);
    uint64_t tag = lineAddr / sets_;
    Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];

    stamp_++;
    for (uint32_t w = 0; w < cfg_.ways; w++) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lru = stamp_;
            ln.dirty = ln.dirty || isWrite;
            hits_++;
            res.hit = true;
            return res;
        }
    }

    // Miss: allocate, evicting the LRU way.
    misses_++;
    uint32_t victim = 0;
    for (uint32_t w = 1; w < cfg_.ways; w++) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (!base[victim].valid)
            break;
        if (base[w].lru < base[victim].lru)
            victim = w;
    }
    Line &ln = base[victim];
    if (ln.valid && ln.dirty) {
        writebacks_++;
        res.writeback = true;
        res.evictedLineAddr = ln.tag * sets_ + set;
    }
    ln.valid = true;
    ln.dirty = isWrite;
    ln.tag = tag;
    ln.lru = stamp_;
    return res;
}

bool
Cache::probe(uint64_t lineAddr) const
{
    uint32_t set = static_cast<uint32_t>(lineAddr % sets_);
    uint64_t tag = lineAddr / sets_;
    const Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];
    for (uint32_t w = 0; w < cfg_.ways; w++)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &ln : lines_)
        ln = Line();
}

} // namespace isrf
