#include "mem/cache.h"

#include "util/log.h"

namespace isrf {

Cache::Cache(const CacheConfig &cfg)
{
    init(cfg);
}

void
Cache::init(const CacheConfig &cfg)
{
    cfg_ = cfg;
    if (cfg.lineWords == 0 || cfg.ways == 0 || cfg.banks == 0)
        fatal("Cache: invalid geometry");
    uint32_t linesTotal = cfg.capacityWords / cfg.lineWords;
    if (linesTotal % cfg.ways != 0)
        fatal("Cache: capacity not divisible by ways");
    sets_ = linesTotal / cfg.ways;
    lines_.assign(static_cast<size_t>(sets_) * cfg.ways, Line());
    stamp_ = 0;
    resetStats();
}

CacheAccessResult
Cache::access(uint64_t lineAddr, bool isWrite)
{
    CacheAccessResult res;
    uint32_t set = static_cast<uint32_t>(lineAddr % sets_);
    uint64_t tag = lineAddr / sets_;
    Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];

    stamp_++;
    for (uint32_t w = 0; w < cfg_.ways; w++) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lru = stamp_;
            ln.dirty = ln.dirty || isWrite;
            hits_++;
            res.hit = true;
            return res;
        }
    }

    // Miss: allocate, evicting the LRU way.
    misses_++;
    uint32_t victim = 0;
    for (uint32_t w = 1; w < cfg_.ways; w++) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (!base[victim].valid)
            break;
        if (base[w].lru < base[victim].lru)
            victim = w;
    }
    Line &ln = base[victim];
    if (ln.valid && ln.dirty) {
        writebacks_++;
        res.writeback = true;
        res.evictedLineAddr = ln.tag * sets_ + set;
    }
    ln.valid = true;
    ln.dirty = isWrite;
    ln.tag = tag;
    ln.lru = stamp_;
    return res;
}

bool
Cache::probe(uint64_t lineAddr) const
{
    uint32_t set = static_cast<uint32_t>(lineAddr % sets_);
    uint64_t tag = lineAddr / sets_;
    const Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];
    for (uint32_t w = 0; w < cfg_.ways; w++)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &ln : lines_)
        ln = Line();
}

void
Cache::saveState(SnapshotWriter &w) const
{
    uint64_t valid = 0;
    for (const Line &ln : lines_)
        if (ln.valid)
            valid++;
    w.u64(lines_.size());
    w.u64(valid);
    for (size_t i = 0; i < lines_.size(); i++) {
        const Line &ln = lines_[i];
        if (!ln.valid)
            continue;
        w.u64(i);
        w.b(ln.dirty);
        w.u64(ln.tag);
        w.u64(ln.lru);
    }
    w.u64(stamp_);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(writebacks_);
}

bool
Cache::loadState(SnapshotReader &r)
{
    uint64_t nlines = 0, valid = 0;
    if (!r.u64(nlines) || !r.len(valid, 18))
        return false;
    if (nlines != lines_.size() || valid > nlines) {
        r.markFailed();
        return false;
    }
    for (auto &ln : lines_)
        ln = Line();
    for (uint64_t i = 0; i < valid; i++) {
        uint64_t idx = 0;
        if (!r.u64(idx))
            return false;
        if (idx >= lines_.size()) {
            r.markFailed();
            return false;
        }
        Line &ln = lines_[static_cast<size_t>(idx)];
        ln.valid = true;
        if (!r.b(ln.dirty) || !r.u64(ln.tag) || !r.u64(ln.lru))
            return false;
    }
    return r.u64(stamp_) && r.u64(hits_) && r.u64(misses_) &&
        r.u64(writebacks_);
}

} // namespace isrf
