/**
 * @file
 * Banked set-associative vector cache (the `Cache` configuration of
 * Table 2/3): 128 KB, 4-way, 4 banks, 2-word lines, LRU, write-back
 * write-allocate, 16 GB/s peak (4 words/cycle aggregate).
 *
 * The cache sits between the sequential SRF and DRAM, as in the vector
 * machines of [20][21][22]. It is a *timing filter*: data correctness
 * is carried by the functional DRAM storage (single writer at a time),
 * so the model keeps tags, dirty bits and LRU state only.
 */
#ifndef ISRF_MEM_CACHE_H
#define ISRF_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/ticked.h"
#include "util/stats.h"

namespace isrf {

/** Vector-cache geometry (defaults = Table 3 Cache column). */
struct CacheConfig
{
    uint32_t capacityWords = 32768;  ///< 128 KB
    uint32_t lineWords = 2;          ///< short lines per [22][23]
    uint32_t ways = 4;
    uint32_t banks = 4;
    double wordsPerCycle = 4.0;      ///< 16 GB/s aggregate
};

/** Result of a timing access to the cache. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;  ///< a dirty victim must go to DRAM
    uint64_t evictedLineAddr = 0;
};

/** Tag-only banked set-associative LRU cache model. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg = {});

    void init(const CacheConfig &cfg);

    /**
     * Access one line (timing). On a miss the line is allocated
     * (write-allocate for stores too) and the LRU victim selected.
     *
     * @param lineAddr line-granular address (wordAddr / lineWords).
     * @param isWrite marks the line dirty.
     */
    CacheAccessResult access(uint64_t lineAddr, bool isWrite);

    /** Probe without modifying state. */
    bool probe(uint64_t lineAddr) const;

    /** Invalidate everything (program boundaries in tests). */
    void flush();

    /** Bank a line maps to (bandwidth accounting). */
    uint32_t bankOf(uint64_t lineAddr) const
    {
        return static_cast<uint32_t>(lineAddr % cfg_.banks);
    }

    const CacheConfig &config() const { return cfg_; }
    uint32_t numSets() const { return sets_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
        writebacks_ = 0;
    }

    /** Valid lines + LRU stamp + hit/miss counters (util/snapshot.h).
     *  Geometry is init() state and must match. */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lru = 0;  ///< last-use stamp
    };

    CacheConfig cfg_;
    uint32_t sets_ = 0;
    std::vector<Line> lines_;  ///< sets_ x ways, row-major
    uint64_t stamp_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace isrf

#endif // ISRF_MEM_CACHE_H
