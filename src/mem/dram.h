/**
 * @file
 * Off-chip DRAM model: functional word storage plus a bandwidth/latency
 * timing model.
 *
 * Table 3 gives the machine a peak DRAM bandwidth of 9.14 GB/s at a
 * 1 GHz core clock, i.e. ~2.285 32-bit words per cycle. The model is a
 * token bucket at that rate; sequential stream accesses move words at
 * unit cost while random (gather/scatter) words pay a configurable
 * activation-overhead factor, reflecting reduced row locality even
 * after the memory system's access reordering.
 */
#ifndef ISRF_MEM_DRAM_H
#define ISRF_MEM_DRAM_H

#include <cstdint>
#include <vector>

#include "fault/ecc.h"
#include "sim/ticked.h"
#include "util/stats.h"

namespace isrf {

class Tracer;

/** DRAM timing/capacity parameters. */
struct DramConfig
{
    uint64_t capacityWords = 16ull << 20;  ///< 64 MB
    double wordsPerCycle = 9.14e9 / 4.0 / 1e9;  ///< 2.285 w/cyc (Table 3)
    double randomCostFactor = 1.6;  ///< token cost of a random word
    /** Cost of random words within a row-buffer-sized footprint. */
    double smallFootprintCostFactor = 1.25;
    uint32_t accessLatency = 40;    ///< cycles before first data word
    double burstTokens = 16.0;      ///< token bucket depth

    /**
     * Mechanistic open-page row-buffer model (optional alternative to
     * the token-cost heuristics): per-bank open rows, hit/miss costs.
     */
    bool rowBufferModel = false;
    uint32_t rowWords = 512;   ///< 2 KB rows
    uint32_t banks = 4;
    double rowHitCost = 1.0;   ///< tokens per word hitting the open row
    double rowMissCost = 2.5;  ///< first word of a newly opened row
};

/** Functional + timing DRAM. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = {});

    void init(const DramConfig &cfg, Tracer *tracer = nullptr);

    // --- functional storage ---
    Word read(uint64_t wordAddr) const;
    void write(uint64_t wordAddr, Word w);
    void fill(uint64_t wordAddr, const std::vector<Word> &data);
    std::vector<Word> dump(uint64_t wordAddr, uint64_t n) const;
    uint64_t capacityWords() const { return cfg_.capacityWords; }

    // --- fault model (src/fault/, DESIGN.md §Fault model) ---

    /**
     * ECC-decoded read: corrects single-bit faults like read(), but
     * also reports the decode status so the memory system can retry
     * detected-uncorrectable words.
     */
    Word readChecked(uint64_t wordAddr, EccStatus *status);

    /** Flip bits at wordAddr, recorded for the SECDED decoder. */
    void injectBitFlips(uint64_t wordAddr, Word mask, bool transient);

    /** Background-scrub all pending faults. @return words repaired. */
    uint64_t scrubEcc();

    const EccDomain &ecc() const { return ecc_; }

    // --- timing ---
    /** Accrue this cycle's bandwidth tokens. */
    void tick();

    /**
     * Equivalent of n consecutive tick()s with no token consumption in
     * between (skip-mode bulk credit). Bitwise-identical to dense
     * ticking: the floating-point accrual is replayed step by step
     * until the bucket saturates, then further ticks are no-ops.
     */
    void skipCycles(uint64_t n);

    /**
     * Try to move up to `want` words this cycle.
     * @param sequential true for streaming access patterns.
     * @return number of words granted (tokens consumed).
     */
    uint32_t requestWords(uint32_t want, bool sequential);

    /** As requestWords but with an explicit per-word token cost. */
    uint32_t requestWordsCost(uint32_t want, double costFactor);

    /**
     * All-or-nothing token grab for `words` words (e.g. a full cache
     * line fill). @return true if tokens were available and consumed.
     */
    bool tryConsumeExact(uint32_t words, bool sequential);

    /** As tryConsumeExact but with an explicit per-word token cost. */
    bool tryConsumeExactCost(uint32_t words, double costFactor);

    /**
     * Row-buffer-model access of one word at `addr` (requires
     * rowBufferModel). Charges the hit or miss cost depending on the
     * bank's open row, which it updates. All-or-nothing on tokens.
     */
    bool tryAccessWord(uint64_t addr);

    uint64_t rowHits() const { return rowHits_; }
    uint64_t rowMisses() const { return rowMisses_; }

    uint32_t accessLatency() const { return cfg_.accessLatency; }
    const DramConfig &config() const { return cfg_; }

    /** Total words that crossed the DRAM pins (the Figure 11 metric). */
    uint64_t wordsTransferred() const { return wordsTransferred_; }
    uint64_t seqWords() const { return seqWords_; }
    uint64_t randomWords() const { return randomWords_; }
    void
    resetStats()
    {
        wordsTransferred_ = 0;
        seqWords_ = 0;
        randomWords_ = 0;
    }

    /**
     * Snapshot (util/snapshot.h): functional storage is run-length
     * encoded ((count, value) runs — checkpoints stay small while most
     * of DRAM is untouched zeros), plus ECC, row-buffer state, the
     * token bucket and counters. Capacity is init() state, must match.
     */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    DramConfig cfg_;
    /** mutable: read() scrubs corrected words back in place. */
    mutable std::vector<Word> mem_;
    mutable EccDomain ecc_;
    std::vector<int64_t> openRow_;
    double tokens_ = 0;
    Cycle now_ = 0;  ///< cycles ticked (trace timestamps)
    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t traceCh_ = 0;
    uint64_t rowHits_ = 0;
    uint64_t rowMisses_ = 0;
    uint64_t wordsTransferred_ = 0;
    uint64_t seqWords_ = 0;
    uint64_t randomWords_ = 0;
};

} // namespace isrf

#endif // ISRF_MEM_DRAM_H
