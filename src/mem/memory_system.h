/**
 * @file
 * Memory system front-end: accepts stream memory operations, runs them
 * on a small number of StreamMemUnits, and owns shared DRAM/cache
 * bandwidth accounting.
 */
#ifndef ISRF_MEM_MEMORY_SYSTEM_H
#define ISRF_MEM_MEMORY_SYSTEM_H

#include <deque>
#include <vector>

#include "mem/stream_mem_unit.h"

namespace isrf {

class Tracer;

/** Memory-system configuration. */
struct MemSystemConfig
{
    uint32_t units = 2;          ///< concurrent stream memory ops
    uint32_t stagingWords = 64;  ///< per-unit staging buffer
    bool cacheEnabled = false;   ///< Cache machine configuration
};

/** Handle to a submitted stream memory operation. */
using MemOpId = int64_t;

/**
 * The machine's memory system: queue + units + DRAM (+ vector cache).
 */
class MemorySystem
{
  public:
    void init(const MemSystemConfig &cfg, const DramConfig &dramCfg,
              const CacheConfig &cacheCfg, Srf *srf,
              Tracer *tracer = nullptr);

    /** Submit an op; runs when a unit frees up (FIFO). */
    MemOpId submit(MemOp op);

    /** True once the op has fully completed. */
    bool done(MemOpId id) const;

    /** True when no op is queued or executing. */
    bool idle() const;

    /** Number of ops queued or executing. */
    size_t inFlight() const;

    void tick(Cycle now);

    /**
     * Earliest future cycle the memory system can change observable
     * state, queried after the tick at `now` (skip mode). Forces a
     * dense next cycle after any op completion so the stream-program
     * driver can react (issue dependents) exactly as in dense mode.
     */
    Cycle nextEvent(Cycle now) const;

    /**
     * Credit skipped cycles [from, to): DRAM token accrual, the
     * per-busy-cycle queue-depth histogram samples, and unit trace
     * clocks — everything a dense tick touches while quiescent.
     */
    void skipCycles(Cycle from, Cycle to);

    Dram &dram() { return dram_; }
    const Dram &dram() const { return dram_; }
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }
    bool cacheEnabled() const { return cfg_.cacheEnabled; }

    StatGroup &stats() { return stats_; }

    // --- fault model (src/fault/, DESIGN.md §Fault model) ---

    /** Apply the retry/timeout policy to every stream memory unit. */
    void setFaultConfig(const FaultConfig &fc);

    /** Drop one in-flight load word (first unit that has one). */
    bool injectDrop();

    /** Stall every busy unit for `cycles`. */
    void injectDelay(uint32_t cycles);

    uint64_t retries() const;
    uint64_t poisonedWords() const;
    uint64_t droppedWords() const;

    /** Publish fault/ECC counters into this group's stats. */
    void syncFaultStats();

    /** Queue, units, DRAM, cache and stats (util/snapshot.h). */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    struct Pending
    {
        MemOpId id;
        MemOp op;
    };

    MemSystemConfig cfg_;
    Srf *srf_ = nullptr;
    Dram dram_;
    Cache cache_;
    std::vector<StreamMemUnit> units_;
    std::vector<MemOpId> unitOpId_;
    std::deque<Pending> queue_;
    MemOpId nextId_ = 1;
    /** Cycle of the most recent op completion (driver-visible event). */
    Cycle lastCompletion_ = kNoEvent;
    StatGroup stats_{"mem"};
    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t traceCh_ = 0;
    /** Distribution of in-flight ops while the system is busy. */
    Histogram *queueDepthHist_ = nullptr;
};

} // namespace isrf

#endif // ISRF_MEM_MEMORY_SYSTEM_H
