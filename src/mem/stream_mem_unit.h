/**
 * @file
 * Stream memory operations and the unit that executes them.
 *
 * A single stream instruction loads or stores an entire stream (§2),
 * moving data between DRAM (optionally through the vector cache) and a
 * region of the SRF. Indexed loads (gathers) and stores (scatters) use
 * per-record memory indices. Each StreamMemUnit executes one operation
 * at a time; the MemorySystem owns several units so stream loads can
 * overlap stores, as the Imagine memory system allows.
 */
#ifndef ISRF_MEM_STREAM_MEM_UNIT_H
#define ISRF_MEM_STREAM_MEM_UNIT_H

#include <deque>
#include <vector>

#include "fault/fault_config.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "srf/srf.h"

namespace isrf {

class Tracer;

/** Kind of stream memory operation. */
enum class MemOpKind : uint8_t { Load, Store, Gather, Scatter };

/** One stream memory instruction. */
struct MemOp
{
    MemOpKind kind = MemOpKind::Load;
    /** DRAM word base address of the stream (or of the indexed table). */
    uint64_t memBase = 0;
    /** SRF slot whose region is the on-chip side of the transfer. */
    SlotId srfSlot = kNoSlot;
    /** Words to move for Load/Store (defaults to the slot's size). */
    uint64_t lengthWords = 0;
    /** Record indices for Gather/Scatter (memBase + idx*recordWords). */
    std::vector<uint32_t> indices;
    uint32_t recordWords = 1;
    /** Route through the vector cache (Cache configuration only). */
    bool cached = false;
    /** SRF-side start offset within the slot, in words. */
    uint64_t dstOffsetWords = 0;
};

/** Serialize/deserialize one MemOp (util/snapshot.h). */
void saveMemOp(SnapshotWriter &w, const MemOp &op);
bool loadMemOp(SnapshotReader &r, MemOp &op);

/** Shared per-cycle bandwidth state owned by the MemorySystem. */
struct MemBandwidth
{
    double cacheTokens = 0;  ///< cache words available this cycle
};

/**
 * Executes one MemOp: a small state machine with a staging buffer
 * between the DRAM side (token-bucket limited) and the SRF side
 * (block transfers through the SRF port via memClaim()).
 */
class StreamMemUnit
{
  public:
    void init(Dram *dram, Cache *cache, Srf *srf, uint32_t stagingWords,
              Tracer *tracer = nullptr);

    /** Begin executing an op (unit must be idle). */
    void start(const MemOp &op, Cycle now);

    bool busy() const { return busy_; }
    const MemOp &currentOp() const { return op_; }

    /** Progress one cycle; bw carries shared cache bandwidth. */
    void tick(Cycle now, MemBandwidth &bw);

    /**
     * Earliest future cycle this unit can move data, queried after the
     * tick at `now` (skip mode). kNoEvent while idle; the DRAM access
     * latency window, injected stalls, and retry backoff report their
     * release cycle; any state where words can move reports now + 1.
     */
    Cycle nextEvent(Cycle now) const;

    /** Credit skipped cycles [from, to): only curCycle_ advances. */
    void skipCycles(Cycle from, Cycle to);

    /** Words moved on the DRAM side so far (progress/debug). */
    uint64_t dramWordsDone() const { return dramCursor_; }

    // --- fault model (src/fault/, DESIGN.md §Fault model) ---

    /** Retry/timeout policy for detected-uncorrectable reads. */
    void setFaultConfig(const FaultConfig &fc) { faults_ = fc; }

    /**
     * Drop the most recently fetched in-flight load word (it will be
     * re-fetched, paying DRAM bandwidth again). @return false if the
     * unit has nothing droppable this cycle.
     */
    bool injectDrop();

    /** Stall this unit for `cycles` starting now. */
    void injectDelay(uint32_t cycles);

    uint64_t retries() const { return retries_; }
    uint64_t poisonedWords() const { return poisonedWords_; }
    uint64_t droppedWords() const { return droppedWords_; }
    uint64_t delayedCycles() const { return delayedCycles_; }
    /** True if the current/last op completed with poisoned words. */
    bool opPoisoned() const { return opPoisoned_; }

    /** In-flight op + cursors + staging + retry state (snapshot). */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    /** Total words this op moves. */
    uint64_t totalWords() const;
    /** DRAM word address of stream word i. */
    uint64_t memAddrOf(uint64_t i) const;
    /** Per-word DRAM token cost of this op's access pattern. */
    double dramCost() const { return dramCostFactor_; }
    /**
     * Pay the timing cost of touching one DRAM word (through the cache
     * when op.cached). @return false if bandwidth is exhausted.
     */
    bool payWordCost(uint64_t memAddr, bool isWrite, MemBandwidth &bw);

    void tickLoadSide(MemBandwidth &bw);
    void tickStoreSide(MemBandwidth &bw);

    /**
     * ECC-decode one load word with bounded-backoff retries.
     * @return false if the word must be retried later (backoff armed).
     * On success or retry exhaustion *out holds the data (or poison).
     */
    bool readWithRetry(uint64_t addr, Word *out);

    Dram *dram_ = nullptr;
    Cache *cache_ = nullptr;
    Srf *srf_ = nullptr;
    uint32_t stagingCap_ = 64;

    bool busy_ = false;
    MemOp op_;
    double dramCostFactor_ = 1.0;
    Cycle startCycle_ = 0;
    Cycle curCycle_ = 0;  ///< latest tick() cycle (trace timestamps)
    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t cacheTraceCh_ = 0;
    uint64_t dramCursor_ = 0;  ///< stream words done on the DRAM side
    uint64_t srfCursor_ = 0;   ///< stream words done on the SRF side
    std::deque<Word> staging_;

    FaultConfig faults_;       ///< retry policy (enabled=false: no-op)
    uint32_t retriesThisWord_ = 0;
    Cycle retryNotBefore_ = 0; ///< exponential-backoff gate
    Cycle stallUntil_ = 0;     ///< injected delay gate
    bool opPoisoned_ = false;
    uint64_t retries_ = 0;
    uint64_t poisonedWords_ = 0;
    uint64_t droppedWords_ = 0;
    uint64_t delayedCycles_ = 0;
    uint16_t faultTraceCh_ = 0;
};

} // namespace isrf

#endif // ISRF_MEM_STREAM_MEM_UNIT_H
