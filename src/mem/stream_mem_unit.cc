#include "mem/stream_mem_unit.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

void
StreamMemUnit::init(Dram *dram, Cache *cache, Srf *srf,
                    uint32_t stagingWords, Tracer *tracer)
{
    trc_ = tracer ? tracer : &Tracer::instance();
    dram_ = dram;
    cache_ = cache;
    srf_ = srf;
    stagingCap_ = stagingWords;
    if (cache_)
        cacheTraceCh_ = trc_->channel("cache");
    faultTraceCh_ = trc_->channel("fault");
}

void
StreamMemUnit::start(const MemOp &op, Cycle now)
{
    if (busy_)
        panic("StreamMemUnit::start while busy");
    op_ = op;
    if (op_.lengthWords == 0 && (op_.kind == MemOpKind::Load ||
                                 op_.kind == MemOpKind::Store)) {
        op_.lengthWords = srf_->slotTotalWords(op_.srfSlot);
    }
    busy_ = true;
    startCycle_ = now;
    dramCursor_ = 0;
    srfCursor_ = 0;
    staging_.clear();
    retriesThisWord_ = 0;
    retryNotBefore_ = 0;
    opPoisoned_ = false;

    // Gathers/scatters over a small footprint (e.g. lookup tables) hit
    // open DRAM rows after the memory system's access reordering and
    // run at near-streaming efficiency; large-footprint index patterns
    // pay the full random-access cost.
    dramCostFactor_ = 1.0;
    if (op_.kind == MemOpKind::Gather || op_.kind == MemOpKind::Scatter) {
        uint32_t lo = ~0u, hi = 0;
        for (uint32_t idx : op_.indices) {
            lo = std::min(lo, idx);
            hi = std::max(hi, idx);
        }
        uint64_t footprintWords = op_.indices.empty() ? 0
            : (static_cast<uint64_t>(hi - lo) + 1) * op_.recordWords;
        // 16 KB footprint ~ a handful of DRAM rows.
        dramCostFactor_ = footprintWords <= 4096
            ? dram_->config().smallFootprintCostFactor
            : dram_->config().randomCostFactor;
    }
}

uint64_t
StreamMemUnit::totalWords() const
{
    if (op_.kind == MemOpKind::Gather || op_.kind == MemOpKind::Scatter)
        return static_cast<uint64_t>(op_.indices.size()) * op_.recordWords;
    return op_.lengthWords;
}

uint64_t
StreamMemUnit::memAddrOf(uint64_t i) const
{
    if (op_.kind == MemOpKind::Gather || op_.kind == MemOpKind::Scatter) {
        uint64_t rec = i / op_.recordWords;
        uint64_t off = i % op_.recordWords;
        return op_.memBase +
            static_cast<uint64_t>(op_.indices[rec]) * op_.recordWords + off;
    }
    return op_.memBase + i;
}

bool
StreamMemUnit::payWordCost(uint64_t memAddr, bool isWrite, MemBandwidth &bw)
{
    if (!op_.cached || !cache_) {
        if (dram_->config().rowBufferModel)
            return dram_->tryAccessWord(memAddr);
        return dram_->tryConsumeExactCost(1, dramCostFactor_);
    }

    uint64_t line = memAddr / cache_->config().lineWords;
    if (cache_->probe(line)) {
        if (bw.cacheTokens < 1.0)
            return false;
        bw.cacheTokens -= 1.0;
        cache_->access(line, isWrite);  // hit: updates LRU/dirty
        return true;
    }
    // Write-validate: a sequential store that overwrites the whole line
    // allocates without fetching it from DRAM.
    uint32_t lw = cache_->config().lineWords;
    bool fullLineStore = isWrite && op_.kind == MemOpKind::Store &&
        line * lw >= op_.memBase &&
        (line + 1) * lw <= op_.memBase + op_.lengthWords;
    // Miss: fill the whole line from DRAM (and write back a dirty
    // victim). Needs tokens for fill + potential writeback; conservatively
    // reserve fill first, then account the writeback.
    if (!fullLineStore) {
        if (dram_->config().rowBufferModel) {
            // Fill the line word by word through the row model.
            uint64_t lineBase = line * lw;
            if (!dram_->tryAccessWord(lineBase))
                return false;
            for (uint32_t i = 1; i < lw; i++)
                dram_->tryAccessWord(lineBase + i);
        } else if (!dram_->tryConsumeExactCost(lw, dramCostFactor_)) {
            return false;
        }
    }
    if (fullLineStore && bw.cacheTokens < 1.0)
        return false;
    if (fullLineStore)
        bw.cacheTokens -= 1.0;
    CacheAccessResult r = cache_->access(line, isWrite);
    if (trc_->on())
        trc_->instant(cacheTraceCh_, "miss", curCycle_, line);
    if (r.writeback) {
        // Writeback bandwidth: retroactive token consumption; allow the
        // bucket to go negative via a forced grab so timing still pays.
        dram_->requestWords(cache_->config().lineWords, true);
        if (trc_->on()) {
            trc_->instant(cacheTraceCh_, "writeback",
                                       curCycle_, line);
        }
    }
    return true;
}

bool
StreamMemUnit::readWithRetry(uint64_t addr, Word *out)
{
    if (!faults_.enabled || !faults_.eccEnabled) {
        *out = dram_->read(addr);
        return true;
    }
    EccStatus st;
    Word w = dram_->readChecked(addr, &st);
    if (st != EccStatus::Uncorrectable) {
        retriesThisWord_ = 0;
        *out = w;
        return true;
    }
    bool timedOut = faults_.opTimeoutCycles &&
        curCycle_ >= startCycle_ + faults_.opTimeoutCycles;
    if (retriesThisWord_ < faults_.retryLimit && !timedOut) {
        // Re-issue the word after a bounded exponential backoff.
        retriesThisWord_++;
        retries_++;
        retryNotBefore_ = curCycle_ +
            (static_cast<Cycle>(faults_.retryBackoffBase)
             << (retriesThisWord_ - 1));
        if (trc_->on())
            trc_->instant(faultTraceCh_, "mem_retry",
                                       curCycle_, addr);
        return false;
    }
    // Retries (or the op's retry budget) exhausted: complete the word
    // with a poison marker instead of aborting the run.
    retriesThisWord_ = 0;
    poisonedWords_++;
    opPoisoned_ = true;
    ISRF_WARN("StreamMemUnit: uncorrectable DRAM word at %llu after %u "
              "retries; poisoning",
              static_cast<unsigned long long>(addr), faults_.retryLimit);
    if (trc_->on())
        trc_->instant(faultTraceCh_, "mem_poison",
                                   curCycle_, addr);
    *out = kPoisonWord;
    return true;
}

void
StreamMemUnit::tickLoadSide(MemBandwidth &bw)
{
    // DRAM/cache -> staging.
    uint64_t total = totalWords();
    uint32_t moved = 0;
    while (dramCursor_ < total && staging_.size() < stagingCap_ &&
           moved < 16 && curCycle_ >= retryNotBefore_) {
        uint64_t addr = memAddrOf(dramCursor_);
        if (!payWordCost(addr, false, bw))
            break;
        Word w;
        if (!readWithRetry(addr, &w))
            break;
        staging_.push_back(w);
        dramCursor_++;
        moved++;
    }
    // staging -> SRF storage via the SRF port (block transfer).
    uint32_t block = srf_->geometry().seqAccessWords();
    bool lastChunk = dramCursor_ >= total;
    if (staging_.size() >= block || (lastChunk && !staging_.empty())) {
        srf_->memClaim(op_.srfSlot, [this, block]() {
            uint32_t k = static_cast<uint32_t>(
                std::min<size_t>(block, staging_.size()));
            for (uint32_t i = 0; i < k; i++) {
                auto [lane, addr] = srf_->slotWordLocation(
                    op_.srfSlot, op_.dstOffsetWords + srfCursor_);
                srf_->writeWord(lane, addr, staging_.front());
                staging_.pop_front();
                srfCursor_++;
            }
        });
    }
}

void
StreamMemUnit::tickStoreSide(MemBandwidth &bw)
{
    uint64_t total = totalWords();
    // SRF storage -> staging via the SRF port.
    uint32_t block = srf_->geometry().seqAccessWords();
    if (srfCursor_ < total && staging_.size() + block <= stagingCap_) {
        srf_->memClaim(op_.srfSlot, [this, block, total]() {
            uint32_t k = static_cast<uint32_t>(
                std::min<uint64_t>(block, total - srfCursor_));
            for (uint32_t i = 0; i < k; i++) {
                auto [lane, addr] = srf_->slotWordLocation(
                    op_.srfSlot, op_.dstOffsetWords + srfCursor_);
                staging_.push_back(srf_->readWord(lane, addr));
                srfCursor_++;
            }
        });
    }
    // staging -> DRAM/cache.
    uint32_t moved = 0;
    while (!staging_.empty() && moved < 16) {
        uint64_t addr = memAddrOf(dramCursor_);
        if (!payWordCost(addr, true, bw))
            break;
        dram_->write(addr, staging_.front());
        staging_.pop_front();
        dramCursor_++;
        moved++;
    }
}

bool
StreamMemUnit::injectDrop()
{
    // Model a word lost between DRAM and the staging buffer: the most
    // recently fetched load word vanishes and its fetch is re-issued.
    bool loadSide = op_.kind == MemOpKind::Load ||
        op_.kind == MemOpKind::Gather;
    if (!busy_ || !loadSide || staging_.empty())
        return false;
    staging_.pop_back();
    dramCursor_--;
    droppedWords_++;
    if (trc_->on())
        trc_->instant(faultTraceCh_, "mem_drop", curCycle_,
                                   dramCursor_);
    return true;
}

void
StreamMemUnit::injectDelay(uint32_t cycles)
{
    Cycle until = curCycle_ + cycles;
    if (until > stallUntil_) {
        delayedCycles_ += until - std::max(curCycle_, stallUntil_);
        stallUntil_ = until;
    }
}

Cycle
StreamMemUnit::nextEvent(Cycle now) const
{
    if (!busy_)
        return kNoEvent;
    // tick() is a pure no-op (except curCycle_, handled by skipCycles)
    // until both the injected-stall gate and the fixed access-latency
    // window have passed.
    Cycle gate = std::max(stallUntil_,
                          startCycle_ + dram_->accessLatency());
    if (gate > now + 1)
        return gate;
    // Retry backoff fully idles the load side only while the staging
    // buffer is empty (otherwise staging -> SRF transfers continue).
    bool loadSide = op_.kind == MemOpKind::Load ||
        op_.kind == MemOpKind::Gather;
    if (loadSide && staging_.empty() && dramCursor_ < totalWords() &&
            retryNotBefore_ > now + 1) {
        return retryNotBefore_;
    }
    return now + 1;
}

void
StreamMemUnit::skipCycles(Cycle from, Cycle to)
{
    (void)from;
    // Dense ticks set curCycle_ every cycle (trace timestamps and
    // injected-delay arithmetic read it); the last skipped cycle is
    // to - 1.
    curCycle_ = to - 1;
}

void
StreamMemUnit::tick(Cycle now, MemBandwidth &bw)
{
    curCycle_ = now;
    if (!busy_)
        return;
    // Injected timing fault: the unit sits out these cycles.
    if (now < stallUntil_)
        return;
    // Fixed access latency before the first data word moves.
    if (now < startCycle_ + dram_->accessLatency())
        return;

    if (op_.kind == MemOpKind::Load || op_.kind == MemOpKind::Gather)
        tickLoadSide(bw);
    else
        tickStoreSide(bw);

    uint64_t total = totalWords();
    if (dramCursor_ >= total && srfCursor_ >= total && staging_.empty())
        busy_ = false;
}

void
saveMemOp(SnapshotWriter &w, const MemOp &op)
{
    w.u8(static_cast<uint8_t>(op.kind));
    w.u64(op.memBase);
    w.u32(static_cast<uint32_t>(op.srfSlot));
    w.u64(op.lengthWords);
    w.u64(op.indices.size());
    for (uint32_t idx : op.indices)
        w.u32(idx);
    w.u32(op.recordWords);
    w.b(op.cached);
    w.u64(op.dstOffsetWords);
}

bool
loadMemOp(SnapshotReader &r, MemOp &op)
{
    uint8_t kind = 0;
    uint32_t slotRaw = 0;
    uint64_t nidx = 0;
    if (!r.u8(kind) || !r.u64(op.memBase) || !r.u32(slotRaw) ||
        !r.u64(op.lengthWords) || !r.len(nidx, 4))
        return false;
    op.kind = static_cast<MemOpKind>(kind);
    op.srfSlot = static_cast<SlotId>(slotRaw);
    op.indices.resize(nidx);
    for (uint32_t &idx : op.indices)
        if (!r.u32(idx))
            return false;
    return r.u32(op.recordWords) && r.b(op.cached) &&
        r.u64(op.dstOffsetWords);
}

void
StreamMemUnit::saveState(SnapshotWriter &w) const
{
    w.b(busy_);
    saveMemOp(w, op_);
    w.f64(dramCostFactor_);
    w.u64(startCycle_);
    w.u64(curCycle_);
    w.u64(dramCursor_);
    w.u64(srfCursor_);
    w.u64(staging_.size());
    for (Word x : staging_)
        w.u32(x);
    w.u32(retriesThisWord_);
    w.u64(retryNotBefore_);
    w.u64(stallUntil_);
    w.b(opPoisoned_);
    w.u64(retries_);
    w.u64(poisonedWords_);
    w.u64(droppedWords_);
    w.u64(delayedCycles_);
}

bool
StreamMemUnit::loadState(SnapshotReader &r)
{
    if (!r.b(busy_) || !loadMemOp(r, op_) || !r.f64(dramCostFactor_) ||
        !r.u64(startCycle_) || !r.u64(curCycle_) ||
        !r.u64(dramCursor_) || !r.u64(srfCursor_))
        return false;
    uint64_t nstage = 0;
    if (!r.len(nstage, 4))
        return false;
    staging_.clear();
    for (uint64_t i = 0; i < nstage; i++) {
        Word x = 0;
        if (!r.u32(x))
            return false;
        staging_.push_back(x);
    }
    return r.u32(retriesThisWord_) && r.u64(retryNotBefore_) &&
        r.u64(stallUntil_) && r.b(opPoisoned_) && r.u64(retries_) &&
        r.u64(poisonedWords_) && r.u64(droppedWords_) &&
        r.u64(delayedCycles_);
}

} // namespace isrf
