#include "mem/dram.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

Dram::Dram(const DramConfig &cfg)
{
    init(cfg);
}

void
Dram::init(const DramConfig &cfg, Tracer *tracer)
{
    if (cfg.wordsPerCycle <= 0)
        fatal("Dram: non-positive bandwidth");
    cfg_ = cfg;
    mem_.assign(cfg.capacityWords, 0);
    ecc_.clear();
    openRow_.assign(cfg.banks, -1);
    tokens_ = 0;
    now_ = 0;
    rowHits_ = 0;
    rowMisses_ = 0;
    trc_ = tracer ? tracer : &Tracer::instance();
    traceCh_ = trc_->channel("dram");
    resetStats();
}

Word
Dram::read(uint64_t wordAddr) const
{
    if (wordAddr >= mem_.size())
        panic("Dram::read: address %llu out of range",
              static_cast<unsigned long long>(wordAddr));
    // Scrub-on-read: single-bit faults are corrected in place
    // (logically const), multi-bit faults stay visible as corrupt data.
    if (!ecc_.empty())
        ecc_.check(wordAddr, &mem_[wordAddr]);
    return mem_[wordAddr];
}

Word
Dram::readChecked(uint64_t wordAddr, EccStatus *status)
{
    if (wordAddr >= mem_.size())
        panic("Dram::readChecked: address %llu out of range",
              static_cast<unsigned long long>(wordAddr));
    if (ecc_.empty()) {
        *status = EccStatus::Clean;
        return mem_[wordAddr];
    }
    // A transient uncorrectable fault repairs the cell but this read
    // still observes the corrupted value — keep the pre-decode word.
    Word observed = mem_[wordAddr];
    *status = ecc_.check(wordAddr, &mem_[wordAddr]);
    return *status == EccStatus::Uncorrectable ? observed
                                               : mem_[wordAddr];
}

void
Dram::write(uint64_t wordAddr, Word w)
{
    if (wordAddr >= mem_.size())
        panic("Dram::write: address %llu out of range",
              static_cast<unsigned long long>(wordAddr));
    if (!ecc_.empty())
        ecc_.onWrite(wordAddr);
    mem_[wordAddr] = w;
}

void
Dram::fill(uint64_t wordAddr, const std::vector<Word> &data)
{
    if (wordAddr + data.size() > mem_.size())
        panic("Dram::fill: range out of bounds");
    ecc_.onWriteRange(wordAddr, data.size());
    std::copy(data.begin(), data.end(), mem_.begin() + wordAddr);
}

std::vector<Word>
Dram::dump(uint64_t wordAddr, uint64_t n) const
{
    if (wordAddr + n > mem_.size())
        panic("Dram::dump: range out of bounds");
    if (!ecc_.empty()) {
        // Route through the decoder so validation sees corrected data.
        std::vector<Word> out;
        out.reserve(n);
        for (uint64_t i = 0; i < n; i++)
            out.push_back(read(wordAddr + i));
        return out;
    }
    return std::vector<Word>(mem_.begin() + wordAddr,
                             mem_.begin() + wordAddr + n);
}

void
Dram::injectBitFlips(uint64_t wordAddr, Word mask, bool transient)
{
    if (wordAddr >= mem_.size())
        panic("Dram::injectBitFlips: address %llu out of range",
              static_cast<unsigned long long>(wordAddr));
    ecc_.inject(wordAddr, mask, transient, &mem_[wordAddr]);
}

uint64_t
Dram::scrubEcc()
{
    if (ecc_.empty())
        return 0;
    return ecc_.scrub([this](uint64_t addr) { return &mem_[addr]; });
}

void
Dram::tick()
{
    now_++;
    tokens_ = std::min(tokens_ + cfg_.wordsPerCycle, cfg_.burstTokens);
}

void
Dram::skipCycles(uint64_t n)
{
    now_ += n;
    // Replay the per-cycle accrual so the float state matches dense
    // ticking bit for bit; the bucket saturates within
    // ceil(burstTokens / wordsPerCycle) iterations (~7 with Table 3
    // parameters), after which each tick is a no-op.
    while (n > 0 && tokens_ < cfg_.burstTokens) {
        tokens_ = std::min(tokens_ + cfg_.wordsPerCycle,
                           cfg_.burstTokens);
        n--;
    }
}

bool
Dram::tryConsumeExact(uint32_t words, bool sequential)
{
    return tryConsumeExactCost(words,
        sequential ? 1.0 : cfg_.randomCostFactor);
}

bool
Dram::tryConsumeExactCost(uint32_t words, double costFactor)
{
    double cost = costFactor * static_cast<double>(words);
    if (tokens_ < cost)
        return false;
    tokens_ -= cost;
    wordsTransferred_ += words;
    // Near-streaming efficiency (open-row hits) counts as sequential.
    if (costFactor <= 1.3)
        seqWords_ += words;
    else
        randomWords_ += words;
    return true;
}

bool
Dram::tryAccessWord(uint64_t addr)
{
    if (!cfg_.rowBufferModel)
        panic("Dram::tryAccessWord without rowBufferModel");
    auto row = static_cast<int64_t>(addr / cfg_.rowWords);
    uint32_t bank = static_cast<uint32_t>(row % cfg_.banks);
    bool hit = openRow_[bank] == row;
    double cost = hit ? cfg_.rowHitCost : cfg_.rowMissCost;
    if (tokens_ < cost)
        return false;
    tokens_ -= cost;
    openRow_[bank] = row;
    wordsTransferred_++;
    if (hit) {
        rowHits_++;
        seqWords_++;
    } else {
        rowMisses_++;
        randomWords_++;
        if (trc_->on())
            trc_->instant(traceCh_, "row_miss", now_, bank);
    }
    return true;
}

uint32_t
Dram::requestWords(uint32_t want, bool sequential)
{
    return requestWordsCost(want,
        sequential ? 1.0 : cfg_.randomCostFactor);
}

uint32_t
Dram::requestWordsCost(uint32_t want, double costFactor)
{
    auto n = static_cast<uint32_t>(tokens_ / costFactor);
    n = std::min(n, want);
    tokens_ -= static_cast<double>(n) * costFactor;
    wordsTransferred_ += n;
    if (costFactor <= 1.3)
        seqWords_ += n;
    else
        randomWords_ += n;
    return n;
}

void
Dram::saveState(SnapshotWriter &w) const
{
    w.u64(mem_.size());
    // Run-length encode storage: most of DRAM is untouched zeros.
    uint64_t nruns = 0;
    for (size_t i = 0; i < mem_.size(); nruns++) {
        size_t j = i + 1;
        while (j < mem_.size() && mem_[j] == mem_[i])
            j++;
        i = j;
    }
    w.u64(nruns);
    for (size_t i = 0; i < mem_.size();) {
        size_t j = i + 1;
        while (j < mem_.size() && mem_[j] == mem_[i])
            j++;
        w.u64(j - i);
        w.u32(mem_[i]);
        i = j;
    }
    ecc_.saveState(w);
    w.u64(openRow_.size());
    for (int64_t row : openRow_)
        w.i64(row);
    w.f64(tokens_);
    w.u64(now_);
    w.u64(rowHits_);
    w.u64(rowMisses_);
    w.u64(wordsTransferred_);
    w.u64(seqWords_);
    w.u64(randomWords_);
}

bool
Dram::loadState(SnapshotReader &r)
{
    uint64_t nwords = 0, nruns = 0;
    if (!r.u64(nwords) || !r.len(nruns, 12))
        return false;
    if (nwords != mem_.size()) {
        r.markFailed();
        return false;
    }
    uint64_t at = 0;
    for (uint64_t run = 0; run < nruns; run++) {
        uint64_t count = 0;
        Word value = 0;
        if (!r.u64(count) || !r.u32(value))
            return false;
        if (count == 0 || count > mem_.size() - at) {
            r.markFailed();
            return false;
        }
        std::fill(mem_.begin() + static_cast<ptrdiff_t>(at),
                  mem_.begin() + static_cast<ptrdiff_t>(at + count),
                  value);
        at += count;
    }
    if (at != mem_.size()) {
        r.markFailed();
        return false;
    }
    if (!ecc_.loadState(r))
        return false;
    uint64_t nbanks = 0;
    if (!r.len(nbanks, 8) || nbanks != openRow_.size())
        return false;
    for (int64_t &row : openRow_)
        if (!r.i64(row))
            return false;
    return r.f64(tokens_) && r.u64(now_) && r.u64(rowHits_) &&
        r.u64(rowMisses_) && r.u64(wordsTransferred_) &&
        r.u64(seqWords_) && r.u64(randomWords_);
}

} // namespace isrf
