#include "mem/memory_system.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

namespace {

const char *
memOpName(MemOpKind kind)
{
    switch (kind) {
      case MemOpKind::Load: return "load";
      case MemOpKind::Store: return "store";
      case MemOpKind::Gather: return "gather";
      case MemOpKind::Scatter: return "scatter";
    }
    return "?";
}

} // namespace

void
MemorySystem::init(const MemSystemConfig &cfg, const DramConfig &dramCfg,
                   const CacheConfig &cacheCfg, Srf *srf,
                   Tracer *tracer)
{
    cfg_ = cfg;
    srf_ = srf;
    trc_ = tracer ? tracer : &Tracer::instance();
    dram_.init(dramCfg, trc_);
    cache_.init(cacheCfg);
    units_.assign(cfg.units, StreamMemUnit());
    unitOpId_.assign(cfg.units, 0);
    for (auto &u : units_) {
        u.init(&dram_, cfg.cacheEnabled ? &cache_ : nullptr, srf,
               cfg.stagingWords, trc_);
    }
    queue_.clear();
    nextId_ = 1;
    lastCompletion_ = kNoEvent;
    stats_.resetAll();
    traceCh_ = trc_->channel("mem");
    queueDepthHist_ = &stats_.histogram("queue_depth", 0,
        static_cast<double>(cfg.units + 16), cfg.units + 16);
}

MemOpId
MemorySystem::submit(MemOp op)
{
    if (op.srfSlot == kNoSlot)
        panic("MemorySystem::submit: op without SRF slot");
    if (!cfg_.cacheEnabled)
        op.cached = false;
    MemOpId id = nextId_++;
    queue_.push_back({id, std::move(op)});
    stats_.counter("ops_submitted").inc();
    return id;
}

bool
MemorySystem::done(MemOpId id) const
{
    if (id <= 0 || id >= nextId_)
        return false;
    for (size_t u = 0; u < units_.size(); u++)
        if (units_[u].busy() && unitOpId_[u] == id)
            return false;
    for (const auto &p : queue_)
        if (p.id == id)
            return false;
    return true;
}

bool
MemorySystem::idle() const
{
    if (!queue_.empty())
        return false;
    for (const auto &u : units_)
        if (u.busy())
            return false;
    return true;
}

size_t
MemorySystem::inFlight() const
{
    size_t n = queue_.size();
    for (const auto &u : units_)
        if (u.busy())
            n++;
    return n;
}

void
MemorySystem::tick(Cycle now)
{
    dram_.tick();
    MemBandwidth bw;
    bw.cacheTokens = cfg_.cacheEnabled ? cache_.config().wordsPerCycle : 0;

    size_t busyBefore = inFlight();
    if (busyBefore > 0)
        queueDepthHist_->sample(static_cast<double>(busyBefore));

    // Dispatch queued ops to free units.
    for (size_t u = 0; u < units_.size() && !queue_.empty(); u++) {
        if (units_[u].busy())
            continue;
        units_[u].start(queue_.front().op, now);
        unitOpId_[u] = queue_.front().id;
        if (trc_->on()) {
            trc_->instant(traceCh_,
                memOpName(queue_.front().op.kind), now,
                static_cast<uint64_t>(queue_.front().id));
        }
        queue_.pop_front();
        stats_.counter("ops_started").inc();
    }

    for (size_t u = 0; u < units_.size(); u++) {
        bool wasBusy = units_[u].busy();
        units_[u].tick(now, bw);
        if (wasBusy && !units_[u].busy()) {
            lastCompletion_ = now;
            stats_.counter("ops_completed").inc();
            if (units_[u].opPoisoned())
                stats_.counter("ops_poisoned").inc();
            if (trc_->on()) {
                trc_->instant(traceCh_, "op_done", now,
                    static_cast<uint64_t>(unitOpId_[u]));
            }
        }
    }
}

Cycle
MemorySystem::nextEvent(Cycle now) const
{
    // An op just completed: the driver (stream program) may react next
    // cycle by submitting dependents — stay dense.
    if (lastCompletion_ == now)
        return now + 1;
    // A queued op dispatches as soon as a unit frees; with a free unit
    // it dispatches next cycle.
    if (!queue_.empty()) {
        for (const auto &u : units_)
            if (!u.busy())
                return now + 1;
    }
    Cycle wake = kNoEvent;
    for (const auto &u : units_)
        wake = std::min(wake, u.nextEvent(now));
    // Busy units also imply a queue-depth histogram sample every cycle,
    // but that is a bulk-creditable side effect (skipCycles), so it
    // does not force density here.
    return wake;
}

void
MemorySystem::skipCycles(Cycle from, Cycle to)
{
    uint64_t n = to - from;
    dram_.skipCycles(n);
    // Every dense tick with in-flight work samples the depth once; the
    // depth cannot change across quiescent cycles (no dispatch, no
    // completion), so one weighted sample reproduces n dense samples.
    size_t depth = inFlight();
    if (depth > 0)
        queueDepthHist_->sample(static_cast<double>(depth), n);
    for (auto &u : units_)
        u.skipCycles(from, to);
}

void
MemorySystem::setFaultConfig(const FaultConfig &fc)
{
    for (auto &u : units_)
        u.setFaultConfig(fc);
}

bool
MemorySystem::injectDrop()
{
    for (auto &u : units_)
        if (u.injectDrop())
            return true;
    return false;
}

void
MemorySystem::injectDelay(uint32_t cycles)
{
    for (auto &u : units_)
        if (u.busy())
            u.injectDelay(cycles);
}

uint64_t
MemorySystem::retries() const
{
    uint64_t n = 0;
    for (const auto &u : units_)
        n += u.retries();
    return n;
}

uint64_t
MemorySystem::poisonedWords() const
{
    uint64_t n = 0;
    for (const auto &u : units_)
        n += u.poisonedWords();
    return n;
}

uint64_t
MemorySystem::droppedWords() const
{
    uint64_t n = 0;
    for (const auto &u : units_)
        n += u.droppedWords();
    return n;
}

void
MemorySystem::syncFaultStats()
{
    stats_.counter("retries").set(retries());
    stats_.counter("poisoned_words").set(poisonedWords());
    stats_.counter("dropped_words").set(droppedWords());
    stats_.counter("ecc_corrected").set(dram_.ecc().corrected());
    stats_.counter("ecc_detected_uncorrectable")
        .set(dram_.ecc().uncorrectable());
    stats_.counter("faults_injected").set(dram_.ecc().faultsInjected());
}

void
MemorySystem::saveState(SnapshotWriter &w) const
{
    dram_.saveState(w);
    cache_.saveState(w);
    w.u64(units_.size());
    for (const StreamMemUnit &u : units_)
        u.saveState(w);
    for (MemOpId id : unitOpId_)
        w.i64(id);
    w.u64(queue_.size());
    for (const Pending &p : queue_) {
        w.i64(p.id);
        saveMemOp(w, p.op);
    }
    w.i64(nextId_);
    w.u64(lastCompletion_);
    stats_.saveState(w);
}

bool
MemorySystem::loadState(SnapshotReader &r)
{
    if (!dram_.loadState(r) || !cache_.loadState(r))
        return false;
    uint64_t nunits = 0;
    if (!r.len(nunits, 1) || nunits != units_.size())
        return false;
    for (StreamMemUnit &u : units_)
        if (!u.loadState(r))
            return false;
    for (MemOpId &id : unitOpId_)
        if (!r.i64(id))
            return false;
    uint64_t nq = 0;
    if (!r.len(nq, 9))
        return false;
    queue_.clear();
    for (uint64_t i = 0; i < nq; i++) {
        Pending p;
        if (!r.i64(p.id) || !loadMemOp(r, p.op))
            return false;
        queue_.push_back(std::move(p));
    }
    return r.i64(nextId_) && r.u64(lastCompletion_) &&
        stats_.loadState(r);
}

} // namespace isrf
