/**
 * @file
 * Compute clusters: per-lane execution of software-pipelined kernel
 * schedules against the SRF and the inter-cluster network.
 *
 * The model is decoupled functional/timing: workloads precompute each
 * kernel's functional effect as *traces* (output stream words, indexed
 * addresses, indexed write data), and the cluster replays those traces
 * under the real timing constraints — initiation interval from the
 * modulo scheduler, stream-buffer occupancy, address-FIFO space,
 * indexed data return latency (including sub-array and network
 * conflicts), and inter-cluster network occupancy. Functional results
 * are thereby deposited into SRF storage exactly as the hardware
 * would, while timing emerges from the microarchitecture models.
 */
#ifndef ISRF_CLUSTER_CLUSTER_H
#define ISRF_CLUSTER_CLUSTER_H

#include <deque>
#include <vector>

#include "kernel/scheduler.h"
#include "net/crossbar.h"
#include "srf/srf.h"

namespace isrf {

class Tracer;

/** One indexed write in a trace: target record + data words. */
struct IdxWriteTraceEntry
{
    uint32_t recordIndex;
    Word data[4] = {0, 0, 0, 0};
};

/** Per-lane functional traces for one kernel invocation. */
struct LaneTrace
{
    /** Iterations this lane executes. */
    uint64_t iterations = 0;
    /** [kernelSlot] -> sequential output words, pushed in order. */
    std::vector<std::vector<Word>> seqWrites;
    /** [kernelSlot] -> indexed read record indices, issued in order. */
    std::vector<std::vector<uint32_t>> idxReads;
    /** [kernelSlot] -> indexed writes, issued in order. */
    std::vector<std::vector<IdxWriteTraceEntry>> idxWrites;
};

/**
 * A fully bound kernel invocation: graph + schedule + SRF slots +
 * per-lane traces. Built by the stream-program runtime.
 */
struct KernelInvocation
{
    const KernelGraph *graph = nullptr;
    KernelSchedule sched;
    /** kernelSlot -> SRF slot id. */
    std::vector<SlotId> slots;
    std::vector<LaneTrace> laneTraces;  ///< one per lane
    /** Fixed dispatch overhead (microcode load etc.), cycles. */
    uint32_t startOverhead = 64;

    // ---- derived per-kernel-slot metadata (computed by finalize()) ----
    std::vector<uint32_t> seqReadsPerIter;
    std::vector<uint32_t> seqWritesPerIter;
    std::vector<uint32_t> idxReadsPerIter;
    std::vector<uint32_t> idxWritesPerIter;
    /** Schedule offsets (cycle within iteration) of IdxRead ops/slot. */
    std::vector<std::vector<uint32_t>> idxReadOffsets;
    uint32_t commSendsPerIter = 0;

    /** Compute derived metadata; call once after filling the fields. */
    void finalize();
};

/** Why a cluster failed to make progress in a cycle. */
enum class StallCause : uint8_t { None, SrfData, SrfBuffer };

/** How one lane-cycle was spent (Figure 12 categories). */
enum class CycleCat : uint8_t { Idle, Loop, Overhead, SrfStall };

/** Per-lane cycle accounting matching Figure 12's categories. */
struct LaneCycles
{
    uint64_t loopBody = 0;
    uint64_t overhead = 0;   ///< fill/drain, dispatch, load imbalance
    uint64_t srfStall = 0;
    uint64_t idle = 0;       ///< no kernel bound to the cluster

    uint64_t
    total() const
    {
        return loopBody + overhead + srfStall + idle;
    }
    void
    reset()
    {
        loopBody = overhead = srfStall = idle = 0;
    }
};

/**
 * One compute cluster (one lane).
 *
 * Lifecycle per kernel: bind() -> tick() until done() -> unbind by the
 * machine. Clusters must tick before Srf::endCycle() each cycle so
 * their issued addresses and network claims are visible to arbitration.
 */
class Cluster
{
  public:
    void init(uint32_t lane, Srf *srf, Crossbar *dataNet,
              Tracer *tracer = nullptr);

    /** Attach this lane to a kernel invocation starting at `now`. */
    void bind(const KernelInvocation *inv, Cycle now);

    /** Detach after done(). */
    void unbind();

    bool bound() const { return inv_ != nullptr; }

    /** All iterations issued, all indexed data consumed, pipe drained. */
    bool done(Cycle now) const;

    void tick(Cycle now);

    /**
     * Earliest future cycle this cluster's tick can do anything but
     * burn a predictable stall/idle cycle, queried after tick(now) in
     * skip mode. Unbound lanes report kNoEvent; dispatch overhead and
     * the initiation-interval wait report their release cycle; any
     * in-flight stream work (pending queues, outstanding indexed data,
     * comm sends) pins the lane dense at now + 1.
     */
    Cycle nextEvent(Cycle now) const;

    /**
     * Bulk-credit skipped cycles [from, to) to the category a dense
     * tick would have charged each of them (constant across the window
     * by construction of nextEvent()). @return that category so the
     * machine can mirror it into the Figure 12 breakdown.
     */
    CycleCat skipCycles(Cycle from, Cycle to);

    uint32_t lane() const { return lane_; }
    const LaneCycles &cycles() const { return cycles_; }
    void resetCycles() { cycles_.reset(); }

    /** Iterations issued so far (progress/debug). */
    uint64_t itersIssued() const { return itersIssued_; }

    /** How this lane spent the most recent cycle. */
    CycleCat lastCat() const { return lastCat_; }

    // ------------------------------------------------------------------
    // Snapshot (util/snapshot.h, DESIGN.md §17)
    // ------------------------------------------------------------------

    /**
     * Point this lane back at a deterministically rebuilt invocation
     * (or nullptr for an unbound lane) WITHOUT resetting progress —
     * snapshot restore only; loadState() then refills the cursors and
     * pending queues. Normal kernel launches go through bind().
     */
    void restoreBind(const KernelInvocation *inv) { inv_ = inv; }

    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    bool resourcesReady(Cycle now) const;
    void issueIteration(Cycle now);
    /** Drain due indexed data; false if a due record is not ready. */
    bool consumeDueData(Cycle now);

    uint32_t lane_ = 0;
    Srf *srf_ = nullptr;
    Crossbar *dataNet_ = nullptr;

    const KernelInvocation *inv_ = nullptr;
    Cycle bindCycle_ = 0;
    uint64_t itersIssued_ = 0;
    Cycle nextIssue_ = 0;
    Cycle lastIssue_ = 0;
    uint32_t pendingCommSends_ = 0;
    /** [kernelSlot] -> need-times of outstanding indexed reads. */
    std::vector<std::deque<Cycle>> dataNeeds_;
    /** Trace cursors. */
    std::vector<size_t> seqWriteCur_;
    std::vector<size_t> idxReadCur_;
    std::vector<size_t> idxWriteCur_;
    /**
     * Per-iteration stream work can exceed buffer/FIFO capacity (e.g.
     * 16 words against an 8-word buffer); real schedules spread the
     * accesses across the loop body. These queues hold the spill-over,
     * drained opportunistically each cycle; the next iteration cannot
     * issue until they are empty.
     */
    std::vector<std::deque<Word>> pendingOut_;     ///< seq writes
    std::vector<uint32_t> pendingIn_;              ///< seq reads (count)
    std::vector<std::deque<uint32_t>> pendingIdxR_; ///< idx read records
    std::vector<std::deque<IdxWriteTraceEntry>> pendingIdxW_;

    /** Drain pending stream work; true if all queues are empty after. */
    bool drainPending(Cycle now);

    LaneCycles cycles_;
    CycleCat lastCat_ = CycleCat::Idle;

    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t traceCh_ = 0;
    bool doneReported_ = false;  ///< "lane_done" emitted for this bind
};

} // namespace isrf

#endif // ISRF_CLUSTER_CLUSTER_H
