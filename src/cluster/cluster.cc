#include "cluster/cluster.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

void
KernelInvocation::finalize()
{
    if (!graph)
        panic("KernelInvocation: no graph");
    size_t nSlots = graph->streamSlots().size();
    if (slots.size() != nSlots)
        panic("KernelInvocation(%s): %zu slot bindings for %zu slots",
              graph->name().c_str(), slots.size(), nSlots);
    seqReadsPerIter.assign(nSlots, 0);
    seqWritesPerIter.assign(nSlots, 0);
    idxReadsPerIter.assign(nSlots, 0);
    idxWritesPerIter.assign(nSlots, 0);
    idxReadOffsets.assign(nSlots, {});
    commSendsPerIter = 0;
    for (NodeId id = 0; id < graph->nodeCount(); id++) {
        const Node &n = graph->node(id);
        switch (n.op) {
          case Opcode::SeqRead:
            seqReadsPerIter[n.streamSlot]++;
            break;
          case Opcode::SeqWrite:
            seqWritesPerIter[n.streamSlot]++;
            break;
          case Opcode::IdxRead:
            idxReadsPerIter[n.streamSlot]++;
            idxReadOffsets[n.streamSlot].push_back(
                sched.opCycle.empty() ? sched.separation
                                      : sched.opCycle[id]);
            break;
          case Opcode::IdxWrite:
            idxWritesPerIter[n.streamSlot]++;
            break;
          case Opcode::CommSend:
            commSendsPerIter++;
            break;
          default:
            break;
        }
    }
    for (auto &offsets : idxReadOffsets)
        std::sort(offsets.begin(), offsets.end());
    if (laneTraces.empty())
        panic("KernelInvocation(%s): no lane traces",
              graph->name().c_str());
    for (auto &t : laneTraces) {
        t.seqWrites.resize(nSlots);
        t.idxReads.resize(nSlots);
        t.idxWrites.resize(nSlots);
    }
}

void
Cluster::init(uint32_t lane, Srf *srf, Crossbar *dataNet,
              Tracer *tracer)
{
    trc_ = tracer ? tracer : &Tracer::instance();
    lane_ = lane;
    srf_ = srf;
    dataNet_ = dataNet;
    traceCh_ = trc_->channel("cluster");
}

void
Cluster::bind(const KernelInvocation *inv, Cycle now)
{
    if (inv_)
        panic("Cluster[%u]: bind while bound", lane_);
    inv_ = inv;
    bindCycle_ = now;
    itersIssued_ = 0;
    nextIssue_ = now + inv->startOverhead;
    lastIssue_ = now;
    pendingCommSends_ = 0;
    size_t nSlots = inv->graph->streamSlots().size();
    dataNeeds_.assign(nSlots, {});
    seqWriteCur_.assign(nSlots, 0);
    idxReadCur_.assign(nSlots, 0);
    idxWriteCur_.assign(nSlots, 0);
    pendingOut_.assign(nSlots, {});
    pendingIn_.assign(nSlots, 0);
    pendingIdxR_.assign(nSlots, {});
    pendingIdxW_.assign(nSlots, {});
    doneReported_ = false;
    if (trc_->on())
        trc_->instant(traceCh_, "bind", now, lane_);
}

void
Cluster::unbind()
{
    inv_ = nullptr;
}

bool
Cluster::done(Cycle now) const
{
    if (!inv_)
        return true;
    uint64_t total = inv_->laneTraces[lane_].iterations;
    if (itersIssued_ < total)
        return false;
    for (const auto &q : dataNeeds_)
        if (!q.empty())
            return false;
    for (const auto &q : pendingOut_)
        if (!q.empty())
            return false;
    for (const auto &q : pendingIdxR_)
        if (!q.empty())
            return false;
    for (const auto &q : pendingIdxW_)
        if (!q.empty())
            return false;
    if (pendingCommSends_ > 0)
        return false;
    if (total > 0 && now < lastIssue_ + inv_->sched.length)
        return false;
    return true;
}

bool
Cluster::consumeDueData(Cycle now)
{
    size_t nSlots = dataNeeds_.size();
    for (size_t s = 0; s < nSlots; s++) {
        auto &q = dataNeeds_[s];
        while (!q.empty() && q.front() <= now) {
            SlotId slot = inv_->slots[s];
            if (!srf_->idxDataReady(lane_, slot, now))
                return false;
            Word tmp[4];
            srf_->idxDataPop(lane_, slot, tmp);
            q.pop_front();
        }
    }
    return true;
}

bool
Cluster::drainPending(Cycle now)
{
    bool allEmpty = true;
    size_t nSlots = inv_->slots.size();
    for (size_t s = 0; s < nSlots; s++) {
        SlotId slot = inv_->slots[s];
        // Sequential reads: consume buffered words; if the stream has
        // run dry in storage, the remaining reads are a short tail and
        // are dropped (final partial iteration).
        while (pendingIn_[s] > 0 && srf_->seqCanRead(lane_, slot)) {
            srf_->seqRead(lane_, slot);
            pendingIn_[s]--;
        }
        if (pendingIn_[s] > 0 &&
                srf_->seqWordsRemaining(lane_, slot) == 0) {
            pendingIn_[s] = 0;
        }
        // Sequential writes.
        while (!pendingOut_[s].empty() && srf_->seqCanWrite(lane_, slot)) {
            srf_->seqWrite(lane_, slot, pendingOut_[s].front());
            pendingOut_[s].pop_front();
        }
        // Indexed reads: push addresses into the FIFO as space frees;
        // the data-need clock starts at the FIFO issue.
        while (!pendingIdxR_[s].empty() &&
               srf_->idxCanIssue(lane_, slot)) {
            uint32_t rec = pendingIdxR_[s].front();
            if (!srf_->idxIssueRead(lane_, slot, rec))
                break;
            pendingIdxR_[s].pop_front();
            uint32_t k = static_cast<uint32_t>(dataNeeds_[s].size());
            uint32_t off = inv_->idxReadOffsets[s].empty()
                ? inv_->sched.separation
                : inv_->idxReadOffsets[s][k %
                      inv_->idxReadOffsets[s].size()];
            dataNeeds_[s].push_back(now + off);
        }
        // Indexed writes.
        while (!pendingIdxW_[s].empty() &&
               srf_->idxCanIssue(lane_, slot)) {
            const IdxWriteTraceEntry &e = pendingIdxW_[s].front();
            if (!srf_->idxIssueWrite(lane_, slot, e.recordIndex, e.data))
                break;
            pendingIdxW_[s].pop_front();
        }
        if (pendingIn_[s] > 0 || !pendingOut_[s].empty() ||
                !pendingIdxR_[s].empty() || !pendingIdxW_[s].empty()) {
            allEmpty = false;
        }
    }
    return allEmpty;
}

bool
Cluster::resourcesReady(Cycle now) const
{
    // All of the previous iteration's stream work must have drained:
    // a VLIW schedule cannot roll to the next iteration while its
    // buffer accesses are still backed up.
    (void)now;
    size_t nSlots = inv_->slots.size();
    for (size_t s = 0; s < nSlots; s++) {
        if (pendingIn_[s] > 0 || !pendingOut_[s].empty() ||
                !pendingIdxR_[s].empty() || !pendingIdxW_[s].empty()) {
            return false;
        }
    }
    return true;
}

void
Cluster::issueIteration(Cycle now)
{
    LaneTrace &tr = const_cast<LaneTrace &>(inv_->laneTraces[lane_]);
    size_t nSlots = inv_->slots.size();
    for (size_t s = 0; s < nSlots; s++) {
        pendingIn_[s] += inv_->seqReadsPerIter[s];
        for (uint32_t w = 0; w < inv_->seqWritesPerIter[s]; w++) {
            if (seqWriteCur_[s] < tr.seqWrites[s].size())
                pendingOut_[s].push_back(
                    tr.seqWrites[s][seqWriteCur_[s]++]);
        }
        for (uint32_t r = 0; r < inv_->idxReadsPerIter[s]; r++) {
            if (idxReadCur_[s] >= tr.idxReads[s].size())
                break;
            pendingIdxR_[s].push_back(tr.idxReads[s][idxReadCur_[s]++]);
        }
        for (uint32_t w = 0; w < inv_->idxWritesPerIter[s]; w++) {
            if (idxWriteCur_[s] >= tr.idxWrites[s].size())
                break;
            pendingIdxW_[s].push_back(
                tr.idxWrites[s][idxWriteCur_[s]++]);
        }
    }
    pendingCommSends_ += inv_->commSendsPerIter;
    itersIssued_++;
    lastIssue_ = now;
    nextIssue_ = now + inv_->sched.ii;
    drainPending(now);
}

Cycle
Cluster::nextEvent(Cycle now) const
{
    if (!inv_)
        return kNoEvent;
    // Dispatch overhead: every cycle before bindCycle_ + startOverhead
    // is an unconditional Overhead cycle.
    Cycle ovhEnd = bindCycle_ + inv_->startOverhead;
    if (now + 1 < ovhEnd)
        return ovhEnd;
    // In-flight stream work negotiates with the SRF/network every
    // cycle — cannot be skipped over.
    if (pendingCommSends_ > 0)
        return now + 1;
    for (const auto &q : dataNeeds_)
        if (!q.empty())
            return now + 1;
    for (size_t s = 0; s < pendingIn_.size(); s++) {
        if (pendingIn_[s] > 0 || !pendingOut_[s].empty() ||
                !pendingIdxR_[s].empty() || !pendingIdxW_[s].empty()) {
            return now + 1;
        }
    }
    uint64_t total = inv_->laneTraces[lane_].iterations;
    if (itersIssued_ >= total) {
        // Software-pipeline drain: the next observable transition is
        // the "lane_done" report, then done() turning true at
        // lastIssue_ + schedule length.
        if (!doneReported_)
            return now + 1;
        Cycle drainEnd = lastIssue_ + inv_->sched.length;
        if (total > 0 && now + 1 < drainEnd)
            return drainEnd;
        // done(); still bound until the machine unbinds (dense there).
        return now + 1;
    }
    // Initiation-interval wait: nothing happens until nextIssue_.
    if (nextIssue_ > now + 1)
        return nextIssue_;
    return now + 1;
}

CycleCat
Cluster::skipCycles(Cycle from, Cycle to)
{
    uint64_t n = to - from;
    CycleCat cat;
    if (!inv_) {
        cat = CycleCat::Idle;
        cycles_.idle += n;
    } else if (from < bindCycle_ + inv_->startOverhead ||
               itersIssued_ >= inv_->laneTraces[lane_].iterations) {
        // Dispatch overhead or pipeline drain, both Overhead — and,
        // per nextEvent(), uniform across the whole window.
        cat = CycleCat::Overhead;
        cycles_.overhead += n;
    } else {
        // Initiation-interval wait: dense ticks charge these as loop
        // body once the pipeline reaches steady state.
        bool steady = itersIssued_ + 1 >= inv_->sched.stages() &&
            inv_->laneTraces[lane_].iterations >= inv_->sched.stages();
        cat = steady ? CycleCat::Loop : CycleCat::Overhead;
        if (steady)
            cycles_.loopBody += n;
        else
            cycles_.overhead += n;
    }
    lastCat_ = cat;
    return cat;
}

void
Cluster::saveState(SnapshotWriter &w) const
{
    w.b(inv_ != nullptr);
    w.u64(bindCycle_);
    w.u64(itersIssued_);
    w.u64(nextIssue_);
    w.u64(lastIssue_);
    w.u32(pendingCommSends_);
    w.u64(dataNeeds_.size());
    for (const auto &q : dataNeeds_) {
        w.u64(q.size());
        for (Cycle c : q)
            w.u64(c);
    }
    for (size_t v : seqWriteCur_)
        w.u64(v);
    for (size_t v : idxReadCur_)
        w.u64(v);
    for (size_t v : idxWriteCur_)
        w.u64(v);
    for (const auto &q : pendingOut_) {
        w.u64(q.size());
        for (Word x : q)
            w.u32(x);
    }
    for (uint32_t v : pendingIn_)
        w.u32(v);
    for (const auto &q : pendingIdxR_) {
        w.u64(q.size());
        for (uint32_t x : q)
            w.u32(x);
    }
    for (const auto &q : pendingIdxW_) {
        w.u64(q.size());
        for (const IdxWriteTraceEntry &e : q) {
            w.u32(e.recordIndex);
            for (Word d : e.data)
                w.u32(d);
        }
    }
    w.u64(cycles_.loopBody);
    w.u64(cycles_.overhead);
    w.u64(cycles_.srfStall);
    w.u64(cycles_.idle);
    w.u8(static_cast<uint8_t>(lastCat_));
    w.b(doneReported_);
}

bool
Cluster::loadState(SnapshotReader &r)
{
    bool bound = false;
    if (!r.b(bound))
        return false;
    // The machine restoreBind()s us to the rebuilt invocation (or to
    // nullptr) before handing over the reader; a mismatch means the
    // program state and machine state disagree — reject, don't guess.
    if (bound != (inv_ != nullptr)) {
        r.markFailed();
        return false;
    }
    uint64_t nslots = 0;
    if (!r.u64(bindCycle_) || !r.u64(itersIssued_) ||
        !r.u64(nextIssue_) || !r.u64(lastIssue_) ||
        !r.u32(pendingCommSends_) || !r.len(nslots, 1))
        return false;
    if (inv_ && nslots != inv_->slots.size()) {
        r.markFailed();
        return false;
    }
    dataNeeds_.assign(nslots, {});
    for (auto &q : dataNeeds_) {
        uint64_t nq = 0;
        if (!r.len(nq, 8))
            return false;
        for (uint64_t i = 0; i < nq; i++) {
            Cycle c = 0;
            if (!r.u64(c))
                return false;
            q.push_back(c);
        }
    }
    seqWriteCur_.assign(nslots, 0);
    idxReadCur_.assign(nslots, 0);
    idxWriteCur_.assign(nslots, 0);
    for (size_t &v : seqWriteCur_) {
        uint64_t x = 0;
        if (!r.u64(x))
            return false;
        v = static_cast<size_t>(x);
    }
    for (size_t &v : idxReadCur_) {
        uint64_t x = 0;
        if (!r.u64(x))
            return false;
        v = static_cast<size_t>(x);
    }
    for (size_t &v : idxWriteCur_) {
        uint64_t x = 0;
        if (!r.u64(x))
            return false;
        v = static_cast<size_t>(x);
    }
    pendingOut_.assign(nslots, {});
    for (auto &q : pendingOut_) {
        uint64_t nq = 0;
        if (!r.len(nq, 4))
            return false;
        for (uint64_t i = 0; i < nq; i++) {
            Word x = 0;
            if (!r.u32(x))
                return false;
            q.push_back(x);
        }
    }
    pendingIn_.assign(nslots, 0);
    for (uint32_t &v : pendingIn_)
        if (!r.u32(v))
            return false;
    pendingIdxR_.assign(nslots, {});
    for (auto &q : pendingIdxR_) {
        uint64_t nq = 0;
        if (!r.len(nq, 4))
            return false;
        for (uint64_t i = 0; i < nq; i++) {
            uint32_t x = 0;
            if (!r.u32(x))
                return false;
            q.push_back(x);
        }
    }
    pendingIdxW_.assign(nslots, {});
    for (auto &q : pendingIdxW_) {
        uint64_t nq = 0;
        if (!r.len(nq, 20))
            return false;
        for (uint64_t i = 0; i < nq; i++) {
            IdxWriteTraceEntry e;
            if (!r.u32(e.recordIndex))
                return false;
            for (Word &d : e.data)
                if (!r.u32(d))
                    return false;
            q.push_back(e);
        }
    }
    uint8_t cat = 0;
    if (!r.u64(cycles_.loopBody) || !r.u64(cycles_.overhead) ||
        !r.u64(cycles_.srfStall) || !r.u64(cycles_.idle) ||
        !r.u8(cat) || !r.b(doneReported_))
        return false;
    lastCat_ = static_cast<CycleCat>(cat);
    return true;
}

void
Cluster::tick(Cycle now)
{
    if (!inv_) {
        cycles_.idle++;
        lastCat_ = CycleCat::Idle;
        return;
    }
    // Kernel dispatch overhead (microcode load, stream descriptor setup).
    if (now < bindCycle_ + inv_->startOverhead) {
        cycles_.overhead++;
        lastCat_ = CycleCat::Overhead;
        return;
    }
    // Drain pending statically scheduled communications.
    if (pendingCommSends_ > 0 && dataNet_) {
        if (dataNet_->claimSource(lane_))
            pendingCommSends_--;
    }
    drainPending(now);
    if (!consumeDueData(now)) {
        cycles_.srfStall++;
        lastCat_ = CycleCat::SrfStall;
        return;
    }
    uint64_t total = inv_->laneTraces[lane_].iterations;
    if (itersIssued_ >= total) {
        if (!doneReported_) {
            doneReported_ = true;
            if (trc_->on())
                trc_->instant(traceCh_, "lane_done", now,
                                           lane_);
        }
        // Pipe drain / waiting for other lanes: kernel overhead
        // (software-pipeline drain + load imbalance).
        cycles_.overhead++;
        lastCat_ = CycleCat::Overhead;
        return;
    }
    bool steady = itersIssued_ + 1 >= inv_->sched.stages() &&
        total >= inv_->sched.stages();
    if (now < nextIssue_) {
        if (steady) {
            cycles_.loopBody++;
            lastCat_ = CycleCat::Loop;
        } else {
            cycles_.overhead++;
            lastCat_ = CycleCat::Overhead;
        }
        return;
    }
    if (!resourcesReady(now)) {
        cycles_.srfStall++;
        lastCat_ = CycleCat::SrfStall;
        return;
    }
    issueIteration(now);
    if (steady) {
        cycles_.loopBody++;
        lastCat_ = CycleCat::Loop;
    } else {
        cycles_.overhead++;
        lastCat_ = CycleCat::Overhead;
    }
}

} // namespace isrf
