#include "kernel/op.h"

#include <bit>

#include "util/log.h"

namespace isrf {

namespace {

// Latencies follow the Imagine cluster pipeline: simple integer ops in 1
// cycle; fp add/mul fully pipelined at 4 cycles; the divider is
// unpipelined with a long latency. SeqRead/SeqWrite model the stream
// buffer port (1 cycle); indexed data reads and comm receives get their
// real latency from scheduling edges (separation), so the node latency
// only covers the local port.
constexpr OpInfo kOpInfo[] = {
    {"const_i", FuClass::None, 0, true, 0},
    {"const_f", FuClass::None, 0, true, 0},
    {"lane_id", FuClass::None, 0, true, 0},
    {"iter_idx", FuClass::None, 0, true, 0},
    {"mov", FuClass::Alu, 1, true, 1},

    {"iadd", FuClass::Alu, 1, true, 2},
    {"isub", FuClass::Alu, 1, true, 2},
    {"imul", FuClass::Alu, 4, true, 2},
    {"iand", FuClass::Alu, 1, true, 2},
    {"ior", FuClass::Alu, 1, true, 2},
    {"ixor", FuClass::Alu, 1, true, 2},
    {"ishl", FuClass::Alu, 1, true, 2},
    {"ishr", FuClass::Alu, 1, true, 2},
    {"imin", FuClass::Alu, 1, true, 2},
    {"imax", FuClass::Alu, 1, true, 2},

    {"fadd", FuClass::Alu, 4, true, 2},
    {"fsub", FuClass::Alu, 4, true, 2},
    {"fmul", FuClass::Alu, 4, true, 2},
    {"fneg", FuClass::Alu, 1, true, 1},
    {"fmin", FuClass::Alu, 2, true, 2},
    {"fmax", FuClass::Alu, 2, true, 2},

    {"fdiv", FuClass::Div, 17, false, 2},
    {"idiv", FuClass::Div, 17, false, 2},
    {"imod", FuClass::Div, 17, false, 2},

    {"cmp_lt", FuClass::Alu, 1, true, 2},
    {"cmp_le", FuClass::Alu, 1, true, 2},
    {"cmp_eq", FuClass::Alu, 1, true, 2},
    {"cmp_ne", FuClass::Alu, 1, true, 2},
    {"select", FuClass::Alu, 1, true, 3},

    {"seq_read", FuClass::Sbuf, 1, true, 0},
    {"seq_write", FuClass::Sbuf, 1, true, 1},

    {"idx_addr", FuClass::Sbuf, 1, true, 1},
    {"idx_read", FuClass::Sbuf, 1, true, 0},
    {"idx_write", FuClass::Sbuf, 1, true, 2},

    {"comm_send", FuClass::Comm, 1, true, 2},
    {"comm_recv", FuClass::Comm, 2, true, 0},

    {"sp_read", FuClass::Sp, 2, true, 1},
    {"sp_write", FuClass::Sp, 1, true, 2},
};

static_assert(sizeof(kOpInfo) / sizeof(kOpInfo[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "kOpInfo out of sync with Opcode");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    if (idx >= static_cast<size_t>(Opcode::NumOpcodes))
        panic("opInfo: bad opcode %zu", idx);
    return kOpInfo[idx];
}

bool
opTouchesStream(Opcode op)
{
    switch (op) {
      case Opcode::SeqRead:
      case Opcode::SeqWrite:
      case Opcode::IdxAddr:
      case Opcode::IdxRead:
      case Opcode::IdxWrite:
        return true;
      default:
        return false;
    }
}

bool
opIsIndexed(Opcode op)
{
    return op == Opcode::IdxAddr || op == Opcode::IdxRead ||
        op == Opcode::IdxWrite;
}

Word
floatToWord(float f)
{
    return std::bit_cast<Word>(f);
}

float
wordToFloat(Word w)
{
    return std::bit_cast<float>(w);
}

Word
evalOp(Opcode op, Word a, Word b, Word c)
{
    auto fa = wordToFloat(a);
    auto fb = wordToFloat(b);
    auto sa = static_cast<int32_t>(a);
    auto sb = static_cast<int32_t>(b);
    switch (op) {
      case Opcode::Mov: return a;
      case Opcode::IAdd: return a + b;
      case Opcode::ISub: return a - b;
      case Opcode::IMul: return a * b;
      case Opcode::IAnd: return a & b;
      case Opcode::IOr: return a | b;
      case Opcode::IXor: return a ^ b;
      case Opcode::IShl: return a << (b & 31);
      case Opcode::IShr: return a >> (b & 31);
      case Opcode::IMin: return static_cast<Word>(sa < sb ? sa : sb);
      case Opcode::IMax: return static_cast<Word>(sa > sb ? sa : sb);
      case Opcode::FAdd: return floatToWord(fa + fb);
      case Opcode::FSub: return floatToWord(fa - fb);
      case Opcode::FMul: return floatToWord(fa * fb);
      case Opcode::FNeg: return floatToWord(-fa);
      case Opcode::FMin: return floatToWord(fa < fb ? fa : fb);
      case Opcode::FMax: return floatToWord(fa > fb ? fa : fb);
      case Opcode::FDiv: return floatToWord(fa / fb);
      case Opcode::IDiv:
        if (sb == 0)
            panic("evalOp: integer divide by zero");
        return static_cast<Word>(sa / sb);
      case Opcode::IMod:
        if (sb == 0)
            panic("evalOp: integer modulo by zero");
        return static_cast<Word>(sa % sb);
      case Opcode::CmpLt: return sa < sb ? 1u : 0u;
      case Opcode::CmpLe: return sa <= sb ? 1u : 0u;
      case Opcode::CmpEq: return a == b ? 1u : 0u;
      case Opcode::CmpNe: return a != b ? 1u : 0u;
      case Opcode::Select: return a ? b : c;
      default:
        panic("evalOp: opcode %s is not a pure scalar op", opName(op));
    }
}

} // namespace isrf
