/**
 * @file
 * Human-readable rendering of kernel schedules: the flat schedule and
 * the modulo reservation table, for debugging kernels and verifying
 * what the Figure 14-16 studies are measuring.
 */
#ifndef ISRF_KERNEL_SCHEDULE_DUMP_H
#define ISRF_KERNEL_SCHEDULE_DUMP_H

#include <string>

#include "kernel/scheduler.h"

namespace isrf {

/**
 * Render the flat schedule: one line per issue cycle listing the ops
 * issued there, annotated with FU class and modulo slot.
 */
std::string dumpFlatSchedule(const KernelGraph &graph,
                             const KernelSchedule &sched);

/**
 * Render the modulo reservation table: rows = modulo slots (0..II-1),
 * columns = functional-unit classes, cells = ops occupying the slot.
 */
std::string dumpReservationTable(const KernelGraph &graph,
                                 const KernelSchedule &sched);

} // namespace isrf

#endif // ISRF_KERNEL_SCHEDULE_DUMP_H
