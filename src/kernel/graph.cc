#include "kernel/graph.h"

#include "util/log.h"

namespace isrf {

int
KernelGraph::addStreamSlot(StreamSlot slot)
{
    slots_.push_back(std::move(slot));
    return static_cast<int>(slots_.size() - 1);
}

NodeId
KernelGraph::addNode(Node n)
{
    auto id = static_cast<NodeId>(nodes_.size());
    for (NodeId operand : n.operands) {
        if (operand != kInvalidNode && operand >= id)
            panic("KernelGraph(%s): operand %u of node %u not yet defined",
                  name_.c_str(), operand, id);
    }
    nodes_.push_back(n);
    return id;
}

void
KernelGraph::addEdge(NodeId from, NodeId to, uint32_t latency,
                     uint32_t distance)
{
    if (from >= nodes_.size() || to >= nodes_.size())
        panic("KernelGraph(%s): edge references unknown node", name_.c_str());
    edges_.push_back({from, to, latency, distance});
}

size_t
KernelGraph::countOps(Opcode op) const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        if (node.op == op)
            n++;
    return n;
}

size_t
KernelGraph::countFu(FuClass fu) const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        if (opInfo(node.op).fu == fu)
            n++;
    return n;
}

size_t
KernelGraph::flopCount() const
{
    size_t n = 0;
    for (const auto &node : nodes_) {
        switch (node.op) {
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FNeg:
          case Opcode::FMin:
          case Opcode::FMax:
          case Opcode::FDiv:
            n++;
            break;
          default:
            break;
        }
    }
    return n;
}

void
KernelGraph::validate() const
{
    for (NodeId id = 0; id < nodes_.size(); id++) {
        const Node &n = nodes_[id];
        const OpInfo &info = opInfo(n.op);
        for (uint8_t i = 0; i < info.arity; i++) {
            if (n.operands[i] == kInvalidNode)
                panic("KernelGraph(%s): node %u (%s) missing operand %u",
                      name_.c_str(), id, opName(n.op), i);
        }
        if (opTouchesStream(n.op)) {
            if (n.streamSlot < 0 ||
                    static_cast<size_t>(n.streamSlot) >= slots_.size()) {
                panic("KernelGraph(%s): node %u (%s) has bad stream slot %d",
                      name_.c_str(), id, opName(n.op), n.streamSlot);
            }
        }
        if (n.op == Opcode::IdxRead) {
            if (n.pairedAddr == kInvalidNode ||
                    n.pairedAddr >= nodes_.size() ||
                    nodes_[n.pairedAddr].op != Opcode::IdxAddr) {
                panic("KernelGraph(%s): IdxRead node %u not paired with an "
                      "IdxAddr", name_.c_str(), id);
            }
        }
    }
    for (const Edge &e : edges_) {
        if (e.from >= nodes_.size() || e.to >= nodes_.size())
            panic("KernelGraph(%s): dangling edge", name_.c_str());
    }
}

std::vector<Edge>
KernelGraph::fullEdges(uint32_t separation) const
{
    std::vector<Edge> all;
    all.reserve(edges_.size() + nodes_.size() * 2);
    // Implied same-iteration operand edges with producer latency.
    for (NodeId id = 0; id < nodes_.size(); id++) {
        const Node &n = nodes_[id];
        const OpInfo &info = opInfo(n.op);
        for (uint8_t i = 0; i < info.arity; i++) {
            NodeId src = n.operands[i];
            if (src == kInvalidNode)
                continue;
            uint32_t lat = opInfo(nodes_[src].op).latency;
            all.push_back({src, id, lat, 0});
        }
        // The address-to-data separation constraint: the data read must be
        // scheduled at least `separation` cycles after the address issue
        // (§4.7, §5.1: fixed separation because the scheduler does not
        // support variable-latency ops).
        if (n.op == Opcode::IdxRead && n.pairedAddr != kInvalidNode)
            all.push_back({n.pairedAddr, id, separation, 0});
    }
    // Explicit edges (loop-carried recurrences, ordering constraints).
    for (const Edge &e : edges_)
        all.push_back(e);
    return all;
}

} // namespace isrf
