#include "kernel/schedule_dump.h"

#include <map>
#include <sstream>

#include "util/log.h"
#include "util/table.h"

namespace isrf {

namespace {

const char *
fuName(FuClass fu)
{
    switch (fu) {
      case FuClass::Alu: return "ALU";
      case FuClass::Div: return "DIV";
      case FuClass::Comm: return "COMM";
      case FuClass::Sbuf: return "SBUF";
      case FuClass::Sp: return "SP";
      case FuClass::None: return "-";
    }
    return "?";
}

std::string
nodeLabel(const KernelGraph &g, NodeId id)
{
    const Node &n = g.node(id);
    std::string label = strprintf("n%u:%s", id, opName(n.op));
    if (n.streamSlot >= 0) {
        label += "(" +
            g.streamSlots()[static_cast<size_t>(n.streamSlot)].name + ")";
    }
    return label;
}

} // namespace

std::string
dumpFlatSchedule(const KernelGraph &graph, const KernelSchedule &sched)
{
    std::ostringstream out;
    out << strprintf("kernel %s: II=%u length=%u stages=%u sep=%u\n",
                     graph.name().c_str(), sched.ii, sched.length,
                     sched.stages(), sched.separation);
    std::map<uint32_t, std::vector<NodeId>> byCycle;
    for (NodeId id = 0; id < graph.nodeCount(); id++) {
        if (opInfo(graph.node(id).op).fu == FuClass::None)
            continue;
        byCycle[sched.opCycle[id]].push_back(id);
    }
    for (const auto &kv : byCycle) {
        out << strprintf("  t=%3u (slot %2u): ", kv.first,
                         kv.first % sched.ii);
        bool first = true;
        for (NodeId id : kv.second) {
            if (!first)
                out << ", ";
            first = false;
            out << nodeLabel(graph, id) << "["
                << fuName(opInfo(graph.node(id).op).fu) << "]";
        }
        out << "\n";
    }
    return out.str();
}

std::string
dumpReservationTable(const KernelGraph &graph, const KernelSchedule &sched)
{
    const FuClass classes[] = {FuClass::Alu, FuClass::Div, FuClass::Comm,
                               FuClass::Sbuf, FuClass::Sp};
    std::vector<std::string> header = {"slot"};
    for (FuClass fu : classes)
        header.emplace_back(fuName(fu));
    Table t(header);

    for (uint32_t slot = 0; slot < sched.ii; slot++) {
        std::vector<std::string> row = {std::to_string(slot)};
        for (FuClass fu : classes) {
            std::string cell;
            for (NodeId id = 0; id < graph.nodeCount(); id++) {
                const OpInfo &info = opInfo(graph.node(id).op);
                if (info.fu != fu)
                    continue;
                uint32_t dur = info.pipelined ? 1 : info.latency;
                for (uint32_t d = 0; d < dur; d++) {
                    if ((sched.opCycle[id] + d) % sched.ii == slot) {
                        if (!cell.empty())
                            cell += " ";
                        cell += strprintf("n%u", id);
                        break;
                    }
                }
            }
            row.push_back(cell.empty() ? "." : cell);
        }
        t.addRow(row);
    }
    return t.render();
}

} // namespace isrf
