/**
 * @file
 * Kernel dataflow graph: the scheduling IR for kernel inner loops.
 *
 * A KernelGraph holds one loop body as a set of operation nodes and
 * dependence edges. Edges carry a minimum latency and an iteration
 * distance; loop-carried dependencies (distance > 0) constrain the
 * initiation interval found by the modulo scheduler, reproducing the
 * §5.4 behaviour where kernels whose index computation is on a
 * recurrence (Rijndael, Sort) lose schedule quality as the indexed
 * address/data separation grows.
 */
#ifndef ISRF_KERNEL_GRAPH_H
#define ISRF_KERNEL_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/op.h"

namespace isrf {

/** Index of a node within its KernelGraph. */
using NodeId = uint32_t;

constexpr NodeId kInvalidNode = ~0u;

/** Direction + addressing mode of a kernel stream binding (Table 1). */
enum class StreamKind : uint8_t {
    SeqIn,       ///< istream<T>
    SeqOut,      ///< ostream<T>
    IdxInLane,   ///< idxl_istream<T> / idxl_ostream<T> (in-lane)
    IdxCross,    ///< idx_istream<T> (cross-lane read)
    IdxInLaneRw, ///< read-write in-lane indexed stream (paper §7
                 ///< future work: e.g. spilling registers, in-place
                 ///< data structures)
};

/** One stream slot in a kernel's signature. */
struct StreamSlot
{
    std::string name;
    StreamKind kind;
    bool isOutput;   ///< true for SeqOut and indexed writes
};

/** A dependence edge: to must issue >= latency after from (mod II·dist). */
struct Edge
{
    NodeId from;
    NodeId to;
    uint32_t latency;   ///< minimum issue-to-issue delay in cycles
    uint32_t distance;  ///< iteration distance (0 = same iteration)
};

/** One operation node in the loop body. */
struct Node
{
    Opcode op = Opcode::Mov;
    /** Value operands (same-iteration data edges are added for these). */
    NodeId operands[3] = {kInvalidNode, kInvalidNode, kInvalidNode};
    /** Stream slot index for stream-touching ops; -1 otherwise. */
    int streamSlot = -1;
    /** Immediate payload for ConstInt/ConstFloat. */
    Word imm = 0;
    /** For IdxRead: the IdxAddr node whose data this read consumes. */
    NodeId pairedAddr = kInvalidNode;
};

/**
 * The dataflow graph of one kernel inner loop.
 *
 * Construction is done through KernelBuilder; the scheduler consumes
 * nodes() and edges() directly.
 */
class KernelGraph
{
  public:
    explicit KernelGraph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Add a stream slot; returns its index. */
    int addStreamSlot(StreamSlot slot);

    /** Add a node; same-iteration data edges to operands are implied. */
    NodeId addNode(Node n);

    /** Add an explicit dependence edge (e.g. loop-carried or ordering). */
    void addEdge(NodeId from, NodeId to, uint32_t latency,
                 uint32_t distance = 0);

    size_t nodeCount() const { return nodes_.size(); }
    const Node &node(NodeId id) const { return nodes_[id]; }
    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<Edge> &edges() const { return edges_; }
    const std::vector<StreamSlot> &streamSlots() const { return slots_; }

    /** Count of nodes with the given opcode. */
    size_t countOps(Opcode op) const;

    /** Count of nodes in the given FU class. */
    size_t countFu(FuClass fu) const;

    /** Number of floating-point arithmetic ops (for GFLOPs accounting). */
    size_t flopCount() const;

    /**
     * Validate structural invariants (operand ids in range, stream slots
     * bound, IdxRead paired). Panics on violation.
     */
    void validate() const;

    /**
     * Collect all dependence edges including the implied operand edges,
     * with IdxAddr→IdxRead pairs stretched to `separation` cycles.
     *
     * @param separation Address-issue to data-read scheduling distance
     *                   applied to in-lane and cross-lane indexed pairs.
     */
    std::vector<Edge> fullEdges(uint32_t separation) const;

  private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::vector<StreamSlot> slots_;
};

} // namespace isrf

#endif // ISRF_KERNEL_GRAPH_H
