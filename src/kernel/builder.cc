#include "kernel/builder.h"

#include "util/log.h"

namespace isrf {

KernelBuilder::KernelBuilder(std::string name) : graph_(std::move(name))
{
}

StreamRef
KernelBuilder::seqIn(const std::string &name)
{
    return {graph_.addStreamSlot({name, StreamKind::SeqIn, false})};
}

StreamRef
KernelBuilder::seqOut(const std::string &name)
{
    return {graph_.addStreamSlot({name, StreamKind::SeqOut, true})};
}

StreamRef
KernelBuilder::idxlIn(const std::string &name)
{
    return {graph_.addStreamSlot({name, StreamKind::IdxInLane, false})};
}

StreamRef
KernelBuilder::idxlOut(const std::string &name)
{
    return {graph_.addStreamSlot({name, StreamKind::IdxInLane, true})};
}

StreamRef
KernelBuilder::idxIn(const std::string &name)
{
    return {graph_.addStreamSlot({name, StreamKind::IdxCross, false})};
}

StreamRef
KernelBuilder::idxlRw(const std::string &name)
{
    // Read-write streams are "outputs" for flush/drain purposes but
    // also readable; the machine binds them accordingly.
    return {graph_.addStreamSlot({name, StreamKind::IdxInLaneRw, true})};
}

Value
KernelBuilder::constInt(int32_t v)
{
    Node n;
    n.op = Opcode::ConstInt;
    n.imm = static_cast<Word>(v);
    return {graph_.addNode(n)};
}

Value
KernelBuilder::constFloat(float v)
{
    Node n;
    n.op = Opcode::ConstFloat;
    n.imm = floatToWord(v);
    return {graph_.addNode(n)};
}

Value
KernelBuilder::laneId()
{
    Node n;
    n.op = Opcode::LaneId;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::iterIdx()
{
    Node n;
    n.op = Opcode::IterIdx;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::binary(Opcode op, Value a, Value b)
{
    if (!a.valid() || !b.valid())
        panic("KernelBuilder(%s): invalid operand to %s",
              graph_.name().c_str(), opName(op));
    Node n;
    n.op = op;
    n.operands[0] = a.id;
    n.operands[1] = b.id;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::unary(Opcode op, Value a)
{
    if (!a.valid())
        panic("KernelBuilder(%s): invalid operand to %s",
              graph_.name().c_str(), opName(op));
    Node n;
    n.op = op;
    n.operands[0] = a.id;
    return {graph_.addNode(n)};
}

Value KernelBuilder::iadd(Value a, Value b) { return binary(Opcode::IAdd, a, b); }
Value KernelBuilder::isub(Value a, Value b) { return binary(Opcode::ISub, a, b); }
Value KernelBuilder::imul(Value a, Value b) { return binary(Opcode::IMul, a, b); }
Value KernelBuilder::iand(Value a, Value b) { return binary(Opcode::IAnd, a, b); }
Value KernelBuilder::ior(Value a, Value b) { return binary(Opcode::IOr, a, b); }
Value KernelBuilder::ixor(Value a, Value b) { return binary(Opcode::IXor, a, b); }
Value KernelBuilder::ishl(Value a, Value b) { return binary(Opcode::IShl, a, b); }
Value KernelBuilder::ishr(Value a, Value b) { return binary(Opcode::IShr, a, b); }
Value KernelBuilder::imin(Value a, Value b) { return binary(Opcode::IMin, a, b); }
Value KernelBuilder::imax(Value a, Value b) { return binary(Opcode::IMax, a, b); }
Value KernelBuilder::fadd(Value a, Value b) { return binary(Opcode::FAdd, a, b); }
Value KernelBuilder::fsub(Value a, Value b) { return binary(Opcode::FSub, a, b); }
Value KernelBuilder::fmul(Value a, Value b) { return binary(Opcode::FMul, a, b); }
Value KernelBuilder::fneg(Value a) { return unary(Opcode::FNeg, a); }
Value KernelBuilder::fdiv(Value a, Value b) { return binary(Opcode::FDiv, a, b); }
Value KernelBuilder::cmpLt(Value a, Value b) { return binary(Opcode::CmpLt, a, b); }
Value KernelBuilder::cmpLe(Value a, Value b) { return binary(Opcode::CmpLe, a, b); }
Value KernelBuilder::cmpEq(Value a, Value b) { return binary(Opcode::CmpEq, a, b); }

Value
KernelBuilder::select(Value cond, Value t, Value f)
{
    if (!cond.valid() || !t.valid() || !f.valid())
        panic("KernelBuilder(%s): invalid operand to select",
              graph_.name().c_str());
    Node n;
    n.op = Opcode::Select;
    n.operands[0] = cond.id;
    n.operands[1] = t.id;
    n.operands[2] = f.id;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::read(StreamRef s)
{
    Node n;
    n.op = Opcode::SeqRead;
    n.streamSlot = s.slot;
    return {graph_.addNode(n)};
}

void
KernelBuilder::write(StreamRef s, Value v)
{
    Node n;
    n.op = Opcode::SeqWrite;
    n.operands[0] = v.id;
    n.streamSlot = s.slot;
    graph_.addNode(n);
}

Value
KernelBuilder::readIdx(StreamRef s, Value index)
{
    Node addr;
    addr.op = Opcode::IdxAddr;
    addr.operands[0] = index.id;
    addr.streamSlot = s.slot;
    NodeId addrId = graph_.addNode(addr);

    Node data;
    data.op = Opcode::IdxRead;
    data.streamSlot = s.slot;
    data.pairedAddr = addrId;
    return {graph_.addNode(data)};
}

void
KernelBuilder::writeIdx(StreamRef s, Value index, Value v)
{
    Node n;
    n.op = Opcode::IdxWrite;
    n.operands[0] = index.id;
    n.operands[1] = v.id;
    n.streamSlot = s.slot;
    graph_.addNode(n);
}

Value
KernelBuilder::commSend(Value v, Value dest)
{
    Node n;
    n.op = Opcode::CommSend;
    n.operands[0] = v.id;
    n.operands[1] = dest.id;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::commRecv()
{
    Node n;
    n.op = Opcode::CommRecv;
    return {graph_.addNode(n)};
}

Value
KernelBuilder::spRead(Value addr)
{
    Node n;
    n.op = Opcode::SpRead;
    n.operands[0] = addr.id;
    return {graph_.addNode(n)};
}

void
KernelBuilder::spWrite(Value addr, Value v)
{
    Node n;
    n.op = Opcode::SpWrite;
    n.operands[0] = addr.id;
    n.operands[1] = v.id;
    graph_.addNode(n);
}

Value
KernelBuilder::carryIn()
{
    // A zero-latency pseudo node standing for "the value produced by the
    // previous iteration". carryOut() closes the recurrence.
    Node n;
    n.op = Opcode::ConstInt;
    n.imm = 0;
    return {graph_.addNode(n)};
}

void
KernelBuilder::carryOut(Value placeholder, Value producer, uint32_t distance)
{
    if (!placeholder.valid() || !producer.valid())
        panic("KernelBuilder(%s): invalid carryOut", graph_.name().c_str());
    uint32_t lat = opInfo(graph_.node(producer.id).op).latency;
    graph_.addEdge(producer.id, placeholder.id, lat, distance);
}

void
KernelBuilder::orderEdge(Value from, Value to, uint32_t latency,
                         uint32_t distance)
{
    graph_.addEdge(from.id, to.id, latency, distance);
}

KernelGraph
KernelBuilder::build()
{
    if (built_)
        panic("KernelBuilder(%s): build() called twice",
              graph_.name().c_str());
    built_ = true;
    graph_.validate();
    return std::move(graph_);
}

} // namespace isrf
