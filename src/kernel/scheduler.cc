#include "kernel/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/log.h"
#include "util/random.h"

namespace isrf {

namespace {

/** Resource dimensions in the modulo reservation table. */
enum ResDim : uint32_t {
    ResAlu = 0,
    ResDiv,
    ResComm,
    ResSbuf,
    ResSp,
    ResIdxBase,  ///< one dimension per indexed stream slot follows
};

struct NodeRes
{
    uint32_t dim;
    uint32_t duration;  ///< consecutive modulo slots occupied
};

/** Map a node to the MRT resource it occupies (duration in slots). */
NodeRes
nodeResource(const KernelGraph &g, NodeId id)
{
    const Node &n = g.node(id);
    const OpInfo &info = opInfo(n.op);
    switch (info.fu) {
      case FuClass::Alu: return {ResAlu, 1};
      case FuClass::Div: return {ResDiv, info.latency};
      case FuClass::Comm: return {ResComm, 1};
      case FuClass::Sp: return {ResSp, 1};
      case FuClass::Sbuf:
        // Address issues additionally contend for the per-stream single
        // issue port; model that port as the binding resource since the
        // Sbuf port itself is wider.
        if (n.op == Opcode::IdxAddr || n.op == Opcode::IdxWrite)
            return {ResIdxBase + static_cast<uint32_t>(n.streamSlot), 1};
        return {ResSbuf, 1};
      case FuClass::None:
      default:
        return {std::numeric_limits<uint32_t>::max(), 0};
    }
}

} // namespace

ModuloScheduler::ModuloScheduler(ClusterResources res, uint64_t seed)
    : res_(res), seed_(seed)
{
}

uint32_t
ModuloScheduler::resourceMinII(const KernelGraph &graph) const
{
    uint32_t slotCount = static_cast<uint32_t>(graph.streamSlots().size());
    std::vector<uint64_t> demand(ResIdxBase + slotCount, 0);
    for (NodeId id = 0; id < graph.nodeCount(); id++) {
        NodeRes r = nodeResource(graph, id);
        if (r.dim == std::numeric_limits<uint32_t>::max())
            continue;
        demand[r.dim] += r.duration;
    }
    auto cap = [&](uint32_t dim) -> uint64_t {
        switch (dim) {
          case ResAlu: return res_.aluSlots;
          case ResDiv: return res_.divSlots;
          case ResComm: return res_.commSlots;
          case ResSbuf: return res_.sbufSlots;
          case ResSp: return res_.spSlots;
          default: return res_.idxIssuePerStream;
        }
    };
    uint64_t mii = 1;
    for (uint32_t dim = 0; dim < demand.size(); dim++) {
        if (demand[dim] == 0)
            continue;
        uint64_t c = cap(dim);
        if (c == 0)
            fatal("scheduler: zero capacity for resource dim %u with "
                  "demand", dim);
        mii = std::max(mii, (demand[dim] + c - 1) / c);
    }
    return static_cast<uint32_t>(mii);
}

uint32_t
ModuloScheduler::recurrenceMinII(const KernelGraph &graph,
                                 uint32_t separation) const
{
    auto edges = graph.fullEdges(separation);
    size_t n = graph.nodeCount();
    // Minimal II with no positive-weight cycle under weights
    // (latency - II * distance). Linear scan is fine at kernel sizes.
    uint32_t bound = 2;
    for (const Edge &e : edges)
        bound += e.latency;
    for (uint32_t ii = 1; ii <= bound; ii++) {
        // Bellman-Ford longest-path feasibility.
        std::vector<int64_t> dist(n, 0);
        bool changedLast = false;
        for (size_t round = 0; round <= n; round++) {
            changedLast = false;
            for (const Edge &e : edges) {
                int64_t w = static_cast<int64_t>(e.latency) -
                    static_cast<int64_t>(ii) *
                    static_cast<int64_t>(e.distance);
                if (dist[e.from] + w > dist[e.to]) {
                    dist[e.to] = dist[e.from] + w;
                    changedLast = true;
                }
            }
            if (!changedLast)
                break;
        }
        if (!changedLast)
            return ii;
    }
    panic("recurrenceMinII(%s): no feasible II below %u",
          graph.name().c_str(), bound);
}

KernelSchedule
ModuloScheduler::schedule(const KernelGraph &graph, uint32_t separation)
{
    graph.validate();
    const size_t n = graph.nodeCount();
    KernelSchedule out;
    out.separation = separation;
    if (n == 0) {
        out.ii = 1;
        out.length = 1;
        return out;
    }

    auto edges = graph.fullEdges(separation);
    std::vector<std::vector<size_t>> predEdges(n), succEdges(n);
    for (size_t i = 0; i < edges.size(); i++) {
        predEdges[edges[i].to].push_back(i);
        succEdges[edges[i].from].push_back(i);
    }

    const uint32_t slotCount =
        static_cast<uint32_t>(graph.streamSlots().size());
    const uint32_t dims = ResIdxBase + slotCount;
    auto capOf = [&](uint32_t dim) -> uint32_t {
        switch (dim) {
          case ResAlu: return res_.aluSlots;
          case ResDiv: return res_.divSlots;
          case ResComm: return res_.commSlots;
          case ResSbuf: return res_.sbufSlots;
          case ResSp: return res_.spSlots;
          default: return res_.idxIssuePerStream;
        }
    };

    uint32_t mii = std::max(resourceMinII(graph),
                            recurrenceMinII(graph, separation));

    Rng rng(seed_ ^ (static_cast<uint64_t>(separation) << 32) ^
            std::hash<std::string>{}(graph.name()));
    std::vector<uint64_t> jitter(n);
    for (auto &j : jitter)
        j = rng.next();

    const uint32_t maxII = mii + 256;
    for (uint32_t ii = mii; ii <= maxII; ii++) {
        // --- Height-based priorities under this II. ---
        std::vector<int64_t> height(n, 0);
        bool infeasible = false;
        for (size_t round = 0; round <= n; round++) {
            bool changed = false;
            for (const Edge &e : edges) {
                int64_t w = static_cast<int64_t>(e.latency) -
                    static_cast<int64_t>(ii) *
                    static_cast<int64_t>(e.distance);
                if (height[e.to] + w > height[e.from]) {
                    height[e.from] = height[e.to] + w;
                    changed = true;
                }
            }
            if (!changed)
                break;
            if (round == n)
                infeasible = true;
        }
        if (infeasible)
            continue;

        // --- Iterative modulo scheduling. ---
        constexpr int64_t kUnscheduled = std::numeric_limits<int64_t>::min();
        std::vector<int64_t> sched(n, kUnscheduled);
        std::vector<int64_t> prevSched(n, kUnscheduled);
        // mrt[dim][slot] = current occupancy.
        std::vector<std::vector<uint32_t>> mrt(
            dims, std::vector<uint32_t>(ii, 0));

        auto addUsage = [&](NodeId id, int64_t t, int sign) {
            NodeRes r = nodeResource(graph, id);
            if (r.dim == std::numeric_limits<uint32_t>::max())
                return;
            for (uint32_t d = 0; d < r.duration; d++) {
                int64_t slot = ((t + d) % ii + ii) % ii;
                mrt[r.dim][static_cast<size_t>(slot)] =
                    static_cast<uint32_t>(
                        static_cast<int64_t>(
                            mrt[r.dim][static_cast<size_t>(slot)]) + sign);
            }
        };
        auto fits = [&](NodeId id, int64_t t) {
            NodeRes r = nodeResource(graph, id);
            if (r.dim == std::numeric_limits<uint32_t>::max())
                return true;
            uint32_t cap = capOf(r.dim);
            for (uint32_t d = 0; d < r.duration; d++) {
                int64_t slot = ((t + d) % ii + ii) % ii;
                if (mrt[r.dim][static_cast<size_t>(slot)] >= cap)
                    return false;
            }
            return true;
        };

        size_t unscheduledCount = n;
        int64_t budget = static_cast<int64_t>(n) * 16;
        bool failed = false;
        while (unscheduledCount > 0) {
            if (budget-- <= 0) {
                failed = true;
                break;
            }
            // Highest-priority unscheduled node (jitter breaks ties,
            // giving the benign schedule-length noise Fig. 14 mentions).
            NodeId pick = kInvalidNode;
            for (NodeId id = 0; id < n; id++) {
                if (sched[id] != kUnscheduled)
                    continue;
                if (pick == kInvalidNode || height[id] > height[pick] ||
                        (height[id] == height[pick] &&
                         jitter[id] > jitter[pick])) {
                    pick = id;
                }
            }

            int64_t estart = 0;
            for (size_t ei : predEdges[pick]) {
                const Edge &e = edges[ei];
                if (sched[e.from] == kUnscheduled)
                    continue;
                int64_t t = sched[e.from] + e.latency -
                    static_cast<int64_t>(ii) *
                    static_cast<int64_t>(e.distance);
                estart = std::max(estart, t);
            }

            int64_t slot = -1;
            for (int64_t t = estart;
                    t < estart + static_cast<int64_t>(ii); t++) {
                if (fits(pick, t)) {
                    slot = t;
                    break;
                }
            }
            if (slot < 0) {
                slot = (prevSched[pick] != kUnscheduled &&
                        estart <= prevSched[pick])
                    ? prevSched[pick] + 1 : estart;
                // Evict whatever conflicts on resources at this slot.
                for (NodeId other = 0; other < n; other++) {
                    if (other == pick || sched[other] == kUnscheduled)
                        continue;
                    NodeRes ro = nodeResource(graph, other);
                    NodeRes rp = nodeResource(graph, pick);
                    if (ro.dim != rp.dim ||
                            rp.dim == std::numeric_limits<uint32_t>::max())
                        continue;
                    bool overlap = false;
                    for (uint32_t a = 0; a < rp.duration && !overlap; a++) {
                        for (uint32_t b = 0; b < ro.duration; b++) {
                            if (((slot + a) % ii + ii) % ii ==
                                    ((sched[other] + b) % ii + ii) % ii) {
                                overlap = true;
                                break;
                            }
                        }
                    }
                    if (overlap) {
                        addUsage(other, sched[other], -1);
                        sched[other] = kUnscheduled;
                        unscheduledCount++;
                    }
                }
            }

            sched[pick] = slot;
            prevSched[pick] = slot;
            addUsage(pick, slot, +1);
            unscheduledCount--;

            // Evict successors whose dependence is now violated.
            for (size_t ei : succEdges[pick]) {
                const Edge &e = edges[ei];
                if (e.to == pick || sched[e.to] == kUnscheduled)
                    continue;
                int64_t need = slot + e.latency -
                    static_cast<int64_t>(ii) *
                    static_cast<int64_t>(e.distance);
                if (sched[e.to] < need) {
                    addUsage(e.to, sched[e.to], -1);
                    sched[e.to] = kUnscheduled;
                    unscheduledCount++;
                }
            }
        }
        if (failed)
            continue;

        // Normalize to a non-negative flat schedule.
        int64_t minT = std::numeric_limits<int64_t>::max();
        for (NodeId id = 0; id < n; id++)
            minT = std::min(minT, sched[id]);
        out.ii = ii;
        out.opCycle.resize(n);
        uint32_t length = 1;
        for (NodeId id = 0; id < n; id++) {
            out.opCycle[id] = static_cast<uint32_t>(sched[id] - minT);
            uint32_t lat = std::max<uint32_t>(
                1, opInfo(graph.node(id).op).latency);
            length = std::max(length, out.opCycle[id] + lat);
        }
        out.length = length;
        return out;
    }
    panic("ModuloScheduler: failed to schedule kernel %s (sep=%u) up to "
          "II=%u", graph.name().c_str(), separation, maxII);
}

} // namespace isrf
