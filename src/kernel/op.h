/**
 * @file
 * Kernel operation set: opcodes, functional-unit classes, latencies, and
 * scalar functional semantics.
 *
 * This is the reproduction's stand-in for the Imagine VLIW microcode
 * operation set targeted by the KernelC compiler [19]. Only properties
 * that affect scheduling (FU class, latency, pipelining) and functional
 * evaluation are modeled.
 */
#ifndef ISRF_KERNEL_OP_H
#define ISRF_KERNEL_OP_H

#include <cstdint>
#include <string>

#include "sim/ticked.h"

namespace isrf {

/**
 * Functional unit classes available in each compute cluster.
 *
 * Per Table 3 / §5: 4 fully pipelined ALUs supporting integer and
 * floating-point add and multiply, plus a single unpipelined divider.
 * COMM is the cluster's port onto the inter-cluster network; SBUF ports
 * move words between the cluster and its stream buffers; SP is the small
 * scratchpad port (used by the base Filter implementation).
 */
enum class FuClass : uint8_t {
    Alu,     ///< 4 slots/cycle, pipelined
    Div,     ///< 1 slot, unpipelined (occupies for its full latency)
    Comm,    ///< 1 slot/cycle, inter-cluster network send
    Sbuf,    ///< stream-buffer access port
    Sp,      ///< scratchpad access port
    None,    ///< pseudo-ops consuming no issue slot
};

/** Operation codes for kernel dataflow nodes. */
enum class Opcode : uint8_t {
    // Pseudo / constants
    ConstInt,    ///< integer literal
    ConstFloat,  ///< float literal
    LaneId,      ///< id of the executing cluster (0..N-1)
    IterIdx,     ///< current loop iteration index within this lane
    Mov,

    // Integer ALU
    IAdd, ISub, IMul, IAnd, IOr, IXor, IShl, IShr, IMin, IMax,

    // Floating point ALU
    FAdd, FSub, FMul, FNeg, FMin, FMax,

    // Divider
    FDiv, IDiv, IMod,

    // Comparisons / select (ALU)
    CmpLt, CmpLe, CmpEq, CmpNe, Select,

    // Stream-buffer accesses
    SeqRead,   ///< read next word of a sequential input stream
    SeqWrite,  ///< append a word to a sequential output stream

    // Indexed SRF accesses (§4.4): an access is split into an address
    // issue and a data read, scheduled `separation` cycles apart.
    IdxAddr,   ///< push a computed address into an address FIFO
    IdxRead,   ///< consume the word returned for a prior IdxAddr
    IdxWrite,  ///< indexed store: address + data into the write FIFO

    // Inter-cluster communication (statically scheduled, §4.5)
    CommSend,  ///< send a word to another cluster
    CommRecv,  ///< receive a word sent by another cluster

    // Scratchpad (base-configuration Filter kernel state management)
    SpRead,
    SpWrite,

    NumOpcodes,
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *name;
    FuClass fu;
    /** Producer latency in cycles (result available after this many). */
    uint32_t latency;
    /** False only for the divider (occupies its FU for `latency`). */
    bool pipelined;
    /** Number of value inputs (excluding stream bindings). */
    uint8_t arity;
};

/** Look up static properties of an opcode. */
const OpInfo &opInfo(Opcode op);

/** Printable opcode name. */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/** True for opcodes that access a stream (carry a stream-slot binding). */
bool opTouchesStream(Opcode op);

/** True for indexed-access opcodes (IdxAddr / IdxRead / IdxWrite). */
bool opIsIndexed(Opcode op);

/**
 * Evaluate a pure arithmetic/logic opcode on word operands.
 *
 * Floats are carried in Word via bit_cast. Stream, comm, and scratchpad
 * opcodes are not evaluable here (they need machine state) and panic.
 */
Word evalOp(Opcode op, Word a, Word b, Word c);

/** Bit-cast helpers between float and the 32-bit Word carrier. */
Word floatToWord(float f);
float wordToFloat(Word w);

} // namespace isrf

#endif // ISRF_KERNEL_OP_H
