/**
 * @file
 * Software-pipelining (iterative modulo) scheduler for kernel loops.
 *
 * Reproduces the role of the Imagine kernel scheduler [19]: given a
 * kernel dataflow graph, the cluster's functional-unit resources
 * (Table 3: 4 pipelined ALUs + 1 unpipelined divider per lane), and the
 * fixed indexed address/data separation, it finds a modulo schedule with
 * the smallest feasible initiation interval (II). The inner-loop length
 * reported by Figure 14 is this II; the flat schedule length determines
 * software-pipeline fill/drain overhead.
 */
#ifndef ISRF_KERNEL_SCHEDULER_H
#define ISRF_KERNEL_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "kernel/graph.h"

namespace isrf {

/** Per-cluster issue resources visible to the scheduler. */
struct ClusterResources
{
    uint32_t aluSlots = 4;   ///< pipelined add/mul/logic units
    uint32_t divSlots = 1;   ///< unpipelined divider
    uint32_t commSlots = 1;  ///< inter-cluster network sends per cycle
    uint32_t sbufSlots = 4;  ///< stream-buffer port accesses per cycle
    uint32_t spSlots = 1;    ///< scratchpad accesses per cycle
    /**
     * Indexed SRF address issues per stream per cycle. The paper's
     * implementation "limits each indexed stream to issuing a single
     * indexed SRF access per cycle" (§5.3).
     */
    uint32_t idxIssuePerStream = 1;
};

/** Result of scheduling one kernel loop body. */
struct KernelSchedule
{
    /** Initiation interval: cycles between successive loop iterations. */
    uint32_t ii = 0;
    /** Flat schedule length: issue of first op to retire of last. */
    uint32_t length = 0;
    /** Absolute issue cycle per node (relative to iteration start). */
    std::vector<uint32_t> opCycle;
    /** Address/data separation the schedule was built for. */
    uint32_t separation = 0;
    /** Number of software-pipeline stages = ceil(length / ii). */
    uint32_t
    stages() const
    {
        return ii ? (length + ii - 1) / ii : 0;
    }
};

/**
 * Iterative modulo scheduler (Rau-style IMS).
 *
 * Construction binds the resource model; schedule() may be invoked for
 * multiple graphs/separations. A deterministic seeded perturbation is
 * applied to priority ties, mirroring the "randomized algorithms used in
 * the scheduler" whose noise the paper notes in Figure 14.
 */
class ModuloScheduler
{
  public:
    explicit ModuloScheduler(ClusterResources res = {}, uint64_t seed = 1);

    /**
     * Schedule a kernel loop body.
     *
     * @param graph Validated kernel graph.
     * @param separation Min cycles between indexed address issue and the
     *        corresponding data read (applied to IdxAddr→IdxRead pairs).
     */
    KernelSchedule schedule(const KernelGraph &graph, uint32_t separation);

    /** Resource-constrained lower bound on II. */
    uint32_t resourceMinII(const KernelGraph &graph) const;

    /** Recurrence-constrained lower bound on II for a separation. */
    uint32_t recurrenceMinII(const KernelGraph &graph,
                             uint32_t separation) const;

  private:
    ClusterResources res_;
    uint64_t seed_;
};

} // namespace isrf

#endif // ISRF_KERNEL_SCHEDULER_H
