/**
 * @file
 * KernelBuilder: an embedded-DSL analogue of the KernelC language of
 * §4.7 / Figure 10. Workloads build kernel inner-loop dataflow graphs
 * through this interface:
 *
 * @code
 *   KernelBuilder b("lookup");
 *   auto in = b.seqIn("in");       // istream<int> in
 *   auto lut = b.idxlIn("LUT");    // idxl_istream<int> LUT
 *   auto out = b.seqOut("out");    // ostream<int> out
 *   auto a = b.read(in);           // in >> a
 *   auto v = b.readIdx(lut, a);    // LUT[a] >> b
 *   b.write(out, b.iadd(a, v));    // out << c
 * @endcode
 */
#ifndef ISRF_KERNEL_BUILDER_H
#define ISRF_KERNEL_BUILDER_H

#include <string>

#include "kernel/graph.h"

namespace isrf {

/** Opaque SSA value handle produced by KernelBuilder. */
struct Value
{
    NodeId id = kInvalidNode;
    bool valid() const { return id != kInvalidNode; }
};

/** Handle to a declared kernel stream. */
struct StreamRef
{
    int slot = -1;
};

/**
 * Builds a KernelGraph with KernelC-like operations.
 *
 * The builder constructs one loop body; loop-carried dependencies are
 * declared with carry()/carryUse() pairs, mirroring variables that live
 * across iterations of a KernelC while-loop.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    // --- stream declarations (Table 1 stream types) ---
    StreamRef seqIn(const std::string &name);    ///< istream<T>
    StreamRef seqOut(const std::string &name);   ///< ostream<T>
    StreamRef idxlIn(const std::string &name);   ///< idxl_istream<T>
    StreamRef idxlOut(const std::string &name);  ///< idxl_ostream<T>
    StreamRef idxIn(const std::string &name);    ///< idx_istream<T> (cross)
    /** Read-write in-lane indexed stream (§7 future-work extension). */
    StreamRef idxlRw(const std::string &name);

    // --- constants and pseudo values ---
    Value constInt(int32_t v);
    Value constFloat(float v);
    Value laneId();
    Value iterIdx();

    // --- arithmetic (thin wrappers over Opcode) ---
    Value iadd(Value a, Value b);
    Value isub(Value a, Value b);
    Value imul(Value a, Value b);
    Value iand(Value a, Value b);
    Value ior(Value a, Value b);
    Value ixor(Value a, Value b);
    Value ishl(Value a, Value b);
    Value ishr(Value a, Value b);
    Value imin(Value a, Value b);
    Value imax(Value a, Value b);
    Value fadd(Value a, Value b);
    Value fsub(Value a, Value b);
    Value fmul(Value a, Value b);
    Value fneg(Value a);
    Value fdiv(Value a, Value b);
    Value cmpLt(Value a, Value b);
    Value cmpLe(Value a, Value b);
    Value cmpEq(Value a, Value b);
    Value select(Value cond, Value t, Value f);

    // --- stream accesses ---
    /** in >> x : read next word from a sequential input stream. */
    Value read(StreamRef s);
    /** out << x : append a word to a sequential output stream. */
    void write(StreamRef s, Value v);
    /** strm[idx] >> x : indexed read (in-lane or cross-lane stream). */
    Value readIdx(StreamRef s, Value index);
    /** strm[idx] << x : in-lane indexed write. */
    void writeIdx(StreamRef s, Value index, Value v);

    // --- inter-cluster communication (conditional streams etc.) ---
    /**
     * Send a word into the inter-cluster network (dest computed).
     * @return the send node, so callers can chain an orderEdge() to the
     *         matching commRecv() and put the network round trip on a
     *         recurrence.
     */
    Value commSend(Value v, Value dest);
    /** Receive a word from the inter-cluster network. */
    Value commRecv();

    // --- scratchpad ---
    Value spRead(Value addr);
    void spWrite(Value addr, Value v);

    // --- loop-carried state ---
    /**
     * Declare a value carried into the next iteration. The placeholder
     * returned by carryIn() reads last iteration's value; carryOut()
     * binds the producer, adding a distance-1 recurrence edge.
     */
    Value carryIn();
    void carryOut(Value placeholder, Value producer, uint32_t distance = 1);

    /** Add an explicit ordering edge (rarely needed by workloads). */
    void orderEdge(Value from, Value to, uint32_t latency,
                   uint32_t distance);

    /** Finalize: validate and move the graph out. */
    KernelGraph build();

    const KernelGraph &graph() const { return graph_; }

  private:
    Value binary(Opcode op, Value a, Value b);
    Value unary(Opcode op, Value a);

    KernelGraph graph_;
    bool built_ = false;
};

} // namespace isrf

#endif // ISRF_KERNEL_BUILDER_H
