/**
 * @file
 * Parallel experiment driver.
 *
 * The paper's evaluation is a (workload x machine-configuration)
 * matrix of fully independent simulations — classic embarrassingly
 * parallel throughput-simulation work. SweepRunner executes such a
 * matrix on a fixed-size thread pool, one isolated simulation context
 * per job, and returns results in deterministic submission order
 * regardless of completion order.
 *
 * Soundness rests on the de-globalized simulation core: every Machine
 * owns its Tracer and StatSampler, and all ISRF_* environment reads
 * happen once, up front, in MachineConfig::fromEnv() — never from a
 * worker thread. A job therefore touches no mutable process-global
 * state except the (mutex-guarded) CLI trace shim and progress
 * printing.
 *
 * Determinism guarantee: each job's WorkloadResult depends only on
 * (workload, config, options), all captured at submission time, so a
 * sweep run with N threads is bit-identical to the same sweep run
 * serially — only wall time changes.
 */
#ifndef ISRF_DRIVER_SWEEP_RUNNER_H
#define ISRF_DRIVER_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "sim/engine.h"
#include "workloads/workload.h"

namespace isrf {

/** One independent simulation to run: a fully resolved context. */
struct SweepJob
{
    std::string workload;  ///< name in workloadRegistry()
    MachineConfig cfg;     ///< resolved config (env already applied)
    WorkloadOptions opts;
    /**
     * Optional runner override (tests, synthetic jobs); when set it is
     * invoked instead of the registry lookup. Custom-runner jobs are
     * fingerprinted as such: the journal cannot attest arbitrary code,
     * so their records never silently replace a registry workload's.
     */
    WorkloadRunner runner;
};

/** One finished job, in submission order. */
struct SweepOutcome
{
    std::string workload;
    MachineKind kind = MachineKind::Base;
    WorkloadResult result;
    double wallSeconds = 0.0;  ///< this job's wall-clock time
    /**
     * Final job status: result.status for executed jobs (Done /
     * Stalled / TimedOut / Cancelled), or Failed when the workload
     * threw (message in result.error).
     */
    RunStatus status = RunStatus::Done;
    /** Attempts consumed (1 + retries actually used). */
    uint32_t attempts = 1;
    /** True when replayed from the journal instead of re-simulated. */
    bool fromJournal = false;
    /**
     * Canonical resultJson(result) bytes. For replayed jobs these are
     * the journaled bytes, so a resumed sweep's JSON export is
     * byte-identical to an uninterrupted run's.
     */
    std::string resultText;
};

/** Aggregate timing for a whole sweep. */
struct SweepTiming
{
    unsigned threads = 1;
    double wallSeconds = 0.0;     ///< sweep start to last completion
    double sumJobSeconds = 0.0;   ///< sum of executed job wall times
    size_t replayed = 0;          ///< jobs served from the journal
    /**
     * Journal-recovery loss accounting for --resume (0 on a clean
     * resume): torn final records dropped (0 or 1 — the fsync'd
     * journal can tear at most its last line), bytes discarded with
     * them, and blank lines skipped by the tolerant reader. Surfaced
     * in bench_sweep's summary and --timing-json so operators can
     * tell a clean resume from a lossy one.
     */
    size_t tornRecordsDropped = 0;
    size_t tornBytesDropped = 0;
    size_t journalLinesSkipped = 0;
    /**
     * Checkpoint accounting (0 unless SweepPolicy::checkpointDir is
     * set): snapshot files written, jobs resumed mid-flight from a
     * checkpoint, and total simulated cycles actually executed by this
     * process (excluding cycles skipped by restores). The CI
     * resilience check asserts a resumed sweep executes strictly fewer
     * cycles than its uninterrupted baseline.
     */
    uint64_t checkpointSaves = 0;
    uint64_t checkpointRestores = 0;
    uint64_t simCyclesExecuted = 0;
    /** Aggregate parallel speedup: sum of job times / sweep wall. */
    double speedup() const
    {
        return wallSeconds > 0.0 ? sumJobSeconds / wallSeconds : 1.0;
    }
};

/**
 * Resilience policy for one sweep (see DESIGN.md §Sweep resilience).
 * The default-constructed policy reproduces the plain run() behavior:
 * no deadline, no retries, no journal.
 */
struct SweepPolicy
{
    /** Per-attempt wall-clock deadline in seconds (0 = none). */
    double timeoutSeconds = 0.0;
    /** Extra attempts after a TimedOut/Stalled attempt. */
    uint32_t retries = 0;
    /** First retry backoff (doubles per retry, +-50% jitter). */
    double backoffBaseSeconds = 0.1;
    /** Backoff ceiling. */
    double backoffCapSeconds = 5.0;
    /** Journal path ("" = no journal). */
    std::string journalPath;
    /**
     * Replay journaled outcomes instead of re-simulating. Requires the
     * journal's sweep fingerprint to match the submitted matrix; a
     * mismatch (code/config drift) is a fatal stale-journal error,
     * never a silent merge. A missing journal file is treated as a
     * fresh start.
     */
    bool resume = false;
    /** External whole-sweep cancellation (nullptr = none). */
    const CancelToken *cancel = nullptr;
    /**
     * Mid-job checkpoint directory ("" = checkpointing off). Each job
     * writes <dir>/job-<fingerprint>.ckpt every checkpointEveryCycles
     * simulated cycles (util/snapshot.h); on the next run of the same
     * matrix an in-flight job resumes from its newest valid
     * checkpoint. The file is removed once the job reaches a
     * replayable (journalable) outcome, and kept for TimedOut /
     * Cancelled attempts so the retry or the next sweep resumes
     * mid-flight. Excluded from job fingerprints: checkpointing
     * observes a run without changing its results.
     */
    std::string checkpointDir;
    /** Checkpoint cadence in simulated cycles (0 = only on request). */
    uint64_t checkpointEveryCycles = 0;
};

/** One journaled attempt record, decoded. */
struct SweepJournalRecord
{
    uint64_t job = 0;          ///< job fingerprint
    std::string workload;
    std::string machine;
    uint32_t attempt = 1;
    RunStatus status = RunStatus::Done;
    double wallSeconds = 0.0;
    std::string resultText;    ///< raw resultJson bytes
    std::string error;
};

/** Decoded journal: header + last record per job fingerprint. */
struct SweepJournalLoad
{
    bool ok = false;
    std::string error;             ///< why !ok (I/O, corrupt, header)
    uint64_t sweepFingerprint = 0; ///< from the header line
    size_t jobCount = 0;           ///< from the header line
    bool tornFinalLine = false;    ///< a torn final record was dropped
    size_t tornBytes = 0;          ///< bytes dropped with the torn line
    size_t blankLines = 0;         ///< blank lines the reader skipped
    /** Latest record per job fingerprint (attempt order = file order). */
    std::map<uint64_t, SweepJournalRecord> latest;
    /** Attempts journaled so far per job fingerprint. */
    std::map<uint64_t, uint32_t> attempts;
};

/** Fixed-size thread pool running SweepJobs (see file comment). */
class SweepRunner
{
  public:
    /**
     * Called (under an internal mutex) as each job starts and
     * finishes; `done` counts finished jobs so far.
     */
    using ProgressFn = std::function<void(const SweepJob &job,
                                          bool finished, size_t done,
                                          size_t total)>;

    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Run all jobs and return their outcomes in submission order.
     * With one thread (or one job) everything runs inline on the
     * calling thread. Results are bit-identical either way.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs,
                                  ProgressFn progress = nullptr);

    /**
     * Run all jobs under a resilience policy: per-attempt wall-clock
     * deadlines, bounded retry-with-backoff for TimedOut/Stalled
     * attempts, per-attempt journaling, and journal replay on resume
     * (DESIGN.md §Sweep resilience). A stale journal — one whose sweep
     * fingerprint does not match the submitted matrix — is a fatal()
     * user error, never silently merged.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs,
                                  const SweepPolicy &policy,
                                  ProgressFn progress = nullptr);

    /**
     * Deterministic fingerprint of one job: FNV-1a over
     * canonicalJobText() — a canonical dump of every
     * simulation-affecting field of (workload, config, options).
     * Observability-only knobs (see observabilityKnobs()) are
     * deliberately excluded so a journal written under ISRF_ENGINE=
     * dense resumes cleanly under skip, with tracing, sampling or
     * profiling toggled, and vice versa.
     */
    static uint64_t fingerprint(const SweepJob &job);

    /**
     * The canonical text fingerprint() hashes. Exposed so tests can
     * assert the exact exclusion policy (journal compatibility) rather
     * than just hash equality.
     */
    static std::string canonicalJobText(const SweepJob &job);

    /**
     * Names of the MachineConfig knobs excluded from fingerprints
     * because they cannot affect simulation results — the single
     * authoritative exclusion list (documented at canonicalJob() in
     * sweep_runner.cc, which enforces it).
     */
    static const std::vector<std::string> &observabilityKnobs();

    /** Fingerprint of a whole ordered matrix (hash of job hashes). */
    static uint64_t sweepFingerprint(const std::vector<SweepJob> &jobs);

    /**
     * Decode a journal file: header line + per-attempt records. !ok
     * covers unreadable files, corrupt interior lines, and malformed
     * headers; a torn final record is dropped and flagged, not an
     * error. Exposed for tests and tooling — run() applies the same
     * logic on --resume.
     */
    static SweepJournalLoad loadJournal(const std::string &path);

    /**
     * True when a journaled final status may be replayed instead of
     * re-simulated: Done / Stalled / Failed are deterministic
     * functions of the fingerprinted inputs; TimedOut / Cancelled
     * depend on wall-clock conditions and are always re-run.
     */
    static bool replayable(RunStatus s);

    /** Timing of the most recent run(). */
    const SweepTiming &timing() const { return timing_; }

    /**
     * Build the full benchmarks x machine-kinds job matrix in figure
     * order. Configs are resolved (make + fromEnv) here, on the
     * calling thread, so workers never consult the environment.
     */
    static std::vector<SweepJob>
    matrix(const std::vector<std::string> &workloads,
           const std::vector<MachineKind> &kinds,
           const WorkloadOptions &opts);

  private:
    unsigned threads_ = 1;
    SweepTiming timing_;
};

} // namespace isrf

#endif // ISRF_DRIVER_SWEEP_RUNNER_H
