/**
 * @file
 * Parallel experiment driver.
 *
 * The paper's evaluation is a (workload x machine-configuration)
 * matrix of fully independent simulations — classic embarrassingly
 * parallel throughput-simulation work. SweepRunner executes such a
 * matrix on a fixed-size thread pool, one isolated simulation context
 * per job, and returns results in deterministic submission order
 * regardless of completion order.
 *
 * Soundness rests on the de-globalized simulation core: every Machine
 * owns its Tracer and StatSampler, and all ISRF_* environment reads
 * happen once, up front, in MachineConfig::fromEnv() — never from a
 * worker thread. A job therefore touches no mutable process-global
 * state except the (mutex-guarded) CLI trace shim and progress
 * printing.
 *
 * Determinism guarantee: each job's WorkloadResult depends only on
 * (workload, config, options), all captured at submission time, so a
 * sweep run with N threads is bit-identical to the same sweep run
 * serially — only wall time changes.
 */
#ifndef ISRF_DRIVER_SWEEP_RUNNER_H
#define ISRF_DRIVER_SWEEP_RUNNER_H

#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "workloads/workload.h"

namespace isrf {

/** One independent simulation to run: a fully resolved context. */
struct SweepJob
{
    std::string workload;  ///< name in workloadRegistry()
    MachineConfig cfg;     ///< resolved config (env already applied)
    WorkloadOptions opts;
};

/** One finished job, in submission order. */
struct SweepOutcome
{
    std::string workload;
    MachineKind kind = MachineKind::Base;
    WorkloadResult result;
    double wallSeconds = 0.0;  ///< this job's wall-clock time
};

/** Aggregate timing for a whole sweep. */
struct SweepTiming
{
    unsigned threads = 1;
    double wallSeconds = 0.0;     ///< sweep start to last completion
    double sumJobSeconds = 0.0;   ///< sum of per-job wall times
    /** Aggregate parallel speedup: sum of job times / sweep wall. */
    double speedup() const
    {
        return wallSeconds > 0.0 ? sumJobSeconds / wallSeconds : 1.0;
    }
};

/** Fixed-size thread pool running SweepJobs (see file comment). */
class SweepRunner
{
  public:
    /**
     * Called (under an internal mutex) as each job starts and
     * finishes; `done` counts finished jobs so far.
     */
    using ProgressFn = std::function<void(const SweepJob &job,
                                          bool finished, size_t done,
                                          size_t total)>;

    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Run all jobs and return their outcomes in submission order.
     * With one thread (or one job) everything runs inline on the
     * calling thread. Results are bit-identical either way.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs,
                                  ProgressFn progress = nullptr);

    /** Timing of the most recent run(). */
    const SweepTiming &timing() const { return timing_; }

    /**
     * Build the full benchmarks x machine-kinds job matrix in figure
     * order. Configs are resolved (make + fromEnv) here, on the
     * calling thread, so workers never consult the environment.
     */
    static std::vector<SweepJob>
    matrix(const std::vector<std::string> &workloads,
           const std::vector<MachineKind> &kinds,
           const WorkloadOptions &opts);

  private:
    unsigned threads_ = 1;
    SweepTiming timing_;
};

} // namespace isrf

#endif // ISRF_DRIVER_SWEEP_RUNNER_H
