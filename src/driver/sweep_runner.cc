#include "driver/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "util/log.h"

namespace isrf {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SweepRunner::SweepRunner(unsigned threads)
{
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? hw : 1;
    }
    threads_ = threads;
}

std::vector<SweepJob>
SweepRunner::matrix(const std::vector<std::string> &workloads,
                    const std::vector<MachineKind> &kinds,
                    const WorkloadOptions &opts)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * kinds.size());
    for (const auto &w : workloads) {
        for (MachineKind k : kinds) {
            SweepJob j;
            j.workload = w;
            j.cfg = MachineConfig::make(k).fromEnv();
            j.opts = opts;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs, ProgressFn progress)
{
    // Force the lazy registries into existence before any worker
    // starts. Magic statics are thread-safe, but initializing them
    // here keeps worker wall times honest and the first jobs fast.
    workloadRegistry();
    Tracer::instance();

    std::vector<SweepOutcome> out(jobs.size());
    timing_ = SweepTiming();
    timing_.threads = std::max(1u,
        std::min<unsigned>(threads_, jobs.size() ? jobs.size() : 1));

    std::mutex progressMu;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};

    auto note = [&](size_t idx, bool finished) {
        if (!progress)
            return;
        std::lock_guard<std::mutex> lock(progressMu);
        progress(jobs[idx], finished,
                 finished ? done.load() : done.load(), jobs.size());
    };

    // Index-addressed result slots make submission-order output
    // trivial: worker i never races worker j on out[k].
    auto worker = [&]() {
        for (;;) {
            size_t idx = next.fetch_add(1);
            if (idx >= jobs.size())
                return;
            const SweepJob &job = jobs[idx];
            note(idx, false);
            auto t0 = std::chrono::steady_clock::now();
            SweepOutcome &o = out[idx];
            o.workload = job.workload;
            o.kind = job.cfg.kind;
            o.result = runWorkload(job.workload, job.cfg, job.opts);
            o.wallSeconds = secondsSince(t0);
            done.fetch_add(1);
            note(idx, true);
        }
    };

    auto sweepStart = std::chrono::steady_clock::now();
    if (timing_.threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(timing_.threads);
        for (unsigned t = 0; t < timing_.threads; t++)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    timing_.wallSeconds = secondsSince(sweepStart);
    for (const auto &o : out)
        timing_.sumJobSeconds += o.wallSeconds;
    return out;
}

} // namespace isrf
