#include "driver/sweep_runner.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "sim/profiler.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/jsonl.h"
#include "util/log.h"
#include "util/random.h"
#include "util/snapshot.h"
#include "workloads/external.h"

namespace isrf {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

// ----------------------------------------------------------------------
// Fingerprinting
// ----------------------------------------------------------------------

// FNV-1a (util/hash.h): the store and the journal must hash alike.
/** Journal format version; bump on any record-layout change. */
constexpr uint64_t kJournalVersion = 1;

/**
 * THE fingerprint exclusion list: MachineConfig knobs that observe a
 * simulation without affecting its results, and therefore must never
 * enter canonicalJob() below. Any knob listed here can change between
 * a journal being written and being resumed without invalidating it:
 *
 *   engineMode          dense and skip produce byte-identical stats
 *   traceSpec           event tracing is side-effect-free
 *   traceCapacity       ring size only bounds what --trace exports
 *   statSampleInterval  samples read counters, never write state
 *                       (canonicalJob pins its legacy key to the
 *                       default 0 — see there)
 *   profileEnabled      host-time profiling reads only the wall clock
 *   profileStride       ditto
 *   deadlineCheckCycles poll interval for wall-clock deadlines; it
 *                       changes when a TimedOut is noticed, never the
 *                       results of a run that completes (TimedOut is
 *                       not replayable anyway)
 *
 * Keep this list, canonicalJob(), and the fromEnv() doc comment in
 * sync; tests assert canonical text is unchanged for non-observability
 * configs, so growing the list cannot silently invalidate journals.
 */
const std::vector<std::string> &
observabilityKnobList()
{
    static const std::vector<std::string> knobs = {
        "engineMode",        "traceSpec",      "traceCapacity",
        "statSampleInterval", "profileEnabled", "profileStride",
        "deadlineCheckCycles",
    };
    return knobs;
}

/**
 * Canonical text dump of every simulation-affecting input of a job.
 * Adding a field here (when the simulator grows one) deliberately
 * invalidates old journals — that is the stale-detection working as
 * intended. Observability-only knobs (observabilityKnobList() above)
 * must NOT be added. Doubles print with %.17g so every distinct value
 * has a distinct canonical form.
 */
std::string
canonicalJob(const SweepJob &job)
{
    const MachineConfig &c = job.cfg;
    std::string s;
    auto add = [&](const char *k, const std::string &v) {
        s += k;
        s += '=';
        s += v;
        s += ';';
    };
    auto addU = [&](const char *k, uint64_t v) {
        add(k, std::to_string(v));
    };
    auto addD = [&](const char *k, double v) {
        add(k, strprintf("%.17g", v));
    };

    add("workload", job.workload);
    // The journal can attest registry workloads (name == code path)
    // but not arbitrary injected runners; mark the latter so their
    // records never alias a registry job's.
    add("runner", job.runner ? "custom" : "registry");
    add("kind", c.name());

    const SrfGeometry &g = c.srf;
    addU("srf.lanes", g.lanes);
    addU("srf.laneWords", g.laneWords);
    addU("srf.seqWidth", g.seqWidth);
    addU("srf.subArrays", g.subArrays);
    addU("srf.streamBufWords", g.streamBufWords);
    addU("srf.addrFifoSize", g.addrFifoSize);
    addU("srf.seqLatency", g.seqLatency);
    addU("srf.inLaneLatency", g.inLaneLatency);
    addU("srf.crossLaneLatency", g.crossLaneLatency);
    addU("srf.netPortsPerBank", g.netPortsPerBank);
    addU("srf.maxStreamSlots", g.maxStreamSlots);
    addU("srf.remoteQueueDepth", g.remoteQueueDepth);
    addU("srf.netTopology", static_cast<uint64_t>(g.netTopology));
    addU("srf.arbPolicy", static_cast<uint64_t>(g.arbPolicy));
    addU("srfMode", static_cast<uint64_t>(c.srfMode));

    const DramConfig &d = c.dram;
    addU("dram.capacityWords", d.capacityWords);
    addD("dram.wordsPerCycle", d.wordsPerCycle);
    addD("dram.randomCostFactor", d.randomCostFactor);
    addD("dram.smallFootprintCostFactor", d.smallFootprintCostFactor);
    addU("dram.accessLatency", d.accessLatency);
    addD("dram.burstTokens", d.burstTokens);
    addU("dram.rowBufferModel", d.rowBufferModel ? 1 : 0);
    addU("dram.rowWords", d.rowWords);
    addU("dram.banks", d.banks);
    addD("dram.rowHitCost", d.rowHitCost);
    addD("dram.rowMissCost", d.rowMissCost);

    const CacheConfig &ca = c.cache;
    addU("cache.capacityWords", ca.capacityWords);
    addU("cache.lineWords", ca.lineWords);
    addU("cache.ways", ca.ways);
    addU("cache.banks", ca.banks);
    addD("cache.wordsPerCycle", ca.wordsPerCycle);

    addU("mem.units", c.mem.units);
    addU("mem.stagingWords", c.mem.stagingWords);
    addU("mem.cacheEnabled", c.mem.cacheEnabled ? 1 : 0);

    const ClusterResources &cl = c.cluster;
    addU("cluster.aluSlots", cl.aluSlots);
    addU("cluster.divSlots", cl.divSlots);
    addU("cluster.commSlots", cl.commSlots);
    addU("cluster.sbufSlots", cl.sbufSlots);
    addU("cluster.spSlots", cl.spSlots);
    addU("cluster.idxIssuePerStream", cl.idxIssuePerStream);

    addU("inLaneSeparation", c.inLaneSeparation);
    addU("crossLaneSeparation", c.crossLaneSeparation);
    addU("kernelStartOverhead", c.kernelStartOverhead);
    addD("commOccupancy", c.commOccupancy);
    // statSampleInterval became an excluded observability knob after
    // journals containing this key already existed: the key stays, but
    // pinned to its default so every sampling setting produces the
    // same canonical text (and pre-existing journals — all written
    // with the default — resume without a version bump).
    addU("statSampleInterval", 0);
    addU("seed", c.seed);

    const FaultConfig &f = c.faults;
    addU("faults.enabled", f.enabled ? 1 : 0);
    addU("faults.seed", f.seed);
    addU("faults.eccEnabled", f.eccEnabled ? 1 : 0);
    addU("faults.retryLimit", f.retryLimit);
    addU("faults.retryBackoffBase", f.retryBackoffBase);
    addU("faults.opTimeoutCycles", f.opTimeoutCycles);
    addU("faults.degradeThreshold", f.degradeThreshold);
    addU("faults.watchdogInterval", f.watchdogInterval);
    addU("faults.watchdogStallIntervals", f.watchdogStallIntervals);
    addU("faults.schedule.size", f.schedule.size());
    for (const FaultScheduleEntry &e : f.schedule) {
        addU("fault.kind", static_cast<uint64_t>(e.kind));
        addU("fault.start", e.start);
        addU("fault.period", e.period);
        addU("fault.count", e.count);
        addU("fault.bits", e.bits);
        addU("fault.delayCycles", e.delayCycles);
        addU("fault.maxAddr", e.maxAddr);
        addU("fault.transient", e.transient ? 1 : 0);
    }

    addU("opts.repeats", job.opts.repeats);
    addU("opts.seed", job.opts.seed);
    addU("opts.separationOverride", job.opts.separationOverride);

    // External-dataset workloads depend on file content the workload
    // name cannot attest. Fold in the file's current size + FNV-1a so
    // a journal written against one version of the input is stale —
    // not silently spliced — when the file changes. Keys are appended
    // only for dataset-backed workloads, so built-in fingerprints
    // (including the golden values pinned in tests) are untouched.
    if (const ExternalDataset *ds = findExternalDataset(job.workload)) {
        uint64_t bytes = 0, fnv = 0;
        if (!fnv1aFile(ds->path, bytes, fnv))
            fatal("sweep fingerprint: dataset '%s' for workload '%s' "
                  "is unreadable; cannot attest job identity",
                  ds->path.c_str(), job.workload.c_str());
        add("dataset.path", ds->path);
        addU("dataset.bytes", bytes);
        add("dataset.fnv1a", strprintf("%016llx",
            static_cast<unsigned long long>(fnv)));
    }
    return s;
}

// ----------------------------------------------------------------------
// Checkpoints
// ----------------------------------------------------------------------

/**
 * mkdir -p for the checkpoint directory (util/snapshot.h). Failure is
 * fatal(): a sweep asked to checkpoint into an uncreatable directory
 * is a user error better caught before hours of simulation than
 * warned about per job.
 */
void
requireCheckpointDir(const std::string &dir)
{
    std::string err;
    if (!ensureCheckpointDir(dir, err))
        fatal("%s", err.c_str());
}

// ----------------------------------------------------------------------
// Journal records
// ----------------------------------------------------------------------

std::string
headerRecord(uint64_t sweepFp, size_t jobCount)
{
    JsonWriter w;
    w.beginObject();
    w.field("type", std::string("header"));
    w.field("version", kJournalVersion);
    w.field("sweep", sweepFp);
    w.field("jobs", static_cast<uint64_t>(jobCount));
    w.endObject();
    return w.str();
}

std::string
attemptRecord(uint64_t jobFp, const SweepOutcome &o, uint32_t attempt,
              double wallSeconds)
{
    JsonWriter w;
    w.beginObject();
    w.field("type", std::string("attempt"));
    w.field("job", jobFp);
    w.field("workload", o.workload);
    w.field("machine", std::string(machineKindName(o.kind)));
    w.field("attempt", static_cast<uint64_t>(attempt));
    w.field("status", std::string(runStatusName(o.status)));
    w.field("wall_s", wallSeconds);
    w.field("error", o.result.error);
    w.key("result").raw(o.resultText);
    w.endObject();
    return w.str();
}

/**
 * Rebuild the table-facing WorkloadResult fields from a journaled
 * result record. kernelBw is not reconstructed (its JSON form keeps
 * derived ratios, not the raw counters); the sweep tables and the JSON
 * export never need it — the export splices resultText verbatim.
 */
WorkloadResult
decodeResult(const SweepJournalRecord &rec, const SweepJob &job)
{
    WorkloadResult r;
    r.workload = job.workload;
    r.kind = job.cfg.kind;
    r.status = rec.status;
    JsonLineView v(rec.resultText);
    if (!v.valid())
        return r;
    v.getU64("cycles", r.cycles);
    v.getBool("correct", r.correct);
    v.getString("error", r.error);
    v.getU64("dram_words", r.dramWords);
    v.getU64("srf_seq_words", r.srfSeqWords);
    v.getU64("srf_idx_words", r.srfIdxWords);
    v.getU64("cache_words", r.cacheWords);
    std::string nested;
    if (v.getRaw("breakdown", nested)) {
        JsonLineView b(nested);
        b.getU64("loop_body", r.breakdown.loopBody);
        b.getU64("mem_stall", r.breakdown.memStall);
        b.getU64("srf_stall", r.breakdown.srfStall);
        b.getU64("overhead", r.breakdown.overhead);
    }
    if (v.getRaw("extra", nested)) {
        JsonLineView x(nested);
        // extra is a flat name->number map; recover it key by key.
        for (const auto &key : x.keys()) {
            double d = 0.0;
            if (x.getDouble(key, d))
                r.extra[key] = d;
        }
    }
    return r;
}

} // namespace

// ----------------------------------------------------------------------
// Public static helpers
// ----------------------------------------------------------------------

uint64_t
SweepRunner::fingerprint(const SweepJob &job)
{
    return fnv1a(canonicalJob(job));
}

std::string
SweepRunner::canonicalJobText(const SweepJob &job)
{
    return canonicalJob(job);
}

const std::vector<std::string> &
SweepRunner::observabilityKnobs()
{
    return observabilityKnobList();
}

uint64_t
SweepRunner::sweepFingerprint(const std::vector<SweepJob> &jobs)
{
    uint64_t h = kFnvBasis;
    h = fnv1a(std::to_string(kJournalVersion), h);
    for (const SweepJob &j : jobs)
        h = fnv1a(std::to_string(fingerprint(j)), h);
    return h;
}

bool
SweepRunner::replayable(RunStatus s)
{
    return s == RunStatus::Done || s == RunStatus::Stalled ||
           s == RunStatus::Failed;
}

SweepJournalLoad
SweepRunner::loadJournal(const std::string &path)
{
    SweepJournalLoad load;
    JsonlReadResult raw = readJsonl(path);
    if (!raw.ok()) {
        load.error = raw.error;
        return load;
    }
    load.tornFinalLine = raw.tornFinalLine;
    load.tornBytes = raw.tornBytes;
    load.blankLines = raw.blankLines;
    if (raw.records.empty()) {
        load.error =
            strprintf("'%s' has no journal header", path.c_str());
        return load;
    }

    JsonLineView head(raw.records[0]);
    std::string type;
    uint64_t version = 0;
    uint64_t jobCount = 0;
    if (!head.valid() || !head.getString("type", type) ||
        type != "header" || !head.getU64("version", version) ||
        !head.getU64("sweep", load.sweepFingerprint) ||
        !head.getU64("jobs", jobCount)) {
        load.error = strprintf("'%s' line 1 is not a journal header",
                               path.c_str());
        return load;
    }
    if (version != kJournalVersion) {
        load.error = strprintf(
            "'%s' journal version %llu != supported %llu", path.c_str(),
            static_cast<unsigned long long>(version),
            static_cast<unsigned long long>(kJournalVersion));
        return load;
    }
    load.jobCount = static_cast<size_t>(jobCount);

    for (size_t i = 1; i < raw.records.size(); i++) {
        JsonLineView v(raw.records[i]);
        SweepJournalRecord rec;
        uint64_t attempt = 1;
        std::string status;
        if (!v.valid() || !v.getString("type", type) ||
            type != "attempt" || !v.getU64("job", rec.job) ||
            !v.getString("workload", rec.workload) ||
            !v.getString("machine", rec.machine) ||
            !v.getU64("attempt", attempt) ||
            !v.getString("status", status) ||
            !v.getRaw("result", rec.resultText)) {
            load.error = strprintf(
                "'%s' line %zu is not a journal attempt record",
                path.c_str(), i + 1);
            return load;
        }
        if (!runStatusFromName(status, rec.status)) {
            load.error =
                strprintf("'%s' line %zu has unknown status '%s'",
                          path.c_str(), i + 1, status.c_str());
            return load;
        }
        rec.attempt = static_cast<uint32_t>(attempt);
        v.getDouble("wall_s", rec.wallSeconds);
        v.getString("error", rec.error);
        load.attempts[rec.job]++;
        load.latest[rec.job] = std::move(rec);
    }
    load.ok = true;
    return load;
}

// ----------------------------------------------------------------------
// SweepRunner
// ----------------------------------------------------------------------

SweepRunner::SweepRunner(unsigned threads)
{
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? hw : 1;
    }
    threads_ = threads;
}

std::vector<SweepJob>
SweepRunner::matrix(const std::vector<std::string> &workloads,
                    const std::vector<MachineKind> &kinds,
                    const WorkloadOptions &opts)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * kinds.size());
    for (const auto &w : workloads) {
        for (MachineKind k : kinds) {
            SweepJob j;
            j.workload = w;
            j.cfg = MachineConfig::make(k).fromEnv();
            j.opts = opts;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs, ProgressFn progress)
{
    return run(jobs, SweepPolicy(), std::move(progress));
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const SweepPolicy &policy, ProgressFn progress)
{
    // Force the lazy registries into existence before any worker
    // starts. Magic statics are thread-safe, but initializing them
    // here keeps worker wall times honest and the first jobs fast.
    workloadRegistry();
    Tracer::instance();
    Profiler::instance();

    std::vector<SweepOutcome> out(jobs.size());
    timing_ = SweepTiming();
    timing_.threads = std::max(1u,
        std::min<unsigned>(threads_, jobs.size() ? jobs.size() : 1));

    std::vector<uint64_t> fps(jobs.size());
    for (size_t i = 0; i < jobs.size(); i++)
        fps[i] = fingerprint(jobs[i]);
    const uint64_t sweepFp = sweepFingerprint(jobs);

    const bool checkpointing = !policy.checkpointDir.empty();
    if (checkpointing)
        requireCheckpointDir(policy.checkpointDir);
    std::atomic<uint64_t> ckptSaves{0}, ckptRestores{0}, ckptCycles{0};

    // --- journal: load for resume, then (re)open for appending ------
    JsonlWriter journal;
    std::mutex journalMu;
    if (!policy.journalPath.empty()) {
        struct stat st;
        const bool exists = ::stat(policy.journalPath.c_str(), &st) == 0;
        bool appendExisting = false;
        if (policy.resume && exists) {
            SweepJournalLoad load = loadJournal(policy.journalPath);
            if (!load.ok)
                fatal("--resume: cannot use journal %s: %s",
                      policy.journalPath.c_str(), load.error.c_str());
            if (load.sweepFingerprint != sweepFp ||
                load.jobCount != jobs.size())
                fatal("--resume: journal %s is stale: it records sweep "
                      "%016llx over %zu job(s), but the submitted "
                      "matrix is sweep %016llx over %zu job(s). The "
                      "workloads, configuration, input datasets, or "
                      "code have changed since it was written; delete "
                      "the journal (or drop --resume) to start fresh.",
                      policy.journalPath.c_str(),
                      static_cast<unsigned long long>(
                          load.sweepFingerprint),
                      load.jobCount,
                      static_cast<unsigned long long>(sweepFp),
                      jobs.size());
            if (load.tornFinalLine) {
                // Drop the torn bytes so the next append starts on a
                // fresh line instead of gluing onto the partial record
                // (which would corrupt the journal for later readers).
                // The torn line is the unterminated tail, so everything
                // up to the last '\n' is intact.
                off_t newSize = st.st_size -
                    static_cast<off_t>(load.tornBytes);
                if (::truncate(policy.journalPath.c_str(), newSize) != 0)
                    fatal("--resume: cannot trim torn record from %s: "
                          "%s", policy.journalPath.c_str(),
                          std::strerror(errno));
                ISRF_WARN("sweep journal %s: dropped torn final record "
                          "(%zu bytes)", policy.journalPath.c_str(),
                          load.tornBytes);
                timing_.tornRecordsDropped = 1;
                timing_.tornBytesDropped = load.tornBytes;
            }
            timing_.journalLinesSkipped = load.blankLines;
            for (size_t i = 0; i < jobs.size(); i++) {
                auto it = load.latest.find(fps[i]);
                if (it == load.latest.end())
                    continue;
                const SweepJournalRecord &rec = it->second;
                if (!replayable(rec.status))
                    continue;  // TimedOut/Cancelled: re-run fresh
                SweepOutcome &o = out[i];
                o.workload = jobs[i].workload;
                o.kind = jobs[i].cfg.kind;
                o.status = rec.status;
                o.attempts = rec.attempt;
                o.fromJournal = true;
                o.resultText = rec.resultText;
                o.result = decodeResult(rec, jobs[i]);
                timing_.replayed++;
                // The job finished before the interrupted sweep died;
                // any checkpoint it left behind is dead weight.
                if (checkpointing)
                    ::unlink(checkpointFilePath(policy.checkpointDir,
                                            fps[i]).c_str());
            }
            appendExisting = true;
        }
        if (!journal.open(policy.journalPath, appendExisting))
            fatal("cannot open sweep journal %s for writing",
                  policy.journalPath.c_str());
        if (!appendExisting && !journal.append(headerRecord(
                sweepFp, jobs.size())))
            fatal("cannot write header to sweep journal %s",
                  policy.journalPath.c_str());
    }

    std::mutex progressMu;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};

    auto note = [&](size_t idx, bool finished) {
        if (!progress)
            return;
        std::lock_guard<std::mutex> lock(progressMu);
        progress(jobs[idx], finished,
                 finished ? done.load() : done.load(), jobs.size());
    };

    const uint32_t maxAttempts = 1 + policy.retries;

    // One job, possibly several attempts. Runs on a worker thread; all
    // state it touches is the job's own outcome slot plus the
    // mutex-guarded journal.
    auto runJob = [&](size_t idx) {
        const SweepJob &job = jobs[idx];
        SweepOutcome &o = out[idx];
        o.workload = job.workload;
        o.kind = job.cfg.kind;
        // Deterministic per-job jitter: same backoff schedule on every
        // rerun of the same sweep, different schedules across jobs.
        Rng jitter(fps[idx] ^ 0x9e3779b97f4a7c15ull);

        // One context per job, shared across attempts: a TimedOut
        // attempt's checkpoint lets its retry resume mid-flight.
        std::unique_ptr<CheckpointContext> ckpt;
        if (checkpointing)
            ckpt = std::make_unique<CheckpointContext>(
                checkpointFilePath(policy.checkpointDir, fps[idx]),
                fps[idx], policy.checkpointEveryCycles);

        for (uint32_t attempt = 1; attempt <= maxAttempts; attempt++) {
            CancelToken token;
            token.chainTo(policy.cancel);
            if (policy.timeoutSeconds > 0)
                token.setTimeout(policy.timeoutSeconds);
            WorkloadOptions opts = job.opts;
            opts.cancel = &token;
            if (ckpt)
                opts.checkpoint = ckpt.get();

            auto t0 = std::chrono::steady_clock::now();
            WorkloadResult r;
            try {
                r = job.runner ? job.runner(job.cfg, opts)
                               : runWorkload(job.workload, job.cfg,
                                             opts);
            } catch (const std::exception &e) {
                // A throwing job must not take the pool down: record
                // a Failed outcome and keep draining the queue.
                r = WorkloadResult();
                r.workload = job.workload;
                r.kind = job.cfg.kind;
                r.status = RunStatus::Failed;
                r.error = e.what();
                ISRF_WARN("sweep job '%s' on %s threw: %s",
                          job.workload.c_str(), job.cfg.name().c_str(),
                          e.what());
            } catch (...) {
                r = WorkloadResult();
                r.workload = job.workload;
                r.kind = job.cfg.kind;
                r.status = RunStatus::Failed;
                r.error = "unknown exception";
                ISRF_WARN("sweep job '%s' on %s threw a non-std "
                          "exception", job.workload.c_str(),
                          job.cfg.name().c_str());
            }
            double wall = secondsSince(t0);

            o.result = std::move(r);
            o.status = o.result.status;
            o.attempts = attempt;
            o.wallSeconds += wall;
            {
                Profiler::Scope prof(Profiler::instance(),
                                     Profiler::Report);
                o.resultText = resultJson(o.result);
            }

            if (journal.isOpen()) {
                Profiler::Scope prof(Profiler::instance(),
                                     Profiler::Journal);
                std::lock_guard<std::mutex> lock(journalMu);
                journal.append(attemptRecord(fps[idx], o, attempt,
                                             wall));
            }

            // Done / Cancelled / Failed are final; TimedOut / Stalled
            // may be transient (host overload, tight deadline) and
            // earn a retry while budget remains.
            if (o.status != RunStatus::TimedOut &&
                o.status != RunStatus::Stalled)
                break;
            if (attempt == maxAttempts)
                break;
            if (policy.cancel && policy.cancel->cancelRequested())
                break;

            double delay = policy.backoffBaseSeconds *
                static_cast<double>(1ull << (attempt - 1));
            delay = std::min(delay, policy.backoffCapSeconds);
            delay *= 0.5 + jitter.uniform();  // +-50% jitter
            ISRF_WARN("sweep job '%s' on %s %s (attempt %u/%u); "
                      "retrying in %.2fs", job.workload.c_str(),
                      job.cfg.name().c_str(),
                      runStatusName(o.status), attempt, maxAttempts,
                      delay);
            // Sleep in small slices so a sweep-level cancel is not
            // held up by a long backoff.
            auto deadline = std::chrono::steady_clock::now() +
                std::chrono::duration<double>(delay);
            while (std::chrono::steady_clock::now() < deadline) {
                if (policy.cancel && policy.cancel->cancelRequested())
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        }

        if (ckpt) {
            ckptSaves.fetch_add(ckpt->saves());
            ckptRestores.fetch_add(ckpt->restores());
            ckptCycles.fetch_add(ckpt->executedCycles());
            // A replayable outcome is journaled for good: its
            // checkpoint will never be read again. TimedOut/Cancelled
            // keep theirs so the next sweep resumes mid-flight.
            if (replayable(o.status))
                ckpt->removeFile();
        }
    };

    // Index-addressed result slots make submission-order output
    // trivial: worker i never races worker j on out[k].
    auto worker = [&]() {
        for (;;) {
            size_t idx = next.fetch_add(1);
            if (idx >= jobs.size())
                return;
            if (out[idx].fromJournal) {
                done.fetch_add(1);
                note(idx, true);
                continue;
            }
            note(idx, false);
            runJob(idx);
            done.fetch_add(1);
            note(idx, true);
        }
    };

    auto sweepStart = std::chrono::steady_clock::now();
    if (timing_.threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(timing_.threads);
        for (unsigned t = 0; t < timing_.threads; t++)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    timing_.wallSeconds = secondsSince(sweepStart);
    for (const auto &o : out)
        if (!o.fromJournal)
            timing_.sumJobSeconds += o.wallSeconds;
    timing_.checkpointSaves = ckptSaves.load();
    timing_.checkpointRestores = ckptRestores.load();
    timing_.simCyclesExecuted = ckptCycles.load();
    return out;
}

} // namespace isrf
