/**
 * @file
 * Comparator for `BENCH_*.json` perf records (schema
 * isrf-perf-record-v1, written by bench_sweep --bench-json).
 *
 * perfDiff() compares the metrics of a current record against a
 * baseline with a configurable noise model and classifies each metric
 * as Regression / Improvement / Noise / Missing. Wall-clock metrics
 * are lower-is-better; sim-cycles-per-second is higher-is-better. A
 * change only counts as a regression when it exceeds BOTH the
 * fractional threshold and (for seconds metrics) an absolute floor —
 * a 30% blowup of a 3 ms job is scheduler noise, not a regression.
 *
 * The tools/perf_diff CLI wraps this for CI: exit 0 on no regression,
 * 1 on regression (or a metric that vanished from the current record),
 * 2 on unreadable/invalid input.
 */
#ifndef ISRF_DRIVER_PERF_DIFF_H
#define ISRF_DRIVER_PERF_DIFF_H

#include <string>
#include <vector>

namespace isrf {

/** Perf-record schema tag accepted by perfDiff(). */
extern const char *const kPerfRecordSchema;

/** Noise model for perfDiff(). */
struct PerfDiffOptions
{
    /**
     * Fractional change treated as significant (0.25 = 25%). Applied
     * symmetrically: beyond it in the bad direction is Regression, in
     * the good direction Improvement, else Noise.
     */
    double threshold = 0.25;

    /**
     * Absolute floor for seconds-valued metrics: a change smaller than
     * this many seconds is Noise regardless of its fraction.
     */
    double minSeconds = 0.05;
};

enum class PerfDeltaKind : uint8_t {
    Regression,         ///< significantly worse than baseline
    Improvement,        ///< significantly better than baseline
    Noise,              ///< within the noise model
    MissingInCurrent,   ///< baseline metric absent now (treated as failure)
    MissingInBaseline,  ///< new metric, nothing to compare (informational)
};

const char *perfDeltaKindName(PerfDeltaKind k);

/** One compared metric. */
struct PerfDelta
{
    std::string metric;  ///< e.g. "totals.wall_seconds", "job[Sort/ISRF4].wall_seconds"
    double baseline = 0.0;
    double current = 0.0;
    /**
     * Signed badness fraction: positive = worse, negative = better,
     * already direction-normalized (a cycles/sec drop is positive).
     */
    double frac = 0.0;
    PerfDeltaKind kind = PerfDeltaKind::Noise;
};

struct PerfDiffResult
{
    std::vector<PerfDelta> deltas;
    /** Non-empty when either record failed to parse. */
    std::string error;

    bool ok() const { return error.empty(); }

    /** True when any delta is Regression or MissingInCurrent. */
    bool regression() const;

    /** Human-readable multi-line report of every delta. */
    std::string summary() const;
};

/** Compare two serialized perf records. */
PerfDiffResult perfDiff(const std::string &baselineJson,
                        const std::string &currentJson,
                        const PerfDiffOptions &opts = {});

/** Compare two perf-record files. */
PerfDiffResult perfDiffFiles(const std::string &baselinePath,
                             const std::string &currentPath,
                             const PerfDiffOptions &opts = {});

/**
 * Split a serialized JSON array into its top-level element texts
 * (JsonWriter-style single-line input). @return false when `raw` is
 * not a JSON array.
 */
bool splitJsonArray(const std::string &raw,
                    std::vector<std::string> &out);

} // namespace isrf

#endif // ISRF_DRIVER_PERF_DIFF_H
