#include "driver/perf_diff.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "util/jsonl.h"
#include "util/log.h"

namespace isrf {

const char *const kPerfRecordSchema = "isrf-perf-record-v1";

const char *
perfDeltaKindName(PerfDeltaKind k)
{
    switch (k) {
      case PerfDeltaKind::Regression: return "REGRESSION";
      case PerfDeltaKind::Improvement: return "improvement";
      case PerfDeltaKind::Noise: return "within-noise";
      case PerfDeltaKind::MissingInCurrent: return "MISSING-IN-CURRENT";
      case PerfDeltaKind::MissingInBaseline: return "new-metric";
    }
    return "?";
}

bool
splitJsonArray(const std::string &raw, std::vector<std::string> &out)
{
    out.clear();
    size_t i = 0, n = raw.size();
    while (i < n && isspace(static_cast<unsigned char>(raw[i])))
        i++;
    if (i >= n || raw[i] != '[')
        return false;
    i++;
    int depth = 0;
    bool inStr = false, esc = false;
    size_t start = std::string::npos;
    for (; i < n; i++) {
        char c = raw[i];
        if (inStr) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (isspace(static_cast<unsigned char>(c)) && depth == 0 &&
            start == std::string::npos)
            continue;
        if (depth == 0 && (c == ',' || c == ']')) {
            if (start != std::string::npos) {
                out.push_back(raw.substr(start, i - start));
                start = std::string::npos;
            } else if (c == ',') {
                return false;  // empty element
            }
            if (c == ']')
                return true;
            continue;
        }
        if (start == std::string::npos)
            start = i;
        if (c == '"')
            inStr = true;
        else if (c == '{' || c == '[')
            depth++;
        else if (c == '}' || c == ']')
            depth--;
    }
    return false;  // unterminated
}

namespace {

/** Strip trailing newline(s) so the whole file is one LineView line. */
std::string
oneLine(const std::string &text)
{
    size_t end = text.find_first_of("\r\n");
    return end == std::string::npos ? text : text.substr(0, end);
}

/** Flattened metric -> value map extracted from one perf record. */
struct Metrics
{
    std::map<std::string, double> values;
    std::string error;

    bool ok() const { return error.empty(); }
};

void
addTotals(const std::string &raw, Metrics &m)
{
    JsonLineView totals(raw);
    if (!totals.valid()) {
        m.error = "'totals' is not a JSON object";
        return;
    }
    double v = 0.0;
    for (const char *key :
         {"wall_seconds", "sum_job_seconds", "sim_cycles_per_second"})
        if (totals.getDouble(key, v))
            m.values[std::string("totals.") + key] = v;
}

void
addJobs(const std::string &raw, Metrics &m)
{
    std::vector<std::string> elems;
    if (!splitJsonArray(raw, elems)) {
        m.error = "'jobs' is not a JSON array";
        return;
    }
    for (const std::string &e : elems) {
        JsonLineView job(e);
        if (!job.valid()) {
            m.error = "jobs[] element is not a JSON object";
            return;
        }
        // A replayed job's wall time is journal-read time, not
        // simulation time — comparing it against a fresh run (or vice
        // versa) would be meaningless, so replayed jobs are dropped
        // from the metric set on whichever side they appear.
        bool replayed = false;
        if (job.getBool("replayed", replayed) && replayed)
            continue;
        std::string workload, machine;
        double wall = 0.0;
        if (!job.getString("workload", workload) ||
            !job.getString("machine", machine) ||
            !job.getDouble("wall_seconds", wall))
            continue;
        m.values["job[" + workload + "/" + machine + "].wall_seconds"] =
            wall;
    }
}

Metrics
extractMetrics(const std::string &recordJson, const char *label)
{
    Metrics m;
    JsonLineView rec(oneLine(recordJson));
    if (!rec.valid()) {
        m.error = strprintf("%s: not a JSON object", label);
        return m;
    }
    std::string schema;
    if (!rec.getString("schema", schema) || schema != kPerfRecordSchema) {
        m.error = strprintf("%s: missing or unsupported schema "
                            "(expected \"%s\")", label, kPerfRecordSchema);
        return m;
    }
    std::string raw;
    if (rec.getRaw("totals", raw))
        addTotals(raw, m);
    if (m.ok() && rec.getRaw("jobs", raw))
        addJobs(raw, m);
    if (m.ok() && m.values.empty())
        m.error = strprintf("%s: no comparable metrics", label);
    if (!m.ok())
        m.error = strprintf("%s (%s)", m.error.c_str(), label);
    return m;
}

/** True for metrics measured in seconds (the minSeconds floor applies). */
bool
secondsMetric(const std::string &name)
{
    return name.size() >= 8 &&
        name.compare(name.size() - 8, 8, "_seconds") == 0;
}

/** True for metrics where larger is better. */
bool
higherIsBetter(const std::string &name)
{
    return name == "totals.sim_cycles_per_second";
}

PerfDelta
compareMetric(const std::string &name, double base, double cur,
              const PerfDiffOptions &opts)
{
    PerfDelta d;
    d.metric = name;
    d.baseline = base;
    d.current = cur;
    // Direction-normalize: frac > 0 always means "got worse".
    double diff = higherIsBetter(name) ? base - cur : cur - base;
    d.frac = base != 0.0 ? diff / std::fabs(base) : 0.0;
    bool significant = std::fabs(d.frac) > opts.threshold;
    if (secondsMetric(name) && std::fabs(cur - base) < opts.minSeconds)
        significant = false;
    if (!significant)
        d.kind = PerfDeltaKind::Noise;
    else if (d.frac > 0)
        d.kind = PerfDeltaKind::Regression;
    else
        d.kind = PerfDeltaKind::Improvement;
    return d;
}

} // namespace

bool
PerfDiffResult::regression() const
{
    for (const PerfDelta &d : deltas)
        if (d.kind == PerfDeltaKind::Regression ||
            d.kind == PerfDeltaKind::MissingInCurrent)
            return true;
    return false;
}

std::string
PerfDiffResult::summary() const
{
    if (!ok())
        return "perf_diff error: " + error + "\n";
    std::string out;
    for (const PerfDelta &d : deltas) {
        if (d.kind == PerfDeltaKind::MissingInCurrent ||
            d.kind == PerfDeltaKind::MissingInBaseline) {
            out += strprintf("%-20s %s\n",
                             perfDeltaKindName(d.kind), d.metric.c_str());
            continue;
        }
        out += strprintf("%-20s %s: %.6g -> %.6g (%+.1f%%)\n",
                         perfDeltaKindName(d.kind), d.metric.c_str(),
                         d.baseline, d.current, 100.0 * d.frac);
    }
    return out;
}

PerfDiffResult
perfDiff(const std::string &baselineJson, const std::string &currentJson,
         const PerfDiffOptions &opts)
{
    PerfDiffResult res;
    Metrics base = extractMetrics(baselineJson, "baseline");
    if (!base.ok()) {
        res.error = base.error;
        return res;
    }
    Metrics cur = extractMetrics(currentJson, "current");
    if (!cur.ok()) {
        res.error = cur.error;
        return res;
    }
    for (const auto &kv : base.values) {
        auto it = cur.values.find(kv.first);
        if (it == cur.values.end()) {
            PerfDelta d;
            d.metric = kv.first;
            d.baseline = kv.second;
            d.kind = PerfDeltaKind::MissingInCurrent;
            res.deltas.push_back(d);
            continue;
        }
        res.deltas.push_back(
            compareMetric(kv.first, kv.second, it->second, opts));
    }
    for (const auto &kv : cur.values) {
        if (base.values.count(kv.first))
            continue;
        PerfDelta d;
        d.metric = kv.first;
        d.current = kv.second;
        d.kind = PerfDeltaKind::MissingInBaseline;
        res.deltas.push_back(d);
    }
    return res;
}

PerfDiffResult
perfDiffFiles(const std::string &baselinePath,
              const std::string &currentPath,
              const PerfDiffOptions &opts)
{
    auto slurp = [](const std::string &path, std::string &out) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return false;
        char buf[65536];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
            out.append(buf, got);
        bool ok = !std::ferror(f);
        std::fclose(f);
        return ok;
    };
    PerfDiffResult res;
    std::string base, cur;
    if (!slurp(baselinePath, base)) {
        res.error = strprintf("cannot read baseline '%s'",
                              baselinePath.c_str());
        return res;
    }
    if (!slurp(currentPath, cur)) {
        res.error = strprintf("cannot read current '%s'",
                              currentPath.c_str());
        return res;
    }
    return perfDiff(base, cur, opts);
}

} // namespace isrf
