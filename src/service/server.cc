#include "service/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "sim/profiler.h"
#include "util/json.h"
#include "util/log.h"
#include "util/random.h"
#include "workloads/workload.h"

namespace isrf {

namespace {

constexpr int kPollMs = 100;  ///< listener/connection wake-up tick

/**
 * Per-connection receive-buffer cap: the longest unterminated request
 * line the server will accumulate before rejecting the connection.
 * Legitimate requests are well under 1 KiB; 1 MiB leaves room for any
 * future request shape while bounding what one peer can pin.
 */
constexpr size_t kMaxRequestBytes = 1 << 20;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Write all of `data` + '\n'. @return false on a dead peer. */
bool
sendLine(int fd, const std::string &data)
{
    std::string out = data;
    out += '\n';
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** A WorkloadResult for a request that never (fully) ran. */
WorkloadResult
syntheticResult(const SweepJob &job, RunStatus status,
                const std::string &error)
{
    WorkloadResult r;
    r.workload = job.workload;
    r.kind = job.cfg.kind;
    r.status = status;
    r.error = error;
    return r;
}

} // namespace

SweepService::~SweepService()
{
    requestStop();
    shutdown();
}

bool
SweepService::buildJob(const ServiceRequest &req, SweepJob &out,
                       std::string &err) const
{
    MachineKind kind;
    if (!machineKindFromName(req.machine, kind)) {
        err = "unknown machine \"" + req.machine + "\"";
        return false;
    }
    out.workload = req.workload;
    out.cfg = configs_.at(kind);
    out.opts.repeats = req.repeats;
    out.opts.seed = req.seed;
    if (req.workload == kHangWorkload) {
        if (!cfg_.allowTestJobs) {
            err = "unknown workload \"" + req.workload +
                  "\"; registered: " + workloadNamesJoined();
            return false;
        }
        // Deadline-enforcement probe: never finishes on its own, but
        // honors the token exactly like an engine-driven run (a real
        // workload polls through Engine::pollCancel; this one polls
        // directly). Custom runners get their own fingerprint class,
        // so it can never alias a registry workload in the store.
        out.runner = [](const MachineConfig &cfg,
                        const WorkloadOptions &opts) {
            WorkloadResult r;
            r.workload = kHangWorkload;
            r.kind = cfg.kind;
            r.error = "synthetic hanging job";
            for (;;) {
                if (opts.cancel) {
                    if (opts.cancel->cancelRequested()) {
                        r.status = RunStatus::Cancelled;
                        break;
                    }
                    if (opts.cancel->deadlineExpired()) {
                        r.status = RunStatus::TimedOut;
                        break;
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            return r;
        };
        return true;
    }
    if (!workloadRegistry().count(req.workload)) {
        err = "unknown workload \"" + req.workload +
              "\"; registered: " + workloadNamesJoined();
        return false;
    }
    return true;
}

bool
SweepService::start(const ServiceConfig &cfg)
{
    cfg_ = cfg;
    if (cfg_.workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        cfg_.workers = hw ? hw : 1;
    }
    if (cfg_.socketPath.empty()) {
        std::fprintf(stderr, "isrf_sweepd: no socket path\n");
        return false;
    }

    // The one environment read point (PR-3 isolation rule): resolve
    // every machine kind here, on the starting thread. Workers only
    // ever copy these.
    for (MachineKind k : {MachineKind::Base, MachineKind::ISRF1,
                          MachineKind::ISRF4, MachineKind::Cache})
        configs_.emplace(k, MachineConfig::make(k).fromEnv());
    workloadRegistry();
    Profiler::instance();

    if (!cfg_.checkpointDir.empty()) {
        std::string err;
        if (!ensureCheckpointDir(cfg_.checkpointDir, err)) {
            std::fprintf(stderr, "isrf_sweepd: %s\n", err.c_str());
            return false;
        }
    }

    if (!store_.open(cfg_.storePath, cfg_.storeMaxBytes)) {
        std::fprintf(stderr, "isrf_sweepd: cannot open result store "
                     "'%s'\n", cfg_.storePath.c_str());
        return false;
    }
    const ResultStoreStats ss = store_.stats();
    if (ss.persistent)
        std::fprintf(stderr, "isrf_sweepd: store '%s': %zu entries "
                     "recovered (%llu quarantined%s)\n",
                     cfg_.storePath.c_str(), ss.recoveredEntries,
                     static_cast<unsigned long long>(ss.quarantined),
                     ss.tornTailDropped ? ", torn tail dropped" : "");

    // --- Unix-domain listener ---------------------------------------
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "isrf_sweepd: socket path too long: %s\n",
                     cfg_.socketPath.c_str());
        return false;
    }
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
        std::fprintf(stderr, "isrf_sweepd: socket(): %s\n",
                     std::strerror(errno));
        return false;
    }
    ::unlink(cfg_.socketPath.c_str());  // stale socket from a crash
    if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unixFd_, 64) != 0) {
        std::fprintf(stderr, "isrf_sweepd: cannot listen on '%s': %s\n",
                     cfg_.socketPath.c_str(), std::strerror(errno));
        ::close(unixFd_);
        unixFd_ = -1;
        return false;
    }

    // --- optional loopback TCP listener -----------------------------
    if (cfg_.tcpPort > 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0) {
            std::fprintf(stderr, "isrf_sweepd: socket(tcp): %s\n",
                         std::strerror(errno));
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in in4;
        std::memset(&in4, 0, sizeof(in4));
        in4.sin_family = AF_INET;
        in4.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        in4.sin_port = htons(static_cast<uint16_t>(cfg_.tcpPort));
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&in4),
                   sizeof(in4)) != 0 ||
            ::listen(tcpFd_, 64) != 0) {
            std::fprintf(stderr, "isrf_sweepd: cannot listen on "
                         "127.0.0.1:%d: %s\n", cfg_.tcpPort,
                         std::strerror(errno));
            ::close(tcpFd_);
            tcpFd_ = -1;
            return false;
        }
    }

    started_ = true;
    for (unsigned i = 0; i < cfg_.workers; i++)
        workers_.emplace_back([this] { workerLoop(); });
    acceptors_.emplace_back([this] { acceptLoop(unixFd_); });
    if (tcpFd_ >= 0)
        acceptors_.emplace_back([this] { acceptLoop(tcpFd_); });
    return true;
}

void
SweepService::requestDrain()
{
    draining_.store(true, std::memory_order_relaxed);
}

void
SweepService::requestStop()
{
    draining_.store(true, std::memory_order_relaxed);
    // One relaxed atomic store, so this path (minus shutdown's joins)
    // is usable from a signal handler; running jobs observe it at
    // their next cycle-boundary poll and exit Cancelled.
    stopToken_.cancel();
}

void
SweepService::requestCheckpointAll()
{
    std::lock_guard<std::mutex> lock(ckptMu_);
    for (CheckpointContext *c : activeCheckpoints_)
        c->requestSave();
}

size_t
SweepService::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(qmu_);
    return inflight_.size();
}

ServiceCounters
SweepService::counters() const
{
    std::lock_guard<std::mutex> lock(cmu_);
    return counters_;
}

void
SweepService::shutdown()
{
    if (!started_)
        return;
    draining_.store(true, std::memory_order_relaxed);
    // Drain: every admitted job completes (a stop token cancellation,
    // if requested, just makes that fast) before any thread is torn
    // down — connection threads are still alive to deliver responses.
    while (pendingJobs() != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stopping_.store(true, std::memory_order_relaxed);
    qcv_.notify_all();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    for (auto &t : acceptors_)
        t.join();
    acceptors_.clear();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (auto &t : connections_)
            t.join();
        connections_.clear();
    }
    if (unixFd_ >= 0)
        ::close(unixFd_);
    unixFd_ = -1;
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    tcpFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());
    store_.close();
    started_ = false;
}

void
SweepService::acceptLoop(int listenFd)
{
    while (!draining_.load(std::memory_order_relaxed) &&
           !stopping_.load(std::memory_order_relaxed)) {
        pollfd p{listenFd, POLLIN, 0};
        int rc = ::poll(&p, 1, kPollMs);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0 || !(p.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        {
            std::lock_guard<std::mutex> lock(cmu_);
            counters_.connections++;
        }
        liveConnections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(connMu_);
        connections_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
SweepService::serveConnection(int fd)
{
    std::string buf;
    char chunk[1 << 14];
    double idleMs = 0.0;
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd p{fd, POLLIN, 0};
        int rc = ::poll(&p, 1, kPollMs);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0) {
            // No bytes this tick: charge the poll interval against the
            // idle budget. Any received data resets it below.
            idleMs += kPollMs;
            if (cfg_.idleTimeoutMs > 0.0 &&
                idleMs >= cfg_.idleTimeoutMs) {
                {
                    std::lock_guard<std::mutex> lock(cmu_);
                    counters_.idleDisconnects++;
                }
                if (cfg_.verbose)
                    std::fprintf(stderr, "isrf_sweepd: closing idle "
                                 "connection (%.0f ms)\n", idleMs);
                break;
            }
            continue;
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;  // peer closed
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            break;
        }
        idleMs = 0.0;
        buf.append(chunk, static_cast<size_t>(n));
        // Admission control for bytes: a peer may not stream an
        // unbounded line into our memory. Past the cap with no
        // newline in sight, answer with a structured error and hang
        // up — the line could never parse anyway.
        if (buf.size() > kMaxRequestBytes &&
            buf.find('\n') == std::string::npos) {
            {
                std::lock_guard<std::mutex> lock(cmu_);
                counters_.requestTooLarge++;
            }
            sendLine(fd, errorResponseJson(
                "", "request_too_large",
                strprintf("request line exceeds %zu bytes",
                          kMaxRequestBytes)));
            break;
        }
        size_t nl;
        bool dead = false;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (!sendLine(fd, handleLine(line))) {
                dead = true;
                break;
            }
        }
        if (dead)
            break;
    }
    ::close(fd);
    liveConnections_.fetch_sub(1, std::memory_order_relaxed);
}

std::string
SweepService::handleLine(const std::string &line)
{
    {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.requests++;
    }
    ServiceRequest req;
    std::string err;
    if (!parseServiceRequest(line, req, err)) {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.badRequests++;
        return errorResponseJson(req.id, "bad_request", err);
    }
    if (req.op == "ping")
        return pongResponseJson(req.id,
                                draining_.load(
                                    std::memory_order_relaxed));
    if (req.op == "stats")
        return statsResponseLocked(req.id);
    return handleRun(req);
}

std::string
SweepService::handleRun(const ServiceRequest &req)
{
    {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.runRequests++;
    }
    if (draining_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.rejectedDraining++;
        return errorResponseJson(req.id, "draining",
                                 "server is draining; not accepting "
                                 "new jobs");
    }

    SweepJob job;
    std::string err;
    if (!buildJob(req, job, err)) {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.badRequests++;
        // Prefix match: the workload message now carries the full
        // registry listing, which could itself contain "machine"
        // (e.g. a dataset stem), so substring search is not safe.
        const char *code = err.rfind("unknown machine", 0) == 0
                               ? "unknown_machine"
                               : "unknown_workload";
        return errorResponseJson(req.id, code, err);
    }
    const uint64_t fp = SweepRunner::fingerprint(job);

    // Fast path: serve stored bytes. No Machine is constructed, no
    // queue is entered — this is what keeps hot-hit latency orders of
    // magnitude below cold-compute latency.
    StoredResult hit;
    if (store_.get(fp, hit)) {
        {
            std::lock_guard<std::mutex> lock(cmu_);
            counters_.storeHits++;
        }
        if (cfg_.verbose)
            std::fprintf(stderr, "isrf_sweepd: hit  %s [%s/%s]\n",
                         fingerprintHex(fp).c_str(),
                         hit.workload.c_str(), hit.machine.c_str());
        return resultResponseJson(req.id, fp, /*cached=*/true,
                                  runStatusName(hit.status),
                                  /*attempts=*/0, /*wallSeconds=*/0.0,
                                  hit.resultText);
    }

    // Admission: coalesce onto an identical in-flight job, else take a
    // bounded queue slot, else shed load explicitly.
    JobPtr p;
    {
        std::lock_guard<std::mutex> lock(qmu_);
        auto it = inflight_.find(fp);
        if (it != inflight_.end()) {
            p = it->second;
            std::lock_guard<std::mutex> clock(cmu_);
            counters_.coalesced++;
        } else if (queue_.size() >= cfg_.queueMax) {
            {
                std::lock_guard<std::mutex> clock(cmu_);
                counters_.rejectedOverload++;
            }
            return errorResponseJson(
                req.id, "overloaded",
                strprintf("admission queue full (%zu jobs); retry "
                          "later", queue_.size()));
        } else {
            p = std::make_shared<PendingJob>();
            p->job = std::move(job);
            p->fp = fp;
            p->retries = req.retries >= 0
                             ? static_cast<uint32_t>(req.retries)
                             : cfg_.retries;
            // The deadline is armed here, at admission, so it covers
            // queue wait: an overloaded server times requests out
            // instead of serving them arbitrarily late.
            p->token.chainTo(&stopToken_);
            double deadlineMs = req.deadlineMs > 0.0
                                    ? req.deadlineMs
                                    : cfg_.defaultDeadlineMs;
            if (cfg_.maxDeadlineMs > 0.0 &&
                (deadlineMs <= 0.0 || deadlineMs > cfg_.maxDeadlineMs))
                deadlineMs = cfg_.maxDeadlineMs;
            if (deadlineMs > 0.0)
                p->token.setTimeout(deadlineMs / 1000.0);
            inflight_.emplace(fp, p);
            queue_.push_back(p);
            {
                std::lock_guard<std::mutex> clock(cmu_);
                counters_.admitted++;
            }
            qcv_.notify_one();
        }
    }

    std::unique_lock<std::mutex> lock(p->mu);
    p->cv.wait(lock, [&] { return p->done; });
    const SweepOutcome &o = p->outcome;
    return resultResponseJson(req.id, fp, /*cached=*/false,
                              runStatusName(o.status), o.attempts,
                              o.wallSeconds, o.resultText);
}

std::string
SweepService::statsResponseLocked(const std::string &id)
{
    const ServiceCounters c = counters();
    size_t depth, inflight;
    {
        std::lock_guard<std::mutex> lock(qmu_);
        depth = queue_.size();
        inflight = inflight_.size();
    }
    const ResultStoreStats ss = store_.stats();
    const Profiler &prof = Profiler::instance();

    JsonWriter w;
    w.beginObject();
    w.field("ok", true);
    if (!id.empty())
        w.field("id", id);
    w.field("op", std::string("stats"));
    w.field("draining",
            draining_.load(std::memory_order_relaxed));
    w.key("service").beginObject();
    w.field("workers", static_cast<uint64_t>(cfg_.workers));
    w.field("queue_depth", static_cast<uint64_t>(depth));
    w.field("queue_max", static_cast<uint64_t>(cfg_.queueMax));
    w.field("inflight", static_cast<uint64_t>(inflight));
    w.field("connections", c.connections);
    w.field("live_connections",
            liveConnections_.load(std::memory_order_relaxed));
    w.field("requests", c.requests);
    w.field("bad_requests", c.badRequests);
    w.field("run_requests", c.runRequests);
    w.field("store_hits", c.storeHits);
    w.field("coalesced", c.coalesced);
    w.field("admitted", c.admitted);
    w.field("rejected_overload", c.rejectedOverload);
    w.field("rejected_draining", c.rejectedDraining);
    w.field("computed", c.computed);
    w.field("deadline_expired_in_queue", c.deadlineExpiredInQueue);
    w.field("timed_out", c.timedOut);
    w.field("cancelled", c.cancelled);
    w.field("failed", c.failed);
    w.field("stalled", c.stalled);
    w.field("retried_attempts", c.retriedAttempts);
    w.field("request_too_large", c.requestTooLarge);
    w.field("idle_disconnects", c.idleDisconnects);
    w.field("checkpoint_saves", c.checkpointSaves);
    w.field("checkpoint_restores", c.checkpointRestores);
    w.endObject();
    w.key("store").beginObject();
    w.field("persistent", ss.persistent);
    w.field("entries", static_cast<uint64_t>(ss.entries));
    w.field("live_bytes", static_cast<uint64_t>(ss.liveBytes));
    w.field("log_bytes", static_cast<uint64_t>(ss.logBytes));
    w.field("max_bytes", static_cast<uint64_t>(ss.maxBytes));
    w.field("hits", ss.hits);
    w.field("misses", ss.misses);
    w.field("puts", ss.puts);
    w.field("evicted", ss.evicted);
    w.field("quarantined", ss.quarantined);
    w.field("compactions", ss.compactions);
    w.field("recovered_entries",
            static_cast<uint64_t>(ss.recoveredEntries));
    w.field("torn_tail_dropped", ss.tornTailDropped);
    w.endObject();
    // The zero-Machine-constructions attestation for cache hits: Run
    // counts every StreamProgram::run drive loop (ISRF_PROFILE=on), so
    // a hits-only interval moves neither "computed" nor "run_calls".
    w.key("profile").beginObject();
    w.field("enabled", prof.enabled());
    w.field("run_calls", prof.phase(Profiler::Run).calls);
    w.endObject();
    w.endObject();
    return w.str();
}

void
SweepService::workerLoop()
{
    for (;;) {
        JobPtr p;
        {
            std::unique_lock<std::mutex> lock(qmu_);
            qcv_.wait(lock, [&] {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and drained: shutdown() guarantees the
                // queue only empties for good once draining_ holds.
                return;
            }
            p = queue_.front();
            queue_.pop_front();
        }

        executeJob(*p);

        // Persist before publishing: a request admitted in the window
        // between inflight-erase and store-put would recompute, which
        // is correct (deterministic job) — just not free. Only
        // deterministic outcomes are stored (replayable(): Done /
        // Stalled / Failed); TimedOut / Cancelled reflect wall-clock
        // luck and must re-run. Custom-runner jobs (the hang probe)
        // cannot be attested by the store and are never put.
        if (!p->job.runner && SweepRunner::replayable(p->outcome.status)) {
            StoredResult sr;
            sr.workload = p->outcome.workload;
            sr.machine = machineKindName(p->outcome.kind);
            sr.status = p->outcome.status;
            sr.resultText = p->outcome.resultText;
            store_.put(p->fp, sr);
        }
        {
            std::lock_guard<std::mutex> lock(qmu_);
            inflight_.erase(p->fp);
        }
        {
            std::lock_guard<std::mutex> lock(p->mu);
            p->done = true;
        }
        p->cv.notify_all();
    }
}

void
SweepService::executeJob(PendingJob &p)
{
    SweepOutcome &o = p.outcome;
    o.workload = p.job.workload;
    o.kind = p.job.cfg.kind;

    auto finish = [&](RunStatus finalStatus) {
        std::lock_guard<std::mutex> lock(cmu_);
        switch (finalStatus) {
          case RunStatus::TimedOut: counters_.timedOut++; break;
          case RunStatus::Cancelled: counters_.cancelled++; break;
          case RunStatus::Failed: counters_.failed++; break;
          case RunStatus::Stalled: counters_.stalled++; break;
          default: break;
        }
        counters_.retriedAttempts += o.attempts > 0 ? o.attempts - 1
                                                    : 0;
    };

    // The deadline covers queue wait: a request that waited past its
    // budget is bounced here without ever simulating — under overload
    // the pool spends cycles only on requests that can still make it.
    if (p.token.cancelRequested() || p.token.deadlineExpired()) {
        const bool cancelled = p.token.cancelRequested();
        o.status = cancelled ? RunStatus::Cancelled
                             : RunStatus::TimedOut;
        o.attempts = 0;
        o.result = syntheticResult(
            p.job, o.status,
            cancelled ? "cancelled before execution"
                      : "deadline expired while queued");
        o.resultText = resultJson(o.result);
        {
            std::lock_guard<std::mutex> lock(cmu_);
            if (!cancelled)
                counters_.deadlineExpiredInQueue++;
        }
        finish(o.status);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(cmu_);
        counters_.computed++;
    }
    if (cfg_.verbose)
        std::fprintf(stderr, "isrf_sweepd: run  %s [%s/%s]\n",
                     fingerprintHex(p.fp).c_str(),
                     p.job.workload.c_str(),
                     p.job.cfg.name().c_str());

    const uint32_t maxAttempts = 1 + p.retries;
    Rng jitter(p.fp ^ 0x9e3779b97f4a7c15ull);

    // One context per job, shared across attempts and registered so
    // requestCheckpointAll() (periodic tick, SIGTERM drain) reaches
    // it. requestSave() is the only cross-thread call; everything else
    // stays on this worker.
    std::unique_ptr<CheckpointContext> ckpt;
    if (!cfg_.checkpointDir.empty()) {
        ckpt = std::make_unique<CheckpointContext>(
            checkpointFilePath(cfg_.checkpointDir, p.fp), p.fp,
            cfg_.checkpointEveryCycles);
        std::lock_guard<std::mutex> lock(ckptMu_);
        activeCheckpoints_.push_back(ckpt.get());
    }

    for (uint32_t attempt = 1; attempt <= maxAttempts; attempt++) {
        CancelToken attemptToken;
        attemptToken.chainTo(&p.token);
        WorkloadOptions opts = p.job.opts;
        opts.cancel = &attemptToken;
        if (ckpt)
            opts.checkpoint = ckpt.get();

        auto t0 = std::chrono::steady_clock::now();
        WorkloadResult r;
        try {
            r = p.job.runner
                    ? p.job.runner(p.job.cfg, opts)
                    : runWorkload(p.job.workload, p.job.cfg, opts);
        } catch (const std::exception &e) {
            // A throwing job is a Failed response, never a dead
            // worker: the pool must survive anything a request does.
            r = syntheticResult(p.job, RunStatus::Failed, e.what());
            ISRF_WARN("service job '%s' on %s threw: %s",
                      p.job.workload.c_str(), p.job.cfg.name().c_str(),
                      e.what());
        } catch (...) {
            r = syntheticResult(p.job, RunStatus::Failed,
                                "unknown exception");
        }
        o.result = std::move(r);
        o.status = o.result.status;
        o.attempts = attempt;
        o.wallSeconds += secondsSince(t0);
        {
            Profiler::Scope prof(Profiler::instance(),
                                 Profiler::Report);
            o.resultText = resultJson(o.result);
        }

        // Done / Cancelled / Failed are final. Stalled / TimedOut may
        // be transient — retry while the *request* deadline (not a
        // per-attempt one) still has budget.
        if (o.status != RunStatus::TimedOut &&
            o.status != RunStatus::Stalled)
            break;
        if (attempt == maxAttempts)
            break;
        if (p.token.cancelRequested() || p.token.deadlineExpired())
            break;

        double delay = cfg_.backoffBaseSeconds *
            static_cast<double>(1ull << (attempt - 1));
        delay = std::min(delay, cfg_.backoffCapSeconds);
        delay *= 0.5 + jitter.uniform();  // +-50% jitter
        ISRF_WARN("service job '%s' on %s %s (attempt %u/%u); "
                  "retrying in %.2fs", p.job.workload.c_str(),
                  p.job.cfg.name().c_str(), runStatusName(o.status),
                  attempt, maxAttempts, delay);
        auto until = std::chrono::steady_clock::now() +
            std::chrono::duration<double>(delay);
        while (std::chrono::steady_clock::now() < until) {
            if (p.token.cancelRequested() ||
                p.token.deadlineExpired())
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }

    if (ckpt) {
        {
            std::lock_guard<std::mutex> lock(ckptMu_);
            activeCheckpoints_.erase(
                std::find(activeCheckpoints_.begin(),
                          activeCheckpoints_.end(), ckpt.get()));
        }
        {
            std::lock_guard<std::mutex> lock(cmu_);
            counters_.checkpointSaves += ckpt->saves();
            counters_.checkpointRestores += ckpt->restores();
        }
        // Deterministic outcomes go to the result store; their
        // checkpoint will never be read again. TimedOut/Cancelled
        // keep theirs so a re-submission resumes mid-flight.
        if (SweepRunner::replayable(o.status))
            ckpt->removeFile();
    }
    finish(o.status);
}

} // namespace isrf
