/**
 * @file
 * The sweep service: a long-lived simulation server.
 *
 * bench_sweep runs one matrix and exits; the service answers an open
 * stream of single-job requests (see service/protocol.h) while staying
 * up through overload, bad input, hanging jobs, and kill -9. Its
 * robustness toolbox is the one the batch path already built — job
 * fingerprints, CancelToken deadlines, retry-with-backoff, crash-safe
 * JSONL persistence — rearranged for serving:
 *
 *  - Admission control. Run requests pass through a bounded queue;
 *    when it is full the request is rejected immediately with a
 *    structured "overloaded" error instead of queueing without bound.
 *    Load shedding is explicit and observable (counters), never an
 *    OOM or a silently growing latency tail.
 *
 *  - Per-request deadlines. Each admitted request arms a CancelToken
 *    deadline covering its *whole* life — queue wait included — and
 *    chains it to the server's stop token. Workers poll it through
 *    Engine::pollCancel (granularity: MachineConfig::
 *    deadlineCheckCycles), so even an always-hanging job is bounced at
 *    its deadline without wedging a worker forever.
 *
 *  - Retry with backoff. A Stalled or TimedOut attempt is transient
 *    (host overload, tight deadline): it is retried with doubling,
 *    jittered backoff while the request deadline is unexpired and the
 *    retry budget lasts. Done / Cancelled / Failed are final.
 *
 *  - Single-flight coalescing. Identical requests (same fingerprint)
 *    arriving while one is queued or computing attach to that job and
 *    all receive its outcome — a thundering herd costs one simulation.
 *
 *  - Result store. Completed deterministic outcomes (Done / Stalled /
 *    Failed — exactly SweepRunner::replayable) are put in the shared
 *    ResultStore; a later identical request is served the stored
 *    resultJson bytes without constructing a Machine.
 *
 *  - Graceful drain. requestDrain() (SIGTERM in the daemon) stops
 *    accepting connections and refuses new run requests with
 *    "draining", but finishes every in-flight and queued job, flushes
 *    the store, and only then shuts down. stop() is the hard variant:
 *    it also cancels the stop token, so running jobs exit Cancelled at
 *    their next cycle boundary.
 *
 * All configuration is captured at start(): machine configs are
 * resolved through MachineConfig::fromEnv() once, on the starting
 * thread — workers never read the environment (the PR-3 isolation
 * rule).
 */
#ifndef ISRF_SERVICE_SERVER_H
#define ISRF_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/sweep_runner.h"
#include "service/protocol.h"
#include "service/store.h"
#include "util/snapshot.h"

namespace isrf {

/** Static configuration of one SweepService instance. */
struct ServiceConfig
{
    /** Unix-domain socket path (required; unlinked + rebound). */
    std::string socketPath;
    /** Also listen on 127.0.0.1:tcpPort (0 = Unix socket only). */
    int tcpPort = 0;
    /** Worker threads (0 = hardware concurrency). */
    unsigned workers = 0;
    /** Max queued (admitted, not yet running) jobs before shedding. */
    size_t queueMax = 64;
    /** Default per-request deadline when the client sends none
     *  (0 = unbounded). */
    double defaultDeadlineMs = 0.0;
    /** Clamp on client-requested deadlines (0 = no clamp). */
    double maxDeadlineMs = 0.0;
    /** Default retry budget for Stalled/TimedOut attempts. */
    uint32_t retries = 1;
    double backoffBaseSeconds = 0.05;
    double backoffCapSeconds = 1.0;
    /** Result-store log path ("" = memory-only store). */
    std::string storePath;
    /** Result-store live-byte budget (0 = unbounded). */
    size_t storeMaxBytes = 64 * 1024 * 1024;
    /**
     * Accept the synthetic "__hang__" workload: a job that never
     * finishes but honors its CancelToken — the deadline-enforcement
     * probe used by tests and the CI resilience job. Off by default so
     * a production daemon cannot be asked to burn a worker on demand.
     */
    bool allowTestJobs = false;
    /** Log one line per request to stderr. */
    bool verbose = false;
    /**
     * Mid-job checkpoint directory ("" = checkpointing off). Running
     * jobs write <dir>/job-<fingerprint>.ckpt every
     * checkpointEveryCycles simulated cycles, plus whenever
     * requestCheckpointAll() fires (the daemon's periodic tick and its
     * SIGTERM drain); a re-submitted job resumes from its newest valid
     * checkpoint.
     */
    std::string checkpointDir;
    /** Checkpoint cadence in simulated cycles (0 = only on request). */
    uint64_t checkpointEveryCycles = 0;
    /**
     * Per-connection idle timeout in milliseconds (0 = no timeout): a
     * connection that sends no bytes for this long is closed and
     * counted, so abandoned clients cannot pin connection threads (and
     * their fds) forever.
     */
    double idleTimeoutMs = 0.0;
};

/** Monotonic counters exposed through the stats endpoint. */
struct ServiceCounters
{
    uint64_t connections = 0;
    uint64_t requests = 0;        ///< parsed request lines
    uint64_t badRequests = 0;     ///< parse/validation rejections
    uint64_t runRequests = 0;
    uint64_t storeHits = 0;       ///< served from the store, no queue
    uint64_t coalesced = 0;       ///< attached to an in-flight job
    uint64_t admitted = 0;        ///< entered the queue
    uint64_t rejectedOverload = 0;
    uint64_t rejectedDraining = 0;
    uint64_t computed = 0;        ///< jobs actually simulated
    uint64_t deadlineExpiredInQueue = 0;  ///< bounced before running
    uint64_t timedOut = 0;        ///< final status TimedOut
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    uint64_t stalled = 0;
    uint64_t retriedAttempts = 0; ///< extra attempts beyond the first
    uint64_t requestTooLarge = 0; ///< oversized request lines dropped
    uint64_t idleDisconnects = 0; ///< connections closed for idleness
    uint64_t checkpointSaves = 0;
    uint64_t checkpointRestores = 0;
};

class SweepService
{
  public:
    SweepService() = default;
    ~SweepService();
    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Open the store, bind the listeners, start acceptors + workers.
     * @return false (with a message on stderr) when a socket or the
     * store cannot be set up.
     */
    bool start(const ServiceConfig &cfg);

    /**
     * Stop accepting; refuse new run requests; let queued + running
     * jobs finish. Async-signal-unsafe parts are deferred: the call
     * itself only flips atomics, so it is safe from a signal handler.
     */
    void requestDrain();

    /** requestDrain() + cancel running jobs via the stop token. */
    void requestStop();

    /**
     * Block until drained (queue empty, no job in flight, every
     * connection closed), then join all threads and close the store.
     * Returns immediately if start() failed or was never called.
     */
    void shutdown();

    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /** Queue + in-flight jobs (for tests and the drain loop). */
    size_t pendingJobs() const;

    ServiceCounters counters() const;
    const ResultStore &store() const { return store_; }

    /**
     * Ask every running job to checkpoint at its next cycle boundary
     * (no-op without ServiceConfig::checkpointDir). Called by the
     * daemon's main loop on a periodic tick and again right after a
     * SIGTERM drain begins — NOT from requestDrain() itself, which
     * must stay async-signal-safe (this call takes a mutex).
     */
    void requestCheckpointAll();

    /** The synthetic always-hanging workload name (see allowTestJobs). */
    static constexpr const char *kHangWorkload = "__hang__";

  private:
    /** One admitted run request; shared by every coalesced waiter. */
    struct PendingJob
    {
        SweepJob job;
        uint64_t fp = 0;
        CancelToken token;       ///< deadline armed at admission
        uint32_t retries = 0;
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        SweepOutcome outcome;
    };
    using JobPtr = std::shared_ptr<PendingJob>;

    void acceptLoop(int listenFd);
    void serveConnection(int fd);
    /** Handle one request line; returns the response line. */
    std::string handleLine(const std::string &line);
    std::string handleRun(const ServiceRequest &req);
    std::string statsResponseLocked(const std::string &id);
    void workerLoop();
    void executeJob(PendingJob &p);
    /** Build the resolved job for a run request (false = bad name). */
    bool buildJob(const ServiceRequest &req, SweepJob &out,
                  std::string &err) const;

    ServiceConfig cfg_;
    bool started_ = false;
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    /** Chained into every request token; cancelled by requestStop(). */
    CancelToken stopToken_;

    /** Machine configs resolved once at start() (env read point). */
    std::map<MachineKind, MachineConfig> configs_;

    ResultStore store_;

    int unixFd_ = -1;
    int tcpFd_ = -1;

    mutable std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<JobPtr> queue_;
    /** Queued or computing jobs by fingerprint (single-flight map). */
    std::map<uint64_t, JobPtr> inflight_;

    mutable std::mutex cmu_;
    ServiceCounters counters_;
    std::atomic<uint64_t> liveConnections_{0};

    /** Contexts of currently running jobs (requestCheckpointAll). */
    std::mutex ckptMu_;
    std::vector<CheckpointContext *> activeCheckpoints_;

    std::vector<std::thread> acceptors_;
    std::vector<std::thread> workers_;
    std::mutex connMu_;
    std::vector<std::thread> connections_;
};

} // namespace isrf

#endif // ISRF_SERVICE_SERVER_H
