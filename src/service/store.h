/**
 * @file
 * Crash-safe content-addressed result store for the sweep service.
 *
 * The PR-5 journal is a per-sweep file: one header, one fingerprint
 * universe, deleted when the sweep is done. The serving daemon needs
 * the same durability as a *shared, long-lived* cache keyed by
 * SweepRunner::fingerprint() values — any job ever computed, by any
 * request, answerable forever without constructing a Machine. This
 * store promotes the journal design accordingly:
 *
 *  - Append-log persistence. One fsync'd JSONL record per mutation
 *    ("put" stores a result, "del" is an eviction tombstone), so a
 *    SIGKILL at any instant loses at most one torn final line — which
 *    recovery truncates exactly like journal resume does.
 *
 *  - Per-record checksums, verified on read. Every put record carries
 *    an FNV-1a checksum over (key, status, result bytes). A record
 *    that fails its checksum — or does not parse at all — is
 *    *quarantined*: counted, dropped from the index, and scrubbed from
 *    disk by an immediate compaction. A corrupt store never crashes
 *    the daemon and never serves wrong bytes; the affected keys are
 *    simply recomputed on next request.
 *
 *  - Size-bounded LRU eviction. Live bytes are capped; the
 *    least-recently-used entries are evicted (tombstoned) first. The
 *    append log is compacted — rewritten with only live, verified
 *    entries — once dead records dominate it.
 *
 * A get() hit returns the stored resultJson bytes verbatim, which is
 * what makes a cache-hit response byte-identical to the original
 * computed response.
 *
 * All public methods are thread-safe (one internal mutex — the fsync
 * per put dominates any lock cost).
 */
#ifndef ISRF_SERVICE_STORE_H
#define ISRF_SERVICE_STORE_H

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "sim/engine.h"
#include "util/jsonl.h"

namespace isrf {

/** One stored (or to-be-stored) job outcome. */
struct StoredResult
{
    std::string workload;
    std::string machine;     ///< machine kind name ("Base", ...)
    RunStatus status = RunStatus::Done;
    /** Canonical resultJson() bytes, spliced verbatim on a hit. */
    std::string resultText;
};

/** Counters exposed through the daemon's stats endpoint. */
struct ResultStoreStats
{
    size_t entries = 0;      ///< live entries in the index
    size_t liveBytes = 0;    ///< bytes of live records (the LRU budget)
    size_t logBytes = 0;     ///< bytes currently in the append log
    size_t maxBytes = 0;     ///< configured budget (0 = unbounded)
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t puts = 0;
    uint64_t evicted = 0;      ///< entries dropped by the LRU bound
    uint64_t quarantined = 0;  ///< corrupt records dropped, ever
    uint64_t compactions = 0;
    /** Recovery accounting from the last open(). */
    bool tornTailDropped = false;
    size_t tornBytesDropped = 0;
    size_t recoveredEntries = 0;
    bool persistent = false;   ///< false in memory-only mode
};

class ResultStore
{
  public:
    ResultStore() = default;
    ~ResultStore() { close(); }
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open (and recover) the store. `path` empty = memory-only mode:
     * same semantics, nothing persisted. `maxBytes` bounds the live
     * record bytes (0 = unbounded). Recovery tolerates any corruption:
     * a torn final line is truncated, corrupt interior records are
     * quarantined and scrubbed by compaction. @return false only when
     * the log cannot be opened for appending (I/O error) — never
     * because of content.
     */
    bool open(const std::string &path, size_t maxBytes);

    /** Flush and close the append log (no-op in memory-only mode). */
    void close();

    bool isOpen() const;
    const std::string &path() const { return path_; }

    /**
     * Look up `key`. On a hit the record's checksum is re-verified
     * first; a mismatch quarantines the entry and reports a miss (the
     * caller recomputes), so corrupt bytes are never served. A hit
     * refreshes the entry's LRU position.
     */
    bool get(uint64_t key, StoredResult &out);

    /**
     * Insert or replace `key`. Appends one fsync'd record, then
     * applies LRU eviction and (if dead records dominate the log)
     * compaction. @return false on an I/O/serialization failure — the
     * in-memory entry is still served for this process's lifetime.
     */
    bool put(uint64_t key, const StoredResult &r);

    /** True when `key` is present (no LRU touch, no checksum check). */
    bool contains(uint64_t key) const;

    /**
     * Rewrite the log with only live, verified entries (oldest-first,
     * so recovery reconstructs the LRU order). Called automatically
     * when the log doubles its live size and after a recovery that
     * quarantined records; public for tests and tooling.
     */
    void compact();

    ResultStoreStats stats() const;

    /** The checksum stored with (and verified against) each record. */
    static uint64_t checksum(uint64_t key, const StoredResult &r);

    /** Log-format version; bump on any record-layout change. */
    static constexpr uint64_t kStoreVersion = 1;

  private:
    struct Entry
    {
        StoredResult result;
        uint64_t check = 0;        ///< checksum at insert/recover time
        size_t recordBytes = 0;    ///< serialized record size (budget)
        std::list<uint64_t>::iterator lruIt;
    };

    bool appendLocked(const std::string &record);
    void insertLocked(uint64_t key, StoredResult r, uint64_t check,
                      size_t recordBytes);
    void eraseLocked(uint64_t key, bool tombstone);
    void evictLocked(uint64_t keep);
    void maybeCompactLocked();
    void compactLocked();
    std::string putRecord(uint64_t key, const StoredResult &r,
                          uint64_t check) const;

    mutable std::mutex mu_;
    std::string path_;
    size_t maxBytes_ = 0;
    JsonlWriter log_;
    std::map<uint64_t, Entry> index_;
    /** LRU recency: front = coldest, back = hottest. */
    std::list<uint64_t> lru_;
    ResultStoreStats stats_;
};

} // namespace isrf

#endif // ISRF_SERVICE_STORE_H
