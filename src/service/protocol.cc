#include "service/protocol.h"

#include "util/json.h"
#include "util/jsonl.h"
#include "util/log.h"

namespace isrf {

bool
machineKindFromName(const std::string &name, MachineKind &out)
{
    for (MachineKind k : {MachineKind::Base, MachineKind::ISRF1,
                          MachineKind::ISRF4, MachineKind::Cache}) {
        if (name == machineKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
fingerprintHex(uint64_t fp)
{
    return strprintf("%016llx", static_cast<unsigned long long>(fp));
}

bool
parseServiceRequest(const std::string &line, ServiceRequest &out,
                    std::string &err)
{
    JsonLineView v(line);
    if (!v.valid()) {
        err = "request is not a JSON object";
        return false;
    }
    if (!v.getString("op", out.op)) {
        err = "missing string field \"op\"";
        return false;
    }
    v.getString("id", out.id);
    if (out.op == "stats" || out.op == "ping")
        return true;
    if (out.op != "run") {
        err = "unknown op \"" + out.op + "\"";
        return false;
    }
    if (!v.getString("workload", out.workload)) {
        err = "run: missing string field \"workload\"";
        return false;
    }
    if (!v.getString("machine", out.machine)) {
        err = "run: missing string field \"machine\"";
        return false;
    }
    uint64_t u = 0;
    if (v.getU64("repeats", u)) {
        if (u == 0 || u > 1u << 20) {
            err = "run: \"repeats\" out of range";
            return false;
        }
        out.repeats = static_cast<uint32_t>(u);
    }
    v.getU64("seed", out.seed);
    double d = 0.0;
    if (v.getDouble("deadline_ms", d)) {
        if (d < 0.0) {
            err = "run: \"deadline_ms\" must be >= 0";
            return false;
        }
        out.deadlineMs = d;
    }
    if (v.getU64("retries", u)) {
        if (u > 16) {
            err = "run: \"retries\" out of range (max 16)";
            return false;
        }
        out.retries = static_cast<int32_t>(u);
    }
    return true;
}

namespace {

void
echoId(JsonWriter &w, const std::string &id)
{
    if (!id.empty())
        w.field("id", id);
}

} // namespace

std::string
errorResponseJson(const std::string &id, const std::string &code,
                  const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.field("ok", false);
    echoId(w, id);
    w.field("error", code);
    w.field("message", message);
    w.endObject();
    return w.str();
}

std::string
pongResponseJson(const std::string &id, bool draining)
{
    JsonWriter w;
    w.beginObject();
    w.field("ok", true);
    echoId(w, id);
    w.field("op", std::string("pong"));
    w.field("draining", draining);
    w.endObject();
    return w.str();
}

std::string
resultResponseJson(const std::string &id, uint64_t key, bool cached,
                   const std::string &status, uint32_t attempts,
                   double wallSeconds, const std::string &resultText)
{
    JsonWriter w;
    w.beginObject();
    w.field("ok", true);
    echoId(w, id);
    w.field("op", std::string("result"));
    w.field("key", fingerprintHex(key));
    w.field("cached", cached);
    w.field("status", status);
    w.field("attempts", static_cast<uint64_t>(attempts));
    w.field("wall_seconds", wallSeconds);
    w.key("result").raw(resultText);
    w.endObject();
    return w.str();
}

} // namespace isrf
