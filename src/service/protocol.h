/**
 * @file
 * Wire protocol of the sweep service daemon (tools/isrf_sweepd).
 *
 * Newline-delimited JSON over a byte stream (Unix-domain socket or
 * TCP): one request object per line in, one response object per line
 * out, in request order per connection. The format reuses the journal
 * toolbox — requests are parsed with JsonLineView, responses written
 * with JsonWriter, and a cached job's resultJson bytes are spliced
 * verbatim into the response so a store hit is byte-identical to the
 * originally computed reply.
 *
 * Requests ("op" selects the verb):
 *   {"op":"run","workload":"FFT 2D","machine":"ISRF1",
 *    "repeats":2,"seed":12345,"deadline_ms":5000,"retries":1,
 *    "id":"..."}                          — simulate (or serve) one job
 *   {"op":"stats","id":"..."}             — health + counters snapshot
 *   {"op":"ping","id":"..."}              — liveness probe
 *
 * Responses always carry "ok" plus the echoed "id" (when given):
 *   {"ok":true,"op":"result","key":"<16-hex fingerprint>",
 *    "cached":false,"status":"done","attempts":1,
 *    "wall_seconds":0.42,"result":{...}}
 *   {"ok":false,"error":"overloaded","message":"..."}
 *
 * Error codes are closed-vocabulary so clients can switch on them:
 * bad_request, unknown_workload, unknown_machine, overloaded,
 * draining, internal.
 */
#ifndef ISRF_SERVICE_PROTOCOL_H
#define ISRF_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

#include "core/config.h"

namespace isrf {

/** One decoded request line. */
struct ServiceRequest
{
    std::string op;        ///< "run" | "stats" | "ping"
    std::string id;        ///< opaque client tag, echoed back ("" ok)
    std::string workload;  ///< run: name in workloadRegistry()
    std::string machine;   ///< run: machine kind name ("Base", ...)
    uint32_t repeats = 2;
    uint64_t seed = 12345;
    /** Wall-clock budget for the whole request, queue wait included
     *  (0 = server default). */
    double deadlineMs = 0.0;
    /** Extra attempts after a Stalled/TimedOut attempt (-1 = server
     *  default). */
    int32_t retries = -1;
};

/**
 * Parse one request line. @return false with a human-readable `err`
 * on malformed JSON, a missing/unknown "op", or a bad field type;
 * field *values* (unknown workload name, etc.) are validated by the
 * server, which knows the registries.
 */
bool parseServiceRequest(const std::string &line, ServiceRequest &out,
                         std::string &err);

/** Inverse of machineKindName(). @return false on an unknown name. */
bool machineKindFromName(const std::string &name, MachineKind &out);

/** A job fingerprint as the fixed-width hex key used on the wire. */
std::string fingerprintHex(uint64_t fp);

/** {"ok":false,"error":code,"message":...} (+ echoed id). */
std::string errorResponseJson(const std::string &id,
                              const std::string &code,
                              const std::string &message);

/** {"ok":true,"op":"pong","draining":...} (+ echoed id). */
std::string pongResponseJson(const std::string &id, bool draining);

/**
 * {"ok":true,"op":"result",...} for a finished run request.
 * `resultText` must be canonical resultJson() bytes; it is spliced
 * verbatim (this is what makes hits byte-identical to computes).
 */
std::string resultResponseJson(const std::string &id, uint64_t key,
                               bool cached, const std::string &status,
                               uint32_t attempts, double wallSeconds,
                               const std::string &resultText);

} // namespace isrf

#endif // ISRF_SERVICE_PROTOCOL_H
