#include "service/store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/hash.h"
#include "util/json.h"
#include "util/log.h"

namespace isrf {

namespace {

std::string
headerRecord()
{
    JsonWriter w;
    w.beginObject();
    w.field("type", std::string("header"));
    w.field("format", std::string("isrf-result-store"));
    w.field("version", ResultStore::kStoreVersion);
    w.endObject();
    return w.str();
}

std::string
delRecord(uint64_t key)
{
    JsonWriter w;
    w.beginObject();
    w.field("type", std::string("del"));
    w.field("key", key);
    w.endObject();
    return w.str();
}

} // namespace

uint64_t
ResultStore::checksum(uint64_t key, const StoredResult &r)
{
    // Key and status are folded in so a record cannot be replayed
    // under another key (or a TimedOut body served as Done) by editing
    // only the cheap fields; the result bytes dominate the hash.
    uint64_t h = fnv1a(std::to_string(key) + "|" +
                       runStatusName(r.status) + "|" + r.workload +
                       "|" + r.machine + "|");
    return fnv1a(r.resultText, h);
}

std::string
ResultStore::putRecord(uint64_t key, const StoredResult &r,
                       uint64_t check) const
{
    JsonWriter w;
    w.beginObject();
    w.field("type", std::string("put"));
    w.field("key", key);
    w.field("workload", r.workload);
    w.field("machine", r.machine);
    w.field("status", std::string(runStatusName(r.status)));
    w.field("check", check);
    w.key("result").raw(r.resultText);
    w.endObject();
    return w.str();
}

bool
ResultStore::isOpen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_.empty() || log_.isOpen();
}

bool
ResultStore::open(const std::string &path, size_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    lru_.clear();
    stats_ = ResultStoreStats();
    path_ = path;
    maxBytes_ = maxBytes;
    stats_.maxBytes = maxBytes;
    stats_.persistent = !path.empty();
    if (path.empty())
        return true;  // memory-only mode

    // ---- recovery scan ------------------------------------------------
    // Unlike the sweep journal (readJsonl), an invalid *interior* line
    // here must not reject the file: the store is long-lived and
    // shared, so a single corrupt record (bit rot, partial overwrite)
    // quarantines that record alone — every other key keeps serving.
    // Each record is self-certifying via its checksum, so scanning is
    // safe without trusting file-level structure.
    std::string content;
    bool exists = false;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        exists = true;
        char buf[1 << 16];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            content.append(buf, n);
        const bool readErr = std::ferror(f) != 0;
        std::fclose(f);
        if (readErr) {
            ISRF_WARN("ResultStore: I/O error reading '%s'",
                      path.c_str());
            return false;
        }
    }

    bool sawHeader = false;
    size_t pos = 0;
    while (pos < content.size()) {
        const size_t nl = content.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const size_t end = terminated ? nl : content.size();
        std::string line = content.substr(pos, end - pos);
        pos = terminated ? nl + 1 : content.size();
        if (line.empty())
            continue;
        if (!terminated) {
            // Torn final line from a killed append: recoverable, like
            // journal resume. Trim it below so the next append starts
            // on a fresh line.
            stats_.tornTailDropped = true;
            stats_.tornBytesDropped = line.size();
            break;
        }
        JsonLineView v(line);
        std::string type;
        if (!v.valid() || !v.getString("type", type)) {
            stats_.quarantined++;
            continue;
        }
        if (type == "header") {
            uint64_t version = 0;
            std::string format;
            if (v.getU64("version", version) &&
                v.getString("format", format) &&
                format == "isrf-result-store" &&
                version == kStoreVersion)
                sawHeader = true;
            else
                stats_.quarantined++;
            continue;
        }
        if (type == "del") {
            uint64_t key = 0;
            if (v.getU64("key", key))
                eraseLocked(key, /*tombstone=*/false);
            else
                stats_.quarantined++;
            continue;
        }
        if (type != "put") {
            stats_.quarantined++;
            continue;
        }
        uint64_t key = 0, check = 0;
        StoredResult r;
        std::string status;
        if (!v.getU64("key", key) || !v.getU64("check", check) ||
            !v.getString("workload", r.workload) ||
            !v.getString("machine", r.machine) ||
            !v.getString("status", status) ||
            !runStatusFromName(status, r.status) ||
            !v.getRaw("result", r.resultText) ||
            checksum(key, r) != check) {
            stats_.quarantined++;
            continue;
        }
        // Later records win (a re-put after eviction, or a compaction
        // racing an append that survived the rename).
        eraseLocked(key, /*tombstone=*/false);
        insertLocked(key, std::move(r), check, line.size() + 1);
    }
    (void)sawHeader;  // informational: a missing header alone is not
                      // fatal — every record is checksummed.
    stats_.recoveredEntries = index_.size();

    if (stats_.tornTailDropped) {
        const off_t newSize = static_cast<off_t>(
            content.size() - stats_.tornBytesDropped);
        if (::truncate(path.c_str(), newSize) != 0) {
            ISRF_WARN("ResultStore: cannot trim torn record from "
                      "'%s': %s", path.c_str(), std::strerror(errno));
            return false;
        }
        ISRF_WARN("ResultStore '%s': dropped torn final record "
                  "(%zu bytes)", path.c_str(),
                  stats_.tornBytesDropped);
        content.resize(static_cast<size_t>(newSize));
    }
    stats_.logBytes = content.size();

    if (!log_.open(path, /*append=*/true))
        return false;
    if (!exists || content.empty()) {
        if (!appendLocked(headerRecord()))
            return false;
    }

    if (stats_.quarantined > 0) {
        ISRF_WARN("ResultStore '%s': quarantined %llu corrupt "
                  "record(s); compacting to scrub them",
                  path.c_str(),
                  static_cast<unsigned long long>(stats_.quarantined));
        compactLocked();
    }
    // Enforce the budget against whatever recovery loaded.
    evictLocked(/*keep=*/0);
    return true;
}

void
ResultStore::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    log_.close();
}

bool
ResultStore::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.count(key) != 0;
}

bool
ResultStore::get(uint64_t key, StoredResult &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        stats_.misses++;
        return false;
    }
    // Verify on every read: the checksum was computed at insert (or
    // recovery) time, so any later corruption of the cached bytes is
    // caught here and the entry recomputed instead of served.
    if (checksum(key, it->second.result) != it->second.check) {
        ISRF_WARN("ResultStore: checksum mismatch for key %016llx; "
                  "quarantining (will recompute)",
                  static_cast<unsigned long long>(key));
        stats_.quarantined++;
        eraseLocked(key, /*tombstone=*/true);
        stats_.misses++;
        return false;
    }
    lru_.splice(lru_.end(), lru_, it->second.lruIt);  // touch
    stats_.hits++;
    out = it->second.result;
    return true;
}

bool
ResultStore::put(uint64_t key, const StoredResult &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t check = checksum(key, r);
    const std::string record = putRecord(key, r, check);
    bool ok = appendLocked(record);
    eraseLocked(key, /*tombstone=*/false);  // replace, don't double
    insertLocked(key, r, check, record.size() + 1);
    stats_.puts++;
    evictLocked(/*keep=*/key);
    maybeCompactLocked();
    return ok;
}

// ----------------------------------------------------------------------
// Internals (mu_ held)
// ----------------------------------------------------------------------

bool
ResultStore::appendLocked(const std::string &record)
{
    if (!log_.isOpen())
        return path_.empty();  // memory-only: nothing to persist
    if (!log_.append(record))
        return false;
    stats_.logBytes += record.size() + 1;
    return true;
}

void
ResultStore::insertLocked(uint64_t key, StoredResult r, uint64_t check,
                          size_t recordBytes)
{
    Entry e;
    e.result = std::move(r);
    e.check = check;
    e.recordBytes = recordBytes;
    e.lruIt = lru_.insert(lru_.end(), key);
    stats_.liveBytes += recordBytes;
    stats_.entries++;
    index_.emplace(key, std::move(e));
}

void
ResultStore::eraseLocked(uint64_t key, bool tombstone)
{
    auto it = index_.find(key);
    if (it == index_.end())
        return;
    stats_.liveBytes -= it->second.recordBytes;
    stats_.entries--;
    lru_.erase(it->second.lruIt);
    index_.erase(it);
    if (tombstone)
        appendLocked(delRecord(key));
}

void
ResultStore::evictLocked(uint64_t keep)
{
    if (maxBytes_ == 0)
        return;
    // Never evict the entry just inserted (`keep`): an over-budget
    // single result should still serve for this process's lifetime
    // rather than thrash.
    while (stats_.liveBytes > maxBytes_ && !lru_.empty()) {
        const uint64_t victim = lru_.front();
        if (victim == keep && lru_.size() == 1)
            break;
        if (victim == keep) {
            // Rotate the kept key out of the firing line.
            lru_.splice(lru_.end(), lru_, index_.find(keep)->second.lruIt);
            continue;
        }
        eraseLocked(victim, /*tombstone=*/true);
        stats_.evicted++;
    }
}

void
ResultStore::maybeCompactLocked()
{
    if (path_.empty())
        return;
    // Compact once dead records dominate: log > 2x live (+ a floor so
    // small stores don't churn).
    if (stats_.logBytes > 2 * stats_.liveBytes + 4096)
        compactLocked();
}

void
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mu_);
    compactLocked();
}

void
ResultStore::compactLocked()
{
    if (path_.empty())
        return;
    const std::string tmp = path_ + ".compact.tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        ISRF_WARN("ResultStore: cannot open '%s' for compaction: %s",
                  tmp.c_str(), std::strerror(errno));
        return;
    }
    std::string content = headerRecord();
    content += '\n';
    // Oldest-first so a replaying recovery rebuilds the same LRU order.
    for (uint64_t key : lru_) {
        const Entry &e = index_.find(key)->second;
        content += putRecord(key, e.result, e.check);
        content += '\n';
    }
    bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
            content.size() &&
        std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    // rename() is atomic on POSIX: a crash leaves either the old log
    // (with its dead records) or the new one — never a mix.
    if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0) {
        ISRF_WARN("ResultStore: compaction of '%s' failed: %s",
                  path_.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    log_.close();
    if (!log_.open(path_, /*append=*/true))
        ISRF_WARN("ResultStore: cannot reopen '%s' after compaction",
                  path_.c_str());
    stats_.logBytes = content.size();
    // recordBytes of live entries approximates liveBytes == logBytes
    // minus the header now; keep the budget accounting as-is (it is
    // already the sum of live record sizes).
    stats_.compactions++;
}

ResultStoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace isrf
