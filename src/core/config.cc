#include "core/config.h"

#include "util/log.h"

namespace isrf {

const char *
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Base: return "Base";
      case MachineKind::ISRF1: return "ISRF1";
      case MachineKind::ISRF4: return "ISRF4";
      case MachineKind::Cache: return "Cache";
    }
    return "?";
}

MachineConfig
MachineConfig::make(MachineKind kind)
{
    MachineConfig c;
    c.kind = kind;
    switch (kind) {
      case MachineKind::Base:
        c.srfMode = SrfMode::SequentialOnly;
        break;
      case MachineKind::ISRF1:
        c.srfMode = SrfMode::Indexed1;
        break;
      case MachineKind::ISRF4:
        c.srfMode = SrfMode::Indexed4;
        break;
      case MachineKind::Cache:
        c.srfMode = SrfMode::SequentialOnly;
        c.mem.cacheEnabled = true;
        break;
    }
    return c;
}

void
MachineConfig::validate() const
{
    if (srf.lanes == 0 || srf.seqWidth == 0 || srf.subArrays == 0)
        fatal("MachineConfig: bad SRF geometry");
    if (srf.laneWords % srf.seqWidth != 0)
        fatal("MachineConfig: laneWords must be a multiple of seqWidth");
    if (kind == MachineKind::Cache && !mem.cacheEnabled)
        fatal("MachineConfig: Cache machine without cache enabled");
    if (kind != MachineKind::Cache && mem.cacheEnabled)
        fatal("MachineConfig: cache enabled on non-Cache machine");
    if ((srfMode == SrfMode::SequentialOnly) !=
            (kind == MachineKind::Base || kind == MachineKind::Cache))
        fatal("MachineConfig: SRF mode inconsistent with machine kind");
}

} // namespace isrf
