#include "core/config.h"

#include <string>
#include <vector>

#include "sim/profiler.h"
#include "srf/arbiter.h"
#include "util/env.h"
#include "util/log.h"

namespace isrf {

namespace {

bool
powerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Base: return "Base";
      case MachineKind::ISRF1: return "ISRF1";
      case MachineKind::ISRF4: return "ISRF4";
      case MachineKind::Cache: return "Cache";
    }
    return "?";
}

MachineConfig
MachineConfig::make(MachineKind kind)
{
    MachineConfig c;
    c.kind = kind;
    switch (kind) {
      case MachineKind::Base:
        c.srfMode = SrfMode::SequentialOnly;
        break;
      case MachineKind::ISRF1:
        c.srfMode = SrfMode::Indexed1;
        break;
      case MachineKind::ISRF4:
        c.srfMode = SrfMode::Indexed4;
        break;
      case MachineKind::Cache:
        c.srfMode = SrfMode::SequentialOnly;
        c.mem.cacheEnabled = true;
        break;
    }
    return c;
}

MachineConfig &
MachineConfig::fromEnv()
{
    std::vector<std::string> errs;
    std::string faultsSpec = envStr("ISRF_FAULTS");
    if (!faultsSpec.empty())
        faults = FaultConfig::parse(faultsSpec);
    statSampleInterval = envU64("ISRF_SAMPLE", statSampleInterval, &errs);
    std::string traceEnv = envStr("ISRF_TRACE");
    if (!traceEnv.empty())
        traceSpec = traceEnv == "0" ? "" : traceEnv;
    std::string engineEnv = envStr("ISRF_ENGINE");
    if (engineEnv == "dense") {
        engineMode = EngineMode::Dense;
    } else if (engineEnv == "skip") {
        engineMode = EngineMode::Skip;
    } else if (!engineEnv.empty()) {
        errs.push_back(strprintf("ISRF_ENGINE='%s' is invalid (expected "
                                 "dense|skip); using %s",
                                 engineEnv.c_str(),
                                 engineModeName(engineMode)));
    }
    Profiler::parseSpec(envStr("ISRF_PROFILE"), profileEnabled,
                        profileStride, &errs);
    deadlineCheckCycles =
        envU64("ISRF_DEADLINE_CHECK", deadlineCheckCycles, &errs);
    if (deadlineCheckCycles == 0) {
        errs.push_back("ISRF_DEADLINE_CHECK=0 is invalid; using "
                       "default 1024");
        deadlineCheckCycles = 1024;
    }
    traceCapacity = envU64("ISRF_TRACE_CAPACITY", traceCapacity, &errs);
    if (traceCapacity == 0) {
        errs.push_back(strprintf("ISRF_TRACE_CAPACITY=0 is invalid; "
                                 "using default %llu",
                                 static_cast<unsigned long long>(
                                     uint64_t{1} << 16)));
        traceCapacity = 1 << 16;
    }
    warnEnvErrors(errs);
    return *this;
}

void
MachineConfig::validate() const
{
    // Collect every violation before dying so a broken config can be
    // fixed in one pass instead of one fatal() at a time.
    std::vector<std::string> errs;

    if (srf.lanes == 0 || srf.seqWidth == 0 || srf.subArrays == 0)
        errs.push_back("bad SRF geometry: lanes, seqWidth and subArrays "
                       "must all be nonzero");
    if (srf.lanes != 0 && !powerOfTwo(srf.lanes))
        errs.push_back("lanes must be a power of two");
    if (srf.subArrays != 0 && !powerOfTwo(srf.subArrays))
        errs.push_back("subArrays must be a power of two");
    if (srf.seqWidth != 0 && srf.laneWords % srf.seqWidth != 0)
        errs.push_back("laneWords must be a multiple of seqWidth");
    if (srf.seqWidth > 8)
        errs.push_back("seqWidth > 8 unsupported (the sequential row "
                       "buffer is 8 words wide)");
    if (srf.maxStreamSlots + 1 > RoundRobinArbiter::kMaxClaimants)
        errs.push_back("maxStreamSlots must leave the global arbiter "
                       "at most 64 claimants (slots + the indexed "
                       "bundle)");
    if (srf.laneWords == 0)
        errs.push_back("laneWords must be nonzero");
    if (dram.wordsPerCycle <= 0)
        errs.push_back("DRAM bandwidth (wordsPerCycle) must be positive");
    if (dram.accessLatency == 0)
        errs.push_back("DRAM accessLatency must be nonzero");
    if (dram.capacityWords == 0)
        errs.push_back("DRAM capacityWords must be nonzero");
    if (kind == MachineKind::Cache && !mem.cacheEnabled)
        errs.push_back("Cache machine without cache enabled");
    if (kind != MachineKind::Cache && mem.cacheEnabled)
        errs.push_back("cache enabled on non-Cache machine");
    if ((srfMode == SrfMode::SequentialOnly) !=
            (kind == MachineKind::Base || kind == MachineKind::Cache))
        errs.push_back("SRF mode inconsistent with machine kind");
    if (mem.units == 0)
        errs.push_back("mem.units must be nonzero");

    if (errs.empty())
        return;
    std::string msg = "MachineConfig: " +
        std::to_string(errs.size()) + " violation(s):";
    for (const auto &e : errs)
        msg += "\n  - " + e;
    fatal("%s", msg.c_str());
}

} // namespace isrf
