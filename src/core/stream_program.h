/**
 * @file
 * Stream-level programs: the software side of the stream programming
 * model (§2). A StreamProgram is a partially ordered set of stream
 * operations — memory loads/stores/gathers/scatters and kernel
 * invocations — over SRF-resident streams. The runtime issues
 * operations out of order as their stream dependencies resolve, which
 * yields the software-pipelined strip-mined execution the paper assumes
 * (memory transfers for strip i+1 overlap kernels on strip i).
 */
#ifndef ISRF_CORE_STREAM_PROGRAM_H
#define ISRF_CORE_STREAM_PROGRAM_H

#include <memory>
#include <string>
#include <vector>

#include "core/machine.h"

namespace isrf {

/** Identifies an operation within a StreamProgram. */
using ProgOpId = int32_t;

/**
 * Builds and executes one stream program on a Machine.
 *
 * Typical use:
 * @code
 *   StreamProgram prog(machine);
 *   SlotId in = prog.addStream("in", n, StreamLayout::Striped);
 *   SlotId out = prog.addStream("out", n, StreamLayout::Striped);
 *   prog.load(in, memAddr);
 *   prog.kernel(buildInvocation(...));
 *   prog.store(out, memAddr2);
 *   prog.run();
 * @endcode
 *
 * Dependencies are inferred from stream usage (RAW, WAR, WAW on SRF
 * slots); explicit extra edges can be added with dependsOn().
 */
class StreamProgram
{
  public:
    explicit StreamProgram(Machine &m);
    ~StreamProgram();

    StreamProgram(const StreamProgram &) = delete;
    StreamProgram &operator=(const StreamProgram &) = delete;

    // ------------------------------------------------------------------
    // Stream declaration
    // ------------------------------------------------------------------

    /**
     * Allocate SRF space and open a slot for a stream.
     *
     * @param totalWords Total stream words (Striped) or per-lane words
     *        (PerLane).
     * @param indexed Opens the slot for indexed access.
     * @param crossLane Cross-lane indexed access (implies indexed).
     * @param dir Direction as seen by kernels.
     * @param readWrite In-lane indexed read-write slot (histogram-style
     *        in-place update; implies indexed, in-lane only).
     */
    SlotId addStream(const std::string &name, uint64_t totalWords,
                     StreamLayout layout = StreamLayout::Striped,
                     StreamDir dir = StreamDir::In, bool indexed = false,
                     bool crossLane = false, uint32_t recordWords = 1,
                     std::vector<uint32_t> perLaneLen = {},
                     bool readWrite = false);

    /**
     * Open an additional slot over the SAME SRF region as `orig`
     * (independent stream buffers / address FIFOs, shared storage).
     * Used when a kernel needs several indexed streams into one data
     * structure. Dependency inference treats the alias as a separate
     * stream: add explicit dependsOn() edges against the original's
     * producers/consumers.
     */
    SlotId addStreamAlias(const std::string &name, SlotId orig);

    /**
     * Like addStreamAlias, but overriding the cross-lane property of
     * the view. Lets one SRF region be read both through the in-lane
     * indexed ports (lane-local indices) and the cross-lane switch
     * (global record indices) — the SpMV x-window split.
     */
    SlotId addStreamAlias(const std::string &name, SlotId orig,
                          bool crossLane);

    /** Functionally pre-load a stream's SRF region (tables, tests). */
    void fillStream(SlotId slot, const std::vector<Word> &data);

    /** Functionally read back a stream's SRF region. */
    std::vector<Word> dumpStream(SlotId slot) const;

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    ProgOpId load(SlotId dst, uint64_t memBase, bool cached = false,
                  uint64_t lengthWords = 0);
    ProgOpId store(SlotId src, uint64_t memBase, bool cached = false,
                   uint64_t lengthWords = 0);
    ProgOpId gather(SlotId dst, uint64_t memBase,
                    std::vector<uint32_t> indices, uint32_t recordWords = 1,
                    bool cached = false, uint64_t dstOffsetWords = 0);
    ProgOpId scatter(SlotId src, uint64_t memBase,
                     std::vector<uint32_t> indices,
                     uint32_t recordWords = 1, bool cached = false);
    ProgOpId kernel(std::shared_ptr<KernelInvocation> inv);

    /** Add an explicit ordering edge: `after` waits for `before`. */
    void dependsOn(ProgOpId after, ProgOpId before);

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /**
     * Run to completion (all ops done, memory system idle), or until
     * the machine's watchdog trips or the engine's CancelToken (see
     * Engine::setCancel) requests cancellation / expires its deadline.
     * How the run ended is reported by lastStatus(); non-Done runs
     * leave the machine at a consistent cycle boundary.
     * @return total machine cycles elapsed during this call.
     */
    uint64_t run(uint64_t maxCycles = 1ull << 30);

    /**
     * How the most recent run() ended: Done, Stalled (watchdog),
     * TimedOut (deadline) or Cancelled. Done before any run().
     */
    RunStatus lastStatus() const { return status_; }

    /** Number of operations recorded. */
    size_t opCount() const { return ops_.size(); }

    Machine &machine() { return machine_; }

    // ------------------------------------------------------------------
    // Snapshot (util/snapshot.h, DESIGN.md §17)
    //
    // The program GRAPH (streams, ops, dependencies) is rebuilt
    // deterministically by the workload from its config before run();
    // only the runtime cursor (per-op issued/completed/memId, the scan
    // window, the active kernel op) travels in the checkpoint, guarded
    // by a structural hash of the rebuilt graph. run() restores from
    // the machine's CheckpointContext before its first step and saves
    // whenever the context says a checkpoint is due.
    // ------------------------------------------------------------------

    /** FNV-1a over the op graph's structure (kinds, slots, deps). */
    uint64_t structureHash() const;

    /** Runtime cursor only (see above). */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    /**
     * Try to resume from the context's checkpoint file. Missing,
     * stale, or other-program checkpoints are skipped (warn only);
     * corrupt files are quarantined; a verified snapshot is applied to
     * the program and the machine.
     */
    void maybeRestore(CheckpointContext &ckpt);

    /** Serialize program + machine and write atomically. */
    void saveCheckpoint(CheckpointContext &ckpt);
    struct Op
    {
        enum class Kind { Mem, Kernel } kind;
        MemOp mem;
        std::shared_ptr<KernelInvocation> inv;
        std::vector<SlotId> readsSlots;
        std::vector<SlotId> writesSlots;
        std::vector<ProgOpId> deps;
        // runtime state
        bool issued = false;
        bool completed = false;
        MemOpId memId = 0;
    };

    ProgOpId addMemOp(MemOp op, std::vector<SlotId> reads,
                      std::vector<SlotId> writes);
    void inferDeps(Op &op);
    bool depsDone(const Op &op) const;
    void tryIssue();
    void updateCompletion();
    bool allDone() const;

    Machine &machine_;
    std::vector<Op> ops_;
    /** Ops below this index are all completed (scan-window start). */
    size_t scanFrom_ = 0;
    /** Per-slot last writer / readers since last write (dep inference). */
    std::vector<ProgOpId> lastWriter_;
    std::vector<std::vector<ProgOpId>> readersSinceWrite_;
    std::vector<SlotId> openedSlots_;
    ProgOpId activeKernelOp_ = -1;
    RunStatus status_ = RunStatus::Done;
};

} // namespace isrf

#endif // ISRF_CORE_STREAM_PROGRAM_H
