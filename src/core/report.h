/**
 * @file
 * Human-readable machine reports: configuration, execution-time
 * breakdown, SRF/memory statistics, per-kernel bandwidths and an
 * access-energy estimate, rendered as text for logs and tools.
 */
#ifndef ISRF_CORE_REPORT_H
#define ISRF_CORE_REPORT_H

#include <string>

#include "area/energy.h"
#include "core/machine.h"

namespace isrf {

/** Options controlling report contents. */
struct ReportOptions
{
    bool includeConfig = true;
    bool includeBreakdown = true;
    bool includeSrf = true;
    bool includeMemory = true;
    bool includeKernels = true;
    bool includeEnergy = true;
};

/** Render a full post-run report for a machine. */
std::string machineReport(Machine &m, const ReportOptions &opts = {});

/**
 * The same report as machineReport(), as a JSON object (RFC 8259):
 *   { "machine": ..., "cycles": ..., "breakdown": {...}, "srf": {...},
 *     "dram": {...}, "cache": {...}?, "kernels": [...], "energy": {...},
 *     "samples": [...]? }
 * Counter values match the text report exactly; "samples" appears only
 * when the machine has an active StatSampler with recorded intervals.
 */
std::string machineReportJson(Machine &m, const ReportOptions &opts = {});

/** Collect the machine's access counts for the energy model. */
EnergyCounts energyCounts(Machine &m);

} // namespace isrf

#endif // ISRF_CORE_REPORT_H
