#include "core/breakdown.h"

#include "util/log.h"

namespace isrf {

std::string
TimeBreakdown::summary() const
{
    uint64_t t = total();
    if (t == 0)
        return "(empty breakdown)";
    return strprintf(
        "total=%llu lane-cycles: loop=%.1f%% mem=%.1f%% srf=%.1f%% "
        "ovh=%.1f%%",
        static_cast<unsigned long long>(t),
        100.0 * frac(loopBody, t), 100.0 * frac(memStall, t),
        100.0 * frac(srfStall, t), 100.0 * frac(overhead, t));
}

} // namespace isrf
