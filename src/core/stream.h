/**
 * @file
 * SRF space allocation for streams.
 *
 * Stream programs strip-mine their data so all live streams fit in the
 * SRF (§2). The allocator hands out per-lane word regions aligned to
 * the sequential access width; programs typically allocate a set of
 * double-buffered strips plus persistent tables.
 */
#ifndef ISRF_CORE_STREAM_H
#define ISRF_CORE_STREAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "srf/srf_types.h"

namespace isrf {

/**
 * Bump allocator over each lane's SRF words (all lanes are allocated
 * in lockstep: a region is the same address range in every bank).
 */
class SrfAllocator
{
  public:
    explicit SrfAllocator(const SrfGeometry &geom = {})
        : geom_(geom)
    {
    }

    void
    init(const SrfGeometry &geom)
    {
        geom_ = geom;
        cursor_ = 0;
    }

    /**
     * Allocate a region able to hold a stream.
     *
     * @param totalWords Stream length: total words across lanes for
     *        Striped layout, max per-lane words for PerLane.
     * @param layout Data layout of the stream.
     * @return base word address (same in every lane).
     */
    uint32_t
    alloc(uint64_t totalWords, StreamLayout layout)
    {
        uint64_t perLane = perLaneWords(totalWords, layout);
        uint64_t aligned = roundUp(perLane, geom_.seqWidth);
        if (cursor_ + aligned > geom_.laneWords) {
            // Out of SRF space: the workload must strip-mine harder.
            return kAllocFail;
        }
        auto base = static_cast<uint32_t>(cursor_);
        cursor_ += aligned;
        return base;
    }

    /** Words each lane needs for a stream of this size/layout. */
    uint64_t
    perLaneWords(uint64_t totalWords, StreamLayout layout) const
    {
        if (layout == StreamLayout::PerLane)
            return totalWords;
        uint64_t blocks =
            (totalWords + geom_.seqWidth - 1) / geom_.seqWidth;
        uint64_t rows = (blocks + geom_.lanes - 1) / geom_.lanes;
        return rows * geom_.seqWidth;
    }

    /** Reset all allocations (between program phases). */
    void reset() { cursor_ = 0; }

    /** Unallocated words per lane. */
    uint64_t freeWords() const { return geom_.laneWords - cursor_; }
    uint64_t usedWords() const { return cursor_; }

    static constexpr uint32_t kAllocFail = 0xffffffffu;

  private:
    static uint64_t
    roundUp(uint64_t v, uint64_t a)
    {
        return (v + a - 1) / a * a;
    }

    SrfGeometry geom_;
    uint64_t cursor_ = 0;
};

} // namespace isrf

#endif // ISRF_CORE_STREAM_H
