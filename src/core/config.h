/**
 * @file
 * Machine configurations reproducing Tables 2 and 3 of the paper.
 */
#ifndef ISRF_CORE_CONFIG_H
#define ISRF_CORE_CONFIG_H

#include <string>

#include "fault/fault_config.h"
#include "kernel/scheduler.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/memory_system.h"
#include "srf/srf_types.h"

namespace isrf {

/** The four machine configurations of Table 2. */
enum class MachineKind : uint8_t {
    Base,    ///< sequential SRF + DRAM
    ISRF1,   ///< indexed SRF, 1 word/cycle/lane in-lane + cross-lane
    ISRF4,   ///< indexed SRF, 4 words/cycle/lane in-lane + cross-lane
    Cache,   ///< sequential SRF + on-chip vector cache + DRAM
};

const char *machineKindName(MachineKind kind);

/** Full machine parameterization (defaults = Table 3). */
struct MachineConfig
{
    MachineKind kind = MachineKind::Base;
    SrfGeometry srf;
    SrfMode srfMode = SrfMode::SequentialOnly;
    DramConfig dram;
    CacheConfig cache;
    MemSystemConfig mem;
    ClusterResources cluster;

    /**
     * Fixed scheduling separation between indexed address issue and
     * data read (§5.1: 6 cycles in-lane, 20 cross-lane).
     */
    uint32_t inLaneSeparation = 6;
    uint32_t crossLaneSeparation = 20;

    /** Kernel dispatch overhead in cycles (microcode + descriptors). */
    uint32_t kernelStartOverhead = 64;

    /**
     * Fraction of cycles each cluster's network injection port is held
     * by statically scheduled communication unrelated to cross-lane SRF
     * access (the Figure 18 x-axis knob).
     */
    double commOccupancy = 0.0;

    /**
     * Snapshot machine stats every N cycles into the StatSampler
     * (0 = sampling off). The ISRF_SAMPLE environment variable
     * overrides this at Machine::init time.
     */
    uint64_t statSampleInterval = 0;

    uint64_t seed = 1;

    /**
     * Fault-injection / ECC / degradation model (disabled by default).
     * The ISRF_FAULTS environment variable overrides this at
     * Machine::init time; see FaultConfig::parse for the spec syntax.
     */
    FaultConfig faults;

    std::string name() const { return machineKindName(kind); }

    /** Factory for each Table 2 row. */
    static MachineConfig make(MachineKind kind);
    static MachineConfig base() { return make(MachineKind::Base); }
    static MachineConfig isrf1() { return make(MachineKind::ISRF1); }
    static MachineConfig isrf4() { return make(MachineKind::ISRF4); }
    static MachineConfig cacheCfg() { return make(MachineKind::Cache); }

    /**
     * Check invariants. Collects every violation and reports them all
     * in one fatal() so a bad config is fixable in a single pass.
     */
    void validate() const;
};

} // namespace isrf

#endif // ISRF_CORE_CONFIG_H
