/**
 * @file
 * Machine configurations reproducing Tables 2 and 3 of the paper.
 */
#ifndef ISRF_CORE_CONFIG_H
#define ISRF_CORE_CONFIG_H

#include <string>

#include "fault/fault_config.h"
#include "kernel/scheduler.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/memory_system.h"
#include "sim/ticked.h"
#include "srf/srf_types.h"

namespace isrf {

/** The four machine configurations of Table 2. */
enum class MachineKind : uint8_t {
    Base,    ///< sequential SRF + DRAM
    ISRF1,   ///< indexed SRF, 1 word/cycle/lane in-lane + cross-lane
    ISRF4,   ///< indexed SRF, 4 words/cycle/lane in-lane + cross-lane
    Cache,   ///< sequential SRF + on-chip vector cache + DRAM
};

const char *machineKindName(MachineKind kind);

/** Full machine parameterization (defaults = Table 3). */
struct MachineConfig
{
    MachineKind kind = MachineKind::Base;
    SrfGeometry srf;
    SrfMode srfMode = SrfMode::SequentialOnly;
    DramConfig dram;
    CacheConfig cache;
    MemSystemConfig mem;
    ClusterResources cluster;

    /**
     * Fixed scheduling separation between indexed address issue and
     * data read (§5.1: 6 cycles in-lane, 20 cross-lane).
     */
    uint32_t inLaneSeparation = 6;
    uint32_t crossLaneSeparation = 20;

    /** Kernel dispatch overhead in cycles (microcode + descriptors). */
    uint32_t kernelStartOverhead = 64;

    /**
     * Fraction of cycles each cluster's network injection port is held
     * by statically scheduled communication unrelated to cross-lane SRF
     * access (the Figure 18 x-axis knob).
     */
    double commOccupancy = 0.0;

    /**
     * Snapshot machine stats every N cycles into the StatSampler
     * (0 = sampling off). fromEnv() overlays ISRF_SAMPLE here.
     */
    uint64_t statSampleInterval = 0;

    /**
     * Tick-engine mode: Dense ticks every component every cycle (the
     * oracle); Skip fast-forwards over provably quiescent cycles while
     * keeping all statistics cycle-for-cycle identical (DESIGN.md
     * §sim). fromEnv() overlays ISRF_ENGINE (dense|skip) here.
     */
    EngineMode engineMode = EngineMode::Dense;

    /**
     * Cycles between wall-clock deadline checks in Engine::pollCancel.
     * The default keeps batch sweeps cheap; the sweep service daemon
     * tightens it (e.g. to 64) so ms-scale per-request deadlines are
     * observed promptly on slow jobs. Observability-only — it changes
     * when an expired deadline is noticed, never the results of a run
     * that completes — so it is excluded from job fingerprints
     * (SweepRunner::observabilityKnobs()). fromEnv() overlays
     * ISRF_DEADLINE_CHECK here.
     */
    uint64_t deadlineCheckCycles = 1024;

    uint64_t seed = 1;

    /**
     * Fault-injection / ECC / degradation model (disabled by default).
     * fromEnv() overlays ISRF_FAULTS here; see FaultConfig::parse for
     * the spec syntax.
     */
    FaultConfig faults;

    /**
     * Channel spec for the machine's own event tracer (sim/trace.h
     * ISRF_TRACE syntax; "" = tracing off). fromEnv() overlays
     * ISRF_TRACE here.
     */
    std::string traceSpec;

    /** Trace ring capacity in events (ISRF_TRACE_CAPACITY). */
    uint64_t traceCapacity = 1 << 16;

    /**
     * Host-side self-profiling (sim/profiler.h): attribute the
     * simulator's own wall-clock time to phases. Pure observability —
     * a profiled run's results are byte-identical to an unprofiled
     * one. fromEnv() overlays ISRF_PROFILE (0|off|1|on|on:<stride>)
     * here.
     */
    bool profileEnabled = false;

    /** Hot-phase sampling stride: time 1 of every N scope entries. */
    uint64_t profileStride = 64;

    std::string name() const { return machineKindName(kind); }

    /** Factory for each Table 2 row. Never reads the environment. */
    static MachineConfig make(MachineKind kind);
    static MachineConfig base() { return make(MachineKind::Base); }
    static MachineConfig isrf1() { return make(MachineKind::ISRF1); }
    static MachineConfig isrf4() { return make(MachineKind::ISRF4); }
    static MachineConfig cacheCfg() { return make(MachineKind::Cache); }

    /**
     * Overlay the ISRF_* environment overrides (ISRF_FAULTS,
     * ISRF_SAMPLE, ISRF_TRACE, ISRF_TRACE_CAPACITY, ISRF_ENGINE,
     * ISRF_PROFILE)
     * onto this config
     * and return it. This is the ONE place the environment is
     * consulted: Machine::init reads only the config it is handed, so
     * machines built in the same process can never observe each
     * other's configuration. Malformed numeric values are collected
     * and reported in a single warning, then defaulted (a bad
     * ISRF_FAULTS spec is still a user error and fatal()s, as
     * before).
     */
    MachineConfig &fromEnv();

    /**
     * Check invariants. Collects every violation and reports them all
     * in one fatal() so a bad config is fixable in a single pass.
     */
    void validate() const;
};

} // namespace isrf

#endif // ISRF_CORE_CONFIG_H
