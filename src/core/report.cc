#include "core/report.h"

#include <sstream>

#include "util/log.h"
#include "util/table.h"

namespace isrf {

EnergyCounts
energyCounts(Machine &m)
{
    EnergyCounts c;
    c.seqSrfWords = m.srf().seqWordsAccessed();
    c.idxSrfWords = m.srf().idxInLaneWords() + m.srf().idxCrossWords();
    c.cacheWords = m.mem().cache().hits();
    c.dramWords = m.mem().dram().wordsTransferred();
    return c;
}

std::string
machineReport(Machine &m, const ReportOptions &opts)
{
    std::ostringstream out;
    const MachineConfig &cfg = m.config();

    if (opts.includeConfig) {
        out << "=== Machine: " << cfg.name() << " ===\n";
        out << strprintf(
            "lanes=%u srf=%uKB m=%u subArrays=%u mode=%s topology=%s\n",
            cfg.srf.lanes, cfg.srf.totalBytes() / 1024, cfg.srf.seqWidth,
            cfg.srf.subArrays,
            cfg.srfMode == SrfMode::SequentialOnly ? "sequential"
                : cfg.srfMode == SrfMode::Indexed1 ? "ISRF1" : "ISRF4",
            cfg.srf.netTopology == NetTopology::Crossbar ? "crossbar"
                                                         : "ring");
    }

    if (opts.includeBreakdown) {
        const TimeBreakdown &b = m.breakdown();
        out << "cycles=" << m.now() << "  " << b.summary() << "\n";
    }

    if (opts.includeSrf) {
        out << strprintf(
            "srf: seqWords=%llu inLaneIdxWords=%llu crossIdxWords=%llu "
            "subArrayConflicts=%llu\n",
            static_cast<unsigned long long>(m.srf().seqWordsAccessed()),
            static_cast<unsigned long long>(m.srf().idxInLaneWords()),
            static_cast<unsigned long long>(m.srf().idxCrossWords()),
            static_cast<unsigned long long>(m.srf().subArrayConflicts()));
        for (const auto &row : m.srf().stats().formatRows())
            out << "  " << row << "\n";
    }

    if (opts.includeMemory) {
        const Dram &d = m.mem().dram();
        out << strprintf(
            "dram: words=%llu (seq=%llu random=%llu)\n",
            static_cast<unsigned long long>(d.wordsTransferred()),
            static_cast<unsigned long long>(d.seqWords()),
            static_cast<unsigned long long>(d.randomWords()));
        if (m.mem().cacheEnabled()) {
            const Cache &c = m.mem().cache();
            uint64_t acc = c.hits() + c.misses();
            out << strprintf(
                "cache: hits=%llu misses=%llu (%.1f%% hit rate) "
                "writebacks=%llu\n",
                static_cast<unsigned long long>(c.hits()),
                static_cast<unsigned long long>(c.misses()),
                acc ? 100.0 * static_cast<double>(c.hits()) /
                          static_cast<double>(acc)
                    : 0.0,
                static_cast<unsigned long long>(c.writebacks()));
        }
    }

    if (opts.includeKernels && !m.kernelBw().empty()) {
        Table t({"Kernel", "Invocations", "Lane-cycles", "Seq w/c",
                 "In-lane w/c", "Cross w/c"});
        for (const auto &kv : m.kernelBw()) {
            const KernelBwRecord &r = kv.second;
            t.addRow({kv.first, std::to_string(r.invocations),
                      std::to_string(r.laneCycles),
                      fmtDouble(r.seqPerLaneCycle(), 3),
                      fmtDouble(r.inLanePerLaneCycle(), 3),
                      fmtDouble(r.crossPerLaneCycle(), 3)});
        }
        out << t.render();
    }

    if (opts.includeEnergy) {
        EnergyModel energy;
        EnergyEstimate e = energy.estimate(energyCounts(m));
        out << "energy: " << e.summary() << "\n";
    }
    return out.str();
}

} // namespace isrf
