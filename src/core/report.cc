#include "core/report.h"

#include <sstream>

#include "util/json.h"
#include "util/log.h"
#include "util/table.h"

namespace isrf {

EnergyCounts
energyCounts(Machine &m)
{
    EnergyCounts c;
    c.seqSrfWords = m.srf().seqWordsAccessed();
    c.idxSrfWords = m.srf().idxInLaneWords() + m.srf().idxCrossWords();
    c.cacheWords = m.mem().cache().hits();
    c.dramWords = m.mem().dram().wordsTransferred();
    return c;
}

std::string
machineReport(Machine &m, const ReportOptions &opts)
{
    std::ostringstream out;
    const MachineConfig &cfg = m.config();

    if (opts.includeConfig) {
        out << "=== Machine: " << cfg.name() << " ===\n";
        out << strprintf(
            "lanes=%u srf=%uKB m=%u subArrays=%u mode=%s topology=%s\n",
            cfg.srf.lanes, cfg.srf.totalBytes() / 1024, cfg.srf.seqWidth,
            cfg.srf.subArrays,
            cfg.srfMode == SrfMode::SequentialOnly ? "sequential"
                : cfg.srfMode == SrfMode::Indexed1 ? "ISRF1" : "ISRF4",
            cfg.srf.netTopology == NetTopology::Crossbar ? "crossbar"
                                                         : "ring");
    }

    if (opts.includeBreakdown) {
        const TimeBreakdown &b = m.breakdown();
        out << "cycles=" << m.now() << "  " << b.summary() << "\n";
    }

    // Only abnormal endings are surfaced, so reports of healthy runs
    // stay byte-identical across engine modes and run-loop details.
    if (m.lastRunStatus() != RunStatus::Done)
        out << "run status: " << runStatusName(m.lastRunStatus())
            << "\n";

    if (opts.includeSrf) {
        out << strprintf(
            "srf: seqWords=%llu inLaneIdxWords=%llu crossIdxWords=%llu "
            "subArrayConflicts=%llu\n",
            static_cast<unsigned long long>(m.srf().seqWordsAccessed()),
            static_cast<unsigned long long>(m.srf().idxInLaneWords()),
            static_cast<unsigned long long>(m.srf().idxCrossWords()),
            static_cast<unsigned long long>(m.srf().subArrayConflicts()));
        for (const auto &row : m.srf().stats().formatRows())
            out << "  " << row << "\n";
    }

    if (opts.includeMemory) {
        const Dram &d = m.mem().dram();
        out << strprintf(
            "dram: words=%llu (seq=%llu random=%llu)\n",
            static_cast<unsigned long long>(d.wordsTransferred()),
            static_cast<unsigned long long>(d.seqWords()),
            static_cast<unsigned long long>(d.randomWords()));
        if (m.mem().cacheEnabled()) {
            const Cache &c = m.mem().cache();
            uint64_t acc = c.hits() + c.misses();
            out << strprintf(
                "cache: hits=%llu misses=%llu (%.1f%% hit rate) "
                "writebacks=%llu\n",
                static_cast<unsigned long long>(c.hits()),
                static_cast<unsigned long long>(c.misses()),
                acc ? 100.0 * static_cast<double>(c.hits()) /
                          static_cast<double>(acc)
                    : 0.0,
                static_cast<unsigned long long>(c.writebacks()));
        }
    }

    if (opts.includeKernels && !m.kernelBw().empty()) {
        Table t({"Kernel", "Invocations", "Lane-cycles", "Seq w/c",
                 "In-lane w/c", "Cross w/c"});
        for (const auto &kv : m.kernelBw()) {
            const KernelBwRecord &r = kv.second;
            t.addRow({kv.first, std::to_string(r.invocations),
                      std::to_string(r.laneCycles),
                      fmtDouble(r.seqPerLaneCycle(), 3),
                      fmtDouble(r.inLanePerLaneCycle(), 3),
                      fmtDouble(r.crossPerLaneCycle(), 3)});
        }
        out << t.render();
    }

    if (opts.includeEnergy) {
        EnergyModel energy;
        EnergyEstimate e = energy.estimate(energyCounts(m));
        out << "energy: " << e.summary() << "\n";
    }

    if (cfg.faults.enabled) {
        m.syncFaultStats();
        out << strprintf(
            "fault: injected=%llu ecc_corrected=%llu "
            "ecc_uncorrectable=%llu retries=%llu poisoned=%llu "
            "degraded_subarrays=%llu\n",
            static_cast<unsigned long long>(m.srf().faultsInjected() +
                m.mem().dram().ecc().faultsInjected()),
            static_cast<unsigned long long>(m.srf().eccCorrected() +
                m.mem().dram().ecc().corrected()),
            static_cast<unsigned long long>(m.srf().eccUncorrectable() +
                m.mem().dram().ecc().uncorrectable()),
            static_cast<unsigned long long>(m.mem().retries()),
            static_cast<unsigned long long>(m.mem().poisonedWords()),
            static_cast<unsigned long long>(m.srf().offlineSubArrays()));
        if (m.faultInjector()) {
            for (const auto &row : m.faultInjector()->stats().formatRows())
                out << "  " << row << "\n";
        }
        if (m.watchdogTriggered()) {
            out << "watchdog: TRIGGERED at cycle "
                << m.watchdog()->triggeredCycle() << "\n";
        }
    }

    // Host-time profile: present only on profiled machines, so
    // unprofiled reports are byte-identical with profiling compiled in.
    if (m.profiler().enabled() && m.profiler().hasData()) {
        out << "profile (host ns, extrapolated):";
        for (int p = 0; p < Profiler::kPhaseCount; p++) {
            auto ph = static_cast<Profiler::Phase>(p);
            Profiler::PhaseStats s = m.profiler().phase(ph);
            if (s.calls == 0)
                continue;
            out << strprintf(" %s=%.0f", Profiler::phaseName(ph),
                             s.estNs());
        }
        out << "\n";
    }
    return out.str();
}

std::string
machineReportJson(Machine &m, const ReportOptions &opts)
{
    const MachineConfig &cfg = m.config();
    JsonWriter w;
    w.beginObject();

    if (opts.includeConfig) {
        w.key("machine").value(cfg.name());
        w.key("config").beginObject();
        w.field("lanes", cfg.srf.lanes);
        w.field("srf_kb", cfg.srf.totalBytes() / 1024);
        w.field("seq_width", cfg.srf.seqWidth);
        w.field("sub_arrays", cfg.srf.subArrays);
        w.key("mode").value(
            cfg.srfMode == SrfMode::SequentialOnly ? "sequential"
                : cfg.srfMode == SrfMode::Indexed1 ? "ISRF1" : "ISRF4");
        w.key("topology").value(
            cfg.srf.netTopology == NetTopology::Crossbar ? "crossbar"
                                                         : "ring");
        w.endObject();
    }

    if (opts.includeBreakdown) {
        const TimeBreakdown &b = m.breakdown();
        w.field("cycles", static_cast<uint64_t>(m.now()));
        w.key("breakdown").beginObject();
        w.field("loop_body", b.loopBody);
        w.field("mem_stall", b.memStall);
        w.field("srf_stall", b.srfStall);
        w.field("overhead", b.overhead);
        w.field("total", b.total());
        w.endObject();
    }

    // Emitted only for abnormal endings (see machineReport above).
    if (m.lastRunStatus() != RunStatus::Done)
        w.field("run_status",
                std::string(runStatusName(m.lastRunStatus())));

    if (opts.includeSrf) {
        w.key("srf").beginObject();
        w.field("seq_words", m.srf().seqWordsAccessed());
        w.field("in_lane_idx_words", m.srf().idxInLaneWords());
        w.field("cross_idx_words", m.srf().idxCrossWords());
        w.field("sub_array_conflicts", m.srf().subArrayConflicts());
        w.key("counters").beginObject();
        for (const auto &kv : m.srf().stats().counters())
            w.field(kv.first, kv.second.value());
        w.endObject();
        w.key("histograms").beginObject();
        for (const auto &kv : m.srf().stats().histograms()) {
            const Histogram &h = kv.second;
            w.key(kv.first).beginObject();
            w.field("samples", h.totalSamples());
            w.field("mean", h.mean());
            w.field("underflow", h.underflow());
            w.field("overflow", h.overflow());
            w.key("buckets").beginArray();
            for (uint64_t b : h.buckets())
                w.value(b);
            w.endArray();
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }

    if (opts.includeMemory) {
        const Dram &d = m.mem().dram();
        w.key("dram").beginObject();
        w.field("words", d.wordsTransferred());
        w.field("seq_words", d.seqWords());
        w.field("random_words", d.randomWords());
        w.field("row_hits", d.rowHits());
        w.field("row_misses", d.rowMisses());
        w.endObject();
        if (m.mem().cacheEnabled()) {
            const Cache &c = m.mem().cache();
            uint64_t acc = c.hits() + c.misses();
            w.key("cache").beginObject();
            w.field("hits", c.hits());
            w.field("misses", c.misses());
            w.field("hit_rate", acc
                ? static_cast<double>(c.hits()) / static_cast<double>(acc)
                : 0.0);
            w.field("writebacks", c.writebacks());
            w.endObject();
        }
    }

    if (opts.includeKernels) {
        w.key("kernels").beginArray();
        for (const auto &kv : m.kernelBw()) {
            const KernelBwRecord &r = kv.second;
            w.beginObject();
            w.field("name", kv.first);
            w.field("invocations", r.invocations);
            w.field("lane_cycles", r.laneCycles);
            w.field("seq_words_per_lane_cycle", r.seqPerLaneCycle());
            w.field("in_lane_words_per_lane_cycle",
                    r.inLanePerLaneCycle());
            w.field("cross_words_per_lane_cycle", r.crossPerLaneCycle());
            w.endObject();
        }
        w.endArray();
    }

    if (opts.includeEnergy) {
        EnergyModel energy;
        EnergyEstimate e = energy.estimate(energyCounts(m));
        w.key("energy").beginObject();
        w.field("seq_srf_nj", e.seqSrfNj);
        w.field("idx_srf_nj", e.idxSrfNj);
        w.field("cache_nj", e.cacheNj);
        w.field("dram_nj", e.dramNj);
        w.field("total_nj", e.totalNj());
        w.endObject();
    }

    if (cfg.faults.enabled) {
        m.syncFaultStats();
        w.key("fault").beginObject();
        w.field("faults_injected", m.srf().faultsInjected() +
            m.mem().dram().ecc().faultsInjected());
        w.field("ecc_corrected", m.srf().eccCorrected() +
            m.mem().dram().ecc().corrected());
        w.field("ecc_detected_uncorrectable", m.srf().eccUncorrectable() +
            m.mem().dram().ecc().uncorrectable());
        w.field("retries", m.mem().retries());
        w.field("poisoned_words", m.mem().poisonedWords());
        w.field("dropped_words", m.mem().droppedWords());
        w.field("degraded_subarrays",
                static_cast<uint64_t>(m.srf().offlineSubArrays()));
        if (m.faultInjector()) {
            w.key("injected").beginObject();
            for (const auto &kv : m.faultInjector()->stats().counters())
                w.field(kv.first, kv.second.value());
            w.endObject();
        }
        if (m.watchdog())
            w.key("watchdog").raw(m.watchdog()->reportJson());
        w.endObject();
    }

    if (m.sampler() && !m.sampler()->intervals().empty()) {
        w.key("samples").beginArray();
        for (const StatInterval &iv : m.sampler()->intervals()) {
            w.beginObject();
            w.field("start", static_cast<uint64_t>(iv.start));
            w.field("end", static_cast<uint64_t>(iv.end));
            w.key("deltas").beginObject();
            for (const auto &kv : iv.deltas)
                w.field(kv.first, kv.second);
            w.endObject();
            w.key("gauges").beginObject();
            for (const auto &kv : iv.gauges)
                w.field(kv.first, kv.second);
            w.endObject();
            w.endObject();
        }
        w.endArray();
    }

    // Present only when this machine was profiled (see machineReport).
    if (m.profiler().enabled() && m.profiler().hasData()) {
        w.key("profile");
        m.profiler().reportJson(w);
    }

    w.endObject();
    return w.str();
}

} // namespace isrf
