/**
 * @file
 * The stream processor: assembles SRF, clusters, networks and the
 * memory system, orchestrates their per-cycle protocol, manages kernel
 * invocations, and classifies every lane-cycle into the Figure 12
 * execution-time categories.
 */
#ifndef ISRF_CORE_MACHINE_H
#define ISRF_CORE_MACHINE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/breakdown.h"
#include "core/config.h"
#include "core/stream.h"
#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "mem/memory_system.h"
#include "sim/engine.h"
#include "sim/profiler.h"
#include "sim/stat_sampler.h"
#include "sim/trace.h"
#include "util/random.h"

namespace isrf {

/** Sustained SRF bandwidth accounting for one kernel (Figure 13). */
struct KernelBwRecord
{
    uint64_t laneCycles = 0;
    uint64_t seqWords = 0;
    uint64_t inLaneWords = 0;
    uint64_t crossWords = 0;
    uint64_t invocations = 0;

    double
    seqPerLaneCycle() const
    {
        return laneCycles ? static_cast<double>(seqWords) /
            static_cast<double>(laneCycles) : 0.0;
    }
    double
    inLanePerLaneCycle() const
    {
        return laneCycles ? static_cast<double>(inLaneWords) /
            static_cast<double>(laneCycles) : 0.0;
    }
    double
    crossPerLaneCycle() const
    {
        return laneCycles ? static_cast<double>(crossWords) /
            static_cast<double>(laneCycles) : 0.0;
    }
};

/**
 * A complete simulated stream processor (one Table 2 configuration).
 */
class Machine : public Ticked
{
  public:
    Machine() = default;
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    void init(const MachineConfig &cfg);

    const MachineConfig &config() const { return cfg_; }
    Srf &srf() { return srf_; }
    MemorySystem &mem() { return mem_; }
    Crossbar &dataNet() { return dataNet_; }
    SrfAllocator &allocator() { return alloc_; }
    ModuloScheduler &scheduler() { return scheduler_; }
    Engine &engine() { return engine_; }
    Cycle now() const { return engine_.now(); }
    uint32_t lanes() const { return cfg_.srf.lanes; }

    /**
     * This machine's private event tracer. Every component of this
     * machine records here (never into the global Tracer::instance()),
     * so concurrent machines in one process stay fully isolated.
     * Configured from cfg.traceSpec / cfg.traceCapacity at init.
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * This machine's private host-time profiler (same isolation rule
     * as the tracer: nothing in this machine touches the global
     * Profiler::instance()). Configured from cfg.profileEnabled /
     * cfg.profileStride at init; merged into the global aggregate at
     * workload harvest.
     */
    Profiler &profiler() { return profiler_; }
    const Profiler &profiler() const { return profiler_; }

    /**
     * Schedule a kernel with this machine's separation settings
     * (cross-lane separation if the kernel has a cross-lane stream).
     */
    KernelSchedule scheduleKernel(const KernelGraph &graph);

    /**
     * Launch a kernel invocation across all lanes. The machine rewinds
     * all bound slots, binds every cluster, flushes output slots after
     * the last lane finishes, and clears the active state once flushes
     * and indexed writes have drained. One kernel runs at a time.
     */
    void launchKernel(std::shared_ptr<KernelInvocation> inv);

    bool kernelActive() const { return active_ != nullptr; }

    /** Advance one machine cycle (also registered with the engine). */
    void tick(Cycle now) override;
    std::string tickedName() const override { return "machine"; }

    /**
     * Skip-mode event horizon: the minimum over the fault injector,
     * every cluster, the SRF, and the memory system — with two forced
     * dense cases: per-cycle comm-occupancy RNG draws (bulk replay
     * would desync the stream) and the cycle right after a kernel
     * completes (the stream-program driver reacts to it).
     */
    Cycle nextEvent(Cycle now) override;

    /** Credit skipped cycles to lanes, breakdown, SRF and memory. */
    void skipTo(Cycle from, Cycle to) override;

    /** Step the engine n cycles. */
    void step(uint64_t n = 1) { engine_.steps(n); }

    /**
     * Step until pred() or the cycle limit; never panics. When the
     * watchdog trips before pred() holds, a Limit result is downgraded
     * to RunStatus::Stalled so callers can distinguish "no forward
     * progress" from an honest cycle-budget overrun. TimedOut and
     * Cancelled (from the engine's CancelToken) pass through
     * unchanged — a wall-clock deadline is a different diagnosis than
     * a stall, even if the watchdog also fired.
     */
    RunResult
    runUntil(const std::function<bool()> &pred,
             uint64_t limit = 1ull << 30)
    {
        RunResult r = engine_.runUntil(pred, limit);
        if (r.status == RunStatus::Limit && watchdogTriggered())
            r.status = RunStatus::Stalled;
        noteRunStatus(r.status);
        return r;
    }

    /**
     * How the most recent drive loop over this machine ended (set by
     * runUntil() and StreamProgram::run); surfaces in machineReport /
     * machineReportJson when not Done. Done before any run.
     */
    RunStatus lastRunStatus() const { return lastRunStatus_; }
    void noteRunStatus(RunStatus s) { lastRunStatus_ = s; }

    const TimeBreakdown &breakdown() const { return breakdown_; }
    const std::map<std::string, KernelBwRecord> &kernelBw() const
    {
        return kernelBw_;
    }

    /** Zero breakdown/bandwidth/DRAM statistics (not machine state). */
    void resetStats();

    /**
     * Interval stat sampler; non-null only when sampling is enabled
     * (cfg.statSampleInterval or the ISRF_SAMPLE environment variable).
     */
    StatSampler *sampler() { return sampler_.get(); }
    const StatSampler *sampler() const { return sampler_.get(); }

    // --- fault model (src/fault/, DESIGN.md §Fault model) ---

    /** True when a fault schedule is active (config or ISRF_FAULTS). */
    bool faultsEnabled() const { return faultsEnabled_; }

    /** Injector; non-null only when faults are enabled. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const { return injector_.get(); }

    /** Watchdog; non-null only when cfg.faults.watchdogInterval > 0. */
    Watchdog *watchdog() { return watchdog_.get(); }
    const Watchdog *watchdog() const { return watchdog_.get(); }
    bool watchdogTriggered() const
    {
        return watchdog_ && watchdog_->triggered();
    }

    /** Repair all pending correctable faults. @return words repaired. */
    uint64_t scrubFaults();

    /** Publish SRF/memory fault counters into their stat groups. */
    void syncFaultStats();

    // ------------------------------------------------------------------
    // Snapshot (util/snapshot.h, DESIGN.md §17)
    // ------------------------------------------------------------------

    /**
     * Attach a checkpoint context (null = checkpointing off). The run
     * loop (StreamProgram::run) saves/restores through it.
     */
    void setCheckpoint(CheckpointContext *ctx) { checkpoint_ = ctx; }
    CheckpointContext *checkpoint() const { return checkpoint_; }

    /**
     * FNV-1a over every config field that shapes snapshot section
     * layout (kind, SRF geometry, memory/cache/DRAM sizing, seed,
     * fault/sampler wiring). Stored in the snapshot header and checked
     * by loadSnapshot() before any component state is touched.
     */
    uint64_t geometryHash() const;

    /**
     * Serialize the complete machine state (all components + clock)
     * into `snap`. Must be called at a cycle boundary (between engine
     * steps). The caller stamps the job fingerprint.
     */
    void saveSnapshot(Snapshot &snap);

    /**
     * Restore a verified snapshot into this machine, which must have
     * been init()ed with the same config that produced it.
     * `activeInv` is the deterministically rebuilt invocation of the
     * kernel that was mid-flight at save time (null when none was).
     * On failure returns false with *err set and the machine must be
     * considered poisoned: re-init() and restart from zero.
     */
    bool loadSnapshot(const Snapshot &snap,
                      std::shared_ptr<KernelInvocation> activeInv,
                      std::string *err);

  private:
    void finishKernelIfDone(Cycle now);
    void initSampler();
    void initFaults();
    void saveMachineSection(SnapshotWriter &w) const;
    bool loadMachineSection(SnapshotReader &r);

    MachineConfig cfg_;
    Tracer tracer_;
    Profiler profiler_;
    Engine engine_;
    Crossbar dataNet_;
    Srf srf_;
    MemorySystem mem_;
    std::vector<Cluster> clusters_;
    SrfAllocator alloc_;
    ModuloScheduler scheduler_;
    Rng rng_;

    std::unique_ptr<StatSampler> sampler_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<Watchdog> watchdog_;
    bool faultsEnabled_ = false;
    RunStatus lastRunStatus_ = RunStatus::Done;

    std::shared_ptr<KernelInvocation> active_;
    std::vector<SlotId> activeOutputs_;
    std::vector<SlotId> activeIdxWriteSlots_;
    bool flushing_ = false;
    Cycle kernelStart_ = 0;
    /** Cycle the active kernel finished (forces a dense cycle after). */
    Cycle kernelEventCycle_ = kNoEvent;
    uint64_t bwSeq0_ = 0, bwIn0_ = 0, bwCross0_ = 0;
    uint16_t traceCh_ = 0;
    const char *activeKernelName_ = nullptr;  ///< interned, for spans

    TimeBreakdown breakdown_;
    std::map<std::string, KernelBwRecord> kernelBw_;
    CheckpointContext *checkpoint_ = nullptr;
};

} // namespace isrf

#endif // ISRF_CORE_MACHINE_H
