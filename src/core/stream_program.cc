#include "core/stream_program.h"

#include <algorithm>

#include "util/hash.h"
#include "util/log.h"

namespace isrf {

StreamProgram::StreamProgram(Machine &m) : machine_(m)
{
    uint32_t n = m.config().srf.maxStreamSlots;
    lastWriter_.assign(n, -1);
    readersSinceWrite_.assign(n, {});
}

StreamProgram::~StreamProgram()
{
    for (SlotId id : openedSlots_)
        machine_.srf().closeSlot(id);
}

SlotId
StreamProgram::addStream(const std::string &name, uint64_t totalWords,
                         StreamLayout layout, StreamDir dir, bool indexed,
                         bool crossLane, uint32_t recordWords,
                         std::vector<uint32_t> perLaneLen, bool readWrite)
{
    uint32_t base = machine_.allocator().alloc(totalWords, layout);
    if (base == SrfAllocator::kAllocFail)
        fatal("StreamProgram: SRF allocation failed for stream '%s' "
              "(%llu words, %llu free per lane)", name.c_str(),
              static_cast<unsigned long long>(totalWords),
              static_cast<unsigned long long>(
                  machine_.allocator().freeWords()));
    SlotConfig cfg;
    cfg.dir = dir;
    // Binding properties are retargeted per kernel launch; what is
    // declared here only matters for direct Srf-level use.
    cfg.indexed = (indexed || readWrite) && machine_.config().srfMode !=
        SrfMode::SequentialOnly;
    cfg.crossLane = crossLane && cfg.indexed && !readWrite;
    cfg.readWrite = readWrite && cfg.indexed;
    cfg.layout = layout;
    cfg.base = base;
    cfg.lengthWords = static_cast<uint32_t>(totalWords);
    cfg.perLaneLen = std::move(perLaneLen);
    cfg.recordWords = recordWords;
    SlotId id = machine_.srf().openSlot(cfg);
    openedSlots_.push_back(id);
    return id;
}

SlotId
StreamProgram::addStreamAlias(const std::string &name, SlotId orig)
{
    (void)name;
    SlotConfig cfg = machine_.srf().slotConfig(orig);
    SlotId id = machine_.srf().openSlot(cfg);
    openedSlots_.push_back(id);
    return id;
}

SlotId
StreamProgram::addStreamAlias(const std::string &name, SlotId orig,
                              bool crossLane)
{
    (void)name;
    SlotConfig cfg = machine_.srf().slotConfig(orig);
    cfg.crossLane = crossLane && cfg.indexed;
    SlotId id = machine_.srf().openSlot(cfg);
    openedSlots_.push_back(id);
    return id;
}

void
StreamProgram::fillStream(SlotId slot, const std::vector<Word> &data)
{
    machine_.srf().fillSlot(slot, data);
}

std::vector<Word>
StreamProgram::dumpStream(SlotId slot) const
{
    return machine_.srf().dumpSlot(slot);
}

ProgOpId
StreamProgram::addMemOp(MemOp op, std::vector<SlotId> reads,
                        std::vector<SlotId> writes)
{
    Op o;
    o.kind = Op::Kind::Mem;
    o.mem = std::move(op);
    o.readsSlots = std::move(reads);
    o.writesSlots = std::move(writes);
    inferDeps(o);
    ops_.push_back(std::move(o));
    return static_cast<ProgOpId>(ops_.size() - 1);
}

ProgOpId
StreamProgram::load(SlotId dst, uint64_t memBase, bool cached,
                    uint64_t lengthWords)
{
    MemOp op;
    op.kind = MemOpKind::Load;
    op.memBase = memBase;
    op.srfSlot = dst;
    op.lengthWords = lengthWords;
    op.cached = cached;
    return addMemOp(std::move(op), {}, {dst});
}

ProgOpId
StreamProgram::store(SlotId src, uint64_t memBase, bool cached,
                     uint64_t lengthWords)
{
    MemOp op;
    op.kind = MemOpKind::Store;
    op.memBase = memBase;
    op.srfSlot = src;
    op.lengthWords = lengthWords;
    op.cached = cached;
    return addMemOp(std::move(op), {src}, {});
}

ProgOpId
StreamProgram::gather(SlotId dst, uint64_t memBase,
                      std::vector<uint32_t> indices, uint32_t recordWords,
                      bool cached, uint64_t dstOffsetWords)
{
    MemOp op;
    op.kind = MemOpKind::Gather;
    op.memBase = memBase;
    op.srfSlot = dst;
    op.indices = std::move(indices);
    op.recordWords = recordWords;
    op.cached = cached;
    op.dstOffsetWords = dstOffsetWords;
    return addMemOp(std::move(op), {}, {dst});
}

ProgOpId
StreamProgram::scatter(SlotId src, uint64_t memBase,
                       std::vector<uint32_t> indices, uint32_t recordWords,
                       bool cached)
{
    MemOp op;
    op.kind = MemOpKind::Scatter;
    op.memBase = memBase;
    op.srfSlot = src;
    op.indices = std::move(indices);
    op.recordWords = recordWords;
    op.cached = cached;
    return addMemOp(std::move(op), {src}, {});
}

ProgOpId
StreamProgram::kernel(std::shared_ptr<KernelInvocation> inv)
{
    if (!inv || !inv->graph)
        panic("StreamProgram::kernel: empty invocation");
    Op o;
    o.kind = Op::Kind::Kernel;
    o.inv = std::move(inv);
    const auto &slots = o.inv->graph->streamSlots();
    for (size_t s = 0; s < slots.size(); s++) {
        if (slots[s].isOutput)
            o.writesSlots.push_back(o.inv->slots[s]);
        else
            o.readsSlots.push_back(o.inv->slots[s]);
    }
    inferDeps(o);
    ops_.push_back(std::move(o));
    return static_cast<ProgOpId>(ops_.size() - 1);
}

void
StreamProgram::dependsOn(ProgOpId after, ProgOpId before)
{
    if (after < 0 || before < 0 ||
            static_cast<size_t>(after) >= ops_.size() ||
            static_cast<size_t>(before) >= ops_.size())
        panic("StreamProgram::dependsOn: bad op ids %d, %d", after, before);
    ops_[after].deps.push_back(before);
}

void
StreamProgram::inferDeps(Op &op)
{
    auto id = static_cast<ProgOpId>(ops_.size());
    auto addDep = [&](ProgOpId d) {
        if (d >= 0 && std::find(op.deps.begin(), op.deps.end(), d) ==
                op.deps.end()) {
            op.deps.push_back(d);
        }
    };
    for (SlotId r : op.readsSlots)
        addDep(lastWriter_[r]);  // RAW
    for (SlotId w : op.writesSlots) {
        addDep(lastWriter_[w]);  // WAW
        for (ProgOpId r : readersSinceWrite_[w])
            addDep(r);           // WAR
    }
    for (SlotId w : op.writesSlots) {
        lastWriter_[w] = id;
        readersSinceWrite_[w].clear();
    }
    for (SlotId r : op.readsSlots)
        readersSinceWrite_[r].push_back(id);
}

bool
StreamProgram::depsDone(const Op &op) const
{
    for (ProgOpId d : op.deps)
        if (!ops_[d].completed)
            return false;
    return true;
}

void
StreamProgram::tryIssue()
{
    for (size_t i = scanFrom_; i < ops_.size(); i++) {
        Op &op = ops_[i];
        if (op.issued || !depsDone(op))
            continue;
        if (op.kind == Op::Kind::Mem) {
            op.memId = machine_.mem().submit(op.mem);
            op.issued = true;
        } else {
            if (machine_.kernelActive() || activeKernelOp_ >= 0)
                continue;
            machine_.launchKernel(op.inv);
            activeKernelOp_ = static_cast<ProgOpId>(i);
            op.issued = true;
        }
    }
}

void
StreamProgram::updateCompletion()
{
    for (size_t i = scanFrom_; i < ops_.size(); i++) {
        Op &op = ops_[i];
        if (!op.issued || op.completed)
            continue;
        if (op.kind == Op::Kind::Mem) {
            op.completed = machine_.mem().done(op.memId);
        } else if (static_cast<ProgOpId>(i) == activeKernelOp_ &&
                   !machine_.kernelActive()) {
            op.completed = true;
            activeKernelOp_ = -1;
        }
    }
    // Deps only ever point backwards, so a contiguous completed prefix
    // never needs rescanning. Issue order is preserved for the ops the
    // window still covers.
    while (scanFrom_ < ops_.size() && ops_[scanFrom_].completed)
        scanFrom_++;
}

bool
StreamProgram::allDone() const
{
    for (size_t i = scanFrom_; i < ops_.size(); i++)
        if (!ops_[i].completed)
            return false;
    return true;
}

uint64_t
StreamProgram::structureHash() const
{
    std::string canon;
    canon.reserve(ops_.size() * 48);
    canon += strprintf("ops=%zu slots=%zu|", ops_.size(),
                       openedSlots_.size());
    for (const Op &op : ops_) {
        if (op.kind == Op::Kind::Mem) {
            canon += strprintf(
                "m%u@%llu:s%d:l%llu:i%zu:r%u:c%u:o%llu",
                static_cast<unsigned>(op.mem.kind),
                static_cast<unsigned long long>(op.mem.memBase),
                op.mem.srfSlot,
                static_cast<unsigned long long>(op.mem.lengthWords),
                op.mem.indices.size(), op.mem.recordWords,
                op.mem.cached ? 1u : 0u,
                static_cast<unsigned long long>(op.mem.dstOffsetWords));
        } else {
            canon += strprintf("k%s:n%zu", op.inv->graph->name().c_str(),
                               op.inv->slots.size());
            for (SlotId s : op.inv->slots)
                canon += strprintf(",%d", s);
        }
        canon += '[';
        for (ProgOpId d : op.deps)
            canon += strprintf("%d,", d);
        canon += "];";
    }
    return fnv1a(canon);
}

void
StreamProgram::saveState(SnapshotWriter &w) const
{
    w.u64(structureHash());
    w.u64(scanFrom_);
    w.i64(activeKernelOp_);
    w.u64(ops_.size());
    for (const Op &op : ops_) {
        w.b(op.issued);
        w.b(op.completed);
        w.i64(op.memId);
    }
}

bool
StreamProgram::loadState(SnapshotReader &r)
{
    uint64_t hash = 0;
    if (!r.u64(hash))
        return false;
    if (hash != structureHash()) {
        r.markFailed();
        return false;
    }
    uint64_t scan = 0;
    int64_t activeOp = -1;
    uint64_t nops = 0;
    if (!r.u64(scan) || !r.i64(activeOp) || !r.len(nops, 10))
        return false;
    if (nops != ops_.size() || scan > nops ||
        activeOp >= static_cast<int64_t>(nops)) {
        r.markFailed();
        return false;
    }
    if (activeOp >= 0 && ops_[static_cast<size_t>(activeOp)].kind !=
            Op::Kind::Kernel) {
        r.markFailed();
        return false;
    }
    for (Op &op : ops_)
        if (!r.b(op.issued) || !r.b(op.completed) || !r.i64(op.memId))
            return false;
    scanFrom_ = static_cast<size_t>(scan);
    activeKernelOp_ = static_cast<ProgOpId>(activeOp);
    return true;
}

void
StreamProgram::maybeRestore(CheckpointContext &ckpt)
{
    Snapshot snap;
    std::string err;
    switch (loadSnapshotFile(ckpt.path(), ckpt.fingerprint(), snap,
                             err)) {
      case SnapshotLoad::Missing:
        return;
      case SnapshotLoad::Corrupt:
        quarantineSnapshotFile(ckpt.path(), err);
        ckpt.noteQuarantined();
        return;
      case SnapshotLoad::Stale:
        // A valid checkpoint from a different job: never ours to
        // apply or to destroy.
        ISRF_WARN("checkpoint %s ignored: %s", ckpt.path().c_str(),
                  err.c_str());
        return;
      case SnapshotLoad::Ok:
        break;
    }
    const std::string *prog = snap.findSection(kSnapProgram);
    if (!prog) {
        quarantineSnapshotFile(ckpt.path(),
                               "missing program section");
        ckpt.noteQuarantined();
        return;
    }
    SnapshotReader pr(*prog);
    // loadState checks the structural hash before touching any state,
    // so a checkpoint from another phase of a multi-program workload
    // is skipped cleanly here (the right program will pick it up).
    if (!loadState(pr) || !pr.atEnd()) {
        ISRF_WARN("checkpoint %s: not for this stream program; "
                  "starting from zero", ckpt.path().c_str());
        return;
    }
    std::shared_ptr<KernelInvocation> activeInv;
    if (activeKernelOp_ >= 0)
        activeInv = ops_[static_cast<size_t>(activeKernelOp_)].inv;
    if (!machine_.loadSnapshot(snap, std::move(activeInv), &err)) {
        // Unreachable for on-disk corruption (every checksum, the
        // geometry hash and the program hash verified above, before
        // any machine mutation); reaching it means this binary's
        // section layout drifted without a format-version bump, and
        // the machine is part-restored — stopping is the only path
        // that cannot produce a wrong result.
        quarantineSnapshotFile(ckpt.path(), err);
        panic("StreamProgram: verified checkpoint failed to apply "
              "(%s) — snapshot layout drift?", err.c_str());
    }
    ckpt.noteRestored(machine_.now());
    ISRF_WARN("resumed from checkpoint %s at cycle %llu",
              ckpt.path().c_str(),
              static_cast<unsigned long long>(machine_.now()));
}

void
StreamProgram::saveCheckpoint(CheckpointContext &ckpt)
{
    Snapshot snap;
    machine_.saveSnapshot(snap);
    snap.fingerprint = ckpt.fingerprint();
    SnapshotWriter pw;
    saveState(pw);
    snap.addSection(kSnapProgram, pw);
    std::string err;
    if (snap.writeAtomic(ckpt.path(), err)) {
        ckpt.noteSaved(machine_.now());
    } else {
        // A failed save never blocks the run; the job just loses this
        // restart point.
        ISRF_WARN("checkpoint save to %s failed: %s",
                  ckpt.path().c_str(), err.c_str());
        ckpt.noteSaveFailed(machine_.now());
    }
}

uint64_t
StreamProgram::run(uint64_t maxCycles)
{
    // Engine::step() advances one cycle in dense mode but may advance
    // through a whole quiescent region in skip mode, so progress is
    // measured on the machine clock, not loop iterations. Every cycle
    // this driver could react to (op/kernel completion) is pinned
    // dense by the components' nextEvent() contracts, so the sequence
    // of issue decisions is identical in both modes.
    const Cycle start = machine_.now();
    uint64_t cycles = 0;
    status_ = RunStatus::Done;
    Profiler::Scope prof(machine_.profiler(), Profiler::Run);
    // Mid-job checkpointing (DESIGN.md §17): resume from the newest
    // valid checkpoint before the first step — `start` stays at the
    // pre-restore clock, so the returned cycle count (and every
    // downstream report) is identical to an uninterrupted run.
    CheckpointContext *ckpt = machine_.checkpoint();
    if (ckpt)
        maybeRestore(*ckpt);
    const Cycle execStart = machine_.now();
    cycles = execStart - start;
    while (true) {
        updateCompletion();
        if (allDone() && machine_.mem().idle() && !machine_.kernelActive())
            break;
        // Watchdog trip: stop gracefully with the cycles spent so far;
        // the caller inspects Machine::watchdogTriggered() for the
        // structured diagnostic instead of getting an abort().
        if (machine_.watchdogTriggered()) {
            ISRF_WARN("StreamProgram::run: watchdog tripped at cycle "
                      "%llu; stopping",
                      static_cast<unsigned long long>(cycles));
            status_ = RunStatus::Stalled;
            break;
        }
        // Cooperative cancellation/deadline (Engine::setCancel): the
        // same check points as Engine::runUntil — between steps, after
        // the completion test, so a finished program is never reported
        // cancelled and dense/skip modes stop identically.
        RunStatus cs = machine_.engine().pollCancel();
        if (cs != RunStatus::Done) {
            ISRF_WARN("StreamProgram::run: %s at cycle %llu; stopping",
                      runStatusName(cs),
                      static_cast<unsigned long long>(cycles));
            status_ = cs;
            break;
        }
        tryIssue();
        machine_.engine().step();
        cycles = machine_.now() - start;
        if (cycles > maxCycles)
            panic("StreamProgram::run: exceeded %llu cycles (deadlock?)",
                  static_cast<unsigned long long>(maxCycles));
        if (ckpt && ckpt->saveDue(machine_.now())) {
            saveCheckpoint(*ckpt);
            if (ckpt->stopAfterSave && ckpt->saves() > 0) {
                status_ = RunStatus::Cancelled;
                break;
            }
        }
    }
    if (ckpt)
        ckpt->addExecuted(machine_.now() - execStart);
    machine_.noteRunStatus(status_);
    return cycles;
}

} // namespace isrf
