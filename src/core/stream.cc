#include "core/stream.h"
