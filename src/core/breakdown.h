/**
 * @file
 * Execution-time breakdown accounting matching Figure 12's categories:
 * kernel loop body, memory stall, SRF stall, and kernel overheads.
 * Units are lane-cycles (machine cycles x lanes) so per-lane states
 * aggregate into a stacked total.
 */
#ifndef ISRF_CORE_BREAKDOWN_H
#define ISRF_CORE_BREAKDOWN_H

#include <cstdint>
#include <string>

namespace isrf {

/** Stacked execution-time components (lane-cycles). */
struct TimeBreakdown
{
    uint64_t loopBody = 0;
    uint64_t memStall = 0;
    uint64_t srfStall = 0;
    uint64_t overhead = 0;

    uint64_t
    total() const
    {
        return loopBody + memStall + srfStall + overhead;
    }

    TimeBreakdown &
    operator+=(const TimeBreakdown &o)
    {
        loopBody += o.loopBody;
        memStall += o.memStall;
        srfStall += o.srfStall;
        overhead += o.overhead;
        return *this;
    }

    void
    reset()
    {
        loopBody = memStall = srfStall = overhead = 0;
    }

    /** Component as a fraction of the given reference total. */
    double frac(uint64_t component, uint64_t ref) const
    {
        return ref ? static_cast<double>(component) /
            static_cast<double>(ref) : 0.0;
    }

    std::string summary() const;
};

} // namespace isrf

#endif // ISRF_CORE_BREAKDOWN_H
