#include "core/machine.h"

#include <algorithm>

#include "util/hash.h"
#include "util/log.h"

namespace isrf {

void
Machine::init(const MachineConfig &cfg)
{
    cfg.validate();
    cfg_ = cfg;
    // Re-initialization safety: drop every engine registration first.
    // A second init() used to leave the engine holding dangling
    // pointers to the watchdog/sampler destroyed below (and a stale
    // clock); clear() is the one sanctioned way to rebuild.
    engine_.clear();
    engine_.setMode(cfg_.engineMode);
    engine_.setDeadlineCheckCycles(cfg_.deadlineCheckCycles);
    active_.reset();
    activeOutputs_.clear();
    activeIdxWriteSlots_.clear();
    flushing_ = false;
    kernelStart_ = 0;
    kernelEventCycle_ = kNoEvent;
    activeKernelName_ = nullptr;
    bwSeq0_ = bwIn0_ = bwCross0_ = 0;
    lastRunStatus_ = RunStatus::Done;
    // The machine's private tracer: nothing here reads the
    // environment — env overrides belong in MachineConfig::fromEnv().
    if (!cfg_.traceSpec.empty()) {
        tracer_.setCapacity(cfg_.traceCapacity);
        tracer_.enableChannels(cfg_.traceSpec);
    } else {
        tracer_.disable();
        tracer_.clear();
    }
    engine_.setTracer(&tracer_, cfg_.name());
    profiler_.configure(cfg_.profileEnabled, cfg_.profileStride);
    profiler_.reset();
    dataNet_.init(cfg.srf.lanes, 1, 1, cfg.srf.netTopology);
    srf_.init(cfg.srf, cfg.srfMode, &dataNet_, &tracer_);
    mem_.init(cfg.mem, cfg.dram, cfg.cache, &srf_, &tracer_);
    clusters_.assign(cfg.srf.lanes, Cluster());
    for (uint32_t l = 0; l < cfg.srf.lanes; l++)
        clusters_[l].init(l, &srf_, &dataNet_, &tracer_);
    alloc_.init(cfg.srf);
    scheduler_ = ModuloScheduler(cfg.cluster, cfg.seed);
    rng_.reseed(cfg.seed * 7919 + 13);
    engine_.add(this);
    traceCh_ = tracer_.channel("machine");
    initFaults();
    initSampler();
    breakdown_.reset();
    kernelBw_.clear();
}

void
Machine::initFaults()
{
    const FaultConfig &fc = cfg_.faults;
    faultsEnabled_ = fc.enabled;
    injector_.reset();
    watchdog_.reset();
    if (fc.enabled) {
        srf_.setDegradeThreshold(fc.degradeThreshold);
        mem_.setFaultConfig(fc);
        injector_ = std::make_unique<FaultInjector>();
        injector_->init(fc, cfg_.seed, &srf_, &mem_, &dataNet_,
                        &tracer_);
    }
    if (fc.watchdogInterval > 0) {
        watchdog_ = std::make_unique<Watchdog>();
        // Progress = any retired work: SRF words moved, DRAM words
        // transferred, or cluster loop-body cycles executed.
        watchdog_->init(fc.watchdogInterval, fc.watchdogStallIntervals,
            [this]() {
                return srf_.seqWordsAccessed() + srf_.idxInLaneWords() +
                    srf_.idxCrossWords() + mem_.dram().wordsTransferred() +
                    breakdown_.loopBody;
            },
            &tracer_, cfg_.name());
        engine_.add(watchdog_.get());
    }
}

uint64_t
Machine::scrubFaults()
{
    return srf_.scrubFaults() + mem_.dram().scrubEcc();
}

void
Machine::syncFaultStats()
{
    srf_.syncFaultStats();
    mem_.syncFaultStats();
}

void
Machine::initSampler()
{
    uint64_t interval = cfg_.statSampleInterval;
    if (interval == 0) {
        sampler_.reset();
        return;
    }
    sampler_ = std::make_unique<StatSampler>(interval);
    sampler_->setTracer(&tracer_);
    sampler_->addGroup(&srf_.stats());
    sampler_->addGroup(&mem_.stats());
    if (injector_)
        sampler_->addGroup(&injector_->stats());
    sampler_->addCounterFn("dram.words",
        [this]() { return mem_.dram().wordsTransferred(); });
    sampler_->addCounterFn("dram.row_hits",
        [this]() { return mem_.dram().rowHits(); });
    sampler_->addCounterFn("dram.row_misses",
        [this]() { return mem_.dram().rowMisses(); });
    sampler_->addCounterFn("cache.hits",
        [this]() { return mem_.cache().hits(); });
    sampler_->addCounterFn("cache.misses",
        [this]() { return mem_.cache().misses(); });
    sampler_->addGauge("mem.in_flight",
        [this]() { return static_cast<double>(mem_.inFlight()); });
    sampler_->addGauge("srf.remote_queue_depth",
        [this]() {
            return static_cast<double>(srf_.maxRemoteQueueDepth());
        });
    sampler_->addGauge("cluster.busy_frac", [this]() {
        uint32_t busy = 0;
        for (const auto &c : clusters_)
            if (c.lastCat() != CycleCat::Idle)
                busy++;
        return clusters_.empty() ? 0.0
            : static_cast<double>(busy) /
              static_cast<double>(clusters_.size());
    });
    // Register last so it samples after every component has ticked.
    engine_.add(sampler_.get());
}

KernelSchedule
Machine::scheduleKernel(const KernelGraph &graph)
{
    bool crossLane = false;
    for (const auto &slot : graph.streamSlots())
        if (slot.kind == StreamKind::IdxCross)
            crossLane = true;
    uint32_t sep = crossLane ? cfg_.crossLaneSeparation
                             : cfg_.inLaneSeparation;
    return scheduler_.schedule(graph, sep);
}

void
Machine::launchKernel(std::shared_ptr<KernelInvocation> inv)
{
    if (active_)
        panic("Machine: kernel %s launched while %s active",
              inv->graph->name().c_str(), active_->graph->name().c_str());
    if (inv->laneTraces.size() != clusters_.size())
        panic("Machine: invocation has %zu lane traces for %zu lanes",
              inv->laneTraces.size(), clusters_.size());
    active_ = std::move(inv);
    active_->startOverhead = cfg_.kernelStartOverhead;
    flushing_ = false;
    kernelStart_ = engine_.now();

    activeOutputs_.clear();
    activeIdxWriteSlots_.clear();
    const auto &slots = active_->graph->streamSlots();
    for (size_t s = 0; s < slots.size(); s++) {
        SlotId id = active_->slots[s];
        bool rw = slots[s].kind == StreamKind::IdxInLaneRw;
        StreamDir dir = slots[s].isOutput && !rw ? StreamDir::Out
                                                 : StreamDir::In;
        bool indexed = slots[s].kind == StreamKind::IdxInLane ||
            slots[s].kind == StreamKind::IdxCross || rw;
        bool cross = slots[s].kind == StreamKind::IdxCross;
        srf_.configureSlotBinding(id, dir, indexed, cross, rw);
        if (slots[s].isOutput) {
            if (slots[s].kind == StreamKind::SeqOut)
                activeOutputs_.push_back(id);
            else
                activeIdxWriteSlots_.push_back(id);
        }
    }
    for (auto &c : clusters_)
        c.bind(active_.get(), engine_.now());

    if (tracer_.on()) {
        activeKernelName_ = tracer_.intern(active_->graph->name());
        tracer_.begin(traceCh_, activeKernelName_, engine_.now());
    }

    bwSeq0_ = srf_.seqWordsAccessed();
    bwIn0_ = srf_.idxInLaneWords();
    bwCross0_ = srf_.idxCrossWords();
}

void
Machine::finishKernelIfDone(Cycle now)
{
    if (!active_)
        return;
    if (!flushing_) {
        for (auto &c : clusters_)
            if (!c.done(now))
                return;
        for (SlotId id : activeOutputs_)
            srf_.flushSlot(id);
        flushing_ = true;
    }
    for (SlotId id : activeOutputs_)
        if (!srf_.flushComplete(id))
            return;
    for (SlotId id : activeIdxWriteSlots_)
        if (!srf_.idxWritesDrained(id))
            return;

    // Record Figure 13 bandwidth numbers for this kernel.
    KernelBwRecord &rec = kernelBw_[active_->graph->name()];
    uint64_t dur = now >= kernelStart_ ? now - kernelStart_ + 1 : 1;
    rec.laneCycles += dur * lanes();
    rec.seqWords += srf_.seqWordsAccessed() - bwSeq0_;
    rec.inLaneWords += srf_.idxInLaneWords() - bwIn0_;
    rec.crossWords += srf_.idxCrossWords() - bwCross0_;
    rec.invocations++;

    for (auto &c : clusters_)
        c.unbind();
    if (activeKernelName_) {
        if (tracer_.on())
            tracer_.end(traceCh_, activeKernelName_, now);
        activeKernelName_ = nullptr;
    }
    active_.reset();
    flushing_ = false;
    // The stream-program driver observes this completion between ticks
    // and may immediately issue dependent work: keep the next cycle
    // dense so both engine modes see that work start at the same cycle.
    kernelEventCycle_ = now;
}

Cycle
Machine::nextEvent(Cycle now)
{
    Profiler::Scope prof(profiler_, Profiler::SkipJump);
    // Comm-occupancy draws the RNG per lane per cycle; skipping cycles
    // would desync the stream from dense mode.
    if (cfg_.commOccupancy > 0)
        return now + 1;
    if (kernelEventCycle_ == now)
        return now + 1;
    // The SRF's pending-claims mask makes its query O(1); ask it first
    // so a busy SRF short-circuits the per-cluster scan. now + 1 is the
    // global minimum any component may report, so an early exit cannot
    // change the resulting min.
    Cycle wake = srf_.nextEvent(now);
    if (wake == now + 1)
        return wake;
    if (injector_)
        wake = std::min(wake, injector_->nextEvent(now));
    for (auto &c : clusters_) {
        wake = std::min(wake, c.nextEvent(now));
        if (wake == now + 1)
            return wake;
    }
    wake = std::min(wake, mem_.nextEvent(now));
    return wake;
}

void
Machine::skipTo(Cycle from, Cycle to)
{
    Profiler::Scope prof(profiler_, Profiler::SkipJump);
    uint64_t n = to - from;
    if (active_) {
        // Mirror the dense per-cluster classification into the
        // Figure 12 buckets, n cycles at a time.
        for (auto &c : clusters_) {
            switch (c.skipCycles(from, to)) {
              case CycleCat::Loop: breakdown_.loopBody += n; break;
              case CycleCat::SrfStall: breakdown_.srfStall += n; break;
              case CycleCat::Overhead:
              case CycleCat::Idle: breakdown_.overhead += n; break;
            }
        }
    } else {
        // Unbound lanes still burn (and account) idle cycles densely.
        for (auto &c : clusters_)
            c.skipCycles(from, to);
        if (mem_.inFlight() > 0)
            breakdown_.memStall += static_cast<uint64_t>(lanes()) * n;
        else
            breakdown_.overhead += static_cast<uint64_t>(lanes()) * n;
    }
    srf_.skipCycles(from, to);
    mem_.skipCycles(from, to);
}

void
Machine::tick(Cycle now)
{
    Profiler::Scope prof(profiler_, Profiler::MachineTick);
    dataNet_.newCycle();
    srf_.beginCycle(now);

    // Fire scheduled faults after newCycle so injected crossbar stalls
    // survive into this cycle's arbitration.
    if (injector_)
        injector_->inject(now);

    // Statically scheduled inter-cluster traffic occupancy (Figure 18).
    if (cfg_.commOccupancy > 0) {
        for (uint32_t l = 0; l < lanes(); l++)
            if (rng_.chance(cfg_.commOccupancy))
                dataNet_.claimSource(l);
    }

    {
        Profiler::Scope memProf(profiler_, Profiler::MemTick);
        mem_.tick(now);
    }
    {
        Profiler::Scope clProf(profiler_, Profiler::ClusterTick);
        for (auto &c : clusters_)
            c.tick(now);
    }
    {
        Profiler::Scope srfProf(profiler_, Profiler::SrfCycle);
        srf_.endCycle(now);
    }

    // Figure 12 accounting.
    if (active_) {
        for (auto &c : clusters_) {
            switch (c.lastCat()) {
              case CycleCat::Loop: breakdown_.loopBody++; break;
              case CycleCat::SrfStall: breakdown_.srfStall++; break;
              case CycleCat::Overhead:
              case CycleCat::Idle: breakdown_.overhead++; break;
            }
        }
    } else if (mem_.inFlight() > 0) {
        breakdown_.memStall += lanes();
    } else {
        breakdown_.overhead += lanes();
    }

    finishKernelIfDone(now);
}

void
Machine::resetStats()
{
    breakdown_.reset();
    kernelBw_.clear();
    mem_.dram().resetStats();
    mem_.cache().resetStats();
}

uint64_t
Machine::geometryHash() const
{
    const SrfGeometry &g = cfg_.srf;
    std::string canon = strprintf(
        "kind=%u srf=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u "
        "mode=%u dram=%llu,%u,%u,%u cache=%u,%u,%u,%u mem=%u,%u,%u "
        "sep=%u,%u ovh=%u comm=%.17g sample=%llu seed=%llu "
        "faults=%u,%llu,%zu wd=%llu,%u",
        static_cast<unsigned>(cfg_.kind), g.lanes, g.laneWords,
        g.seqWidth, g.subArrays, g.streamBufWords, g.addrFifoSize,
        g.seqLatency, g.inLaneLatency, g.crossLaneLatency,
        g.netPortsPerBank, g.maxStreamSlots, g.remoteQueueDepth,
        static_cast<unsigned>(g.netTopology),
        static_cast<unsigned>(g.arbPolicy),
        static_cast<unsigned>(cfg_.srfMode),
        static_cast<unsigned long long>(cfg_.dram.capacityWords),
        cfg_.dram.banks, cfg_.dram.rowBufferModel ? 1u : 0u,
        cfg_.dram.rowWords, cfg_.cache.capacityWords,
        cfg_.cache.lineWords, cfg_.cache.ways, cfg_.cache.banks,
        cfg_.mem.units, cfg_.mem.stagingWords,
        cfg_.mem.cacheEnabled ? 1u : 0u, cfg_.inLaneSeparation,
        cfg_.crossLaneSeparation, cfg_.kernelStartOverhead,
        cfg_.commOccupancy,
        static_cast<unsigned long long>(cfg_.statSampleInterval),
        static_cast<unsigned long long>(cfg_.seed),
        cfg_.faults.enabled ? 1u : 0u,
        static_cast<unsigned long long>(cfg_.faults.seed),
        cfg_.faults.schedule.size(),
        static_cast<unsigned long long>(cfg_.faults.watchdogInterval),
        cfg_.faults.watchdogStallIntervals);
    return fnv1a(canon);
}

void
Machine::saveMachineSection(SnapshotWriter &w) const
{
    rng_.saveState(w);
    w.b(active_ != nullptr);
    w.u64(activeOutputs_.size());
    for (SlotId id : activeOutputs_)
        w.u32(static_cast<uint32_t>(id));
    w.u64(activeIdxWriteSlots_.size());
    for (SlotId id : activeIdxWriteSlots_)
        w.u32(static_cast<uint32_t>(id));
    w.b(flushing_);
    w.u64(kernelStart_);
    w.u64(kernelEventCycle_);
    w.u64(bwSeq0_);
    w.u64(bwIn0_);
    w.u64(bwCross0_);
    w.u64(breakdown_.loopBody);
    w.u64(breakdown_.memStall);
    w.u64(breakdown_.srfStall);
    w.u64(breakdown_.overhead);
    w.u64(kernelBw_.size());
    for (const auto &[name, rec] : kernelBw_) {
        w.str(name);
        w.u64(rec.laneCycles);
        w.u64(rec.seqWords);
        w.u64(rec.inLaneWords);
        w.u64(rec.crossWords);
        w.u64(rec.invocations);
    }
    w.u8(static_cast<uint8_t>(lastRunStatus_));
}

bool
Machine::loadMachineSection(SnapshotReader &r)
{
    if (!rng_.loadState(r))
        return false;
    bool wasActive = false;
    if (!r.b(wasActive))
        return false;
    // The caller restoreBind()s the rebuilt invocation (or clears it)
    // before handing over the reader; a disagreement means the program
    // state and machine state drifted apart.
    if (wasActive != (active_ != nullptr)) {
        r.markFailed();
        return false;
    }
    uint64_t n = 0;
    if (!r.len(n, 4))
        return false;
    activeOutputs_.resize(n);
    for (SlotId &id : activeOutputs_) {
        uint32_t raw = 0;
        if (!r.u32(raw))
            return false;
        id = static_cast<SlotId>(raw);
    }
    if (!r.len(n, 4))
        return false;
    activeIdxWriteSlots_.resize(n);
    for (SlotId &id : activeIdxWriteSlots_) {
        uint32_t raw = 0;
        if (!r.u32(raw))
            return false;
        id = static_cast<SlotId>(raw);
    }
    if (!r.b(flushing_) || !r.u64(kernelStart_) ||
        !r.u64(kernelEventCycle_) || !r.u64(bwSeq0_) ||
        !r.u64(bwIn0_) || !r.u64(bwCross0_) ||
        !r.u64(breakdown_.loopBody) || !r.u64(breakdown_.memStall) ||
        !r.u64(breakdown_.srfStall) || !r.u64(breakdown_.overhead))
        return false;
    uint64_t nbw = 0;
    if (!r.len(nbw, 48))
        return false;
    kernelBw_.clear();
    for (uint64_t i = 0; i < nbw; i++) {
        std::string name;
        KernelBwRecord rec;
        if (!r.str(name) || !r.u64(rec.laneCycles) ||
            !r.u64(rec.seqWords) || !r.u64(rec.inLaneWords) ||
            !r.u64(rec.crossWords) || !r.u64(rec.invocations))
            return false;
        kernelBw_[name] = rec;
    }
    uint8_t status = 0;
    if (!r.u8(status))
        return false;
    lastRunStatus_ = static_cast<RunStatus>(status);
    return true;
}

void
Machine::saveSnapshot(Snapshot &snap)
{
    snap.version = kSnapshotFormatVersion;
    snap.cycle = engine_.now();
    snap.geometry = geometryHash();
    snap.sections.clear();

    SnapshotWriter mach;
    saveMachineSection(mach);
    snap.addSection(kSnapMachine, mach);

    SnapshotWriter srf;
    srf_.saveState(srf);
    snap.addSection(kSnapSrf, srf);

    SnapshotWriter xbar;
    dataNet_.saveState(xbar);
    snap.addSection(kSnapCrossbar, xbar);

    SnapshotWriter clus;
    clus.u64(clusters_.size());
    for (const Cluster &c : clusters_)
        c.saveState(clus);
    snap.addSection(kSnapClusters, clus);

    SnapshotWriter mem;
    mem_.saveState(mem);
    snap.addSection(kSnapMemory, mem);

    if (watchdog_) {
        SnapshotWriter wdog;
        watchdog_->saveState(wdog);
        snap.addSection(kSnapWatchdog, wdog);
    }
    if (sampler_) {
        SnapshotWriter samp;
        sampler_->saveState(samp);
        snap.addSection(kSnapSampler, samp);
    }
    if (injector_) {
        SnapshotWriter finj;
        injector_->saveState(finj);
        snap.addSection(kSnapFaults, finj);
    }
}

namespace {

/** One section restore: present, parsed whole, and consumed whole. */
template <typename F>
bool
loadSection(const Snapshot &snap, uint32_t tag, const char *what,
            std::string *err, F &&load)
{
    const std::string *payload = snap.findSection(tag);
    if (!payload) {
        if (err)
            *err = strprintf("snapshot: missing %s section", what);
        return false;
    }
    SnapshotReader r(*payload);
    if (!load(r) || !r.atEnd()) {
        if (err)
            *err = strprintf("snapshot: malformed %s section", what);
        return false;
    }
    return true;
}

} // namespace

bool
Machine::loadSnapshot(const Snapshot &snap,
                      std::shared_ptr<KernelInvocation> activeInv,
                      std::string *err)
{
    if (snap.geometry != geometryHash()) {
        if (err)
            *err = strprintf("snapshot: geometry hash mismatch "
                             "(%016llx vs %016llx)",
                             static_cast<unsigned long long>(
                                 snap.geometry),
                             static_cast<unsigned long long>(
                                 geometryHash()));
        return false;
    }
    // Optional sections must mirror the config-driven component set.
    if ((snap.findSection(kSnapWatchdog) != nullptr) !=
            (watchdog_ != nullptr) ||
        (snap.findSection(kSnapSampler) != nullptr) !=
            (sampler_ != nullptr) ||
        (snap.findSection(kSnapFaults) != nullptr) !=
            (injector_ != nullptr)) {
        if (err)
            *err = "snapshot: optional section set does not match "
                   "the machine's component set";
        return false;
    }

    // Wire the active kernel before the sections that validate
    // against it (MACH's active flag, each cluster's slot count).
    active_ = std::move(activeInv);
    if (active_)
        active_->startOverhead = cfg_.kernelStartOverhead;
    for (Cluster &c : clusters_)
        c.restoreBind(active_.get());
    activeKernelName_ = active_ && tracer_.on()
        ? tracer_.intern(active_->graph->name()) : nullptr;

    bool ok =
        loadSection(snap, kSnapMachine, "machine", err,
                    [&](SnapshotReader &r) {
                        return loadMachineSection(r);
                    }) &&
        loadSection(snap, kSnapSrf, "srf", err,
                    [&](SnapshotReader &r) {
                        return srf_.loadState(r);
                    }) &&
        loadSection(snap, kSnapCrossbar, "crossbar", err,
                    [&](SnapshotReader &r) {
                        return dataNet_.loadState(r);
                    }) &&
        loadSection(snap, kSnapClusters, "clusters", err,
                    [&](SnapshotReader &r) {
                        uint64_t n = 0;
                        if (!r.len(n, 1) || n != clusters_.size())
                            return false;
                        for (Cluster &c : clusters_)
                            if (!c.loadState(r))
                                return false;
                        return true;
                    }) &&
        loadSection(snap, kSnapMemory, "memory", err,
                    [&](SnapshotReader &r) {
                        return mem_.loadState(r);
                    });
    if (ok && watchdog_)
        ok = loadSection(snap, kSnapWatchdog, "watchdog", err,
                         [&](SnapshotReader &r) {
                             return watchdog_->loadState(r);
                         });
    if (ok && sampler_)
        ok = loadSection(snap, kSnapSampler, "sampler", err,
                         [&](SnapshotReader &r) {
                             return sampler_->loadState(r);
                         });
    if (ok && injector_)
        ok = loadSection(snap, kSnapFaults, "faults", err,
                         [&](SnapshotReader &r) {
                             return injector_->loadState(r);
                         });
    if (!ok)
        return false;

    // Every component's absolute-cycle state is from `snap`; move the
    // clock last so the machine resumes exactly at the saved boundary.
    engine_.restoreClock(snap.cycle);
    return true;
}

} // namespace isrf
