#include "fault/fault_config.h"

#include <cstdlib>

#include "util/log.h"

namespace isrf {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SrfBit: return "srf_bit";
      case FaultKind::DramBit: return "dram_bit";
      case FaultKind::MemDrop: return "mem_drop";
      case FaultKind::MemDelay: return "mem_delay";
      case FaultKind::XbarStall: return "xbar_stall";
    }
    return "?";
}

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t end = s.find(sep, pos);
        if (end == std::string::npos)
            end = s.size();
        out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

uint64_t
parseNum(const std::string &key, const std::string &val)
{
    if (val.empty())
        fatal("ISRF_FAULTS: key '%s' needs a value", key.c_str());
    char *end = nullptr;
    uint64_t n = std::strtoull(val.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        fatal("ISRF_FAULTS: bad number '%s' for key '%s'", val.c_str(),
              key.c_str());
    return n;
}

bool
parseKind(const std::string &name, FaultKind *kind)
{
    for (FaultKind k : {FaultKind::SrfBit, FaultKind::DramBit,
                        FaultKind::MemDrop, FaultKind::MemDelay,
                        FaultKind::XbarStall}) {
        if (name == faultKindName(k)) {
            *kind = k;
            return true;
        }
    }
    return false;
}

FaultScheduleEntry
parseEntry(FaultKind kind, const std::string &params)
{
    FaultScheduleEntry e;
    e.kind = kind;
    if (params.empty())
        return e;
    for (const std::string &kv : split(params, ',')) {
        if (kv.empty())
            continue;
        size_t eq = kv.find('=');
        std::string key = kv.substr(0, eq);
        std::string val = eq == std::string::npos ? "" : kv.substr(eq + 1);
        if (key == "start") {
            e.start = parseNum(key, val);
        } else if (key == "period") {
            e.period = parseNum(key, val);
            if (e.period == 0)
                fatal("ISRF_FAULTS: %s period must be nonzero",
                      faultKindName(kind));
        } else if (key == "count") {
            e.count = parseNum(key, val);
        } else if (key == "bits") {
            e.bits = static_cast<uint32_t>(parseNum(key, val));
            if (e.bits == 0 || e.bits > 32)
                fatal("ISRF_FAULTS: bits must be 1..32");
        } else if (key == "delay") {
            e.delayCycles = static_cast<uint32_t>(parseNum(key, val));
        } else if (key == "max") {
            e.maxAddr = parseNum(key, val);
        } else if (key == "transient") {
            e.transient = val.empty() || parseNum(key, val) != 0;
        } else {
            fatal("ISRF_FAULTS: unknown %s key '%s'", faultKindName(kind),
                  key.c_str());
        }
    }
    return e;
}

} // namespace

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig fc;
    if (spec.empty() || spec == "0")
        return fc;
    fc.enabled = true;
    for (const std::string &seg : split(spec, ';')) {
        if (seg.empty())
            continue;
        size_t colon = seg.find(':');
        if (colon != std::string::npos) {
            FaultKind kind;
            std::string name = seg.substr(0, colon);
            if (!parseKind(name, &kind))
                fatal("ISRF_FAULTS: unknown fault kind '%s'", name.c_str());
            fc.schedule.push_back(parseEntry(kind, seg.substr(colon + 1)));
            continue;
        }
        // A bare kind name is an entry with all-default parameters.
        FaultKind bare;
        if (seg.find('=') == std::string::npos && parseKind(seg, &bare)) {
            fc.schedule.push_back(parseEntry(bare, ""));
            continue;
        }
        size_t eq = seg.find('=');
        std::string key = seg.substr(0, eq);
        std::string val = eq == std::string::npos ? "" : seg.substr(eq + 1);
        if (key == "seed") {
            fc.seed = parseNum(key, val);
        } else if (key == "ecc") {
            fc.eccEnabled = parseNum(key, val) != 0;
        } else if (key == "retry") {
            fc.retryLimit = static_cast<uint32_t>(parseNum(key, val));
        } else if (key == "backoff") {
            fc.retryBackoffBase = static_cast<uint32_t>(parseNum(key, val));
        } else if (key == "timeout") {
            fc.opTimeoutCycles = parseNum(key, val);
        } else if (key == "threshold") {
            fc.degradeThreshold = static_cast<uint32_t>(parseNum(key, val));
        } else if (key == "watchdog") {
            fc.watchdogInterval = parseNum(key, val);
        } else if (key == "stall_intervals") {
            fc.watchdogStallIntervals =
                static_cast<uint32_t>(parseNum(key, val));
            if (fc.watchdogStallIntervals == 0)
                fatal("ISRF_FAULTS: stall_intervals must be nonzero");
        } else {
            fatal("ISRF_FAULTS: unknown key '%s'", key.c_str());
        }
    }
    return fc;
}

} // namespace isrf
