/**
 * @file
 * SECDED ECC modeling for word-granular storage arrays (SRF sub-arrays
 * and DRAM).
 *
 * Rather than storing check bits, the domain records the XOR mask of
 * injected bit flips per word address. A read checks the mask exactly
 * as a SECDED decoder would see it: a single flipped bit is corrected
 * (and scrubbed back into storage), two or more flipped bits are
 * detected but uncorrectable. Transient faults model noise on the
 * array's sense/transfer path: the stored data is intact, so the first
 * detection clears the fault and a retry observes clean data.
 */
#ifndef ISRF_FAULT_ECC_H
#define ISRF_FAULT_ECC_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/ticked.h"
#include "util/snapshot.h"

namespace isrf {

/** Marker written in place of a word that exhausted its retries. */
constexpr Word kPoisonWord = 0xDEADFA11u;

/** Outcome of one ECC-checked read. */
enum class EccStatus : uint8_t {
    Clean,          ///< no fault recorded at this address
    Corrected,      ///< single-bit error corrected (and scrubbed)
    Uncorrectable,  ///< multi-bit error detected, data unusable
};

const char *eccStatusName(EccStatus st);

/**
 * The ECC state of one storage array: pending fault masks by word
 * address plus detection/correction counters.
 *
 * The owning array calls check() on every read path and onWrite() on
 * every write path (a write re-encodes the word, clearing any pending
 * fault). All methods are O(1) amortized; empty() lets hot paths skip
 * the hash lookup entirely when no faults are outstanding.
 */
class EccDomain
{
  public:
    bool empty() const { return entries_.empty(); }
    size_t pendingFaults() const { return entries_.size(); }

    /**
     * Flip `mask` bits of *storage at `addr` and record them for the
     * decoder. Re-injecting at the same address accumulates into one
     * mask (flips can cancel, restoring the word).
     */
    void inject(uint64_t addr, Word mask, bool transient, Word *storage);

    /**
     * Decode the word at addr. Corrects single-bit faults in place;
     * clears transient faults (storage is restored to the logical
     * value) while still reporting them Uncorrectable to this read.
     */
    EccStatus check(uint64_t addr, Word *storage);

    /** A write re-encodes the word: drop any pending fault there. */
    void onWrite(uint64_t addr);
    /** Range version of onWrite for block fills. */
    void onWriteRange(uint64_t addr, uint64_t n);

    /**
     * Background scrubber: decode every address with a pending fault.
     * `at` maps an address to its storage word. @return words repaired.
     */
    uint64_t scrub(const std::function<Word *(uint64_t)> &at);

    /** Drop all pending faults and counters (array re-init). */
    void clear();

    uint64_t faultsInjected() const { return faultsInjected_; }
    uint64_t bitsFlipped() const { return bitsFlipped_; }
    uint64_t corrected() const { return corrected_; }
    uint64_t uncorrectable() const { return uncorrectable_; }

    /** Pending fault masks (address-sorted for determinism) and
     *  counters (util/snapshot.h). */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    struct Entry
    {
        Word mask = 0;
        bool transient = false;
    };

    std::unordered_map<uint64_t, Entry> entries_;
    uint64_t faultsInjected_ = 0;
    uint64_t bitsFlipped_ = 0;
    uint64_t corrected_ = 0;
    uint64_t uncorrectable_ = 0;
};

} // namespace isrf

#endif // ISRF_FAULT_ECC_H
