/**
 * @file
 * Engine-level progress watchdog.
 *
 * Generalizes the Engine::runUntil cycle-limit deadlock guard into a
 * ticked progress monitor: every `interval` cycles it samples a
 * monotonically increasing retired-work metric; after `stallIntervals`
 * consecutive intervals without progress it trips, records a
 * structured diagnostic (JSON) plus the trace tail, and lets the run
 * exit through a distinct status (RunStatus::Stalled) instead of an
 * abort.
 */
#ifndef ISRF_FAULT_WATCHDOG_H
#define ISRF_FAULT_WATCHDOG_H

#include <functional>
#include <string>

#include "sim/ticked.h"
#include "util/snapshot.h"

namespace isrf {

class Tracer;

/** Ticked component monitoring a retired-work metric for progress. */
class Watchdog : public Ticked
{
  public:
    /** Returns the machine's monotonically increasing progress count. */
    using ProgressFn = std::function<uint64_t()>;

    /**
     * `tracer`/`label` select whose trace tail the trip diagnostic
     * dumps and how it is tagged (the owning machine's tracer and
     * config name); defaulted, the dump uses the global tracer.
     */
    void init(uint64_t intervalCycles, uint32_t stallIntervals,
              ProgressFn progress, Tracer *tracer = nullptr,
              std::string label = "");

    void tick(Cycle now) override;
    std::string tickedName() const override { return "watchdog"; }

    /**
     * Next interval boundary (absolute). After a trip the watchdog goes
     * quiet (kNoEvent) once the trip cycle itself has been observed
     * densely, so the run loop breaks at the same cycle in both engine
     * modes.
     */
    Cycle nextEvent(Cycle now) override;

    /** True once the stall threshold has been reached. */
    bool triggered() const { return triggered_; }
    Cycle triggeredCycle() const { return triggeredCycle_; }
    uint64_t lastProgress() const { return lastProgress_; }

    /** Structured diagnostic of the (last) trip as a JSON object. */
    std::string reportJson() const;

    /** Re-arm after a trip (diagnostics are kept until the next one). */
    void rearm();

    /** Check schedule + stall progress state (util/snapshot.h). */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    uint64_t interval_ = 0;
    uint32_t stallIntervals_ = 4;
    ProgressFn progress_;
    Tracer *tracer_ = nullptr;
    std::string label_;

    /**
     * Absolute cycle of the next progress check; kNoEvent = unarmed
     * (armed lazily on the first tick so a watchdog registered mid-run
     * still gets full intervals). Absolute rather than a per-tick
     * counter so skipped cycles need no crediting.
     */
    Cycle nextCheck_ = kNoEvent;
    uint64_t lastProgress_ = 0;
    uint32_t stalled_ = 0;
    bool triggered_ = false;
    Cycle triggeredCycle_ = 0;
};

} // namespace isrf

#endif // ISRF_FAULT_WATCHDOG_H
