/**
 * @file
 * Configuration for the deterministic fault-injection and resilience
 * layer: what to inject (a seeded, schedule-driven fault plan) and how
 * the machine responds (ECC, retry/backoff, degradation, watchdog).
 *
 * The schedule is wall-clock free: every entry fires at fixed simulated
 * cycles, and target addresses/bits come from the machine's seeded
 * PRNG, so a given (config, seed) pair reproduces bit-identical runs.
 *
 * `ISRF_FAULTS` environment syntax (also via the bench `--faults`
 * flag); semicolon-separated global keys and schedule entries:
 *
 *   seed=7;retry=4;backoff=4;srf_bit:start=100,period=50,count=200
 *
 * Global keys:
 *   seed=N        injector PRNG seed (default: machine seed)
 *   ecc=0|1       SECDED modeling on/off (default 1)
 *   retry=N       max re-reads of an uncorrectable DRAM word
 *   backoff=N     base retry backoff in cycles (doubles per retry)
 *   timeout=N     per-op retry budget in cycles (0 = unlimited)
 *   threshold=N   uncorrectable errors before a sub-array goes offline
 *                 (0 = degradation off)
 *   watchdog=N    progress-check interval in cycles (0 = watchdog off)
 *   stall_intervals=N  zero-progress intervals before triggering
 *
 * Schedule entries are `kind:key=val,...` with kinds srf_bit, dram_bit,
 * mem_drop, mem_delay, xbar_stall and keys:
 *   start=N     first firing cycle (default 0)
 *   period=N    cycles between firings (default 1)
 *   count=N     number of firings (default 1)
 *   bits=N      bits flipped per firing (srf_bit/dram_bit; default 1)
 *   delay=N     stall cycles per firing (mem_delay; default 8)
 *   max=N       restrict target addresses to [0, N) (default: whole
 *               array)
 *   transient   fault clears on first detection (retry succeeds)
 */
#ifndef ISRF_FAULT_FAULT_CONFIG_H
#define ISRF_FAULT_FAULT_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace isrf {

/** What one schedule entry injects. */
enum class FaultKind : uint8_t {
    SrfBit,     ///< flip bits in a random SRF bank word
    DramBit,    ///< flip bits in a random DRAM word
    MemDrop,    ///< drop an in-flight stream-memory word (re-fetched)
    MemDelay,   ///< stall a stream memory unit for `delayCycles`
    XbarStall,  ///< steal a random lane's crossbar grant this cycle
};

const char *faultKindName(FaultKind kind);

/** One periodic fault source in the injection schedule. */
struct FaultScheduleEntry
{
    FaultKind kind = FaultKind::SrfBit;
    uint64_t start = 0;       ///< first firing cycle
    uint64_t period = 1;      ///< cycles between firings
    uint64_t count = 1;       ///< total firings
    uint32_t bits = 1;        ///< bits flipped per firing
    uint32_t delayCycles = 8; ///< MemDelay stall length
    uint64_t maxAddr = 0;     ///< restrict addresses to [0,maxAddr) (0=all)
    bool transient = false;   ///< clears on first detection
};

/** Fault model + resilience policy (MachineConfig::faults). */
struct FaultConfig
{
    bool enabled = false;
    uint64_t seed = 0;        ///< injector PRNG seed (0 = machine seed)
    bool eccEnabled = true;

    /** Retry policy for detected-uncorrectable DRAM reads. */
    uint32_t retryLimit = 4;
    uint32_t retryBackoffBase = 4;  ///< cycles; doubles per retry
    uint64_t opTimeoutCycles = 0;   ///< per-op retry budget (0 = none)

    /** Uncorrectable errors before a sub-array is taken offline. */
    uint32_t degradeThreshold = 8;

    /** Watchdog progress-check interval (0 = off). */
    uint64_t watchdogInterval = 0;
    uint32_t watchdogStallIntervals = 4;

    std::vector<FaultScheduleEntry> schedule;

    /**
     * Parse an ISRF_FAULTS spec into a config with enabled=true.
     * An empty or "0" spec returns a disabled config. Unknown keys or
     * kinds are user errors (fatal()).
     */
    static FaultConfig parse(const std::string &spec);
};

} // namespace isrf

#endif // ISRF_FAULT_FAULT_CONFIG_H
