#include "fault/watchdog.h"

#include "sim/engine.h"
#include "sim/trace.h"
#include "util/json.h"
#include "util/log.h"

namespace isrf {

void
Watchdog::init(uint64_t intervalCycles, uint32_t stallIntervals,
               ProgressFn progress, Tracer *tracer, std::string label)
{
    if (intervalCycles == 0)
        panic("Watchdog::init: zero interval");
    if (stallIntervals == 0)
        panic("Watchdog::init: zero stall threshold");
    interval_ = intervalCycles;
    stallIntervals_ = stallIntervals;
    progress_ = std::move(progress);
    tracer_ = tracer;
    label_ = std::move(label);
    nextCheck_ = kNoEvent;
    lastProgress_ = progress_ ? progress_() : 0;
    stalled_ = 0;
    triggered_ = false;
    triggeredCycle_ = 0;
}

void
Watchdog::tick(Cycle now)
{
    if (triggered_ || interval_ == 0)
        return;
    // Lazy arming: the first ticked cycle counts as one elapsed cycle,
    // so the check lands interval_ ticks after registration (identical
    // to the old per-tick counter under dense ticking).
    if (nextCheck_ == kNoEvent)
        nextCheck_ = now + interval_ - 1;
    if (now < nextCheck_)
        return;
    nextCheck_ = now + interval_;
    uint64_t cur = progress_ ? progress_() : 0;
    if (cur != lastProgress_) {
        lastProgress_ = cur;
        stalled_ = 0;
        return;
    }
    if (++stalled_ < stallIntervals_)
        return;
    triggered_ = true;
    triggeredCycle_ = now;
    // Same diagnosis aid as the runUntil deadlock path: the last
    // grants/stalls in the trace buffer say who stopped making progress.
    const Tracer &t = tracer_ ? *tracer_ : Tracer::instance();
    t.dumpTail(stderr, Engine::kDeadlockDumpEvents, label_.c_str());
    ISRF_WARN("watchdog: no progress for %llu cycles (%u x %llu-cycle "
              "intervals) at cycle %llu; stopping run",
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(stalled_) * interval_),
              stalled_, static_cast<unsigned long long>(interval_),
              static_cast<unsigned long long>(now));
}

std::string
Watchdog::reportJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("triggered", triggered_);
    w.field("triggered_cycle", static_cast<uint64_t>(triggeredCycle_));
    w.field("interval_cycles", interval_);
    w.field("stall_intervals", static_cast<uint64_t>(stallIntervals_));
    w.field("last_progress", lastProgress_);
    w.endObject();
    return w.str();
}

Cycle
Watchdog::nextEvent(Cycle now)
{
    if (interval_ == 0)
        return kNoEvent;
    if (triggered_)
        return triggeredCycle_ == now ? now + 1 : kNoEvent;
    if (nextCheck_ == kNoEvent)
        return now + 1;  // not yet armed; arm on the next dense tick
    return nextCheck_ > now ? nextCheck_ : now + 1;
}

void
Watchdog::rearm()
{
    triggered_ = false;
    stalled_ = 0;
    nextCheck_ = kNoEvent;
    if (progress_)
        lastProgress_ = progress_();
}

void
Watchdog::saveState(SnapshotWriter &w) const
{
    w.u64(nextCheck_);
    w.u64(lastProgress_);
    w.u32(stalled_);
    w.b(triggered_);
    w.u64(triggeredCycle_);
}

bool
Watchdog::loadState(SnapshotReader &r)
{
    return r.u64(nextCheck_) && r.u64(lastProgress_) &&
        r.u32(stalled_) && r.b(triggered_) && r.u64(triggeredCycle_);
}

} // namespace isrf
