/**
 * @file
 * Deterministic schedule-driven fault injector.
 *
 * Owned by the Machine and invoked once per cycle from Machine::tick()
 * (after Srf::beginCycle and the crossbar's newCycle, so injected
 * crossbar stalls survive into this cycle's arbitration). Each schedule
 * entry fires at fixed cycles; targets (lane, address, bit positions)
 * come from a PRNG seeded by the fault config, so runs are reproducible
 * with no wall-clock dependence.
 */
#ifndef ISRF_FAULT_FAULT_INJECTOR_H
#define ISRF_FAULT_FAULT_INJECTOR_H

#include <vector>

#include "fault/fault_config.h"
#include "sim/ticked.h"
#include "util/random.h"
#include "util/stats.h"

namespace isrf {

class Tracer;

class Srf;
class MemorySystem;
class Crossbar;

/** Fires the configured fault schedule into the machine's components. */
class FaultInjector
{
  public:
    void init(const FaultConfig &cfg, uint64_t machineSeed, Srf *srf,
              MemorySystem *mem, Crossbar *xbar,
              Tracer *tracer = nullptr);

    /** Fire every schedule entry due at `now`. */
    void inject(Cycle now);

    /**
     * Earliest cycle a schedule entry fires next (skip mode); kNoEvent
     * once the schedule is exhausted. After inject(now), every live
     * entry's next fire time is strictly in the future.
     */
    Cycle nextEvent(Cycle now) const;

    /** True once every schedule entry has fired its full count. */
    bool exhausted() const;

    /** Total firings across all entries so far. */
    uint64_t totalInjected() const { return totalInjected_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    const FaultConfig &config() const { return cfg_; }

    /** RNG + per-entry fire schedule + stats (util/snapshot.h).
     *  The schedule itself is init() config and must match. */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    struct EntryState
    {
        FaultScheduleEntry entry;
        Cycle next = 0;
        uint64_t remaining = 0;
    };

    void fire(const FaultScheduleEntry &e, Cycle now);
    Word randomMask(uint32_t bits);

    FaultConfig cfg_;
    Rng rng_;
    Srf *srf_ = nullptr;
    MemorySystem *mem_ = nullptr;
    Crossbar *xbar_ = nullptr;
    std::vector<EntryState> sched_;
    uint64_t totalInjected_ = 0;
    StatGroup stats_{"fault"};
    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t traceCh_ = 0;
};

} // namespace isrf

#endif // ISRF_FAULT_FAULT_INJECTOR_H
