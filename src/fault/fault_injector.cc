#include "fault/fault_injector.h"

#include <algorithm>
#include <bit>

#include "mem/memory_system.h"
#include "net/crossbar.h"
#include "sim/trace.h"
#include "srf/srf.h"
#include "util/log.h"

namespace isrf {

void
FaultInjector::init(const FaultConfig &cfg, uint64_t machineSeed,
                    Srf *srf, MemorySystem *mem, Crossbar *xbar,
                    Tracer *tracer)
{
    trc_ = tracer ? tracer : &Tracer::instance();
    cfg_ = cfg;
    srf_ = srf;
    mem_ = mem;
    xbar_ = xbar;
    rng_.reseed(cfg.seed ? cfg.seed : machineSeed * 0x9e37u + 0xfau);
    sched_.clear();
    for (const FaultScheduleEntry &e : cfg.schedule)
        sched_.push_back({e, e.start, e.count});
    totalInjected_ = 0;
    traceCh_ = trc_->channel("fault");
}

bool
FaultInjector::exhausted() const
{
    for (const EntryState &st : sched_)
        if (st.remaining > 0)
            return false;
    return true;
}

Word
FaultInjector::randomMask(uint32_t bits)
{
    bits = std::min(bits, 32u);
    Word mask = 0;
    while (static_cast<uint32_t>(std::popcount(mask)) < bits)
        mask |= Word(1) << rng_.below(32);
    return mask;
}

void
FaultInjector::fire(const FaultScheduleEntry &e, Cycle now)
{
    totalInjected_++;
    stats_.counter(faultKindName(e.kind)).inc();
    if (trc_->on())
        trc_->instant(traceCh_, faultKindName(e.kind), now);

    switch (e.kind) {
      case FaultKind::SrfBit: {
        const SrfGeometry &g = srf_->geometry();
        uint32_t lane = static_cast<uint32_t>(rng_.below(g.lanes));
        uint64_t range = g.laneWords;
        if (e.maxAddr)
            range = std::min<uint64_t>(range, e.maxAddr);
        uint32_t addr = static_cast<uint32_t>(rng_.below(range));
        srf_->injectBitFlips(lane, addr, randomMask(e.bits), e.transient);
        break;
      }
      case FaultKind::DramBit: {
        uint64_t range = mem_->dram().capacityWords();
        if (e.maxAddr)
            range = std::min(range, e.maxAddr);
        uint64_t addr = rng_.below(range);
        mem_->dram().injectBitFlips(addr, randomMask(e.bits), e.transient);
        break;
      }
      case FaultKind::MemDrop:
        mem_->injectDrop();
        break;
      case FaultKind::MemDelay:
        mem_->injectDelay(e.delayCycles);
        break;
      case FaultKind::XbarStall:
        if (xbar_) {
            xbar_->claimSource(static_cast<uint32_t>(
                rng_.below(srf_->geometry().lanes)));
            stats_.counter("xbar_stall_cycles").inc();
        }
        break;
    }
}

void
FaultInjector::inject(Cycle now)
{
    for (EntryState &st : sched_) {
        while (st.remaining > 0 && st.next <= now) {
            fire(st.entry, now);
            st.remaining--;
            st.next += st.entry.period;
        }
    }
}

Cycle
FaultInjector::nextEvent(Cycle now) const
{
    Cycle wake = kNoEvent;
    for (const EntryState &st : sched_)
        if (st.remaining > 0)
            wake = std::min(wake, st.next);
    // A still-due entry (period 0 edge case) pins the machine dense.
    if (wake != kNoEvent && wake <= now)
        return now + 1;
    return wake;
}

void
FaultInjector::saveState(SnapshotWriter &w) const
{
    rng_.saveState(w);
    w.u64(sched_.size());
    for (const EntryState &st : sched_) {
        w.u64(st.next);
        w.u64(st.remaining);
    }
    w.u64(totalInjected_);
    stats_.saveState(w);
}

bool
FaultInjector::loadState(SnapshotReader &r)
{
    if (!rng_.loadState(r))
        return false;
    uint64_t n = 0;
    if (!r.len(n, 16) || n != sched_.size())
        return false;
    for (EntryState &st : sched_)
        if (!r.u64(st.next) || !r.u64(st.remaining))
            return false;
    return r.u64(totalInjected_) && stats_.loadState(r);
}

} // namespace isrf
