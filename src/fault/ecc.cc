#include "fault/ecc.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace isrf {

const char *
eccStatusName(EccStatus st)
{
    switch (st) {
      case EccStatus::Clean: return "clean";
      case EccStatus::Corrected: return "corrected";
      case EccStatus::Uncorrectable: return "uncorrectable";
    }
    return "?";
}

void
EccDomain::inject(uint64_t addr, Word mask, bool transient, Word *storage)
{
    if (mask == 0)
        return;
    *storage ^= mask;
    faultsInjected_++;
    bitsFlipped_ += std::popcount(mask);
    Entry &e = entries_[addr];
    e.mask ^= mask;
    e.transient = transient;
    if (e.mask == 0)
        entries_.erase(addr);  // flips cancelled; word is intact again
}

EccStatus
EccDomain::check(uint64_t addr, Word *storage)
{
    auto it = entries_.find(addr);
    if (it == entries_.end())
        return EccStatus::Clean;
    const Entry e = it->second;
    if (std::popcount(e.mask) == 1) {
        *storage ^= e.mask;
        entries_.erase(it);
        corrected_++;
        return EccStatus::Corrected;
    }
    uncorrectable_++;
    if (e.transient) {
        // The cell data was never corrupted; only this observation was.
        *storage ^= e.mask;
        entries_.erase(it);
    }
    return EccStatus::Uncorrectable;
}

void
EccDomain::onWrite(uint64_t addr)
{
    entries_.erase(addr);
}

void
EccDomain::onWriteRange(uint64_t addr, uint64_t n)
{
    if (entries_.empty())
        return;
    for (uint64_t i = 0; i < n && !entries_.empty(); i++)
        entries_.erase(addr + i);
}

uint64_t
EccDomain::scrub(const std::function<Word *(uint64_t)> &at)
{
    std::vector<uint64_t> addrs;
    addrs.reserve(entries_.size());
    for (const auto &kv : entries_)
        addrs.push_back(kv.first);
    uint64_t repaired = 0;
    for (uint64_t addr : addrs) {
        if (check(addr, at(addr)) != EccStatus::Uncorrectable)
            repaired++;
    }
    return repaired;
}

void
EccDomain::clear()
{
    entries_.clear();
    faultsInjected_ = 0;
    bitsFlipped_ = 0;
    corrected_ = 0;
    uncorrectable_ = 0;
}

void
EccDomain::saveState(SnapshotWriter &w) const
{
    std::vector<uint64_t> addrs;
    addrs.reserve(entries_.size());
    for (const auto &kv : entries_)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    w.u64(addrs.size());
    for (uint64_t addr : addrs) {
        const Entry &e = entries_.at(addr);
        w.u64(addr);
        w.u32(e.mask);
        w.b(e.transient);
    }
    w.u64(faultsInjected_);
    w.u64(bitsFlipped_);
    w.u64(corrected_);
    w.u64(uncorrectable_);
}

bool
EccDomain::loadState(SnapshotReader &r)
{
    uint64_t n = 0;
    if (!r.len(n, 13))
        return false;
    entries_.clear();
    for (uint64_t i = 0; i < n; i++) {
        uint64_t addr;
        Entry e;
        if (!r.u64(addr) || !r.u32(e.mask) || !r.b(e.transient))
            return false;
        entries_[addr] = e;
    }
    return r.u64(faultsInjected_) && r.u64(bitsFlipped_) &&
           r.u64(corrected_) && r.u64(uncorrectable_);
}

} // namespace isrf
