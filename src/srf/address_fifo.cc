#include "srf/address_fifo.h"
