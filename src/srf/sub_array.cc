#include "srf/sub_array.h"
