/**
 * @file
 * One SRF bank: the per-lane slice of SRF storage with its sub-arrays
 * and (for cross-lane indexing) a small remote-request queue fed by the
 * SRF address network (§4.5, Figure 8(c)).
 */
#ifndef ISRF_SRF_SRF_BANK_H
#define ISRF_SRF_SRF_BANK_H

#include <deque>
#include <vector>

#include "fault/ecc.h"
#include "srf/srf_types.h"
#include "srf/sub_array.h"

namespace isrf {

/** A cross-lane indexed request queued at a target bank. */
struct RemoteRequest
{
    uint32_t sourceLane;
    SlotId slot;
    uint32_t laneAddr;     ///< word address within this bank
    uint64_t seqNo;        ///< issue order at the source lane
    uint32_t wordOffset;   ///< which word of the record this is
    Cycle issueCycle;      ///< cluster issue time (min-latency anchor)
    Cycle arrival;         ///< when the index reaches this bank
    bool isWrite;
    Word writeData;
};

/**
 * Storage + per-cycle port model for one SRF bank.
 *
 * Word addresses are bank-local (0 .. laneWords-1). All timing grants
 * are decided by the Srf coordinator; the bank enforces sub-array
 * single-porting and tracks statistics.
 */
class SrfBank
{
  public:
    SrfBank() = default;

    void init(const SrfGeometry &geom, uint32_t laneId);

    uint32_t laneId() const { return laneId_; }

    /** Begin-of-cycle: free all sub-array ports. Skipped internally
     *  when no claim touched them since the last reset. */
    void newCycle();

    /** Raw storage access (functional; used by DMA and debugging). */
    Word read(uint32_t addr) const;
    void write(uint32_t addr, Word w);
    Word *data() { return words_.data(); }
    uint32_t wordCount() const
    {
        return static_cast<uint32_t>(words_.size());
    }

    /**
     * Claim a sequential m-word row access starting at addr (must be
     * m-aligned). Claims the owning sub-array's port.
     * @return false on sub-array conflict.
     */
    bool claimSequentialRow(uint32_t addr);

    /**
     * Claim a single-word indexed access at addr.
     * @return false if the word's sub-array port is busy this cycle.
     */
    bool claimIndexedWord(uint32_t addr);

    /** Remote (cross-lane) request queue. */
    bool remoteQueueFull() const
    {
        return remoteQueue_.size() >= remoteDepth_;
    }
    void pushRemote(const RemoteRequest &r) { remoteQueue_.push_back(r); }
    bool hasRemote() const { return !remoteQueue_.empty(); }
    RemoteRequest &remoteHead() { return remoteQueue_.front(); }
    void popRemote() { remoteQueue_.pop_front(); }
    size_t remoteQueueSize() const { return remoteQueue_.size(); }

    const std::vector<SubArray> &subArrays() const { return subArrays_; }

    uint64_t sequentialAccesses() const;
    uint64_t indexedAccesses() const;
    uint64_t subArrayConflicts() const;

    // --- fault model (see src/fault/, DESIGN.md §Fault model) ---

    /** Flip bits at addr and record them for the SECDED decoder. */
    void injectBitFlips(uint32_t addr, Word mask, bool transient);

    /**
     * Uncorrectable-error count before a sub-array is taken offline
     * (0 = degradation off). At least one sub-array stays online.
     */
    void setDegradeThreshold(uint32_t threshold)
    {
        degradeThreshold_ = threshold;
    }

    /** Manually take a sub-array offline/online (bench/test control). */
    void setSubArrayOffline(uint32_t sub, bool offline);
    bool subArrayOffline(uint32_t sub) const { return offline_[sub] != 0; }
    uint32_t offlineSubArrays() const;

    /** Background-scrub all pending faults. @return words repaired. */
    uint64_t scrubEcc();

    const EccDomain &ecc() const { return ecc_; }

    /** Storage, remote queue, ECC, degradation and sub-array counters
     *  (util/snapshot.h). Geometry is init() state and must match. */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    /**
     * Physical sub-array serving addr: the geometric owner, or — once
     * that sub-array is offline — the next surviving one, which then
     * absorbs the extra port pressure (graceful degradation).
     */
    uint32_t portFor(uint32_t addr) const;

    SrfGeometry geom_;
    uint32_t laneId_ = 0;
    uint32_t remoteDepth_ = 4;
    /** Any sub-array port possibly claimed since the last newCycle(). */
    bool portsDirty_ = false;
    /** mutable: read() scrubs corrected words back in place. */
    mutable std::vector<Word> words_;
    std::vector<SubArray> subArrays_;
    std::deque<RemoteRequest> remoteQueue_;

    mutable EccDomain ecc_;
    uint32_t degradeThreshold_ = 0;
    mutable std::vector<uint8_t> offline_;
    mutable std::vector<uint32_t> subUncorrectable_;
    mutable uint32_t onlineCount_ = 0;
};

} // namespace isrf

#endif // ISRF_SRF_SRF_BANK_H
