/**
 * @file
 * Shared types and geometry/configuration for the stream register file.
 */
#ifndef ISRF_SRF_SRF_TYPES_H
#define ISRF_SRF_SRF_TYPES_H

#include <cstdint>

#include "net/crossbar.h"
#include "sim/ticked.h"

namespace isrf {

/** Global SRF-port arbitration policy (§5.4). */
enum class ArbPolicy : uint8_t {
    /** Simple rotating priority (the paper's choice). */
    RoundRobin,
    /**
     * Stall-aware: indexed accesses win the port outright whenever an
     * address FIFO is close to full. The paper found such "complex
     * arbiters that prioritize streams likely to cause stalls" buy
     * less than 10% (§5.4); bench_ablation_arbitration checks that.
     */
    IndexedPriority,
};

/** Addressing/bandwidth mode of an SRF variant (Table 2). */
enum class SrfMode : uint8_t {
    SequentialOnly,  ///< Base / Cache configurations
    Indexed1,        ///< ISRF1: 1 indexed word/cycle/lane, no sub-banking
    Indexed4,        ///< ISRF4: up to s indexed words/cycle/lane
};

/** Geometry and timing of the SRF (defaults = Table 3). */
struct SrfGeometry
{
    uint32_t lanes = 8;            ///< N
    uint32_t laneWords = 4096;     ///< 16 KB per lane (128 KB total)
    uint32_t seqWidth = 4;         ///< m: words per lane per seq access
    uint32_t subArrays = 4;        ///< s: sub-arrays per bank
    uint32_t streamBufWords = 8;   ///< stream buffer capacity (Table 3)
    uint32_t addrFifoSize = 8;     ///< address FIFO capacity (Table 3)
    uint32_t seqLatency = 3;       ///< sequential access latency
    uint32_t inLaneLatency = 4;    ///< in-lane indexed access latency
    uint32_t crossLaneLatency = 6; ///< cross-lane indexed access latency
    uint32_t netPortsPerBank = 1;  ///< cross-lane SRF ports per bank (§5.4)
    uint32_t maxStreamSlots = 24;  ///< simultaneously open stream slots
    uint32_t remoteQueueDepth = 4; ///< per-bank cross-lane request queue
    /** Topology of the index + data networks (§7: sparse option). */
    NetTopology netTopology = NetTopology::Crossbar;
    /** SRF-port arbitration policy (§5.4). */
    ArbPolicy arbPolicy = ArbPolicy::RoundRobin;

    uint32_t totalWords() const { return lanes * laneWords; }
    uint32_t totalBytes() const { return totalWords() * 4; }
    /** Words moved by one sequential SRF access (N x m). */
    uint32_t seqAccessWords() const { return lanes * seqWidth; }

    /** Sub-array holding a word address within a bank. */
    uint32_t
    subArrayOf(uint32_t laneAddr) const
    {
        return (laneAddr / seqWidth) % subArrays;
    }

    /** Max independent indexed word accesses per bank per cycle. */
    uint32_t
    indexedPerBank(SrfMode mode) const
    {
        switch (mode) {
          case SrfMode::SequentialOnly: return 0;
          case SrfMode::Indexed1: return 1;
          case SrfMode::Indexed4: return subArrays;
        }
        return 0;
    }
};

/** How a stream's data is laid out across SRF banks. */
enum class StreamLayout : uint8_t {
    /**
     * Striped: consecutive m-word blocks rotate across lanes; element e
     * lives in lane (e / m) mod N. Standard layout for sequential
     * streams and for cross-lane indexed streams.
     */
    Striped,
    /** Each lane holds an independent private copy/partition. */
    PerLane,
};

/** Direction of a stream binding. */
enum class StreamDir : uint8_t { In, Out };

/** Identifies one open stream slot in the SRF. */
using SlotId = int32_t;
constexpr SlotId kNoSlot = -1;

} // namespace isrf

#endif // ISRF_SRF_SRF_TYPES_H
