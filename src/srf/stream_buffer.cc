#include "srf/stream_buffer.h"
