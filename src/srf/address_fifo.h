/**
 * @file
 * Address FIFOs for indexed SRF streams (§4.4, Figure 8(b)).
 *
 * Each (lane, indexed-stream) pair owns one FIFO of record addresses
 * written by the compute cluster. A counter at the head breaks record
 * accesses into single-word indexed accesses, so the cluster pays one
 * address-generation op per record rather than per word.
 */
#ifndef ISRF_SRF_ADDRESS_FIFO_H
#define ISRF_SRF_ADDRESS_FIFO_H

#include <cstdint>
#include <deque>

#include "sim/ticked.h"
#include "util/snapshot.h"

namespace isrf {

/** One pending record access in an address FIFO. */
struct AddrEntry
{
    uint32_t recordIndex;  ///< record index within the stream
    uint64_t seqNo;        ///< issue order, for in-order data delivery
    Cycle issueCycle = 0;  ///< when the cluster issued this address
    bool isWrite = false;  ///< read-write streams mix both in one FIFO
    /** Words of this record already issued to the SRAM (head counter). */
    uint32_t wordsIssued = 0;
    /** Data words for indexed writes (empty for reads). */
    Word writeData[4] = {0, 0, 0, 0};
};

/**
 * FIFO of record addresses with head word-counter.
 *
 * Head-of-line semantics: only the head entry's next word is a
 * candidate for SRAM access each cycle; a sub-array conflict therefore
 * blocks all younger requests in this FIFO (§5.4 / Figure 17).
 */
class AddressFifo
{
  public:
    explicit AddressFifo(uint32_t capacity = 8, uint32_t recordWords = 1)
        : capacity_(capacity), recordWords_(recordWords)
    {
    }

    void
    configure(uint32_t capacity, uint32_t recordWords)
    {
        capacity_ = capacity;
        recordWords_ = recordWords;
    }

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    uint32_t recordWords() const { return recordWords_; }

    /** Push a record address; returns false if full. */
    bool
    push(uint32_t recordIndex, uint64_t seqNo, Cycle issueCycle,
         const Word *writeData = nullptr, uint32_t writeWords = 0)
    {
        if (full())
            return false;
        AddrEntry e;
        e.recordIndex = recordIndex;
        e.seqNo = seqNo;
        e.issueCycle = issueCycle;
        e.isWrite = writeWords > 0;
        for (uint32_t i = 0; i < writeWords && i < 4; i++)
            e.writeData[i] = writeData[i];
        entries_.push_back(e);
        return true;
    }

    /** Head entry (must not be empty). */
    AddrEntry &head() { return entries_.front(); }
    const AddrEntry &head() const { return entries_.front(); }

    /**
     * Word index within the stream of the head's next word access.
     * Records are recordWords_ consecutive words.
     */
    uint32_t
    headWordIndex() const
    {
        return entries_.front().recordIndex * recordWords_ +
            entries_.front().wordsIssued;
    }

    /**
     * Mark one word of the head as issued; pops the entry when the whole
     * record has been issued. @return the completed entry's seqNo and
     * word offset (for data delivery bookkeeping).
     */
    void
    advanceHead()
    {
        entries_.front().wordsIssued++;
        if (entries_.front().wordsIssued >= recordWords_)
            entries_.pop_front();
    }

    void clear() { entries_.clear(); }

    void
    saveState(SnapshotWriter &w) const
    {
        w.u32(capacity_);
        w.u32(recordWords_);
        w.u64(entries_.size());
        for (const AddrEntry &e : entries_) {
            w.u32(e.recordIndex);
            w.u64(e.seqNo);
            w.u64(e.issueCycle);
            w.b(e.isWrite);
            w.u32(e.wordsIssued);
            for (Word x : e.writeData)
                w.u32(x);
        }
    }

    bool
    loadState(SnapshotReader &r)
    {
        uint64_t n = 0;
        if (!r.u32(capacity_) || !r.u32(recordWords_) ||
            !r.len(n, 41))
            return false;
        entries_.clear();
        for (uint64_t i = 0; i < n; i++) {
            AddrEntry e;
            if (!r.u32(e.recordIndex) || !r.u64(e.seqNo) ||
                !r.u64(e.issueCycle) || !r.b(e.isWrite) ||
                !r.u32(e.wordsIssued))
                return false;
            for (Word &x : e.writeData)
                if (!r.u32(x))
                    return false;
            entries_.push_back(e);
        }
        return true;
    }

  private:
    uint32_t capacity_;
    uint32_t recordWords_;
    std::deque<AddrEntry> entries_;
};

} // namespace isrf

#endif // ISRF_SRF_ADDRESS_FIFO_H
