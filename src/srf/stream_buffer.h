/**
 * @file
 * Stream buffers matching SRF access width to cluster access width
 * (§4.3/4.4, Figure 8).
 *
 * Sequential streams use a simple word FIFO per lane: the SRF refills or
 * drains it m words at a time when granted the SRF port, while the
 * cluster reads/writes single words. Indexed streams reuse the same
 * structure on the data side, but completions can arrive out of order
 * (sub-array conflicts, cross-lane contention), so delivery to the
 * cluster is reordered by issue sequence number.
 */
#ifndef ISRF_SRF_STREAM_BUFFER_H
#define ISRF_SRF_STREAM_BUFFER_H

#include <cstdint>
#include <deque>

#include "sim/ticked.h"
#include "util/snapshot.h"

namespace isrf {

/** Sequential-stream word FIFO (one lane, one stream). */
class SeqBuffer
{
  public:
    explicit SeqBuffer(uint32_t capacity = 8) : capacity_(capacity) {}

    void configure(uint32_t capacity) { capacity_ = capacity; }

    size_t size() const { return words_.size(); }
    uint32_t freeSpace() const
    {
        return capacity_ - static_cast<uint32_t>(words_.size());
    }
    bool empty() const { return words_.empty(); }
    bool full() const { return words_.size() >= capacity_; }

    /** Cluster-side single-word access. */
    bool canPop() const { return !words_.empty(); }
    Word
    pop()
    {
        Word w = words_.front();
        words_.pop_front();
        return w;
    }
    bool canPush() const { return !full(); }
    void push(Word w) { words_.push_back(w); }

    /** SRF-side block access. */
    bool canRefill(uint32_t m) const { return freeSpace() >= m; }
    void refill(const Word *data, uint32_t m)
    {
        for (uint32_t i = 0; i < m; i++)
            words_.push_back(data[i]);
    }
    bool canDrain(uint32_t m) const { return words_.size() >= m; }
    uint32_t
    drain(Word *out, uint32_t m)
    {
        uint32_t n = 0;
        while (n < m && !words_.empty()) {
            out[n++] = words_.front();
            words_.pop_front();
        }
        return n;
    }
    /** Drain whatever remains (end of stream flush), up to m words. */
    uint32_t
    drainPartial(Word *out, uint32_t m)
    {
        return drain(out, m);
    }

    void clear() { words_.clear(); }

    void
    saveState(SnapshotWriter &w) const
    {
        w.u32(capacity_);
        w.u64(words_.size());
        for (Word x : words_)
            w.u32(x);
    }

    bool
    loadState(SnapshotReader &r)
    {
        uint64_t n = 0;
        if (!r.u32(capacity_) || !r.len(n, 4))
            return false;
        words_.clear();
        for (uint64_t i = 0; i < n; i++) {
            Word x;
            if (!r.u32(x))
                return false;
            words_.push_back(x);
        }
        return true;
    }

  private:
    uint32_t capacity_;
    std::deque<Word> words_;
};

/** One in-flight indexed record access awaiting data. */
struct IdxPending
{
    uint64_t seqNo;
    uint32_t wordsNeeded;
    uint32_t wordsDone = 0;
    Word data[4] = {0, 0, 0, 0};
    Cycle readyCycle = 0;  ///< max over per-word delivery times
};

/**
 * Indexed-stream data buffer with in-order delivery.
 *
 * Requests are registered at address-issue time; the SRF delivers each
 * word with a completion cycle. The cluster may consume the head record
 * once all its words have arrived and the current cycle has reached the
 * pipeline delivery time.
 */
class IdxDataBuffer
{
  public:
    explicit IdxDataBuffer(uint32_t capacityRecords = 8)
        : capacity_(capacityRecords)
    {
    }

    void configure(uint32_t capacityRecords) { capacity_ = capacityRecords; }

    bool full() const { return pending_.size() >= capacity_; }
    bool empty() const { return pending_.empty(); }
    size_t size() const { return pending_.size(); }

    /** Register a new request at address-issue time. */
    void
    registerRequest(uint64_t seqNo, uint32_t wordsNeeded)
    {
        IdxPending p;
        p.seqNo = seqNo;
        p.wordsNeeded = wordsNeeded;
        pending_.push_back(p);
    }

    /** Deliver one word for request seqNo (word wordOffset of record). */
    void
    deliver(uint64_t seqNo, uint32_t wordOffset, Word w, Cycle readyCycle)
    {
        for (auto &p : pending_) {
            if (p.seqNo != seqNo)
                continue;
            if (wordOffset < 4)
                p.data[wordOffset] = w;
            p.wordsDone++;
            if (readyCycle > p.readyCycle)
                p.readyCycle = readyCycle;
            return;
        }
    }

    /** True if the oldest record is fully delivered at cycle now. */
    bool
    headReady(Cycle now) const
    {
        return !pending_.empty() &&
            pending_.front().wordsDone >= pending_.front().wordsNeeded &&
            now >= pending_.front().readyCycle;
    }

    /** Pop the head record's words into out (must be headReady). */
    uint32_t
    popHead(Word *out)
    {
        const IdxPending &p = pending_.front();
        uint32_t n = p.wordsNeeded;
        for (uint32_t i = 0; i < n && i < 4; i++)
            out[i] = p.data[i];
        pending_.pop_front();
        return n;
    }

    void clear() { pending_.clear(); }

    void
    saveState(SnapshotWriter &w) const
    {
        w.u32(capacity_);
        w.u64(pending_.size());
        for (const IdxPending &p : pending_) {
            w.u64(p.seqNo);
            w.u32(p.wordsNeeded);
            w.u32(p.wordsDone);
            for (Word x : p.data)
                w.u32(x);
            w.u64(p.readyCycle);
        }
    }

    bool
    loadState(SnapshotReader &r)
    {
        uint64_t n = 0;
        if (!r.u32(capacity_) || !r.len(n, 40))
            return false;
        pending_.clear();
        for (uint64_t i = 0; i < n; i++) {
            IdxPending p;
            if (!r.u64(p.seqNo) || !r.u32(p.wordsNeeded) ||
                !r.u32(p.wordsDone))
                return false;
            for (Word &x : p.data)
                if (!r.u32(x))
                    return false;
            if (!r.u64(p.readyCycle))
                return false;
            pending_.push_back(p);
        }
        return true;
    }

  private:
    uint32_t capacity_;
    std::deque<IdxPending> pending_;
};

} // namespace isrf

#endif // ISRF_SRF_STREAM_BUFFER_H
