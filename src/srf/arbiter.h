/**
 * @file
 * Round-robin arbiter used for global SRF port arbitration (§4.4).
 *
 * Claimants register a stable id; each cycle the arbiter picks one of
 * the currently claiming ids, rotating priority so every claimant makes
 * progress. The paper found complex stall-aware arbiters buy <10%
 * (§5.4), so round-robin is both faithful and sufficient.
 */
#ifndef ISRF_SRF_ARBITER_H
#define ISRF_SRF_ARBITER_H

#include <cstdint>
#include <vector>

namespace isrf {

/** Simple rotating-priority arbiter over integer claimant ids. */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(uint32_t numClaimants = 0)
        : n_(numClaimants)
    {
    }

    void resize(uint32_t numClaimants) { n_ = numClaimants; }
    uint32_t size() const { return n_; }

    /**
     * Choose among claiming ids (claims[i] != 0 means id i claims).
     * @return granted id, or -1 if nobody claims. Advances priority.
     */
    int
    arbitrate(const std::vector<uint8_t> &claims)
    {
        if (claims.size() != n_)
            return -1;
        for (uint32_t k = 0; k < n_; k++) {
            uint32_t id = (next_ + k) % n_;
            if (claims[id]) {
                next_ = (id + 1) % n_;
                grants_++;
                return static_cast<int>(id);
            }
        }
        idleCycles_++;
        return -1;
    }

    uint64_t grants() const { return grants_; }
    uint64_t idleCycles() const { return idleCycles_; }

    /**
     * Bulk-credit n claimless arbitration cycles (skip mode). Matches n
     * arbitrate() calls with all-zero claims: idleCycles_ grows, the
     * priority pointer does not move.
     */
    void skipIdle(uint64_t n) { idleCycles_ += n; }

  private:
    uint32_t n_;
    uint32_t next_ = 0;
    uint64_t grants_ = 0;
    uint64_t idleCycles_ = 0;
};

} // namespace isrf

#endif // ISRF_SRF_ARBITER_H
