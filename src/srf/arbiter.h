/**
 * @file
 * Round-robin arbiter used for global SRF port arbitration (§4.4).
 *
 * Claimants register a stable id; each cycle the arbiter picks one of
 * the currently claiming ids, rotating priority so every claimant makes
 * progress. The paper found complex stall-aware arbiters buy <10%
 * (§5.4), so round-robin is both faithful and sufficient.
 *
 * Claims are a fixed-width bitmask (bit i set = id i claims), so one
 * arbitration is a rotate plus count-trailing-zeros — no per-cycle
 * heap traffic and no O(n) scan. A legacy vector-of-bytes overload
 * remains for callers that build claims incrementally; a claims vector
 * whose size disagrees with the claimant count is a caller bug and
 * panics instead of being silently misreported as an idle cycle.
 */
#ifndef ISRF_SRF_ARBITER_H
#define ISRF_SRF_ARBITER_H

#include <cstdint>
#include <vector>

#include "util/log.h"
#include "util/snapshot.h"

namespace isrf {

/** Simple rotating-priority arbiter over integer claimant ids. */
class RoundRobinArbiter
{
  public:
    /** Bitmask claims limit one arbiter to 64 claimants. */
    static constexpr uint32_t kMaxClaimants = 64;

    explicit RoundRobinArbiter(uint32_t numClaimants = 0)
        : n_(numClaimants)
    {
        checkWidth();
    }

    void
    resize(uint32_t numClaimants)
    {
        n_ = numClaimants;
        checkWidth();
    }
    uint32_t size() const { return n_; }

    /**
     * Choose among claiming ids (bit i of `claims` set means id i
     * claims). Bits at or beyond size() must be clear.
     * @return granted id, or -1 if nobody claims. Advances priority
     * one past the grantee; an idle cycle freezes it.
     */
    int
    arbitrate(uint64_t claims)
    {
        if (claims == 0) {
            idleCycles_++;
            return -1;
        }
        if (n_ < kMaxClaimants && (claims >> n_) != 0)
            panic("RoundRobinArbiter: claim bit beyond %u claimants",
                  n_);
        // Rotate priority: the first claiming id at or after next_,
        // wrapping to the lowest claiming id when none remain above.
        uint64_t hi = claims >> next_;
        uint32_t id = hi
            ? next_ + static_cast<uint32_t>(__builtin_ctzll(hi))
            : static_cast<uint32_t>(__builtin_ctzll(claims));
        next_ = (id + 1) % n_;
        grants_++;
        return static_cast<int>(id);
    }

    /**
     * Legacy claims protocol (claims[i] != 0 means id i claims). A size
     * mismatch used to return -1 — converting a caller bug into a bogus
     * "nobody claims" idle cycle — and now panics.
     */
    int
    arbitrate(const std::vector<uint8_t> &claims)
    {
        if (claims.size() != n_)
            panic("RoundRobinArbiter: %zu claim entries for %u "
                  "claimants", claims.size(), n_);
        uint64_t mask = 0;
        for (uint32_t i = 0; i < n_; i++)
            if (claims[i])
                mask |= uint64_t{1} << i;
        return arbitrate(mask);
    }

    uint64_t grants() const { return grants_; }
    uint64_t idleCycles() const { return idleCycles_; }

    /** Priority pointer (next id to be favored); test/report access. */
    uint32_t priority() const { return next_; }

    /**
     * Bulk-credit n claimless arbitration cycles (skip mode and the
     * SRF's quiescent fast path). Matches n arbitrate() calls with
     * zero claims: idleCycles_ grows, the priority pointer does not
     * move.
     */
    void skipIdle(uint64_t n) { idleCycles_ += n; }

    /** Rotation + counters; the claimant count is construction state. */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u32(next_);
        w.u64(grants_);
        w.u64(idleCycles_);
    }

    bool
    loadState(SnapshotReader &r)
    {
        if (!r.u32(next_) || !r.u64(grants_) || !r.u64(idleCycles_))
            return false;
        if (n_ != 0 && next_ >= n_) {
            r.markFailed();
            return false;
        }
        return true;
    }

  private:
    void
    checkWidth()
    {
        if (n_ > kMaxClaimants)
            panic("RoundRobinArbiter: %u claimants exceed the %u-bit "
                  "claim mask", n_, kMaxClaimants);
    }

    uint32_t n_;
    uint32_t next_ = 0;
    uint64_t grants_ = 0;
    uint64_t idleCycles_ = 0;
};

} // namespace isrf

#endif // ISRF_SRF_ARBITER_H
