#include "srf/srf.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/log.h"

namespace isrf {

void
Srf::init(const SrfGeometry &geom, SrfMode mode, Crossbar *dataNet,
          Tracer *tracer)
{
    trc_ = tracer ? tracer : &Tracer::instance();
    // Backstop only: MachineConfig::validate() reports this collect-all
    // style before any machine is built. Direct init() callers (tests,
    // benches) bypass validate(), and serviceSeqSlot's row buffer is 8
    // words — wider would be silent stack corruption.
    if (geom.seqWidth > 8)
        panic("Srf: seqWidth %u > 8 unsupported (rejected by "
              "MachineConfig::validate)", geom.seqWidth);
    geom_ = geom;
    mode_ = mode;
    dataNet_ = dataNet;
    indexNet_.init(geom.lanes, geom.netPortsPerBank,
                   geom.netTopology);
    banks_.assign(geom.lanes, SrfBank());
    for (uint32_t l = 0; l < geom.lanes; l++)
        banks_[l].init(geom, l);
    slots_.assign(geom.maxStreamSlots, Slot());
    returnQueues_.assign(geom.lanes, {});
    memClaims_.clear();
    // Fresh arbiter (not resize()): a re-init must also reset the
    // priority pointer and grant/idle counters, or a rebuilt Machine
    // would arbitrate differently from a fresh one.
    globalArb_ = RoundRobinArbiter(geom.maxStreamSlots + 1);
    laneIdxRr_.assign(geom.lanes, 0);
    crossRouteRr_ = 0;
    curCycle_ = 0;
    seqClaimMask_ = 0;
    inLaneIdxOpenMask_ = 0;
    crossIdxOpenMask_ = 0;
    inLaneFifoEntries_ = 0;
    crossFifoEntries_ = 0;
    remoteEntries_ = 0;
    returnEntries_ = 0;
    stats_.resetAll();
    // Cached counter pointers stay valid across resetAll() (map nodes
    // are stable), but re-arming them keeps a freshly constructed Srf
    // and a re-initialized one on the identical lazy-registration path.
    portIdleC_ = nullptr;
    seqGrantC_ = nullptr;
    idxGrantC_ = nullptr;
    dmaGrantC_ = nullptr;
    crossRoutedC_ = nullptr;
    idxReadsC_ = nullptr;
    idxWritesC_ = nullptr;
    seqWords_ = 0;
    idxInLaneWords_ = 0;
    idxCrossWords_ = 0;
    traceCh_ = trc_->channel("srf");
    // Conflict degree caps at the per-cycle indexed access attempts:
    // lanes x sub-arrays is a generous upper bound for the range.
    conflictHist_ = &stats_.histogram("idx_conflict_degree", 0,
        static_cast<double>(geom.lanes * geom.subArrays),
        geom.lanes * geom.subArrays);
}

// ----------------------------------------------------------------------
// Slot management
// ----------------------------------------------------------------------

SlotId
Srf::openSlot(const SlotConfig &cfg)
{
    if (cfg.indexed && mode_ == SrfMode::SequentialOnly)
        panic("Srf: indexed slot requested on a sequential-only SRF");
    if (cfg.indexed && cfg.crossLane && cfg.dir == StreamDir::Out)
        panic("Srf: cross-lane indexed write streams are unsupported "
              "(paper §4.7)");
    if (cfg.recordWords == 0 || cfg.recordWords > 4)
        panic("Srf: record size %u words unsupported", cfg.recordWords);
    for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); id++) {
        if (slots_[id].open)
            continue;
        Slot &s = slots_[id];
        s.open = true;
        s.flushing = false;
        s.cfg = cfg;
        s.lanes.assign(geom_.lanes, LaneSlotState());
        for (auto &ls : s.lanes) {
            ls.seq.configure(geom_.streamBufWords);
            ls.fifo.configure(geom_.addrFifoSize, cfg.recordWords);
            ls.idata.configure(geom_.addrFifoSize +
                std::max<uint32_t>(1,
                    geom_.streamBufWords / cfg.recordWords));
        }
        stats_.counter("slots_opened").inc();
        recomputeIdxOpenMasks();
        recomputeSeqClaim(id);
        return id;
    }
    panic("Srf: out of stream slots (%u)", geom_.maxStreamSlots);
}

void
Srf::closeSlot(SlotId slot)
{
    Slot &s = slotRef(slot);
    uncountSlotFifos(s);
    s.open = false;
    s.lanes.clear();
    seqClaimMask_ &= ~(uint64_t{1} << slot);
    recomputeIdxOpenMasks();
}

void
Srf::rewindSlot(SlotId slot)
{
    Slot &s = slotRef(slot);
    uncountSlotFifos(s);
    s.flushing = false;
    for (auto &ls : s.lanes) {
        ls.seq.clear();
        ls.fifo.clear();
        ls.idata.clear();
        ls.readRow = 0;
        ls.writeRow = 0;
        ls.srfWordsRead = 0;
        ls.srfWordsWritten = 0;
        ls.nextSeqNo = 0;
        ls.pendingWrites = 0;
    }
    recomputeSeqClaim(slot);
}

void
Srf::configureSlotBinding(SlotId slot, StreamDir dir, bool indexed,
                          bool crossLane, bool readWrite)
{
    Slot &s = slotRef(slot);
    if (indexed && mode_ == SrfMode::SequentialOnly)
        panic("Srf: indexed binding requested on a sequential-only SRF");
    if (indexed && crossLane && (dir == StreamDir::Out || readWrite))
        panic("Srf: cross-lane indexed write streams are unsupported "
              "(paper §4.7)");
    if (readWrite && !indexed)
        panic("Srf: read-write bindings require an indexed stream");
    // Rewind under the *old* binding first: it un-counts the slot's
    // address-FIFO entries, which are categorized by the current
    // crossLane flag.
    rewindSlot(slot);
    s.cfg.dir = dir;
    s.cfg.indexed = indexed;
    s.cfg.crossLane = crossLane;
    s.cfg.readWrite = readWrite;
    recomputeIdxOpenMasks();
    recomputeSeqClaim(slot);
}

void
Srf::flushSlot(SlotId slot)
{
    slotRef(slot).flushing = true;
    recomputeSeqClaim(slot);
}

bool
Srf::flushComplete(SlotId slot) const
{
    const Slot &s = slotRef(slot);
    for (const auto &ls : s.lanes)
        if (!ls.seq.empty())
            return false;
    return true;
}

const SlotConfig &
Srf::slotConfig(SlotId slot) const
{
    return slotRef(slot).cfg;
}

uint64_t
Srf::wordsWritten(SlotId slot) const
{
    const Slot &s = slotRef(slot);
    uint64_t n = 0;
    for (const auto &ls : s.lanes)
        n += ls.srfWordsWritten;
    return n;
}

const Srf::Slot &
Srf::slotRef(SlotId slot) const
{
    if (slot < 0 || static_cast<size_t>(slot) >= slots_.size() ||
            !slots_[slot].open)
        panic("Srf: bad slot id %d", slot);
    return slots_[slot];
}

Srf::Slot &
Srf::slotRef(SlotId slot)
{
    return const_cast<Slot &>(
        static_cast<const Srf *>(this)->slotRef(slot));
}

// ----------------------------------------------------------------------
// Address mapping
// ----------------------------------------------------------------------

uint64_t
Srf::laneStreamWords(const Slot &s, uint32_t lane) const
{
    const SlotConfig &c = s.cfg;
    if (c.layout == StreamLayout::PerLane) {
        if (!c.perLaneLen.empty())
            return c.perLaneLen[lane];
        return c.lengthWords;
    }
    // Striped: lane owns global m-word blocks b with b % N == lane.
    uint64_t total = c.lengthWords;
    uint64_t m = geom_.seqWidth;
    uint64_t fullBlocks = total / m;
    uint64_t words = (fullBlocks / geom_.lanes) * m;
    uint64_t extraBlocks = fullBlocks % geom_.lanes;
    if (lane < extraBlocks)
        words += m;
    uint64_t tail = total % m;
    if (tail && fullBlocks % geom_.lanes == lane)
        words += tail;
    return words;
}

uint32_t
Srf::laneRowAddr(const Slot &s, uint32_t row) const
{
    return s.cfg.base + row * geom_.seqWidth;
}

std::pair<uint32_t, uint32_t>
Srf::stripedLocation(uint32_t base, uint64_t wordIndex) const
{
    uint64_t block = wordIndex / geom_.seqWidth;
    uint32_t lane = static_cast<uint32_t>(block % geom_.lanes);
    uint32_t row = static_cast<uint32_t>(block / geom_.lanes);
    uint32_t laneAddr = base + row * geom_.seqWidth +
        static_cast<uint32_t>(wordIndex % geom_.seqWidth);
    return {lane, laneAddr};
}

std::pair<uint32_t, uint32_t>
Srf::slotWordLocation(SlotId slot, uint64_t wordIndex) const
{
    const Slot &s = slotRef(slot);
    if (s.cfg.layout == StreamLayout::Striped)
        return stripedLocation(s.cfg.base, wordIndex);
    uint64_t remaining = wordIndex;
    for (uint32_t l = 0; l < geom_.lanes; l++) {
        uint64_t n = laneStreamWords(s, l);
        if (remaining < n)
            return {l, s.cfg.base + static_cast<uint32_t>(remaining)};
        remaining -= n;
    }
    panic("Srf::slotWordLocation: word index %llu beyond slot %d",
          static_cast<unsigned long long>(wordIndex), slot);
}

uint64_t
Srf::slotTotalWords(SlotId slot) const
{
    const Slot &s = slotRef(slot);
    if (s.cfg.layout == StreamLayout::Striped)
        return s.cfg.lengthWords;
    uint64_t n = 0;
    for (uint32_t l = 0; l < geom_.lanes; l++)
        n += laneStreamWords(s, l);
    return n;
}

std::pair<uint32_t, uint32_t>
Srf::idxLocation(const Slot &s, uint32_t lane, uint32_t wordIndex) const
{
    if (s.cfg.crossLane)
        return stripedLocation(s.cfg.base, wordIndex);
    return {lane, s.cfg.base + wordIndex};
}

// ----------------------------------------------------------------------
// Cluster-side sequential access
// ----------------------------------------------------------------------

bool
Srf::seqCanRead(uint32_t lane, SlotId slot) const
{
    return slotRef(slot).lanes[lane].seq.canPop();
}

Word
Srf::seqRead(uint32_t lane, SlotId slot)
{
    Slot &s = slotRef(slot);
    LaneSlotState &ls = s.lanes[lane];
    if (!ls.seq.canPop())
        panic("Srf: seqRead from empty buffer (lane %u slot %d)", lane,
              slot);
    ls.clusterReads++;
    seqWords_++;
    Word w = ls.seq.pop();
    // Claim-mask maintenance: popping grows an input buffer's free
    // space, so this lane's refill claim can only turn ON — other
    // lanes are untouched. An output slot's drain claim can turn off.
    const uint64_t bit = uint64_t{1} << slot;
    if (s.cfg.dir == StreamDir::In) {
        if (!(seqClaimMask_ & bit) && laneWantsSeqPort(s, lane))
            seqClaimMask_ |= bit;
    } else if (seqClaimMask_ & bit) {
        recomputeSeqClaim(slot);
    }
    return w;
}

bool
Srf::seqCanWrite(uint32_t lane, SlotId slot) const
{
    return slotRef(slot).lanes[lane].seq.canPush();
}

void
Srf::seqWrite(uint32_t lane, SlotId slot, Word w)
{
    Slot &s = slotRef(slot);
    LaneSlotState &ls = s.lanes[lane];
    if (!ls.seq.canPush())
        panic("Srf: seqWrite to full buffer (lane %u slot %d)", lane, slot);
    seqWords_++;
    ls.seq.push(w);
    // Pushing fills the buffer: an output slot's drain claim can only
    // turn ON for this lane; an input slot's refill claim can turn off.
    const uint64_t bit = uint64_t{1} << slot;
    if (s.cfg.dir == StreamDir::Out) {
        if (!(seqClaimMask_ & bit) && laneWantsSeqPort(s, lane))
            seqClaimMask_ |= bit;
    } else if (seqClaimMask_ & bit) {
        recomputeSeqClaim(slot);
    }
}

uint64_t
Srf::seqWordsRemaining(uint32_t lane, SlotId slot) const
{
    const Slot &s = slotRef(slot);
    const LaneSlotState &ls = s.lanes[lane];
    uint64_t total = laneStreamWords(s, lane);
    uint64_t inStorage = total > ls.srfWordsRead
        ? total - ls.srfWordsRead : 0;
    return inStorage + ls.seq.size();
}

uint32_t
Srf::seqBuffered(uint32_t lane, SlotId slot) const
{
    return static_cast<uint32_t>(slotRef(slot).lanes[lane].seq.size());
}

uint32_t
Srf::seqSpace(uint32_t lane, SlotId slot) const
{
    return slotRef(slot).lanes[lane].seq.freeSpace();
}

uint32_t
Srf::idxIssueSpace(uint32_t lane, SlotId slot) const
{
    const Slot &s = slotRef(slot);
    const LaneSlotState &ls = s.lanes[lane];
    auto fifoFree = static_cast<uint32_t>(
        geom_.addrFifoSize > ls.fifo.size()
            ? geom_.addrFifoSize - ls.fifo.size() : 0);
    if (s.cfg.dir == StreamDir::Out)
        return fifoFree;
    uint32_t dataCap = geom_.addrFifoSize +
        std::max<uint32_t>(1, geom_.streamBufWords / s.cfg.recordWords);
    uint32_t dataFree = dataCap > ls.idata.size()
        ? dataCap - static_cast<uint32_t>(ls.idata.size()) : 0;
    return std::min(fifoFree, dataFree);
}

bool
Srf::seqStarved(uint32_t lane, SlotId slot) const
{
    const Slot &s = slotRef(slot);
    const LaneSlotState &ls = s.lanes[lane];
    return ls.seq.empty() &&
        ls.srfWordsRead < laneStreamWords(s, lane);
}

// ----------------------------------------------------------------------
// Cluster-side indexed access
// ----------------------------------------------------------------------

bool
Srf::idxCanIssue(uint32_t lane, SlotId slot) const
{
    const Slot &s = slotRef(slot);
    const LaneSlotState &ls = s.lanes[lane];
    if (ls.fifo.full())
        return false;
    if (s.cfg.dir == StreamDir::In && ls.idata.full())
        return false;
    return true;
}

bool
Srf::idxIssueRead(uint32_t lane, SlotId slot, uint32_t recordIndex)
{
    Slot &s = slotRef(slot);
    LaneSlotState &ls = s.lanes[lane];
    if (!s.cfg.indexed || (s.cfg.dir != StreamDir::In && !s.cfg.readWrite))
        panic("Srf: idxIssueRead on non-indexed-input slot %d", slot);
    if (ls.fifo.full() || ls.idata.full())
        return false;
    uint64_t seqNo = ls.nextSeqNo++;
    ls.fifo.push(recordIndex, seqNo, curCycle_);
    ls.idata.registerRequest(seqNo, s.cfg.recordWords);
    if (s.cfg.crossLane)
        crossFifoEntries_++;
    else
        inLaneFifoEntries_++;
    lazyCounter(idxReadsC_, "idx_reads_issued").inc();
    return true;
}

bool
Srf::idxIssueWrite(uint32_t lane, SlotId slot, uint32_t recordIndex,
                   const Word *data)
{
    Slot &s = slotRef(slot);
    LaneSlotState &ls = s.lanes[lane];
    if (!s.cfg.indexed ||
            (s.cfg.dir != StreamDir::Out && !s.cfg.readWrite))
        panic("Srf: idxIssueWrite on non-indexed-output slot %d", slot);
    if (s.cfg.crossLane)
        panic("Srf: cross-lane indexed writes unsupported");
    if (ls.fifo.full())
        return false;
    uint64_t seqNo = ls.nextSeqNo++;
    ls.fifo.push(recordIndex, seqNo, curCycle_, data, s.cfg.recordWords);
    ls.pendingWrites++;
    inLaneFifoEntries_++;  // cross-lane writes are rejected above
    lazyCounter(idxWritesC_, "idx_writes_issued").inc();
    return true;
}

bool
Srf::idxDataReady(uint32_t lane, SlotId slot, Cycle now) const
{
    return slotRef(slot).lanes[lane].idata.headReady(now);
}

uint32_t
Srf::idxDataPop(uint32_t lane, SlotId slot, Word *out)
{
    return slotRef(slot).lanes[lane].idata.popHead(out);
}

size_t
Srf::idxOutstanding(uint32_t lane, SlotId slot) const
{
    const LaneSlotState &ls = slotRef(slot).lanes[lane];
    return ls.fifo.size() + ls.idata.size() + ls.pendingWrites;
}

bool
Srf::idxWritesDrained(SlotId slot) const
{
    const Slot &s = slotRef(slot);
    for (const auto &ls : s.lanes)
        if (ls.pendingWrites > 0)
            return false;
    return true;
}

// ----------------------------------------------------------------------
// Memory DMA
// ----------------------------------------------------------------------

void
Srf::memClaim(SlotId slot, std::function<void()> onGrant)
{
    memClaims_.push_back({slot, std::move(onGrant)});
}

// ----------------------------------------------------------------------
// Functional storage access
// ----------------------------------------------------------------------

Word
Srf::readWord(uint32_t lane, uint32_t laneAddr) const
{
    return banks_[lane].read(laneAddr);
}

void
Srf::writeWord(uint32_t lane, uint32_t laneAddr, Word w)
{
    banks_[lane].write(laneAddr, w);
}

std::vector<Word>
Srf::dumpSlot(SlotId slot) const
{
    const Slot &s = slotRef(slot);
    std::vector<Word> out;
    if (s.cfg.layout == StreamLayout::Striped) {
        out.reserve(s.cfg.lengthWords);
        for (uint64_t w = 0; w < s.cfg.lengthWords; w++) {
            auto [lane, addr] = stripedLocation(s.cfg.base, w);
            out.push_back(banks_[lane].read(addr));
        }
    } else {
        for (uint32_t l = 0; l < geom_.lanes; l++) {
            uint64_t n = laneStreamWords(s, l);
            for (uint64_t w = 0; w < n; w++) {
                out.push_back(banks_[l].read(
                    s.cfg.base + static_cast<uint32_t>(w)));
            }
        }
    }
    return out;
}

void
Srf::fillSlot(SlotId slot, const std::vector<Word> &data)
{
    const Slot &s = slotRef(slot);
    if (s.cfg.layout == StreamLayout::Striped) {
        for (uint64_t w = 0; w < data.size(); w++) {
            auto [lane, addr] = stripedLocation(s.cfg.base, w);
            banks_[lane].write(addr, data[w]);
        }
    } else {
        size_t pos = 0;
        for (uint32_t l = 0; l < geom_.lanes; l++) {
            uint64_t n = laneStreamWords(s, l);
            for (uint64_t w = 0; w < n && pos < data.size(); w++)
                banks_[l].write(s.cfg.base + static_cast<uint32_t>(w),
                                data[pos++]);
        }
    }
}

// ----------------------------------------------------------------------
// Cycle protocol
// ----------------------------------------------------------------------

void
Srf::beginCycle(Cycle now)
{
    curCycle_ = now;
    for (auto &b : banks_)
        b.newCycle();
    indexNet_.newCycle();
    memClaims_.clear();
}

bool
Srf::laneWantsSeqPort(const Slot &s, uint32_t lane) const
{
    if (!s.open || s.cfg.indexed)
        return false;
    const LaneSlotState &ls = s.lanes[lane];
    if (s.cfg.dir == StreamDir::In) {
        uint64_t remaining = laneStreamWords(s, lane) - ls.srfWordsRead;
        return remaining > 0 && ls.seq.freeSpace() >= geom_.seqWidth;
    }
    return ls.seq.size() >= geom_.seqWidth ||
        (s.flushing && !ls.seq.empty());
}

bool
Srf::slotWantsSeqPort(SlotId id) const
{
    const Slot &s = slots_[id];
    if (!s.open || s.cfg.indexed)
        return false;
    for (uint32_t l = 0; l < geom_.lanes; l++)
        if (laneWantsSeqPort(s, l))
            return true;
    return false;
}

void
Srf::recomputeSeqClaim(SlotId id)
{
    const uint64_t bit = uint64_t{1} << id;
    if (slotWantsSeqPort(id))
        seqClaimMask_ |= bit;
    else
        seqClaimMask_ &= ~bit;
}

void
Srf::recomputeIdxOpenMasks()
{
    inLaneIdxOpenMask_ = 0;
    crossIdxOpenMask_ = 0;
    for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); id++) {
        const Slot &s = slots_[id];
        if (!s.open || !s.cfg.indexed)
            continue;
        if (s.cfg.crossLane)
            crossIdxOpenMask_ |= uint64_t{1} << id;
        else
            inLaneIdxOpenMask_ |= uint64_t{1} << id;
    }
}

void
Srf::uncountSlotFifos(const Slot &s)
{
    if (!s.cfg.indexed || s.lanes.empty())
        return;
    uint64_t n = 0;
    for (const auto &ls : s.lanes)
        n += ls.fifo.size();
    if (s.cfg.crossLane)
        crossFifoEntries_ -= n;
    else
        inLaneFifoEntries_ -= n;
}

void
Srf::creditIdleCycles(uint64_t n)
{
    // Exactly what n dense endCycle() calls do when nothing claims the
    // port: the port-idle counter and the global arbiter's idle count
    // advance (its priority pointer stays frozen), and routeCrossLane's
    // slot rotation still steps once per cycle.
    lazyCounter(portIdleC_, "port_idle_cycles").inc(n);
    globalArb_.skipIdle(n);
    crossRouteRr_ = static_cast<uint32_t>(
        (crossRouteRr_ + n) % slots_.size());
}

void
Srf::serviceSeqSlot(SlotId id)
{
    Slot &s = slots_[id];
    const uint32_t m = geom_.seqWidth;
    for (uint32_t l = 0; l < geom_.lanes; l++) {
        LaneSlotState &ls = s.lanes[l];
        if (s.cfg.dir == StreamDir::In) {
            uint64_t total = laneStreamWords(s, l);
            uint64_t remaining = total > ls.srfWordsRead
                ? total - ls.srfWordsRead : 0;
            if (remaining == 0 || ls.seq.freeSpace() < m)
                continue;
            uint32_t k = static_cast<uint32_t>(
                std::min<uint64_t>(m, remaining));
            uint32_t rowAddr = laneRowAddr(s, ls.readRow);
            banks_[l].claimSequentialRow(rowAddr);
            Word block[8];
            for (uint32_t i = 0; i < k; i++)
                block[i] = banks_[l].read(rowAddr + i);
            ls.seq.refill(block, k);
            ls.srfWordsRead += k;
            ls.readRow++;
        } else {
            bool want = ls.seq.size() >= m ||
                (s.flushing && !ls.seq.empty());
            if (!want)
                continue;
            uint32_t rowAddr = laneRowAddr(s, ls.writeRow);
            banks_[l].claimSequentialRow(rowAddr);
            Word block[8];
            uint32_t k = ls.seq.drain(block, m);
            for (uint32_t i = 0; i < k; i++)
                banks_[l].write(rowAddr + i, block[i]);
            ls.srfWordsWritten += k;
            ls.writeRow++;
        }
    }
    recomputeSeqClaim(id);
    lazyCounter(seqGrantC_, "seq_grant_cycles").inc();
}

void
Srf::routeCrossLane(Cycle now)
{
    // The dedicated SRF address network (Figure 8(c)) routes one index
    // per source lane per cycle toward the owning bank, bounded by the
    // bank's network ports and remote queue space. The round-robin
    // visits only open cross-lane slots: the mask split at the rotation
    // pointer preserves the exact (crossRouteRr_ + k) % nSlots order of
    // a full-slot scan with the non-cross slots skipped.
    const uint64_t hi =
        crossIdxOpenMask_ & ~((uint64_t{1} << crossRouteRr_) - 1);
    const uint64_t lo = crossIdxOpenMask_ & ~hi;
    for (uint32_t l = 0; l < geom_.lanes; l++) {
        bool laneDone = false;
        for (uint64_t part : {hi, lo}) {
            for (uint64_t m = part; m != 0 && !laneDone; m &= m - 1) {
                SlotId id = static_cast<SlotId>(__builtin_ctzll(m));
                Slot &s = slots_[id];
                LaneSlotState &ls = s.lanes[l];
                if (ls.fifo.empty())
                    continue;
                uint32_t wordIndex = ls.fifo.headWordIndex();
                auto [bank, addr] = idxLocation(s, l, wordIndex);
                if (banks_[bank].remoteQueueFull()) {
                    laneDone = true;  // head blocks: lane stalls
                    break;
                }
                if (!indexNet_.route(l, bank)) {
                    laneDone = true;  // no network port left this cycle
                    break;
                }
                RemoteRequest r;
                r.sourceLane = l;
                r.slot = id;
                r.laneAddr = addr;
                r.seqNo = ls.fifo.head().seqNo;
                r.wordOffset = ls.fifo.head().wordsIssued;
                r.issueCycle = ls.fifo.head().issueCycle;
                r.arrival = now + 1 + indexNet_.extraLatency(l, bank);
                r.isWrite = false;
                r.writeData = 0;
                banks_[bank].pushRemote(r);
                remoteEntries_++;
                size_t before = ls.fifo.size();
                ls.fifo.advanceHead();
                if (ls.fifo.size() < before)
                    crossFifoEntries_--;
                lazyCounter(crossRoutedC_, "cross_indices_routed").inc();
                laneDone = true;  // one injection per lane per cycle
            }
            if (laneDone)
                break;
        }
    }
    crossRouteRr_ = (crossRouteRr_ + 1) %
        static_cast<uint32_t>(slots_.size());
    (void)now;
}

void
Srf::serviceIndexed(Cycle now)
{
    lazyCounter(idxGrantC_, "idx_grant_cycles").inc();
    const uint64_t conflicts0 = subArrayConflicts();
    const uint32_t budgetMax = geom_.indexedPerBank(mode_);
    const uint32_t nSlots = static_cast<uint32_t>(slots_.size());
    for (uint32_t l = 0; l < geom_.lanes; l++) {
        uint32_t budget = budgetMax;
        // Remote (cross-lane) requests first: bounded additionally by
        // the bank's return-network ports so the return queue stays
        // small.
        uint32_t remoteBudget =
            std::min(budget, geom_.netPortsPerBank);
        while (remoteBudget > 0 && banks_[l].hasRemote() && budget > 0) {
            RemoteRequest &r = banks_[l].remoteHead();
            if (r.arrival > now)
                break;  // index still in flight (ring hops)
            if (!banks_[l].claimIndexedWord(r.laneAddr))
                break;  // sub-array conflict: head blocks
            ReturnEntry ret;
            ret.data = banks_[l].read(r.laneAddr);
            ret.sourceLane = r.sourceLane;
            ret.slot = r.slot;
            ret.seqNo = r.seqNo;
            ret.wordOffset = r.wordOffset;
            ret.earliest = now + 1;
            ret.issueCycle = r.issueCycle;
            returnQueues_[l].push_back(ret);
            returnEntries_++;
            banks_[l].popRemote();
            remoteEntries_--;
            idxCrossWords_++;
            budget--;
            remoteBudget--;
        }
        // In-lane FIFO heads, rotating priority across the open
        // in-lane indexed slots; the mask split at this lane's rotation
        // pointer preserves the exact (laneIdxRr_ + k) % nSlots visit
        // order of a full-slot scan with the non-indexed slots skipped.
        const uint64_t hi = inLaneIdxOpenMask_ &
            ~((uint64_t{1} << laneIdxRr_[l]) - 1);
        const uint64_t lo = inLaneIdxOpenMask_ & ~hi;
        for (uint64_t part : {hi, lo}) {
            for (uint64_t m = part; m != 0 && budget > 0; m &= m - 1) {
                SlotId id = static_cast<SlotId>(__builtin_ctzll(m));
                Slot &s = slots_[id];
                LaneSlotState &ls = s.lanes[l];
                if (ls.fifo.empty())
                    continue;
                // Addresses become eligible the cycle after they enter
                // the FIFO (the FIFO is a pipeline stage, Figure 9).
                if (ls.fifo.head().issueCycle >= now)
                    continue;
                uint32_t wordIndex = ls.fifo.headWordIndex();
                auto [lane, addr] = idxLocation(s, l, wordIndex);
                if (!banks_[lane].claimIndexedWord(addr))
                    continue;  // conflict: this FIFO's head stalls
                if (!ls.fifo.head().isWrite) {
                    Word w = banks_[lane].read(addr);
                    Cycle ready = std::max(now + 2,
                        ls.fifo.head().issueCycle + geom_.inLaneLatency);
                    ls.idata.deliver(ls.fifo.head().seqNo,
                                     ls.fifo.head().wordsIssued, w,
                                     ready);
                } else {
                    banks_[lane].write(addr,
                        ls.fifo.head()
                            .writeData[ls.fifo.head().wordsIssued]);
                    if (ls.fifo.head().wordsIssued + 1 >=
                            s.cfg.recordWords)
                        ls.pendingWrites--;
                }
                size_t before = ls.fifo.size();
                ls.fifo.advanceHead();
                if (ls.fifo.size() < before)
                    inLaneFifoEntries_--;
                idxInLaneWords_++;
                budget--;
            }
            if (budget == 0)
                break;
        }
        laneIdxRr_[l] = (laneIdxRr_[l] + 1) % nSlots;
    }
    // Distribution of how many sub-array conflicts each indexed-access
    // cycle suffered (the Figure 15/17 throughput-loss mechanism).
    uint64_t degree = subArrayConflicts() - conflicts0;
    conflictHist_->sample(static_cast<double>(degree));
    if (trc_->on() && degree > 0)
        trc_->instant(traceCh_, "idx_conflicts", now, degree);
}

void
Srf::progressReturns(Cycle now)
{
    // Returning cross-lane data rides the inter-cluster network with
    // lower priority than explicit communications (§4.5): clusters claim
    // their comm slots before endCycle() runs, so remaining capacity
    // serves these returns.
    if (!dataNet_)
        return;
    for (uint32_t b = 0; b < geom_.lanes; b++) {
        auto &q = returnQueues_[b];
        while (!q.empty()) {
            ReturnEntry &r = q.front();
            if (r.earliest > now)
                break;
            if (!dataNet_->tryTransfer(b, r.sourceLane))
                break;
            Slot &s = slots_[r.slot];
            if (s.open) {
                Cycle ready = std::max(
                    now + 2 + dataNet_->extraLatency(b, r.sourceLane),
                    r.issueCycle + geom_.crossLaneLatency);
                s.lanes[r.sourceLane].idata.deliver(
                    r.seqNo, r.wordOffset, r.data, ready);
            }
            q.pop_front();
            returnEntries_--;
        }
    }
}

void
Srf::endCycle(Cycle now)
{
    // Global two-stage arbitration (§4.4): stage one picks a single
    // sequential stream (or DMA transfer) or the indexed-access bundle;
    // stage two (per-lane) happens inside serviceIndexed(). Claims are
    // maintained at enqueue/dequeue time (DESIGN.md §15), so a fully
    // quiescent cycle reduces to the same bulk idle credit skip mode
    // uses — no arbitration, no slot scans.
    const uint32_t nSlots = geom_.maxStreamSlots;
    const bool idxWork = inLaneFifoEntries_ > 0 || remoteEntries_ > 0;
    if (!idxWork && seqClaimMask_ == 0 && memClaims_.empty() &&
            crossFifoEntries_ == 0 && returnEntries_ == 0) {
        creditIdleCycles(1);
        return;
    }

    uint64_t claims = seqClaimMask_;
    for (const auto &mc : memClaims_) {
        if (mc.slot >= 0 && mc.slot < static_cast<SlotId>(nSlots))
            claims |= uint64_t{1} << mc.slot;
    }
    if (mode_ != SrfMode::SequentialOnly && idxWork)
        claims |= uint64_t{1} << nSlots;

    // Stall-aware arbitration (SS5.4 ablation): indexed accesses take
    // the port outright when an address FIFO is close to overflowing.
    // The urgency scan covers cross-lane slots too, matching the claim
    // they raise through routed remote requests.
    bool idxUrgent = false;
    if (geom_.arbPolicy == ArbPolicy::IndexedPriority && idxWork) {
        uint32_t threshold = geom_.addrFifoSize -
            std::max(1u, geom_.addrFifoSize / 4);
        uint64_t open = inLaneIdxOpenMask_ | crossIdxOpenMask_;
        for (uint64_t m = open; m != 0 && !idxUrgent; m &= m - 1) {
            const Slot &s =
                slots_[static_cast<size_t>(__builtin_ctzll(m))];
            for (const auto &ls : s.lanes) {
                if (ls.fifo.size() >= threshold) {
                    idxUrgent = true;
                    break;
                }
            }
        }
    }

    int granted = idxUrgent ? static_cast<int>(nSlots)
                            : globalArb_.arbitrate(claims);
    if (granted == static_cast<int>(nSlots)) {
        if (trc_->on())
            trc_->instant(traceCh_, "idx_grant", now,
                          idxUrgent ? 1 : 0);
        serviceIndexed(now);
    } else if (granted >= 0) {
        bool dmaServed = false;
        for (auto &mc : memClaims_) {
            if (mc.slot == granted) {
                mc.onGrant();
                dmaServed = true;
                lazyCounter(dmaGrantC_, "dma_grant_cycles").inc();
                break;
            }
        }
        if (trc_->on())
            trc_->instant(traceCh_,
                dmaServed ? "dma_grant" : "seq_grant", now,
                static_cast<uint64_t>(granted));
        if (!dmaServed)
            serviceSeqSlot(granted);
    } else {
        lazyCounter(portIdleC_, "port_idle_cycles").inc();
    }

    // routeCrossLane rotates its round-robin pointer every cycle even
    // with nothing to route; only pay the full routing pass when a
    // cross-lane address FIFO actually holds entries.
    if (crossFifoEntries_ > 0)
        routeCrossLane(now);
    else
        crossRouteRr_ = (crossRouteRr_ + 1) %
            static_cast<uint32_t>(slots_.size());
    if (returnEntries_ > 0)
        progressReturns(now);
}

Cycle
Srf::nextEvent(Cycle now) const
{
    // Any buffered work means a dense endCycle can move words (or at
    // least a queue head can age toward eligibility) next cycle. The
    // pending-claims mask and occupancy counters are exact mirrors of
    // the buffer state, so no slot scan is needed.
    if (seqClaimMask_ != 0 || inLaneFifoEntries_ > 0 ||
            crossFifoEntries_ > 0 || remoteEntries_ > 0 ||
            returnEntries_ > 0)
        return now + 1;
    // Quiescent: every per-cycle side effect left is bulk-creditable
    // via skipCycles (idle counters, RR rotation).
    return kNoEvent;
}

void
Srf::skipCycles(Cycle from, Cycle to)
{
    // Same bulk credit the dense fast path takes one cycle at a time —
    // shared code, so the two cannot drift apart.
    creditIdleCycles(to - from);
    // beginCycle() stamps the cycle; the last skipped cycle is to - 1.
    curCycle_ = to - 1;
}

uint64_t
Srf::subArrayConflicts() const
{
    uint64_t n = 0;
    for (const auto &b : banks_)
        n += b.subArrayConflicts();
    return n;
}

uint32_t
Srf::maxRemoteQueueDepth() const
{
    size_t n = 0;
    for (const auto &b : banks_)
        n = std::max(n, b.remoteQueueSize());
    return static_cast<uint32_t>(n);
}

// ----------------------------------------------------------------------
// Fault model
// ----------------------------------------------------------------------

void
Srf::injectBitFlips(uint32_t lane, uint32_t laneAddr, Word mask,
                    bool transient)
{
    if (lane >= banks_.size())
        panic("Srf::injectBitFlips: bad lane %u", lane);
    banks_[lane].injectBitFlips(laneAddr, mask, transient);
}

void
Srf::setDegradeThreshold(uint32_t threshold)
{
    for (auto &b : banks_)
        b.setDegradeThreshold(threshold);
}

void
Srf::setSubArrayOffline(uint32_t lane, uint32_t sub, bool offline)
{
    if (lane >= banks_.size())
        panic("Srf::setSubArrayOffline: bad lane %u", lane);
    banks_[lane].setSubArrayOffline(sub, offline);
}

uint32_t
Srf::offlineSubArrays() const
{
    uint32_t n = 0;
    for (const auto &b : banks_)
        n += b.offlineSubArrays();
    return n;
}

uint64_t
Srf::scrubFaults()
{
    uint64_t repaired = 0;
    for (auto &b : banks_)
        repaired += b.scrubEcc();
    return repaired;
}

uint64_t
Srf::eccCorrected() const
{
    uint64_t n = 0;
    for (const auto &b : banks_)
        n += b.ecc().corrected();
    return n;
}

uint64_t
Srf::eccUncorrectable() const
{
    uint64_t n = 0;
    for (const auto &b : banks_)
        n += b.ecc().uncorrectable();
    return n;
}

uint64_t
Srf::faultsInjected() const
{
    uint64_t n = 0;
    for (const auto &b : banks_)
        n += b.ecc().faultsInjected();
    return n;
}

void
Srf::syncFaultStats()
{
    stats_.counter("ecc_corrected").set(eccCorrected());
    stats_.counter("ecc_detected_uncorrectable").set(eccUncorrectable());
    stats_.counter("faults_injected").set(faultsInjected());
    stats_.counter("degraded_subarrays").set(offlineSubArrays());
}

void
Srf::saveState(SnapshotWriter &w) const
{
    w.u64(curCycle_);
    w.u32(crossRouteRr_);
    w.u64(laneIdxRr_.size());
    for (uint32_t v : laneIdxRr_)
        w.u32(v);
    globalArb_.saveState(w);
    w.u64(seqWords_);
    w.u64(idxInLaneWords_);
    w.u64(idxCrossWords_);
    indexNet_.saveState(w);

    w.u64(slots_.size());
    for (const Slot &s : slots_) {
        w.b(s.open);
        w.b(s.flushing);
        w.u8(static_cast<uint8_t>(s.cfg.dir));
        w.b(s.cfg.indexed);
        w.b(s.cfg.crossLane);
        w.u8(static_cast<uint8_t>(s.cfg.layout));
        w.u32(s.cfg.base);
        w.u32(s.cfg.lengthWords);
        w.u64(s.cfg.perLaneLen.size());
        for (uint32_t v : s.cfg.perLaneLen)
            w.u32(v);
        w.u32(s.cfg.recordWords);
        w.b(s.cfg.readWrite);
        w.u64(s.lanes.size());
        for (const LaneSlotState &ls : s.lanes) {
            ls.seq.saveState(w);
            ls.fifo.saveState(w);
            ls.idata.saveState(w);
            w.u32(ls.readRow);
            w.u32(ls.writeRow);
            w.u64(ls.srfWordsRead);
            w.u64(ls.srfWordsWritten);
            w.u64(ls.clusterReads);
            w.u64(ls.nextSeqNo);
            w.u64(ls.pendingWrites);
        }
    }

    w.u64(returnQueues_.size());
    for (const auto &q : returnQueues_) {
        w.u64(q.size());
        for (const ReturnEntry &e : q) {
            w.u32(e.data);
            w.u32(e.sourceLane);
            w.u32(static_cast<uint32_t>(e.slot));
            w.u64(e.seqNo);
            w.u32(e.wordOffset);
            w.u64(e.earliest);
            w.u64(e.issueCycle);
        }
    }

    w.u64(banks_.size());
    for (const SrfBank &b : banks_)
        b.saveState(w);
    stats_.saveState(w);
}

bool
Srf::loadState(SnapshotReader &r)
{
    uint64_t n = 0;
    if (!r.u64(curCycle_) || !r.u32(crossRouteRr_) ||
        !r.len(n, 4) || n != laneIdxRr_.size())
        return false;
    for (uint32_t &v : laneIdxRr_)
        if (!r.u32(v))
            return false;
    if (!globalArb_.loadState(r) || !r.u64(seqWords_) ||
        !r.u64(idxInLaneWords_) || !r.u64(idxCrossWords_) ||
        !indexNet_.loadState(r))
        return false;

    if (!r.len(n, 2) || n != slots_.size())
        return false;
    for (Slot &s : slots_) {
        uint8_t dirRaw = 0, layoutRaw = 0;
        uint64_t nper = 0;
        if (!r.b(s.open) || !r.b(s.flushing) || !r.u8(dirRaw) ||
            !r.b(s.cfg.indexed) || !r.b(s.cfg.crossLane) ||
            !r.u8(layoutRaw) || !r.u32(s.cfg.base) ||
            !r.u32(s.cfg.lengthWords) || !r.len(nper, 4))
            return false;
        s.cfg.dir = static_cast<StreamDir>(dirRaw);
        s.cfg.layout = static_cast<StreamLayout>(layoutRaw);
        s.cfg.perLaneLen.resize(nper);
        for (uint32_t &v : s.cfg.perLaneLen)
            if (!r.u32(v))
                return false;
        uint64_t nlanes = 0;
        if (!r.u32(s.cfg.recordWords) || !r.b(s.cfg.readWrite) ||
            !r.len(nlanes, 1))
            return false;
        if (nlanes != 0 && nlanes != geom_.lanes) {
            r.markFailed();
            return false;
        }
        s.lanes.assign(static_cast<size_t>(nlanes), LaneSlotState());
        for (LaneSlotState &ls : s.lanes) {
            if (!ls.seq.loadState(r) || !ls.fifo.loadState(r) ||
                !ls.idata.loadState(r) || !r.u32(ls.readRow) ||
                !r.u32(ls.writeRow) || !r.u64(ls.srfWordsRead) ||
                !r.u64(ls.srfWordsWritten) ||
                !r.u64(ls.clusterReads) || !r.u64(ls.nextSeqNo) ||
                !r.u64(ls.pendingWrites))
                return false;
        }
    }

    if (!r.len(n, 8) || n != returnQueues_.size())
        return false;
    for (auto &q : returnQueues_) {
        uint64_t nq = 0;
        if (!r.len(nq, 38))
            return false;
        q.clear();
        for (uint64_t i = 0; i < nq; i++) {
            ReturnEntry e;
            uint32_t slotRaw = 0;
            if (!r.u32(e.data) || !r.u32(e.sourceLane) ||
                !r.u32(slotRaw) || !r.u64(e.seqNo) ||
                !r.u32(e.wordOffset) || !r.u64(e.earliest) ||
                !r.u64(e.issueCycle))
                return false;
            e.slot = static_cast<SlotId>(slotRaw);
            q.push_back(e);
        }
    }

    if (!r.len(n, 1) || n != banks_.size())
        return false;
    for (SrfBank &b : banks_)
        if (!b.loadState(r))
            return false;
    if (!stats_.loadState(r))
        return false;

    // Derived state: intra-cycle claims are dead at a cycle boundary;
    // the event-driven masks and occupancy counters mirror the queues
    // just restored (DESIGN.md §15) and are rebuilt from them.
    memClaims_.clear();
    seqClaimMask_ = 0;
    for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); id++)
        recomputeSeqClaim(id);
    recomputeIdxOpenMasks();
    inLaneFifoEntries_ = 0;
    crossFifoEntries_ = 0;
    for (const Slot &s : slots_) {
        if (!s.open || !s.cfg.indexed)
            continue;
        uint64_t entries = 0;
        for (const LaneSlotState &ls : s.lanes)
            entries += ls.fifo.size();
        if (s.cfg.crossLane)
            crossFifoEntries_ += entries;
        else
            inLaneFifoEntries_ += entries;
    }
    remoteEntries_ = 0;
    for (const SrfBank &b : banks_)
        remoteEntries_ += b.remoteQueueSize();
    returnEntries_ = 0;
    for (const auto &q : returnQueues_)
        returnEntries_ += q.size();
    return true;
}

} // namespace isrf
