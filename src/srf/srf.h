/**
 * @file
 * The stream register file: storage, stream slots, stream buffers,
 * address FIFOs, two-stage arbitration, and the cross-lane access
 * pipeline (§4 of the paper, all variants of Table 2).
 *
 * The Srf is the meeting point of three clients:
 *  - compute clusters: word-granular reads/writes of sequential stream
 *    buffers, and indexed issue/data-pop pairs;
 *  - the memory system: block DMA between DRAM and SRF storage, which
 *    competes for the single SRF port via memClaim();
 *  - the stream-program runtime: opens/closes stream slots and flushes
 *    output buffers at kernel end.
 *
 * Timing protocol per machine cycle (orchestrated by Machine):
 *  1. beginCycle()  — free bank/sub-array ports, clear per-cycle grants
 *  2. clients issue work (clusters read/write buffers + push indices;
 *     the memory system registers port claims)
 *  3. endCycle(now) — global arbitration; either one sequential stream
 *     (or DMA) uses the wide port, or all indexed FIFOs access their
 *     banks; cross-lane routing and data returns are progressed.
 */
#ifndef ISRF_SRF_SRF_H
#define ISRF_SRF_SRF_H

#include <deque>
#include <functional>
#include <vector>

#include "net/crossbar.h"
#include "net/index_network.h"
#include "srf/address_fifo.h"
#include "srf/arbiter.h"
#include "srf/srf_bank.h"
#include "srf/srf_types.h"
#include "srf/stream_buffer.h"
#include "util/stats.h"

namespace isrf {

class Tracer;

/** Parameters of one stream slot opened in the SRF. */
struct SlotConfig
{
    StreamDir dir = StreamDir::In;
    bool indexed = false;
    bool crossLane = false;
    StreamLayout layout = StreamLayout::Striped;
    /** Base word address within every lane's bank. */
    uint32_t base = 0;
    /**
     * Stream length in words: total across lanes for Striped layout,
     * per-lane for PerLane layout (overridden by perLaneLen if set).
     */
    uint32_t lengthWords = 0;
    /** Optional per-lane lengths (PerLane layout only). */
    std::vector<uint32_t> perLaneLen;
    /** Words per record for indexed accesses (1..4). */
    uint32_t recordWords = 1;
    /**
     * Read-write indexed binding (paper §7 future work): the kernel may
     * both read and write records of this in-lane stream; reads and
     * writes share the address FIFO and retire in issue order.
     */
    bool readWrite = false;
};

/**
 * Stream register file model with optional indexed access.
 *
 * @sa DESIGN.md §2 system inventory items 2-4.
 */
class Srf
{
  public:
    Srf() = default;

    /**
     * Configure geometry and variant. dataNet is the shared
     * inter-cluster network used for cross-lane data returns (owned by
     * the machine; may be null when cross-lane indexing is unused).
     */
    void init(const SrfGeometry &geom, SrfMode mode, Crossbar *dataNet,
              Tracer *tracer = nullptr);

    const SrfGeometry &geometry() const { return geom_; }
    SrfMode mode() const { return mode_; }

    // ------------------------------------------------------------------
    // Slot management (stream-program runtime)
    // ------------------------------------------------------------------

    /** Open a stream slot; returns its id. Fails if none free. */
    SlotId openSlot(const SlotConfig &cfg);

    /** Close a slot, discarding buffer state (data stays in storage). */
    void closeSlot(SlotId slot);

    /** Reset a slot's cursors/buffers for a fresh pass over its data. */
    void rewindSlot(SlotId slot);

    /**
     * Re-target a slot for a new kernel binding: direction and
     * addressing mode are per-binding properties of the stream buffers,
     * not of the storage region. Implies rewindSlot().
     */
    void configureSlotBinding(SlotId slot, StreamDir dir, bool indexed,
                              bool crossLane, bool readWrite = false);

    /** Begin flushing an output slot (drain partial buffers). */
    void flushSlot(SlotId slot);

    /** True once an output slot's buffers have fully drained. */
    bool flushComplete(SlotId slot) const;

    const SlotConfig &slotConfig(SlotId slot) const;

    /** Total words written to an output slot so far (storage side). */
    uint64_t wordsWritten(SlotId slot) const;

    // ------------------------------------------------------------------
    // Cluster-side sequential access
    // ------------------------------------------------------------------

    /** True if lane can pop a word from a sequential input stream. */
    bool seqCanRead(uint32_t lane, SlotId slot) const;
    Word seqRead(uint32_t lane, SlotId slot);
    /** True if lane's output buffer can accept a word. */
    bool seqCanWrite(uint32_t lane, SlotId slot) const;
    void seqWrite(uint32_t lane, SlotId slot, Word w);

    /** Words this lane has not yet consumed (buffered + in storage). */
    uint64_t seqWordsRemaining(uint32_t lane, SlotId slot) const;

    /** Words currently buffered for this lane (sequential slot). */
    uint32_t seqBuffered(uint32_t lane, SlotId slot) const;

    /** Free buffer space for this lane (sequential output slot). */
    uint32_t seqSpace(uint32_t lane, SlotId slot) const;

    /** Indexed requests that can be issued before backpressure. */
    uint32_t idxIssueSpace(uint32_t lane, SlotId slot) const;

    /** True when a refill for this lane is blocked on the SRF port (the
     *  buffer is empty but storage words remain). */
    bool seqStarved(uint32_t lane, SlotId slot) const;

    // ------------------------------------------------------------------
    // Cluster-side indexed access (§4.4)
    // ------------------------------------------------------------------

    /** True if an indexed request can be issued (FIFO not full). */
    bool idxCanIssue(uint32_t lane, SlotId slot) const;

    /** Issue an indexed record read; false if the FIFO is full. */
    bool idxIssueRead(uint32_t lane, SlotId slot, uint32_t recordIndex);

    /** Issue an in-lane indexed record write; false if FIFO full. */
    bool idxIssueWrite(uint32_t lane, SlotId slot, uint32_t recordIndex,
                       const Word *data);

    /** True if the oldest outstanding read's data is consumable now. */
    bool idxDataReady(uint32_t lane, SlotId slot, Cycle now) const;

    /** Pop the oldest read's record into out[]; returns word count. */
    uint32_t idxDataPop(uint32_t lane, SlotId slot, Word *out);

    /** Outstanding indexed requests (addresses + undelivered data). */
    size_t idxOutstanding(uint32_t lane, SlotId slot) const;

    /** True if all indexed writes of this slot have retired. */
    bool idxWritesDrained(SlotId slot) const;

    // ------------------------------------------------------------------
    // Memory-system DMA port
    // ------------------------------------------------------------------

    /**
     * Claim the SRF port for a DMA block transfer this cycle. The
     * callback runs during endCycle() if the claim wins arbitration and
     * must perform the actual word movement via readWord/writeWord.
     * Claims are single-cycle: re-claim every cycle until done.
     */
    void memClaim(SlotId slot, std::function<void()> onGrant);

    // ------------------------------------------------------------------
    // Functional storage access (DMA, program setup, validation)
    // ------------------------------------------------------------------

    Word readWord(uint32_t lane, uint32_t laneAddr) const;
    void writeWord(uint32_t lane, uint32_t laneAddr, Word w);

    /** Map a striped stream's element word to (lane, laneAddr). */
    std::pair<uint32_t, uint32_t> stripedLocation(uint32_t base,
                                                  uint64_t wordIndex) const;

    /**
     * Map a slot-relative stream word index to (lane, laneAddr),
     * honoring the slot's layout. For PerLane layout, stream words are
     * lane 0's region followed by lane 1's, etc. (dumpSlot order).
     */
    std::pair<uint32_t, uint32_t> slotWordLocation(SlotId slot,
                                                   uint64_t wordIndex) const;

    /** Total words a slot holds (sum of lane shares). */
    uint64_t slotTotalWords(SlotId slot) const;

    /** Functional whole-stream read (validation/DMA helpers). */
    std::vector<Word> dumpSlot(SlotId slot) const;
    /** Functional whole-stream write into a slot's storage region. */
    void fillSlot(SlotId slot, const std::vector<Word> &data);

    // ------------------------------------------------------------------
    // Cycle protocol
    // ------------------------------------------------------------------

    void beginCycle(Cycle now);
    void endCycle(Cycle now);

    /**
     * Earliest future cycle the SRF itself can make progress, queried
     * after endCycle(now) in skip mode. The SRF is a slave of its
     * clients: it either has buffered work (any seq refill/drain
     * pending, any address FIFO or remote/return queue non-empty) and
     * reports now + 1, or it is fully quiescent and reports kNoEvent.
     */
    Cycle nextEvent(Cycle now) const;

    /**
     * Bulk-credit n skipped quiescent cycles: the idle-port counters,
     * the cross-lane routing round-robin rotation, and the cycle stamp
     * — exactly what n dense begin/endCycle pairs do when quiescent.
     */
    void skipCycles(Cycle from, Cycle to);

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Cluster-side words popped/pushed on sequential buffers. */
    uint64_t seqWordsAccessed() const { return seqWords_; }
    uint64_t idxInLaneWords() const { return idxInLaneWords_; }
    uint64_t idxCrossWords() const { return idxCrossWords_; }
    uint64_t subArrayConflicts() const;

    /** Deepest per-bank cross-lane request queue right now (gauge). */
    uint32_t maxRemoteQueueDepth() const;

    // ------------------------------------------------------------------
    // Fault model (src/fault/, DESIGN.md §Fault model)
    // ------------------------------------------------------------------

    /** Flip storage bits in one bank, recorded for SECDED decode. */
    void injectBitFlips(uint32_t lane, uint32_t laneAddr, Word mask,
                        bool transient);

    /** Per-bank uncorrectable threshold for degradation (0 = off). */
    void setDegradeThreshold(uint32_t threshold);

    /** Manually force a sub-array offline/online in every relevant
     *  bank (bench/test control; lane-local). */
    void setSubArrayOffline(uint32_t lane, uint32_t sub, bool offline);

    /** Offline sub-arrays summed over all banks. */
    uint32_t offlineSubArrays() const;

    /** Background-scrub all banks. @return words repaired. */
    uint64_t scrubFaults();

    uint64_t eccCorrected() const;
    uint64_t eccUncorrectable() const;
    uint64_t faultsInjected() const;

    /** Publish the fault counters into this group's stats. */
    void syncFaultStats();

    // ------------------------------------------------------------------
    // Snapshot (util/snapshot.h, DESIGN.md §17)
    // ------------------------------------------------------------------

    /**
     * Serialize all architectural state: slots with their buffers and
     * FIFOs, bank storage and remote queues, return queues,
     * arbitration rotation and statistics. The event-driven masks and
     * occupancy counters are derived state and are recomputed on
     * loadState(); memClaims_ is intra-cycle state (cleared every
     * beginCycle()) and is likewise not persisted.
     */
    void saveState(SnapshotWriter &w) const;
    bool loadState(SnapshotReader &r);

  private:
    struct LaneSlotState
    {
        SeqBuffer seq;
        AddressFifo fifo;
        IdxDataBuffer idata;
        uint32_t readRow = 0;
        uint32_t writeRow = 0;
        uint64_t srfWordsRead = 0;    ///< storage words moved to buffer
        uint64_t srfWordsWritten = 0; ///< storage words drained from buffer
        uint64_t clusterReads = 0;
        uint64_t nextSeqNo = 0;
        uint64_t pendingWrites = 0;   ///< indexed writes not yet retired
    };

    struct Slot
    {
        bool open = false;
        bool flushing = false;
        SlotConfig cfg;
        std::vector<LaneSlotState> lanes;
    };

    struct ReturnEntry
    {
        Word data;
        uint32_t sourceLane;
        SlotId slot;
        uint64_t seqNo;
        uint32_t wordOffset;
        Cycle earliest;
        Cycle issueCycle;
    };

    struct MemClaim
    {
        SlotId slot;
        std::function<void()> onGrant;
    };

    /** Words available to lane in storage for sequential streaming. */
    uint64_t laneStreamWords(const Slot &s, uint32_t lane) const;
    /** Lane-bank word address of a lane's sequential row word. */
    uint32_t laneRowAddr(const Slot &s, uint32_t row) const;
    /** Resolve an indexed word access to (lane, laneAddr). */
    std::pair<uint32_t, uint32_t> idxLocation(const Slot &s, uint32_t lane,
                                              uint32_t wordIndex) const;

    bool slotWantsSeqPort(SlotId id) const;
    void serviceSeqSlot(SlotId id);
    void serviceIndexed(Cycle now);
    void routeCrossLane(Cycle now);
    void progressReturns(Cycle now);

    /** Does this one lane make `s` claim the sequential port? */
    bool laneWantsSeqPort(const Slot &s, uint32_t lane) const;

    /** Recompute slot id's bit of seqClaimMask_ from buffer state. */
    void recomputeSeqClaim(SlotId id);

    /** Recompute the open-indexed-slot masks (slot open/close/rebind). */
    void recomputeIdxOpenMasks();

    /** Remove a slot's address-FIFO entries from the pending counters
     *  (rewind/close; must run before the FIFOs are cleared and before
     *  the slot's crossLane flag changes). */
    void uncountSlotFifos(const Slot &s);

    /**
     * Credit n fully quiescent cycles: the port-idle counter, the
     * global arbiter's idle count (priority pointer frozen), and the
     * cross-lane routing round-robin rotation. Shared by the dense
     * zero-claims fast path and skip-mode bulk crediting so the two
     * are identical by construction.
     */
    void creditIdleCycles(uint64_t n);

    /** Cached stats-counter lookup (map nodes are address-stable). */
    Counter &
    lazyCounter(Counter *&c, const char *name)
    {
        if (!c)
            c = &stats_.counter(name);
        return *c;
    }

    const Slot &slotRef(SlotId slot) const;
    Slot &slotRef(SlotId slot);

    SrfGeometry geom_;
    SrfMode mode_ = SrfMode::SequentialOnly;
    Crossbar *dataNet_ = nullptr;
    IndexNetwork indexNet_;
    std::vector<SrfBank> banks_;
    std::vector<Slot> slots_;
    std::vector<MemClaim> memClaims_;
    std::vector<std::deque<ReturnEntry>> returnQueues_;
    RoundRobinArbiter globalArb_;
    std::vector<uint32_t> laneIdxRr_;  ///< per-lane local RR pointer
    uint32_t crossRouteRr_ = 0;
    Cycle curCycle_ = 0;

    // Event-driven arbitration state (DESIGN.md §15): claims are
    // tracked at enqueue/dequeue time so endCycle() and nextEvent()
    // never scan quiescent slots. seqClaimMask_ bit i mirrors
    // slotWantsSeqPort(i) exactly; the occupancy counters mirror the
    // address FIFOs / remote queues / return queues of open slots.
    uint64_t seqClaimMask_ = 0;
    uint64_t inLaneIdxOpenMask_ = 0;  ///< open && indexed && !crossLane
    uint64_t crossIdxOpenMask_ = 0;   ///< open && indexed && crossLane
    uint64_t inLaneFifoEntries_ = 0;
    uint64_t crossFifoEntries_ = 0;
    uint64_t remoteEntries_ = 0;
    uint64_t returnEntries_ = 0;

    // Lazily cached hot-path counters (see lazyCounter): caching keeps
    // stats registration — and therefore report contents — identical
    // to on-demand stats_.counter() lookups.
    Counter *portIdleC_ = nullptr;
    Counter *seqGrantC_ = nullptr;
    Counter *idxGrantC_ = nullptr;
    Counter *dmaGrantC_ = nullptr;
    Counter *crossRoutedC_ = nullptr;
    Counter *idxReadsC_ = nullptr;
    Counter *idxWritesC_ = nullptr;

    StatGroup stats_{"srf"};
    uint64_t seqWords_ = 0;
    uint64_t idxInLaneWords_ = 0;
    uint64_t idxCrossWords_ = 0;
    Tracer *trc_ = nullptr;  ///< owning machine's tracer
    uint16_t traceCh_ = 0;
    /** Per-idx-cycle sub-array conflict-degree distribution. */
    Histogram *conflictHist_ = nullptr;
};

} // namespace isrf

#endif // ISRF_SRF_SRF_H
