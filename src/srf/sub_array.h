/**
 * @file
 * One SRAM sub-array of an SRF bank (§4.1/4.2).
 *
 * Sub-arrays are single-ported: each can perform one access per cycle —
 * either its share of a wide sequential row access, or one single-word
 * indexed access through the added 8:1 column multiplexer. The model
 * tracks per-cycle occupancy and access-energy statistics.
 */
#ifndef ISRF_SRF_SUB_ARRAY_H
#define ISRF_SRF_SUB_ARRAY_H

#include "sim/ticked.h"
#include "util/snapshot.h"
#include "util/stats.h"

namespace isrf {

/** Per-cycle access token + statistics for one SRAM sub-array. */
class SubArray
{
  public:
    SubArray() = default;

    /** Start a new cycle: the port becomes free again. */
    void newCycle() { busy_ = false; }

    /** True if the port is still free this cycle. */
    bool available() const { return !busy_; }

    /**
     * Claim the port for a single-word indexed access.
     * @return false if already busy this cycle (conflict).
     */
    bool
    claimIndexed()
    {
        if (busy_) {
            conflicts_++;
            return false;
        }
        busy_ = true;
        indexedAccesses_++;
        return true;
    }

    /** Claim the port for a wide sequential row access. */
    bool
    claimSequential()
    {
        if (busy_) {
            conflicts_++;
            return false;
        }
        busy_ = true;
        sequentialAccesses_++;
        return true;
    }

    uint64_t indexedAccesses() const { return indexedAccesses_; }
    uint64_t sequentialAccesses() const { return sequentialAccesses_; }
    uint64_t conflicts() const { return conflicts_; }

    void
    resetStats()
    {
        indexedAccesses_ = 0;
        sequentialAccesses_ = 0;
        conflicts_ = 0;
    }

    /** Counters only; the port token is per-cycle state and restores
     *  free (snapshots are taken at cycle boundaries). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(indexedAccesses_);
        w.u64(sequentialAccesses_);
        w.u64(conflicts_);
    }

    bool
    loadState(SnapshotReader &r)
    {
        busy_ = false;
        return r.u64(indexedAccesses_) &&
               r.u64(sequentialAccesses_) && r.u64(conflicts_);
    }

  private:
    bool busy_ = false;
    uint64_t indexedAccesses_ = 0;
    uint64_t sequentialAccesses_ = 0;
    uint64_t conflicts_ = 0;
};

} // namespace isrf

#endif // ISRF_SRF_SUB_ARRAY_H
