#include "srf/srf_bank.h"

#include "util/log.h"

namespace isrf {

void
SrfBank::init(const SrfGeometry &geom, uint32_t laneId)
{
    geom_ = geom;
    laneId_ = laneId;
    remoteDepth_ = geom.remoteQueueDepth;
    words_.assign(geom.laneWords, 0);
    subArrays_.assign(geom.subArrays, SubArray());
    remoteQueue_.clear();
    portsDirty_ = true;  // fresh sub-arrays: force one clean reset
    ecc_.clear();
    offline_.assign(geom.subArrays, 0);
    subUncorrectable_.assign(geom.subArrays, 0);
    onlineCount_ = geom.subArrays;
}

void
SrfBank::newCycle()
{
    // Sub-array ports only become busy through the claim calls below;
    // with none since the last reset every port is already free.
    if (!portsDirty_)
        return;
    for (auto &sa : subArrays_)
        sa.newCycle();
    portsDirty_ = false;
}

Word
SrfBank::read(uint32_t addr) const
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::read: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    if (ecc_.empty())
        return words_[addr];
    // SECDED decode on every read: single-bit faults are corrected and
    // scrubbed back into storage (logically const); multi-bit faults
    // are detected, counted against the owning sub-array, and the read
    // observes the corrupted word.
    Word observed = words_[addr];
    EccStatus st = ecc_.check(addr, &words_[addr]);
    if (st != EccStatus::Uncorrectable)
        return words_[addr];
    uint32_t sub = geom_.subArrayOf(addr);
    subUncorrectable_[sub]++;
    if (degradeThreshold_ && !offline_[sub] &&
            subUncorrectable_[sub] >= degradeThreshold_ &&
            onlineCount_ > 1) {
        offline_[sub] = 1;
        onlineCount_--;
        ISRF_WARN("SRF bank %u: sub-array %u offline after %u "
                  "uncorrectable errors (%u/%u remain online)",
                  laneId_, sub, subUncorrectable_[sub], onlineCount_,
                  geom_.subArrays);
    }
    return observed;
}

void
SrfBank::write(uint32_t addr, Word w)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::write: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    if (!ecc_.empty())
        ecc_.onWrite(addr);
    words_[addr] = w;
}

bool
SrfBank::claimSequentialRow(uint32_t addr)
{
    if (addr % geom_.seqWidth != 0)
        panic("SrfBank[%u]: unaligned sequential row address %u", laneId_,
              addr);
    portsDirty_ = true;
    return subArrays_[portFor(addr)].claimSequential();
}

bool
SrfBank::claimIndexedWord(uint32_t addr)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]: indexed address %u out of range", laneId_, addr);
    portsDirty_ = true;
    return subArrays_[portFor(addr)].claimIndexed();
}

uint32_t
SrfBank::portFor(uint32_t addr) const
{
    uint32_t sub = geom_.subArrayOf(addr);
    if (onlineCount_ == geom_.subArrays || !offline_[sub])
        return sub;
    for (uint32_t k = 1; k < geom_.subArrays; k++) {
        uint32_t cand = (sub + k) % geom_.subArrays;
        if (!offline_[cand])
            return cand;
    }
    return sub;  // unreachable: at least one sub-array stays online
}

void
SrfBank::injectBitFlips(uint32_t addr, Word mask, bool transient)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::injectBitFlips: address %u out of range",
              laneId_, addr);
    ecc_.inject(addr, mask, transient, &words_[addr]);
}

void
SrfBank::setSubArrayOffline(uint32_t sub, bool offline)
{
    if (sub >= geom_.subArrays)
        panic("SrfBank[%u]: bad sub-array %u", laneId_, sub);
    if (offline && !offline_[sub] && onlineCount_ <= 1)
        panic("SrfBank[%u]: cannot take the last online sub-array "
              "offline", laneId_);
    if (offline != (offline_[sub] != 0)) {
        offline_[sub] = offline ? 1 : 0;
        onlineCount_ += offline ? -1 : 1;
    }
}

uint32_t
SrfBank::offlineSubArrays() const
{
    return geom_.subArrays - onlineCount_;
}

uint64_t
SrfBank::scrubEcc()
{
    if (ecc_.empty())
        return 0;
    return ecc_.scrub([this](uint64_t addr) { return &words_[addr]; });
}

uint64_t
SrfBank::sequentialAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.sequentialAccesses();
    return n;
}

uint64_t
SrfBank::indexedAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.indexedAccesses();
    return n;
}

uint64_t
SrfBank::subArrayConflicts() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.conflicts();
    return n;
}

} // namespace isrf
