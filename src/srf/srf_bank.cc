#include "srf/srf_bank.h"

#include "util/log.h"

namespace isrf {

void
SrfBank::init(const SrfGeometry &geom, uint32_t laneId)
{
    geom_ = geom;
    laneId_ = laneId;
    remoteDepth_ = geom.remoteQueueDepth;
    words_.assign(geom.laneWords, 0);
    subArrays_.assign(geom.subArrays, SubArray());
    remoteQueue_.clear();
}

void
SrfBank::newCycle()
{
    for (auto &sa : subArrays_)
        sa.newCycle();
}

Word
SrfBank::read(uint32_t addr) const
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::read: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    return words_[addr];
}

void
SrfBank::write(uint32_t addr, Word w)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]::write: address %u out of range (%zu words)",
              laneId_, addr, words_.size());
    words_[addr] = w;
}

bool
SrfBank::claimSequentialRow(uint32_t addr)
{
    if (addr % geom_.seqWidth != 0)
        panic("SrfBank[%u]: unaligned sequential row address %u", laneId_,
              addr);
    return subArrays_[geom_.subArrayOf(addr)].claimSequential();
}

bool
SrfBank::claimIndexedWord(uint32_t addr)
{
    if (addr >= words_.size())
        panic("SrfBank[%u]: indexed address %u out of range", laneId_, addr);
    return subArrays_[geom_.subArrayOf(addr)].claimIndexed();
}

uint64_t
SrfBank::sequentialAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.sequentialAccesses();
    return n;
}

uint64_t
SrfBank::indexedAccesses() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.indexedAccesses();
    return n;
}

uint64_t
SrfBank::subArrayConflicts() const
{
    uint64_t n = 0;
    for (const auto &sa : subArrays_)
        n += sa.conflicts();
    return n;
}

} // namespace isrf
